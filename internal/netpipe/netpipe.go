// Package netpipe reproduces the paper's network characterisation
// (Sec. III.E.2, Figure 3): a NetPIPE-style ping-pong between two nodes
// sweeping message sizes, yielding the latency and throughput curve and a
// fitted service-time model y(s) = Overhead + s/Peak for the analytical
// model. On a 100 Mbps link the measured peak lands near 90 Mbps — the
// MPI/OS overhead the paper observes.
package netpipe

import (
	"fmt"
	"math"

	"hybridperf/internal/core"
	"hybridperf/internal/des"
	"hybridperf/internal/machine"
	"hybridperf/internal/mpi"
	"hybridperf/internal/node"
	"hybridperf/internal/simnet"
)

// Point is one measured message size.
type Point struct {
	Bytes      float64 // message size [B]
	Latency    float64 // one-way latency [s]
	Throughput float64 // achieved throughput [B/s]
}

// Mbps returns the point's throughput in megabits per second, the unit of
// Figure 3.
func (p Point) Mbps() float64 { return p.Throughput * 8 / 1e6 }

// DefaultSizes returns the sweep of Figure 3: powers of two from 1 B to
// 16 MB.
func DefaultSizes() []float64 {
	var sizes []float64
	for s := 1.0; s <= 16<<20; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// Measure runs the ping-pong over the given sizes with `reps` round trips
// per size and returns one point per size.
func Measure(prof *machine.Profile, sizes []float64, reps int) ([]Point, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if prof.MaxNodes < 2 {
		return nil, fmt.Errorf("netpipe: need at least 2 nodes, profile %s has %d", prof.Name, prof.MaxNodes)
	}
	if reps < 1 {
		reps = 1
	}

	k := des.NewKernel()
	sw := simnet.New(k, prof, 2)
	nodes := []*node.Node{
		node.New(k, prof, 0, 1, prof.FMax(), nil),
		node.New(k, prof, 1, 1, prof.FMax(), nil),
	}
	world := mpi.NewWorld(k, sw, nodes)

	points := make([]Point, 0, len(sizes))
	// Rank 1 echoes every message it receives, forever (it ends when the
	// kernel runs out of rank-0 events and detects rank1 halted — which we
	// avoid by having rank 1 stop after the known total).
	total := len(sizes) * reps
	k.Spawn("echo", func(p *des.Proc) {
		r := world.Rank(1)
		sent := 0
		for _, size := range sizes {
			for i := 0; i < reps; i++ {
				r.WaitCount(p, mpi.TagHalo, sent+1)
				sent++
				r.Isend(0, size, mpi.TagHalo)
			}
		}
		_ = total
	})
	k.Spawn("pingpong", func(p *des.Proc) {
		r := world.Rank(0)
		got := 0
		for _, size := range sizes {
			start := p.Now()
			for i := 0; i < reps; i++ {
				r.Isend(1, size, mpi.TagHalo)
				got++
				r.WaitCount(p, mpi.TagHalo, got)
			}
			rtt := (p.Now() - start) / float64(reps)
			lat := rtt / 2
			points = append(points, Point{Bytes: size, Latency: lat, Throughput: size / lat})
		}
	})
	if err := k.Run(math.Inf(1)); err != nil {
		return nil, fmt.Errorf("netpipe: %w", err)
	}
	return points, nil
}

// Fit performs the least-squares fit of latency against message size,
// recovering the affine service model the analytical model consumes:
// latency(s) = Overhead + s/Peak.
func Fit(points []Point) (core.NetModel, error) {
	if len(points) < 2 {
		return core.NetModel{}, fmt.Errorf("netpipe: need >= 2 points to fit, got %d", len(points))
	}
	var n, sx, sy, sxx, sxy float64
	for _, p := range points {
		n++
		sx += p.Bytes
		sy += p.Latency
		sxx += p.Bytes * p.Bytes
		sxy += p.Bytes * p.Latency
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return core.NetModel{}, fmt.Errorf("netpipe: degenerate size sweep")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	if slope <= 0 {
		return core.NetModel{}, fmt.Errorf("netpipe: non-positive bandwidth fit (slope %g)", slope)
	}
	if intercept < 0 {
		intercept = 0
	}
	return core.NetModel{Overhead: intercept, Peak: 1 / slope}, nil
}

// Characterize measures with the default sweep and fits the service model.
func Characterize(prof *machine.Profile) ([]Point, core.NetModel, error) {
	points, err := Measure(prof, DefaultSizes(), 3)
	if err != nil {
		return nil, core.NetModel{}, err
	}
	nm, err := Fit(points)
	if err != nil {
		return nil, core.NetModel{}, err
	}
	return points, nm, nil
}
