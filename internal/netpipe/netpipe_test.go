package netpipe

import (
	"math"
	"testing"

	"hybridperf/internal/core"
	"hybridperf/internal/machine"
)

func TestMeasureCurveShape(t *testing.T) {
	prof := machine.ARMCortexA9()
	points, err := Measure(prof, DefaultSizes(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(DefaultSizes()) {
		t.Fatalf("%d points for %d sizes", len(points), len(DefaultSizes()))
	}
	// Latency strictly increasing, throughput non-decreasing with size.
	for i := 1; i < len(points); i++ {
		if points[i].Latency <= points[i-1].Latency {
			t.Fatalf("latency not increasing at %g B", points[i].Bytes)
		}
		if points[i].Throughput < points[i-1].Throughput {
			t.Fatalf("throughput decreasing at %g B", points[i].Bytes)
		}
	}
}

func TestPeakNear90Mbps(t *testing.T) {
	// The paper's Figure 3 headline: a 100 Mbps link achieves ~90 Mbps.
	prof := machine.ARMCortexA9()
	points, nm, err := Characterize(prof)
	if err != nil {
		t.Fatal(err)
	}
	largest := points[len(points)-1]
	if largest.Mbps() < 85 || largest.Mbps() > 92 {
		t.Fatalf("peak throughput %.1f Mbps, want ~90", largest.Mbps())
	}
	fitMbps := nm.Peak * 8 / 1e6
	if math.Abs(fitMbps-90) > 2 {
		t.Fatalf("fitted peak %.1f Mbps, want ~90", fitMbps)
	}
}

func TestFitRecoversServiceModel(t *testing.T) {
	// The simulated switch's service time is exactly affine in size, so
	// the fit should reproduce it almost perfectly.
	prof := machine.XeonE5()
	points, nm, err := Characterize(prof)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		pred := nm.ServiceTime(p.Bytes)
		if math.Abs(pred-p.Latency)/p.Latency > 0.02 {
			t.Fatalf("fit off by >2%% at %g B: %g vs %g", p.Bytes, pred, p.Latency)
		}
	}
	wantPeak := prof.NetEfficiency * prof.LinkBandwidth / 8
	if math.Abs(nm.Peak-wantPeak)/wantPeak > 0.01 {
		t.Fatalf("fitted peak %g, want %g", nm.Peak, wantPeak)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := Fit([]Point{{Bytes: 1, Latency: 1}}); err == nil {
		t.Error("single-point fit accepted")
	}
	// Same size twice: degenerate in x.
	if _, err := Fit([]Point{{Bytes: 5, Latency: 1}, {Bytes: 5, Latency: 2}}); err == nil {
		t.Error("degenerate sweep accepted")
	}
	// Decreasing latency with size: negative bandwidth.
	if _, err := Fit([]Point{{Bytes: 1, Latency: 2}, {Bytes: 100, Latency: 1}}); err == nil {
		t.Error("negative-slope fit accepted")
	}
}

func TestFitClampsNegativeIntercept(t *testing.T) {
	nm, err := Fit([]Point{{Bytes: 100, Latency: 1e-7}, {Bytes: 1e6, Latency: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	if nm.Overhead < 0 {
		t.Fatalf("negative overhead %g", nm.Overhead)
	}
	var _ core.NetModel = nm
}

func TestMeasureErrors(t *testing.T) {
	prof := machine.XeonE5()
	prof.MaxNodes = 1
	if _, err := Measure(prof, DefaultSizes(), 1); err == nil {
		t.Error("single-node profile accepted for ping-pong")
	}
	bad := machine.XeonE5()
	bad.MemBandwidth = 0
	if _, err := Measure(bad, DefaultSizes(), 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestDefaultSizesSpan(t *testing.T) {
	sizes := DefaultSizes()
	if sizes[0] != 1 {
		t.Fatalf("first size %g, want 1 B", sizes[0])
	}
	if sizes[len(sizes)-1] != 16<<20 {
		t.Fatalf("last size %g, want 16 MiB", sizes[len(sizes)-1])
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] != 2*sizes[i-1] {
			t.Fatal("sizes are not powers of two")
		}
	}
}
