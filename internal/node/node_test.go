package node

import (
	"math"
	"testing"

	"hybridperf/internal/des"
	"hybridperf/internal/machine"
	"hybridperf/internal/rng"
)

func run(t *testing.T, k *des.Kernel) {
	t.Helper()
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
}

func TestComputeAccountsCycles(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	nd := New(k, prof, 0, 1, 1.8e9, nil) // no jitter
	const units = 1.8e9                  // exactly 1 s of work cycles
	k.Spawn("c", func(p *des.Proc) {
		nd.Compute(p, 0, units, 0.1)
	})
	run(t, k)
	c := nd.Ctrs[0]
	if math.Abs(c.WorkTime-1) > 1e-9 {
		t.Errorf("WorkTime = %g, want 1", c.WorkTime)
	}
	wantB := 1.0 * 0.1 * prof.BaseStallFrac
	if math.Abs(c.BStallTime-wantB) > 1e-9 {
		t.Errorf("BStallTime = %g, want %g", c.BStallTime, wantB)
	}
	if c.Instructions != units {
		t.Errorf("Instructions = %g, want %g", c.Instructions, units)
	}
	if k.Now() != c.WorkTime+c.BStallTime {
		t.Errorf("elapsed %g != work+bstall %g", k.Now(), c.WorkTime+c.BStallTime)
	}
}

func TestComputeISAFactor(t *testing.T) {
	// The same work takes CyclesPerWork x longer per Hz on the ARM core.
	k := des.NewKernel()
	arm := machine.ARMCortexA9()
	nd := New(k, arm, 0, 1, 1.4e9, nil)
	k.Spawn("c", func(p *des.Proc) { nd.Compute(p, 0, 1.4e9, 0) })
	run(t, k)
	if got := nd.Ctrs[0].WorkTime; math.Abs(got-arm.CyclesPerWork) > 1e-9 {
		t.Fatalf("ARM WorkTime = %g, want %g", got, arm.CyclesPerWork)
	}
}

func TestComputeZeroUnitsNoop(t *testing.T) {
	k := des.NewKernel()
	nd := New(k, machine.XeonE5(), 0, 1, 1.2e9, nil)
	k.Spawn("c", func(p *des.Proc) {
		nd.Compute(p, 0, 0, 0.5)
		nd.Compute(p, 0, -5, 0.5)
	})
	run(t, k)
	if k.Now() != 0 || nd.Ctrs[0].WorkTime != 0 {
		t.Fatal("zero/negative compute should be a no-op")
	}
}

func TestMemAccessSingleCore(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	nd := New(k, prof, 0, 1, 1.8e9, nil)
	bytes := 128e6
	k.Spawn("c", func(p *des.Proc) { nd.MemAccess(p, 0, bytes) })
	run(t, k)
	// Single core, no contention: stall = private + shared = bytes/coreBW + lat.
	want := bytes/prof.MemCoreBandwidth + prof.MemFixedLat
	if got := nd.Ctrs[0].MemStallTime; math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("MemStallTime = %g, want %g", got, want)
	}
}

func TestMemContentionGrowsWithCores(t *testing.T) {
	prof := machine.XeonE5()
	stall := func(cores int) float64 {
		k := des.NewKernel()
		nd := New(k, prof, 0, cores, 1.8e9, nil)
		perCore := 512e6
		for i := 0; i < cores; i++ {
			i := i
			k.Spawn("c", func(p *des.Proc) { nd.MemAccess(p, i, perCore) })
		}
		run(t, k)
		var total float64
		for _, c := range nd.Ctrs {
			total += c.MemStallTime
		}
		return total / float64(cores) // mean per-core stall for equal traffic
	}
	if s1, s8 := stall(1), stall(8); s8 <= s1*1.5 {
		t.Fatalf("per-core stall with 8 cores %g should exceed single-core %g by contention", s8, s1)
	}
}

func TestMemStatsExposed(t *testing.T) {
	k := des.NewKernel()
	nd := New(k, machine.XeonE5(), 0, 2, 1.8e9, nil)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("c", func(p *des.Proc) { nd.MemAccess(p, i, 64e6) })
	}
	run(t, k)
	if s := nd.MemStats(); s.Served != 2 {
		t.Fatalf("controller served %d, want 2", s.Served)
	}
}

func TestEnergyIdleOnly(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	nd := New(k, prof, 0, 1, 1.2e9, nil)
	k.Spawn("c", func(p *des.Proc) { p.Advance(10) })
	run(t, k)
	e := nd.Energy()
	if math.Abs(e.Idle-prof.PSysIdle*10) > 1e-9 {
		t.Fatalf("Idle energy = %g, want %g", e.Idle, prof.PSysIdle*10)
	}
	if e.CPU != 0 || e.Mem != 0 || e.Net != 0 {
		t.Fatalf("idle run has active energy: %+v", e)
	}
}

func TestEnergyActiveCompute(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	f := 1.8e9
	nd := New(k, prof, 0, 1, f, nil)
	k.Spawn("c", func(p *des.Proc) { nd.Compute(p, 0, f*2, 0) }) // 2 s active
	run(t, k)
	e := nd.Energy()
	want := prof.PCoreAct.At(f) * 2
	if math.Abs(e.CPU-want)/want > 1e-9 {
		t.Fatalf("CPU energy = %g, want %g", e.CPU, want)
	}
}

func TestEnergyStallIncludesMemPower(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	nd := New(k, prof, 0, 1, 1.8e9, nil)
	k.Spawn("c", func(p *des.Proc) { nd.MemAccess(p, 0, 256e6) })
	run(t, k)
	e := nd.Energy()
	elapsed := k.Now()
	wantCPU := prof.PCoreStall(1.8e9) * elapsed
	if math.Abs(e.CPU-wantCPU)/wantCPU > 1e-9 {
		t.Fatalf("stall CPU energy = %g, want %g", e.CPU, wantCPU)
	}
	wantMem := prof.PMem * elapsed
	if math.Abs(e.Mem-wantMem)/wantMem > 1e-9 {
		t.Fatalf("Mem energy = %g, want %g", e.Mem, wantMem)
	}
}

func TestEnergyNetRef(t *testing.T) {
	prof := machine.ARMCortexA9()
	k := des.NewKernel()
	nd := New(k, prof, 0, 1, 1.4e9, nil)
	k.Spawn("c", func(p *des.Proc) {
		nd.NetRef(1)
		p.Advance(3)
		nd.NetRef(1) // overlapping activity should not double-bill
		p.Advance(2)
		nd.NetRef(-1)
		nd.NetRef(-1)
		p.Advance(5)
	})
	run(t, k)
	e := nd.Energy()
	want := prof.PNet * 5 // active from t=0 to t=5 only
	if math.Abs(e.Net-want)/want > 1e-9 {
		t.Fatalf("Net energy = %g, want %g", e.Net, want)
	}
}

func TestNegativeNetRefPanics(t *testing.T) {
	k := des.NewKernel()
	nd := New(k, machine.XeonE5(), 0, 1, 1.2e9, nil)
	k.Spawn("c", func(p *des.Proc) { nd.NetRef(-1) })
	if err := k.Run(math.Inf(1)); err == nil {
		t.Fatal("negative NIC refcount did not fail the run")
	}
}

func TestJitterPerturbsDeterministically(t *testing.T) {
	prof := machine.XeonE5()
	elapsed := func(seed int64) float64 {
		k := des.NewKernel()
		nd := New(k, prof, 0, 1, 1.8e9, rng.New(seed))
		k.Spawn("c", func(p *des.Proc) {
			for i := 0; i < 20; i++ {
				nd.Compute(p, 0, 1.8e8, 0)
			}
		})
		run(t, k)
		return k.Now()
	}
	a, b, c := elapsed(1), elapsed(1), elapsed(2)
	if a != b {
		t.Fatal("same seed produced different elapsed time")
	}
	if a == c {
		t.Fatal("different seeds produced identical jitter")
	}
	if math.Abs(a-2)/2 > 0.2 {
		t.Fatalf("jittered elapsed %g too far from nominal 2 s", a)
	}
}

func TestNewValidatesArgs(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	for _, fn := range []func(){
		func() { New(k, prof, 0, 0, 1.2e9, nil) },
		func() { New(k, prof, 0, 9, 1.2e9, nil) },
		func() { New(k, prof, 0, 1, 9.9e9, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid node parameters did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestNetWaitCountsIdle(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	nd := New(k, prof, 0, 1, 1.8e9, nil)
	k.Spawn("c", func(p *des.Proc) {
		nd.NetWait(0, func() { p.Advance(4) })
	})
	run(t, k)
	if got := nd.Ctrs[0].NetWaitTime; math.Abs(got-4) > 1e-9 {
		t.Fatalf("NetWaitTime = %g, want 4", got)
	}
	// Network waiting is idle: only system idle power is drawn.
	if e := nd.Energy(); e.CPU != 0 {
		t.Fatalf("net wait drew CPU power: %+v", e)
	}
}

func TestTotalsAggregation(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	f := 1.2e9
	nd := New(k, prof, 0, 2, f, nil)
	k.Spawn("a", func(p *des.Proc) { nd.Compute(p, 0, f, 0) })
	k.Spawn("b", func(p *des.Proc) { nd.Compute(p, 1, f, 0) })
	run(t, k)
	tot := nd.Totals(k.Now())
	if math.Abs(tot.WorkCycles-2*f) > 1 {
		t.Fatalf("WorkCycles = %g, want %g", tot.WorkCycles, 2*f)
	}
	if tot.Cores != 2 {
		t.Fatalf("Cores = %d", tot.Cores)
	}
	if u := tot.Utilization(); math.Abs(u-1) > 1e-9 {
		t.Fatalf("Utilization = %g, want 1", u)
	}
}
