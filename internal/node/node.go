// Package node simulates one cluster node: c active cores at a fixed DVFS
// frequency, a UMA memory controller shared by the cores (a FCFS
// single-server queue, so intra-node memory contention emerges from
// queueing exactly as the paper's stall-cycle measurements capture it),
// a NIC activity flag, and a power integrator that plays the role of the
// WattsUp meter: node power is integrated over per-component activity
// states, split into the CPU/memory/network/idle components of Eqs (8-12).
package node

import (
	"fmt"

	"hybridperf/internal/counters"
	"hybridperf/internal/des"
	"hybridperf/internal/machine"
	"hybridperf/internal/rng"
	"hybridperf/internal/trace"
)

// CoreState is a core's instantaneous activity class for power accounting.
type CoreState int

const (
	Idle  CoreState = iota // not executing (waiting on network, parked)
	Act                    // executing work or pipeline-stalled: active power
	Stall                  // stalled on memory: stall power
)

// Node is one simulated cluster node.
type Node struct {
	ID   int
	prof *machine.Profile
	k    *des.Kernel
	freq float64 // Hz

	memctl *des.Resource
	states []CoreState
	Ctrs   []counters.Core

	jitter *rng.Stream

	// rec, when non-nil, receives the node's phase timeline for core 0 —
	// the rank's master thread, which is the per-process view the paper's
	// timelines show. Worker-thread cores are covered by the aggregate
	// counters instead; recording them too would overlay concurrent
	// events on one rank row and double-count phase time. Recording never
	// feeds back into the simulation.
	rec *trace.Recorder

	// Power integration. pAct/pStall cache the profile's per-core power at
	// the current frequency: integrate runs on every core state
	// transition, and the power-curve evaluation (math.Pow) only changes
	// when the DVFS level does.
	lastT  float64
	nAct   int
	nStall int
	netRef int
	pAct   float64
	pStall float64
	energy EnergyBreakdown
}

// EnergyBreakdown is the per-node energy split mirroring Eqs (8)-(12).
type EnergyBreakdown struct {
	CPU  float64 // J: active + stall core energy (Eq. 9)
	Mem  float64 // J: memory subsystem while servicing stalls (Eq. 10)
	Net  float64 // J: NIC while communication is in flight (Eq. 11)
	Idle float64 // J: baseline system power over the whole run (Eq. 12)
}

// Total returns the node's total energy in joules.
func (e EnergyBreakdown) Total() float64 { return e.CPU + e.Mem + e.Net + e.Idle }

// Add accumulates another breakdown (for cluster totals).
func (e *EnergyBreakdown) Add(o EnergyBreakdown) {
	e.CPU += o.CPU
	e.Mem += o.Mem
	e.Net += o.Net
	e.Idle += o.Idle
}

// New creates a node with the given number of active cores running at
// frequency f. jitter is the node's OS-noise stream (may be nil for
// noise-free runs, e.g. micro-benchmarks).
func New(k *des.Kernel, prof *machine.Profile, id, cores int, f float64, jitter *rng.Stream) *Node {
	if cores < 1 || cores > prof.CoresPerNode {
		panic(fmt.Sprintf("node: %d cores outside [1,%d]", cores, prof.CoresPerNode))
	}
	if !prof.HasFrequency(f) {
		panic(fmt.Sprintf("node: %.2f GHz is not a DVFS level of %s", f/1e9, prof.Name))
	}
	return &Node{
		ID:     id,
		prof:   prof,
		k:      k,
		freq:   f,
		memctl: des.NewResource(k, fmt.Sprintf("mem[%d]", id)),
		states: make([]CoreState, cores),
		Ctrs:   make([]counters.Core, cores),
		jitter: jitter,
		pAct:   prof.PCoreAct.At(f),
		pStall: prof.PCoreStall(f),
	}
}

// Cores returns the number of active cores.
func (n *Node) Cores() int { return len(n.states) }

// Freq returns the current core frequency [Hz].
func (n *Node) Freq() float64 { return n.freq }

// SetFreq switches the node's DVFS level. It may only be called when every
// core is idle (an iteration boundary — the granularity at which runtime
// DVFS governors act); energy integration is brought up to date under the
// old level first, so the power accounting stays exact across switches.
func (n *Node) SetFreq(f float64) {
	if f == n.freq {
		return
	}
	if !n.prof.HasFrequency(f) {
		panic(fmt.Sprintf("node: %.2f GHz is not a DVFS level of %s", f/1e9, n.prof.Name))
	}
	for core, st := range n.states {
		if st != Idle {
			panic(fmt.Sprintf("node: SetFreq with core %d active", core))
		}
	}
	n.integrate()
	n.freq = f
	n.pAct = n.prof.PCoreAct.At(f)
	n.pStall = n.prof.PCoreStall(f)
}

// Profile returns the node's hardware profile.
func (n *Node) Profile() *machine.Profile { return n.prof }

// SetTrace attaches a phase-timeline recorder (nil detaches). The node
// records its master thread (core 0) under its node id as the rank.
func (n *Node) SetTrace(rec *trace.Recorder) { n.rec = rec }

// integrate advances the power integrator to the current virtual time.
func (n *Node) integrate() {
	now := n.k.Now()
	dt := now - n.lastT
	if dt > 0 {
		n.energy.CPU += (float64(n.nAct)*n.pAct + float64(n.nStall)*n.pStall) * dt
		if n.nStall > 0 {
			n.energy.Mem += n.prof.PMem * dt
		}
		if n.netRef > 0 {
			n.energy.Net += n.prof.PNet * dt
		}
		n.energy.Idle += n.prof.PSysIdle * dt
	}
	n.lastT = now
}

// setState transitions a core's power state.
func (n *Node) setState(core int, st CoreState) {
	old := n.states[core]
	if old == st {
		return
	}
	n.integrate()
	switch old {
	case Act:
		n.nAct--
	case Stall:
		n.nStall--
	}
	switch st {
	case Act:
		n.nAct++
	case Stall:
		n.nStall++
	}
	n.states[core] = st
}

// NetRef adjusts the node's count of in-flight communication activities
// (posted sends not yet delivered, blocked receives). The NIC draws power
// while the count is positive.
func (n *Node) NetRef(delta int) {
	n.integrate()
	n.netRef += delta
	if n.netRef < 0 {
		panic("node: negative NIC refcount")
	}
}

// Energy finalises power integration at the current time and returns the
// node's energy breakdown.
func (n *Node) Energy() EnergyBreakdown {
	n.integrate()
	return n.energy
}

// Compute executes `units` abstract work units on the given core: the core
// runs in the active state for the ISA-dependent cycle count, inflated by
// the program/ISA pipeline-stall fraction bFrac and (if a jitter stream is
// attached) by OS noise. Work and non-memory stall cycles are counted
// separately, as a hardware counter would report them.
func (n *Node) Compute(p *des.Proc, core int, units, bFrac float64) {
	if units <= 0 {
		return
	}
	j := 1.0
	if n.jitter != nil {
		j = n.jitter.Jitter(n.prof.OSJitter)
	}
	workT := units * n.prof.CyclesPerWork / n.freq * j
	bT := workT * bFrac * n.prof.BaseStallFrac
	start := n.k.Now()
	n.setState(core, Act)
	p.Advance(workT + bT)
	c := &n.Ctrs[core]
	c.WorkTime += workT
	c.BStallTime += bT
	c.Instructions += units * j
	n.setState(core, Idle)
	if n.rec != nil && core == 0 {
		n.rec.Add(n.ID, trace.Compute, start, n.k.Now())
	}
}

// MemAccess stalls the given core on a memory burst of the given DRAM
// traffic (bytes, already scaled by the profile's MemTrafficFactor). The
// burst has a private portion — the core alone cannot saturate the
// controller — and a shared portion serialised at the node's memory
// controller, where queueing against the other cores produces the
// contention-driven stall growth the model's ms(c,f) input captures.
func (n *Node) MemAccess(p *des.Proc, core int, bytes float64) {
	if bytes <= 0 {
		return
	}
	start := n.k.Now()
	n.setState(core, Stall)
	private := bytes*(1/n.prof.MemCoreBandwidth-1/n.prof.MemBandwidth) + n.prof.MemFixedLat
	if private > 0 {
		p.Advance(private)
	}
	shared := bytes / n.prof.MemBandwidth
	wait := n.memctl.Serve(p, shared)
	n.Ctrs[core].MemStallTime += private + wait + shared
	n.setState(core, Idle)
	if n.rec != nil && core == 0 {
		n.rec.Add(n.ID, trace.MemStall, start, n.k.Now())
	}
}

// NetWait blocks the core-owning process in fn (typically a Recv) and
// accounts the elapsed time as network wait on that core. The core is idle
// for power purposes; the NIC reference is held by the caller.
func (n *Node) NetWait(core int, fn func()) {
	start := n.NetWaitBegin(core)
	fn()
	n.NetWaitEnd(core, start)
}

// NetWaitBegin marks the core idle for a network wait and returns the wait
// start time. Paired with NetWaitEnd, it is the closure-free form of
// NetWait for hot paths (one pair per MPI wait, no allocation).
func (n *Node) NetWaitBegin(core int) float64 {
	n.setState(core, Idle)
	return n.k.Now()
}

// NetWaitEnd accounts the elapsed network wait begun at start.
func (n *Node) NetWaitEnd(core int, start float64) {
	n.Ctrs[core].NetWaitTime += n.k.Now() - start
	if n.rec != nil && core == 0 {
		n.rec.Add(n.ID, trace.Network, start, n.k.Now())
	}
}

// MemStats exposes the memory controller's queueing statistics.
func (n *Node) MemStats() des.ResourceStats { return n.memctl.Stats() }

// Totals aggregates the node's core counters at the run frequency.
func (n *Node) Totals(elapsed float64) counters.Totals {
	return counters.Aggregate(n.Ctrs, n.freq, elapsed)
}
