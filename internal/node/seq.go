package node

import (
	"hybridperf/internal/des"
	"hybridperf/internal/trace"
)

// This file is the sequential-engine form of the node's blocking
// operations: Compute and MemAccess decomposed into resumable ops that a
// des.Machine drives across blocks. Each op mirrors its goroutine
// counterpart statement for statement — same jitter draw, same state
// transitions, same counter updates at the same virtual times — so runs
// are bit-for-bit identical on either engine.

// ComputeOp is Compute in continuation form. Set arms one burst; Step
// (via Node.ComputeStep) drives it to completion, after which the op is
// ready for the next Set.
type ComputeOp struct {
	pc    int8
	units float64
	bFrac float64
	workT float64
	bT    float64
	instr float64
	start float64
}

// Set arms the op for one compute burst.
func (op *ComputeOp) Set(units, bFrac float64) { op.units, op.bFrac = units, bFrac }

// ComputeStep drives an armed ComputeOp: false means the burst blocked
// (the calling Machine must yield and re-enter), true means it completed.
func (n *Node) ComputeStep(op *ComputeOp, p *des.Proc, core int) bool {
	switch op.pc {
	case 0:
		if op.units <= 0 {
			return true
		}
		j := 1.0
		if n.jitter != nil {
			j = n.jitter.Jitter(n.prof.OSJitter)
		}
		op.workT = op.units * n.prof.CyclesPerWork / n.freq * j
		op.bT = op.workT * op.bFrac * n.prof.BaseStallFrac
		op.instr = op.units * j
		op.start = n.k.Now()
		n.setState(core, Act)
		op.pc = 1
		if !p.AdvanceArm(op.workT + op.bT) {
			return false
		}
		fallthrough
	case 1:
		c := &n.Ctrs[core]
		c.WorkTime += op.workT
		c.BStallTime += op.bT
		c.Instructions += op.instr
		n.setState(core, Idle)
		if n.rec != nil && core == 0 {
			n.rec.Add(n.ID, trace.Compute, op.start, n.k.Now())
		}
		op.pc = 0
		return true
	}
	panic("node: bad ComputeOp state")
}

// MemOp is MemAccess in continuation form. Set arms one memory burst;
// Node.MemStep drives it across the private advance, the memory-controller
// queue and the shared drain.
type MemOp struct {
	pc      int8
	bytes   float64
	start   float64
	enq     float64
	private float64
	shared  float64
	wait    float64
}

// Set arms the op for one memory burst.
func (op *MemOp) Set(bytes float64) { op.bytes = bytes }

// MemStep drives an armed MemOp: false means the burst blocked (yield and
// re-enter), true means it completed.
func (n *Node) MemStep(op *MemOp, p *des.Proc, core int) bool {
	switch op.pc {
	case 0:
		if op.bytes <= 0 {
			return true
		}
		op.start = n.k.Now()
		n.setState(core, Stall)
		op.private = op.bytes*(1/n.prof.MemCoreBandwidth-1/n.prof.MemBandwidth) + n.prof.MemFixedLat
		op.pc = 1
		if op.private > 0 && !p.AdvanceArm(op.private) {
			return false
		}
		fallthrough
	case 1:
		op.shared = op.bytes / n.prof.MemBandwidth
		op.enq = n.k.Now()
		op.pc = 2
		if !n.memctl.AcquireArm(p) {
			return false
		}
		fallthrough
	case 2:
		op.wait = n.memctl.AcquireDone(op.enq)
		op.pc = 3
		if !p.AdvanceArm(op.shared) {
			return false
		}
		fallthrough
	case 3:
		n.memctl.ServeDone(op.shared)
		n.Ctrs[core].MemStallTime += op.private + op.wait + op.shared
		n.setState(core, Idle)
		if n.rec != nil && core == 0 {
			n.rec.Add(n.ID, trace.MemStall, op.start, n.k.Now())
		}
		op.pc = 0
		return true
	}
	panic("node: bad MemOp state")
}
