package omp

import (
	"math"
	"sort"
	"testing"

	"hybridperf/internal/des"
	"hybridperf/internal/machine"
	"hybridperf/internal/node"
)

func team(k *des.Kernel, cores int) *Team {
	prof := machine.XeonE5()
	return NewTeam(k, node.New(k, prof, 0, cores, prof.FMax(), nil))
}

func run(t *testing.T, k *des.Kernel) {
	t.Helper()
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
}

func TestParallelRunsEveryThread(t *testing.T) {
	k := des.NewKernel()
	tm := team(k, 4)
	var tids []int
	k.Spawn("master", func(p *des.Proc) {
		tm.Parallel(p, func(th *Thread) {
			tids = append(tids, th.ID)
		})
	})
	run(t, k)
	sort.Ints(tids)
	if len(tids) != 4 {
		t.Fatalf("ran %d threads, want 4", len(tids))
	}
	for i, tid := range tids {
		if tid != i {
			t.Fatalf("thread ids %v, want 0..3", tids)
		}
	}
}

func TestParallelImplicitBarrier(t *testing.T) {
	k := des.NewKernel()
	tm := team(k, 4)
	f := machine.XeonE5().FMax()
	var joined float64
	k.Spawn("master", func(p *des.Proc) {
		tm.Parallel(p, func(th *Thread) {
			// Thread i computes i+1 seconds of work.
			th.Compute(f*float64(th.ID+1), 0)
		})
		joined = p.Now()
	})
	run(t, k)
	if math.Abs(joined-4) > 1e-9 {
		t.Fatalf("region joined at %g, want 4 (slowest thread)", joined)
	}
}

func TestMasterIsThreadZero(t *testing.T) {
	k := des.NewKernel()
	tm := team(k, 3)
	var masterTid = -1
	k.Spawn("master", func(p *des.Proc) {
		tm.Parallel(p, func(th *Thread) {
			if th.P == p {
				masterTid = th.ID
			}
		})
	})
	run(t, k)
	if masterTid != 0 {
		t.Fatalf("master ran as tid %d, want 0", masterTid)
	}
}

func TestSingleThreadTeam(t *testing.T) {
	k := des.NewKernel()
	tm := team(k, 1)
	ran := 0
	k.Spawn("master", func(p *des.Proc) {
		tm.Parallel(p, func(th *Thread) { ran++ })
	})
	run(t, k)
	if ran != 1 {
		t.Fatalf("single-thread region ran %d times", ran)
	}
}

func TestSuccessiveRegions(t *testing.T) {
	k := des.NewKernel()
	tm := team(k, 2)
	f := machine.XeonE5().FMax()
	var times []float64
	k.Spawn("master", func(p *des.Proc) {
		for r := 0; r < 3; r++ {
			tm.Parallel(p, func(th *Thread) { th.Compute(f, 0) })
			times = append(times, p.Now())
		}
	})
	run(t, k)
	for i, want := range []float64{1, 2, 3} {
		if math.Abs(times[i]-want) > 1e-9 {
			t.Fatalf("region %d ended at %g, want %g", i, times[i], want)
		}
	}
}

func TestThreadsContendForMemory(t *testing.T) {
	k := des.NewKernel()
	tm := team(k, 8)
	var total float64
	k.Spawn("master", func(p *des.Proc) {
		tm.Parallel(p, func(th *Thread) {
			th.MemAccess(256e6)
		})
		for _, c := range tm.Node().Ctrs {
			total += c.MemStallTime
		}
	})
	run(t, k)
	// Eight simultaneous bursts through one controller must stall, in
	// aggregate, well beyond eight uncontended accesses.
	prof := machine.XeonE5()
	uncontended := 8 * (256e6/prof.MemCoreBandwidth + prof.MemFixedLat)
	if total < uncontended*1.5 {
		t.Fatalf("aggregate stall %g shows no contention (uncontended %g)", total, uncontended)
	}
}

func TestTeamAccessors(t *testing.T) {
	k := des.NewKernel()
	tm := team(k, 5)
	if tm.Size() != 5 {
		t.Fatalf("Size = %d", tm.Size())
	}
	if tm.Node() == nil {
		t.Fatal("Node() nil")
	}
}

// TestWorkersPersistAcrossRegions checks the persistent pool: worker
// goroutines are spawned once on the first parallel region and then halted
// and rewoken, so the kernel's process count stays at master + (c-1)
// workers no matter how many regions run.
func TestWorkersPersistAcrossRegions(t *testing.T) {
	k := des.NewKernel()
	defer k.Shutdown()
	const cores, regions = 8, 50
	tm := team(k, cores)
	f := machine.XeonE5().FMax()
	ran := 0
	k.Spawn("master", func(p *des.Proc) {
		for r := 0; r < regions; r++ {
			tm.Parallel(p, func(th *Thread) {
				th.Compute(f/1e3, 0)
				if th.ID == 0 {
					ran++
				}
			})
		}
	})
	run(t, k)
	if ran != regions {
		t.Fatalf("ran %d regions, want %d", ran, regions)
	}
	if got := k.Procs(); got != cores { // master + (cores-1) workers
		t.Fatalf("kernel spawned %d process goroutines over %d regions, want %d",
			got, regions, cores)
	}
}
