package omp

import (
	"math"
	"testing"

	"hybridperf/internal/des"
)

// BenchmarkParallelRegion measures the fork-join cost of one 8-thread
// parallel region including a small compute burst per thread — the region
// rate is what bounds simulated iterations per second.
func BenchmarkParallelRegion(b *testing.B) {
	k := des.NewKernel()
	tm := team(k, 8)
	f := tm.Node().Freq()
	k.Spawn("master", func(p *des.Proc) {
		for i := 0; i < b.N; i++ {
			tm.Parallel(p, func(th *Thread) {
				th.Compute(f*1e-6*float64(th.ID+1), 0)
			})
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(math.Inf(1)); err != nil {
		b.Fatal(err)
	}
}
