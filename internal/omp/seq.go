package omp

import (
	"strconv"

	"hybridperf/internal/des"
	"hybridperf/internal/node"
)

// This file is the sequential-engine form of the fork-join region:
// Parallel decomposes into RegionBegin (fork) and RegionJoinArm (the
// implicit barrier), with the persistent worker pool spawned as
// continuation machines. Spawn order, worker names, completion counting
// and the join broadcast mirror the goroutine forms exactly, so regions
// are bit-for-bit identical on either engine.

// SeqBody is the continuation form of a parallel-region body: Step runs
// one thread's share of the region until it blocks (false) or completes
// (true). A body must self-reset on completion — the same value is
// re-entered at the next region.
type SeqBody interface {
	Step(th *Thread) bool
}

// RegionBegin opens a parallel region on the sequential engine: it counts
// the region, resets the join accounting and makes every worker runnable
// (spawning the persistent pool on the first region; mk builds the body
// machine for worker tid). It returns the master's Thread context (tid 0);
// the caller drives its own body to completion and then RegionJoinArm.
func (t *Team) RegionBegin(p *des.Proc, mk func(tid int) SeqBody) *Thread {
	if m := t.k.Metrics(); m != nil {
		m.Regions.Inc()
	}
	t.done = 0
	if t.workers == nil {
		t.spawnWorkersSeq(p.Name(), t.Size(), mk)
	} else {
		for _, wp := range t.workers {
			wp.Wake()
		}
	}
	t.master = Thread{P: p, ID: 0, team: t}
	return &t.master
}

// RegionJoinArm is the region's implicit barrier: true when every worker
// already finished (proceed); false when the master was armed to wait for
// stragglers — the calling Machine must yield and treat its next re-entry
// as the join having completed.
func (t *Team) RegionJoinArm(p *des.Proc) bool {
	if t.done < t.Size()-1 {
		t.join.WaitArm(p)
		return false
	}
	return true
}

// seqWorker drives one persistent worker thread as a continuation,
// mirroring the goroutine worker loop: run the region body, count
// completion (the last worker releases the master), park until the next
// region wakes it.
type seqWorker struct {
	t    *Team
	th   Thread
	body SeqBody
}

// Step implements des.Machine. It always returns false: a worker is a
// daemon that parks between regions and never completes.
func (w *seqWorker) Step(p *des.Proc) bool {
	w.th.P = p
	if !w.body.Step(&w.th) {
		return false
	}
	w.t.done++
	if w.t.done == w.t.Size()-1 {
		w.t.join.Broadcast() // last worker releases the master
	}
	p.HaltArm()
	return false
}

func (t *Team) spawnWorkersSeq(master string, n int, mk func(tid int) SeqBody) {
	for tid := 1; tid < n; tid++ {
		name := master + ".t" + strconv.Itoa(tid)
		w := &seqWorker{t: t, th: Thread{ID: tid, team: t}, body: mk(tid)}
		t.workers = append(t.workers, t.k.SpawnDaemonSeq(name, w))
	}
}

// ComputeStep drives a resumable compute burst on this thread's core.
func (th *Thread) ComputeStep(op *node.ComputeOp) bool {
	return th.team.node.ComputeStep(op, th.P, th.ID)
}

// MemStep drives a resumable memory access on this thread's core.
func (th *Thread) MemStep(op *node.MemOp) bool {
	return th.team.node.MemStep(op, th.P, th.ID)
}
