// Package omp implements the shared-memory half of the hybrid programming
// model in simulated time: fork-join parallel regions whose threads are
// pinned one-per-core on a simulated node. Threads interleave compute
// bursts with memory accesses; contention for the node's UMA memory
// controller is what turns parallelism into the stall cycles the paper's
// model measures as ms.
package omp

import (
	"fmt"

	"hybridperf/internal/des"
	"hybridperf/internal/node"
)

// Team executes parallel regions on a node, one thread per active core.
// The master thread (tid 0) runs on the calling process, mirroring the
// OpenMP execution model where the MPI process's main thread becomes
// thread 0 of each region.
type Team struct {
	k    *des.Kernel
	node *node.Node
}

// NewTeam creates a team covering all active cores of nd.
func NewTeam(k *des.Kernel, nd *node.Node) *Team {
	return &Team{k: k, node: nd}
}

// Node returns the node the team runs on.
func (t *Team) Node() *node.Node { return t.node }

// Size returns the team's thread count (the node's active cores).
func (t *Team) Size() int { return t.node.Cores() }

// Thread is the per-thread execution context inside a parallel region.
type Thread struct {
	P    *des.Proc // the simulated process driving this thread
	ID   int       // thread id == core id
	team *Team
}

// Compute executes work units on this thread's core (active power state,
// pipeline stalls and OS jitter applied by the node).
func (th *Thread) Compute(units, bFrac float64) {
	th.team.node.Compute(th.P, th.ID, units, bFrac)
}

// MemAccess stalls this thread on a DRAM burst of the given traffic.
func (th *Thread) MemAccess(bytes float64) {
	th.team.node.MemAccess(th.P, th.ID, bytes)
}

// Parallel runs body once per thread (an `omp parallel` region) and blocks
// the master process until every thread has finished — the region's
// implicit barrier. Worker threads are fresh simulated processes; the
// master runs body inline as tid 0.
func (t *Team) Parallel(p *des.Proc, body func(th *Thread)) {
	n := t.Size()
	done := 0
	var join des.Cond
	for tid := 1; tid < n; tid++ {
		tid := tid
		t.k.Spawn(fmt.Sprintf("%s.t%d", p.Name(), tid), func(wp *des.Proc) {
			body(&Thread{P: wp, ID: tid, team: t})
			done++
			join.Broadcast()
		})
	}
	body(&Thread{P: p, ID: 0, team: t})
	for done < n-1 {
		join.Wait(p)
	}
}
