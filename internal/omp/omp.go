// Package omp implements the shared-memory half of the hybrid programming
// model in simulated time: fork-join parallel regions whose threads are
// pinned one-per-core on a simulated node. Threads interleave compute
// bursts with memory accesses; contention for the node's UMA memory
// controller is what turns parallelism into the stall cycles the paper's
// model measures as ms.
package omp

import (
	"strconv"

	"hybridperf/internal/des"
	"hybridperf/internal/node"
)

// Team executes parallel regions on a node, one thread per active core.
// The master thread (tid 0) runs on the calling process, mirroring the
// OpenMP execution model where the MPI process's main thread becomes
// thread 0 of each region.
//
// Worker threads form a persistent pool: they are spawned once, on the
// team's first parallel region, and parked with Halt between regions — a
// run with thousands of regions creates exactly Size()-1 worker
// goroutines, as a real OpenMP runtime would.
type Team struct {
	k    *des.Kernel
	node *node.Node

	workers []*des.Proc // parked pool, index i drives thread id i+1
	body    func(th *Thread)
	done    int // workers finished with the current region
	join    des.Cond
	master  Thread // reusable master-thread context (tid 0)
}

// NewTeam creates a team covering all active cores of nd.
func NewTeam(k *des.Kernel, nd *node.Node) *Team {
	return &Team{k: k, node: nd}
}

// Node returns the node the team runs on.
func (t *Team) Node() *node.Node { return t.node }

// Size returns the team's thread count (the node's active cores).
func (t *Team) Size() int { return t.node.Cores() }

// Thread is the per-thread execution context inside a parallel region.
type Thread struct {
	P    *des.Proc // the simulated process driving this thread
	ID   int       // thread id == core id
	team *Team
}

// Compute executes work units on this thread's core (active power state,
// pipeline stalls and OS jitter applied by the node).
func (th *Thread) Compute(units, bFrac float64) {
	th.team.node.Compute(th.P, th.ID, units, bFrac)
}

// MemAccess stalls this thread on a DRAM burst of the given traffic.
func (th *Thread) MemAccess(bytes float64) {
	th.team.node.MemAccess(th.P, th.ID, bytes)
}

// Parallel runs body once per thread (an `omp parallel` region) and blocks
// the master process until every thread has finished — the region's
// implicit barrier. The master runs body inline as tid 0; worker threads
// are pooled daemon processes woken per region (spawned on the first).
func (t *Team) Parallel(p *des.Proc, body func(th *Thread)) {
	if m := t.k.Metrics(); m != nil {
		m.Regions.Inc()
	}
	n := t.Size()
	t.body = body
	t.done = 0
	if t.workers == nil {
		t.spawnWorkers(p.Name(), n)
	} else {
		for _, wp := range t.workers {
			wp.Wake()
		}
	}
	t.master = Thread{P: p, ID: 0, team: t}
	body(&t.master)
	if t.done < n-1 {
		t.join.Wait(p)
	}
	t.body = nil
}

// spawnWorkers creates the persistent pool on the first region. Each
// worker runs the current region body, signals completion, and parks until
// the next region wakes it; abort (Kernel.Shutdown, run failure) unwinds
// parked workers through the kernel's abort signal.
func (t *Team) spawnWorkers(master string, n int) {
	for tid := 1; tid < n; tid++ {
		name := master + ".t" + strconv.Itoa(tid)
		th := Thread{ID: tid, team: t}
		t.workers = append(t.workers, t.k.SpawnDaemon(name, func(wp *des.Proc) {
			th.P = wp
			for {
				t.body(&th)
				t.done++
				if t.done == t.Size()-1 {
					t.join.Broadcast() // last worker releases the master
				}
				wp.Halt()
			}
		}))
	}
}
