package dvfs

import "fmt"

// Policy names of the governor suite, as exposed by the advisory plane
// (/v1/advise). "fixed" pins the static Pareto frequency (the oracle
// baseline — by construction its governed run is bit-identical to the
// ungoverned one); "slack" is the InterNodeSlack just-in-time
// slack-reclamation governor; "phase" is the PhasePredictive governor
// seeded from a probe run's per-rank phase trace.
const (
	PolicyFixed = "fixed"
	PolicySlack = "slack"
	PolicyPhase = "phase"
)

// Policies returns the governor policy names in canonical order.
func Policies() []string { return []string{PolicyFixed, PolicySlack, PolicyPhase} }

// ValidPolicy reports whether name is a known policy.
func ValidPolicy(name string) bool {
	for _, p := range Policies() {
		if p == name {
			return true
		}
	}
	return false
}

// Transition is one step of a recorded frequency schedule: from iteration
// Iter onwards the node runs at Freq [Hz]. A schedule's first transition
// is always {0, startFrequency}.
type Transition struct {
	Iter int
	Freq float64
}

// ScheduleRecorder wraps a governor and records the frequency schedule it
// produces — one Transition per change — without altering any decision.
// It passes phase observations through, so wrapping a PhaseAware governor
// keeps it phase-aware.
type ScheduleRecorder struct {
	G Governor

	transitions []Transition
}

// AfterIteration implements Governor, delegating to the wrapped governor
// and recording the resulting schedule.
func (r *ScheduleRecorder) AfterIteration(iter int, duration, netWaitFrac, current float64) float64 {
	if len(r.transitions) == 0 {
		r.transitions = append(r.transitions, Transition{Iter: 0, Freq: current})
	}
	nf := r.G.AfterIteration(iter, duration, netWaitFrac, current)
	if nf != r.transitions[len(r.transitions)-1].Freq {
		r.transitions = append(r.transitions, Transition{Iter: iter + 1, Freq: nf})
	}
	return nf
}

// ObservePhases implements PhaseAware by forwarding to the wrapped
// governor when it is phase-aware.
func (r *ScheduleRecorder) ObservePhases(iter int, s PhaseSample) {
	if pa, ok := r.G.(PhaseAware); ok {
		pa.ObservePhases(iter, s)
	}
}

// Schedule returns the recorded transitions. Empty until the first
// iteration boundary.
func (r *ScheduleRecorder) Schedule() []Transition {
	return append([]Transition(nil), r.transitions...)
}

// String renders a transition compactly for logs and errors.
func (t Transition) String() string { return fmt.Sprintf("{%d @ %.2g Hz}", t.Iter, t.Freq) }
