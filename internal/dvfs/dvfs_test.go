package dvfs

import "testing"

var levels = []float64{0.2e9, 0.5e9, 0.8e9, 1.1e9, 1.4e9}

func mustGov(t *testing.T) *InterNodeSlack {
	t.Helper()
	g, err := NewInterNodeSlack(levels, 0.25, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStepDownOnSlack(t *testing.T) {
	g := mustGov(t)
	if got := g.AfterIteration(0, 1, 0.6, 1.4e9); got != 1.1e9 {
		t.Fatalf("high slack at fmax -> %g, want one level down", got)
	}
}

func TestStepUpWhenBusy(t *testing.T) {
	g := mustGov(t)
	if got := g.AfterIteration(0, 1, 0.0, 0.8e9); got != 1.1e9 {
		t.Fatalf("no slack at 0.8 GHz -> %g, want one level up", got)
	}
}

func TestHysteresisHolds(t *testing.T) {
	g := mustGov(t)
	if got := g.AfterIteration(0, 1, 0.15, 0.8e9); got != 0.8e9 {
		t.Fatalf("slack inside hysteresis band moved the level to %g", got)
	}
}

func TestClampedAtExtremes(t *testing.T) {
	g := mustGov(t)
	if got := g.AfterIteration(0, 1, 0.9, 0.2e9); got != 0.2e9 {
		t.Fatalf("stepped below fmin: %g", got)
	}
	if got := g.AfterIteration(0, 1, 0.0, 1.4e9); got != 1.4e9 {
		t.Fatalf("stepped above fmax: %g", got)
	}
}

func TestConvergesToFloorUnderPersistentSlack(t *testing.T) {
	g := mustGov(t)
	f := 1.4e9
	for i := 0; i < 10; i++ {
		f = g.AfterIteration(i, 1, 0.8, f)
	}
	if f != 0.2e9 {
		t.Fatalf("persistent slack settled at %g, want fmin", f)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := NewInterNodeSlack(nil, 0.25, 0.05); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := NewInterNodeSlack([]float64{2e9, 1e9}, 0.25, 0.05); err == nil {
		t.Error("unsorted levels accepted")
	}
	if _, err := NewInterNodeSlack(levels, 0.05, 0.25); err == nil {
		t.Error("inverted thresholds accepted")
	}
	g, err := NewInterNodeSlack(levels, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.DownThreshold != 0.25 || g.UpThreshold != 0.05 {
		t.Fatalf("defaults not applied: %+v", g)
	}
}

func TestFixedGovernor(t *testing.T) {
	g := Fixed(0.8e9)
	if got := g.AfterIteration(3, 1, 0.9, 1.4e9); got != 0.8e9 {
		t.Fatalf("Fixed governor returned %g", got)
	}
}

func TestMakespanGuardReverts(t *testing.T) {
	g := mustGov(t)
	// High slack at fmax: step down.
	f := g.AfterIteration(0, 1.0, 0.6, 1.4e9)
	if f != 1.1e9 {
		t.Fatalf("no down-step: %g", f)
	}
	// The next iteration is 20% longer: the slack was symmetric. Revert.
	f = g.AfterIteration(1, 1.2, 0.6, f)
	if f != 1.4e9 {
		t.Fatalf("guard did not revert: %g", f)
	}
	// And hold: further slack readings do not step down immediately.
	for i := 2; i < 2+g.HoldIters; i++ {
		if got := g.AfterIteration(i, 1.2, 0.6, f); got != f {
			t.Fatalf("hold violated at iteration %d: %g", i, got)
		}
	}
	// After the hold, probing resumes.
	if got := g.AfterIteration(99, 1.2, 0.6, f); got != 1.1e9 {
		t.Fatalf("probe after hold gave %g", got)
	}
}

func TestMakespanGuardKeepsGoodSteps(t *testing.T) {
	g := mustGov(t)
	f := g.AfterIteration(0, 1.0, 0.6, 1.4e9) // down to 1.1
	// Duration unchanged: the step was free; keep descending.
	f = g.AfterIteration(1, 1.0, 0.6, f)
	if f != 0.8e9 {
		t.Fatalf("good step not kept, now %g", f)
	}
}
