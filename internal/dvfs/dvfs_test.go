package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

var levels = []float64{0.2e9, 0.5e9, 0.8e9, 1.1e9, 1.4e9}

func mustGov(t *testing.T) *InterNodeSlack {
	t.Helper()
	g, err := NewInterNodeSlack(levels, 0.25, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStepDownOnSlack(t *testing.T) {
	g := mustGov(t)
	if got := g.AfterIteration(0, 1, 0.6, 1.4e9); got != 1.1e9 {
		t.Fatalf("high slack at fmax -> %g, want one level down", got)
	}
}

func TestStepUpWhenBusy(t *testing.T) {
	g := mustGov(t)
	if got := g.AfterIteration(0, 1, 0.0, 0.8e9); got != 1.1e9 {
		t.Fatalf("no slack at 0.8 GHz -> %g, want one level up", got)
	}
}

func TestHysteresisHolds(t *testing.T) {
	g := mustGov(t)
	if got := g.AfterIteration(0, 1, 0.15, 0.8e9); got != 0.8e9 {
		t.Fatalf("slack inside hysteresis band moved the level to %g", got)
	}
}

func TestClampedAtExtremes(t *testing.T) {
	g := mustGov(t)
	if got := g.AfterIteration(0, 1, 0.9, 0.2e9); got != 0.2e9 {
		t.Fatalf("stepped below fmin: %g", got)
	}
	if got := g.AfterIteration(0, 1, 0.0, 1.4e9); got != 1.4e9 {
		t.Fatalf("stepped above fmax: %g", got)
	}
}

func TestConvergesToFloorUnderPersistentSlack(t *testing.T) {
	g := mustGov(t)
	f := 1.4e9
	for i := 0; i < 10; i++ {
		f = g.AfterIteration(i, 1, 0.8, f)
	}
	if f != 0.2e9 {
		t.Fatalf("persistent slack settled at %g, want fmin", f)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := NewInterNodeSlack(nil, 0.25, 0.05); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := NewInterNodeSlack([]float64{2e9, 1e9}, 0.25, 0.05); err == nil {
		t.Error("unsorted levels accepted")
	}
	if _, err := NewInterNodeSlack(levels, 0.05, 0.25); err == nil {
		t.Error("inverted thresholds accepted")
	}
	g, err := NewInterNodeSlack(levels, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.DownThreshold != 0.25 || g.UpThreshold != 0.05 {
		t.Fatalf("defaults not applied: %+v", g)
	}
}

func TestNewValidationThresholdRange(t *testing.T) {
	cases := []struct{ down, up float64 }{
		{1.5, 0.05},         // down > 1
		{0.25, -0.1},        // negative up
		{-0.25, 0.05},       // negative down
		{math.NaN(), 0.05},  // NaN down
		{0.25, math.NaN()},  // NaN up
		{math.Inf(1), 0.05}, // infinite down
		{2, 1.5},            // both out of range
	}
	for _, c := range cases {
		if _, err := NewInterNodeSlack(levels, c.down, c.up); err == nil {
			t.Errorf("thresholds (%g, %g) accepted, want error", c.down, c.up)
		}
	}
	// The boundary down = 1 is legal: "step down only when the whole
	// iteration was network wait".
	if _, err := NewInterNodeSlack(levels, 1, 0.05); err != nil {
		t.Errorf("down = 1 rejected: %v", err)
	}
}

func TestOffGridFrequencySurfacesError(t *testing.T) {
	g := mustGov(t)
	if got := g.AfterIteration(0, 1, 0.6, 3.0e9); got != 3.0e9 {
		t.Fatalf("off-grid frequency was snapped to %g, want held at 3e9", got)
	}
	if g.Err() == nil {
		t.Fatal("off-grid frequency did not surface an error")
	}
	// On-grid operation never sets the error.
	g2 := mustGov(t)
	g2.AfterIteration(0, 1, 0.6, 1.4e9)
	if g2.Err() != nil {
		t.Fatalf("on-grid frequency surfaced error: %v", g2.Err())
	}
}

// TestAfterIterationTotal is the quick.Check property test of the bugfix:
// AfterIteration must be total — for any inputs, including NaN, ±Inf and
// negatives, it returns a finite positive frequency (a grid level, or the
// held current when current is a finite off-grid value), and an invalid
// duration must not poison the makespan guard's lastDur.
func TestAfterIterationTotal(t *testing.T) {
	// Derive adversarial floats from small uints so NaN/Inf/negatives are
	// all exercised, like queueing's TestClampedMG1WaitTotal.
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, -1e300, 0, 1e-9, 0.5, 1, 2, 1e300}
	pick := func(b uint8, scale float64) float64 {
		if int(b)%2 == 0 {
			return specials[int(b/2)%len(specials)]
		}
		return float64(b) * scale
	}
	g := mustGov(t)
	prop := func(it uint8, db, fb, cb uint8) bool {
		dur := pick(db, 0.01)
		frac := pick(fb, 0.005)
		cur := pick(cb, 1e7)
		got := g.AfterIteration(int(it), dur, frac, cur)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Logf("AfterIteration(%d, %g, %g, %g) = %g", it, dur, frac, cur, got)
			return false
		}
		// lastDur may only ever hold a valid sample.
		if !(g.lastDur >= 0) || math.IsInf(g.lastDur, 1) {
			t.Logf("lastDur poisoned to %g by duration %g", g.lastDur, dur)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestInvalidDurationKeepsMakespanGuard(t *testing.T) {
	g := mustGov(t)
	// Step down at iteration 0 with a 1 s iteration.
	if f := g.AfterIteration(0, 1.0, 0.6, 1.4e9); f != 1.1e9 {
		t.Fatalf("no down-step: %g", f)
	}
	// A NaN duration arrives (poisoned sample): ignored entirely.
	if f := g.AfterIteration(1, math.NaN(), 0.6, 1.1e9); f != 1.1e9 {
		t.Fatalf("invalid sample changed the level to %g", f)
	}
	// The next valid iteration is 20% longer: the guard must still
	// compare against the pre-poison duration and revert.
	if f := g.AfterIteration(2, 1.2, 0.6, 1.1e9); f != 1.4e9 {
		t.Fatalf("makespan guard lost across invalid sample; got %g", f)
	}
}

func TestFixedGovernor(t *testing.T) {
	g := Fixed(0.8e9)
	if got := g.AfterIteration(3, 1, 0.9, 1.4e9); got != 0.8e9 {
		t.Fatalf("Fixed governor returned %g", got)
	}
}

func TestMakespanGuardReverts(t *testing.T) {
	g := mustGov(t)
	// High slack at fmax: step down.
	f := g.AfterIteration(0, 1.0, 0.6, 1.4e9)
	if f != 1.1e9 {
		t.Fatalf("no down-step: %g", f)
	}
	// The next iteration is 20% longer: the slack was symmetric. Revert.
	f = g.AfterIteration(1, 1.2, 0.6, f)
	if f != 1.4e9 {
		t.Fatalf("guard did not revert: %g", f)
	}
	// And hold: further slack readings do not step down immediately.
	for i := 2; i < 2+g.HoldIters; i++ {
		if got := g.AfterIteration(i, 1.2, 0.6, f); got != f {
			t.Fatalf("hold violated at iteration %d: %g", i, got)
		}
	}
	// After the hold, probing resumes.
	if got := g.AfterIteration(99, 1.2, 0.6, f); got != 1.1e9 {
		t.Fatalf("probe after hold gave %g", got)
	}
}

func TestMakespanGuardKeepsGoodSteps(t *testing.T) {
	g := mustGov(t)
	f := g.AfterIteration(0, 1.0, 0.6, 1.4e9) // down to 1.1
	// Duration unchanged: the step was free; keep descending.
	f = g.AfterIteration(1, 1.0, 0.6, f)
	if f != 0.8e9 {
		t.Fatalf("good step not kept, now %g", f)
	}
}
