package dvfs

import "fmt"

// PhaseSample is one iteration's observed phase mix on a rank's node, in
// seconds of virtual time: the same Compute / MemStall / Network split the
// per-rank phase trace (internal/trace) records, read from the master
// core's counters at the iteration boundary.
type PhaseSample struct {
	Compute  float64 // executing work + non-memory pipeline stalls [s]
	MemStall float64 // waiting on memory [s]
	NetWait  float64 // blocked on network communication [s]
}

func (s PhaseSample) valid() bool {
	return finiteNonNeg(s.Compute) && finiteNonNeg(s.MemStall) && finiteNonNeg(s.NetWait)
}

// PhaseAware is implemented by governors that refine their decisions from
// per-iteration phase observations. Both workload engines call
// ObservePhases at each iteration boundary, immediately before
// AfterIteration, with the master core's counter deltas over the finished
// iteration. Governors that do not implement it see no change.
type PhaseAware interface {
	Governor
	ObservePhases(iter int, s PhaseSample)
}

// PhasePredictive schedules the next iteration's frequency from the
// observed phase mix, in the spirit of the energy-minimisation-under-a-
// performance-constraint runtime systems of the related work (Kappiah et
// al.; "Minimizing Energy Consumption of MPI Programs in Realistic
// Environment", arXiv:1502.06733): compute time scales roughly with 1/f
// while memory stalls and network waits are frequency-invariant, so the
// governor picks the lowest DVFS level whose predicted iteration time
// stays within MaxSlowdown of the top level's.
//
// The phase-mix estimate is an EWMA over the iterations seen so far. It
// can be seeded with a prior — typically the per-rank phase summary of a
// probe run recorded through exec.Request.PhaseSink — so the very first
// governed iteration already runs at the predicted-optimal level instead
// of the starting frequency.
type PhasePredictive struct {
	levels      []float64
	MaxSlowdown float64 // tolerated predicted slowdown vs the top level
	Alpha       float64 // EWMA weight of the newest sample

	cycles  float64 // EWMA compute cycles per iteration
	fixed   float64 // EWMA frequency-invariant seconds per iteration
	seeded  bool
	pending PhaseSample
	hasPend bool
}

// NewPhasePredictive creates the governor for a node's DVFS levels
// (ascending). observedAt is the frequency [Hz] at which prior was
// measured; pass observedAt = 0 to start without a prior (the governor
// then holds the current frequency until it has observed an iteration).
// A zero maxSlowdown defaults to 0.05; it must lie in (0, 1).
func NewPhasePredictive(levels []float64, observedAt float64, prior PhaseSample, maxSlowdown float64) (*PhasePredictive, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("dvfs: no DVFS levels")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] < levels[i-1] {
			return nil, fmt.Errorf("dvfs: levels must be ascending")
		}
	}
	if maxSlowdown == 0 {
		maxSlowdown = 0.05
	}
	if !(maxSlowdown > 0 && maxSlowdown < 1) { // also catches NaN
		return nil, fmt.Errorf("dvfs: MaxSlowdown %g must be in (0,1)", maxSlowdown)
	}
	g := &PhasePredictive{
		levels:      append([]float64(nil), levels...),
		MaxSlowdown: maxSlowdown,
		Alpha:       0.3,
	}
	if observedAt != 0 {
		if !(observedAt > 0) || !finite(observedAt) {
			return nil, fmt.Errorf("dvfs: prior frequency %g Hz must be finite and positive", observedAt)
		}
		if !prior.valid() {
			return nil, fmt.Errorf("dvfs: prior phase sample %+v must be finite and non-negative", prior)
		}
		g.cycles = prior.Compute * observedAt
		g.fixed = prior.MemStall + prior.NetWait
		g.seeded = true
	}
	return g, nil
}

// ObservePhases implements PhaseAware. Invalid samples (non-finite or
// negative components) are ignored. The sample is folded into the EWMA by
// the following AfterIteration call, which knows the frequency the
// iteration ran at.
func (g *PhasePredictive) ObservePhases(_ int, s PhaseSample) {
	if !s.valid() {
		return
	}
	g.pending = s
	g.hasPend = true
}

// AfterIteration implements Governor. It is total: invalid inputs leave
// the estimate untouched, and a non-finite or non-positive current
// frequency snaps to the highest level (fail-safe, matching
// InterNodeSlack).
func (g *PhasePredictive) AfterIteration(_ int, _ float64, _ float64, current float64) float64 {
	if !finitePos(current) {
		return g.levels[len(g.levels)-1]
	}
	if g.hasPend {
		g.hasPend = false
		cycles := g.pending.Compute * current
		fixed := g.pending.MemStall + g.pending.NetWait
		// The product can overflow to +Inf for absurd inputs; skip the
		// fold rather than poison the EWMA.
		if finite(cycles) && finite(fixed) {
			if g.seeded {
				g.cycles += g.Alpha * (cycles - g.cycles)
				g.fixed += g.Alpha * (fixed - g.fixed)
			} else {
				g.cycles, g.fixed = cycles, fixed
				g.seeded = true
			}
		}
	}
	if !g.seeded {
		return current
	}
	top := g.levels[len(g.levels)-1]
	budget := (g.cycles/top + g.fixed) * (1 + g.MaxSlowdown)
	for _, f := range g.levels {
		if g.cycles/f+g.fixed <= budget {
			return f
		}
	}
	return top
}
