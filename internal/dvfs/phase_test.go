package dvfs

import (
	"math"
	"testing"
	"testing/quick"
)

func mustPhase(t *testing.T, observedAt float64, prior PhaseSample) *PhasePredictive {
	t.Helper()
	g, err := NewPhasePredictive(levels, observedAt, prior, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPhasePredictiveValidation(t *testing.T) {
	if _, err := NewPhasePredictive(nil, 0, PhaseSample{}, 0.05); err == nil {
		t.Error("empty levels accepted")
	}
	if _, err := NewPhasePredictive([]float64{2e9, 1e9}, 0, PhaseSample{}, 0.05); err == nil {
		t.Error("unsorted levels accepted")
	}
	if _, err := NewPhasePredictive(levels, 0, PhaseSample{}, 1.5); err == nil {
		t.Error("MaxSlowdown > 1 accepted")
	}
	if _, err := NewPhasePredictive(levels, 0, PhaseSample{}, math.NaN()); err == nil {
		t.Error("NaN MaxSlowdown accepted")
	}
	if _, err := NewPhasePredictive(levels, math.Inf(1), PhaseSample{Compute: 1}, 0.05); err == nil {
		t.Error("infinite prior frequency accepted")
	}
	if _, err := NewPhasePredictive(levels, 1.4e9, PhaseSample{Compute: math.NaN()}, 0.05); err == nil {
		t.Error("NaN prior sample accepted")
	}
	g, err := NewPhasePredictive(levels, 0, PhaseSample{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.MaxSlowdown != 0.05 {
		t.Fatalf("default MaxSlowdown not applied: %g", g.MaxSlowdown)
	}
}

func TestPhasePredictiveHoldsWithoutEstimate(t *testing.T) {
	g := mustPhase(t, 0, PhaseSample{})
	if got := g.AfterIteration(0, 1, 0.5, 1.1e9); got != 1.1e9 {
		t.Fatalf("unseeded governor moved the level to %g", got)
	}
}

func TestPhasePredictiveComputeBoundStaysHigh(t *testing.T) {
	// Pure compute at the top level: any down-step slows the iteration by
	// the frequency ratio (0.2/1.4 would be 7x), far past 5%. Stay at top.
	g := mustPhase(t, 1.4e9, PhaseSample{Compute: 1.0})
	if got := g.AfterIteration(0, 1, 0, 1.4e9); got != 1.4e9 {
		t.Fatalf("compute-bound phase mix stepped down to %g", got)
	}
}

func TestPhasePredictiveMemoryBoundDropsToFloor(t *testing.T) {
	// 99.9% memory stall: compute time is negligible, so even the floor
	// level's 7x compute stretch stays under the 5% tolerance.
	g := mustPhase(t, 1.4e9, PhaseSample{Compute: 0.001, MemStall: 0.999})
	if got := g.AfterIteration(0, 1, 0, 1.4e9); got != 0.2e9 {
		t.Fatalf("memory-bound phase mix picked %g, want the floor", got)
	}
}

func TestPhasePredictivePicksIntermediateLevel(t *testing.T) {
	// 90/10 fixed/compute at 1.4 GHz: predicted time at level f is
	// 0.1*1.4e9/f + 0.9 against a budget of 1.05. 0.8 GHz gives 1.075
	// (infeasible), 1.1 GHz gives 1.027 (feasible) — the governor must
	// pick exactly 1.1 GHz, the lowest feasible level.
	g := mustPhase(t, 1.4e9, PhaseSample{Compute: 0.1, NetWait: 0.9})
	if got := g.AfterIteration(0, 1, 0, 1.4e9); got != 1.1e9 {
		t.Fatalf("picked %g, want the lowest feasible level 1.1e9", got)
	}
}

func TestPhasePredictiveLearnsOnline(t *testing.T) {
	// Unseeded governor observes memory-bound iterations and converges to
	// a lower level.
	g := mustPhase(t, 0, PhaseSample{})
	f := 1.4e9
	for i := 0; i < 5; i++ {
		g.ObservePhases(i, PhaseSample{Compute: 0.01, MemStall: 0.99})
		f = g.AfterIteration(i, 1, 0, f)
	}
	if f != 0.2e9 {
		t.Fatalf("online learning settled at %g, want the floor", f)
	}
	// Workload turns compute-bound: the EWMA adapts back up.
	for i := 5; i < 30; i++ {
		g.ObservePhases(i, PhaseSample{Compute: 1.0})
		f = g.AfterIteration(i, 1, 0, f)
	}
	if f != 1.4e9 {
		t.Fatalf("EWMA did not adapt to a compute-bound shift; at %g", f)
	}
}

func TestPhasePredictiveIgnoresInvalidSamples(t *testing.T) {
	g := mustPhase(t, 1.4e9, PhaseSample{Compute: 1.0})
	g.ObservePhases(0, PhaseSample{Compute: math.NaN()})
	g.ObservePhases(0, PhaseSample{MemStall: -1})
	if got := g.AfterIteration(0, 1, 0, 1.4e9); got != 1.4e9 {
		t.Fatalf("invalid sample changed the decision to %g", got)
	}
}

func TestPhasePredictiveTotal(t *testing.T) {
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1, 0, 1e-9, 0.5, 1, 1e300}
	pick := func(b uint8, scale float64) float64 {
		if int(b)%2 == 0 {
			return specials[int(b/2)%len(specials)]
		}
		return float64(b) * scale
	}
	g := mustPhase(t, 1.4e9, PhaseSample{Compute: 0.3, MemStall: 0.3, NetWait: 0.4})
	prop := func(it, cb, mb, nb, fb uint8) bool {
		g.ObservePhases(int(it), PhaseSample{
			Compute:  pick(cb, 0.01),
			MemStall: pick(mb, 0.01),
			NetWait:  pick(nb, 0.01),
		})
		got := g.AfterIteration(int(it), 1, 0, pick(fb, 1e7))
		return !math.IsNaN(got) && !math.IsInf(got, 0) && got > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestScheduleRecorder(t *testing.T) {
	slack := mustGov(t)
	r := &ScheduleRecorder{G: slack}
	f := 1.4e9
	fracs := []float64{0.6, 0.0, 0.6, 0.6}
	for i, frac := range fracs {
		f = r.AfterIteration(i, 1, frac, f)
	}
	sched := r.Schedule()
	if len(sched) == 0 || sched[0] != (Transition{Iter: 0, Freq: 1.4e9}) {
		t.Fatalf("schedule must open with the start frequency: %v", sched)
	}
	// Replay the schedule and check it reproduces the final frequency.
	last := sched[len(sched)-1]
	if last.Freq != f {
		t.Fatalf("schedule tail %v does not match final frequency %g", last, f)
	}
	for i := 1; i < len(sched); i++ {
		if sched[i].Freq == sched[i-1].Freq {
			t.Fatalf("redundant transition recorded: %v", sched)
		}
		if sched[i].Iter <= sched[i-1].Iter {
			t.Fatalf("non-monotone iterations: %v", sched)
		}
	}
}

func TestScheduleRecorderForwardsPhases(t *testing.T) {
	inner := mustPhase(t, 0, PhaseSample{})
	r := &ScheduleRecorder{G: inner}
	var pa PhaseAware = r // the wrapper must remain phase-aware
	pa.ObservePhases(0, PhaseSample{Compute: 0.001, MemStall: 0.999})
	if got := r.AfterIteration(0, 1, 0, 1.4e9); got != 0.2e9 {
		t.Fatalf("observation not forwarded; decision %g", got)
	}
}

func TestPolicies(t *testing.T) {
	ps := Policies()
	if len(ps) < 3 {
		t.Fatalf("policy suite has %d policies, want >= 3", len(ps))
	}
	for _, p := range ps {
		if !ValidPolicy(p) {
			t.Errorf("ValidPolicy(%q) = false", p)
		}
	}
	if ValidPolicy("turbo") {
		t.Error("unknown policy accepted")
	}
}
