// Package dvfs implements runtime frequency governors for the simulated
// cluster — the DVFS techniques of the paper's related work (Sec. II.A:
// Kappiah et al., Ge et al., Hsu & Feng), which exploit inter-node slack
// by lowering the frequency of nodes that idle at synchronisation points.
// The paper notes these run-time techniques "can be used in conjunction
// with our proposed approach": first pick a Pareto-optimal static
// configuration with the model, then let a governor shave the residual
// slack. The `dvfs` experiment artifact quantifies exactly that.
package dvfs

import (
	"fmt"
	"math"
	"sort"
)

// Governor decides a node's DVFS level at iteration boundaries.
// Implementations are per-rank (they may keep state) and are invoked by
// the workload runner on the master thread.
type Governor interface {
	// AfterIteration observes one finished iteration: its index, its
	// duration [s], the fraction of it the rank spent blocked on the
	// network, and the current frequency [Hz]. It returns the frequency
	// for the next iteration (possibly unchanged).
	AfterIteration(iter int, duration, netWaitFrac, current float64) float64
}

// InterNodeSlack is a just-in-time slack-reclamation governor: if a rank
// spends more than DownThreshold of an iteration waiting on the network,
// the node steps one DVFS level down (computation is not the critical
// path); if the wait fraction falls below UpThreshold, it steps back up.
// Hysteresis between the thresholds avoids oscillation.
//
// A makespan guard makes it safe on balanced SPMD codes, where slack is
// symmetric (every rank waits on every other) and naive down-stepping
// stretches the global critical path: if the iteration following a
// down-step is noticeably longer, the step is reverted and the governor
// holds for HoldIters iterations before probing again.
type InterNodeSlack struct {
	levels        []float64
	DownThreshold float64 // step down above this network-wait fraction
	UpThreshold   float64 // step up below this fraction
	GuardFactor   float64 // revert a down-step if duration grows past this
	HoldIters     int     // iterations to hold after a reverted step

	lastDur     float64
	steppedDown bool
	hold        int
	err         error
}

// NewInterNodeSlack creates the governor for a node's DVFS levels
// (ascending). Zero thresholds default to 0.25/0.05; both must lie in
// (0, 1] — they are fractions of an iteration. The makespan guard
// defaults to 1.05 with an 8-iteration hold.
func NewInterNodeSlack(levels []float64, down, up float64) (*InterNodeSlack, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("dvfs: no DVFS levels")
	}
	if !sort.Float64sAreSorted(levels) {
		return nil, fmt.Errorf("dvfs: levels must be ascending")
	}
	if down == 0 {
		down = 0.25
	}
	if up == 0 {
		up = 0.05
	}
	if !(down > 0 && down <= 1) { // also catches NaN
		return nil, fmt.Errorf("dvfs: DownThreshold %g must be in (0,1]", down)
	}
	if !(up > 0 && up <= 1) {
		return nil, fmt.Errorf("dvfs: UpThreshold %g must be in (0,1]", up)
	}
	if up >= down {
		return nil, fmt.Errorf("dvfs: UpThreshold %g must be below DownThreshold %g", up, down)
	}
	return &InterNodeSlack{
		levels:        append([]float64(nil), levels...),
		DownThreshold: down,
		UpThreshold:   up,
		GuardFactor:   1.05,
		HoldIters:     8,
	}, nil
}

// AfterIteration implements Governor. It is total in the same spirit as
// queueing.ClampedMG1Wait: a non-finite or negative duration is an invalid
// sample and is ignored outright (state, including the makespan guard's
// lastDur, is untouched); a non-finite netWaitFrac is treated as 0 and a
// finite one is clamped into [0,1]; a non-finite or non-positive current
// frequency snaps to the highest level (fail-safe: never slower than
// asked). An off-grid current is held unchanged and recorded — see Err.
func (g *InterNodeSlack) AfterIteration(_ int, duration, netWaitFrac, current float64) float64 {
	if !finitePos(current) {
		return g.levels[len(g.levels)-1]
	}
	if !finiteNonNeg(duration) {
		return current
	}
	if !(netWaitFrac >= 0) { // also catches NaN
		netWaitFrac = 0
	} else if netWaitFrac > 1 {
		netWaitFrac = 1
	}
	idx, ok := g.levelIndex(current)
	if !ok {
		if g.err == nil {
			g.err = fmt.Errorf("dvfs: frequency %g Hz is not on the level grid %v", current, g.levels)
		}
		return current
	}
	prevDur := g.lastDur
	g.lastDur = duration

	if g.hold > 0 {
		g.hold--
		g.steppedDown = false
		return current
	}
	if g.steppedDown {
		g.steppedDown = false
		if prevDur > 0 && duration > prevDur*g.GuardFactor {
			// The down-step stretched the iteration: the slack was not
			// real (symmetric waiting). Revert and hold.
			g.hold = g.HoldIters
			if idx < len(g.levels)-1 {
				return g.levels[idx+1]
			}
			return current
		}
	}
	switch {
	case netWaitFrac > g.DownThreshold && idx > 0:
		g.steppedDown = true
		return g.levels[idx-1]
	case netWaitFrac < g.UpThreshold && idx < len(g.levels)-1:
		return g.levels[idx+1]
	}
	return current
}

// Err reports the first invalid frequency this governor was handed: a
// current frequency off the level grid (beyond gridTolerance). The
// governor holds the frequency unchanged in that case rather than
// silently snapping to the closest level; callers that drive it from an
// external frequency source should check Err after the run.
func (g *InterNodeSlack) Err() error { return g.err }

// gridTolerance is the relative slop levelIndex accepts when matching a
// frequency against the level grid. Frequencies come from the same
// profile grid the governor was built from, so matches are exact in
// practice; the tolerance only absorbs benign formatting round-trips.
const gridTolerance = 1e-9

// levelIndex returns the index of the level matching f, or ok=false when
// f is off the grid (no level within gridTolerance, relatively).
func (g *InterNodeSlack) levelIndex(f float64) (int, bool) {
	best, bestD := 0, -1.0
	for i, l := range g.levels {
		d := l - f
		if d < 0 {
			d = -d
		}
		if bestD < 0 || d < bestD {
			best, bestD = i, d
		}
	}
	scale := math.Abs(g.levels[best])
	if scale < 1 {
		scale = 1
	}
	return best, bestD <= gridTolerance*scale
}

// finite reports whether x is a finite number.
func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// finitePos reports whether x is a finite, strictly positive number.
func finitePos(x float64) bool { return x > 0 && !math.IsInf(x, 1) }

// finiteNonNeg reports whether x is a finite, non-negative number.
func finiteNonNeg(x float64) bool { return x >= 0 && !math.IsInf(x, 1) }

// Fixed is a governor that pins a constant frequency — the degenerate
// baseline, useful in tests and comparisons.
type Fixed float64

// AfterIteration implements Governor.
func (f Fixed) AfterIteration(int, float64, float64, float64) float64 { return float64(f) }
