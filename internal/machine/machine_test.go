package machine

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuiltinProfilesValid(t *testing.T) {
	for name, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	x := XeonE5()
	if x.MaxNodes != 8 || x.CoresPerNode != 8 || len(x.Frequencies) != 3 {
		t.Errorf("Xeon shape: %d nodes, %d cores, %d levels", x.MaxNodes, x.CoresPerNode, len(x.Frequencies))
	}
	if x.FMin() != 1.2e9 || x.FMax() != 1.8e9 {
		t.Errorf("Xeon DVFS range %g-%g", x.FMin(), x.FMax())
	}
	if x.LinkBandwidth != 1e9 {
		t.Errorf("Xeon link %g, want 1 Gbps", x.LinkBandwidth)
	}
	a := ARMCortexA9()
	if a.MaxNodes != 8 || a.CoresPerNode != 4 || len(a.Frequencies) != 5 {
		t.Errorf("ARM shape: %d nodes, %d cores, %d levels", a.MaxNodes, a.CoresPerNode, len(a.Frequencies))
	}
	if a.FMin() != 0.2e9 || a.FMax() != 1.4e9 {
		t.Errorf("ARM DVFS range %g-%g", a.FMin(), a.FMax())
	}
	if a.LinkBandwidth != 100e6 {
		t.Errorf("ARM link %g, want 100 Mbps", a.LinkBandwidth)
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("xeon"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("arm"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("riscv"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

func TestPowerCurveMonotone(t *testing.T) {
	for _, p := range []*Profile{XeonE5(), ARMCortexA9()} {
		prev := 0.0
		for _, f := range p.Frequencies {
			w := p.PCoreAct.At(f)
			if w <= prev {
				t.Errorf("%s: active power not increasing at %.1f GHz (%g <= %g)", p.Name, f/1e9, w, prev)
			}
			prev = w
			if s := p.PCoreStall(f); s >= w || s <= 0 {
				t.Errorf("%s: stall power %g not in (0, active %g)", p.Name, s, w)
			}
		}
	}
}

func TestPowerCurveNoFRef(t *testing.T) {
	pc := PowerCurve{Static: 3}
	if pc.At(1e9) != 3 {
		t.Fatalf("zero-FRef curve should be static-only, got %g", pc.At(1e9))
	}
}

func TestEffectiveNetBandwidthSaturates(t *testing.T) {
	p := ARMCortexA9()
	peak := p.NetEfficiency * p.LinkBandwidth / 8
	small := p.EffectiveNetBandwidth(64)
	large := p.EffectiveNetBandwidth(16 << 20)
	if small >= large {
		t.Fatalf("effective bandwidth not increasing: %g >= %g", small, large)
	}
	if large > peak {
		t.Fatalf("effective bandwidth %g exceeds peak %g", large, peak)
	}
	if large < peak*0.99 {
		t.Fatalf("large-message bandwidth %g should be close to peak %g", large, peak)
	}
	if got := p.EffectiveNetBandwidth(0); got != peak {
		t.Fatalf("zero-size bandwidth = %g, want peak", got)
	}
}

// Property: message service time is strictly increasing in size.
func TestMsgServiceTimeMonotone(t *testing.T) {
	p := XeonE5()
	f := func(a, b uint32) bool {
		sa, sb := float64(a%(64<<20)), float64(b%(64<<20))
		if sa > sb {
			sa, sb = sb, sa
		}
		return p.MsgServiceTime(sa) <= p.MsgServiceTime(sb)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHasFrequency(t *testing.T) {
	p := XeonE5()
	if !p.HasFrequency(1.5e9) {
		t.Error("1.5 GHz should be a Xeon level")
	}
	if p.HasFrequency(1.6e9) {
		t.Error("1.6 GHz is not a Xeon level")
	}
}

func TestValidateConfig(t *testing.T) {
	p := XeonE5()
	good := Config{Nodes: 8, Cores: 8, Freq: 1.8e9}
	if err := p.ValidateConfig(good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := []Config{
		{Nodes: 0, Cores: 1, Freq: 1.2e9},
		{Nodes: 1, Cores: 0, Freq: 1.2e9},
		{Nodes: 1, Cores: 9, Freq: 1.2e9},
		{Nodes: 1, Cores: 1, Freq: 1.3e9},
		{Nodes: 9, Cores: 1, Freq: 1.2e9}, // beyond the physical cluster
	}
	for _, cfg := range bad {
		if err := p.ValidateConfig(cfg); err == nil {
			t.Errorf("invalid config %v accepted", cfg)
		}
	}
	// The model may extrapolate nodes.
	if err := p.ValidateModelConfig(Config{Nodes: 256, Cores: 8, Freq: 1.8e9}); err != nil {
		t.Errorf("model config with 256 nodes rejected: %v", err)
	}
}

func TestProfileValidateCatchesCorruption(t *testing.T) {
	mutations := []func(*Profile){
		func(p *Profile) { p.MaxNodes = 0 },
		func(p *Profile) { p.CoresPerNode = 0 },
		func(p *Profile) { p.Frequencies = nil },
		func(p *Profile) { p.Frequencies = []float64{2e9, 1e9} },
		func(p *Profile) { p.Frequencies = []float64{-1, 1e9} },
		func(p *Profile) { p.CyclesPerWork = 0 },
		func(p *Profile) { p.MemBandwidth = 0 },
		func(p *Profile) { p.MemCoreBandwidth = 0 },
		func(p *Profile) { p.MemCoreBandwidth = p.MemBandwidth * 2 },
		func(p *Profile) { p.MemTrafficFactor = 0 },
		func(p *Profile) { p.MemBurstBytes = 0 },
		func(p *Profile) { p.LinkBandwidth = 0 },
		func(p *Profile) { p.NetEfficiency = 0 },
		func(p *Profile) { p.NetEfficiency = 1.5 },
		func(p *Profile) { p.PSysIdle = -1 },
	}
	for i, mutate := range mutations {
		p := XeonE5()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestConfigString(t *testing.T) {
	cfg := Config{Nodes: 4, Cores: 8, Freq: 1.8e9}
	if got := cfg.String(); got != "(4,8,1.8)" {
		t.Fatalf("String() = %q", got)
	}
	if math.Abs(cfg.GHz()-1.8) > 1e-12 {
		t.Fatalf("GHz() = %g", cfg.GHz())
	}
	cf := CF{Cores: 2, Freq: 0.5e9}
	if !strings.Contains(cf.String(), "0.5GHz") {
		t.Fatalf("CF.String() = %q", cf.String())
	}
}

func TestTopologyValidation(t *testing.T) {
	p := XeonE5()
	if p.Topology != "" {
		t.Fatalf("built-in profile topology %q, want default shared", p.Topology)
	}
	p.Topology = TopologyCrossbar
	if err := p.Validate(); err != nil {
		t.Fatalf("crossbar rejected: %v", err)
	}
	p.Topology = Topology("torus")
	if err := p.Validate(); err == nil {
		t.Fatal("unknown topology accepted")
	}
}
