// Package machine defines the hardware profiles the simulator and the
// analytical model share: node/core counts, DVFS levels, memory and network
// capabilities, and the power curves that drive energy accounting.
//
// Two built-in profiles mirror Table 3 of the paper: an Intel Xeon E5-2603
// cluster (8 nodes x 8 cores, 1.2-1.8 GHz, 1 Gbps Ethernet) and an ARM
// Cortex-A9 cluster (8 nodes x 4 cores, 0.2-1.4 GHz, 100 Mbps Ethernet).
// Power-curve constants are calibrated to the dynamic ranges the paper
// reports (tens of watts per Xeon node, single-digit watts per ARM node).
package machine

import (
	"fmt"
	"math"
	"sort"
)

// Config identifies one execution configuration (n, c, f): number of nodes,
// active cores per node, and core clock frequency in Hz.
type Config struct {
	Nodes int
	Cores int
	Freq  float64 // Hz
}

// GHz returns the configuration frequency in gigahertz.
func (c Config) GHz() float64 { return c.Freq / 1e9 }

// String renders the configuration as the paper does: (n,c,f[GHz]).
func (c Config) String() string {
	return fmt.Sprintf("(%d,%d,%.1f)", c.Nodes, c.Cores, c.GHz())
}

// CF identifies a (cores, frequency) baseline measurement point.
type CF struct {
	Cores int
	Freq  float64 // Hz
}

// String renders the point as (c, f[GHz]).
func (p CF) String() string { return fmt.Sprintf("(%d,%.1fGHz)", p.Cores, p.Freq/1e9) }

// PowerCurve models per-core active power as a function of frequency:
// P(f) = Static + Dyn * (f/fRef)^Exp, the usual static+dynamic CMOS split
// with voltage folded into the exponent.
type PowerCurve struct {
	Static float64 // W, frequency-independent share
	Dyn    float64 // W at the reference frequency
	FRef   float64 // Hz
	Exp    float64 // typically 1.8-3.0
}

// At returns the curve's power at frequency f [Hz].
func (pc PowerCurve) At(f float64) float64 {
	if pc.FRef <= 0 {
		return pc.Static
	}
	return pc.Static + pc.Dyn*math.Pow(f/pc.FRef, pc.Exp)
}

// Topology selects the interconnect contention model.
type Topology string

const (
	// TopologyShared is the paper's star-topology abstraction: one shared
	// FCFS server for all traffic (the M/G/1 of Eq. 5). The default.
	TopologyShared Topology = "shared"
	// TopologyCrossbar is a non-blocking switch with per-node ports:
	// contention only at shared sources/destinations.
	TopologyCrossbar Topology = "crossbar"
)

// Profile describes a homogeneous cluster: identical nodes behind an
// Ethernet switch (shared-medium star topology by default, as in the
// paper's validation setup).
type Profile struct {
	Name string
	ISA  string

	// Topology selects the interconnect model; empty means TopologyShared.
	Topology Topology

	// Topology and configuration space.
	MaxNodes     int       // nodes physically present for "measurement"
	CoresPerNode int       // cmax
	Frequencies  []float64 // DVFS levels [Hz], ascending

	// Execution character.
	CyclesPerWork float64 // core cycles consumed per abstract work unit
	BaseStallFrac float64 // ISA factor for non-memory (pipeline) stalls

	// Memory hierarchy. A core's memory burst has a private portion
	// (limited instruction-level parallelism: the core alone cannot
	// saturate the controller) and a shared portion serialised at the
	// UMA memory controller; MemTrafficFactor scales a program's
	// DRAM traffic for the cache capacity of this node (the Xeon's
	// 20 MB L3 absorbs traffic the ARM's 1 MB L2 cannot).
	MemBurstBytes    float64 // preferred memory-controller request size [B]
	MemBandwidth     float64 // node memory-controller throughput [B/s]
	MemCoreBandwidth float64 // single-core achievable throughput [B/s]
	MemTrafficFactor float64 // DRAM traffic multiplier vs. cache-rich baseline
	MemFixedLat      float64 // per-burst controller latency [s]

	// Network (per Table 3 I/O bandwidth).
	LinkBandwidth  float64 // raw link rate [bit/s]
	NetEfficiency  float64 // achievable fraction of raw rate (Fig 3: ~0.9)
	NetHalfSatB    float64 // message size at which half the peak is reached [B]
	NetMsgOverhead float64 // fixed per-message software/switch overhead [s]

	// Power model.
	PSysIdle   float64    // whole-node idle power [W]
	PCoreAct   PowerCurve // per-core power while executing work cycles [W]
	StallPower float64    // stall power as a fraction of active power
	PMem       float64    // memory subsystem power while servicing [W]
	PNet       float64    // NIC power while transmitting/receiving [W]

	// Measurement quality (paper Sec. IV.C: power characterisation varies
	// by up to 2 W on Xeon, 0.4 W on ARM).
	MeterNoiseW float64 // stddev of power measurement noise [W]
	OSJitter    float64 // relative stddev of compute-burst perturbation
}

// FMin returns the lowest DVFS level.
func (p *Profile) FMin() float64 { return p.Frequencies[0] }

// FMax returns the highest DVFS level.
func (p *Profile) FMax() float64 { return p.Frequencies[len(p.Frequencies)-1] }

// HasFrequency reports whether f is one of the profile's DVFS levels.
func (p *Profile) HasFrequency(f float64) bool {
	for _, g := range p.Frequencies {
		if g == f {
			return true
		}
	}
	return false
}

// PCoreStall returns per-core power during memory stalls at frequency f.
func (p *Profile) PCoreStall(f float64) float64 {
	return p.PCoreAct.At(f) * p.StallPower
}

// EffectiveNetBandwidth returns the achievable network throughput [B/s] for
// messages of the given size, following the saturating curve NetPIPE
// measures in Figure 3: small messages are overhead-dominated, large ones
// approach NetEfficiency x LinkBandwidth.
func (p *Profile) EffectiveNetBandwidth(msgBytes float64) float64 {
	peak := p.NetEfficiency * p.LinkBandwidth / 8 // B/s
	if msgBytes <= 0 {
		return peak
	}
	return peak * msgBytes / (msgBytes + p.NetHalfSatB)
}

// MsgServiceTime returns the switch service time for one message of the
// given size: fixed software overhead plus wire time at the effective rate.
func (p *Profile) MsgServiceTime(msgBytes float64) float64 {
	return p.NetMsgOverhead + msgBytes/p.EffectiveNetBandwidth(msgBytes)
}

// Validate checks profile consistency; programs should call it once when
// accepting a user-supplied custom profile.
func (p *Profile) Validate() error {
	switch {
	case p.MaxNodes < 1:
		return fmt.Errorf("machine %s: MaxNodes must be >= 1", p.Name)
	case p.CoresPerNode < 1:
		return fmt.Errorf("machine %s: CoresPerNode must be >= 1", p.Name)
	case len(p.Frequencies) == 0:
		return fmt.Errorf("machine %s: no DVFS levels", p.Name)
	case !sort.Float64sAreSorted(p.Frequencies):
		return fmt.Errorf("machine %s: frequencies must be ascending", p.Name)
	case p.Frequencies[0] <= 0:
		return fmt.Errorf("machine %s: frequencies must be positive", p.Name)
	case p.CyclesPerWork <= 0:
		return fmt.Errorf("machine %s: CyclesPerWork must be positive", p.Name)
	case p.MemBandwidth <= 0:
		return fmt.Errorf("machine %s: MemBandwidth must be positive", p.Name)
	case p.MemCoreBandwidth <= 0 || p.MemCoreBandwidth > p.MemBandwidth:
		return fmt.Errorf("machine %s: MemCoreBandwidth must be in (0, MemBandwidth]", p.Name)
	case p.MemTrafficFactor <= 0:
		return fmt.Errorf("machine %s: MemTrafficFactor must be positive", p.Name)
	case p.MemBurstBytes <= 0:
		return fmt.Errorf("machine %s: MemBurstBytes must be positive", p.Name)
	case p.LinkBandwidth <= 0:
		return fmt.Errorf("machine %s: LinkBandwidth must be positive", p.Name)
	case p.NetEfficiency <= 0 || p.NetEfficiency > 1:
		return fmt.Errorf("machine %s: NetEfficiency must be in (0,1]", p.Name)
	case p.Topology != "" && p.Topology != TopologyShared && p.Topology != TopologyCrossbar:
		return fmt.Errorf("machine %s: unknown topology %q", p.Name, p.Topology)
	case p.PSysIdle < 0 || p.PMem < 0 || p.PNet < 0:
		return fmt.Errorf("machine %s: negative power parameter", p.Name)
	}
	return nil
}

// ValidateConfig checks that cfg is executable on this profile for
// measurement purposes (n within the physical cluster). Model predictions
// may extrapolate beyond MaxNodes; use ValidateModelConfig for those.
func (p *Profile) ValidateConfig(cfg Config) error {
	if err := p.ValidateModelConfig(cfg); err != nil {
		return err
	}
	if cfg.Nodes > p.MaxNodes {
		return fmt.Errorf("machine %s: %d nodes exceeds physical cluster of %d", p.Name, cfg.Nodes, p.MaxNodes)
	}
	return nil
}

// ValidateModelConfig checks structural validity of cfg (cores and
// frequency must exist on the node) without bounding the node count, since
// the analytical model may explore clusters larger than the testbed.
func (p *Profile) ValidateModelConfig(cfg Config) error {
	switch {
	case cfg.Nodes < 1:
		return fmt.Errorf("machine %s: config %v: nodes must be >= 1", p.Name, cfg)
	case cfg.Cores < 1 || cfg.Cores > p.CoresPerNode:
		return fmt.Errorf("machine %s: config %v: cores must be in [1,%d]", p.Name, cfg, p.CoresPerNode)
	case !p.HasFrequency(cfg.Freq):
		return fmt.Errorf("machine %s: config %v: frequency %.2f GHz is not a DVFS level", p.Name, cfg, cfg.GHz())
	}
	return nil
}

// XeonE5 returns the Intel Xeon E5-2603 cluster profile from Table 3:
// 8 nodes, 8 cores/node (dual socket), 1.2/1.5/1.8 GHz, 8 GB DDR3,
// 1 Gbps Ethernet.
func XeonE5() *Profile {
	return &Profile{
		Name:         "xeon-e5-2603",
		ISA:          "x86_64",
		MaxNodes:     8,
		CoresPerNode: 8,
		Frequencies:  []float64{1.2e9, 1.5e9, 1.8e9},

		CyclesPerWork:    1.0,
		BaseStallFrac:    0.6, // deep OOO pipeline hides most hazards
		MemBurstBytes:    4 << 20,
		MemBandwidth:     12.8e9,
		MemCoreBandwidth: 8.0e9,
		MemTrafficFactor: 1.0, // 20 MB L3 keeps DRAM traffic at baseline
		MemFixedLat:      2e-6,

		LinkBandwidth:  1e9,
		NetEfficiency:  0.90,
		NetHalfSatB:    8 << 10,
		NetMsgOverhead: 50e-6,

		PSysIdle:   68.0,
		PCoreAct:   PowerCurve{Static: 1.2, Dyn: 4.8, FRef: 1.8e9, Exp: 2.4},
		StallPower: 0.62,
		PMem:       9.0,
		PNet:       4.5,

		MeterNoiseW: 2.0,
		OSJitter:    0.03,
	}
}

// ARMCortexA9 returns the ARM Cortex-A9 cluster profile from Table 3:
// 8 nodes, 4 cores/node, 0.2-1.4 GHz, 1 GB LP-DDR2, 100 Mbps Ethernet.
func ARMCortexA9() *Profile {
	return &Profile{
		Name:         "arm-cortex-a9",
		ISA:          "armv7-a",
		MaxNodes:     8,
		CoresPerNode: 4,
		Frequencies:  []float64{0.2e9, 0.5e9, 0.8e9, 1.1e9, 1.4e9},

		CyclesPerWork:    2.5, // weaker IPC than the Xeon's wide OOO core
		BaseStallFrac:    2.2, // shallow pipeline exposes hazards
		MemBurstBytes:    1 << 20,
		MemBandwidth:     1.0e9,
		MemCoreBandwidth: 0.28e9,
		MemTrafficFactor: 7.0, // 1 MB L2, no L3: most traffic reaches DRAM
		MemFixedLat:      6e-6,

		LinkBandwidth:  100e6,
		NetEfficiency:  0.90,
		NetHalfSatB:    4 << 10,
		NetMsgOverhead: 80e-6,

		PSysIdle:   2.6,
		PCoreAct:   PowerCurve{Static: 0.08, Dyn: 0.85, FRef: 1.4e9, Exp: 1.9},
		StallPower: 0.55,
		PMem:       0.7,
		PNet:       0.9,

		MeterNoiseW: 0.4,
		OSJitter:    0.03,
	}
}

// Profiles returns the built-in profiles keyed by name.
func Profiles() map[string]*Profile {
	return map[string]*Profile{
		"xeon": XeonE5(),
		"arm":  ARMCortexA9(),
	}
}

// ByName returns a built-in profile ("xeon" or "arm").
func ByName(name string) (*Profile, error) {
	p, ok := Profiles()[name]
	if !ok {
		return nil, fmt.Errorf("machine: unknown profile %q (want xeon or arm)", name)
	}
	return p, nil
}
