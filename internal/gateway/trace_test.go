package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"hybridperf/internal/cluster"
	"hybridperf/internal/telemetry"
)

// logBuffer is a concurrency-safe sink for one process's slog output, so
// the chain test can grep each hop's access log independently.
type logBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *logBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *logBuffer) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// newTracedCluster boots two shards and a gateway, every hop logging
// into its own buffer and the gateway sampling every fresh trace.
func newTracedCluster(t *testing.T) (g *Gateway, gts *httptest.Server, bufs []*logBuffer, peers []string) {
	t.Helper()
	const n = 2
	bufs = make([]*logBuffer, n+1) // [0] gateway, [1..] shards
	for i := range bufs {
		bufs[i] = &logBuffer{}
	}
	shards := make([]*httptest.Server, n)
	servers := make([]*telemetry.Server, n)
	peers = make([]string, n)
	for i := range shards {
		servers[i] = telemetry.NewServer(telemetry.Config{
			Workers:       2,
			Seed:          42,
			ResponseCache: 64,
			Logger:        slog.New(slog.NewTextHandler(bufs[i+1], nil)),
		})
		servers[i].SetReady(true)
		shards[i] = httptest.NewServer(servers[i].Handler())
		t.Cleanup(shards[i].Close)
		peers[i] = shards[i].URL
	}
	for i, s := range servers {
		if err := s.SetCluster(peers[i], peers); err != nil {
			t.Fatal(err)
		}
	}
	g, err := New(peers, slog.New(slog.NewTextHandler(bufs[0], nil)))
	if err != nil {
		t.Fatal(err)
	}
	g.SetTraceSample(1)
	gts = httptest.NewServer(g.Handler())
	t.Cleanup(gts.Close)
	return g, gts, bufs, peers
}

// splitBatchBody builds a batch with one tuple owned by each shard, so
// the fan-out deterministically spans the whole cluster.
func splitBatchBody(t *testing.T, g *Gateway, peers []string) string {
	t.Helper()
	perPeer := map[string][2]string{}
	for _, sys := range []string{"xeon", "arm"} {
		for _, prog := range []string{"SP", "CP", "LB", "FT"} {
			owner := g.ring.Owner(cluster.ModelKey(sys, prog))
			if _, ok := perPeer[owner]; !ok {
				perPeer[owner] = [2]string{sys, prog}
			}
		}
	}
	if len(perPeer) < len(peers) {
		t.Fatalf("catalogue keys cover %d of %d shards", len(perPeer), len(peers))
	}
	var tuples []string
	for _, p := range peers {
		sys, prog := perPeer[p][0], perPeer[p][1]
		freq := 1.8
		if sys == "arm" {
			freq = 1.4
		}
		tuples = append(tuples, fmt.Sprintf(`{"system":%q,"program":%q,"nodes":2,"cores":2,"freq_ghz":%g}`, sys, prog, freq))
	}
	return `{"class":"A","tuples":[` + strings.Join(tuples, ",") + `]}`
}

// chromeDoc is the stitched export's shape, as a client sees it.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

// TestGatewayStitchedTrace: the acceptance chain. One sampled batch
// through the gateway spanning both shards must (a) log the same trace
// id at every hop — gateway and both shards — (b) carry cost headers
// equal to the merged body's own sums, and (c) stitch into one
// Chrome-trace file whose lanes come from the gateway and both shards,
// with at least one engine per-rank phase lane.
func TestGatewayStitchedTrace(t *testing.T) {
	g, gts, bufs, peers := newTracedCluster(t)
	body := splitBatchBody(t, g, peers)

	resp, raw := post(t, gts.URL+"/v1/batch", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, raw)
	}
	tc, ok := telemetry.ParseTraceparent(resp.Header.Get(telemetry.TraceparentHeader))
	if !ok {
		t.Fatalf("gateway response traceparent unparseable: %q", resp.Header.Get(telemetry.TraceparentHeader))
	}
	if !tc.Sampled {
		t.Fatal("sampling gateway minted an unsampled trace")
	}
	id := tc.TraceIDString()

	// (a) one grep, every hop.
	for i, buf := range bufs {
		hop := "gateway"
		if i > 0 {
			hop = fmt.Sprintf("shard %d", i-1)
		}
		if !strings.Contains(buf.String(), "trace="+id) {
			t.Errorf("%s log has no line with trace=%s:\n%s", hop, id, buf.String())
		}
	}

	// (b) headers equal the merged body's sums, float-exact.
	var doc struct {
		Results []struct {
			TimeS   float64 `json:"time_s"`
			EnergyJ float64 `json:"energy_j"`
		} `json:"results"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	var simS, energyJ float64
	for _, r := range doc.Results {
		simS += r.TimeS
		energyJ += r.EnergyJ
	}
	if got, want := resp.Header.Get(telemetry.PredictionsHeader), strconv.Itoa(len(doc.Results)); got != want {
		t.Errorf("%s = %q, merged body has %s results", telemetry.PredictionsHeader, got, want)
	}
	if got, want := resp.Header.Get(telemetry.SimSecondsHeader), strconv.FormatFloat(simS, 'g', -1, 64); got != want {
		t.Errorf("%s = %q, merged body sums to %q", telemetry.SimSecondsHeader, got, want)
	}
	if got, want := resp.Header.Get(telemetry.EnergyHeader), strconv.FormatFloat(energyJ, 'g', -1, 64); got != want {
		t.Errorf("%s = %q, merged body sums to %q", telemetry.EnergyHeader, got, want)
	}

	// (c) the stitch: gateway + both shards as processes, rank lanes from
	// the cold characterisations.
	stResp, err := http.Get(gts.URL + "/debug/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer stResp.Body.Close()
	stRaw, _ := io.ReadAll(stResp.Body)
	if stResp.StatusCode != http.StatusOK {
		t.Fatalf("stitched trace: status %d: %s", stResp.StatusCode, stRaw)
	}
	var chrome chromeDoc
	if err := json.Unmarshal(stRaw, &chrome); err != nil {
		t.Fatalf("stitched trace unparseable: %v\n%s", err, stRaw)
	}
	sources := map[string]bool{}
	rankLanes, fanouts, handlerSpans := 0, 0, 0
	for _, e := range chrome.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "process_name":
			if name, _ := e.Args["name"].(string); name != "" {
				sources[name] = true
			}
		case e.Ph == "M" && e.Name == "thread_name":
			if name, _ := e.Args["name"].(string); strings.HasPrefix(name, "rank ") {
				rankLanes++
			}
		case e.Ph == "X" && strings.HasPrefix(e.Name, "fanout "):
			fanouts++
		case e.Ph == "X" && e.Cat == "handler":
			handlerSpans++
		}
	}
	if !sources["gateway"] {
		t.Errorf("stitch has no gateway lane group; sources %v", sources)
	}
	shardSources := 0
	for _, p := range peers {
		if sources[p] {
			shardSources++
		}
	}
	if shardSources < 2 {
		t.Errorf("stitch spans %d shards, want 2; sources %v", shardSources, sources)
	}
	if rankLanes == 0 {
		t.Error("stitch has no engine per-rank phase lane")
	}
	if fanouts < 2 {
		t.Errorf("stitch shows %d gateway fan-out spans, want >= 2", fanouts)
	}
	if handlerSpans == 0 {
		t.Error("stitch shows no shard handler spans")
	}
}

// TestGatewayTraceByIDUnknown: an id no hop recorded is a 404 — the
// gateway must not return an empty stitch.
func TestGatewayTraceByIDUnknown(t *testing.T) {
	_, gts, _, _ := newTracedCluster(t)
	resp, err := http.Get(gts.URL + "/debug/trace/deadbeefdeadbeefdeadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

// TestGatewayPredictAttribution: the gateway relays the shard's cost
// numbers onto its own merged-answer headers — a point predict's headers
// equal the body it forwarded.
func TestGatewayPredictAttribution(t *testing.T) {
	_, gts, _ := newCluster(t, 2)
	body := `{"system":"xeon","program":"SP","class":"A","nodes":2,"cores":4,"freq_ghz":1.8}`
	resp, raw := post(t, gts.URL+"/v1/predict", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp.StatusCode, raw)
	}
	var pred struct {
		TimeS   float64 `json:"time_s"`
		EnergyJ float64 `json:"energy_j"`
	}
	if err := json.Unmarshal(raw, &pred); err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(telemetry.PredictionsHeader); got != "1" {
		t.Errorf("%s = %q, want 1", telemetry.PredictionsHeader, got)
	}
	if got, want := resp.Header.Get(telemetry.SimSecondsHeader), strconv.FormatFloat(pred.TimeS, 'g', -1, 64); got != want {
		t.Errorf("%s = %q, body says %q", telemetry.SimSecondsHeader, got, want)
	}
	if got, want := resp.Header.Get(telemetry.EnergyHeader), strconv.FormatFloat(pred.EnergyJ, 'g', -1, 64); got != want {
		t.Errorf("%s = %q, body says %q", telemetry.EnergyHeader, got, want)
	}
}

// TestGatewayReadyzPerPeer: /readyz reports each shard by name. With
// every shard up the document says so and the per-peer gauge reads 1;
// killing one shard flips exactly its entry (and gauge) while the
// gateway stays ready on the survivor.
func TestGatewayReadyzPerPeer(t *testing.T) {
	g, gts, shards := newCluster(t, 2)
	readyDoc := func(wantStatus int) (doc struct {
		Ready bool `json:"ready"`
		Up    int  `json:"up"`
		Peers []struct {
			Peer string `json:"peer"`
			Up   bool   `json:"up"`
		} `json:"peers"`
	}) {
		resp, err := http.Get(gts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantStatus {
			t.Fatalf("readyz status %d, want %d: %s", resp.StatusCode, wantStatus, raw)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Errorf("readyz Content-Type = %q", ct)
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("readyz not JSON: %v\n%s", err, raw)
		}
		return doc
	}

	doc := readyDoc(http.StatusOK)
	if !doc.Ready || doc.Up != 2 || len(doc.Peers) != 2 {
		t.Fatalf("all-up readyz = %+v", doc)
	}
	for _, p := range doc.Peers {
		if !p.Up {
			t.Errorf("peer %s reported down while up", p.Peer)
		}
		if v := g.mPeerUp.With(p.Peer).Value(); v != 1 {
			t.Errorf("peer_up{%s} = %d, want 1", p.Peer, v)
		}
	}

	dead := shards[0].URL
	shards[0].Close()
	doc = readyDoc(http.StatusOK)
	if !doc.Ready || doc.Up != 1 {
		t.Fatalf("one-down readyz = %+v", doc)
	}
	for _, p := range doc.Peers {
		wantUp := p.Peer != dead
		if p.Up != wantUp {
			t.Errorf("peer %s up=%v, want %v", p.Peer, p.Up, wantUp)
		}
		var wantGauge int64
		if wantUp {
			wantGauge = 1
		}
		if v := g.mPeerUp.With(p.Peer).Value(); v != wantGauge {
			t.Errorf("peer_up{%s} = %d, want %d", p.Peer, v, wantGauge)
		}
	}
}
