// Package gateway implements hybridperf-gw: a stateless fan-out front
// for a sharded hybridperfd cluster. The gateway owns no models — it
// routes point requests (/v1/predict, /v1/advise) to the replica owning
// their (system, program) key on the same consistent-hash ring the
// replicas use, splits /v1/batch bodies into one sub-batch per owning
// shard, and partitions a /v1/sweep configuration space across every
// shard so the full-space evaluation parallelises over the cluster. Shard answers are merged back in the
// replicas' canonical order (and sweep frontiers recomputed with the same
// pareto code), so a response through the gateway is byte-identical to
// the same request served by a single daemon.
//
// Degradation is graceful by construction: a dead shard costs the tuples
// it owned, not the request — the merged answer carries the surviving
// results plus one error annotation per failed shard, and only a request
// whose every sub-request failed becomes a 503.
package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"hybridperf/internal/cluster"
	"hybridperf/internal/core"
	"hybridperf/internal/machine"
	"hybridperf/internal/pareto"
	"hybridperf/internal/telemetry"
	"hybridperf/internal/workload"
)

// forwardedHeader mirrors the replicas' loop-prevention header. The
// gateway sets it on every sub-request: the gateway already routed by
// ownership (or is deliberately spreading a sweep), so the receiving
// shard must serve locally instead of adding a second hop.
const forwardedHeader = "X-Hybridperf-Forwarded"

// maxSweepNodes and the batch limits mirror the replicas' request bounds,
// so the gateway rejects what every shard would reject — without a
// round trip.
const (
	maxSweepNodes     = 1024
	maxBatchTuples    = 65536
	maxBatchBodyBytes = 8 << 20
)

// Gateway fans requests across a static shard list. Build with New,
// mount with Handler.
type Gateway struct {
	ring   *cluster.Ring
	peers  []string
	client *http.Client
	log    *slog.Logger
	reg    *telemetry.Registry
	start  time.Time

	// sample is the gateway's trace-sampling probability for requests
	// that arrive without a traceparent (see SetTraceSample); traces
	// retains this hop's completed payloads for the stitch endpoint.
	sample float64
	traces *telemetry.TraceStore

	mReq    *telemetry.CounterVec
	mFan    *telemetry.CounterVec
	mFanErr *telemetry.CounterVec
	mPeerUp *telemetry.GaugeVec
	mPreds  *telemetry.CounterVec
	mSimS   *telemetry.FloatCounterVec
	mEnergy *telemetry.FloatCounterVec
}

// New builds a gateway over the given shard base URLs (the same list, in
// any order, that each shard was given as -peers).
func New(peers []string, logger *slog.Logger) (*Gateway, error) {
	ring, err := cluster.New(peers, 0)
	if err != nil {
		return nil, err
	}
	if logger == nil {
		logger = slog.Default()
	}
	g := &Gateway{
		ring:   ring,
		peers:  ring.Peers(),
		client: &http.Client{},
		log:    logger,
		reg:    telemetry.NewRegistry(),
		start:  time.Now(),
	}
	g.mReq = g.reg.Counter("hybridperf_gateway_requests_total",
		"Requests served by the gateway, by route and status code.", "route", "code")
	g.mFan = g.reg.Counter("hybridperf_gateway_fanout_total",
		"Sub-requests dispatched to shards, by peer.", "peer")
	g.mFanErr = g.reg.Counter("hybridperf_gateway_fanout_errors_total",
		"Sub-requests that failed (transport error or non-2xx), by peer.", "peer")
	g.mPeerUp = g.reg.Gauge("hybridperf_gateway_peer_up",
		"Last /readyz probe outcome per shard: 1 reachable and healthy, 0 not.", "peer")
	g.mPreds = g.reg.Counter("hybridperf_gateway_predictions_total",
		"Predictions relayed to clients through the gateway, by route.", "route")
	g.mSimS = g.reg.FloatCounter("hybridperf_gateway_simulated_seconds_total",
		"Predicted application runtime (virtual seconds) summed over relayed predictions, by route.", "route")
	g.mEnergy = g.reg.FloatCounter("hybridperf_gateway_predicted_energy_joules_total",
		"Predicted energy (joules) summed over relayed predictions, by route.", "route")
	g.traces = telemetry.NewTraceStore(0)
	// Peers start unknown-down until the first probe, so the series exist
	// (and alert rules have a value) from the first scrape.
	for _, p := range g.peers {
		g.mPeerUp.With(p).Set(0)
	}
	g.reg.OnScrape(func(w io.Writer) {
		fmt.Fprintf(w, "# HELP hybridperf_gateway_uptime_seconds Seconds since the gateway started.\n"+
			"# TYPE hybridperf_gateway_uptime_seconds gauge\nhybridperf_gateway_uptime_seconds %g\n",
			time.Since(g.start).Seconds())
	})
	return g, nil
}

// Registry exposes the gateway's metric registry (tests).
func (g *Gateway) Registry() *telemetry.Registry { return g.reg }

// SetTraceSample sets the fraction of traceparent-less requests the
// gateway samples (0 = never, 1 = always). An incoming traceparent's
// sampled flag always wins, exactly as on the shards. Call before
// serving.
func (g *Gateway) SetTraceSample(p float64) { g.sample = p }

func (g *Gateway) sampleTrace() bool {
	if g.sample <= 0 {
		return false
	}
	if g.sample >= 1 {
		return true
	}
	return rand.Float64() < g.sample
}

// Handler returns the gateway's route table.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", g.observe("/v1/predict", g.handlePredict))
	mux.HandleFunc("POST /v1/batch", g.observe("/v1/batch", g.handleBatch))
	mux.HandleFunc("POST /v1/sweep", g.observe("/v1/sweep", g.handleSweep))
	mux.HandleFunc("POST /v1/advise", g.observe("/v1/advise", g.handleAdvise))
	mux.HandleFunc("GET /v1/systems", g.observe("/v1/systems", g.handleSystems))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		g.reg.WriteText(w)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", g.handleReady)
	mux.HandleFunc("GET /debug/trace/{traceid}", g.observe("/debug/trace/{traceid}", g.handleTraceByID))
	return mux
}

// observe wraps a handler with the request counter, the trace context
// (parsed from an incoming traceparent or minted here — the gateway is
// usually the edge that decides sampling for the whole chain) and one
// access-log line carrying the request and trace ids. Sampled requests
// record a span tree whose completed payload lands in the gateway's own
// trace store, one stitch source among the shards'.
func (g *Gateway) observe(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tc, fromWire := telemetry.ParseTraceparent(r.Header.Get(telemetry.TraceparentHeader))
		if fromWire {
			tc = tc.Child()
		} else {
			tc = telemetry.NewTrace(g.sampleTrace())
		}
		id := tc.RequestID()
		w.Header().Set("X-Request-Id", id)
		w.Header().Set(telemetry.TraceparentHeader, tc.Traceparent())
		ctx := telemetry.WithTraceContext(r.Context(), tc)
		var rt *telemetry.RequestTrace
		if tc.Sampled {
			rt = telemetry.NewRequestTrace(tc)
			ctx = telemetry.WithRequestTrace(ctx, rt)
		}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(ctx))
		if sw.status == 0 {
			sw.status = http.StatusOK
		}
		end := time.Now()
		if rt != nil {
			rt.AddSpan("http", r.Method+" "+route, start, end)
			g.traces.Put(rt.Payload("gateway"))
		}
		g.mReq.With(route, strconv.Itoa(sw.status)).Inc()
		g.log.LogAttrs(ctx, slog.LevelInfo, "request",
			slog.String("id", id),
			slog.String("trace", tc.TraceIDString()),
			slog.String("route", route),
			slog.Int("status", sw.status),
			slog.Duration("duration", end.Sub(start)))
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleReady probes every shard's health endpoint and reports the live
// per-peer picture: a JSON document naming each peer's status (so an
// operator sees which shard is down, not just how many), with the same
// outcomes published as the hybridperf_gateway_peer_up gauge. The
// gateway is ready (200) when at least one shard is — a gateway with a
// fully dead cluster serves nothing but 503s, so it should not attract
// traffic.
func (g *Gateway) handleReady(w http.ResponseWriter, r *http.Request) {
	type probe struct {
		idx int
		ok  bool
	}
	results := make(chan probe, len(g.peers))
	for i, p := range g.peers {
		go func(i int, p string) {
			req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, p+"/healthz", nil)
			if err != nil {
				results <- probe{i, false}
				return
			}
			resp, err := g.client.Do(req)
			if err != nil {
				results <- probe{i, false}
				return
			}
			resp.Body.Close()
			results <- probe{i, resp.StatusCode == http.StatusOK}
		}(i, p)
	}
	okByPeer := make([]bool, len(g.peers))
	up := 0
	for range g.peers {
		p := <-results
		okByPeer[p.idx] = p.ok
		if p.ok {
			up++
		}
	}
	type peerStatus struct {
		Peer string `json:"peer"`
		Up   bool   `json:"up"`
	}
	doc := struct {
		Ready bool         `json:"ready"`
		Up    int          `json:"up"`
		Peers []peerStatus `json:"peers"`
	}{Ready: up > 0, Up: up, Peers: make([]peerStatus, len(g.peers))}
	for i, p := range g.peers {
		doc.Peers[i] = peerStatus{Peer: p, Up: okByPeer[i]}
		var v int64
		if okByPeer[i] {
			v = 1
		}
		g.mPeerUp.With(p).Set(v)
	}
	w.Header().Set("Content-Type", "application/json")
	if up == 0 {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	json.NewEncoder(w).Encode(doc)
}

// ---------------------------------------------------------------------
// Wire mirrors of the replicas' request/response shapes. These must stay
// field-for-field identical to internal/telemetry's (tags and order), so
// gateway-built responses are byte-compatible with shard-built ones.

type configJSON struct {
	Nodes   int     `json:"nodes"`
	Cores   int     `json:"cores"`
	FreqGHz float64 `json:"freq_ghz"`
}

type predictionJSON struct {
	Config  configJSON `json:"config"`
	TimeS   float64    `json:"time_s"`
	EnergyJ float64    `json:"energy_j"`
	PowerW  float64    `json:"power_w"`
	UCR     float64    `json:"ucr"`
}

type batchTuple struct {
	System  string  `json:"system"`
	Program string  `json:"program"`
	Nodes   int     `json:"nodes"`
	Cores   int     `json:"cores"`
	FreqGHz float64 `json:"freq_ghz"`
}

type batchRequest struct {
	Class   string       `json:"class"`
	Engine  string       `json:"engine"`
	Workers int          `json:"workers"`
	Tuples  []batchTuple `json:"tuples"`
}

type sweepRequest struct {
	System    string  `json:"system"`
	Program   string  `json:"program"`
	Class     string  `json:"class"`
	MaxNodes  int     `json:"max_nodes"`
	Pow2      bool    `json:"pow2"`
	Workers   int     `json:"workers"`
	DeadlineS float64 `json:"deadline_s"`
	BudgetJ   float64 `json:"budget_j"`
	Engine    string  `json:"engine"`
}

// shardError annotates one failed sub-request on a partial answer.
type shardError struct {
	Shard  string `json:"shard"`
	Error  string `json:"error"`
	Tuples int    `json:"tuples,omitempty"`
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error":  fmt.Sprintf(format, args...),
		"status": status,
	})
}

// decodeStrict mirrors the replicas' body handling: bounded, unknown
// fields rejected, trailing data rejected.
func decodeStrict(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		return false
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		httpError(w, http.StatusBadRequest, "invalid JSON body: trailing data after the request object")
		return false
	}
	return true
}

func wantStream(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("gateway: marshalling response fragment: %v", err))
	}
	return b
}

// ---------------------------------------------------------------------
// Shard transport.

// shardStatusError is a shard's own non-2xx HTTP answer — as opposed to
// a transport failure (dial refused, reset, timeout). The distinction
// drives failover: a transport failure is worth trying the next replica,
// an HTTP answer would be identical everywhere.
type shardStatusError struct {
	peer    string
	status  int
	message string
	// retryAfter is the shard's own Retry-After header on a 429/503,
	// relayed to gateway clients so they honour the shard's backoff
	// rather than a hardcoded hint.
	retryAfter string
}

func (e *shardStatusError) Error() string {
	if e.message != "" {
		return fmt.Sprintf("shard %s: %s (status %d)", e.peer, e.message, e.status)
	}
	return fmt.Sprintf("shard %s: status %d", e.peer, e.status)
}

// post sends one sub-request to a shard and returns the response body
// and headers. Non-2xx answers are errors carrying the shard's error
// message (and its Retry-After hint, when present), so the annotation on
// a partial result explains the failure, not just names it.
func (g *Gateway) post(r *http.Request, peer, path string, body []byte, stream bool) ([]byte, http.Header, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, "gateway")
	if stream {
		req.Header.Set("Accept", "application/x-ndjson")
	}
	// Each fan-out leg is one hop of the request's trace: same trace id
	// and sampling decision, a fresh span id — so a sampled request
	// through the gateway samples on every shard it touches, and the
	// stitch endpoint can collect all their payloads under one id.
	if tc, ok := telemetry.TraceContextFrom(r.Context()); ok {
		req.Header.Set(telemetry.TraceparentHeader, tc.Child().Traceparent())
	}
	endFan := telemetry.RequestTraceFrom(r.Context()).Span("gateway", "fanout "+peer+path)
	defer endFan()
	g.mFan.With(peer).Inc()
	resp, err := g.client.Do(req)
	if err != nil {
		g.mFanErr.With(peer).Inc()
		return nil, nil, err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		g.mFanErr.With(peer).Inc()
		return nil, resp.Header, err
	}
	if resp.StatusCode/100 != 2 {
		g.mFanErr.With(peer).Inc()
		var envelope struct {
			Error string `json:"error"`
		}
		json.Unmarshal(out, &envelope)
		// The body rides along so a caller can relay the shard's own error
		// envelope verbatim (handlePredict does).
		return out, resp.Header, &shardStatusError{
			peer: peer, status: resp.StatusCode, message: envelope.Error,
			retryAfter: resp.Header.Get("Retry-After"),
		}
	}
	return out, resp.Header, nil
}

// handlePredict proxies a point request to the owner of its model key,
// falling through the ring-walk order when the owner is down — any
// replica serves any key bit-identically, so failover costs at most a
// campaign on the fallback shard.
func (g *Gateway) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req struct {
		System  string  `json:"system"`
		Program string  `json:"program"`
		Class   string  `json:"class"`
		Nodes   int     `json:"nodes"`
		Cores   int     `json:"cores"`
		FreqGHz float64 `json:"freq_ghz"`
		Engine  string  `json:"engine"`
	}
	body := new(bytes.Buffer)
	tee := io.TeeReader(http.MaxBytesReader(w, r.Body, 1<<20), body)
	if err := json.NewDecoder(tee).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	io.Copy(io.Discard, tee) // finish teeing the raw body
	var errs []string
	for _, peer := range g.ring.Order(cluster.ModelKey(req.System, req.Program)) {
		out, _, err := g.post(r, peer, "/v1/predict", body.Bytes(), false)
		if err == nil {
			var pred struct {
				TimeS   float64 `json:"time_s"`
				EnergyJ float64 `json:"energy_j"`
			}
			if json.Unmarshal(out, &pred) == nil {
				g.applyAttribution(w, "/v1/predict", 1, pred.TimeS, pred.EnergyJ)
			}
			w.Header().Set("Content-Type", "application/json")
			w.Write(out)
			return
		}
		errs = append(errs, err.Error())
		// A shard that produced its own HTTP answer (4xx/5xx) would answer
		// every peer's identical computation the same way: relay its
		// status — and its backoff hint — instead of burning failover hops.
		var httpErr *shardStatusError
		if errors.As(err, &httpErr) {
			if httpErr.retryAfter != "" {
				w.Header().Set("Retry-After", httpErr.retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(httpErr.status)
			w.Write(out)
			return
		}
	}
	httpError(w, http.StatusServiceUnavailable, "no shard could serve the request: %s", strings.Join(errs, "; "))
}

// handleAdvise proxies an advisory request to the owner of its model key,
// exactly like handlePredict: the answer is relayed verbatim (document or
// NDJSON stream), so a response through the gateway is byte-identical to
// the owning shard's. The shard's cost-attribution headers are re-stamped
// and aggregated into the gateway's per-route series.
func (g *Gateway) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var req struct {
		System  string `json:"system"`
		Program string `json:"program"`
	}
	body := new(bytes.Buffer)
	tee := io.TeeReader(http.MaxBytesReader(w, r.Body, 1<<20), body)
	if err := json.NewDecoder(tee).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return
	}
	io.Copy(io.Discard, tee) // finish teeing the raw body
	stream := wantStream(r)
	var errs []string
	for _, peer := range g.ring.Order(cluster.ModelKey(req.System, req.Program)) {
		out, hdr, err := g.post(r, peer, "/v1/advise", body.Bytes(), stream)
		if err == nil {
			if preds, e := strconv.Atoi(hdr.Get(telemetry.PredictionsHeader)); e == nil {
				simS, _ := strconv.ParseFloat(hdr.Get(telemetry.SimSecondsHeader), 64)
				energyJ, _ := strconv.ParseFloat(hdr.Get(telemetry.EnergyHeader), 64)
				g.applyAttribution(w, "/v1/advise", preds, simS, energyJ)
			}
			ct := hdr.Get("Content-Type")
			if ct == "" {
				ct = "application/json"
			}
			w.Header().Set("Content-Type", ct)
			w.Write(out)
			return
		}
		errs = append(errs, err.Error())
		var httpErr *shardStatusError
		if errors.As(err, &httpErr) {
			if httpErr.retryAfter != "" {
				w.Header().Set("Retry-After", httpErr.retryAfter)
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(httpErr.status)
			w.Write(out)
			return
		}
	}
	httpError(w, http.StatusServiceUnavailable, "no shard could serve the request: %s", strings.Join(errs, "; "))
}

// handleSystems proxies the capability document from the first live
// shard — it is identical on every replica (same binary, same catalogue).
func (g *Gateway) handleSystems(w http.ResponseWriter, r *http.Request) {
	for _, peer := range g.peers {
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, peer+"/v1/systems", nil)
		if err != nil {
			continue
		}
		resp, err := g.client.Do(req)
		if err != nil {
			g.mFanErr.With(peer).Inc()
			continue
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			g.mFanErr.With(peer).Inc()
			continue
		}
		if etag := resp.Header.Get("ETag"); etag != "" {
			w.Header().Set("ETag", etag)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(out)
		return
	}
	httpError(w, http.StatusServiceUnavailable, "no shard reachable")
}

// ---------------------------------------------------------------------
// /v1/batch fan-out.

// batchShardResponse is the slice of a shard's batch answer the gateway
// consumes: the result fragments verbatim (bytes preserved for the
// merge) plus the parsed coordinates needed to order them.
type batchShardResponse struct {
	Results []json.RawMessage `json:"results"`
	Class   string            `json:"class"`
	Count   int               `json:"count"`
	Groups  int               `json:"groups"`
}

// mergedResult pairs one shard-rendered result fragment with its parsed
// sort key.
type mergedResult struct {
	raw     json.RawMessage
	system  string
	program string
	nodes   int
	cores   int
	freqGHz float64
	timeS   float64
	energyJ float64
}

func (a mergedResult) less(b mergedResult) bool {
	if a.system != b.system {
		return a.system < b.system
	}
	if a.program != b.program {
		return a.program < b.program
	}
	if a.nodes != b.nodes {
		return a.nodes < b.nodes
	}
	if a.cores != b.cores {
		return a.cores < b.cores
	}
	return a.freqGHz < b.freqGHz
}

func parseResults(raw []json.RawMessage) ([]mergedResult, error) {
	out := make([]mergedResult, len(raw))
	for i, frag := range raw {
		var meta struct {
			System  string `json:"system"`
			Program string `json:"program"`
			Config  struct {
				Nodes   int     `json:"nodes"`
				Cores   int     `json:"cores"`
				FreqGHz float64 `json:"freq_ghz"`
			} `json:"config"`
			TimeS   float64 `json:"time_s"`
			EnergyJ float64 `json:"energy_j"`
		}
		if err := json.Unmarshal(frag, &meta); err != nil {
			return nil, fmt.Errorf("result %d: %w", i, err)
		}
		out[i] = mergedResult{
			raw: frag, system: meta.System, program: meta.Program,
			nodes: meta.Config.Nodes, cores: meta.Config.Cores, freqGHz: meta.Config.FreqGHz,
			timeS: meta.TimeS, energyJ: meta.EnergyJ,
		}
	}
	return out, nil
}

func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeStrict(w, r, &req, maxBatchBodyBytes) {
		return
	}
	if len(req.Tuples) == 0 {
		httpError(w, http.StatusBadRequest, "batch carries no tuples")
		return
	}
	if len(req.Tuples) > maxBatchTuples {
		httpError(w, http.StatusBadRequest, "batch carries %d tuples, limit %d", len(req.Tuples), maxBatchTuples)
		return
	}
	class := req.Class
	if class == "" {
		class = string(workload.ClassA)
	}
	// Validate coordinates before fanning out, mirroring the shards'
	// checks: a garbage tuple fails here with the same 400 a single
	// daemon would produce, without touching the cluster.
	for i, t := range req.Tuples {
		if _, err := machine.ByName(t.System); err != nil {
			httpError(w, http.StatusBadRequest, "tuple %d: unknown system %q", i, t.System)
			return
		}
		spec, err := workload.ByName(t.Program)
		if err != nil {
			httpError(w, http.StatusBadRequest, "tuple %d: unknown program %q", i, t.Program)
			return
		}
		if _, err := spec.Iterations(workload.Class(class)); err != nil {
			httpError(w, http.StatusBadRequest, "bad class %q: %v", class, err)
			return
		}
	}

	// Partition by owning shard: every tuple of one (system, program)
	// group lands on the replica that owns — and has, or will
	// characterise and keep — that model.
	byOwner := map[string][]batchTuple{}
	for _, t := range req.Tuples {
		owner := g.ring.Owner(cluster.ModelKey(t.System, t.Program))
		byOwner[owner] = append(byOwner[owner], t)
	}

	type shardOut struct {
		peer   string
		tuples int
		resp   *batchShardResponse
		err    error
	}
	outs := make([]shardOut, 0, len(byOwner))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for owner, tuples := range byOwner {
		wg.Add(1)
		go func(owner string, tuples []batchTuple) {
			defer wg.Done()
			sub := mustJSON(batchRequest{Class: req.Class, Engine: req.Engine, Workers: req.Workers, Tuples: tuples})
			out := shardOut{peer: owner, tuples: len(tuples)}
			raw, _, err := g.post(r, owner, "/v1/batch", sub, false)
			if err == nil {
				var parsed batchShardResponse
				if uerr := json.Unmarshal(raw, &parsed); uerr != nil {
					err = fmt.Errorf("shard %s: unparseable answer: %w", owner, uerr)
				} else {
					out.resp = &parsed
				}
			}
			out.err = err
			mu.Lock()
			outs = append(outs, out)
			mu.Unlock()
		}(owner, tuples)
	}
	wg.Wait()

	var merged []mergedResult
	var shardErrs []shardError
	for _, o := range outs {
		if relayClientError(w, o.err) {
			return
		}
	}
	for _, o := range outs {
		if o.err != nil {
			g.log.LogAttrs(r.Context(), slog.LevelWarn, "batch sub-request failed",
				slog.String("peer", o.peer), slog.Any("err", o.err))
			shardErrs = append(shardErrs, shardError{Shard: o.peer, Error: o.err.Error(), Tuples: o.tuples})
			continue
		}
		res, err := parseResults(o.resp.Results)
		if err != nil {
			shardErrs = append(shardErrs, shardError{Shard: o.peer, Error: err.Error(), Tuples: o.tuples})
			continue
		}
		merged = append(merged, res...)
	}
	if len(merged) == 0 && len(shardErrs) > 0 {
		var failures []error
		for _, o := range outs {
			if o.err != nil {
				failures = append(failures, o.err)
			}
		}
		w.Header().Set("Retry-After", retryAfterHint(failures))
		httpError(w, http.StatusServiceUnavailable, "all owning shards failed: %s", joinShardErrors(shardErrs))
		return
	}
	// Canonical order across shards — the exact order one daemon's
	// canonicalizeTuples would have produced, which is what makes the
	// merged document byte-identical to a single-instance answer.
	sort.Slice(merged, func(i, j int) bool { return merged[i].less(merged[j]) })
	sortShardErrors(shardErrs)

	groups := 0
	for i := range merged {
		if i == 0 || merged[i].system != merged[i-1].system || merged[i].program != merged[i-1].program {
			groups++
		}
	}
	frags := make([][]byte, len(merged))
	var simS, energyJ float64
	for i, m := range merged {
		frags[i] = m.raw
		simS += m.timeS
		energyJ += m.energyJ
	}
	sum := mustJSON(struct {
		Class       string       `json:"class"`
		Count       int          `json:"count"`
		Groups      int          `json:"groups"`
		ShardErrors []shardError `json:"shard_errors,omitempty"`
	}{class, len(merged), groups, shardErrs})
	g.applyAttribution(w, "/v1/batch", len(merged), simS, energyJ)
	writeSpliced(w, r, sum, "results", "result", frags)
}

// relayClientError relays a shard's 4xx answer as this request's answer
// and reports whether it did. A 4xx means the request itself is bad
// (invalid tuple, bad class, shed by admission control) — every shard
// would say the same, so annotating it as a degraded shard would turn a
// caller bug into a silent partial result.
func relayClientError(w http.ResponseWriter, err error) bool {
	var he *shardStatusError
	if !errors.As(err, &he) || he.status < 400 || he.status >= 500 {
		return false
	}
	if he.status == http.StatusTooManyRequests {
		// The shard's own backoff hint wins; "1" only when it sent none.
		ra := he.retryAfter
		if ra == "" {
			ra = "1"
		}
		w.Header().Set("Retry-After", ra)
	}
	if he.message != "" {
		httpError(w, he.status, "%s", he.message)
	} else {
		httpError(w, he.status, "%s", he.Error())
	}
	return true
}

func joinShardErrors(errs []shardError) string {
	parts := make([]string, len(errs))
	for i, e := range errs {
		parts[i] = e.Error
	}
	return strings.Join(parts, "; ")
}

func sortShardErrors(errs []shardError) {
	sort.Slice(errs, func(i, j int) bool { return errs[i].Shard < errs[j].Shard })
}

// retryAfterHint returns the first shard-provided Retry-After among errs,
// falling back to "1" when no shard offered its own backoff.
func retryAfterHint(errs []error) string {
	for _, err := range errs {
		var he *shardStatusError
		if errors.As(err, &he) && he.retryAfter != "" {
			return he.retryAfter
		}
	}
	return "1"
}

// ---------------------------------------------------------------------
// /v1/sweep fan-out.

// sweepSummary mirrors the replicas' sweep header fields, with the
// gateway's partial-result annotation appended (absent on full answers,
// so complete sweeps stay byte-identical to a single daemon's).
type sweepSummary struct {
	System      string          `json:"system"`
	Program     string          `json:"program"`
	Class       string          `json:"class"`
	Configs     int             `json:"configs"`
	Points      int             `json:"frontier_points"`
	Deadline    *predictionJSON `json:"min_energy_within_deadline,omitempty"`
	Budget      *predictionJSON `json:"min_time_within_budget,omitempty"`
	ShardErrors []shardError    `json:"shard_errors,omitempty"`
}

func (g *Gateway) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if !decodeStrict(w, r, &req, 1<<20) {
		return
	}
	prof, err := machine.ByName(req.System)
	if err != nil {
		httpError(w, http.StatusBadRequest, "unknown system %q", req.System)
		return
	}
	spec, err := workload.ByName(req.Program)
	if err != nil {
		httpError(w, http.StatusBadRequest, "unknown program %q", req.Program)
		return
	}
	class := req.Class
	if class == "" {
		class = string(workload.ClassA)
	}
	if _, err := spec.Iterations(workload.Class(class)); err != nil {
		httpError(w, http.StatusBadRequest, "bad class %q: %v", class, err)
		return
	}
	maxNodes := req.MaxNodes
	if maxNodes == 0 {
		maxNodes = prof.MaxNodes
	}
	if maxNodes < 1 || maxNodes > maxSweepNodes {
		httpError(w, http.StatusBadRequest, "max_nodes %d out of range [1,%d]", req.MaxNodes, maxSweepNodes)
		return
	}

	// Enumerate the full configuration space exactly as one daemon would
	// — pareto.Space's order is the canonical response order — and cut it
	// into one contiguous chunk per shard. A sweep is a single model key,
	// so this deliberately ignores ownership: the win is evaluating N
	// chunks in parallel, at the cost of each shard characterising (once,
	// warm-loadable from a shared model store) the swept model.
	var nodes []int
	if req.Pow2 {
		nodes = pareto.PowersOfTwo(maxNodes)
	} else {
		nodes = pareto.Range(1, maxNodes)
	}
	cfgs := pareto.Space(nodes, prof.CoresPerNode, prof.Frequencies)
	chunks := chunkConfigs(cfgs, len(g.peers))

	type chunkOut struct {
		idx  int
		peer string
		pts  []pareto.Point
		wire []predictionJSON
		err  error
	}
	outs := make([]chunkOut, len(chunks))
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		wg.Add(1)
		go func(i int, chunk []machine.Config) {
			defer wg.Done()
			peer := g.peers[i%len(g.peers)]
			outs[i] = chunkOut{idx: i, peer: peer}
			pts, wire, err := g.evalChunk(r, peer, req, class, chunk)
			outs[i].pts, outs[i].wire, outs[i].err = pts, wire, err
		}(i, chunk)
	}
	wg.Wait()

	var points []pareto.Point
	wireByCfg := make(map[machine.Config]predictionJSON, len(cfgs))
	var shardErrs []shardError
	evaluated := 0
	for _, o := range outs {
		if relayClientError(w, o.err) {
			return
		}
	}
	for _, o := range outs {
		if o.err != nil {
			g.log.LogAttrs(r.Context(), slog.LevelWarn, "sweep chunk failed",
				slog.String("peer", o.peer), slog.Any("err", o.err))
			shardErrs = append(shardErrs, shardError{Shard: o.peer, Error: o.err.Error(), Tuples: len(chunks[o.idx])})
			continue
		}
		points = append(points, o.pts...)
		for k, p := range o.pts {
			wireByCfg[p.Cfg] = o.wire[k]
		}
		evaluated += len(o.pts)
	}
	if evaluated == 0 && len(shardErrs) > 0 {
		var failures []error
		for _, o := range outs {
			if o.err != nil {
				failures = append(failures, o.err)
			}
		}
		w.Header().Set("Retry-After", retryAfterHint(failures))
		httpError(w, http.StatusServiceUnavailable, "all shards failed: %s", joinShardErrors(shardErrs))
		return
	}
	sortShardErrors(shardErrs)

	// The merge proper: one frontier over every shard's points, computed
	// by the same pareto code a single daemon runs, over the same values
	// (floats survive the JSON hop bit-exactly) in the same enumeration
	// order — so the merged frontier is the frontier.
	front := pareto.Frontier(points)
	sum := sweepSummary{
		System: req.System, Program: req.Program, Class: class,
		Configs: evaluated, Points: len(front), ShardErrors: shardErrs,
	}
	if req.DeadlineS > 0 {
		if p, ok := pareto.MinEnergyWithinDeadline(points, req.DeadlineS); ok {
			pj := wireByCfg[p.Cfg]
			sum.Deadline = &pj
		}
	}
	if req.BudgetJ > 0 {
		if p, ok := pareto.MinTimeWithinBudget(points, req.BudgetJ); ok {
			pj := wireByCfg[p.Cfg]
			sum.Budget = &pj
		}
	}
	frags := make([][]byte, len(front))
	var simS, energyJ float64
	for i, p := range front {
		pj := wireByCfg[p.Cfg]
		frags[i] = mustJSON(pj)
		simS += pj.TimeS
		energyJ += pj.EnergyJ
	}
	g.applyAttribution(w, "/v1/sweep", len(front), simS, energyJ)
	writeSpliced(w, r, mustJSON(sum), "frontier", "point", frags)
}

// evalChunk evaluates one contiguous slice of the sweep space on one
// shard via /v1/batch, returning the points (exact catalogue frequencies,
// wire-parsed objectives) in chunk order plus their wire forms for
// rendering.
func (g *Gateway) evalChunk(r *http.Request, peer string, req sweepRequest, class string, chunk []machine.Config) ([]pareto.Point, []predictionJSON, error) {
	tuples := make([]batchTuple, len(chunk))
	for i, cfg := range chunk {
		tuples[i] = batchTuple{
			System: req.System, Program: req.Program,
			Nodes: cfg.Nodes, Cores: cfg.Cores, FreqGHz: cfg.Freq / 1e9,
		}
	}
	sub := mustJSON(batchRequest{Class: class, Engine: req.Engine, Workers: req.Workers, Tuples: tuples})
	raw, _, err := g.post(r, peer, "/v1/batch", sub, false)
	if err != nil {
		return nil, nil, err
	}
	var parsed struct {
		Results []predictionJSON `json:"results"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		return nil, nil, fmt.Errorf("shard %s: unparseable answer: %w", peer, err)
	}
	if len(parsed.Results) != len(chunk) {
		return nil, nil, fmt.Errorf("shard %s: %d results for %d configs", peer, len(parsed.Results), len(chunk))
	}
	// A chunk enumerates distinct configs in canonical order, so the
	// shard's canonical response order is the chunk order: zip by index.
	pts := make([]pareto.Point, len(chunk))
	for i, cfg := range chunk {
		res := parsed.Results[i]
		pts[i] = pareto.Point{Cfg: cfg, Pred: core.Prediction{
			Cfg: cfg, T: res.TimeS, E: res.EnergyJ, UCR: res.UCR,
		}}
	}
	return pts, parsed.Results, nil
}

// chunkConfigs cuts cfgs into up to n contiguous, near-equal chunks
// (never empty ones).
func chunkConfigs(cfgs []machine.Config, n int) [][]machine.Config {
	if n > len(cfgs) {
		n = len(cfgs)
	}
	if n < 1 {
		n = 1
	}
	chunks := make([][]machine.Config, 0, n)
	for i := 0; i < n; i++ {
		lo, hi := i*len(cfgs)/n, (i+1)*len(cfgs)/n
		if lo < hi {
			chunks = append(chunks, cfgs[lo:hi])
		}
	}
	return chunks
}

// ---------------------------------------------------------------------
// Response rendering — the same splice shapes the replicas produce.

// writeSpliced writes the merged answer as the canonical JSON document
// or, when the client asked, as NDJSON lines (one item per line, summary
// last) — mirroring the replicas' spliceResponse shapes byte-for-byte.
func writeSpliced(w http.ResponseWriter, r *http.Request, sum []byte, listKey, itemKey string, frags [][]byte) {
	if !wantStream(r) {
		w.Header().Set("Content-Type", "application/json")
		var body bytes.Buffer
		body.Write(sum[:len(sum)-1])
		body.WriteString(`,"` + listKey + `":[`)
		for i, f := range frags {
			if i > 0 {
				body.WriteByte(',')
			}
			body.Write(f)
		}
		body.WriteString("]}\n")
		w.Write(body.Bytes())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	for i, f := range frags {
		fmt.Fprintf(w, `{"type":%q,%q:%s}`+"\n", itemKey, itemKey, f)
		if flusher != nil && (i+1)%32 == 0 {
			flusher.Flush()
		}
	}
	w.Write([]byte(`{"type":"summary",`))
	w.Write(sum[1:])
	w.Write([]byte{'\n'})
	if flusher != nil {
		flusher.Flush()
	}
}
