package gateway

// The gateway's side of distributed tracing: per-request cost
// attribution on merged answers, and the stitch endpoint that assembles
// one Chrome-trace file from every hop's span payload.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"hybridperf/internal/telemetry"
	"hybridperf/internal/trace"
)

// applyAttribution stamps the merged answer's cost totals — prediction
// count, simulated seconds, predicted energy summed over what the body
// carries — onto the response headers (same names the shards use) and
// the gateway's per-route aggregate series.
func (g *Gateway) applyAttribution(w http.ResponseWriter, route string, preds int, simS, energyJ float64) {
	h := w.Header()
	h.Set(telemetry.PredictionsHeader, strconv.Itoa(preds))
	h.Set(telemetry.SimSecondsHeader, strconv.FormatFloat(simS, 'g', -1, 64))
	h.Set(telemetry.EnergyHeader, strconv.FormatFloat(energyJ, 'g', -1, 64))
	g.mPreds.With(route).Add(uint64(preds))
	g.mSimS.With(route).Add(simS)
	g.mEnergy.With(route).Add(energyJ)
}

// handleTraceByID serves the stitched GET /debug/trace/{traceid}: the
// gateway's own span payload plus every shard's (pulled from their
// /debug/trace endpoints), rendered as one multi-process Chrome-trace
// JSON file — gateway fan-out spans, per-shard handler spans and any
// attached engine phase timeline, all under one trace id on one
// wall-clock axis.
func (g *Gateway) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("traceid")
	var payloads []*telemetry.TracePayload
	if own, ok := g.traces.Get(id); ok {
		payloads = append(payloads, own)
	}
	fetched := make([]*telemetry.TracePayload, len(g.peers))
	var wg sync.WaitGroup
	for i, p := range g.peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			fetched[i] = g.fetchTrace(r.Context(), peer, id)
		}(i, p)
	}
	wg.Wait()
	for _, p := range fetched {
		if p != nil {
			payloads = append(payloads, p)
		}
	}
	if len(payloads) == 0 {
		httpError(w, http.StatusNotFound,
			"no hop recorded trace id %q (sampled traces only, bounded retention)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	trace.WriteChromeProcesses(w, stitchProcesses(payloads))
}

// fetchTrace pulls one shard's payload for a trace id; a 404 (the shard
// never saw the request, or its window evicted the entry) and a
// transport failure both simply contribute nothing to the stitch.
func (g *Gateway) fetchTrace(ctx context.Context, peer, id string) *telemetry.TracePayload {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/debug/trace/"+id, nil)
	if err != nil {
		return nil
	}
	resp, err := g.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var p telemetry.TracePayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		return nil
	}
	return &p
}

// stitchProcesses converts hop payloads into one lane group per hop on a
// shared time axis (seconds since the earliest recorded span). An engine
// phase timeline is anchored at the start of the characterisation span
// that produced it, so the virtual-time lane renders inside the
// wall-clock span that paid for it.
func stitchProcesses(payloads []*telemetry.TracePayload) []trace.ProcessTrace {
	t0 := int64(0)
	first := true
	for _, p := range payloads {
		for _, s := range p.Spans {
			if first || s.StartUS < t0 {
				t0, first = s.StartUS, false
			}
		}
	}
	procs := make([]trace.ProcessTrace, 0, len(payloads))
	for _, p := range payloads {
		proc := trace.ProcessTrace{Name: p.Source}
		var charStart float64
		for _, s := range p.Spans {
			start := float64(s.StartUS-t0) / 1e6
			end := float64(s.EndUS-t0) / 1e6
			proc.Spans = append(proc.Spans, trace.Span{Name: s.Name, Cat: s.Cat, Start: start, End: end})
			if s.Cat == "model" && strings.HasPrefix(s.Name, "characterize ") {
				charStart = start
			}
		}
		for _, ph := range p.Phases {
			kind, ok := trace.ParseKind(ph.Kind)
			if !ok {
				continue
			}
			proc.Phases = append(proc.Phases, trace.Event{Rank: ph.Rank, Kind: kind, Start: ph.StartS, End: ph.EndS})
		}
		proc.PhaseOffset = charStart
		procs = append(procs, proc)
	}
	return procs
}
