package gateway

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"hybridperf/internal/telemetry"
)

const adviseBody = `{"system":"xeon","program":"SP","class":"S","nodes":2,"cores":2}`

// TestAdviseThroughGatewayMatchesSingle: an advisory answer relayed by
// the gateway must be byte-identical to the owning shard's — document and
// NDJSON shapes both — with the shard's cost attribution re-stamped.
func TestAdviseThroughGatewayMatchesSingle(t *testing.T) {
	_, gts, _ := newCluster(t, 2)
	_, single := newShard(t)

	resp, viaGateway := post(t, gts.URL+"/v1/advise", adviseBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway advise: status %d: %s", resp.StatusCode, viaGateway)
	}
	if resp.Header.Get(telemetry.PredictionsHeader) == "" {
		t.Error("gateway advise dropped the attribution headers")
	}
	respD, direct := post(t, single.URL+"/v1/advise", adviseBody, nil)
	if respD.StatusCode != http.StatusOK {
		t.Fatalf("direct advise: status %d: %s", respD.StatusCode, direct)
	}
	if string(viaGateway) != string(direct) {
		t.Errorf("gateway advise differs from single-daemon advise:\ngateway: %s\ndirect:  %s", viaGateway, direct)
	}
	if got, want := resp.Header.Get(telemetry.PredictionsHeader), respD.Header.Get(telemetry.PredictionsHeader); got != want {
		t.Errorf("relayed attribution %q, shard said %q", got, want)
	}

	hdr := map[string]string{"Accept": "application/x-ndjson"}
	respS, streamed := post(t, gts.URL+"/v1/advise", adviseBody, hdr)
	if respS.StatusCode != http.StatusOK {
		t.Fatalf("gateway advise stream: status %d: %s", respS.StatusCode, streamed)
	}
	if ct := respS.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("streamed Content-Type = %q", ct)
	}
	_, directS := post(t, single.URL+"/v1/advise", adviseBody, hdr)
	if string(streamed) != string(directS) {
		t.Errorf("gateway advise NDJSON differs from single-daemon NDJSON:\ngateway: %s\ndirect:  %s", streamed, directS)
	}
}

// TestAdviseRelaysShardErrors: a shard-detected 4xx (unknown policy —
// the gateway does not pre-validate advise bodies) relays verbatim.
func TestAdviseRelaysShardErrors(t *testing.T) {
	_, gts, _ := newCluster(t, 2)
	resp, raw := post(t, gts.URL+"/v1/advise",
		`{"system":"xeon","program":"SP","policies":["turbo"]}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
	}
}

// stubCluster fronts the gateway with a single fake shard whose handler
// the test controls — for pinning how shard error answers relay.
func stubCluster(t *testing.T, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	shard := httptest.NewServer(h)
	t.Cleanup(shard.Close)
	g, err := New([]string{shard.URL}, quiet())
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(g.Handler())
	t.Cleanup(gts.Close)
	return gts
}

// TestRetryAfterPropagatedFromShard pins the backoff-relay fix: when a
// shard sheds with its own Retry-After, the gateway must relay that
// value — on the point-relay path (predict, advise), the merged-answer
// path (batch), and the all-shards-failed 503 — falling back to "1" only
// when the shard sent none.
func TestRetryAfterPropagatedFromShard(t *testing.T) {
	shed := func(retryAfter string, status int) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if retryAfter != "" {
				w.Header().Set("Retry-After", retryAfter)
			}
			httpError(w, status, "saturated: shed by the stub shard")
		}
	}
	batchBody := `{"tuples":[{"system":"xeon","program":"SP","nodes":1,"cores":1}]}`
	cases := []struct {
		name, route, body string
		shardRetry        string
		shardStatus       int
		wantStatus        int
		wantRetry         string
	}{
		{"predict 429", "/v1/predict", `{"system":"xeon","program":"SP"}`, "7", 429, 429, "7"},
		{"advise 429", "/v1/advise", adviseBody, "11", 429, 429, "11"},
		{"advise 503", "/v1/advise", adviseBody, "13", 503, 503, "13"},
		{"batch 429", "/v1/batch", batchBody, "7", 429, 429, "7"},
		{"batch 429 fallback", "/v1/batch", batchBody, "", 429, 429, "1"},
		{"batch all failed 503", "/v1/batch", batchBody, "9", 503, 503, "9"},
		{"sweep all failed 503", "/v1/sweep", `{"system":"xeon","program":"SP"}`, "9", 503, 503, "9"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			gts := stubCluster(t, shed(tc.shardRetry, tc.shardStatus))
			resp, raw := post(t, gts.URL+tc.route, tc.body, nil)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, raw)
			}
			if got := resp.Header.Get("Retry-After"); got != tc.wantRetry {
				t.Errorf("Retry-After = %q, want %q", got, tc.wantRetry)
			}
		})
	}
}
