package gateway

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hybridperf/internal/cluster"
	"hybridperf/internal/telemetry"
)

// quiet is a logger that drops everything — gateway tests exercise error
// paths on purpose, and their log noise would drown the test output.
func quiet() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// newShard boots one real hybridperfd replica on an httptest listener.
// All shards share seed 42, so their answers are bit-identical — the
// property every merge test leans on.
func newShard(t *testing.T) (*telemetry.Server, *httptest.Server) {
	t.Helper()
	s := telemetry.NewServer(telemetry.Config{
		Workers:       2,
		Seed:          42,
		ResponseCache: 64,
		Logger:        quiet(),
	})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// newCluster boots n shards (clustered among themselves, as deployed)
// and a gateway fronting them.
func newCluster(t *testing.T, n int) (*Gateway, *httptest.Server, []*httptest.Server) {
	t.Helper()
	shards := make([]*httptest.Server, n)
	servers := make([]*telemetry.Server, n)
	peers := make([]string, n)
	for i := range shards {
		servers[i], shards[i] = newShard(t)
		peers[i] = shards[i].URL
	}
	for i, s := range servers {
		if err := s.SetCluster(peers[i], peers); err != nil {
			t.Fatal(err)
		}
	}
	g, err := New(peers, quiet())
	if err != nil {
		t.Fatal(err)
	}
	gts := httptest.NewServer(g.Handler())
	t.Cleanup(gts.Close)
	return g, gts, shards
}

func post(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// batchBody spans both systems and two programs, so a two-shard cluster
// almost surely splits it — and the merge has real work to do.
const batchBody = `{"class":"S","tuples":[
	{"system":"xeon","program":"SP","nodes":2,"cores":8,"freq_ghz":1.8},
	{"system":"xeon","program":"SP","nodes":1,"cores":4,"freq_ghz":1.2},
	{"system":"arm","program":"CP","nodes":2,"cores":4,"freq_ghz":1.4},
	{"system":"arm","program":"CP","nodes":4,"cores":2,"freq_ghz":1.1},
	{"system":"xeon","program":"CP","nodes":1,"cores":8,"freq_ghz":1.5}
]}`

// TestBatchThroughGatewayMatchesSingle: the merge contract. A batch
// spanning several (system, program) groups, fanned across two shards
// and merged, must be byte-identical to the same request served by one
// standalone daemon — same canonical order, same fragments, same
// summary.
func TestBatchThroughGatewayMatchesSingle(t *testing.T) {
	_, gts, _ := newCluster(t, 2)
	_, single := newShard(t)

	resp, viaGateway := post(t, gts.URL+"/v1/batch", batchBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway batch: status %d: %s", resp.StatusCode, viaGateway)
	}
	resp, direct := post(t, single.URL+"/v1/batch", batchBody, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct batch: status %d: %s", resp.StatusCode, direct)
	}
	if string(viaGateway) != string(direct) {
		t.Errorf("gateway-merged batch differs from single-daemon batch:\ngateway: %s\ndirect:  %s", viaGateway, direct)
	}
}

// TestBatchStreamedThroughGateway: the NDJSON shape survives the fan-out
// — line for line identical to a standalone daemon's stream.
func TestBatchStreamedThroughGateway(t *testing.T) {
	_, gts, _ := newCluster(t, 2)
	_, single := newShard(t)

	hdr := map[string]string{"Accept": "application/x-ndjson"}
	resp, viaGateway := post(t, gts.URL+"/v1/batch", batchBody, hdr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway stream: status %d: %s", resp.StatusCode, viaGateway)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("streamed Content-Type = %q", ct)
	}
	_, direct := post(t, single.URL+"/v1/batch", batchBody, hdr)
	if string(viaGateway) != string(direct) {
		t.Errorf("gateway NDJSON differs from single-daemon NDJSON:\ngateway: %s\ndirect:  %s", viaGateway, direct)
	}
}

// TestSweepThroughGatewayMatchesSingle: a sweep partitioned across both
// shards and re-merged (frontier recomputed at the gateway) must equal
// the standalone daemon's sweep byte-for-byte, deadline/budget picks
// included.
func TestSweepThroughGatewayMatchesSingle(t *testing.T) {
	_, gts, _ := newCluster(t, 2)
	_, single := newShard(t)

	body := `{"system":"xeon","program":"SP","class":"S","pow2":true,"deadline_s":1e9,"budget_j":1e12}`
	resp, viaGateway := post(t, gts.URL+"/v1/sweep", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway sweep: status %d: %s", resp.StatusCode, viaGateway)
	}
	resp, direct := post(t, single.URL+"/v1/sweep", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct sweep: status %d: %s", resp.StatusCode, direct)
	}
	if string(viaGateway) != string(direct) {
		t.Errorf("gateway-merged sweep differs from single-daemon sweep:\ngateway: %s\ndirect:  %s", viaGateway, direct)
	}
}

// partialBatchDoc is the merged answer shape with the degradation
// annotations.
type partialBatchDoc struct {
	Class   string `json:"class"`
	Count   int    `json:"count"`
	Groups  int    `json:"groups"`
	Results []struct {
		System  string `json:"system"`
		Program string `json:"program"`
	} `json:"results"`
	ShardErrors []struct {
		Shard  string `json:"shard"`
		Error  string `json:"error"`
		Tuples int    `json:"tuples"`
	} `json:"shard_errors"`
}

// TestBatchPartialOnDeadShard: kill one shard and send a batch spanning
// every (system, program) pair. The answer must carry the surviving
// shards' results plus one annotation for the dead shard — or, in the
// (hash-dependent) case where the dead shard owned every pair, a 503.
func TestBatchPartialOnDeadShard(t *testing.T) {
	g, gts, shards := newCluster(t, 2)

	pairs := [][2]string{{"xeon", "SP"}, {"xeon", "CP"}, {"xeon", "LB"}, {"arm", "SP"}, {"arm", "CP"}, {"arm", "LB"}}
	dead := g.ring.Owner(cluster.ModelKey("xeon", "SP"))
	surviving := 0
	for _, p := range pairs {
		if g.ring.Owner(cluster.ModelKey(p[0], p[1])) != dead {
			surviving++
		}
	}
	for _, ts := range shards {
		if ts.URL == dead {
			ts.Close()
		}
	}

	var sb strings.Builder
	sb.WriteString(`{"class":"S","tuples":[`)
	for i, p := range pairs {
		if i > 0 {
			sb.WriteString(",")
		}
		sb.WriteString(`{"system":"` + p[0] + `","program":"` + p[1] + `","nodes":1,"cores":1,"freq_ghz":0}`)
	}
	sb.WriteString(`]}`)

	resp, raw := post(t, gts.URL+"/v1/batch", sb.String(), nil)
	if surviving == 0 {
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("all owners dead: status %d, want 503: %s", resp.StatusCode, raw)
		}
		return
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial batch: status %d, want 200: %s", resp.StatusCode, raw)
	}
	var doc partialBatchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("unparseable partial answer: %v\n%s", err, raw)
	}
	if doc.Count != surviving || len(doc.Results) != surviving {
		t.Errorf("partial answer has %d results (count %d), want %d", len(doc.Results), doc.Count, surviving)
	}
	for _, r := range doc.Results {
		if g.ring.Owner(cluster.ModelKey(r.System, r.Program)) == dead {
			t.Errorf("result %s/%s came from a dead shard's key", r.System, r.Program)
		}
	}
	if len(doc.ShardErrors) != 1 {
		t.Fatalf("shard_errors = %+v, want exactly the dead shard", doc.ShardErrors)
	}
	if doc.ShardErrors[0].Shard != dead {
		t.Errorf("shard_errors names %q, dead shard is %q", doc.ShardErrors[0].Shard, dead)
	}
	if doc.ShardErrors[0].Tuples != len(pairs)-surviving {
		t.Errorf("shard_errors tuples = %d, want %d", doc.ShardErrors[0].Tuples, len(pairs)-surviving)
	}
}

// TestBatchAllOwnersDead: a batch whose every tuple is owned by the dead
// shard has nothing to degrade to — 503, not an empty 200.
func TestBatchAllOwnersDead(t *testing.T) {
	g, gts, shards := newCluster(t, 2)
	dead := g.ring.Owner(cluster.ModelKey("xeon", "SP"))
	for _, ts := range shards {
		if ts.URL == dead {
			ts.Close()
		}
	}
	body := `{"class":"S","tuples":[{"system":"xeon","program":"SP","nodes":1,"cores":1,"freq_ghz":0}]}`
	resp, raw := post(t, gts.URL+"/v1/batch", body, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}
}

// TestPredictFailsOver: killing the owner of a key must not kill point
// requests for it — the gateway walks the ring to the next replica,
// which computes the identical answer.
func TestPredictFailsOver(t *testing.T) {
	g, gts, shards := newCluster(t, 2)
	_, single := newShard(t)

	body := `{"system":"xeon","program":"SP","class":"A","nodes":4,"cores":8,"freq_ghz":1.8}`
	owner := g.ring.Owner(cluster.ModelKey("xeon", "SP"))
	for _, ts := range shards {
		if ts.URL == owner {
			ts.Close()
		}
	}
	resp, viaGateway := post(t, gts.URL+"/v1/predict", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover predict: status %d: %s", resp.StatusCode, viaGateway)
	}
	resp, direct := post(t, single.URL+"/v1/predict", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct predict: status %d: %s", resp.StatusCode, direct)
	}
	if string(viaGateway) != string(direct) {
		t.Errorf("failover prediction differs from direct:\ngateway: %s\ndirect:  %s", viaGateway, direct)
	}
}

// TestGatewayRejectsBadRequests: request validation mirrors the shards,
// without a cluster round trip — and a shard-detected 4xx (invalid
// config, which the gateway does not pre-validate) relays as a 4xx, not
// as a degraded partial answer.
func TestGatewayRejectsBadRequests(t *testing.T) {
	_, gts, _ := newCluster(t, 2)
	cases := []struct {
		name, url, body string
		want            int
	}{
		{"unknown system", "/v1/batch", `{"tuples":[{"system":"cray","program":"SP","nodes":1,"cores":1}]}`, 400},
		{"unknown program", "/v1/batch", `{"tuples":[{"system":"xeon","program":"NOPE","nodes":1,"cores":1}]}`, 400},
		{"empty batch", "/v1/batch", `{"tuples":[]}`, 400},
		{"unknown field", "/v1/batch", `{"tuplez":[]}`, 400},
		{"invalid config relayed", "/v1/batch", `{"tuples":[{"system":"xeon","program":"SP","nodes":1,"cores":99,"freq_ghz":1.8}]}`, 400},
		{"sweep unknown system", "/v1/sweep", `{"system":"cray","program":"SP"}`, 400},
		{"sweep bad class", "/v1/sweep", `{"system":"xeon","program":"SP","class":"Z"}`, 400},
		{"sweep huge", "/v1/sweep", `{"system":"xeon","program":"SP","max_nodes":99999}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := post(t, gts.URL+tc.url, tc.body, nil)
			if resp.StatusCode != tc.want {
				t.Errorf("status %d, want %d: %s", resp.StatusCode, tc.want, raw)
			}
		})
	}
}

// TestReadyz: ready while any shard lives, 503 once the cluster is gone.
func TestReadyz(t *testing.T) {
	_, gts, shards := newCluster(t, 2)
	resp, err := http.Get(gts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with live shards: status %d", resp.StatusCode)
	}
	for _, ts := range shards {
		ts.Close()
	}
	resp, err = http.Get(gts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with dead cluster: status %d", resp.StatusCode)
	}
}

// TestSystemsProxy: the capability document passes through, ETag intact.
func TestSystemsProxy(t *testing.T) {
	_, gts, _ := newCluster(t, 2)
	resp, err := http.Get(gts.URL + "/v1/systems")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("systems: status %d", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == "" {
		t.Error("systems proxy dropped the ETag")
	}
	var doc struct {
		Systems []json.RawMessage `json:"systems"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil || len(doc.Systems) == 0 {
		t.Errorf("systems document unusable: %v\n%s", err, raw)
	}
}
