// Package trace records per-rank phase timelines of simulated executions —
// compute regions and communication waits — and renders them as a text
// Gantt chart. It is the visual counterpart of the UCR metric: the chart
// shows exactly where the non-useful time of Eq. (14) sits in each rank's
// timeline (and makes rank imbalance and synchronisation skew visible at
// a glance).
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies a phase.
type Kind int

const (
	Compute Kind = iota // OpenMP parallel region (includes memory stalls)
	Network             // MPI communication (collectives, halo waits)
)

// mark is the Gantt glyph per kind.
func (k Kind) mark() byte {
	switch k {
	case Compute:
		return '#'
	case Network:
		return '~'
	}
	return '?'
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Network:
		return "network"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one phase of one rank.
type Event struct {
	Rank       int
	Kind       Kind
	Start, End float64 // virtual time [s]
}

// Duration returns the event length.
func (e Event) Duration() float64 { return e.End - e.Start }

// Recorder accumulates events. The zero value is ready to use; a nil
// *Recorder safely ignores Add calls, so instrumentation sites need no
// conditionals.
type Recorder struct {
	events []Event
	limit  int
}

// NewRecorder creates a recorder holding at most limit events (<= 0 means
// a generous default of 1<<20); past the limit, further events are
// dropped rather than growing without bound.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{limit: limit}
}

// Add records one phase. No-op on a nil recorder or zero-length phases.
func (r *Recorder) Add(rank int, kind Kind, start, end float64) {
	if r == nil || end <= start || len(r.events) >= r.limit {
		return
	}
	r.events = append(r.events, Event{Rank: rank, Kind: kind, Start: start, End: end})
}

// Events returns the recorded events in insertion order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Summary aggregates total duration per (rank, kind).
func Summary(events []Event) map[int]map[Kind]float64 {
	out := make(map[int]map[Kind]float64)
	for _, e := range events {
		if out[e.Rank] == nil {
			out[e.Rank] = make(map[Kind]float64)
		}
		out[e.Rank][e.Kind] += e.Duration()
	}
	return out
}

// Gantt renders the events as one timeline row per rank over `width`
// columns: '#' compute, '~' network wait, ' ' idle. Overlapping events of
// different kinds in one cell resolve to the kind covering more of it.
func Gantt(events []Event, width int) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width < 20 {
		width = 100
	}
	tMax := 0.0
	ranks := map[int]bool{}
	for _, e := range events {
		tMax = math.Max(tMax, e.End)
		ranks[e.Rank] = true
	}
	if tMax <= 0 {
		return "(no events)\n"
	}
	var ids []int
	for r := range ranks {
		ids = append(ids, r)
	}
	sort.Ints(ids)

	// Per rank and column, the coverage per kind decides the glyph.
	cell := float64(width) / tMax
	var b strings.Builder
	for _, rank := range ids {
		cover := make([][2]float64, width) // [compute, network] coverage
		for _, e := range events {
			if e.Rank != rank {
				continue
			}
			lo := int(e.Start * cell)
			hi := int(math.Ceil(e.End * cell))
			for c := lo; c < hi && c < width; c++ {
				cs := float64(c) / cell
				ce := float64(c+1) / cell
				ov := math.Min(e.End, ce) - math.Max(e.Start, cs)
				if ov <= 0 {
					continue
				}
				cover[c][int(e.Kind)] += ov
			}
		}
		row := make([]byte, width)
		for c := range row {
			switch {
			case cover[c][0] == 0 && cover[c][1] == 0:
				row[c] = ' '
			case cover[c][0] >= cover[c][1]:
				row[c] = Compute.mark()
			default:
				row[c] = Network.mark()
			}
		}
		fmt.Fprintf(&b, "rank %2d |%s|\n", rank, string(row))
	}
	fmt.Fprintf(&b, "        0%*s%.3gs\n", width-4, "", tMax)
	fmt.Fprintf(&b, "        # compute (incl. memory stalls)   ~ network   (blank = idle)\n")
	return b.String()
}
