// Package trace records per-rank phase timelines of simulated executions —
// compute regions and communication waits — and renders them as a text
// Gantt chart. It is the visual counterpart of the UCR metric: the chart
// shows exactly where the non-useful time of Eq. (14) sits in each rank's
// timeline (and makes rank imbalance and synchronisation skew visible at
// a glance).
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind classifies a phase.
type Kind int

const (
	Compute  Kind = iota // executing work + non-memory pipeline stalls (the model's T_CPU)
	Network              // MPI communication wait (collectives, halo waits)
	MemStall             // stalled on the node's memory controller
	numKinds
)

// mark is the Gantt glyph per kind.
func (k Kind) mark() byte {
	switch k {
	case Compute:
		return '#'
	case Network:
		return '~'
	case MemStall:
		return '='
	}
	return '?'
}

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Network:
		return "network"
	case MemStall:
		return "memstall"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind maps a Kind's String() form back to the Kind — the inverse
// used when phase timelines round-trip through a wire format (the
// distributed-trace payloads carry kinds by name).
func ParseKind(s string) (Kind, bool) {
	switch s {
	case "compute":
		return Compute, true
	case "network":
		return Network, true
	case "memstall":
		return MemStall, true
	}
	return 0, false
}

// Event is one phase of one rank.
type Event struct {
	Rank       int
	Kind       Kind
	Start, End float64 // virtual time [s]
}

// Duration returns the event length.
func (e Event) Duration() float64 { return e.End - e.Start }

// Recorder accumulates events. The zero value is ready to use; a nil
// *Recorder safely ignores Add calls, so instrumentation sites need no
// conditionals.
type Recorder struct {
	events  []Event
	limit   int
	dropped int
}

// NewRecorder creates a recorder holding at most limit events (<= 0 means
// a generous default of 1<<20); past the limit, further events are
// dropped rather than growing without bound.
func NewRecorder(limit int) *Recorder {
	if limit <= 0 {
		limit = 1 << 20
	}
	return &Recorder{limit: limit}
}

// Add records one phase. It is a no-op on a nil recorder and on
// zero-length phases (an instrumentation site observing nothing). A
// malformed event — negative rank, a kind outside the defined set,
// non-finite or negative timestamps, or End < Start — would corrupt the
// Gantt layout and the UCR accounting downstream, so it is rejected and
// counted in Dropped instead of being stored; events past the capacity
// limit are likewise dropped and counted.
func (r *Recorder) Add(rank int, kind Kind, start, end float64) {
	if r == nil {
		return
	}
	if rank < 0 || kind < 0 || kind >= numKinds ||
		math.IsNaN(start) || math.IsInf(start, 0) || start < 0 ||
		math.IsNaN(end) || math.IsInf(end, 0) || end < start {
		r.dropped++
		return
	}
	if end == start {
		return
	}
	if len(r.events) >= r.limit {
		r.dropped++
		return
	}
	r.events = append(r.events, Event{Rank: rank, Kind: kind, Start: start, End: end})
}

// Events returns the recorded events in insertion order.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// Dropped reports how many events were rejected as malformed or discarded
// past the capacity limit (zero-length phases are not counted: dropping
// them loses no information).
func (r *Recorder) Dropped() int {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Summary aggregates total duration per (rank, kind).
func Summary(events []Event) map[int]map[Kind]float64 {
	out := make(map[int]map[Kind]float64)
	for _, e := range events {
		if out[e.Rank] == nil {
			out[e.Rank] = make(map[Kind]float64)
		}
		out[e.Rank][e.Kind] += e.Duration()
	}
	return out
}

// Gantt renders the events as one timeline row per rank over `width`
// columns: '#' compute, '=' memory stall, '~' network wait, ' ' idle.
// Overlapping events of different kinds in one cell resolve to the kind
// covering more of it (ties favour the lower-numbered kind).
func Gantt(events []Event, width int) string {
	if len(events) == 0 {
		return "(no events)\n"
	}
	if width < 20 {
		width = 100
	}
	tMax := 0.0
	ranks := map[int]bool{}
	for _, e := range events {
		tMax = math.Max(tMax, e.End)
		ranks[e.Rank] = true
	}
	if tMax <= 0 {
		return "(no events)\n"
	}
	var ids []int
	for r := range ranks {
		ids = append(ids, r)
	}
	sort.Ints(ids)

	// Per rank and column, the coverage per kind decides the glyph.
	cell := float64(width) / tMax
	var b strings.Builder
	for _, rank := range ids {
		cover := make([][numKinds]float64, width) // per-kind coverage
		for _, e := range events {
			if e.Rank != rank {
				continue
			}
			lo := int(e.Start * cell)
			hi := int(math.Ceil(e.End * cell))
			for c := lo; c < hi && c < width; c++ {
				cs := float64(c) / cell
				ce := float64(c+1) / cell
				ov := math.Min(e.End, ce) - math.Max(e.Start, cs)
				if ov <= 0 {
					continue
				}
				cover[c][int(e.Kind)] += ov
			}
		}
		row := make([]byte, width)
		for c := range row {
			row[c] = ' '
			best := 0.0
			for kind := Kind(0); kind < numKinds; kind++ {
				if cover[c][kind] > best {
					best = cover[c][kind]
					row[c] = kind.mark()
				}
			}
		}
		fmt.Fprintf(&b, "rank %2d |%s|\n", rank, string(row))
	}
	fmt.Fprintf(&b, "        0%*s%.3gs\n", width-4, "", tMax)
	fmt.Fprintf(&b, "        # compute   = memory stall   ~ network   (blank = idle)\n")
	return b.String()
}

// Extent returns the timeline extent: the latest End over all events.
func Extent(events []Event) float64 {
	t := 0.0
	for _, e := range events {
		t = math.Max(t, e.End)
	}
	return t
}

// UCR derives the measured Useful Computation Ratio (paper Eq. 13,
// UCR = T_CPU/T) from a phase timeline: the mean over ranks of recorded
// compute time (work plus non-memory pipeline stalls, exactly the model's
// T_CPU) divided by the timeline span. With the engine recording each
// rank's master thread, this is the measured counterpart of the model's
// predicted UCR. Returns 0 for an empty timeline.
func UCR(events []Event) float64 {
	span := Extent(events)
	if span <= 0 {
		return 0
	}
	sum := Summary(events)
	if len(sum) == 0 {
		return 0
	}
	// Sum in rank order: float addition does not commute at the ULP level,
	// so ranging over the map directly would let two identical traces
	// yield different ratios depending on iteration order.
	ranks := make([]int, 0, len(sum))
	for r := range sum {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var compute float64
	for _, r := range ranks {
		compute += sum[r][Compute]
	}
	return compute / (span * float64(len(sum)))
}
