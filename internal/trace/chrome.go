package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome-trace (catapult "Trace Event Format") export: the JSON object
// format with one complete event ("ph":"X") per recorded phase, loadable
// in chrome://tracing and Perfetto. Virtual seconds map to microseconds
// (the format's native unit), ranks map to thread ids under a single
// "cluster" process, and a metadata event names each rank's row.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the events as a Chrome-trace JSON object. Events are
// emitted in insertion order (the format does not require sorting); rank
// name metadata rows come first so the viewer labels threads immediately.
func WriteChrome(w io.Writer, events []Event) error {
	const pid = 0
	ranks := map[int]bool{}
	for _, e := range events {
		ranks[e.Rank] = true
	}
	var ids []int
	for r := range ranks {
		ids = append(ids, r)
	}
	sort.Ints(ids)

	out := chromeFile{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+len(ids))}
	for _, r := range ids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	const usPerSec = 1e6
	for _, e := range events {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Kind.String(),
			Cat:  "phase",
			Ph:   "X",
			Ts:   e.Start * usPerSec,
			Dur:  e.Duration() * usPerSec,
			Pid:  pid,
			Tid:  e.Rank,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
