package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome-trace (catapult "Trace Event Format") export: the JSON object
// format with one complete event ("ph":"X") per recorded phase, loadable
// in chrome://tracing and Perfetto. Virtual seconds map to microseconds
// (the format's native unit), ranks map to thread ids under a single
// "cluster" process, and a metadata event names each rank's row.

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome writes the events as a Chrome-trace JSON object. Events are
// emitted in insertion order (the format does not require sorting); rank
// name metadata rows come first so the viewer labels threads immediately.
func WriteChrome(w io.Writer, events []Event) error {
	const pid = 0
	ranks := map[int]bool{}
	for _, e := range events {
		ranks[e.Rank] = true
	}
	var ids []int
	for r := range ranks {
		ids = append(ids, r)
	}
	sort.Ints(ids)

	out := chromeFile{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(events)+len(ids))}
	for _, r := range ids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pid, Tid: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
		})
	}
	const usPerSec = 1e6
	for _, e := range events {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Kind.String(),
			Cat:  "phase",
			Ph:   "X",
			Ts:   e.Start * usPerSec,
			Dur:  e.Duration() * usPerSec,
			Pid:  pid,
			Tid:  e.Rank,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// Span is a generic named wall-clock interval — the serving layer's unit
// of tracing (HTTP request, characterisation sweep, single engine run),
// as opposed to Event, which is a rank's virtual-time phase. Times are
// seconds relative to the export window.
type Span struct {
	Name       string
	Cat        string
	Start, End float64        // seconds since the window origin
	Args       map[string]any // optional annotations (request id, config, …)
}

// assignLanes packs spans onto display lanes (Chrome-trace thread ids):
// two spans may share a lane only if they are disjoint in time or one
// fully contains the other (the viewer renders containment as a flame
// stack, but draws partial overlap on one lane as garbage). Greedy
// first-fit over spans sorted by start (longer first on ties) keeps
// request trees on one lane and pushes concurrent sweep workers onto
// their own. Returns the lane index per span, in input order.
func assignLanes(spans []Span) []int {
	order := make([]int, len(spans))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := spans[order[a]], spans[order[b]]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return sa.End > sb.End
	})
	lanes := make([]int, len(spans))
	var placed [][]Span // per lane, spans placed so far
	for _, idx := range order {
		s := spans[idx]
		lane := -1
		for l, ps := range placed {
			ok := true
			for _, p := range ps {
				disjoint := s.Start >= p.End || s.End <= p.Start
				contained := s.Start >= p.Start && s.End <= p.End
				if !disjoint && !contained {
					ok = false
					break
				}
			}
			if ok {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(placed)
			placed = append(placed, nil)
		}
		placed[lane] = append(placed[lane], s)
		lanes[idx] = lane
	}
	return lanes
}

// WriteChromeSpans writes wall-clock spans as a Chrome-trace JSON object,
// reusing the same catapult format as WriteChrome: one complete ("X")
// event per span, seconds mapped to microseconds, lanes assigned so that
// concurrent spans never partially overlap on one row.
func WriteChromeSpans(w io.Writer, spans []Span) error {
	const pid, usPerSec = 0, 1e6
	lanes := assignLanes(spans)
	out := chromeFile{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans))}
	for i, s := range spans {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   s.Start * usPerSec,
			Dur:  (s.End - s.Start) * usPerSec,
			Pid:  pid,
			Tid:  lanes[i],
			Args: s.Args,
		})
	}
	return json.NewEncoder(w).Encode(out)
}

// ProcessTrace is one process's lane group in a stitched multi-process
// export: the wall-clock spans one hop (gateway or shard) recorded for a
// request, plus optionally an engine phase timeline that hop attached.
// Phase times are virtual seconds starting at zero; PhaseOffset places
// them on the shared wall-clock axis (typically the start of the
// characterisation span that produced them), so the engine lane renders
// inside the span that paid for it.
type ProcessTrace struct {
	Name        string
	Spans       []Span
	Phases      []Event
	PhaseOffset float64 // seconds since the window origin
}

// WriteChromeProcesses writes a stitched multi-process Chrome-trace JSON
// object: each ProcessTrace becomes one pid (named by a process_name
// metadata row) whose span lanes come first and whose engine phase
// timeline, if any, renders as per-rank rows after them — every process
// on one shared time axis. This is the gateway's stitched
// /debug/trace/{traceid} export: one trace id, gateway fan-out spans,
// per-shard handler spans and the sampled engine run, in one file.
func WriteChromeProcesses(w io.Writer, procs []ProcessTrace) error {
	const usPerSec = 1e6
	out := chromeFile{DisplayTimeUnit: "ms"}
	for pid, p := range procs {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": p.Name},
		})
		lanes := assignLanes(p.Spans)
		spanLanes := 0
		for i, s := range p.Spans {
			if lanes[i]+1 > spanLanes {
				spanLanes = lanes[i] + 1
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "X",
				Ts: s.Start * usPerSec, Dur: (s.End - s.Start) * usPerSec,
				Pid: pid, Tid: lanes[i], Args: s.Args,
			})
		}
		if len(p.Phases) == 0 {
			continue
		}
		ranks := map[int]bool{}
		for _, e := range p.Phases {
			ranks[e.Rank] = true
		}
		var ids []int
		for r := range ranks {
			ids = append(ids, r)
		}
		sort.Ints(ids)
		tidByRank := make(map[int]int, len(ids))
		for i, r := range ids {
			tid := spanLanes + i
			tidByRank[r] = tid
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
				Args: map[string]any{"name": fmt.Sprintf("rank %d", r)},
			})
		}
		for _, e := range p.Phases {
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: e.Kind.String(), Cat: "phase", Ph: "X",
				Ts:  (p.PhaseOffset + e.Start) * usPerSec,
				Dur: e.Duration() * usPerSec,
				Pid: pid, Tid: tidByRank[e.Rank],
			})
		}
	}
	return json.NewEncoder(w).Encode(out)
}
