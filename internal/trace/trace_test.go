package trace

import (
	"math"
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	r.Add(0, Compute, 0, 1)
	r.Add(0, Network, 1, 1.5)
	r.Add(1, Compute, 0, 2)
	r.Add(0, Compute, 3, 3) // zero length: dropped
	r.Add(0, Compute, 5, 4) // negative: dropped
	if got := len(r.Events()); got != 3 {
		t.Fatalf("%d events, want 3", got)
	}
	if d := r.Events()[1].Duration(); d != 0.5 {
		t.Fatalf("duration %g", d)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(0, Compute, 0, 1) // must not panic
	if r.Events() != nil {
		t.Fatal("nil recorder returned events")
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Add(0, Compute, float64(i), float64(i)+0.5)
	}
	if got := len(r.Events()); got != 2 {
		t.Fatalf("limit ignored: %d events", got)
	}
}

func TestSummary(t *testing.T) {
	events := []Event{
		{Rank: 0, Kind: Compute, Start: 0, End: 2},
		{Rank: 0, Kind: Network, Start: 2, End: 3},
		{Rank: 0, Kind: Compute, Start: 3, End: 4},
		{Rank: 1, Kind: Network, Start: 0, End: 4},
	}
	s := Summary(events)
	if s[0][Compute] != 3 || s[0][Network] != 1 {
		t.Fatalf("rank 0 summary %v", s[0])
	}
	if s[1][Network] != 4 {
		t.Fatalf("rank 1 summary %v", s[1])
	}
}

func TestGanttRendering(t *testing.T) {
	events := []Event{
		{Rank: 0, Kind: Compute, Start: 0, End: 5},
		{Rank: 0, Kind: Network, Start: 5, End: 10},
		{Rank: 1, Kind: Compute, Start: 0, End: 10},
	}
	out := Gantt(events, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 2 ranks + axis + legend
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "rank  0") || !strings.HasPrefix(lines[1], "rank  1") {
		t.Fatalf("rank rows missing:\n%s", out)
	}
	// Rank 0: first half compute, second half network.
	row0 := lines[0]
	if !strings.Contains(row0, "#") || !strings.Contains(row0, "~") {
		t.Fatalf("rank 0 row lacks both phases: %q", row0)
	}
	if strings.Contains(lines[1], "~") {
		t.Fatalf("rank 1 should be pure compute: %q", lines[1])
	}
	if !strings.Contains(out, "10s") {
		t.Fatalf("time axis missing:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	if got := Gantt(nil, 40); !strings.Contains(got, "no events") {
		t.Fatalf("empty gantt: %q", got)
	}
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Network.String() != "network" || MemStall.String() != "memstall" {
		t.Fatal("kind names")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
}

func TestRecorderRejectsMalformed(t *testing.T) {
	r := NewRecorder(0)
	nan, inf := math.NaN(), math.Inf(1)
	bad := []struct {
		name       string
		rank       int
		kind       Kind
		start, end float64
	}{
		{"negative rank", -1, Compute, 0, 1},
		{"kind below range", 0, Kind(-1), 0, 1},
		{"kind above range", 0, numKinds, 0, 1},
		{"NaN start", 0, Compute, nan, 1},
		{"NaN end", 0, Compute, 0, nan},
		{"+Inf start", 0, Compute, inf, inf},
		{"+Inf end", 0, Compute, 0, inf},
		{"-Inf start", 0, Compute, math.Inf(-1), 1},
		{"negative start", 0, Compute, -0.5, 1},
		{"end before start", 0, Compute, 2, 1},
	}
	for _, c := range bad {
		r.Add(c.rank, c.kind, c.start, c.end)
	}
	if got := len(r.Events()); got != 0 {
		t.Fatalf("%d malformed events stored", got)
	}
	if got := r.Dropped(); got != len(bad) {
		t.Fatalf("Dropped = %d, want %d", got, len(bad))
	}
	// Zero-length events vanish silently, without inflating Dropped.
	r.Add(0, Compute, 1, 1)
	if r.Dropped() != len(bad) || len(r.Events()) != 0 {
		t.Fatal("zero-length event miscounted")
	}
	// A well-formed event still lands.
	r.Add(0, MemStall, 0, 1)
	if len(r.Events()) != 1 {
		t.Fatal("valid event rejected")
	}
}

func TestRecorderLimitCountsDropped(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Add(0, Compute, float64(i), float64(i)+0.5)
	}
	if got := r.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	var nilRec *Recorder
	if nilRec.Dropped() != 0 {
		t.Fatal("nil recorder Dropped")
	}
}

func TestExtent(t *testing.T) {
	if got := Extent(nil); got != 0 {
		t.Fatalf("empty span %g", got)
	}
	events := []Event{
		{Rank: 0, Kind: Compute, Start: 0, End: 2},
		{Rank: 1, Kind: Network, Start: 1, End: 5},
		{Rank: 0, Kind: MemStall, Start: 2, End: 3},
	}
	if got := Extent(events); got != 5 {
		t.Fatalf("span %g, want 5", got)
	}
}

func TestUCR(t *testing.T) {
	if got := UCR(nil); got != 0 {
		t.Fatalf("empty UCR %g", got)
	}
	// Two ranks over a span of 10: rank 0 computes 6s, rank 1 computes 4s
	// (memory stalls and network are not useful computation), so
	// UCR = (6+4)/(2*10) = 0.5.
	events := []Event{
		{Rank: 0, Kind: Compute, Start: 0, End: 6},
		{Rank: 0, Kind: MemStall, Start: 6, End: 8},
		{Rank: 0, Kind: Network, Start: 8, End: 10},
		{Rank: 1, Kind: Compute, Start: 0, End: 4},
		{Rank: 1, Kind: Network, Start: 4, End: 10},
	}
	if got := UCR(events); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("UCR = %g, want 0.5", got)
	}
	// A fully-computing single rank has UCR 1.
	full := []Event{{Rank: 0, Kind: Compute, Start: 0, End: 3}}
	if got := UCR(full); math.Abs(got-1) > 1e-12 {
		t.Fatalf("UCR = %g, want 1", got)
	}
}

func TestGanttMemStallGlyph(t *testing.T) {
	events := []Event{
		{Rank: 0, Kind: Compute, Start: 0, End: 4},
		{Rank: 0, Kind: MemStall, Start: 4, End: 8},
		{Rank: 0, Kind: Network, Start: 8, End: 12},
	}
	out := Gantt(events, 60)
	row := strings.Split(out, "\n")[0]
	for _, glyph := range []string{"#", "=", "~"} {
		if !strings.Contains(row, glyph) {
			t.Fatalf("row lacks %q: %q", glyph, row)
		}
	}
}
