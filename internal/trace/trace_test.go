package trace

import (
	"strings"
	"testing"
)

func TestRecorderBasics(t *testing.T) {
	r := NewRecorder(0)
	r.Add(0, Compute, 0, 1)
	r.Add(0, Network, 1, 1.5)
	r.Add(1, Compute, 0, 2)
	r.Add(0, Compute, 3, 3) // zero length: dropped
	r.Add(0, Compute, 5, 4) // negative: dropped
	if got := len(r.Events()); got != 3 {
		t.Fatalf("%d events, want 3", got)
	}
	if d := r.Events()[1].Duration(); d != 0.5 {
		t.Fatalf("duration %g", d)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Add(0, Compute, 0, 1) // must not panic
	if r.Events() != nil {
		t.Fatal("nil recorder returned events")
	}
}

func TestRecorderLimit(t *testing.T) {
	r := NewRecorder(2)
	for i := 0; i < 5; i++ {
		r.Add(0, Compute, float64(i), float64(i)+0.5)
	}
	if got := len(r.Events()); got != 2 {
		t.Fatalf("limit ignored: %d events", got)
	}
}

func TestSummary(t *testing.T) {
	events := []Event{
		{Rank: 0, Kind: Compute, Start: 0, End: 2},
		{Rank: 0, Kind: Network, Start: 2, End: 3},
		{Rank: 0, Kind: Compute, Start: 3, End: 4},
		{Rank: 1, Kind: Network, Start: 0, End: 4},
	}
	s := Summary(events)
	if s[0][Compute] != 3 || s[0][Network] != 1 {
		t.Fatalf("rank 0 summary %v", s[0])
	}
	if s[1][Network] != 4 {
		t.Fatalf("rank 1 summary %v", s[1])
	}
}

func TestGanttRendering(t *testing.T) {
	events := []Event{
		{Rank: 0, Kind: Compute, Start: 0, End: 5},
		{Rank: 0, Kind: Network, Start: 5, End: 10},
		{Rank: 1, Kind: Compute, Start: 0, End: 10},
	}
	out := Gantt(events, 40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 2 ranks + axis + legend
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "rank  0") || !strings.HasPrefix(lines[1], "rank  1") {
		t.Fatalf("rank rows missing:\n%s", out)
	}
	// Rank 0: first half compute, second half network.
	row0 := lines[0]
	if !strings.Contains(row0, "#") || !strings.Contains(row0, "~") {
		t.Fatalf("rank 0 row lacks both phases: %q", row0)
	}
	if strings.Contains(lines[1], "~") {
		t.Fatalf("rank 1 should be pure compute: %q", lines[1])
	}
	if !strings.Contains(out, "10s") {
		t.Fatalf("time axis missing:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	if got := Gantt(nil, 40); !strings.Contains(got, "no events") {
		t.Fatalf("empty gantt: %q", got)
	}
}

func TestKindString(t *testing.T) {
	if Compute.String() != "compute" || Network.String() != "network" {
		t.Fatal("kind names")
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Fatal("unknown kind string")
	}
}
