package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// chromeDoc mirrors the exported object shape for round-trip decoding.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func TestWriteChrome(t *testing.T) {
	events := []Event{
		{Rank: 1, Kind: Compute, Start: 0, End: 0.5},
		{Rank: 0, Kind: Network, Start: 0.5, End: 0.75},
		{Rank: 0, Kind: MemStall, Start: 0.75, End: 1},
	}
	var buf bytes.Buffer
	if err := WriteChrome(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	// Two rank-name metadata rows (ranks 0 and 1, sorted), then the phases.
	if len(doc.TraceEvents) != 2+len(events) {
		t.Fatalf("%d trace events, want %d", len(doc.TraceEvents), 2+len(events))
	}
	meta0 := doc.TraceEvents[0]
	if meta0.Ph != "M" || meta0.Name != "thread_name" || meta0.Tid != 0 {
		t.Fatalf("first metadata row: %+v", meta0)
	}
	if name, _ := meta0.Args["name"].(string); !strings.Contains(name, "0") {
		t.Fatalf("rank 0 label %q", name)
	}
	first := doc.TraceEvents[2]
	if first.Ph != "X" || first.Name != "compute" || first.Cat != "phase" {
		t.Fatalf("first phase event: %+v", first)
	}
	if first.Tid != 1 || first.Ts != 0 || first.Dur != 0.5e6 {
		t.Fatalf("virtual seconds must map to microseconds: %+v", first)
	}
	last := doc.TraceEvents[4]
	if last.Name != "memstall" || last.Ts != 0.75e6 || last.Dur != 0.25e6 {
		t.Fatalf("last phase event: %+v", last)
	}
}

func TestWriteChromeSpans(t *testing.T) {
	// A request tree: the http span contains a characterize span which
	// contains two concurrent run spans that partially overlap each other.
	spans := []Span{
		{Name: "http POST /v1/predict", Cat: "http", Start: 0, End: 1, Args: map[string]any{"id": "r-1"}},
		{Name: "characterize", Cat: "model", Start: 0.1, End: 0.9},
		{Name: "run A", Cat: "exec", Start: 0.2, End: 0.6},
		{Name: "run B", Cat: "exec", Start: 0.4, End: 0.8},
		{Name: "http GET /metrics", Cat: "http", Start: 1.5, End: 1.6},
	}
	var buf bytes.Buffer
	if err := WriteChromeSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != len(spans) {
		t.Fatalf("%d trace events, want %d", len(doc.TraceEvents), len(spans))
	}
	byName := map[string]int{}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("span event %+v is not a complete event", e)
		}
		byName[e.Name] = e.Tid
	}
	// Nested spans share the root's lane; the partially-overlapping sibling
	// run moves to its own lane; the disjoint later request reuses lane 0.
	if byName["characterize"] != byName["http POST /v1/predict"] {
		t.Fatalf("contained span should share its parent's lane: %v", byName)
	}
	if byName["run B"] == byName["run A"] {
		t.Fatalf("partially overlapping spans must not share a lane: %v", byName)
	}
	if byName["http GET /metrics"] != byName["http POST /v1/predict"] {
		t.Fatalf("disjoint span should reuse the first lane: %v", byName)
	}
	first := doc.TraceEvents[0]
	if first.Ts != 0 || first.Dur != 1e6 {
		t.Fatalf("seconds must map to microseconds: %+v", first)
	}
	if id, _ := first.Args["id"].(string); id != "r-1" {
		t.Fatalf("span args must survive export: %+v", first.Args)
	}
}

func TestWriteChromeEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 0 {
		t.Fatalf("empty timeline produced %d events", len(doc.TraceEvents))
	}
}
