package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitSameNameSameStream(t *testing.T) {
	a := New(7).Split("node0")
	b := New(7).Split("node0")
	for i := 0; i < 50; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same split name diverged")
		}
	}
}

func TestSplitDifferentNamesDecorrelated(t *testing.T) {
	parent := New(7)
	a := parent.Split("node0")
	b := parent.Split("node1")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical draws across differently-named splits", same)
	}
}

func TestJitterMeanNearOne(t *testing.T) {
	s := New(3)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Jitter(0.05)
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.005 {
		t.Fatalf("jitter mean = %.4f, want ~1.0", mean)
	}
}

func TestJitterZeroSigma(t *testing.T) {
	s := New(3)
	for i := 0; i < 10; i++ {
		if s.Jitter(0) != 1 {
			t.Fatal("zero-sigma jitter != 1")
		}
		if s.Jitter(-1) != 1 {
			t.Fatal("negative-sigma jitter != 1")
		}
	}
}

func TestJitterAlwaysPositive(t *testing.T) {
	s := New(11)
	f := func(sigmaRaw uint8) bool {
		sigma := float64(sigmaRaw) / 255 * 0.5
		return s.Jitter(sigma) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(5)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := s.Normal(10, 2)
		sum += x
		ss += (x - 10) * (x - 10)
	}
	mean, sd := sum/n, math.Sqrt(ss/n)
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("mean = %.3f, want ~10", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Fatalf("stddev = %.3f, want ~2", sd)
	}
}

func TestExpMeanAndEdge(t *testing.T) {
	s := New(6)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Exp(3)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Fatalf("exp mean = %.3f, want ~3", mean)
	}
	if s.Exp(0) != 0 || s.Exp(-1) != 0 {
		t.Fatal("Exp with non-positive mean should be 0")
	}
}

func TestIntnRange(t *testing.T) {
	s := New(9)
	for i := 0; i < 1000; i++ {
		v := s.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(13)
	p := s.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm(20) = %v is not a permutation", p)
		}
		seen[v] = true
	}
}
