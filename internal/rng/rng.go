// Package rng provides deterministic, splittable random streams for the
// simulator. Every stochastic component (OS jitter, meter noise) draws from
// its own named stream derived from a run seed, so adding a new consumer
// never perturbs the draws of existing ones and every experiment is
// reproducible bit-for-bit.
package rng

import (
	"math"
	"math/rand"
	"strconv"
)

// Stream is a deterministic random stream. The zero value is invalid; use
// New or Stream.Split.
type Stream struct {
	r *rand.Rand
}

// New creates a stream from a numeric seed.
func New(seed int64) *Stream {
	return &Stream{r: rand.New(rand.NewSource(seed))}
}

// fnv64a is FNV-1a over the name bytes, inlined so Split allocates no
// hasher. Identical to hash/fnv's 64a sum.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64a(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// Split derives an independent child stream identified by name. Two splits
// of the same parent with different names are decorrelated; the same name
// always yields the same child stream.
func (s *Stream) Split(name string) *Stream {
	// Mix the parent's next value with the name hash. The parent advances
	// exactly one draw per Split, keeping sibling order irrelevant only if
	// callers split in a fixed order — which the simulator does.
	seed := int64(fnv64a(fnvOffset64, name)) ^ s.r.Int63()
	return New(seed)
}

// SplitInt is Split(name + strconv.Itoa(i)) without building the string:
// it hashes the same byte sequence, so SplitInt("node", 3) yields exactly
// the stream Split("node3") would — the allocation-free form for indexed
// streams on sweep hot paths.
func (s *Stream) SplitInt(name string, i int) *Stream {
	h := fnv64a(fnvOffset64, name)
	var buf [20]byte
	for _, c := range strconv.AppendInt(buf[:0], int64(i), 10) {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	seed := int64(h) ^ s.r.Int63()
	return New(seed)
}

// Float64 returns a uniform draw in [0,1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Intn returns a uniform draw in [0,n).
func (s *Stream) Intn(n int) int { return s.r.Intn(n) }

// Normal returns a draw from N(mean, stddev²).
func (s *Stream) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.r.NormFloat64()
}

// LogNormal returns a draw from a log-normal distribution whose underlying
// normal has the given mu and sigma. For small sigma the mean is close to
// exp(mu + sigma²/2) ≈ e^mu.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*s.r.NormFloat64())
}

// Jitter returns a multiplicative perturbation centred on 1.0 with relative
// spread sigma (log-normal, mean-corrected so E[Jitter] == 1). sigma <= 0
// returns exactly 1.
func (s *Stream) Jitter(sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	// mu = -sigma²/2 gives a log-normal with mean exactly 1.
	return s.LogNormal(-sigma*sigma/2, sigma)
}

// Exp returns an exponential draw with the given mean (mean <= 0 returns 0).
func (s *Stream) Exp(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return s.r.ExpFloat64() * mean
}

// Perm returns a deterministic pseudo-random permutation of [0,n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }
