package counters

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBusyTime(t *testing.T) {
	c := Core{WorkTime: 2, BStallTime: 1, MemStallTime: 3, NetWaitTime: 4}
	if got := c.BusyTime(); got != 6 {
		t.Fatalf("BusyTime = %g, want 6 (net wait is idle)", got)
	}
}

func TestAggregate(t *testing.T) {
	cores := []Core{
		{WorkTime: 1, BStallTime: 0.5, MemStallTime: 0.25, Instructions: 100},
		{WorkTime: 2, BStallTime: 1.0, MemStallTime: 0.75, Instructions: 200},
	}
	tot := Aggregate(cores, 2e9, 4)
	if tot.WorkCycles != 6e9 {
		t.Errorf("WorkCycles = %g, want 6e9", tot.WorkCycles)
	}
	if tot.BStallCycles != 3e9 {
		t.Errorf("BStallCycles = %g, want 3e9", tot.BStallCycles)
	}
	if tot.MemStallCycles != 2e9 {
		t.Errorf("MemStallCycles = %g, want 2e9", tot.MemStallCycles)
	}
	if tot.Instructions != 300 {
		t.Errorf("Instructions = %g", tot.Instructions)
	}
	if tot.Cores != 2 || tot.Elapsed != 4 {
		t.Errorf("Cores/Elapsed = %d/%g", tot.Cores, tot.Elapsed)
	}
	// Busy = (1+0.5+0.25)+(2+1+0.75) = 5.5 over 2 cores x 4 s.
	if u := tot.Utilization(); math.Abs(u-5.5/8) > 1e-12 {
		t.Errorf("Utilization = %g, want %g", u, 5.5/8)
	}
}

func TestUtilizationClamped(t *testing.T) {
	tot := Totals{BusyTime: 100, Cores: 1, Elapsed: 1}
	if u := tot.Utilization(); u != 1 {
		t.Fatalf("over-busy utilization = %g, want clamp at 1", u)
	}
	empty := Totals{}
	if empty.Utilization() != 0 {
		t.Fatal("empty utilization should be 0")
	}
}

func TestAdd(t *testing.T) {
	a := Totals{WorkCycles: 1, BStallCycles: 2, MemStallCycles: 3, Instructions: 4, NetWaitTime: 5, BusyTime: 6, Cores: 2, Elapsed: 7}
	b := Totals{WorkCycles: 10, BStallCycles: 20, MemStallCycles: 30, Instructions: 40, NetWaitTime: 50, BusyTime: 60, Cores: 3, Elapsed: 5}
	a.Add(b)
	if a.WorkCycles != 11 || a.BStallCycles != 22 || a.MemStallCycles != 33 {
		t.Fatalf("cycle sums wrong: %+v", a)
	}
	if a.Cores != 5 {
		t.Fatalf("Cores = %d, want 5", a.Cores)
	}
	if a.Elapsed != 7 { // makespan, not sum
		t.Fatalf("Elapsed = %g, want 7", a.Elapsed)
	}
}

// Property: utilization is always in [0, 1].
func TestUtilizationBoundsProperty(t *testing.T) {
	f := func(busyRaw, elapsedRaw uint16, cores uint8) bool {
		tot := Totals{
			BusyTime: float64(busyRaw),
			Elapsed:  float64(elapsedRaw),
			Cores:    int(cores),
		}
		u := tot.Utilization()
		return u >= 0 && u <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
