// Package counters implements the simulated hardware performance counters
// the paper's workload characterisation reads: work cycles, non-memory
// (pipeline) stall cycles, memory stall cycles and CPU utilisation, kept
// per core and aggregated per run. These are the baseline-execution inputs
// ws, bs, ms and Us of the analytical model (Table 1).
package counters

// Core accumulates one core's activity over a run. Durations are in
// seconds of virtual time; cycle counts are derived with the run frequency.
type Core struct {
	WorkTime     float64 // executing work (and overlapped data access)
	BStallTime   float64 // non-memory pipeline stalls
	MemStallTime float64 // waiting for / being serviced by memory
	NetWaitTime  float64 // idle, blocked on network communication
	Instructions float64 // abstract instructions (work units) retired
}

// BusyTime returns the time the core was not idle (OS-visible busy time:
// memory stalls count as busy, network waits do not).
func (c Core) BusyTime() float64 { return c.WorkTime + c.BStallTime + c.MemStallTime }

// Totals is the node- or cluster-level aggregation of core counters, in
// the cycle units the model consumes.
type Totals struct {
	WorkCycles     float64 // w: summed over all cores
	BStallCycles   float64 // b: non-memory stall cycles, summed
	MemStallCycles float64 // m: memory stall cycles, summed
	Instructions   float64 // I: abstract instructions, summed
	NetWaitTime    float64 // summed network-blocked time [s]
	BusyTime       float64 // summed busy time [s]
	Cores          int     // number of cores aggregated
	Elapsed        float64 // wall-clock of the run [s]
}

// Aggregate converts per-core counters at frequency f [Hz] over a run of
// the given elapsed time into model-facing totals.
func Aggregate(cores []Core, f, elapsed float64) Totals {
	t := Totals{Cores: len(cores), Elapsed: elapsed}
	for _, c := range cores {
		t.WorkCycles += c.WorkTime * f
		t.BStallCycles += c.BStallTime * f
		t.MemStallCycles += c.MemStallTime * f
		t.Instructions += c.Instructions
		t.NetWaitTime += c.NetWaitTime
		t.BusyTime += c.BusyTime()
	}
	return t
}

// Utilization returns mean CPU utilisation across the aggregated cores:
// busy time over elapsed time, the quantity U the model's Eq. (6) uses.
func (t Totals) Utilization() float64 {
	if t.Elapsed <= 0 || t.Cores == 0 {
		return 0
	}
	u := t.BusyTime / (t.Elapsed * float64(t.Cores))
	if u > 1 {
		u = 1
	}
	return u
}

// Add accumulates other into t (for summing nodes into a cluster view).
// Elapsed takes the maximum (makespan), Cores the sum.
func (t *Totals) Add(other Totals) {
	t.WorkCycles += other.WorkCycles
	t.BStallCycles += other.BStallCycles
	t.MemStallCycles += other.MemStallCycles
	t.Instructions += other.Instructions
	t.NetWaitTime += other.NetWaitTime
	t.BusyTime += other.BusyTime
	t.Cores += other.Cores
	if other.Elapsed > t.Elapsed {
		t.Elapsed = other.Elapsed
	}
}
