package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"xxxx", "1"},
		{"y", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header+rule+2 rows", len(lines))
	}
	// All lines aligned to the same width.
	for _, l := range lines[1:] {
		if len(l) > len(lines[0])+1 {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("missing rule: %q", lines[1])
	}
}

func TestTableWidensForCells(t *testing.T) {
	out := Table([]string{"h"}, [][]string{{"wider-than-header"}})
	if !strings.Contains(out, "wider-than-header") {
		t.Fatal("cell truncated")
	}
}

func TestBarGroupScaling(t *testing.T) {
	out := BarGroup("title", "s", []string{"(2,1)", "(2,4)"},
		[]string{"Measured", "Predicted"},
		map[string][]float64{
			"Measured":  {100, 50},
			"Predicted": {90, 55},
		}, 40)
	if !strings.HasPrefix(out, "title\n") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + 2 labels x 2 series
		t.Fatalf("%d lines", len(lines))
	}
	// The max value gets the full-width bar.
	if !strings.Contains(lines[1], strings.Repeat("#", 40)) {
		t.Fatalf("max bar not full width: %q", lines[1])
	}
	// Bars are proportional: 50 gets half of 100's bar.
	half := strings.Count(lines[3], "#")
	if half < 18 || half > 22 {
		t.Fatalf("proportionality off: 50/100 bar has %d marks", half)
	}
	// Values are printed.
	if !strings.Contains(out, "100") || !strings.Contains(out, "55") {
		t.Fatal("values missing")
	}
}

func TestBarGroupZeroValues(t *testing.T) {
	out := BarGroup("t", "J", []string{"x"}, []string{"s"}, map[string][]float64{"s": {0}}, 10)
	if !strings.Contains(out, "0 J") {
		t.Fatalf("zero bar rendering: %q", out)
	}
}

func TestBarGroupShortSeries(t *testing.T) {
	// A series with fewer values than labels must not panic.
	out := BarGroup("t", "", []string{"a", "b"}, []string{"s"}, map[string][]float64{"s": {1}}, 10)
	if !strings.Contains(out, "a") {
		t.Fatal("label missing")
	}
}

func TestScatterBasics(t *testing.T) {
	pts := []XY{
		{X: 1, Y: 1},
		{X: 100, Y: 50},
		{X: 10, Y: 25, Highlight: true, Label: "front"},
	}
	out := Scatter("plot", "T", "E", pts, 40, 10, true, false)
	if !strings.Contains(out, "plot") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("highlighted point not starred")
	}
	if !strings.Contains(out, ".") {
		t.Fatal("plain points missing")
	}
	if !strings.Contains(out, "front") {
		t.Fatal("highlight label missing")
	}
	if !strings.Contains(out, "[log]") {
		t.Fatal("log axis not indicated")
	}
}

func TestScatterDropsNonPositiveOnLogAxes(t *testing.T) {
	pts := []XY{{X: -1, Y: 1}, {X: 0, Y: 1}}
	out := Scatter("p", "x", "y", pts, 30, 8, true, false)
	if !strings.Contains(out, "(no points)") {
		t.Fatalf("log axis kept non-positive points:\n%s", out)
	}
}

func TestScatterSinglePoint(t *testing.T) {
	out := Scatter("p", "x", "y", []XY{{X: 5, Y: 5}}, 30, 8, false, false)
	if !strings.Contains(out, ".") {
		t.Fatal("single point not drawn")
	}
}

func TestScatterEmptyInput(t *testing.T) {
	out := Scatter("p", "x", "y", nil, 30, 8, false, false)
	if !strings.Contains(out, "(no points)") {
		t.Fatal("empty scatter should say so")
	}
}

func TestScatterMinimumDimensions(t *testing.T) {
	// Degenerate width/height fall back to defaults without panicking.
	out := Scatter("p", "x", "y", []XY{{X: 1, Y: 2}, {X: 3, Y: 4}}, 1, 1, false, true)
	if len(out) == 0 {
		t.Fatal("no output")
	}
}
