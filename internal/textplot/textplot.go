// Package textplot renders the repository's tables and figures as plain
// text: aligned tables, horizontal bar groups (for the measured-vs-
// predicted validation figures) and scatter plots with optional log axes
// (for the time-energy Pareto figures).
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows under headers with aligned columns.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// BarGroup renders one horizontal bar per (label, series) pair, scaled to
// the global maximum — the layout of the validation figures, where each
// configuration shows a Measured and a Predicted bar.
func BarGroup(title, unit string, labels []string, series []string, values map[string][]float64, width int) string {
	if width < 10 {
		width = 40
	}
	max := 0.0
	for _, vs := range values {
		for _, v := range vs {
			if v > max {
				max = v
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	seriesW := 0
	for _, s := range series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	for i, label := range labels {
		for _, s := range series {
			vs := values[s]
			if i >= len(vs) {
				continue
			}
			n := 0
			if max > 0 {
				n = int(math.Round(vs[i] / max * float64(width)))
			}
			fmt.Fprintf(&b, "%-*s %-*s |%s%s %.4g %s\n",
				labelW, label, seriesW, s,
				strings.Repeat("#", n), strings.Repeat(" ", width-n), vs[i], unit)
		}
	}
	return b.String()
}

// XY is one scatter point with an optional highlight and label.
type XY struct {
	X, Y      float64
	Highlight bool   // rendered as '*' instead of '.'
	Label     string // annotated in the legend when highlighted
}

// Scatter renders points on a width x height character grid. Log axes are
// applied per flag (points with non-positive coordinates are dropped on
// log axes). Highlighted points draw over plain ones and are listed under
// the plot with their labels.
func Scatter(title, xName, yName string, pts []XY, width, height int, logX, logY bool) string {
	if width < 20 {
		width = 72
	}
	if height < 8 {
		height = 24
	}
	tx := func(v float64) (float64, bool) {
		if logX {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	ty := func(v float64) (float64, bool) {
		if logY {
			if v <= 0 {
				return 0, false
			}
			return math.Log10(v), true
		}
		return v, true
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	type txy struct {
		x, y float64
		p    XY
	}
	var tpts []txy
	for _, p := range pts {
		x, okx := tx(p.X)
		y, oky := ty(p.Y)
		if !okx || !oky {
			continue
		}
		tpts = append(tpts, txy{x, y, p})
		minX, maxX = math.Min(minX, x), math.Max(maxX, x)
		minY, maxY = math.Min(minY, y), math.Max(maxY, y)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if len(tpts) == 0 {
		b.WriteString("(no points)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(p txy, mark byte) {
		cx := int((p.x - minX) / (maxX - minX) * float64(width-1))
		cy := int((p.y - minY) / (maxY - minY) * float64(height-1))
		row := height - 1 - cy
		grid[row][cx] = mark
	}
	for _, p := range tpts {
		if !p.p.Highlight {
			plot(p, '.')
		}
	}
	for _, p := range tpts {
		if p.p.Highlight {
			plot(p, '*')
		}
	}
	fmtAxis := func(v float64, log bool) string {
		if log {
			return fmt.Sprintf("%.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%.3g", v)
	}
	for r, row := range grid {
		label := ""
		if r == 0 {
			label = fmtAxis(maxY, logY)
		} else if r == height-1 {
			label = fmtAxis(minY, logY)
		}
		fmt.Fprintf(&b, "%8s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%8s  %-*s%s\n", "", width-len(fmtAxis(maxX, logX)), fmtAxis(minX, logX), fmtAxis(maxX, logX))
	fmt.Fprintf(&b, "          x: %s%s, y: %s%s   (. = configuration, * = Pareto-optimal)\n",
		xName, logSuffix(logX), yName, logSuffix(logY))
	for _, p := range tpts {
		if p.p.Highlight && p.p.Label != "" {
			fmt.Fprintf(&b, "          * %-18s T=%-10.4g E=%.4g\n", p.p.Label, p.p.X, p.p.Y)
		}
	}
	return b.String()
}

func logSuffix(log bool) string {
	if log {
		return " [log]"
	}
	return ""
}
