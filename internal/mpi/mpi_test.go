package mpi

import (
	"math"
	"testing"

	"hybridperf/internal/des"
	"hybridperf/internal/machine"
	"hybridperf/internal/node"
	"hybridperf/internal/simnet"
)

// cluster builds an n-node single-core world at fmax on the Xeon profile.
func cluster(k *des.Kernel, n int) (*World, []*node.Node) {
	prof := machine.XeonE5()
	sw := simnet.NewSwitch(k, prof)
	var nodes []*node.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, node.New(k, prof, i, 1, prof.FMax(), nil))
	}
	return NewWorld(k, sw, nodes), nodes
}

func run(t *testing.T, k *des.Kernel) {
	t.Helper()
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvDelivers(t *testing.T) {
	k := des.NewKernel()
	w, _ := cluster(k, 2)
	var recvAt float64
	k.Spawn("r0", func(p *des.Proc) {
		w.Rank(0).Isend(1, 1<<20, TagHalo)
	})
	k.Spawn("r1", func(p *des.Proc) {
		w.Rank(1).WaitCount(p, TagHalo, 1)
		recvAt = p.Now()
	})
	run(t, k)
	want := machine.XeonE5().MsgServiceTime(1 << 20)
	if math.Abs(recvAt-want) > 1e-12 {
		t.Fatalf("delivery at %g, want %g", recvAt, want)
	}
}

func TestWaitCountAlreadySatisfied(t *testing.T) {
	k := des.NewKernel()
	w, _ := cluster(k, 2)
	k.Spawn("r0", func(p *des.Proc) { w.Rank(0).Isend(1, 8, TagHalo) })
	k.Spawn("r1", func(p *des.Proc) {
		p.Advance(1) // message long since delivered
		start := p.Now()
		w.Rank(1).WaitCount(p, TagHalo, 1)
		if p.Now() != start {
			t.Error("WaitCount blocked although the count was satisfied")
		}
	})
	run(t, k)
}

func TestSelfSendImmediate(t *testing.T) {
	k := des.NewKernel()
	w, _ := cluster(k, 1)
	k.Spawn("r0", func(p *des.Proc) {
		r := w.Rank(0)
		r.Isend(0, 1<<20, TagHalo)
		r.WaitCount(p, TagHalo, 1)
		if p.Now() != 0 {
			t.Errorf("self-send took %g s, want 0 (shared memory)", p.Now())
		}
	})
	run(t, k)
}

func TestIsendInvalidRankPanics(t *testing.T) {
	k := des.NewKernel()
	w, _ := cluster(k, 2)
	k.Spawn("r0", func(p *des.Proc) { w.Rank(0).Isend(5, 8, TagHalo) })
	if err := k.Run(math.Inf(1)); err == nil {
		t.Fatal("Isend to invalid rank did not fail the run")
	}
}

func TestTagsAreIndependent(t *testing.T) {
	k := des.NewKernel()
	w, _ := cluster(k, 2)
	k.Spawn("r0", func(p *des.Proc) {
		w.Rank(0).Isend(1, 8, TagReduce) // reduce traffic must not
		w.Rank(0).Isend(1, 8, TagHalo)   // satisfy a halo wait
	})
	k.Spawn("r1", func(p *des.Proc) {
		w.Rank(1).WaitCount(p, TagHalo, 1)
		if w.Rank(1).Received(TagHalo) != 1 {
			t.Error("halo count wrong")
		}
		w.Rank(1).WaitCount(p, TagReduce, 1)
	})
	run(t, k)
}

func TestReduceRounds(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4, 20: 5, 256: 8}
	for n, want := range cases {
		if got := ReduceRounds(n); got != want {
			t.Errorf("ReduceRounds(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestAllreduceSynchronizesAllSizes(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 7, 8} {
		k := des.NewKernel()
		w, _ := cluster(k, n)
		finish := make([]float64, n)
		for i := 0; i < n; i++ {
			i := i
			k.Spawn("r", func(p *des.Proc) {
				p.Advance(float64(i) * 0.01) // skewed entry
				w.Rank(i).Allreduce(p, 4096)
				finish[i] = p.Now()
			})
		}
		run(t, k)
		// Every rank must have sent and received rounds messages.
		rounds := ReduceRounds(n)
		for i := 0; i < n; i++ {
			if got := w.Rank(i).Received(TagReduce); got != rounds {
				t.Fatalf("n=%d rank %d received %d reduce messages, want %d", n, i, got, rounds)
			}
		}
		// No rank can finish before the slowest entrant.
		for i, f := range finish {
			if f < float64(n-1)*0.01 {
				t.Fatalf("n=%d rank %d finished at %g before the last entrant", n, i, f)
			}
		}
	}
}

func TestRepeatedAllreduces(t *testing.T) {
	const n, ops = 4, 5
	k := des.NewKernel()
	w, _ := cluster(k, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("r", func(p *des.Proc) {
			for op := 0; op < ops; op++ {
				p.Advance(float64(i) * 0.001)
				w.Rank(i).Allreduce(p, 1024)
			}
		})
	}
	run(t, k)
	want := ops * ReduceRounds(n)
	for i := 0; i < n; i++ {
		if got := w.Rank(i).Received(TagReduce); got != want {
			t.Fatalf("rank %d received %d, want %d", i, got, want)
		}
	}
}

func TestBarrierAligns(t *testing.T) {
	const n = 4
	k := des.NewKernel()
	w, _ := cluster(k, n)
	after := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("r", func(p *des.Proc) {
			p.Advance(float64(i)) // arrive at 0..3
			w.Rank(i).Barrier(p)
			after[i] = p.Now()
		})
	}
	run(t, k)
	for i := 0; i < n; i++ {
		if after[i] < 3 {
			t.Fatalf("rank %d left the barrier at %g, before the last arrival", i, after[i])
		}
	}
}

func TestProfileAccounting(t *testing.T) {
	k := des.NewKernel()
	w, _ := cluster(k, 2)
	k.Spawn("r0", func(p *des.Proc) {
		r := w.Rank(0)
		r.Isend(1, 1000, TagHalo)
		r.Isend(1, 3000, TagHalo)
	})
	k.Spawn("r1", func(p *des.Proc) {
		w.Rank(1).WaitCount(p, TagHalo, 2)
	})
	run(t, k)
	prof := w.Profile()
	if prof.TotalMsgs != 2 {
		t.Fatalf("TotalMsgs = %d", prof.TotalMsgs)
	}
	if prof.TotalBytes != 4000 {
		t.Fatalf("TotalBytes = %g", prof.TotalBytes)
	}
	if prof.BytesPerMsg != 2000 {
		t.Fatalf("BytesPerMsg = %g (nu)", prof.BytesPerMsg)
	}
	if prof.MsgsPerRank != 1 { // 2 msgs over 2 ranks
		t.Fatalf("MsgsPerRank = %g (eta)", prof.MsgsPerRank)
	}
	if prof.MeanWaitTime <= 0 {
		t.Fatalf("MeanWaitTime = %g, want > 0 (rank1 blocked)", prof.MeanWaitTime)
	}
}

func TestNICActivityDuringTransfer(t *testing.T) {
	k := des.NewKernel()
	w, nodes := cluster(k, 2)
	k.Spawn("r0", func(p *des.Proc) {
		w.Rank(0).Isend(1, 8<<20, TagHalo)
		p.Advance(100)
	})
	k.Spawn("r1", func(p *des.Proc) {
		w.Rank(1).WaitCount(p, TagHalo, 1)
	})
	run(t, k)
	transfer := machine.XeonE5().MsgServiceTime(8 << 20)
	e0 := nodes[0].Energy()
	want := machine.XeonE5().PNet * transfer
	if math.Abs(e0.Net-want)/want > 1e-6 {
		t.Fatalf("sender NIC energy = %g, want %g", e0.Net, want)
	}
	// Receiver was blocked waiting the whole transfer too.
	e1 := nodes[1].Energy()
	if e1.Net < want*0.99 {
		t.Fatalf("receiver NIC energy = %g, want >= %g", e1.Net, want)
	}
}

func TestWorldAccessors(t *testing.T) {
	k := des.NewKernel()
	w, nodes := cluster(k, 3)
	if w.Size() != 3 {
		t.Fatalf("Size = %d", w.Size())
	}
	r := w.Rank(2)
	if r.ID() != 2 || r.Node() != nodes[2] || r.World() != w {
		t.Fatal("rank accessors inconsistent")
	}
}

func TestSwitchSerializesConcurrentSenders(t *testing.T) {
	// All ranks send to rank 0 simultaneously; deliveries must be spaced
	// by the service time (single-server switch).
	const n = 5
	k := des.NewKernel()
	w, _ := cluster(k, n)
	for i := 1; i < n; i++ {
		i := i
		k.Spawn("s", func(p *des.Proc) { w.Rank(i).Isend(0, 1<<20, TagHalo) })
	}
	var last float64
	k.Spawn("r0", func(p *des.Proc) {
		w.Rank(0).WaitCount(p, TagHalo, n-1)
		last = p.Now()
	})
	run(t, k)
	svc := machine.XeonE5().MsgServiceTime(1 << 20)
	want := float64(n-1) * svc
	if math.Abs(last-want)/want > 1e-9 {
		t.Fatalf("last delivery at %g, want %g (serialized)", last, want)
	}
}

func TestAlltoallDeliversAll(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8} {
		k := des.NewKernel()
		w, _ := cluster(k, n)
		finish := make([]float64, n)
		for i := 0; i < n; i++ {
			i := i
			k.Spawn("r", func(p *des.Proc) {
				p.Advance(float64(i) * 0.01)
				w.Rank(i).Alltoall(p, 1<<16)
				finish[i] = p.Now()
			})
		}
		run(t, k)
		for i := 0; i < n; i++ {
			if got := w.Rank(i).Received(TagAll2All); got != n-1 {
				t.Fatalf("n=%d rank %d received %d, want %d", n, i, got, n-1)
			}
			// Synchronising: nobody finishes before the last entrant has
			// at least posted its messages.
			if finish[i] < float64(n-1)*0.01 {
				t.Fatalf("n=%d rank %d finished at %g before last entrant", n, i, finish[i])
			}
		}
	}
}

func TestRepeatedAlltoalls(t *testing.T) {
	const n, ops = 4, 3
	k := des.NewKernel()
	w, _ := cluster(k, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("r", func(p *des.Proc) {
			for op := 0; op < ops; op++ {
				p.Advance(float64(i) * 0.002)
				w.Rank(i).Alltoall(p, 4096)
			}
		})
	}
	run(t, k)
	for i := 0; i < n; i++ {
		if got := w.Rank(i).Received(TagAll2All); got != ops*(n-1) {
			t.Fatalf("rank %d received %d, want %d", i, got, ops*(n-1))
		}
	}
}

func TestAlltoallSingleRankNoop(t *testing.T) {
	k := des.NewKernel()
	w, _ := cluster(k, 1)
	k.Spawn("r", func(p *des.Proc) {
		w.Rank(0).Alltoall(p, 1<<20)
		if p.Now() != 0 {
			t.Error("single-rank alltoall advanced time")
		}
	})
	run(t, k)
	if w.Profile().TotalMsgs != 0 {
		t.Fatal("single-rank alltoall sent messages")
	}
}
