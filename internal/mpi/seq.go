package mpi

import (
	"hybridperf/internal/des"
)

// This file is the sequential-engine form of the runtime's blocking paths:
// the courier becomes a Machine carried by the pooled message record, and
// the blocking receives/collectives become resumable ops. Each mirrors its
// goroutine counterpart statement for statement — same send order, same
// sequence-number matching, same NIC/idle/wait accounting — so traffic is
// bit-for-bit identical on either engine.

// Step implements des.Machine: the sequential courier. The message drives
// its own transfer through the network, then drops the sender's NIC
// reference, recycles itself and delivers — exactly the goroutine courier.
func (m *message) Step(mp *des.Proc) bool {
	w := m.src.w
	if !w.net.TransferStep(&m.op, mp) {
		return false
	}
	m.src.node.NetRef(-1)
	dst, tag, seq := m.dst, m.tag, m.seq
	w.freeMessage(m)
	dst.deliver(tag, seq)
	return true
}

// waitOp is the shared continuation state of a blocking receive: the
// NIC hold, core-idle transition and wait-time accounting around a
// re-checked predicate (WaitCount's cumulative count or a collective
// round's sequence number).
type waitOp struct {
	pc    int8
	start float64
	ws    float64
}

// WaitCountOp is WaitCount in continuation form: arm Tag and Target, then
// drive with Rank.WaitCountStep. The op is single-use; re-arm by
// assignment for the next wait.
type WaitCountOp struct {
	w      waitOp
	Tag    Tag
	Target int
}

// WaitCountStep drives an armed WaitCountOp: false means the wait blocked
// (yield and re-enter), true means the target count has been received.
func (r *Rank) WaitCountStep(op *WaitCountOp, p *des.Proc) bool {
	switch op.w.pc {
	case 0:
		if r.received[op.Tag] >= op.Target {
			return true
		}
		op.w.start = p.Now()
		r.node.NetRef(1)
		op.w.ws = r.node.NetWaitBegin(0)
		op.w.pc = 1
		fallthrough
	case 1:
		if r.received[op.Tag] < op.Target {
			r.cond[op.Tag].WaitArm(p)
			return false
		}
		r.node.NetWaitEnd(0, op.w.ws)
		r.node.NetRef(-1)
		r.waitTime += p.Now() - op.w.start
		op.w.pc = 0
		return true
	}
	panic("mpi: bad WaitCountOp state")
}

// waitSeqOp is waitSeq in continuation form: one collective round's
// exact-match receive.
type waitSeqOp struct {
	w   waitOp
	tag Tag
	seq int
}

func (r *Rank) waitSeqStep(op *waitSeqOp, p *des.Proc) bool {
	switch op.w.pc {
	case 0:
		if r.seqGot(op.tag, op.seq) {
			return true
		}
		op.w.start = p.Now()
		r.node.NetRef(1)
		op.w.ws = r.node.NetWaitBegin(0)
		op.w.pc = 1
		fallthrough
	case 1:
		if !r.seqGot(op.tag, op.seq) {
			r.cond[op.tag].WaitArm(p)
			return false
		}
		r.node.NetWaitEnd(0, op.w.ws)
		r.node.NetRef(-1)
		r.waitTime += p.Now() - op.w.start
		op.w.pc = 0
		return true
	}
	panic("mpi: bad waitSeqOp state")
}

// AllreduceOp is Allreduce in continuation form: arm Bytes, then drive
// with Rank.AllreduceStep. The op self-resets on completion, so one value
// serves every iteration of a program loop. A Barrier is an AllreduceOp
// with Bytes 8 (see Rank.Barrier).
type AllreduceOp struct {
	pc     int8
	Bytes  float64
	op     int
	round  int
	rounds int
	wait   waitSeqOp
}

// AllreduceStep drives an armed AllreduceOp: false means a round's wait
// blocked (yield and re-enter), true means the collective completed.
func (r *Rank) AllreduceStep(aop *AllreduceOp, p *des.Proc) bool {
	n := r.w.Size()
	if aop.pc == 0 {
		if n == 1 {
			return true
		}
		aop.rounds = ReduceRounds(n)
		aop.op = r.reduceOps
		r.reduceOps++
		aop.round = 0
		aop.pc = 1
	}
	for aop.round < aop.rounds {
		if aop.pc == 1 {
			partner := (r.id + (1 << aop.round)) % n
			seq := aop.op*aop.rounds + aop.round
			r.isend(partner, aop.Bytes, TagReduce, seq)
			aop.wait = waitSeqOp{tag: TagReduce, seq: seq}
			aop.pc = 2
		}
		if !r.waitSeqStep(&aop.wait, p) {
			return false
		}
		aop.round++
		aop.pc = 1
	}
	aop.pc = 0
	return true
}

// AlltoallOp is Alltoall in continuation form: arm Bytes (the per-peer
// message volume), then drive with Rank.AlltoallStep. Self-resetting like
// AllreduceOp.
type AlltoallOp struct {
	pc    int8
	Bytes float64
	base  int
	step  int
	wait  waitSeqOp
}

// AlltoallStep drives an armed AlltoallOp: all n-1 sends are posted
// eagerly on first entry, then the step waits are drained in order.
func (r *Rank) AlltoallStep(aop *AlltoallOp, p *des.Proc) bool {
	n := r.w.Size()
	if aop.pc == 0 {
		if n == 1 {
			return true
		}
		aop.base = r.a2aOps * (n - 1)
		r.a2aOps++
		for step := 1; step < n; step++ {
			r.isend((r.id+step)%n, aop.Bytes, TagAll2All, aop.base+step-1)
		}
		aop.step = 1
		aop.pc = 1
	}
	for aop.step < n {
		if aop.pc == 1 {
			aop.wait = waitSeqOp{tag: TagAll2All, seq: aop.base + aop.step - 1}
			aop.pc = 2
		}
		if !r.waitSeqStep(&aop.wait, p) {
			return false
		}
		aop.step++
		aop.pc = 1
	}
	aop.pc = 0
	return true
}
