// Package mpi implements a message-passing runtime in simulated time: one
// rank per node, eager non-blocking sends routed through the shared switch
// (internal/simnet), cumulative-count receives, a recursive-doubling
// allreduce and a small-message barrier. It is the substrate standing in
// for the MPI-over-TCP stack of the paper's clusters.
//
// The runtime doubles as the paper's mpiP profiler: every rank's message
// count and volume are accounted, so the workload characterisation can
// extract the communication parameters η (messages per process) and ν
// (bytes per message) without instrumenting programs.
package mpi

import (
	"fmt"
	"math"

	"hybridperf/internal/des"
	"hybridperf/internal/node"
	"hybridperf/internal/simnet"
)

// Tag separates message classes so that cumulative-count matching of halo
// traffic can never be confused by collective traffic racing ahead.
type Tag int

const (
	TagHalo    Tag = iota // point-to-point halo exchange
	TagReduce             // allreduce / barrier rounds
	TagAll2All            // all-to-all exchange steps
	numTags
)

// World is an MPI communicator spanning one rank per node.
type World struct {
	k       *des.Kernel
	net     simnet.Network
	ranks   []*Rank
	msgPool []*message // free list of in-flight message records
}

// Rank is one logical MPI process, pinned to its node's core 0 (the master
// thread performs all communication, the common hybrid-program structure).
type Rank struct {
	w    *World
	id   int
	node *node.Node

	received  [numTags]int
	cond      [numTags]des.Cond
	reduceOps int              // completed Allreduce/Barrier operations
	a2aOps    int              // completed Alltoall operations
	seqRecv   [numTags][]int32 // per-round receipt counts, indexed by sequence

	// mpiP-style accounting.
	sentMsgs  int
	sentBytes float64
	waitTime  float64
}

// NewWorld creates a communicator over the given nodes (rank i ↔ nodes[i]).
func NewWorld(k *des.Kernel, net simnet.Network, nodes []*node.Node) *World {
	w := &World{k: k, net: net}
	for i, nd := range nodes {
		w.ranks = append(w.ranks, &Rank{w: w, id: i, node: nd})
	}
	return w
}

// seqGot reports whether the collective round seq has been received.
func (r *Rank) seqGot(tag Tag, seq int) bool {
	s := r.seqRecv[tag]
	return seq < len(s) && s[seq] > 0
}

// seqMark records receipt of collective round seq. Sequence numbers grow
// monotonically with completed operations, so a flat slice replaces the
// per-message map churn of a map[int]int at a few bytes per round.
func (r *Rank) seqMark(tag Tag, seq int) {
	s := r.seqRecv[tag]
	for len(s) <= seq {
		s = append(s, 0)
	}
	s[seq]++
	r.seqRecv[tag] = s
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i's handle.
func (w *World) Rank(i int) *Rank { return w.ranks[i] }

// ID returns the rank's index in the world.
func (r *Rank) ID() int { return r.id }

// Node returns the node this rank runs on.
func (r *Rank) Node() *node.Node { return r.node }

// World returns the communicator the rank belongs to.
func (r *Rank) World() *World { return r.w }

// Isend posts a non-blocking send of `bytes` to rank `to`. The message
// queues at the switch (FCFS single server) and is delivered to the
// destination's cumulative receive count for the tag. The sender's NIC is
// active until the transfer completes; the sending process does not block.
func (r *Rank) Isend(to int, bytes float64, tag Tag) { r.isend(to, bytes, tag, -1) }

// isend is Isend with an optional collective-round sequence number
// (seq >= 0) that the destination can match on exactly.
func (r *Rank) isend(to int, bytes float64, tag Tag, seq int) {
	if to < 0 || to >= len(r.w.ranks) {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d (world size %d)", to, r.w.Size()))
	}
	r.sentMsgs++
	r.sentBytes += bytes
	if m := r.w.k.Metrics(); m != nil {
		m.Messages.Inc()
		m.MsgBytes.Observe(uint64(bytes))
	}
	if to == r.id {
		// Self-delivery is immediate: shared memory, no switch transit.
		r.deliver(tag, seq)
		return
	}
	r.node.NetRef(1)
	m := r.w.newMessage()
	m.src, m.dst, m.bytes, m.tag, m.seq = r, r.w.ranks[to], bytes, tag, seq
	if r.w.k.Sequential() {
		m.op.Set(r.id, to, bytes)
		r.w.k.GoSeq("mpi.msg", m)
		return
	}
	r.w.k.Go("mpi.msg", courier, m)
}

// message is the in-flight state of one eager send, drawn from the world's
// free list so steady-state traffic allocates nothing. On the sequential
// engine the record doubles as the courier Machine, carrying its transfer
// continuation in op (see seq.go).
type message struct {
	src, dst *Rank
	bytes    float64
	tag      Tag
	seq      int
	op       simnet.TransferOp
}

// courier drives one message through the network on a pooled kernel
// process: transfer, drop the sender's NIC reference, deliver, recycle.
func courier(mp *des.Proc, ctx any) {
	m := ctx.(*message)
	w := m.src.w
	w.net.Transfer(mp, m.src.id, m.dst.id, m.bytes)
	m.src.node.NetRef(-1)
	dst, tag, seq := m.dst, m.tag, m.seq
	w.freeMessage(m)
	dst.deliver(tag, seq)
}

// newMessage takes a message from the free list (or allocates the first
// few). Simulated processes run one at a time, so no locking is needed.
func (w *World) newMessage() *message {
	if n := len(w.msgPool); n > 0 {
		m := w.msgPool[n-1]
		w.msgPool = w.msgPool[:n-1]
		return m
	}
	return &message{}
}

// freeMessage returns a delivered message to the free list.
func (w *World) freeMessage(m *message) {
	*m = message{}
	w.msgPool = append(w.msgPool, m)
}

// deliver records a message arrival and wakes waiters.
func (r *Rank) deliver(tag Tag, seq int) {
	r.received[tag]++
	if seq >= 0 {
		r.seqMark(tag, seq)
	}
	r.cond[tag].Broadcast()
}

// WaitCount blocks the rank's master process p until the cumulative number
// of messages received with the given tag reaches target. Blocked time is
// accounted as network wait on core 0 and keeps the NIC active.
func (r *Rank) WaitCount(p *des.Proc, tag Tag, target int) {
	if r.received[tag] >= target {
		return
	}
	start := p.Now()
	r.node.NetRef(1)
	ws := r.node.NetWaitBegin(0)
	for r.received[tag] < target {
		r.cond[tag].Wait(p)
	}
	r.node.NetWaitEnd(0, ws)
	r.node.NetRef(-1)
	r.waitTime += p.Now() - start
}

// Received reports the cumulative receive count for a tag.
func (r *Rank) Received(tag Tag) int { return r.received[tag] }

// ReduceRounds returns the number of communication rounds (and thus
// messages per rank) of an allreduce over n ranks: ceil(log2 n).
func ReduceRounds(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// Allreduce performs a ring-hypercube allreduce of `bytes` per message:
// ceil(log2 n) rounds in which every rank sends to (id+2^k) mod n and
// waits for one message — a permutation each round, so it cannot deadlock
// for any world size. p must be the calling rank's master process.
//
// Each round is matched exactly by a sequence number (operation x round):
// the round-k wait is satisfied only by the round-k message from
// (id-2^k) mod n, which that rank sends only after completing its own
// round k-1 — the dissemination-barrier dependency chain that makes the
// operation a true global synchronisation for any world size. Every rank
// must execute the same collective sequence (SPMD), as in MPI.
func (r *Rank) Allreduce(p *des.Proc, bytes float64) {
	n := r.w.Size()
	if n == 1 {
		return
	}
	rounds := ReduceRounds(n)
	op := r.reduceOps
	r.reduceOps++
	for k := 0; k < rounds; k++ {
		partner := (r.id + (1 << k)) % n
		seq := op*rounds + k
		r.isend(partner, bytes, TagReduce, seq)
		r.waitSeq(p, TagReduce, seq)
	}
}

// waitSeq blocks until one message with the given collective sequence
// number has arrived on the tag, with the same NIC/idle accounting as
// WaitCount.
func (r *Rank) waitSeq(p *des.Proc, tag Tag, seq int) {
	if r.seqGot(tag, seq) {
		return
	}
	start := p.Now()
	r.node.NetRef(1)
	ws := r.node.NetWaitBegin(0)
	for !r.seqGot(tag, seq) {
		r.cond[tag].Wait(p)
	}
	r.node.NetWaitEnd(0, ws)
	r.node.NetRef(-1)
	r.waitTime += p.Now() - start
}

// Barrier synchronises all ranks using an 8-byte allreduce, which is how
// MPI_Barrier costs out on an Ethernet cluster (latency-bound rounds).
func (r *Rank) Barrier(p *des.Proc) { r.Allreduce(p, 8) }

// Alltoall performs a personalised all-to-all exchange: every rank sends
// `bytes` to each of the other n-1 ranks and waits for the n-1 messages
// addressed to it, using a rotation schedule (step k sends to (id+k) mod
// n, a permutation per step). Rank id's step-k receipt comes from
// (id-k) mod n and is matched exactly by an (operation, step) sequence
// number. All n-1 sends are posted eagerly before waiting, so the exchange
// pipelines through the switch. Like Allreduce it is a synchronising
// collective; every rank must call it the same number of times (SPMD).
func (r *Rank) Alltoall(p *des.Proc, bytes float64) {
	n := r.w.Size()
	if n == 1 {
		return
	}
	base := r.a2aOps * (n - 1)
	r.a2aOps++
	for step := 1; step < n; step++ {
		dst := (r.id + step) % n
		r.isend(dst, bytes, TagAll2All, base+step-1)
	}
	for step := 1; step < n; step++ {
		r.waitSeq(p, TagAll2All, base+step-1)
	}
}

// Profile is the mpiP-style communication summary of a run.
type Profile struct {
	Ranks        int
	TotalMsgs    int     // messages sent, summed over ranks
	TotalBytes   float64 // bytes sent, summed over ranks
	MsgsPerRank  float64 // η: mean messages per process
	BytesPerMsg  float64 // ν: mean message volume [B]
	MeanWaitTime float64 // mean per-rank blocked-in-MPI time [s]
	SwitchStats  des.ResourceStats
}

// Profile extracts the communication profile accumulated so far.
func (w *World) Profile() Profile {
	p := Profile{Ranks: w.Size(), SwitchStats: w.net.Stats()}
	var wait float64
	for _, r := range w.ranks {
		p.TotalMsgs += r.sentMsgs
		p.TotalBytes += r.sentBytes
		wait += r.waitTime
	}
	if p.Ranks > 0 {
		p.MsgsPerRank = float64(p.TotalMsgs) / float64(p.Ranks)
		p.MeanWaitTime = wait / float64(p.Ranks)
	}
	if p.TotalMsgs > 0 {
		p.BytesPerMsg = p.TotalBytes / float64(p.TotalMsgs)
	}
	return p
}
