package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); got != c.want {
			t.Errorf("Mean(%v) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 2, 2}); got != 0 {
		t.Errorf("StdDev of constants = %g", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Errorf("StdDev of singleton = %g", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty Min/Max should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("P%g = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

// Property: any percentile lies within [min, max] of the sample.
func TestPercentileBoundsProperty(t *testing.T) {
	f := func(raw []float64, pRaw uint8) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p := float64(pRaw) / 255 * 100
		v := Percentile(xs, p)
		return v >= Min(xs)-1e-9 && v <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: the mean lies within [min, max].
func TestMeanBoundsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && math.Abs(v) < 1e100 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-6 && m <= Max(xs)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRelErr(t *testing.T) {
	if got := RelErr(110, 100); math.Abs(got-10) > 1e-12 {
		t.Errorf("RelErr(110,100) = %g, want 10", got)
	}
	if got := RelErr(90, 100); math.Abs(got-10) > 1e-12 {
		t.Errorf("RelErr(90,100) = %g, want 10", got)
	}
	if got := RelErr(0, 0); got != 0 {
		t.Errorf("RelErr(0,0) = %g, want 0", got)
	}
	if got := RelErr(1, 0); !math.IsInf(got, 1) {
		t.Errorf("RelErr(1,0) = %g, want +Inf", got)
	}
	if got := RelErr(-110, -100); math.Abs(got-10) > 1e-12 {
		t.Errorf("RelErr(-110,-100) = %g, want 10", got)
	}
}

func TestSummarizeErrors(t *testing.T) {
	pred := []float64{110, 95, 100}
	meas := []float64{100, 100, 100}
	s := SummarizeErrors(pred, meas)
	if s.N != 3 {
		t.Fatalf("N = %d", s.N)
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", s.Mean)
	}
	if math.Abs(s.Max-10) > 1e-12 {
		t.Fatalf("Max = %g, want 10", s.Max)
	}
}

func TestSummarizeErrorsMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	SummarizeErrors([]float64{1}, []float64{1, 2})
}
