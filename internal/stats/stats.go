// Package stats provides the small statistical toolkit the validation and
// experiment harnesses need: means, deviations, percentiles and the
// relative-error summaries reported in the paper's Table 2.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs (0 for fewer than
// two samples).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the smallest element (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between closest ranks. Empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return ys[lo]
	}
	frac := rank - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// RelErr returns |predicted-measured| / measured as a percentage.
// A zero measurement yields 0 if predicted is also 0, else +Inf.
func RelErr(predicted, measured float64) float64 {
	if measured == 0 {
		if predicted == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(predicted-measured) / math.Abs(measured) * 100
}

// ErrorSummary aggregates relative errors the way the paper's Table 2 does:
// mean and standard deviation of the per-configuration percentage error.
type ErrorSummary struct {
	N      int
	Mean   float64 // mean |error| [%]
	StdDev float64 // std dev of |error| [%]
	Max    float64 // worst-case |error| [%]
}

// SummarizeErrors computes an ErrorSummary over paired predictions and
// measurements. The two slices must have equal length.
func SummarizeErrors(predicted, measured []float64) ErrorSummary {
	if len(predicted) != len(measured) {
		panic("stats: SummarizeErrors length mismatch")
	}
	errs := make([]float64, 0, len(predicted))
	for i := range predicted {
		errs = append(errs, RelErr(predicted[i], measured[i]))
	}
	return ErrorSummary{
		N:      len(errs),
		Mean:   Mean(errs),
		StdDev: StdDev(errs),
		Max:    Max(errs),
	}
}
