package experiments

import (
	"context"
	"fmt"
	"strings"

	"hybridperf/internal/machine"
	"hybridperf/internal/pareto"
	"hybridperf/internal/stats"
	"hybridperf/internal/textplot"
	"hybridperf/internal/workload"
)

// series holds paired measured/predicted values for a configuration list.
type series struct {
	cfgs             []machine.Config
	measT, predT     []float64
	measE, predE     []float64
	measUCR, predUCR []float64
}

// validate runs the model and the simulator over cfgs for one program.
func (r *Runner) validate(prof *machine.Profile, spec *workload.Spec, cfgs []machine.Config) (*series, error) {
	_, model, err := r.characterization(prof, spec)
	if err != nil {
		return nil, err
	}
	class := r.validationClass()
	results, err := r.measure(prof, spec, class, cfgs)
	if err != nil {
		return nil, err
	}
	S := r.iterations(spec)
	points, err := pareto.EvaluateParallel(context.Background(), model, cfgs, S, r.cfg.Workers)
	if err != nil {
		return nil, err
	}
	s := &series{cfgs: cfgs}
	for i, cfg := range cfgs {
		pred := points[i].Pred
		meas := results[i]
		s.measT = append(s.measT, meas.Time)
		s.predT = append(s.predT, pred.T)
		s.measE = append(s.measE, meas.MeasuredEnergy)
		s.predE = append(s.predE, pred.E)
		tot := meas.Totals
		busy := tot.WorkCycles + tot.BStallCycles
		denom := meas.Time * float64(cfg.Nodes*cfg.Cores) * cfg.Freq
		mu := 0.0
		if denom > 0 {
			mu = busy / denom
		}
		s.measUCR = append(s.measUCR, mu)
		s.predUCR = append(s.predUCR, pred.UCR)
	}
	return s, nil
}

// validationGrid returns the paper's full validation configuration space
// for a system: n in {1,2,4,8} x all core counts x all DVFS levels (96
// configurations on Xeon, 80 on ARM), or a reduced grid in fast mode.
func (r *Runner) validationGrid(prof *machine.Profile) []machine.Config {
	nodes := []int{1, 2, 4, 8}
	cores := make([]int, 0, prof.CoresPerNode)
	for c := 1; c <= prof.CoresPerNode; c++ {
		cores = append(cores, c)
	}
	freqs := prof.Frequencies
	if r.cfg.Fast {
		nodes = []int{1, 2}
		cores = []int{1, prof.CoresPerNode}
		freqs = []float64{prof.FMin(), prof.FMax()}
	}
	var cfgs []machine.Config
	for _, n := range nodes {
		for _, c := range cores {
			for _, f := range freqs {
				cfgs = append(cfgs, machine.Config{Nodes: n, Cores: c, Freq: f})
			}
		}
	}
	return cfgs
}

// figureGrid returns the (n,c) panel grid of Figures 5 and 6 at fmax.
func (r *Runner) figureGrid(prof *machine.Profile) []machine.Config {
	nodes := []int{2, 4, 8}
	var cores []int
	switch prof.CoresPerNode {
	case 8:
		cores = []int{1, 4, 8}
	default:
		cores = []int{1, prof.CoresPerNode / 2, prof.CoresPerNode}
	}
	if r.cfg.Fast {
		nodes = []int{2}
	}
	var cfgs []machine.Config
	for _, n := range nodes {
		for _, c := range cores {
			cfgs = append(cfgs, machine.Config{Nodes: n, Cores: c, Freq: prof.FMax()})
		}
	}
	return cfgs
}

// renderValidation renders one measured-vs-predicted panel.
func renderValidation(title, unit string, cfgs []machine.Config, meas, pred []float64) string {
	labels := make([]string, len(cfgs))
	for i, c := range cfgs {
		labels[i] = fmt.Sprintf("(%d,%d)", c.Nodes, c.Cores)
	}
	values := map[string][]float64{"Measured": meas, "Predicted": pred}
	errs := stats.SummarizeErrors(pred, meas)
	return textplot.BarGroup(title, unit, labels, []string{"Measured", "Predicted"}, values, 44) +
		fmt.Sprintf("mean |error| = %.1f%% (std %.1f%%, max %.1f%%)\n", errs.Mean, errs.StdDev, errs.Max)
}

// validationFigure builds a Fig-5/6 style artifact for the given panels.
func (r *Runner) validationFigure(id, title, quantity string, panels []struct {
	prof *machine.Profile
	spec *workload.Spec
}) (*Artifact, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: measured (simulated cluster) vs model-predicted, fmax\n\n", title)
	for _, p := range panels {
		cfgs := r.figureGrid(p.prof)
		s, err := r.validate(p.prof, p.spec, cfgs)
		if err != nil {
			return nil, err
		}
		var meas, pred []float64
		unit := "s"
		if quantity == "energy" {
			unit = "kJ"
			for i := range s.measE {
				meas = append(meas, s.measE[i]/1e3)
				pred = append(pred, s.predE[i]/1e3)
			}
		} else {
			meas, pred = s.measT, s.predT
		}
		b.WriteString(renderValidation(
			fmt.Sprintf("%s — %s", p.prof.Name, p.spec.Name), unit, cfgs, meas, pred))
		b.WriteString("\n")
	}
	return &Artifact{ID: id, Title: title, Text: b.String()}, nil
}

// Fig5 regenerates the execution-time validation panels (worst-case
// programs per cluster, as the paper plots: BT and SP on Xeon, LB and CP
// on ARM).
func (r *Runner) Fig5() (*Artifact, error) {
	return r.validationFigure("fig5", "Figure 5: Execution time validation", "time",
		[]struct {
			prof *machine.Profile
			spec *workload.Spec
		}{
			{machine.XeonE5(), workload.BT()},
			{machine.XeonE5(), workload.SP()},
			{machine.ARMCortexA9(), workload.LB()},
			{machine.ARMCortexA9(), workload.CP()},
		})
}

// Fig6 regenerates the energy validation panels (LB and BT on Xeon, LB
// and CP on ARM).
func (r *Runner) Fig6() (*Artifact, error) {
	return r.validationFigure("fig6", "Figure 6: Energy validation", "energy",
		[]struct {
			prof *machine.Profile
			spec *workload.Spec
		}{
			{machine.XeonE5(), workload.LB()},
			{machine.XeonE5(), workload.BT()},
			{machine.ARMCortexA9(), workload.LB()},
			{machine.ARMCortexA9(), workload.CP()},
		})
}

// Fig7 regenerates the scale-out validation: LU with the class C input
// (4x the validation class, 16x the baseline) across 16 Xeon (n,c)
// configurations at fmax, for both execution time and energy.
func (r *Runner) Fig7() (*Artifact, error) {
	prof := machine.XeonE5()
	spec := workload.LU()
	_, model, err := r.characterization(prof, spec)
	if err != nil {
		return nil, err
	}
	class := workload.ClassC
	if r.cfg.Fast {
		class = workload.ClassA
	}
	S, err := spec.Iterations(class)
	if err != nil {
		return nil, err
	}
	nodes := []int{1, 2, 4, 8}
	cores := []int{1, 2, 4, 8}
	if r.cfg.Fast {
		nodes = []int{1, 2}
		cores = []int{1, 8}
	}
	var cfgs []machine.Config
	for _, n := range nodes {
		for _, c := range cores {
			cfgs = append(cfgs, machine.Config{Nodes: n, Cores: c, Freq: prof.FMax()})
		}
	}
	results, err := r.measure(prof, spec, class, cfgs)
	if err != nil {
		return nil, err
	}
	points, err := pareto.EvaluateParallel(context.Background(), model, cfgs, S, r.cfg.Workers)
	if err != nil {
		return nil, err
	}
	var measT, predT, measE, predE []float64
	for i := range cfgs {
		pred := points[i].Pred
		measT = append(measT, results[i].Time)
		predT = append(predT, pred.T)
		measE = append(measE, results[i].MeasuredEnergy/1e3)
		predE = append(predE, pred.E/1e3)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: Scale-out program LU, class %s input (%d iterations), %s at fmax\n\n", class, S, prof.Name)
	b.WriteString(renderValidation("Execution time", "s", cfgs, measT, predT))
	b.WriteString("\n")
	b.WriteString(renderValidation("Energy", "kJ", cfgs, measE, predE))
	return &Artifact{ID: "fig7", Title: "Figure 7: Scale-out program LU", Text: b.String()}, nil
}

// Table2 regenerates the cluster validation summary: mean and standard
// deviation of the execution-time and energy prediction error over the
// full validation grid, per program and per system.
func (r *Runner) Table2() (*Artifact, error) {
	systems := []*machine.Profile{machine.XeonE5(), machine.ARMCortexA9()}
	var rows [][]string
	var worst float64
	counts := make(map[string]int)
	for _, spec := range workload.Programs() {
		row := []string{spec.Domain, spec.Suite, spec.Name}
		summaries := make([]stats.ErrorSummary, 0, 4)
		for _, quantity := range []string{"time", "energy"} {
			for _, prof := range systems {
				s, err := r.validate(prof, spec, r.validationGrid(prof))
				if err != nil {
					return nil, err
				}
				var es stats.ErrorSummary
				if quantity == "time" {
					es = stats.SummarizeErrors(s.predT, s.measT)
				} else {
					es = stats.SummarizeErrors(s.predE, s.measE)
				}
				summaries = append(summaries, es)
				counts[prof.Name] = es.N
			}
		}
		for _, es := range summaries {
			row = append(row, fmt.Sprintf("%.0f", es.Mean), fmt.Sprintf("%.0f", es.StdDev))
			if es.Mean > worst {
				worst = es.Mean
			}
		}
		rows = append(rows, row)
	}
	headers := []string{"Domain", "Suite", "Prog",
		"T-Xeon mean%", "std", "T-ARM mean%", "std",
		"E-Xeon mean%", "std", "E-ARM mean%", "std"}
	var b strings.Builder
	fmt.Fprintf(&b, "Cluster validation results over the full configuration grid\n")
	fmt.Fprintf(&b, "(%d Xeon + %d ARM configurations per program; paper: 96 Xeon, 80 ARM)\n\n",
		counts[machine.XeonE5().Name], counts[machine.ARMCortexA9().Name])
	b.WriteString(textplot.Table(headers, rows))
	fmt.Fprintf(&b, "\nWorst per-cell mean error: %.1f%% (paper reports all cells <= 15%%)\n", worst)
	return &Artifact{ID: "table2", Title: "Table 2: Cluster validation results", Text: b.String()}, nil
}
