package experiments

import (
	"strings"
	"testing"

	"hybridperf/internal/machine"
	"hybridperf/internal/pareto"
	"hybridperf/internal/workload"
)

// fastRunner is shared across tests in this package: artifacts cache their
// characterisations, so reuse is cheap and keeps the suite quick.
var fastRunner = NewRunner(Config{Fast: true, Seed: 7, Workers: 8})

func TestIDsRoundTrip(t *testing.T) {
	for _, id := range IDs() {
		a, err := fastRunner.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.ID != id {
			t.Errorf("artifact id %q for request %q", a.ID, id)
		}
		if a.Title == "" || a.Text == "" {
			t.Errorf("%s: empty artifact", id)
		}
	}
	if _, err := fastRunner.ByID("fig99"); err == nil {
		t.Error("unknown artifact id accepted")
	}
}

func TestAllReturnsEverything(t *testing.T) {
	arts, err := fastRunner.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != len(IDs()) {
		t.Fatalf("All() returned %d artifacts, want %d", len(arts), len(IDs()))
	}
}

func TestFig3Peak(t *testing.T) {
	a, err := fastRunner.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "90.0 Mbps") {
		t.Fatalf("Figure 3 lost the ~90 Mbps peak:\n%s", a.Text)
	}
	if !strings.Contains(a.Text, "Throughput [Mbps]") {
		t.Fatal("Figure 3 missing throughput column")
	}
}

func TestTable3ListsBothSystems(t *testing.T) {
	a, err := fastRunner.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"xeon-e5-2603", "arm-cortex-a9", "x86_64", "armv7-a", "1000 Mbps", "100 Mbps"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("Table 3 missing %q", want)
		}
	}
}

func TestValidationFiguresReportErrors(t *testing.T) {
	for _, id := range []string{"fig5", "fig6", "fig7"} {
		a, err := fastRunner.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(a.Text, "Measured") || !strings.Contains(a.Text, "Predicted") {
			t.Errorf("%s missing measured/predicted series", id)
		}
		if !strings.Contains(a.Text, "mean |error|") {
			t.Errorf("%s missing error summary", id)
		}
	}
}

func TestTable2HasAllPrograms(t *testing.T) {
	a, err := fastRunner.Table2()
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range workload.Programs() {
		if !strings.Contains(a.Text, spec.Suite) {
			t.Errorf("Table 2 missing suite %q", spec.Suite)
		}
	}
	for _, want := range []string{"LU", "SP", "BT", "CP", "LB", "T-Xeon", "E-ARM"} {
		if !strings.Contains(a.Text, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestParetoFiguresShowFrontier(t *testing.T) {
	for _, id := range []string{"fig8", "fig9"} {
		a, err := fastRunner.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(a.Text, "Pareto-optimal configurations") {
			t.Errorf("%s missing frontier table", id)
		}
		if !strings.Contains(a.Text, "UCR upper bound") {
			t.Errorf("%s missing the UCR bound", id)
		}
	}
}

func TestUCRFiguresCoverPrograms(t *testing.T) {
	for _, id := range []string{"fig10", "fig11"} {
		a, err := fastRunner.ByID(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, prog := range []string{"LU", "SP", "BT", "CP", "LB"} {
			if !strings.Contains(a.Text, prog+" UCR") {
				t.Errorf("%s missing %s UCR column", id, prog)
			}
		}
	}
}

func TestWhatIfImprovesConfiguration(t *testing.T) {
	a, err := fastRunner.WhatIf()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(a.Text, "2x memory bandwidth") {
		t.Fatal("what-if missing the scaled scenario")
	}
	// Deltas must be negative (time and energy drop).
	if !strings.Contains(a.Text, "time -") || !strings.Contains(a.Text, "energy -") {
		t.Fatalf("what-if did not improve time/energy:\n%s", a.Text)
	}
}

// The Sec. V.A insight tests (experiment E12 in DESIGN.md) run on the
// real model rather than rendered text.

// insightPoints evaluates the ARM CP space of Figure 9 (reduced in fast
// mode) and returns all points plus the frontier.
func insightPoints(t *testing.T) ([]pareto.Point, []pareto.Point) {
	t.Helper()
	prof := machine.ARMCortexA9()
	_, model, err := fastRunner.characterization(prof, workload.CP())
	if err != nil {
		t.Fatal(err)
	}
	cfgs := pareto.Space(pareto.Range(1, 8), prof.CoresPerNode, prof.Frequencies)
	S := fastRunner.iterations(workload.CP())
	points, err := pareto.Evaluate(model, cfgs, S)
	if err != nil {
		t.Fatal(err)
	}
	return points, pareto.Frontier(points)
}

func TestParetoInsightFrontierExists(t *testing.T) {
	points, front := insightPoints(t)
	if len(front) < 3 {
		t.Fatalf("frontier has %d points over %d configurations", len(front), len(points))
	}
	if len(front) >= len(points) {
		t.Fatal("frontier degenerate: every configuration is optimal")
	}
}

func TestParetoInsightRelaxedDeadlineFewerNodesLessEnergy(t *testing.T) {
	_, front := insightPoints(t)
	// Walking the frontier from tight to relaxed deadlines, node count
	// must trend down while energy strictly decreases (Sec. V.A insight 1).
	first, last := front[0], front[len(front)-1]
	if last.Cfg.Nodes >= first.Cfg.Nodes {
		t.Fatalf("relaxed end uses %d nodes, tight end %d — expected fewer", last.Cfg.Nodes, first.Cfg.Nodes)
	}
	if last.Pred.E >= first.Pred.E {
		t.Fatalf("relaxed end energy %g >= tight end %g", last.Pred.E, first.Pred.E)
	}
}

func TestParetoInsightUCRRisesAlongFrontier(t *testing.T) {
	_, front := insightPoints(t)
	// The paper: decreasing node count reduces contention, raising UCR.
	if front[len(front)-1].Pred.UCR <= front[0].Pred.UCR {
		t.Fatalf("UCR at relaxed end %.2f not above tight end %.2f",
			front[len(front)-1].Pred.UCR, front[0].Pred.UCR)
	}
}

func TestParetoInsightFrontierUCRBelowBound(t *testing.T) {
	prof := machine.ARMCortexA9()
	_, model, err := fastRunner.characterization(prof, workload.CP())
	if err != nil {
		t.Fatal(err)
	}
	S := fastRunner.iterations(workload.CP())
	bound, err := model.Predict(machine.Config{Nodes: 1, Cores: 1, Freq: prof.FMin()}, S)
	if err != nil {
		t.Fatal(err)
	}
	_, front := insightPoints(t)
	for _, p := range front {
		if p.Pred.UCR > bound.UCR+1e-9 {
			t.Fatalf("frontier point %v UCR %.3f exceeds the (1,1,fmin) bound %.3f",
				p.Cfg, p.Pred.UCR, bound.UCR)
		}
	}
}

func TestMeasureCacheConsistency(t *testing.T) {
	prof := machine.XeonE5()
	spec := workload.SP()
	cfgs := []machine.Config{{Nodes: 2, Cores: 2, Freq: prof.FMax()}}
	a, err := fastRunner.measure(prof, spec, workload.ClassS, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fastRunner.measure(prof, spec, workload.ClassS, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Fatal("cache returned a different result object")
	}
}
