// Package experiments regenerates every table and figure of the paper's
// evaluation (Sec. IV-V) against this repository's simulated clusters:
// network characterisation (Fig 3), time/energy validation (Figs 5-7,
// Table 2), system parameters (Table 3), Pareto frontiers (Figs 8-9), UCR
// analyses (Figs 10-11) and the Sec. V.B memory-bandwidth what-if — plus
// two extension artifacts: runtime DVFS composed with static
// configurations ("dvfs") and the interconnect-topology ablation
// ("topology").
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"hybridperf/internal/characterize"
	"hybridperf/internal/core"
	"hybridperf/internal/exec"
	"hybridperf/internal/machine"
	"hybridperf/internal/metrics"
	"hybridperf/internal/workload"
)

// Config controls an experiment run.
type Config struct {
	Seed    int64
	Workers int  // simulation parallelism (default: GOMAXPROCS)
	Fast    bool // reduced grids and input class, for tests
	// Metrics instruments every simulation the runner launches; the
	// aggregate engine counters are available from Runner.Metrics.
	Metrics bool
}

func (c *Config) fill() {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Seed == 0 {
		c.Seed = 20150525 // IPDPS 2015 conference date
	}
}

// Artifact is one regenerated table or figure.
type Artifact struct {
	ID    string // e.g. "fig8", "table2"
	Title string
	Text  string // rendered content
}

// Runner caches characterisations and measurement runs across artifacts.
type Runner struct {
	cfg Config

	mu     sync.Mutex
	chars  map[string]*charEntry
	runs   map[runKey]*exec.Result
	mx     metrics.EngineSnapshot // summed over instrumented simulations
	mxRuns int
}

type charEntry struct {
	sum   *characterize.Summary
	model *core.Model
}

type runKey struct {
	system  string
	program string
	class   workload.Class
	cfg     machine.Config
}

// NewRunner creates a runner for the given configuration.
func NewRunner(cfg Config) *Runner {
	cfg.fill()
	return &Runner{
		cfg:   cfg,
		chars: make(map[string]*charEntry),
		runs:  make(map[runKey]*exec.Result),
	}
}

// validationClass returns the input class used for "measured" validation
// runs: the paper's larger input, reduced in fast mode.
func (r *Runner) validationClass() workload.Class {
	if r.cfg.Fast {
		return workload.ClassS
	}
	return workload.ClassA
}

// characterization returns the (cached) model inputs for one program on
// one system.
func (r *Runner) characterization(prof *machine.Profile, spec *workload.Spec) (*characterize.Summary, *core.Model, error) {
	key := prof.Name + "/" + spec.Name
	r.mu.Lock()
	e, ok := r.chars[key]
	r.mu.Unlock()
	if ok {
		return e.sum, e.model, nil
	}
	sum, err := characterize.Run(prof, spec, characterize.Options{
		Seed:    r.cfg.Seed,
		Workers: r.cfg.Workers,
		Metrics: r.cfg.Metrics,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: characterize %s on %s: %w", spec.Name, prof.Name, err)
	}
	model, err := core.New(sum.Inputs, nil)
	if err != nil {
		return nil, nil, err
	}
	r.mu.Lock()
	if _, dup := r.chars[key]; !dup {
		r.mx.Add(sum.Metrics)
		r.mxRuns += sum.MetricsRuns
	}
	r.chars[key] = &charEntry{sum: sum, model: model}
	r.mu.Unlock()
	return sum, model, nil
}

// measure runs (or returns the cached) simulated measurement for the given
// configurations, in order.
func (r *Runner) measure(prof *machine.Profile, spec *workload.Spec, class workload.Class, cfgs []machine.Config) ([]*exec.Result, error) {
	out := make([]*exec.Result, len(cfgs))
	var missing []int
	var reqs []exec.Request
	r.mu.Lock()
	for i, cfg := range cfgs {
		key := runKey{prof.Name, spec.Name, class, cfg}
		if res, ok := r.runs[key]; ok {
			out[i] = res
			continue
		}
		missing = append(missing, i)
		reqs = append(reqs, exec.Request{
			Prof:    prof,
			Spec:    spec,
			Class:   class,
			Cfg:     cfg,
			Seed:    r.cfg.Seed + measureSeed(key),
			Metrics: r.cfg.Metrics,
		})
	}
	r.mu.Unlock()
	if len(reqs) > 0 {
		results, err := exec.Sweep(reqs, r.cfg.Workers)
		if err != nil {
			return nil, err
		}
		r.mu.Lock()
		for j, i := range missing {
			out[i] = results[j]
			key := runKey{prof.Name, spec.Name, class, cfgs[i]}
			if _, dup := r.runs[key]; !dup && results[j].Metrics != nil {
				// Aggregate at cache-insert time so a run contributes
				// once however many artifacts reuse it.
				r.mx.Add(results[j].Metrics.Engine)
				r.mxRuns++
			}
			r.runs[key] = results[j]
		}
		r.mu.Unlock()
	}
	return out, nil
}

// Metrics returns the summed engine-counter snapshot over every distinct
// instrumented simulation the runner has launched so far, and how many
// contributed. Zero unless Config.Metrics is set.
func (r *Runner) Metrics() (metrics.EngineSnapshot, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.mx, r.mxRuns
}

// measureSeed derives a stable per-run seed offset from the run key so
// measured runs differ from characterisation runs and from each other.
func measureSeed(k runKey) int64 {
	h := int64(1469598103934665603)
	for _, s := range []string{k.system, k.program, string(k.class), k.cfg.String()} {
		for _, b := range []byte(s) {
			h ^= int64(b)
			h *= 1099511628211
		}
	}
	if h < 0 {
		h = -h
	}
	return h % 1000003
}

// iterations returns S for a program at the validation class.
func (r *Runner) iterations(spec *workload.Spec) int {
	s, err := spec.Iterations(r.validationClass())
	if err != nil {
		panic(err) // classes are internal constants; cannot fail
	}
	return s
}

// All regenerates every artifact in paper order.
func (r *Runner) All() ([]*Artifact, error) {
	var out []*Artifact
	for _, id := range IDs() {
		a, err := r.ByID(id)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// IDs lists the artifact identifiers in paper order.
func IDs() []string {
	return []string{
		"fig3", "table3", "fig5", "fig6", "fig7", "table2",
		"fig8", "fig9", "fig10", "fig11", "whatif", "dvfs", "topology",
	}
}

// ByID regenerates one artifact.
func (r *Runner) ByID(id string) (*Artifact, error) {
	switch id {
	case "fig3":
		return r.Fig3()
	case "table3":
		return r.Table3()
	case "fig5":
		return r.Fig5()
	case "fig6":
		return r.Fig6()
	case "fig7":
		return r.Fig7()
	case "table2":
		return r.Table2()
	case "fig8":
		return r.Fig8()
	case "fig9":
		return r.Fig9()
	case "fig10":
		return r.Fig10()
	case "fig11":
		return r.Fig11()
	case "whatif":
		return r.WhatIf()
	case "dvfs":
		return r.DVFSExp()
	case "topology":
		return r.TopologyExp()
	}
	ids := IDs()
	sort.Strings(ids)
	return nil, fmt.Errorf("experiments: unknown artifact %q (want one of %v)", id, ids)
}
