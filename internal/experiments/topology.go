package experiments

import (
	"fmt"
	"strings"

	"hybridperf/internal/machine"
	"hybridperf/internal/pareto"
	"hybridperf/internal/textplot"
	"hybridperf/internal/workload"
)

// TopologyExp is an extension experiment: the same Figure-8 sweep (SP on
// the Xeon cluster, up to 256 nodes) under the two interconnect models.
// The paper's Eq. (5) treats the network as one shared M/G/1 server (star
// topology), under which aggregate switch capacity eventually caps
// scale-out; a modern non-blocking crossbar contends only at ports, so
// scaling continues to much larger node counts — this artifact shows the
// Pareto frontier under both assumptions and explains why our shared-
// medium Figure 8 stops growing at a node count where the paper's
// open-loop extrapolation kept going.
func (r *Runner) TopologyExp() (*Artifact, error) {
	spec := workload.SP()
	max := 256
	if r.cfg.Fast {
		max = 32
	}
	var b strings.Builder
	b.WriteString("Interconnect-topology ablation: SP Pareto sweep under the paper's\n")
	b.WriteString("shared-medium switch vs a non-blocking crossbar (extension).\n\n")
	for _, topo := range []machine.Topology{machine.TopologyShared, machine.TopologyCrossbar} {
		prof := machine.XeonE5()
		prof.Topology = topo
		if topo != machine.TopologyShared {
			prof.Name = prof.Name + "-crossbar"
		}
		_, model, err := r.characterization(prof, spec)
		if err != nil {
			return nil, err
		}
		S := r.iterations(spec)
		cfgs := pareto.Space(pareto.PowersOfTwo(max), prof.CoresPerNode, prof.Frequencies)
		points, err := pareto.Evaluate(model, cfgs, S)
		if err != nil {
			return nil, err
		}
		front := pareto.Frontier(points)
		fmt.Fprintf(&b, "--- topology: %s (%d configurations, %d Pareto-optimal)\n\n", topo, len(points), len(front))
		var rows [][]string
		for _, p := range front {
			rows = append(rows, []string{
				p.Cfg.String(),
				fmt.Sprintf("%.2f", p.Pred.T),
				fmt.Sprintf("%.2f", p.Pred.E/1e3),
				fmt.Sprintf("%.2f", p.Pred.UCR),
				fmt.Sprintf("%.2f", p.Pred.NetRho),
			})
		}
		b.WriteString(textplot.Table([]string{"(n,c,f[GHz])", "Time[s]", "Energy[kJ]", "UCR", "NetRho"}, rows))
		b.WriteString("\n")
	}
	b.WriteString("Reading: the crossbar frontier's fast end reaches far larger node\n")
	b.WriteString("counts (per-port contention only), approaching the paper's 256-node\n")
	b.WriteString("extrapolation; the shared medium saturates in aggregate first.\n")
	return &Artifact{ID: "topology", Title: "Extension: interconnect topology ablation", Text: b.String()}, nil
}
