package experiments

import (
	"fmt"
	"strings"

	"hybridperf/internal/dvfs"
	"hybridperf/internal/exec"
	"hybridperf/internal/machine"
	"hybridperf/internal/textplot"
	"hybridperf/internal/workload"
)

// dvfsLevelsUpTo returns the profile's DVFS levels capped at the run's
// starting frequency — a governor reclaims slack below the chosen
// configuration, it does not overclock past it.
func dvfsLevelsUpTo(prof *machine.Profile, fmax float64) []float64 {
	var levels []float64
	for _, f := range prof.Frequencies {
		if f <= fmax {
			levels = append(levels, f)
		}
	}
	return levels
}

// slackGovernor builds the standard inter-node slack governor factory.
func slackGovernor(prof *machine.Profile, cfg machine.Config) func(int) dvfs.Governor {
	return func(int) dvfs.Governor {
		g, err := dvfs.NewInterNodeSlack(dvfsLevelsUpTo(prof, cfg.Freq), 0, 0)
		if err != nil {
			panic(err) // levels always include cfg.Freq itself
		}
		return g
	}
}

// DVFSExp is an extension experiment beyond the paper's evaluation. The
// paper notes (Sec. II.A) that run-time DVFS techniques exploiting
// inter-node slack are complementary to its static configuration choice.
// This artifact quantifies when that composition pays:
//
//   - Under rank imbalance, early-finishing ranks idle at synchronisation
//     points; stepping them down saves energy at unchanged makespan (the
//     premise of Kappiah et al.'s just-in-time DVFS).
//   - In balanced SPMD codes the slack is symmetric — every rank waits on
//     every other — so stepping down stretches the global critical path:
//     on nodes whose idle power dominates, that costs energy rather than
//     saving it (race-to-idle wins).
//   - Compute-bound runs show no slack and the governor stays neutral.
func (r *Runner) DVFSExp() (*Artifact, error) {
	xeon := machine.XeonE5()
	imbalanced := workload.Synthetic("stencil-imb", 8e9, 0.5, 40, 2, 300e3)
	imbalanced.Imbalance = 1.0

	type scenario struct {
		prof *machine.Profile
		spec *workload.Spec
		cfg  machine.Config
		note string
	}
	scenarios := []scenario{
		{xeon, imbalanced, machine.Config{Nodes: 8, Cores: 8, Freq: 1.8e9},
			"imbalanced ranks: real slack, governor wins"},
		{machine.ARMCortexA9(), imbalanced, machine.Config{Nodes: 8, Cores: 4, Freq: 1.4e9},
			"imbalanced on ARM: high dynamic-power share, bigger win"},
		{machine.ARMCortexA9(), workload.CP(), machine.Config{Nodes: 8, Cores: 4, Freq: 1.4e9},
			"balanced, comm-bound: symmetric slack, no win"},
		{xeon, workload.CP(), machine.Config{Nodes: 8, Cores: 8, Freq: 1.8e9},
			"balanced, comm-bound on 1 Gbps"},
		{xeon, workload.LU(), machine.Config{Nodes: 2, Cores: 8, Freq: 1.8e9},
			"compute-bound: no slack, governor neutral"},
	}
	class := r.validationClass()
	// Build the plain/governed request pairs up front and run them as one
	// concurrent sweep: each simulation owns its kernel, so the 2x5 runs
	// parallelise across the runner's worker budget without perturbing the
	// per-scenario seeds (results come back in request order).
	reqs := make([]exec.Request, 0, 2*len(scenarios))
	for i, sc := range scenarios {
		base := exec.Request{
			Prof: sc.prof, Spec: sc.spec, Class: class, Cfg: sc.cfg,
			Seed: r.cfg.Seed + int64(i)*101,
		}
		governed := base
		governed.Governor = slackGovernor(sc.prof, sc.cfg)
		reqs = append(reqs, base, governed)
	}
	results, err := exec.Sweep(reqs, r.cfg.Workers)
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for i, sc := range scenarios {
		plain, gov := results[2*i], results[2*i+1]
		rows = append(rows, []string{
			sc.prof.Name, sc.spec.Name, sc.cfg.String(),
			fmt.Sprintf("%.0f", plain.Time),
			fmt.Sprintf("%+.1f%%", (gov.Time/plain.Time-1)*100),
			fmt.Sprintf("%.2f", plain.Energy.Total()/1e3),
			fmt.Sprintf("%+.1f%%", (gov.Energy.Total()/plain.Energy.Total()-1)*100),
			sc.note,
		})
	}
	var b strings.Builder
	b.WriteString("Runtime DVFS (inter-node slack governor) composed with static\n")
	b.WriteString("configurations — extension of the paper's Sec. II.A observation.\n\n")
	b.WriteString(textplot.Table(
		[]string{"System", "Prog", "Config", "T[s]", "dT", "E[kJ]", "dE", "Regime"}, rows))
	b.WriteString("\nReading: the governor pays exactly where per-rank slack is real\n")
	b.WriteString("(imbalance), is neutral without slack, and can cost energy when the\n")
	b.WriteString("slack is symmetric and node idle power dominates (race-to-idle).\n")
	return &Artifact{ID: "dvfs", Title: "Extension: runtime DVFS on top of static configurations", Text: b.String()}, nil
}
