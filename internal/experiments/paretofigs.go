package experiments

import (
	"context"
	"fmt"
	"strings"

	"hybridperf/internal/machine"
	"hybridperf/internal/pareto"
	"hybridperf/internal/textplot"
	"hybridperf/internal/workload"
)

// paretoFigure evaluates the model over a configuration space, extracts
// the frontier and renders the scatter + frontier table of Figures 8/9.
func (r *Runner) paretoFigure(id, title string, prof *machine.Profile, spec *workload.Spec, nodes []int) (*Artifact, error) {
	_, model, err := r.characterization(prof, spec)
	if err != nil {
		return nil, err
	}
	S := r.iterations(spec)
	cfgs := pareto.Space(nodes, prof.CoresPerNode, prof.Frequencies)
	points, err := pareto.EvaluateParallel(context.Background(), model, cfgs, S, r.cfg.Workers)
	if err != nil {
		return nil, err
	}
	front := pareto.Frontier(points)

	var xys []textplot.XY
	for _, p := range points {
		xys = append(xys, textplot.XY{X: p.Pred.T, Y: p.Pred.E / 1e3})
	}
	for _, p := range front {
		xys = append(xys, textplot.XY{X: p.Pred.T, Y: p.Pred.E / 1e3, Highlight: true})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s executing %s (%d configurations)\n\n", title, prof.Name, spec.Name, len(points))
	b.WriteString(textplot.Scatter("All configurations with Pareto frontier",
		"Execution Time [s]", "Energy [kJ]", xys, 72, 22, true, false))
	b.WriteString("\nPareto-optimal configurations (min energy for any deadline >= its T):\n\n")
	var rows [][]string
	for _, p := range front {
		rows = append(rows, []string{
			p.Cfg.String(),
			fmt.Sprintf("%.1f", p.Pred.T),
			fmt.Sprintf("%.2f", p.Pred.E/1e3),
			fmt.Sprintf("%.2f", p.Pred.UCR),
			fmt.Sprintf("%.2f", p.Pred.NetRho),
		})
	}
	b.WriteString(textplot.Table([]string{"(n,c,f[GHz])", "Time[s]", "Energy[kJ]", "UCR", "NetRho"}, rows))

	// The single-node single-core fmin point bounds the achievable UCR.
	bound, err := model.Predict(machine.Config{Nodes: 1, Cores: 1, Freq: prof.FMin()}, S)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "\nUCR upper bound at (1,1,%.1f): %.2f\n", prof.FMin()/1e9, bound.UCR)
	return &Artifact{ID: id, Title: title, Text: b.String()}, nil
}

// Fig8 regenerates the Xeon SP Pareto plot: 216 configurations from
// n in {1..256 powers of two} x c in 1..8 x f in {1.2,1.5,1.8} GHz.
// Node counts beyond the 8-node testbed are model extrapolations, exactly
// as in the paper.
func (r *Runner) Fig8() (*Artifact, error) {
	max := 256
	if r.cfg.Fast {
		max = 16
	}
	return r.paretoFigure("fig8", "Figure 8: Xeon cluster executing SP program",
		machine.XeonE5(), workload.SP(), pareto.PowersOfTwo(max))
}

// Fig9 regenerates the ARM CP Pareto plot: 400 configurations from
// n in 1..20 x c in 1..4 x f in {0.2,0.5,0.8,1.1,1.4} GHz.
func (r *Runner) Fig9() (*Artifact, error) {
	hi := 20
	if r.cfg.Fast {
		hi = 6
	}
	return r.paretoFigure("fig9", "Figure 9: ARM cluster executing CP program",
		machine.ARMCortexA9(), workload.CP(), pareto.Range(1, hi))
}
