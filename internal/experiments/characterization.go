package experiments

import (
	"fmt"
	"strings"

	"hybridperf/internal/machine"
	"hybridperf/internal/textplot"
	"hybridperf/internal/workload"
)

// Fig3 regenerates the network characterisation figure: message latency
// and achieved throughput against message size on the ARM cluster's
// 100 Mbps link, where the paper observes ~90 Mbps peak due to MPI and OS
// overheads.
func (r *Runner) Fig3() (*Artifact, error) {
	prof := machine.ARMCortexA9()
	sum, _, err := r.characterization(prof, workload.LU())
	if err != nil {
		return nil, err
	}
	var rows [][]string
	for _, p := range sum.NetPipe {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", p.Bytes),
			fmt.Sprintf("%.6f", p.Latency),
			fmt.Sprintf("%.2f", p.Mbps()),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Network characterisation (%s, %.0f Mbps link)\n\n", prof.Name, prof.LinkBandwidth/1e6)
	b.WriteString(textplot.Table([]string{"Message Size [B]", "Latency [s]", "Throughput [Mbps]"}, rows))
	peak := sum.Inputs.Net.Peak * 8 / 1e6
	fmt.Fprintf(&b, "\nFitted service model: y(s) = %.1f us + s / %.2f Mbps\n", sum.Inputs.Net.Overhead*1e6, peak)
	fmt.Fprintf(&b, "Paper: maximum achievable throughput on the 100 Mbps link is ~90 Mbps.\n")
	fmt.Fprintf(&b, "Here:  peak achieved %.1f Mbps (largest message %.1f Mbps).\n",
		peak, sum.NetPipe[len(sum.NetPipe)-1].Mbps())
	return &Artifact{ID: "fig3", Title: "Figure 3: Network characterization", Text: b.String()}, nil
}

// Table3 renders the validation systems table.
func (r *Runner) Table3() (*Artifact, error) {
	profs := []*machine.Profile{machine.XeonE5(), machine.ARMCortexA9()}
	headers := []string{"System"}
	for _, p := range profs {
		headers = append(headers, p.Name)
	}
	row := func(name string, f func(*machine.Profile) string) []string {
		cells := []string{name}
		for _, p := range profs {
			cells = append(cells, f(p))
		}
		return cells
	}
	rows := [][]string{
		row("ISA", func(p *machine.Profile) string { return p.ISA }),
		row("Nodes", func(p *machine.Profile) string { return fmt.Sprintf("%d", p.MaxNodes) }),
		row("Cores/node", func(p *machine.Profile) string { return fmt.Sprintf("%d", p.CoresPerNode) }),
		row("Clock Frequency", func(p *machine.Profile) string {
			return fmt.Sprintf("%.1f-%.1f GHz (%d levels)", p.FMin()/1e9, p.FMax()/1e9, len(p.Frequencies))
		}),
		row("Memory bandwidth", func(p *machine.Profile) string { return fmt.Sprintf("%.1f GB/s", p.MemBandwidth/1e9) }),
		row("Per-core mem bandwidth", func(p *machine.Profile) string { return fmt.Sprintf("%.2f GB/s", p.MemCoreBandwidth/1e9) }),
		row("I/O bandwidth", func(p *machine.Profile) string { return fmt.Sprintf("%.0f Mbps", p.LinkBandwidth/1e6) }),
		row("Idle power", func(p *machine.Profile) string { return fmt.Sprintf("%.1f W", p.PSysIdle) }),
		row("Peak core power", func(p *machine.Profile) string { return fmt.Sprintf("%.2f W", p.PCoreAct.At(p.FMax())) }),
	}
	text := "Systems used for validation (Table 3 analogue; power rows are this\nrepository's calibrated profile values)\n\n" +
		textplot.Table(headers, rows)
	return &Artifact{ID: "table3", Title: "Table 3: Systems used for validation", Text: text}, nil
}
