package experiments

import (
	"context"
	"fmt"
	"strings"

	"hybridperf/internal/core"
	"hybridperf/internal/machine"
	"hybridperf/internal/pareto"
	"hybridperf/internal/textplot"
	"hybridperf/internal/workload"
)

// ucrGrid is the Figure 10/11 configuration panel: three node counts,
// three core counts and three DVFS levels.
func ucrGrid(prof *machine.Profile) []machine.Config {
	nodes := []int{1, 4, 8}
	var cores []int
	switch prof.CoresPerNode {
	case 8:
		cores = []int{1, 4, 8}
	case 4:
		cores = []int{1, 2, 4}
	default:
		cores = []int{1, prof.CoresPerNode}
	}
	fs := prof.Frequencies
	freqs := []float64{fs[0], fs[len(fs)/2], fs[len(fs)-1]}
	var cfgs []machine.Config
	for _, n := range nodes {
		for _, c := range cores {
			for _, f := range freqs {
				cfgs = append(cfgs, machine.Config{Nodes: n, Cores: c, Freq: f})
			}
		}
	}
	return cfgs
}

// ucrFigure renders the UCR + time + energy panel of Figures 10/11.
func (r *Runner) ucrFigure(id, title string, prof *machine.Profile) (*Artifact, error) {
	cfgs := ucrGrid(prof)
	programs := workload.Programs()
	headers := []string{"(n,c,f[GHz])"}
	for _, spec := range programs {
		headers = append(headers, spec.Name+" UCR", "T[s]", "E[kJ]")
	}
	preds := make(map[string][]core.Prediction)
	for _, spec := range programs {
		_, model, err := r.characterization(prof, spec)
		if err != nil {
			return nil, err
		}
		S := r.iterations(spec)
		points, err := pareto.EvaluateParallel(context.Background(), model, cfgs, S, r.cfg.Workers)
		if err != nil {
			return nil, err
		}
		ps := make([]core.Prediction, len(points))
		for i, p := range points {
			ps[i] = p.Pred
		}
		preds[spec.Name] = ps
	}
	var rows [][]string
	for i, cfg := range cfgs {
		row := []string{cfg.String()}
		for _, spec := range programs {
			p := preds[spec.Name][i]
			row = append(row,
				fmt.Sprintf("%.2f", p.UCR),
				fmt.Sprintf("%.0f", p.T),
				fmt.Sprintf("%.1f", p.E/1e3))
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", title, prof.Name)
	b.WriteString(textplot.Table(headers, rows))

	// The paper's reading aids: best UCR per program (at (1,1,fmin)) and
	// the UCR trend with parallelism.
	b.WriteString("\nUCR upper bound per program (single node, single core, fmin):\n")
	for _, spec := range programs {
		best := 0.0
		for i, cfg := range cfgs {
			if cfg.Nodes == 1 && cfg.Cores == 1 && cfg.Freq == prof.FMin() {
				best = preds[spec.Name][i].UCR
			}
		}
		fmt.Fprintf(&b, "  %-3s %.2f\n", spec.Name, best)
	}
	return &Artifact{ID: id, Title: title, Text: b.String()}, nil
}

// Fig10 regenerates the Xeon UCR/time/energy panel for the five programs.
func (r *Runner) Fig10() (*Artifact, error) {
	return r.ucrFigure("fig10", "Figure 10: UCR and time-energy performance on Xeon cluster", machine.XeonE5())
}

// Fig11 regenerates the ARM UCR/time/energy panel.
func (r *Runner) Fig11() (*Artifact, error) {
	return r.ucrFigure("fig11", "Figure 11: UCR and time-energy performance on ARM cluster", machine.ARMCortexA9())
}

// WhatIf regenerates the Sec. V.B co-design analysis: doubling the memory
// bandwidth of the Xeon node reduces SP's memory stalls at (1,8,1.8) and
// lifts the configuration's UCR, shortening time and saving energy —
// further optimising a Pareto-frontier point. The paper reports UCR
// 0.67 -> 0.81, -7 s and -590 J.
func (r *Runner) WhatIf() (*Artifact, error) {
	prof := machine.XeonE5()
	spec := workload.SP()
	_, model, err := r.characterization(prof, spec)
	if err != nil {
		return nil, err
	}
	S := r.iterations(spec)
	cfg := machine.Config{Nodes: 1, Cores: 8, Freq: prof.FMax()}
	base, err := model.Predict(cfg, S)
	if err != nil {
		return nil, err
	}
	whatIf, err := model.WithOptions(core.Options{MemBandwidthScale: 2})
	if err != nil {
		return nil, err
	}
	doubled, err := whatIf.Predict(cfg, S)
	if err != nil {
		return nil, err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "What-if (Sec. V.B): double the memory bandwidth for %s on %s %v\n\n", spec.Name, prof.Name, cfg)
	rows := [][]string{
		{"baseline", fmt.Sprintf("%.2f", base.UCR), fmt.Sprintf("%.1f", base.T), fmt.Sprintf("%.0f", base.E), fmt.Sprintf("%.1f", base.TMem)},
		{"2x memory bandwidth", fmt.Sprintf("%.2f", doubled.UCR), fmt.Sprintf("%.1f", doubled.T), fmt.Sprintf("%.0f", doubled.E), fmt.Sprintf("%.1f", doubled.TMem)},
	}
	b.WriteString(textplot.Table([]string{"scenario", "UCR", "Time[s]", "Energy[J]", "TMem[s]"}, rows))
	fmt.Fprintf(&b, "\nDelta: UCR %+.2f, time %+.1f s, energy %+.0f J\n", doubled.UCR-base.UCR, doubled.T-base.T, doubled.E-base.E)
	fmt.Fprintf(&b, "Paper: UCR 0.67 -> 0.81, -7 s, -590 J (their SP at class-A scale).\n")
	return &Artifact{ID: "whatif", Title: "Sec V.B what-if: 2x memory bandwidth", Text: b.String()}, nil
}
