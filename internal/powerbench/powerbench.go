// Package powerbench implements the paper's power characterisation
// (Sec. III.E.3): micro-benchmarks that stress the processor pipeline to
// measure per-core active and stall power across the full (c, f) range,
// plus system idle and NIC power — all read through the simulated WattsUp
// meter, whose reading carries the calibrated noise the paper reports
// (up to 2 W on Xeon, 0.4 W on ARM nodes). Memory power is taken from the
// JEDEC specification (the profile's datasheet value), as the paper does.
package powerbench

import (
	"fmt"
	"math"

	"hybridperf/internal/core"
	"hybridperf/internal/des"
	"hybridperf/internal/machine"
	"hybridperf/internal/mpi"
	"hybridperf/internal/node"
	"hybridperf/internal/rng"
	"hybridperf/internal/simnet"
)

// benchDuration is the simulated length of each micro-benchmark.
const benchDuration = 10.0 // s

// Result is the full power characterisation, including the per-(c,f) table
// the paper's methodology produces; the analytical model consumes the
// Model field.
type Result struct {
	Model core.PowerModel

	// Raw per-configuration node power readings [W], for diagnostics and
	// linearity checks: key is the (c,f) point, value the metered power.
	SpinWatts  map[machine.CF]float64
	StallWatts map[machine.CF]float64
	IdleWatts  float64
	NetWatts   float64 // sender-node power during a saturated stream
}

// meterRead converts an exact energy over a duration into a metered power
// reading with the profile's calibration noise.
func meterRead(energy, duration float64, prof *machine.Profile, noise *rng.Stream) float64 {
	p := energy/duration + noise.Normal(0, prof.MeterNoiseW)
	if p < 0 {
		p = 0
	}
	return p
}

// runIdle measures the idle node power.
func runIdle(prof *machine.Profile, noise *rng.Stream) (float64, error) {
	k := des.NewKernel()
	nd := node.New(k, prof, 0, 1, prof.FMax(), nil)
	k.Spawn("idle", func(p *des.Proc) { p.Advance(benchDuration) })
	if err := k.Run(math.Inf(1)); err != nil {
		return 0, err
	}
	return meterRead(nd.Energy().Total(), benchDuration, prof, noise), nil
}

// runSpin measures node power with c cores spinning pure compute at f.
func runSpin(prof *machine.Profile, c int, f float64, noise *rng.Stream) (float64, error) {
	k := des.NewKernel()
	nd := node.New(k, prof, 0, c, f, nil)
	chunk := 0.25 * f / prof.CyclesPerWork // work units per 0.25 s slice
	for core := 0; core < c; core++ {
		core := core
		k.Spawn(fmt.Sprintf("spin%d", core), func(p *des.Proc) {
			for p.Now() < benchDuration {
				nd.Compute(p, core, chunk, 0)
			}
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		return 0, err
	}
	elapsed := k.Now()
	return meterRead(nd.Energy().Total(), elapsed, prof, noise), nil
}

// runStall measures node power with c cores continuously stalled on
// memory (a pointer-chase analogue) at f.
func runStall(prof *machine.Profile, c int, f float64, noise *rng.Stream) (float64, error) {
	k := des.NewKernel()
	nd := node.New(k, prof, 0, c, f, nil)
	burst := prof.MemBandwidth * 0.25 / float64(c) // ~0.25 s per round at saturation
	for core := 0; core < c; core++ {
		core := core
		k.Spawn(fmt.Sprintf("chase%d", core), func(p *des.Proc) {
			for p.Now() < benchDuration {
				nd.MemAccess(p, core, burst)
			}
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		return 0, err
	}
	elapsed := k.Now()
	return meterRead(nd.Energy().Total(), elapsed, prof, noise), nil
}

// runNet measures the sender-node power of a saturated outbound stream.
func runNet(prof *machine.Profile, noise *rng.Stream) (float64, error) {
	k := des.NewKernel()
	sw := simnet.New(k, prof, 2)
	nodes := []*node.Node{
		node.New(k, prof, 0, 1, prof.FMax(), nil),
		node.New(k, prof, 1, 1, prof.FMax(), nil),
	}
	world := mpi.NewWorld(k, sw, nodes)
	msg := 1 << 20 // 1 MiB messages keep the NIC busy
	perMsg := prof.MsgServiceTime(float64(msg))
	count := int(benchDuration/perMsg) + 1
	k.Spawn("stream", func(p *des.Proc) {
		r := world.Rank(0)
		for i := 0; i < count; i++ {
			r.Isend(1, float64(msg), mpi.TagHalo)
		}
		p.Advance(benchDuration)
	})
	if err := k.Run(math.Inf(1)); err != nil {
		return 0, err
	}
	elapsed := k.Now()
	return meterRead(nodes[0].Energy().Total(), elapsed, prof, noise), nil
}

// Characterize runs the full power characterisation for a profile. The
// seed controls the meter-noise draws, so a characterisation is exactly
// reproducible.
func Characterize(prof *machine.Profile, seed int64) (*Result, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	noise := rng.New(seed).Split("powerbench")
	res := &Result{
		SpinWatts:  make(map[machine.CF]float64),
		StallWatts: make(map[machine.CF]float64),
		Model: core.PowerModel{
			PAct:   make(map[float64]float64),
			PStall: make(map[float64]float64),
			// Pmem comes from the JEDEC datasheet, not a measurement.
			PMem: prof.PMem,
		},
	}

	idle, err := runIdle(prof, noise)
	if err != nil {
		return nil, fmt.Errorf("powerbench idle: %w", err)
	}
	res.IdleWatts = idle
	res.Model.PSysIdle = idle

	for _, f := range prof.Frequencies {
		for c := 1; c <= prof.CoresPerNode; c++ {
			spin, err := runSpin(prof, c, f, noise)
			if err != nil {
				return nil, fmt.Errorf("powerbench spin(%d,%.1f): %w", c, f/1e9, err)
			}
			res.SpinWatts[machine.CF{Cores: c, Freq: f}] = spin
			stall, err := runStall(prof, c, f, noise)
			if err != nil {
				return nil, fmt.Errorf("powerbench stall(%d,%.1f): %w", c, f/1e9, err)
			}
			res.StallWatts[machine.CF{Cores: c, Freq: f}] = stall
		}
		// Per-core figures from the full-occupancy runs (best SNR).
		cmax := float64(prof.CoresPerNode)
		full := machine.CF{Cores: prof.CoresPerNode, Freq: f}
		pact := (res.SpinWatts[full] - idle) / cmax
		pstall := (res.StallWatts[full] - idle - prof.PMem) / cmax
		if pact < 0 {
			pact = 0
		}
		if pstall < 0 {
			pstall = 0
		}
		res.Model.PAct[f] = pact
		res.Model.PStall[f] = pstall
	}

	netW, err := runNet(prof, noise)
	if err != nil {
		return nil, fmt.Errorf("powerbench net: %w", err)
	}
	res.NetWatts = netW
	pnet := netW - idle
	if pnet < 0 {
		pnet = 0
	}
	res.Model.PNet = pnet
	return res, nil
}
