package powerbench

import (
	"math"
	"testing"

	"hybridperf/internal/machine"
)

func TestCharacterizeXeon(t *testing.T) {
	prof := machine.XeonE5()
	res, err := Characterize(prof, 42)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model
	// Idle within meter noise of the profile (several readings, 6 sigma).
	if math.Abs(m.PSysIdle-prof.PSysIdle) > 6*prof.MeterNoiseW {
		t.Fatalf("idle %g vs profile %g", m.PSysIdle, prof.PSysIdle)
	}
	for _, f := range prof.Frequencies {
		pact, ok := m.PAct[f]
		if !ok {
			t.Fatalf("no PAct at %.1f GHz", f/1e9)
		}
		want := prof.PCoreAct.At(f)
		// Two noisy readings divided by cmax: tolerance ~ noise.
		if math.Abs(pact-want) > prof.MeterNoiseW {
			t.Fatalf("PAct(%.1f GHz) = %g, profile %g", f/1e9, pact, want)
		}
		pstall := m.PStall[f]
		if pstall >= pact {
			t.Fatalf("stall power %g >= active %g at %.1f GHz", pstall, pact, f/1e9)
		}
		if pstall <= 0 {
			t.Fatalf("stall power %g at %.1f GHz", pstall, f/1e9)
		}
	}
	// Active power increases with frequency (as characterised).
	prev := 0.0
	for _, f := range prof.Frequencies {
		if m.PAct[f] <= prev {
			t.Fatalf("characterised PAct not increasing at %.1f GHz", f/1e9)
		}
		prev = m.PAct[f]
	}
	if m.PMem != prof.PMem {
		t.Fatalf("PMem = %g, want the JEDEC value %g", m.PMem, prof.PMem)
	}
	if math.Abs(m.PNet-prof.PNet) > 3*prof.MeterNoiseW {
		t.Fatalf("PNet = %g, profile %g", m.PNet, prof.PNet)
	}
}

func TestCharacterizeARMNoiseScale(t *testing.T) {
	prof := machine.ARMCortexA9()
	res, err := Characterize(prof, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The ARM meter noise is 0.4 W (paper Sec. IV.C); per-core figures
	// divide by 4 cores, so errors must be sub-watt.
	for _, f := range prof.Frequencies {
		want := prof.PCoreAct.At(f)
		if math.Abs(res.Model.PAct[f]-want) > 0.4 {
			t.Fatalf("ARM PAct(%.1f) = %g, profile %g", f/1e9, res.Model.PAct[f], want)
		}
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	a, err := Characterize(machine.XeonE5(), 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Characterize(machine.XeonE5(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.IdleWatts != b.IdleWatts || a.NetWatts != b.NetWatts {
		t.Fatal("same seed gave different characterisation")
	}
	c, err := Characterize(machine.XeonE5(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if a.IdleWatts == c.IdleWatts {
		t.Fatal("different seeds gave identical noisy readings")
	}
}

func TestRawTablesComplete(t *testing.T) {
	prof := machine.ARMCortexA9()
	res, err := Characterize(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := prof.CoresPerNode * len(prof.Frequencies)
	if len(res.SpinWatts) != want || len(res.StallWatts) != want {
		t.Fatalf("raw tables have %d/%d entries, want %d", len(res.SpinWatts), len(res.StallWatts), want)
	}
	// Spin power grows with the active core count at fixed f.
	f := prof.FMax()
	p1 := res.SpinWatts[machine.CF{Cores: 1, Freq: f}]
	p4 := res.SpinWatts[machine.CF{Cores: 4, Freq: f}]
	if p4 <= p1 {
		t.Fatalf("spin power not increasing with cores: %g vs %g", p1, p4)
	}
}

func TestCharacterizeInvalidProfile(t *testing.T) {
	bad := machine.XeonE5()
	bad.CoresPerNode = 0
	if _, err := Characterize(bad, 1); err == nil {
		t.Fatal("invalid profile accepted")
	}
}
