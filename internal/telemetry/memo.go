package telemetry

import "sync"

// maxMemoBodyBytes bounds one memoised request body: a dense-grid batch
// body is tens of kilobytes, so anything larger is an outlier not worth
// the memory of remembering verbatim.
const maxMemoBodyBytes = 64 << 10

// bodyMemo remembers, per exact request body, the canonical cache key
// (and the access-log annotations) that body decoded to the first time
// it was seen. Sweep clients replay byte-identical bodies — the same
// generator, dashboard or poller re-asks the same grid — and on the
// cache-hit path the JSON decode, validation and canonicalisation spent
// recomputing a key we already know dominate the serving cost. The memo
// turns an exact repeat into one map probe.
//
// The mapping body → key is pure (it depends only on the bytes and the
// static system/workload catalogues), so entries never go stale; only
// successfully validated bodies are remembered, and the memo never
// serves a response itself — it only names the response-cache entry to
// probe, so an expired or evicted answer falls through to the full
// decode-and-compute path.
type bodyMemo struct {
	capacity int

	mu      sync.Mutex
	entries map[string]memoEntry // key: the verbatim request body
}

// memoEntry is what handleBatch needs to skip the decode: the semantic
// cache key plus the fields it would have annotated onto the log line.
type memoEntry struct {
	key    string // canonical response-cache key
	engine string // resolved engine mode (body bytes pin the engine field)
	class  string // resolved workload class
	tuples int    // tuples as sent
	unique int    // tuples after canonicalisation
}

func newBodyMemo(capacity int) *bodyMemo {
	return &bodyMemo{capacity: capacity, entries: map[string]memoEntry{}}
}

// get returns the memoised entry for an exact body, if any. The
// map[string] probe with a []byte key does not allocate.
func (m *bodyMemo) get(body []byte) (memoEntry, bool) {
	m.mu.Lock()
	e, ok := m.entries[string(body)]
	m.mu.Unlock()
	return e, ok
}

// put remembers a validated body. At capacity one arbitrary entry is
// evicted to make room — entries are cheap to rebuild (one decode), so
// the memo skips LRU bookkeeping, but it must never forget the whole
// working set at once: the old wholesale clear dropped every other hot
// body the moment one new body arrived at capacity, turning a steady
// mixed workload back into full decodes on the exact requests the memo
// existed to accelerate.
func (m *bodyMemo) put(body []byte, e memoEntry) {
	if len(body) > maxMemoBodyBytes {
		return
	}
	m.mu.Lock()
	if _, ok := m.entries[string(body)]; !ok && len(m.entries) >= m.capacity {
		for k := range m.entries {
			delete(m.entries, k)
			break
		}
	}
	m.entries[string(body)] = e
	m.mu.Unlock()
}
