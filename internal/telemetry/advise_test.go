package telemetry

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"hybridperf/internal/dvfs"
)

// adviseBody is the shared small-shape advise request: 2x2 on the xeon
// testbed at class S keeps the governed DES runs cheap.
const adviseBody = `{"system":"xeon","program":"SP","class":"S","nodes":2,"cores":2}`

type adviseResponseJSON struct {
	System          string         `json:"system"`
	Program         string         `json:"program"`
	Class           string         `json:"class"`
	Nodes           int            `json:"nodes"`
	Cores           int            `json:"cores"`
	Static          predictionJSON `json:"static"`
	BaselineTimeS   float64        `json:"baseline_time_s"`
	BaselineEnergyJ float64        `json:"baseline_energy_j"`
	MaxSlowdownPct  float64        `json:"max_slowdown_pct"`
	Recommended     string         `json:"recommended"`
	Policies        []struct {
		Policy           string  `json:"policy"`
		TimeS            float64 `json:"time_s"`
		EnergyJ          float64 `json:"energy_j"`
		MakespanDeltaPct float64 `json:"makespan_delta_pct"`
		EnergyDeltaPct   float64 `json:"energy_delta_pct"`
		Schedule         []struct {
			Iter    int     `json:"iter"`
			FreqGHz float64 `json:"freq_ghz"`
		} `json:"schedule"`
	} `json:"policies"`
}

// TestAdviseEndpoint exercises the cold advisory path end to end: the
// full policy suite evaluated, per-policy schedules and deltas on the
// wire, attribution headers covering baseline + governed runs, the
// per-policy counters moving, and the repeat request replayed
// byte-identically from the response cache.
func TestAdviseEndpoint(t *testing.T) {
	s, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/advise", adviseBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200: %s", resp.StatusCode, raw)
	}
	var adv adviseResponseJSON
	if err := json.Unmarshal(raw, &adv); err != nil {
		t.Fatalf("decoding advise response: %v\n%s", err, raw)
	}
	if adv.System != "xeon" || adv.Program != "SP" || adv.Class != "S" || adv.Nodes != 2 || adv.Cores != 2 {
		t.Errorf("summary coordinates wrong: %+v", adv)
	}
	if got, want := len(adv.Policies), len(dvfs.Policies()); got != want {
		t.Fatalf("got %d policies, want the full suite of %d", got, want)
	}
	if !dvfs.ValidPolicy(adv.Recommended) {
		t.Errorf("recommended %q is not a policy", adv.Recommended)
	}
	if adv.MaxSlowdownPct != 5 {
		t.Errorf("default max_slowdown_pct = %g, want 5", adv.MaxSlowdownPct)
	}
	if !(adv.BaselineTimeS > 0) || !(adv.BaselineEnergyJ > 0) {
		t.Errorf("degenerate baseline: %+v", adv)
	}
	if adv.Static.Config.Nodes != 2 || adv.Static.Config.Cores != 2 {
		t.Errorf("static point off the requested shape: %+v", adv.Static.Config)
	}
	for i, p := range adv.Policies {
		if p.Policy != dvfs.Policies()[i] {
			t.Errorf("policy %d = %q, want suite order %v", i, p.Policy, dvfs.Policies())
		}
		if len(p.Schedule) == 0 {
			t.Errorf("%s: empty frequency schedule", p.Policy)
		} else if first := p.Schedule[0]; first.Iter != 0 || first.FreqGHz != adv.Static.Config.FreqGHz {
			t.Errorf("%s: schedule opens with %+v, want {0, %g}", p.Policy, first, adv.Static.Config.FreqGHz)
		}
		if p.Policy == dvfs.PolicyFixed && (p.MakespanDeltaPct != 0 || p.EnergyDeltaPct != 0) {
			t.Errorf("fixed policy deltas not exactly zero: %+v", p)
		}
	}

	// Attribution: baseline + one governed run per policy.
	wantRuns := strconv.Itoa(1 + len(adv.Policies))
	if got := resp.Header.Get(PredictionsHeader); got != wantRuns {
		t.Errorf("%s = %q, want %q", PredictionsHeader, got, wantRuns)
	}
	if resp.Header.Get(SimSecondsHeader) == "" || resp.Header.Get(EnergyHeader) == "" {
		t.Error("attribution headers missing on /v1/advise")
	}

	// Per-policy governor accounting moved on the cold path.
	for _, p := range dvfs.Policies() {
		if n := s.mAdviseEvals.With(p).Value(); n != 1 {
			t.Errorf("advise evaluations for %q = %d, want 1", p, n)
		}
	}
	if n := s.mAdviseRec.With(adv.Recommended).Value(); n != 1 {
		t.Errorf("recommendations for %q = %d, want 1", adv.Recommended, n)
	}

	// Repeat: byte-identical from the cache, counters unchanged.
	resp2, raw2 := postJSON(t, ts.URL+"/v1/advise", adviseBody)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp2.StatusCode, raw2)
	}
	if got := resp2.Header.Get("X-Response-Cache"); got != "hit" {
		t.Errorf("repeat X-Response-Cache = %q, want hit", got)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("cached advise response is not byte-identical to the computed one")
	}
	for _, p := range dvfs.Policies() {
		if n := s.mAdviseEvals.With(p).Value(); n != 1 {
			t.Errorf("cache hit re-counted evaluations for %q: %d", p, n)
		}
	}
}

// TestAdviseStreamedMatchesDocument: the NDJSON shape carries exactly the
// document's policies (one per line) plus its summary fields.
func TestAdviseStreamedMatchesDocument(t *testing.T) {
	_, ts := newTestServer(t)
	_, doc := postJSON(t, ts.URL+"/v1/advise", adviseBody)
	var want adviseResponseJSON
	if err := json.Unmarshal(doc, &want); err != nil {
		t.Fatalf("document: %v\n%s", err, doc)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/v1/advise", strings.NewReader(adviseBody))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q, want application/x-ndjson", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if got, want := len(lines), len(want.Policies)+1; got != want {
		t.Fatalf("%d NDJSON lines, want %d (policies + summary)", got, want)
	}
	for i, line := range lines[:len(lines)-1] {
		var item struct {
			Type   string `json:"type"`
			Policy struct {
				Policy string `json:"policy"`
			} `json:"policy"`
		}
		if err := json.Unmarshal([]byte(line), &item); err != nil {
			t.Fatalf("line %d: %v\n%s", i, err, line)
		}
		if item.Type != "policy" || item.Policy.Policy != want.Policies[i].Policy {
			t.Errorf("line %d carries %q/%q, want policy %q", i, item.Type, item.Policy.Policy, want.Policies[i].Policy)
		}
	}
	var sum struct {
		Type        string `json:"type"`
		Recommended string `json:"recommended"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Type != "summary" || sum.Recommended != want.Recommended {
		t.Errorf("summary line %+v does not match document recommendation %q", sum, want.Recommended)
	}
}

// TestAdvisePolicySubsetAndDefaults: a policy subset is evaluated in
// canonical suite order whatever order (or duplication) the client used,
// and omitted nodes/cores resolve to the testbed shape in the cache key
// (the explicit spelling hits the same entry).
func TestAdvisePolicySubset(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"system":"xeon","program":"SP","class":"S","nodes":2,"cores":2,"policies":["slack","fixed","slack"]}`
	resp, raw := postJSON(t, ts.URL+"/v1/advise", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var adv adviseResponseJSON
	if err := json.Unmarshal(raw, &adv); err != nil {
		t.Fatal(err)
	}
	if len(adv.Policies) != 2 || adv.Policies[0].Policy != dvfs.PolicyFixed || adv.Policies[1].Policy != dvfs.PolicySlack {
		t.Fatalf("subset not canonicalised to suite order: %+v", adv.Policies)
	}
	// Same selection spelled canonically: a cache hit, byte-identical.
	resp2, raw2 := postJSON(t, ts.URL+"/v1/advise",
		`{"system":"xeon","program":"SP","class":"S","nodes":2,"cores":2,"policies":["fixed","slack"]}`)
	if got := resp2.Header.Get("X-Response-Cache"); got != "hit" {
		t.Errorf("canonical respelling missed the cache: %q", got)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("respelled subset response differs")
	}
}

// TestAdviseEngineSharesCacheEntry: engine is excluded from the cache key
// — both engines are bit-identical by construction — so a
// sequential-engine request replays a goroutine-engine entry.
func TestAdviseEngineSharesCacheEntry(t *testing.T) {
	_, ts := newTestServer(t)
	_, raw := postJSON(t, ts.URL+"/v1/advise", adviseBody)
	resp2, raw2 := postJSON(t, ts.URL+"/v1/advise",
		`{"system":"xeon","program":"SP","class":"S","nodes":2,"cores":2,"engine":"sequential"}`)
	if got := resp2.Header.Get("X-Response-Cache"); got != "hit" {
		t.Errorf("sequential-engine advise missed the cache: %q", got)
	}
	if !bytes.Equal(raw, raw2) {
		t.Error("advise responses differ across engines")
	}
}

func TestAdviseErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
		status     int
	}{
		{"unknown system", `{"system":"cray","program":"SP"}`, 400},
		{"unknown program", `{"system":"xeon","program":"NOPE"}`, 400},
		{"bad class", `{"system":"xeon","program":"SP","class":"Z"}`, 400},
		{"oversized shape", `{"system":"xeon","program":"SP","nodes":99}`, 400},
		{"unknown policy", `{"system":"xeon","program":"SP","policies":["turbo"]}`, 400},
		{"negative slowdown", `{"system":"xeon","program":"SP","max_slowdown_pct":-3}`, 400},
		{"slowdown too large", `{"system":"xeon","program":"SP","max_slowdown_pct":150}`, 400},
		{"unknown engine", `{"system":"xeon","program":"SP","engine":"quantum"}`, 400},
		{"unknown field", `{"system":"xeon","program":"SP","frobnicate":1}`, 400},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL+"/v1/advise", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.status, raw)
			}
			errorEnvelope(t, resp, raw)
		})
	}
}

func TestAdviseCacheKeyCanonical(t *testing.T) {
	a := adviseCacheKey("xeon", "SP", "S", 2, 2, []string{"fixed", "slack"}, 0.05)
	b := adviseCacheKey("xeon", "SP", "S", 2, 2, []string{"fixed", "slack"}, 0.05)
	if a != b {
		t.Error("identical advise requests produced different keys")
	}
	for _, other := range []string{
		adviseCacheKey("xeon", "SP", "S", 2, 2, []string{"fixed"}, 0.05),
		adviseCacheKey("xeon", "SP", "S", 2, 2, []string{"fixed", "slack"}, 0.1),
		adviseCacheKey("xeon", "SP", "S", 2, 4, []string{"fixed", "slack"}, 0.05),
		adviseCacheKey("xeon", "SP", "A", 2, 2, []string{"fixed", "slack"}, 0.05),
		adviseCacheKey("xeon", "LB", "S", 2, 2, []string{"fixed", "slack"}, 0.05),
	} {
		if other == a {
			t.Errorf("distinct advise request collided: %q", other)
		}
	}
}
