package telemetry

import (
	"fmt"
	"log/slog"
	"net/http"
	"time"

	"hybridperf/internal/characterize"
	"hybridperf/internal/dvfs"
	"hybridperf/internal/machine"
	"hybridperf/internal/workload"
)

// POST /v1/advise: the online DVFS advisory endpoint. For one (system,
// program, nodes, cores) it picks the static Pareto point over the
// frequency axis, replays the DES once per governor policy from that
// point, and returns each policy's frequency schedule and its
// energy/makespan delta against the ungoverned static run — plus the
// recommended policy. The evaluation itself lives in
// characterize.Advise; this file is only the wire layer: decode,
// validation, canonicalisation, admission, caching, attribution.

// adviseRequest is the /v1/advise body.
type adviseRequest struct {
	System  string `json:"system"`
	Program string `json:"program"`
	Class   string `json:"class"`
	Nodes   int    `json:"nodes"` // 0 = testbed size
	Cores   int    `json:"cores"` // 0 = cores per node
	// Policies selects a subset of the governor suite; empty evaluates
	// every policy. Order and duplicates are erased: the response is
	// always in suite order.
	Policies []string `json:"policies"`
	// MaxSlowdownPct is the makespan tolerance in percent (the
	// phase-predictive governor's budget and the recommendation
	// cut-off); 0 takes the server default.
	MaxSlowdownPct float64 `json:"max_slowdown_pct"`
	Engine         string  `json:"engine"` // "" = server default
}

// canonPolicies validates the requested policy names and returns the
// canonical selection: the full suite when empty, otherwise the suite
// filtered to the requested set — suite order, duplicates erased.
func canonPolicies(requested []string) ([]string, error) {
	if len(requested) == 0 {
		return dvfs.Policies(), nil
	}
	want := make(map[string]bool, len(requested))
	for _, p := range requested {
		if !dvfs.ValidPolicy(p) {
			return nil, fmt.Errorf("unknown policy %q (have %v)", p, dvfs.Policies())
		}
		want[p] = true
	}
	var out []string
	for _, p := range dvfs.Policies() {
		if want[p] {
			out = append(out, p)
		}
	}
	return out, nil
}

func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	rt := RequestTraceFrom(r.Context())
	var tDecode time.Time
	if rt != nil {
		tDecode = time.Now()
	}
	body, ok := readBodyMax(w, r, 1<<20)
	if !ok {
		return
	}
	var req adviseRequest
	if !decodeJSONBytes(w, body, &req) {
		return
	}
	if rt != nil {
		rt.AddSpan("handler", "decode", tDecode, time.Now())
	}
	engine, ok := s.engineMode(w, req.Engine)
	if !ok {
		return
	}
	s.mByEngine.With("/v1/advise", engine).Inc()
	if s.forwardIfRemote(w, r, body, req.System, req.Program) {
		return
	}
	// Validate and resolve defaults before the cache is consulted, so
	// the key is canonical (an explicit nodes equal to the testbed size
	// hits the same entry as an omitted one) and garbage requests never
	// reach the cache.
	prof, err := machine.ByName(req.System)
	if err != nil {
		httpError(w, http.StatusBadRequest, "unknown system %q", req.System)
		return
	}
	spec, err := workload.ByName(req.Program)
	if err != nil {
		httpError(w, http.StatusBadRequest, "unknown program %q", req.Program)
		return
	}
	class := req.Class
	if class == "" {
		class = string(workload.ClassA)
	}
	if _, err := spec.Iterations(workload.Class(class)); err != nil {
		httpError(w, http.StatusBadRequest, "bad class %q: %v", class, err)
		return
	}
	nodes, cores := req.Nodes, req.Cores
	if nodes == 0 {
		nodes = prof.MaxNodes
	}
	if cores == 0 {
		cores = prof.CoresPerNode
	}
	if err := prof.ValidateConfig(machine.Config{Nodes: nodes, Cores: cores, Freq: prof.FMax()}); err != nil {
		httpError(w, http.StatusBadRequest, "invalid configuration: %v", err)
		return
	}
	policies, err := canonPolicies(req.Policies)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	slowdown := s.advSlowdown
	if req.MaxSlowdownPct != 0 {
		if !(req.MaxSlowdownPct > 0 && req.MaxSlowdownPct < 100) {
			httpError(w, http.StatusBadRequest, "max_slowdown_pct %g out of range (0,100)", req.MaxSlowdownPct)
			return
		}
		slowdown = req.MaxSlowdownPct / 100
	}
	annotate(r.Context(),
		slog.String("system", req.System),
		slog.String("program", req.Program),
		slog.String("class", class),
		slog.String("engine", engine),
		slog.Int("nodes", nodes),
		slog.Int("cores", cores))

	key := adviseCacheKey(req.System, req.Program, class, nodes, cores, policies, slowdown)
	s.respondCached(w, r, "/v1/advise", engine, key, func() (*cachedResponse, error) {
		// An advisory evaluation runs the DES once per policy plus the
		// baseline — always the heavy path, so it always counts against
		// the campaign budget, exactly like a sweep. The flight leader's
		// slot covers a cold characterisation too (model is told the
		// request is already admitted).
		release, ok := s.acquire()
		if !ok {
			return nil, fmt.Errorf("advise: %w", errSaturated)
		}
		defer release()
		e, err := s.model(r.Context(), modelKey{system: req.System, program: req.Program}, engine, true)
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		adv, err := characterize.Advise(e.model, e.prof, e.spec, characterize.AdviseOptions{
			Class:         workload.Class(class),
			Nodes:         nodes,
			Cores:         cores,
			Policies:      policies,
			MaxSlowdown:   slowdown,
			Seed:          s.cfg.Seed,
			Workers:       s.cfg.Workers,
			Engine:        engine,
			Ctx:           r.Context(),
			SharedMetrics: s.engines[engine],
			Observe:       s.spans.Observer("exec"),
		})
		if err != nil {
			return nil, fmt.Errorf("advise failed: %w", err)
		}
		tEval := time.Now()
		s.spans.Observe("model", fmt.Sprintf("advise %s/%s n=%d c=%d (%d policies)",
			req.System, req.Program, nodes, cores, len(adv.Policies)),
			t0, tEval, map[string]any{"id": requestID(r.Context())})
		if rt != nil {
			rt.AddSpan("model", fmt.Sprintf("advise %s/%s (%d policies)",
				req.System, req.Program, len(adv.Policies)), t0, tEval)
		}
		// Per-policy governor accounting, recorded on the cold path only
		// — cache hits repeat the answer, not the evaluation.
		for _, out := range adv.Policies {
			s.mAdviseEvals.With(out.Policy).Inc()
			if saved := adv.BaselineEnergyJ - out.EnergyJ; saved > 0 {
				s.mAdviseSaved.With(out.Policy).Add(saved)
			}
		}
		s.mAdviseRec.With(adv.Recommended).Inc()
		endRender := rt.Span("handler", "render")
		resp := buildAdviseResponse(req.System, req.Program, class, slowdown, adv)
		endRender()
		return resp, nil
	})
}

// adviseSummary is the header of an advise answer: everything except the
// per-policy list. It doubles as the NDJSON summary line, so the
// streamed and document forms carry identical fields by construction.
type adviseSummary struct {
	System  string `json:"system"`
	Program string `json:"program"`
	Class   string `json:"class"`
	Nodes   int    `json:"nodes"`
	Cores   int    `json:"cores"`
	// Static is the model's prediction at the static Pareto point the
	// governed runs start from (min-EDP over the DVFS levels).
	Static predictionJSON `json:"static"`
	// Baseline measures the ungoverned DES run at the static point —
	// the denominator of every per-policy delta.
	BaselineTimeS   float64 `json:"baseline_time_s"`
	BaselineEnergyJ float64 `json:"baseline_energy_j"`
	MaxSlowdownPct  float64 `json:"max_slowdown_pct"`
	Recommended     string  `json:"recommended"`
}

// adviseTransitionJSON is one frequency-schedule step.
type adviseTransitionJSON struct {
	Iter    int     `json:"iter"`
	FreqGHz float64 `json:"freq_ghz"`
}

// advisePolicyJSON is one policy's governed outcome on the wire.
type advisePolicyJSON struct {
	Policy           string                 `json:"policy"`
	TimeS            float64                `json:"time_s"`
	EnergyJ          float64                `json:"energy_j"`
	MakespanDeltaPct float64                `json:"makespan_delta_pct"`
	EnergyDeltaPct   float64                `json:"energy_delta_pct"`
	Schedule         []adviseTransitionJSON `json:"schedule"`
}

// buildAdviseResponse renders both wire shapes of an advise answer — the
// JSON document (summary fields + policies array) and the NDJSON lines
// (one policy per line, then the summary) — by marshalling each policy
// outcome once and splicing the fragments into both shapes.
func buildAdviseResponse(system, program, class string, maxSlowdown float64, adv *characterize.Advice) *cachedResponse {
	sum := adviseSummary{
		System:          system,
		Program:         program,
		Class:           class,
		Nodes:           adv.Static.Cfg.Nodes,
		Cores:           adv.Static.Cfg.Cores,
		Static:          toPredictionJSON(adv.Static.Pred),
		BaselineTimeS:   adv.BaselineTimeS,
		BaselineEnergyJ: adv.BaselineEnergyJ,
		MaxSlowdownPct:  maxSlowdown * 100,
		Recommended:     adv.Recommended,
	}
	outs := make([]advisePolicyJSON, len(adv.Policies))
	for i, p := range adv.Policies {
		sched := make([]adviseTransitionJSON, len(p.Schedule))
		for j, tr := range p.Schedule {
			sched[j] = adviseTransitionJSON{Iter: tr.Iter, FreqGHz: tr.Freq / 1e9}
		}
		outs[i] = advisePolicyJSON{
			Policy:           p.Policy,
			TimeS:            p.TimeS,
			EnergyJ:          p.EnergyJ,
			MakespanDeltaPct: p.TimeDelta * 100,
			EnergyDeltaPct:   p.EnergyDelta * 100,
			Schedule:         sched,
		}
	}
	resp := spliceResponse(mustJSON(sum), "policies", "policy", marshalEach(outs))
	// Attribution covers the simulations the answer carries: the
	// baseline run plus one governed run per policy.
	resp.attr = makeAttribution(adv.Runs, adv.SimSeconds, adv.SimEnergyJ)
	return resp
}
