package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestSpansRingWrap(t *testing.T) {
	s := NewSpans(4)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 6; i++ {
		start := t0.Add(time.Duration(i) * time.Second)
		s.Observe("test", "span", start, start.Add(100*time.Millisecond), nil)
	}
	got := s.Snapshot(t0)
	if len(got) != 4 {
		t.Fatalf("snapshot holds %d spans, want the last 4", len(got))
	}
	// Oldest surviving span started at t0+2s.
	if got[0].Start != 2 {
		t.Errorf("oldest surviving span starts at %g s, want 2", got[0].Start)
	}
	if s.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", s.Dropped())
	}
}

func TestSpansSinceFilter(t *testing.T) {
	s := NewSpans(16)
	t0 := time.Unix(1000, 0)
	s.Observe("test", "old", t0, t0.Add(time.Second), nil)
	s.Observe("test", "straddles", t0.Add(9*time.Second), t0.Add(11*time.Second), nil)
	s.Observe("test", "new", t0.Add(12*time.Second), t0.Add(13*time.Second), nil)

	since := t0.Add(10 * time.Second)
	got := s.Snapshot(since)
	if len(got) != 2 {
		t.Fatalf("snapshot holds %d spans, want 2 (old one filtered)", len(got))
	}
	// A span that began before the window keeps its negative start so the
	// exported duration stays truthful.
	if got[0].Name != "straddles" || got[0].Start != -1 || got[0].End != 1 {
		t.Errorf("straddling span = %+v, want start -1 end 1", got[0])
	}
	if got[1].Name != "new" || got[1].Start != 2 {
		t.Errorf("new span = %+v, want start 2", got[1])
	}
}

func TestSpansRejectsBackwardsClock(t *testing.T) {
	s := NewSpans(4)
	t0 := time.Unix(1000, 0)
	s.Observe("test", "backwards", t0, t0.Add(-time.Second), nil)
	if got := s.Snapshot(time.Time{}); len(got) != 0 {
		t.Fatalf("backwards span recorded: %+v", got)
	}
}

func TestSpansNilSafe(t *testing.T) {
	var s *Spans
	s.Observe("test", "x", time.Unix(0, 0), time.Unix(1, 0), nil)
	if got := s.Snapshot(time.Time{}); got != nil {
		t.Errorf("nil Snapshot = %v, want nil", got)
	}
	if s.Dropped() != 0 {
		t.Error("nil Dropped != 0")
	}
	if s.Observer("cat") != nil {
		t.Error("nil Observer should return nil so exec skips the hook entirely")
	}
}

func TestSpansObserverAdapter(t *testing.T) {
	s := NewSpans(4)
	obs := s.Observer("exec")
	t0 := time.Unix(1000, 0)
	obs("run SP (4,8,1.8)", t0, t0.Add(time.Second))
	got := s.Snapshot(t0)
	if len(got) != 1 || got[0].Cat != "exec" || got[0].Name != "run SP (4,8,1.8)" {
		t.Fatalf("observer recorded %+v", got)
	}
}

func TestSpansWriteChrome(t *testing.T) {
	s := NewSpans(8)
	t0 := time.Unix(1000, 0)
	s.Observe("http", "POST /v1/predict", t0, t0.Add(time.Second), map[string]any{"id": "r-1"})
	var b strings.Builder
	if err := s.WriteChrome(&b, t0); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b.String())
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("exported %d events, want 1", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "POST /v1/predict" || ev.Ph != "X" || ev.Dur != 1e6 {
		t.Errorf("event = %+v, want complete event of 1e6 us", ev)
	}
}
