package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"hybridperf/internal/characterize"
	"hybridperf/internal/core"
	"hybridperf/internal/exec"
	"hybridperf/internal/machine"
	"hybridperf/internal/workload"
)

// newTestServer builds a ready server with a quiet logger on a fixed seed,
// mounted on an httptest listener. The response cache is on (as in the
// shipped daemon defaults) so the cacheable handlers run their production
// path; tests needing a cache-less server use newLifecycleServer with a
// zero Config.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{
		Workers:       2,
		Seed:          42,
		ResponseCache: 128,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// errorEnvelope decodes the structured JSON error body every 4xx/5xx
// response must carry.
func errorEnvelope(t *testing.T, resp *http.Response, raw []byte) (string, int) {
	t.Helper()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("error response Content-Type = %q, want application/json", ct)
	}
	var env struct {
		Error  string `json:"error"`
		Status int    `json:"status"`
	}
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v\n%s", err, raw)
	}
	if env.Error == "" {
		t.Errorf("error envelope has empty message: %s", raw)
	}
	return env.Error, env.Status
}

type predictResponse struct {
	System  string `json:"system"`
	Program string `json:"program"`
	Class   string `json:"class"`
	Config  struct {
		Nodes   int     `json:"nodes"`
		Cores   int     `json:"cores"`
		FreqGHz float64 `json:"freq_ghz"`
	} `json:"config"`
	TimeS   float64 `json:"time_s"`
	EnergyJ float64 `json:"energy_j"`
	PowerW  float64 `json:"power_w"`
	UCR     float64 `json:"ucr"`
}

// TestPredictMatchesDirectModel is the serving-layer determinism contract:
// a prediction served through the daemon — with every collector attached —
// is bit-identical to one computed directly from a characterisation with
// the same seed. encoding/json renders float64 with the shortest
// round-trippable form, so exact equality after the HTTP round trip means
// exact equality of the underlying bits.
func TestPredictMatchesDirectModel(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"system":"xeon","program":"SP","class":"A","nodes":4,"cores":8,"freq_ghz":1.8}`
	resp, raw := postJSON(t, ts.URL+"/v1/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, raw)
	}
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("response missing X-Request-Id")
	}
	var got predictResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}

	prof, err := machine.ByName("xeon")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := workload.ByName("SP")
	if err != nil {
		t.Fatal(err)
	}
	sum, err := characterize.Run(prof, spec, characterize.Options{Seed: 42, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(sum.Inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	S, err := spec.Iterations(workload.ClassA)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Predict(machine.Config{Nodes: 4, Cores: 8, Freq: 1.8e9}, S)
	if err != nil {
		t.Fatal(err)
	}
	if got.TimeS != want.T {
		t.Errorf("served time_s = %v, direct model = %v", got.TimeS, want.T)
	}
	if got.EnergyJ != want.E {
		t.Errorf("served energy_j = %v, direct model = %v", got.EnergyJ, want.E)
	}
	if got.UCR != want.UCR {
		t.Errorf("served ucr = %v, direct model = %v", got.UCR, want.UCR)
	}
	if want.T > 0 && got.PowerW != want.E/want.T {
		t.Errorf("served power_w = %v, want E/T = %v", got.PowerW, want.E/want.T)
	}
}

func TestPredictErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body string
		wantStatus int
		wantSubstr string
	}{
		{"unknown system", `{"system":"cray","program":"SP"}`, 400, "unknown system"},
		{"unknown program", `{"system":"xeon","program":"NOPE"}`, 400, "unknown program"},
		{"bad class", `{"system":"xeon","program":"SP","class":"Z","nodes":1,"cores":1,"freq_ghz":1.8}`, 400, "class"},
		{"zero nodes", `{"system":"xeon","program":"SP","class":"A","nodes":0,"cores":8,"freq_ghz":1.8}`, 400, "invalid configuration"},
		{"cores beyond node", `{"system":"xeon","program":"SP","class":"A","nodes":1,"cores":99,"freq_ghz":1.8}`, 400, "invalid configuration"},
		{"unsupported frequency", `{"system":"xeon","program":"SP","class":"A","nodes":1,"cores":8,"freq_ghz":9.9}`, 400, "invalid configuration"},
		{"bad JSON", `{"system": `, 400, "invalid JSON"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL+"/v1/predict", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, raw)
			}
			msg, status := errorEnvelope(t, resp, raw)
			if status != tc.wantStatus {
				t.Errorf("envelope status %d, want %d", status, tc.wantStatus)
			}
			if !strings.Contains(msg, tc.wantSubstr) {
				t.Errorf("error %q does not mention %q", msg, tc.wantSubstr)
			}
		})
	}
}

func TestSweepBadMaxNodes(t *testing.T) {
	_, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/sweep",
		`{"system":"xeon","program":"SP","class":"S","max_nodes":100000}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
	}
	msg, _ := errorEnvelope(t, resp, raw)
	if !strings.Contains(msg, "max_nodes") {
		t.Errorf("error %q does not mention max_nodes", msg)
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s := NewServer(Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz before SetReady = %d, want 503", resp.StatusCode)
	}
	s.SetReady(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after SetReady = %d, want 200", resp.StatusCode)
	}
}

func TestSystemsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/systems")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Systems []struct {
			Name     string `json:"name"`
			MaxNodes int    `json:"max_nodes"`
			Topology string `json:"topology"`
		} `json:"systems"`
		Programs []string `json:"programs"`
		Classes  []string `json:"classes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	byName := map[string]string{}
	for _, sys := range doc.Systems {
		byName[sys.Name] = sys.Topology
	}
	if topo, ok := byName["xeon"]; !ok {
		t.Error("xeon profile missing from /v1/systems")
	} else if topo == "" {
		t.Error("xeon topology rendered empty; want the effective default")
	}
	if len(doc.Programs) == 0 || len(doc.Classes) == 0 {
		t.Errorf("programs/classes empty: %+v", doc)
	}
}

// TestMetricsExposition is the exposition-format golden test: after real
// traffic, /metrics must parse and carry the full documented series set
// with the right types.
func TestMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/predict",
		`{"system":"xeon","program":"SP","class":"A","nodes":4,"cores":8,"freq_ghz":1.8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, raw)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseExposition(t, string(text))

	wantTypes := map[string]string{
		"hybridperf_http_requests_total":                    "counter",
		"hybridperf_http_request_duration_seconds":          "histogram",
		"hybridperf_http_requests_in_flight":                "gauge",
		"hybridperf_models_cached":                          "gauge",
		"hybridperf_model_characterizations_total":          "counter",
		"hybridperf_http_request_duration_quantile_seconds": "gauge",
		"hybridperf_uptime_seconds":                         "gauge",
		"hybridperf_engine_events_total":                    "counter",
		"hybridperf_engine_mpi_messages_total":              "counter",
		"hybridperf_engine_heap_high_water":                 "gauge",
		"hybridperf_engine_mpi_msg_bytes":                   "histogram",
		"hybridperf_response_cache_hits_total":              "counter",
		"hybridperf_response_cache_misses_total":            "counter",
		"hybridperf_response_cache_evictions_total":         "counter",
		"hybridperf_response_cache_collapsed_total":         "counter",
		"hybridperf_response_cache_entries":                 "gauge",
	}
	for name, kind := range wantTypes {
		if types[name] != kind {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], kind)
		}
	}
	if got := samples[`hybridperf_http_requests_total{route="/v1/predict",method="POST",code="200"}`]; got != "1" {
		t.Errorf("predict request counter = %q, want 1", got)
	}
	if got := samples[`hybridperf_model_characterizations_total{system="xeon",program="SP"}`]; got != "1" {
		t.Errorf("characterizations counter = %q, want 1", got)
	}
	if got := samples["hybridperf_models_cached"]; got != "1" {
		t.Errorf("models cached = %q, want 1", got)
	}
	// The characterisation ran through the default mode's shared engine,
	// so its labelled counters must be live on the very first scrape
	// (and the other mode's series present but untouched).
	def := fmt.Sprintf(`hybridperf_engine_events_total{engine="%s"}`, s.DefaultEngine())
	if got := samples[def]; got == "" || got == "0" {
		t.Errorf("engine events %s = %q, want non-zero after characterisation", def, got)
	}
	for _, mode := range exec.Engines() {
		key := fmt.Sprintf(`hybridperf_engine_events_total{engine="%s"}`, mode)
		if _, ok := samples[key]; !ok {
			t.Errorf("no %s sample on scrape", key)
		}
	}
	if got := samples[`hybridperf_requests_by_engine_total{route="/v1/predict",engine="`+s.DefaultEngine()+`"}`]; got != "1" {
		t.Errorf("requests by engine = %q, want 1", got)
	}
	for key := range samples {
		if _, ok := types[familyOf(key)]; !ok {
			t.Errorf("sample %s has no TYPE declaration", key)
		}
	}
}

// TestConcurrentScrapeDuringSweep hammers /metrics while a cold sweep
// characterises and evaluates — the race detector turns any unsynchronised
// counter access into a failure.
func TestConcurrentScrapeDuringSweep(t *testing.T) {
	_, ts := newTestServer(t)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	resp, raw := postJSON(t, ts.URL+"/v1/sweep",
		`{"system":"arm","program":"CP","class":"S","pow2":true}`)
	close(done)
	wg.Wait()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", resp.StatusCode, raw)
	}
	var doc struct {
		Configs  int               `json:"configs"`
		Frontier []json.RawMessage `json:"frontier"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Configs == 0 || len(doc.Frontier) == 0 {
		t.Errorf("sweep returned %d configs, %d frontier points", doc.Configs, len(doc.Frontier))
	}
}

func TestDebugTrace(t *testing.T) {
	_, ts := newTestServer(t)
	// Fire a request mid-window so at least one span ends inside it.
	go func() {
		time.Sleep(30 * time.Millisecond)
		resp, err := http.Get(ts.URL + "/v1/systems")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	resp, err := http.Get(ts.URL + "/debug/trace?duration=200ms")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
		if strings.Contains(ev.Name, "/v1/systems") {
			found = true
		}
	}
	if !found {
		t.Errorf("trace window missed the concurrent request; events: %+v", doc.TraceEvents)
	}

	badResp, err := http.Get(ts.URL + "/debug/trace?duration=bogus")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(badResp.Body)
	badResp.Body.Close()
	if badResp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad duration status %d, want 400: %s", badResp.StatusCode, raw)
	}
}

// TestModelCharacterizedOnce issues concurrent cold predicts for one
// (system, program) pair and expects exactly one characterisation.
func TestModelCharacterizedOnce(t *testing.T) {
	s, ts := newTestServer(t)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/predict", "application/json",
				strings.NewReader(`{"system":"arm","program":"LB","class":"S","nodes":2,"cores":4,"freq_ghz":1.4}`))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if n := s.mChar.With("arm", "LB").Value(); n != 1 {
		t.Errorf("characterisations = %d, want exactly 1", n)
	}
}

// TestSystemsETag: /v1/systems carries a strong ETag and honours
// If-None-Match with a body-less 304, including weak-prefixed and
// comma-separated candidate lists and the "*" wildcard.
func TestSystemsETag(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/systems")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want a quoted strong validator", etag)
	}
	if len(body) == 0 {
		t.Fatal("systems body empty")
	}
	for _, inm := range []string{etag, `"stale", ` + etag, "W/" + etag, "*"} {
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/systems", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("If-None-Match", inm)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Errorf("If-None-Match %q: status %d, want 304", inm, resp.StatusCode)
		}
		if len(raw) != 0 {
			t.Errorf("If-None-Match %q: 304 carried %d body bytes", inm, len(raw))
		}
		if got := resp.Header.Get("ETag"); got != etag {
			t.Errorf("304 ETag = %q, want %q", got, etag)
		}
	}
	// A stale validator revalidates to the full body.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/systems", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("If-None-Match", `"0000000000000000"`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("stale If-None-Match: status %d, want 200", resp.StatusCode)
	}
	if string(raw) != string(body) {
		t.Error("revalidated body differs from the original")
	}
}

// TestWarmRunsUnderDefaultEngineAndAdmission audits the -preload path: a
// warm-up campaign must hold an admission slot for its duration and run on
// the server's default engine (feeding that mode's counters), exactly like
// a served cold request would.
func TestWarmRunsUnderDefaultEngineAndAdmission(t *testing.T) {
	s := NewServer(Config{
		Workers:       2,
		Seed:          42,
		MaxCampaigns:  1,
		DefaultEngine: "sequential",
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	var sawSlots int
	var sawEngine uint64
	s.charTestHook = func(ctx context.Context, key modelKey) error {
		sawSlots = len(s.sem)
		sawEngine = s.EngineFor("sequential").Snapshot().Events
		return nil
	}
	if err := s.Warm("arm", "LB"); err != nil {
		t.Fatal(err)
	}
	if sawSlots != 1 {
		t.Errorf("admission slots held during warm-up = %d, want 1", sawSlots)
	}
	if sawEngine != 0 {
		t.Errorf("sequential engine events before the warm campaign = %d, want 0", sawEngine)
	}
	if got := s.EngineFor("sequential").Snapshot().Events; got == 0 {
		t.Error("warm-up fed no events to the default (sequential) engine")
	}
	if got := s.EngineFor("goroutine").Snapshot().Events; got != 0 {
		t.Errorf("warm-up leaked %d events into the non-default engine", got)
	}
	if n := s.mChar.With("arm", "LB").Value(); n != 1 {
		t.Errorf("characterisations after warm-up = %d, want 1", n)
	}
	// The slot is returned: Warm again (cached, still takes and releases a
	// slot) and then saturate manually to prove capacity is back to 1.
	if err := s.Warm("arm", "LB"); err != nil {
		t.Fatal(err)
	}
	if len(s.sem) != 0 {
		t.Errorf("admission slots still held after warm-up: %d", len(s.sem))
	}
}
