package telemetry

// Request-scoped span trees. The span flight recorder (spans.go) is a
// per-process ring answering "what is this server doing right now"; a
// RequestTrace answers "what did this one request cost, and where" — the
// middleware opens it for sampled requests, handlers record
// decode/cache/characterize/evaluate/render children, a cold sampled
// characterisation attaches the engine's per-rank phase timeline, and
// the completed payload lands in the TraceStore, pullable by trace id
// via GET /debug/trace/{traceid}. The gateway fetches every shard's
// payload for one trace id and stitches them into a single Chrome-trace
// file (see internal/gateway and trace.WriteChromeProcesses).

import (
	"context"
	"sync"
	"time"

	"hybridperf/internal/trace"
)

// maxTraceSpans bounds one request's span list and maxTracePhases its
// attached engine timeline: a runaway handler cannot grow a sampled
// request's trace without bound (excess entries are dropped, the
// truncation is visible as a missing tail, not an error).
const (
	maxTraceSpans  = 512
	maxTracePhases = 16384
)

// TraceSpan is one recorded interval of a request, in wire form. Times
// are Unix microseconds, so payloads from different replicas stitch on
// one wall-clock axis (replicas share a host in tests and CI; across
// real machines the stitch is as good as their clock sync).
type TraceSpan struct {
	Name    string `json:"name"`
	Cat     string `json:"cat"`
	StartUS int64  `json:"start_us"`
	EndUS   int64  `json:"end_us"`
}

// TracePhase is one engine phase (virtual seconds) attached to a
// sampled request's characterisation run.
type TracePhase struct {
	Rank   int     `json:"rank"`
	Kind   string  `json:"kind"`
	StartS float64 `json:"start_s"`
	EndS   float64 `json:"end_s"`
}

// TracePayload is the pull-endpoint wire form of one hop's completed
// request trace.
type TracePayload struct {
	TraceID    string       `json:"trace_id"`
	Source     string       `json:"source"` // replica/gateway identity that recorded it
	Spans      []TraceSpan  `json:"spans"`
	PhaseLabel string       `json:"phase_label,omitempty"`
	Phases     []TracePhase `json:"phases,omitempty"`
}

// RequestTrace accumulates one sampled request's spans (and at most one
// engine phase timeline). All methods are safe on a nil receiver and
// no-ops there, so unsampled requests pay a nil check and nothing else.
type RequestTrace struct {
	tc TraceContext

	mu     sync.Mutex
	spans  []TraceSpan
	label  string
	phases []TracePhase
}

// NewRequestTrace opens a span tree for one sampled request.
func NewRequestTrace(tc TraceContext) *RequestTrace {
	return &RequestTrace{tc: tc}
}

// noopEnd is the shared span terminator handed out by nil receivers, so
// `defer rt.Span(...)()` costs no allocation when tracing is off.
var noopEnd = func() {}

// Span starts a child span and returns its terminator.
func (rt *RequestTrace) Span(cat, name string) func() {
	if rt == nil {
		return noopEnd
	}
	start := time.Now()
	return func() { rt.AddSpan(cat, name, start, time.Now()) }
}

// AddSpan records one completed interval.
func (rt *RequestTrace) AddSpan(cat, name string, start, end time.Time) {
	if rt == nil {
		return
	}
	rt.mu.Lock()
	if len(rt.spans) < maxTraceSpans {
		rt.spans = append(rt.spans, TraceSpan{
			Name: name, Cat: cat,
			StartUS: start.UnixMicro(), EndUS: end.UnixMicro(),
		})
	}
	rt.mu.Unlock()
}

// AttachPhases attaches an engine per-rank phase timeline (virtual
// seconds) under this request. The first attach wins — one request
// triggers at most one characterisation campaign, whose designated
// profiling run is the timeline worth keeping.
func (rt *RequestTrace) AttachPhases(label string, events []trace.Event) {
	if rt == nil || len(events) == 0 {
		return
	}
	if len(events) > maxTracePhases {
		events = events[:maxTracePhases]
	}
	phases := make([]TracePhase, len(events))
	for i, e := range events {
		phases[i] = TracePhase{Rank: e.Rank, Kind: e.Kind.String(), StartS: e.Start, EndS: e.End}
	}
	rt.mu.Lock()
	if rt.phases == nil {
		rt.label, rt.phases = label, phases
	}
	rt.mu.Unlock()
}

// Payload snapshots the completed trace in wire form.
func (rt *RequestTrace) Payload(source string) *TracePayload {
	if rt == nil {
		return nil
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return &TracePayload{
		TraceID:    rt.tc.TraceIDString(),
		Source:     source,
		Spans:      append([]TraceSpan(nil), rt.spans...),
		PhaseLabel: rt.label,
		Phases:     rt.phases,
	}
}

type reqTraceKey struct{}

// WithRequestTrace attaches a sampled request's span tree to its context.
func WithRequestTrace(ctx context.Context, rt *RequestTrace) context.Context {
	return context.WithValue(ctx, reqTraceKey{}, rt)
}

// RequestTraceFrom returns the request's span tree, nil when the request
// is unsampled (every RequestTrace method tolerates the nil).
func RequestTraceFrom(ctx context.Context) *RequestTrace {
	rt, _ := ctx.Value(reqTraceKey{}).(*RequestTrace)
	return rt
}

// TraceStore retains the most recent completed trace payloads by trace
// id — the backing store of GET /debug/trace/{traceid}. Insertion-order
// FIFO eviction: sampling is for on-demand inspection, not archival, so
// a small bounded window is the point.
type TraceStore struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*TracePayload
	order    []string
}

// NewTraceStore builds a store holding up to capacity payloads (<= 0
// means 256).
func NewTraceStore(capacity int) *TraceStore {
	if capacity <= 0 {
		capacity = 256
	}
	return &TraceStore{capacity: capacity, entries: map[string]*TracePayload{}}
}

// Put stores one payload, evicting the oldest past capacity. A second
// payload under one trace id (a retried request reusing its trace)
// replaces the first.
func (ts *TraceStore) Put(p *TracePayload) {
	if ts == nil || p == nil || p.TraceID == "" {
		return
	}
	ts.mu.Lock()
	if _, ok := ts.entries[p.TraceID]; !ok {
		ts.order = append(ts.order, p.TraceID)
		for len(ts.order) > ts.capacity {
			delete(ts.entries, ts.order[0])
			ts.order = ts.order[1:]
		}
	}
	ts.entries[p.TraceID] = p
	ts.mu.Unlock()
}

// Get returns the stored payload for a trace id.
func (ts *TraceStore) Get(traceID string) (*TracePayload, bool) {
	if ts == nil {
		return nil, false
	}
	ts.mu.Lock()
	p, ok := ts.entries[traceID]
	ts.mu.Unlock()
	return p, ok
}
