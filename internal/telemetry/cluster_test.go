package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hybridperf/internal/cluster"
)

// newShardPair starts two clustered replicas that know each other. The
// listeners must exist before SetCluster (peer URLs are the ring
// identities), so the servers are mounted first and clustered second —
// the same order the daemon's main follows.
func newShardPair(t *testing.T) (sA, sB *Server, tsA, tsB *httptest.Server) {
	t.Helper()
	mk := func() (*Server, *httptest.Server) {
		s := NewServer(Config{
			Workers:       2,
			Seed:          42,
			ResponseCache: 64,
			Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		})
		s.SetReady(true)
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		return s, ts
	}
	sA, tsA = mk()
	sB, tsB = mk()
	peers := []string{tsA.URL, tsB.URL}
	for _, pair := range []struct {
		s    *Server
		self string
	}{{sA, tsA.URL}, {sB, tsB.URL}} {
		if err := pair.s.SetCluster(pair.self, peers); err != nil {
			t.Fatal(err)
		}
	}
	return sA, sB, tsA, tsB
}

// keyOwnedBy returns a (system, program) pair the ring assigns to owner.
func keyOwnedBy(t *testing.T, peers []string, owner string) (string, string) {
	t.Helper()
	ring, err := cluster.New(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []string{"xeon", "arm"} {
		for _, prog := range []string{"SP", "CP", "LB"} {
			if ring.Owner(cluster.ModelKey(sys, prog)) == owner {
				return sys, prog
			}
		}
	}
	t.Fatalf("no catalogue key hashes to %s — ring imbalance beyond the catalogue size", owner)
	return "", ""
}

func predictBody(sys, prog string) string {
	freq := 1.8
	if sys == "arm" {
		freq = 1.4
	}
	return fmt.Sprintf(`{"system":%q,"program":%q,"class":"A","nodes":2,"cores":2,"freq_ghz":%g}`, sys, prog, freq)
}

// TestForwardedPredictMatchesDirect: a predict sent to the non-owning
// replica is forwarded to the owner and the client sees exactly what the
// owner would have served directly — same bytes, and the shard header
// names the owner, not the proxy.
func TestForwardedPredictMatchesDirect(t *testing.T) {
	sA, sB, tsA, tsB := newShardPair(t)
	sys, prog := keyOwnedBy(t, []string{tsA.URL, tsB.URL}, tsB.URL)
	body := predictBody(sys, prog)

	respDirect, rawDirect := postJSON(t, tsB.URL+"/v1/predict", body)
	if respDirect.StatusCode != http.StatusOK {
		t.Fatalf("direct predict status %d: %s", respDirect.StatusCode, rawDirect)
	}
	respFwd, rawFwd := postJSON(t, tsA.URL+"/v1/predict", body)
	if respFwd.StatusCode != http.StatusOK {
		t.Fatalf("forwarded predict status %d: %s", respFwd.StatusCode, rawFwd)
	}
	if !bytes.Equal(rawDirect, rawFwd) {
		t.Errorf("forwarded response differs from the owner's direct one:\ndirect:    %s\nforwarded: %s",
			rawDirect, rawFwd)
	}
	if got := respFwd.Header.Get("X-Hybridperf-Shard"); got != tsB.URL {
		t.Errorf("X-Hybridperf-Shard = %q, want the owner %q", got, tsB.URL)
	}
	if n := sA.mForwards.With(tsB.URL).Value(); n != 1 {
		t.Errorf("proxy counted %d forwards to the owner, want 1", n)
	}
	// The proxy never characterised: the model lives only on the owner.
	if n := sA.mChar.With(sys, prog).Value(); n != 0 {
		t.Errorf("proxy ran %d campaigns for a forwarded key, want 0", n)
	}
	if n := sB.mChar.With(sys, prog).Value(); n != 1 {
		t.Errorf("owner ran %d campaigns, want 1", n)
	}
}

// TestForwardedHeaderForcesLocal: a request already carrying
// X-Hybridperf-Forwarded is served where it lands, whoever owns the key —
// the loop-prevention rule, and the operator escape hatch for probing one
// replica's own cache.
func TestForwardedHeaderForcesLocal(t *testing.T) {
	sA, _, tsA, tsB := newShardPair(t)
	sys, prog := keyOwnedBy(t, []string{tsA.URL, tsB.URL}, tsB.URL)

	req, err := http.NewRequest(http.MethodPost, tsA.URL+"/v1/predict", strings.NewReader(predictBody(sys, prog)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Hybridperf-Forwarded", "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forced-local predict status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Hybridperf-Shard"); got != tsA.URL {
		t.Errorf("X-Hybridperf-Shard = %q, want the local replica %q", got, tsA.URL)
	}
	if n := sA.mForwards.With(tsB.URL).Value(); n != 0 {
		t.Errorf("forced-local request was forwarded %d times, want 0 (loop prevention)", n)
	}
	if n := sA.mChar.With(sys, prog).Value(); n != 1 {
		t.Errorf("local replica ran %d campaigns for the forced key, want 1", n)
	}
}

// TestForwardFallsBackWhenPeerDown: ownership is advisory — when the
// owning replica is unreachable the proxy serves the request itself
// (campaigns are deterministic, so the answer is identical) and counts
// the failed hop.
func TestForwardFallsBackWhenPeerDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()

	s := NewServer(Config{
		Workers:       2,
		Seed:          42,
		ResponseCache: 64,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if err := s.SetCluster(ts.URL, []string{ts.URL, deadURL}); err != nil {
		t.Fatal(err)
	}
	sys, prog := keyOwnedBy(t, []string{ts.URL, deadURL}, deadURL)

	resp, raw := postJSON(t, ts.URL+"/v1/predict", predictBody(sys, prog))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict with dead owner: status %d: %s", resp.StatusCode, raw)
	}
	if got := resp.Header.Get("X-Hybridperf-Shard"); got != ts.URL {
		t.Errorf("X-Hybridperf-Shard = %q, want the surviving replica %q", got, ts.URL)
	}
	if n := s.mForwardErrs.With(deadURL).Value(); n != 1 {
		t.Errorf("failed hops to the dead owner = %d, want 1", n)
	}
	if n := s.mChar.With(sys, prog).Value(); n != 1 {
		t.Errorf("surviving replica ran %d campaigns, want 1 (local fallback)", n)
	}
}

// TestBatchForwardsWhenSingleOwner: a batch whose every tuple one remote
// replica owns forwards whole and matches the owner's direct answer; a
// mixed-ownership batch is served where it lands.
func TestBatchForwardsWhenSingleOwner(t *testing.T) {
	sA, _, tsA, tsB := newShardPair(t)
	peers := []string{tsA.URL, tsB.URL}
	sys, prog := keyOwnedBy(t, peers, tsB.URL)
	freq := 1.8
	if sys == "arm" {
		freq = 1.4
	}
	single := fmt.Sprintf(`{"class":"A","tuples":[
		{"system":%q,"program":%q,"nodes":1,"cores":2,"freq_ghz":%g},
		{"system":%q,"program":%q,"nodes":2,"cores":2,"freq_ghz":%g}
	]}`, sys, prog, freq, sys, prog, freq)

	respDirect, rawDirect := postJSON(t, tsB.URL+"/v1/batch", single)
	if respDirect.StatusCode != http.StatusOK {
		t.Fatalf("direct batch status %d: %s", respDirect.StatusCode, rawDirect)
	}
	respFwd, rawFwd := postJSON(t, tsA.URL+"/v1/batch", single)
	if respFwd.StatusCode != http.StatusOK {
		t.Fatalf("forwarded batch status %d: %s", respFwd.StatusCode, rawFwd)
	}
	if !bytes.Equal(rawDirect, rawFwd) {
		t.Errorf("forwarded batch differs from the owner's direct answer")
	}
	if n := sA.mForwards.With(tsB.URL).Value(); n != 1 {
		t.Errorf("single-owner batch forwarded %d times, want 1", n)
	}

	// Mixed ownership: one tuple per replica's keys. Served locally.
	sysA, progA := keyOwnedBy(t, peers, tsA.URL)
	freqA := 1.8
	if sysA == "arm" {
		freqA = 1.4
	}
	mixed := fmt.Sprintf(`{"class":"A","tuples":[
		{"system":%q,"program":%q,"nodes":1,"cores":2,"freq_ghz":%g},
		{"system":%q,"program":%q,"nodes":1,"cores":2,"freq_ghz":%g}
	]}`, sys, prog, freq, sysA, progA, freqA)
	resp, raw := postJSON(t, tsA.URL+"/v1/batch", mixed)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch status %d: %s", resp.StatusCode, raw)
	}
	if n := sA.mForwards.With(tsB.URL).Value(); n != 1 {
		t.Errorf("mixed-ownership batch forwarded (total forwards %d, want still 1)", n)
	}
}
