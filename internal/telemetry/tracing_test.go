package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"hybridperf/internal/exec"
)

// newTracedServer builds a ready server sampling every locally minted
// trace (TraceSample 1), as the integration tests need deterministic
// sampling rather than a coin flip.
func newTracedServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(Config{
		Workers:       2,
		Seed:          42,
		ResponseCache: 128,
		TraceSample:   1,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// getTracePayload pulls one hop's span payload for a trace id.
func getTracePayload(t *testing.T, base, traceID string) (*TracePayload, int) {
	t.Helper()
	resp, err := http.Get(base + "/debug/trace/" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var p TracePayload
	if err := json.Unmarshal(raw, &p); err != nil {
		t.Fatalf("trace payload unparseable: %v\n%s", err, raw)
	}
	return &p, resp.StatusCode
}

func spanNames(p *TracePayload) []string {
	names := make([]string, len(p.Spans))
	for i, s := range p.Spans {
		names[i] = s.Cat + ":" + s.Name
	}
	return names
}

func hasSpan(p *TracePayload, cat, namePrefix string) bool {
	for _, s := range p.Spans {
		if s.Cat == cat && strings.HasPrefix(s.Name, namePrefix) {
			return true
		}
	}
	return false
}

// TestSampledPredictTracePayload: a cold predict on a sampling server
// leaves a pullable payload behind — http root, decode, the
// characterisation and predict model spans, render — with the engine's
// per-rank phase timeline attached, all under the trace id the response
// headers advertised.
func TestSampledPredictTracePayload(t *testing.T) {
	_, ts := newTracedServer(t)
	body := `{"system":"xeon","program":"SP","class":"A","nodes":2,"cores":2,"freq_ghz":1.8}`
	resp, raw := postJSON(t, ts.URL+"/v1/predict", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp.StatusCode, raw)
	}
	tc, ok := ParseTraceparent(resp.Header.Get(TraceparentHeader))
	if !ok {
		t.Fatalf("response traceparent unparseable: %q", resp.Header.Get(TraceparentHeader))
	}
	if !tc.Sampled {
		t.Fatal("TraceSample=1 server minted an unsampled trace")
	}
	if want := tc.RequestID(); resp.Header.Get("X-Request-Id") != want {
		t.Errorf("X-Request-Id = %q, want the trace-derived %q", resp.Header.Get("X-Request-Id"), want)
	}

	p, status := getTracePayload(t, ts.URL, tc.TraceIDString())
	if status != http.StatusOK {
		t.Fatalf("/debug/trace/%s: status %d", tc.TraceIDString(), status)
	}
	if p.TraceID != tc.TraceIDString() {
		t.Errorf("payload trace id %q, want %q", p.TraceID, tc.TraceIDString())
	}
	if p.Source != "hybridperfd" {
		t.Errorf("unclustered source %q, want hybridperfd", p.Source)
	}
	for _, want := range [][2]string{
		{"http", "POST /v1/predict"},
		{"handler", "decode"},
		{"model", "characterize xeon/SP"},
		{"model", "predict xeon/SP"},
		{"handler", "render"},
	} {
		if !hasSpan(p, want[0], want[1]) {
			t.Errorf("missing span %s:%s in %v", want[0], want[1], spanNames(p))
		}
	}
	if len(p.Phases) == 0 {
		t.Error("cold sampled characterisation attached no engine phases")
	}
	if p.PhaseLabel == "" {
		t.Error("attached phases carry no label")
	}
	for _, ph := range p.Phases {
		if ph.Kind != "compute" && ph.Kind != "network" && ph.Kind != "memstall" {
			t.Fatalf("unknown phase kind %q", ph.Kind)
		}
	}
	// Every child nests inside the root span's interval.
	var root *TraceSpan
	for i := range p.Spans {
		if p.Spans[i].Cat == "http" {
			root = &p.Spans[i]
		}
	}
	if root == nil {
		t.Fatal("no http root span")
	}
	for _, s := range p.Spans {
		if s.StartUS < root.StartUS || s.EndUS > root.EndUS {
			t.Errorf("span %s:%s [%d,%d] escapes the root [%d,%d]",
				s.Cat, s.Name, s.StartUS, s.EndUS, root.StartUS, root.EndUS)
		}
	}
}

// TestArmedButUnsampledBitIdentical: a flags-00 traceparent on a
// TraceSample=1 server must not sample — the edge that minted the trace
// decided — and the body must be byte-identical to a tracing-off
// server's, the zero-cost-when-off contract.
func TestArmedButUnsampledBitIdentical(t *testing.T) {
	_, armed := newTracedServer(t)
	_, off := newTestServer(t) // TraceSample 0

	tc := NewTrace(false)
	body := `{"system":"arm","program":"CP","class":"A","nodes":2,"cores":2,"freq_ghz":1.4}`
	req, err := http.NewRequest(http.MethodPost, armed.URL+"/v1/predict", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceparentHeader, tc.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	rawArmed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("armed predict: status %d: %s", resp.StatusCode, rawArmed)
	}
	back, ok := ParseTraceparent(resp.Header.Get(TraceparentHeader))
	if !ok || back.Sampled {
		t.Errorf("hop escalated the edge's unsampled decision: %q", resp.Header.Get(TraceparentHeader))
	}
	if back.TraceID != tc.TraceID {
		t.Error("hop replaced the incoming trace id")
	}
	if _, status := getTracePayload(t, armed.URL, tc.TraceIDString()); status != http.StatusNotFound {
		t.Errorf("unsampled request left a payload behind (status %d, want 404)", status)
	}

	respOff, rawOff := postJSON(t, off.URL+"/v1/predict", body)
	if respOff.StatusCode != http.StatusOK {
		t.Fatalf("tracing-off predict: status %d: %s", respOff.StatusCode, rawOff)
	}
	if string(rawArmed) != string(rawOff) {
		t.Errorf("armed-but-unsampled body differs from tracing-off body:\narmed: %s\noff:   %s", rawArmed, rawOff)
	}
}

// TestTraceByIDUnknown: an id nobody recorded is a 404 with the JSON
// error envelope, not an empty stitch.
func TestTraceByIDUnknown(t *testing.T) {
	_, ts := newTracedServer(t)
	resp, err := http.Get(ts.URL + "/debug/trace/deadbeefdeadbeefdeadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404: %s", resp.StatusCode, raw)
	}
	errorEnvelope(t, resp, raw)
}

// TestAttributionHeadersMatchBody: the cost headers are exact 'g'-format
// renderings of the body's own numbers — one prediction's time/energy on
// /v1/predict, the float-exact sum over results on /v1/batch — and a
// cache hit replays the attribution of the body it replays, bit for bit.
func TestAttributionHeadersMatchBody(t *testing.T) {
	s, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/predict", `{"system":"xeon","program":"SP","class":"A","nodes":2,"cores":4,"freq_ghz":1.8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp.StatusCode, raw)
	}
	var pred struct {
		TimeS   float64 `json:"time_s"`
		EnergyJ float64 `json:"energy_j"`
	}
	if err := json.Unmarshal(raw, &pred); err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get(PredictionsHeader); got != "1" {
		t.Errorf("%s = %q, want 1", PredictionsHeader, got)
	}
	if got, want := resp.Header.Get(SimSecondsHeader), strconv.FormatFloat(pred.TimeS, 'g', -1, 64); got != want {
		t.Errorf("%s = %q, body says %q", SimSecondsHeader, got, want)
	}
	if got, want := resp.Header.Get(EnergyHeader), strconv.FormatFloat(pred.EnergyJ, 'g', -1, 64); got != want {
		t.Errorf("%s = %q, body says %q", EnergyHeader, got, want)
	}
	engine := s.DefaultEngine()
	if n := s.attrib["/v1/predict"][engine].preds.Value(); n != 1 {
		t.Errorf("predictions series = %d, want 1", n)
	}
	if v := s.attrib["/v1/predict"][engine].energy.Value(); v != pred.EnergyJ {
		t.Errorf("energy series = %g, want %g", v, pred.EnergyJ)
	}

	batch := `{"class":"A","tuples":[
		{"system":"xeon","program":"SP","nodes":1,"cores":2,"freq_ghz":1.8},
		{"system":"xeon","program":"SP","nodes":2,"cores":2,"freq_ghz":1.8},
		{"system":"arm","program":"CP","nodes":2,"cores":2,"freq_ghz":1.4}
	]}`
	checkBatch := func(label string) (hdr [3]string) {
		resp, raw := postJSON(t, ts.URL+"/v1/batch", batch)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s batch: status %d: %s", label, resp.StatusCode, raw)
		}
		var doc struct {
			Results []struct {
				TimeS   float64 `json:"time_s"`
				EnergyJ float64 `json:"energy_j"`
			} `json:"results"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatal(err)
		}
		// Sum in canonical body order — the same order the server summed
		// in, so float addition associates identically.
		var simS, energyJ float64
		for _, r := range doc.Results {
			simS += r.TimeS
			energyJ += r.EnergyJ
		}
		if got, want := resp.Header.Get(PredictionsHeader), strconv.Itoa(len(doc.Results)); got != want {
			t.Errorf("%s batch %s = %q, body has %s results", label, PredictionsHeader, got, want)
		}
		if got, want := resp.Header.Get(SimSecondsHeader), strconv.FormatFloat(simS, 'g', -1, 64); got != want {
			t.Errorf("%s batch %s = %q, body sums to %q", label, SimSecondsHeader, got, want)
		}
		if got, want := resp.Header.Get(EnergyHeader), strconv.FormatFloat(energyJ, 'g', -1, 64); got != want {
			t.Errorf("%s batch %s = %q, body sums to %q", label, EnergyHeader, got, want)
		}
		hdr[0] = resp.Header.Get(PredictionsHeader)
		hdr[1] = resp.Header.Get(SimSecondsHeader)
		hdr[2] = resp.Header.Get(EnergyHeader)
		return hdr
	}
	cold := checkBatch("cold")
	warm := checkBatch("cached") // replayed from the response cache
	if cold != warm {
		t.Errorf("cache hit changed the attribution: cold %v, warm %v", cold, warm)
	}
	if n := s.attrib["/v1/batch"][engine].preds.Value(); n != 6 {
		t.Errorf("batch predictions series = %d, want 6 (3 cold + 3 replayed)", n)
	}
}

// TestAttributionSeriesExposed: the aggregate families appear on /metrics
// with per-(route, engine) labels once a prediction is served.
func TestAttributionSeriesExposed(t *testing.T) {
	_, ts := newTestServer(t)
	if resp, raw := postJSON(t, ts.URL+"/v1/predict", `{"system":"xeon","program":"SP","class":"A","nodes":1,"cores":2,"freq_ghz":1.8}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: status %d: %s", resp.StatusCode, raw)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	for _, fam := range []string{
		"hybridperf_predictions_served_total",
		"hybridperf_simulated_seconds_total",
		"hybridperf_predicted_energy_joules_total",
	} {
		needle := fmt.Sprintf(`%s{engine="%s",route="/v1/predict"}`, fam, exec.EngineGoroutine)
		alt := fmt.Sprintf(`%s{route="/v1/predict",engine=`, fam)
		if !strings.Contains(string(raw), needle) && !strings.Contains(string(raw), alt) {
			t.Errorf("/metrics missing %s for /v1/predict:\n%s", fam, grepLines(raw, fam))
		}
	}
}

func grepLines(raw []byte, needle string) string {
	var b strings.Builder
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.Contains(line, needle) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestForwardPropagatesTrace: a sampled request landing on the
// non-owning replica forwards with the same trace id — so both the proxy
// hop and the owner hop leave payloads pullable under one id, each from
// its own source, which is exactly what the gateway stitch relies on.
func TestForwardPropagatesTrace(t *testing.T) {
	_, _, tsA, tsB := newShardPair(t)
	sys, prog := keyOwnedBy(t, []string{tsA.URL, tsB.URL}, tsB.URL)

	tc := NewTrace(true)
	req, err := http.NewRequest(http.MethodPost, tsA.URL+"/v1/predict", strings.NewReader(predictBody(sys, prog)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceparentHeader, tc.Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded sampled predict: status %d: %s", resp.StatusCode, raw)
	}
	id := tc.TraceIDString()
	pA, status := getTracePayload(t, tsA.URL, id)
	if status != http.StatusOK {
		t.Fatalf("proxy hop recorded nothing for %s (status %d)", id, status)
	}
	pB, status := getTracePayload(t, tsB.URL, id)
	if status != http.StatusOK {
		t.Fatalf("owner hop recorded nothing for %s (status %d)", id, status)
	}
	if pA.Source != tsA.URL || pB.Source != tsB.URL {
		t.Errorf("payload sources %q/%q, want the shard identities %q/%q", pA.Source, pB.Source, tsA.URL, tsB.URL)
	}
	if !hasSpan(pB, "model", "characterize ") {
		t.Errorf("owner's payload has no characterisation span: %v", spanNames(pB))
	}
	if len(pB.Phases) == 0 {
		t.Error("owner's cold characterisation attached no phases")
	}
	if hasSpan(pA, "model", "characterize ") {
		t.Errorf("proxy characterised a forwarded key: %v", spanNames(pA))
	}
}
