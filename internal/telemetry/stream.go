package telemetry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// streamFlushEvery is how many NDJSON lines are written between two
// explicit flushes: frequent enough that a client renders the frontier
// incrementally, rare enough that flushing doesn't dominate large batch
// answers.
const streamFlushEvery = 32

// wantStream reports whether the client opted into NDJSON streaming, via
// `Accept: application/x-ndjson` or a `stream=1` query parameter.
func wantStream(r *http.Request) bool {
	switch r.URL.Query().Get("stream") {
	case "1", "true":
		return true
	}
	return strings.Contains(r.Header.Get("Accept"), "application/x-ndjson")
}

// mustJSON marshals a response fragment that is built from already
// validated data; a marshal failure is a programming error, not a request
// error.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("telemetry: marshalling response fragment: %v", err))
	}
	return b
}

// cachedDo runs compute through the response cache when one is
// configured — cache hit, singleflight collapse, or leader compute — and
// directly otherwise.
func (s *Server) cachedDo(ctx context.Context, key string, compute func() (*cachedResponse, error)) (*cachedResponse, cacheStatus, error) {
	if s.respCache == nil {
		resp, err := compute()
		return resp, cacheBypass, err
	}
	return s.respCache.do(ctx, key, compute)
}

// writeCached serves a computed or cached response in the shape the
// client asked for: the canonical JSON document, or its NDJSON line
// sequence with periodic flushes (and an early stop once the client is
// gone). The cache status is surfaced as X-Response-Cache and annotated
// onto the access-log line, and the response's stored cost attribution is
// stamped on — identically whether the body was just computed or replayed
// from the cache.
func (s *Server) writeCached(w http.ResponseWriter, r *http.Request, route, engine string, resp *cachedResponse, status cacheStatus) {
	annotate(r.Context(), slog.String("cache", string(status)))
	w.Header().Set("X-Response-Cache", string(status))
	s.applyAttribution(w, r, route, engine, resp.attr)
	if !wantStream(r) {
		w.Header().Set("Content-Type", "application/json")
		w.Write(resp.body)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	done := r.Context().Done()
	for i, line := range resp.lines {
		select {
		case <-done:
			return // client gone: shed the rest of the stream
		default:
		}
		w.Write(line)
		w.Write([]byte{'\n'})
		if flusher != nil && (i+1)%streamFlushEvery == 0 {
			flusher.Flush()
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
}

// respondCached is the shared tail of the cacheable handlers (/v1/sweep,
// /v1/batch): run compute through the cache, map compute errors to the
// same statuses the uncached paths used (429 shed, 503 interrupted, 500
// otherwise), and serve the answer in the requested shape.
func (s *Server) respondCached(w http.ResponseWriter, r *http.Request, route, engine, key string, compute func() (*cachedResponse, error)) {
	lookup := time.Now()
	resp, status, err := s.cachedDo(r.Context(), key, compute)
	if err != nil {
		annotate(r.Context(), slog.String("cache", string(status)))
		if errors.Is(err, errSaturated) {
			s.reject(w, route)
			return
		}
		if interrupted(w, err) {
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	// A hit (or a collapse onto someone else's compute) is pure cache
	// time from this request's point of view; on a miss the compute
	// closure records its own characterize/evaluate/render children over
	// the same interval instead.
	if status == cacheHit || status == cacheCollapsed {
		if rt := RequestTraceFrom(r.Context()); rt != nil {
			rt.AddSpan("handler", "cache-lookup", lookup, time.Now())
		}
	}
	s.writeCached(w, r, route, engine, resp, status)
}
