package telemetry

// Per-request cost attribution: every model-serving response reports how
// much simulated work it carried — prediction count, simulated seconds,
// predicted energy — as response headers, access-log attributes, and
// per-(route, engine) counter series. The numbers are computed once when
// a response body is built and stored alongside it (pre-formatted), so
// cache hits repeat the attribution of the response they replay without
// re-deriving or re-formatting anything.

import (
	"math/rand"
	"net/http"
	"strconv"
)

// Attribution response headers (exported: the gateway stamps the same
// headers on merged answers). Values are strconv.FormatFloat 'g' -1
// renderings of the exact float64 sums over the response body, so a
// client can cross-check headers against the body it received.
const (
	PredictionsHeader = "X-Hybridperf-Predictions"
	SimSecondsHeader  = "X-Hybridperf-Sim-Seconds"
	EnergyHeader      = "X-Hybridperf-Energy-Joules"
)

// attribution is one response's cost summary with its header renderings.
type attribution struct {
	preds      int
	simSeconds float64
	energyJ    float64

	predsStr, simStr, energyStr string

	// Header value slices over one shared backing array, capped so a later
	// Header.Add reallocates instead of scribbling into a neighbour.
	// Assigning them into the header map directly replays a cached
	// response's attribution with zero per-request header allocations.
	predsV, simV, energyV []string
}

func makeAttribution(preds int, simSeconds, energyJ float64) attribution {
	vals := []string{
		strconv.Itoa(preds),
		strconv.FormatFloat(simSeconds, 'g', -1, 64),
		strconv.FormatFloat(energyJ, 'g', -1, 64),
	}
	return attribution{
		preds:      preds,
		simSeconds: simSeconds,
		energyJ:    energyJ,
		predsStr:   vals[0],
		simStr:     vals[1],
		energyStr:  vals[2],
		predsV:     vals[0:1:1],
		simV:       vals[1:2:2],
		energyV:    vals[2:3:3],
	}
}

// attribSeries is the pre-resolved counter triple for one (route, engine).
type attribSeries struct {
	preds  *Counter
	simS   *FloatCounter
	energy *FloatCounter
}

// applyAttribution stamps one response's cost summary onto the response
// headers, the access-log line, and the aggregate series. A zero-value
// attribution (an error path that never built a body) is a no-op.
func (s *Server) applyAttribution(w http.ResponseWriter, r *http.Request, route, engine string, a attribution) {
	if a.predsStr == "" {
		return
	}
	// Direct map assignment: the keys are already in canonical form, and
	// the value slices are pre-built (shared, append-safe via their caps).
	h := w.Header()
	h[PredictionsHeader] = a.predsV
	h[SimSecondsHeader] = a.simV
	h[EnergyHeader] = a.energyV
	if ann, _ := r.Context().Value(annotationsKey{}).(*annotations); ann != nil {
		ann.mu.Lock()
		ann.attr = a
		ann.mu.Unlock()
	}
	if set, ok := s.attrib[route][engine]; ok {
		set.preds.Add(uint64(a.preds))
		set.simS.Add(a.simSeconds)
		set.energy.Add(a.energyJ)
	}
}

// sampleTrace decides whether a locally minted trace records spans.
func (s *Server) sampleTrace() bool {
	p := s.cfg.TraceSample
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return rand.Float64() < p
}

// traceSource names this hop in stitched traces: the shard name when
// clustered, the daemon otherwise.
func (s *Server) traceSource() string {
	if s.self != "" {
		return s.self
	}
	return "hybridperfd"
}

// handleTraceByID serves GET /debug/trace/{traceid}: the completed span
// payload one sampled request left behind on this replica. The gateway
// pulls this from every shard to stitch one cross-process trace.
func (s *Server) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("traceid")
	p, ok := s.traces.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown trace id %q (sampled traces only, bounded retention)", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(mustJSON(p))
}
