package telemetry

import (
	"testing"

	"hybridperf/internal/machine"
)

func ct(system, program string, nodes, cores int, freq float64) canonTuple {
	return canonTuple{system: system, program: program,
		cfg: machine.Config{Nodes: nodes, Cores: cores, Freq: freq}}
}

// TestCanonicalizeTuples: sorting is total over all five coordinates and
// duplicates collapse, so any permutation (with repeats) of one tuple set
// canonicalises to the same list.
func TestCanonicalizeTuples(t *testing.T) {
	a := ct("arm", "CP", 1, 2, 1.4e9)
	b := ct("arm", "CP", 1, 2, 1.6e9)
	c := ct("arm", "LB", 1, 1, 1.4e9)
	d := ct("xeon", "SP", 4, 8, 1.8e9)
	want := []canonTuple{a, b, c, d}

	perms := [][]canonTuple{
		{a, b, c, d},
		{d, c, b, a},
		{c, a, d, b},
		{d, d, a, c, b, a, b, c}, // repeats collapse
	}
	for i, p := range perms {
		got := canonicalizeTuples(append([]canonTuple(nil), p...))
		if len(got) != len(want) {
			t.Fatalf("perm %d: %d tuples, want %d: %+v", i, len(got), len(want), got)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("perm %d: tuple %d = %+v, want %+v", i, j, got[j], want[j])
			}
		}
	}
}

// TestBatchCacheKeyCanonical: reordered and duplicated tuple lists produce
// one key; any coordinate change produces a different key.
func TestBatchCacheKeyCanonical(t *testing.T) {
	base := []canonTuple{ct("xeon", "SP", 1, 1, 1.8e9), ct("xeon", "SP", 2, 4, 2.0e9)}
	shuffled := []canonTuple{base[1], base[0], base[0], base[1]}
	k1 := batchCacheKey("A", canonicalizeTuples(append([]canonTuple(nil), base...)))
	k2 := batchCacheKey("A", canonicalizeTuples(shuffled))
	if k1 != k2 {
		t.Errorf("shuffled+duplicated tuple list changed the key:\n%s\n%s", k1, k2)
	}
	variants := [][]canonTuple{
		{base[0]},                                // fewer tuples
		{base[0], ct("xeon", "SP", 2, 4, 2.2e9)}, // different freq
		{base[0], ct("xeon", "SP", 2, 5, 2.0e9)}, // different cores
		{base[0], ct("xeon", "SP", 3, 4, 2.0e9)}, // different nodes
		{base[0], ct("xeon", "LB", 2, 4, 2.0e9)}, // different program
		{base[0], ct("arm", "SP", 2, 4, 2.0e9)},  // different system
	}
	seen := map[string]int{k1: -1}
	for i, v := range variants {
		k := batchCacheKey("A", canonicalizeTuples(v))
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with variant %d", i, prev)
		}
		seen[k] = i
	}
	if k := batchCacheKey("B", canonicalizeTuples(append([]canonTuple(nil), base...))); k == k1 {
		t.Error("class change did not change the key")
	}
}

// TestSweepCacheKeyCanonical: the sweep key separates every knob that
// changes the answer and nothing else.
func TestSweepCacheKeyCanonical(t *testing.T) {
	base := sweepCacheKey("xeon", "SP", "A", 16, true, 0, 0)
	if again := sweepCacheKey("xeon", "SP", "A", 16, true, 0, 0); again != base {
		t.Error("identical sweep coordinates keyed differently")
	}
	variants := []string{
		sweepCacheKey("arm", "SP", "A", 16, true, 0, 0),
		sweepCacheKey("xeon", "LB", "A", 16, true, 0, 0),
		sweepCacheKey("xeon", "SP", "B", 16, true, 0, 0),
		sweepCacheKey("xeon", "SP", "A", 8, true, 0, 0),
		sweepCacheKey("xeon", "SP", "A", 16, false, 0, 0),
		sweepCacheKey("xeon", "SP", "A", 16, true, 1.5, 0),
		sweepCacheKey("xeon", "SP", "A", 16, true, 0, 2.5),
	}
	seen := map[string]int{base: -1}
	for i, k := range variants {
		if prev, dup := seen[k]; dup {
			t.Errorf("sweep variant %d collides with %d: %q", i, prev, k)
		}
		seen[k] = i
	}
}
