package telemetry

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hybridperf/internal/characterize"
	"hybridperf/internal/cluster"
	"hybridperf/internal/core"
	"hybridperf/internal/dvfs"
	"hybridperf/internal/exec"
	"hybridperf/internal/machine"
	"hybridperf/internal/metrics"
	"hybridperf/internal/modelstore"
	"hybridperf/internal/pareto"
	"hybridperf/internal/workload"
)

// maxSweepNodes bounds /v1/sweep requests: the model happily extrapolates
// to thousands of nodes, but an unbounded max_nodes would let one request
// allocate an arbitrarily large configuration space.
const maxSweepNodes = 1024

// Config tunes the prediction service.
type Config struct {
	// Workers is the characterisation/sweep parallelism (<= 0 means
	// GOMAXPROCS).
	Workers int
	// Seed seeds every characterisation campaign, so two daemons with the
	// same seed serve bit-identical predictions. Zero is a valid seed.
	Seed int64
	// Logger receives the structured request log (nil = slog.Default()).
	Logger *slog.Logger
	// SpanCapacity bounds the span flight recorder (<= 0 means 4096).
	SpanCapacity int
	// MaxCampaigns bounds the heavy work admitted concurrently —
	// characterisation campaigns and sweep evaluations (<= 0 means 4).
	// Excess requests are shed with 429 + Retry-After instead of
	// queueing, so saturation surfaces at the client immediately rather
	// than as unbounded latency.
	MaxCampaigns int
	// RequestTimeout, when > 0, bounds every instrumented request with
	// context.WithTimeout; expiry cancels in-flight characterisations
	// and sweeps mid-simulation and the request fails 503 with
	// Retry-After. /debug/trace is exempt (it legitimately blocks for
	// its recording window). Zero disables the per-request deadline.
	RequestTimeout time.Duration
	// AdviseMaxSlowdown is the default makespan tolerance for /v1/advise
	// requests that omit max_slowdown_pct, as a fraction (<= 0 means
	// 0.05). Must be < 1; a larger value panics in NewServer.
	AdviseMaxSlowdown float64
	// DefaultEngine is the simulation engine used by requests that omit
	// the "engine" field (see exec.Engines). Empty resolves through
	// exec.DefaultEngine ($HYBRIDPERF_ENGINE, then the goroutine
	// engine); an unknown name panics in NewServer — validate
	// user-supplied values with exec.ValidateEngine first.
	DefaultEngine string
	// ResponseCache, when > 0, enables the /v1/sweep + /v1/batch response
	// cache with that many entries (LRU) and collapses identical
	// in-flight requests onto one computation. Zero disables the cache
	// entirely, including the singleflight collapse.
	ResponseCache int
	// ResponseCacheTTL bounds how long a cached response is served before
	// it is recomputed; zero means entries never expire. Responses are
	// deterministic for a fixed seed, so the TTL is about bounding memory
	// held by stale keys, not staleness of the data.
	ResponseCacheTTL time.Duration
	// TraceSample is the fraction of locally originated requests that
	// record a request-scoped span tree (0 = never, the default; 1 =
	// always). Requests arriving with a traceparent header inherit the
	// sender's sampling decision instead — the edge that minted the trace
	// controls the whole chain. Sampling is purely observational: sampled
	// and unsampled responses are byte-identical.
	TraceSample float64
	// ModelStore, when non-nil, persists characterisation summaries: every
	// successful campaign writes a snapshot, and NewServer warm-loads every
	// snapshot matching this server's seed and model version — so a
	// restarted (or newly added) replica answers its first predict without
	// re-running campaigns, bit-identical to the cold path. Snapshot
	// problems are never fatal: corrupt or stale entries are skipped and
	// counted on hybridperf_model_store_load_errors_total.
	ModelStore *modelstore.Store
}

// Server is the hybridperfd prediction service: models characterised
// lazily per (system, program) pair and cached for the process lifetime,
// wrapped in the telemetry stack (exposition, request logging, spans,
// pprof). Create with NewServer, mount with Handler.
type Server struct {
	cfg         Config
	log         *slog.Logger
	reg         *Registry
	defEngine   string                     // resolved engine for requests that omit one
	advSlowdown float64                    // resolved default /v1/advise makespan tolerance
	engines     map[string]*metrics.Engine // shared engine counters per engine mode
	spans       *Spans
	start       time.Time
	ready       atomic.Bool

	// traces retains completed sampled request traces for the
	// GET /debug/trace/{traceid} pull endpoint.
	traces *TraceStore

	// attrib pre-resolves the per-(route, engine) cost-attribution series
	// so the serving path records them without a label lookup.
	attrib map[string]map[string]attribSeries

	mu     sync.Mutex
	models map[modelKey]*modelEntry

	// sem is the admission-control semaphore: one slot per concurrently
	// admitted characterisation campaign or sweep/batch evaluation.
	sem chan struct{}

	// respCache caches rendered /v1/sweep and /v1/batch responses by
	// canonicalised request key; nil when Config.ResponseCache <= 0.
	respCache *responseCache

	// batchMemo short-circuits exact-byte repeats of /v1/batch bodies to
	// their canonical cache key, skipping decode + validation on the hit
	// path; nil whenever respCache is.
	batchMemo *bodyMemo

	// systemsOnce renders the static /v1/systems document (and its ETag)
	// once per process.
	systemsOnce sync.Once
	systemsBody []byte
	systemsETag string

	// Cluster state (nil/empty when single-instance): the consistent-hash
	// ring over the static peer list, this replica's own peer name, and
	// the client used to forward requests for keys another replica owns.
	// Set once by SetCluster before serving; read-only afterwards.
	ring      *cluster.Ring
	self      string
	fwdClient *http.Client

	mReq       *CounterVec
	mDur       *HistogramVec
	mInflight  *GaugeVec
	mPanics    *CounterVec
	mModels    *GaugeVec
	mChar      *CounterVec
	mRejected  *CounterVec
	mCancelled *CounterVec
	mByEngine  *CounterVec

	// Advisory-plane series, by governor policy.
	mAdviseEvals *CounterVec
	mAdviseRec   *CounterVec
	mAdviseSaved *FloatCounterVec

	// Model store series (nil without a store).
	mStoreLoads    *Counter
	mStoreLoadErrs *Counter
	mStoreWrites   *Counter

	// Cluster series (nil until SetCluster).
	mForwards    *CounterVec
	mForwardErrs *CounterVec

	// charTestHook, when non-nil (tests only), runs inside the
	// characterisation critical section before the campaign, with the
	// request context; a non-nil error (or a panic) fails the campaign.
	charTestHook func(ctx context.Context, key modelKey) error
}

type modelKey struct{ system, program string }

// modelEntry caches one characterised model; once guarantees a single
// characterisation per key even under concurrent first requests. ready
// flips only after a completed, successful campaign — entries that never
// reach ready are evicted by Server.model so the next request retries
// instead of serving a poisoned cache slot forever.
type modelEntry struct {
	once  sync.Once
	ready atomic.Bool
	prof  *machine.Profile
	spec  *workload.Spec
	model *core.Model
	err   error
}

// NewServer builds the service. It starts not-ready: call SetReady(true)
// after any warm-up (or immediately) so /readyz flips to 200.
func NewServer(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxCampaigns <= 0 {
		cfg.MaxCampaigns = 4
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	defEngine := cfg.DefaultEngine
	if defEngine == "" {
		defEngine = exec.DefaultEngine()
	}
	if err := exec.ValidateEngine(defEngine); err != nil {
		panic(fmt.Sprintf("telemetry: Config.DefaultEngine: %v", err))
	}
	advSlowdown := cfg.AdviseMaxSlowdown
	if advSlowdown <= 0 {
		advSlowdown = 0.05
	}
	if advSlowdown >= 1 {
		panic(fmt.Sprintf("telemetry: Config.AdviseMaxSlowdown %g must be in (0,1)", cfg.AdviseMaxSlowdown))
	}
	engines := make(map[string]*metrics.Engine, 2)
	for _, e := range exec.Engines() {
		engines[e] = metrics.NewEngine()
	}
	s := &Server{
		cfg:       cfg,
		log:       log,
		reg:       NewRegistry(),
		defEngine: defEngine,
		engines:   engines,
		spans:     NewSpans(cfg.SpanCapacity),
		start:     time.Now(),
		models:    map[modelKey]*modelEntry{},
		sem:       make(chan struct{}, cfg.MaxCampaigns),
	}
	s.advSlowdown = advSlowdown
	s.mReq = s.reg.Counter("hybridperf_http_requests_total",
		"HTTP requests served, by route, method and status code.", "route", "method", "code")
	s.mDur = s.reg.Histogram("hybridperf_http_request_duration_seconds",
		"HTTP request latency in seconds, by route.", DefBuckets, "route")
	s.mInflight = s.reg.Gauge("hybridperf_http_requests_in_flight",
		"HTTP requests currently being served.")
	s.mPanics = s.reg.Counter("hybridperf_http_panics_total",
		"Handler panics recovered, by route.", "route")
	s.mModels = s.reg.Gauge("hybridperf_models_cached",
		"Characterised models held in the cache.")
	s.mChar = s.reg.Counter("hybridperf_model_characterizations_total",
		"Characterisation campaigns run, by system and program.", "system", "program")
	s.mRejected = s.reg.Counter("hybridperf_http_requests_rejected_total",
		"Requests shed by admission control, by route and reason.", "route", "reason")
	s.mCancelled = s.reg.Counter("hybridperf_http_requests_cancelled_total",
		"Requests whose context ended before completion, by route and reason (disconnect or timeout).", "route", "reason")
	s.mByEngine = s.reg.Counter("hybridperf_requests_by_engine_total",
		"Model-serving requests by route and resolved simulation engine.", "route", "engine")
	s.traces = NewTraceStore(0)
	// Cost attribution: every model-serving response reports how much
	// simulated work it carried; these aggregate the same numbers the
	// response headers expose. Series are pre-resolved here — routes and
	// engines are both static — so the hot path records them map-lookup
	// cheap and allocation free.
	mPreds := s.reg.Counter("hybridperf_predictions_served_total",
		"Predictions returned to clients, by route and simulation engine.", "route", "engine")
	mSimS := s.reg.FloatCounter("hybridperf_simulated_seconds_total",
		"Predicted application runtime (virtual seconds) summed over all served predictions, by route and engine.", "route", "engine")
	mEnergy := s.reg.FloatCounter("hybridperf_predicted_energy_joules_total",
		"Predicted energy (joules) summed over all served predictions, by route and engine.", "route", "engine")
	s.attrib = make(map[string]map[string]attribSeries, 4)
	for _, route := range []string{"/v1/predict", "/v1/batch", "/v1/sweep", "/v1/advise"} {
		byEngine := make(map[string]attribSeries, len(engines))
		for _, e := range exec.Engines() {
			byEngine[e] = attribSeries{
				preds:  mPreds.With(route, e),
				simS:   mSimS.With(route, e),
				energy: mEnergy.With(route, e),
			}
		}
		s.attrib[route] = byEngine
	}
	// Advisory-plane accounting: per-policy governed evaluations, which
	// policy the advisor recommended, and the energy each policy would
	// have saved against the static baseline. Series exist from boot so
	// scrapes (and the serve-smoke diff) see explicit zeros.
	s.mAdviseEvals = s.reg.Counter("hybridperf_advise_evaluations_total",
		"Governed advisory simulations run, by governor policy.", "policy")
	s.mAdviseRec = s.reg.Counter("hybridperf_advise_recommended_total",
		"Advisory responses computed, by the policy they recommended.", "policy")
	s.mAdviseSaved = s.reg.FloatCounter("hybridperf_advise_energy_saved_joules_total",
		"Predicted energy saved vs the ungoverned static baseline, summed over advisory evaluations, by policy.", "policy")
	for _, p := range dvfs.Policies() {
		s.mAdviseEvals.With(p).Add(0)
		s.mAdviseRec.With(p).Add(0)
		s.mAdviseSaved.With(p).Add(0)
	}
	// In-flight starts existing so the gauge appears on the first scrape.
	s.mInflight.With().Set(0)
	s.mModels.With().Set(0)
	if cfg.ResponseCache > 0 {
		ctr := cacheCounters{
			hits: s.reg.Counter("hybridperf_response_cache_hits_total",
				"Requests served from the response cache.").With(),
			misses: s.reg.Counter("hybridperf_response_cache_misses_total",
				"Requests that computed (and stored) their response.").With(),
			evictions: s.reg.Counter("hybridperf_response_cache_evictions_total",
				"Response-cache entries dropped by LRU capacity pressure.").With(),
			expired: s.reg.Counter("hybridperf_response_cache_expired_total",
				"Response-cache entries dropped because they aged past the TTL.").With(),
			collapsed: s.reg.Counter("hybridperf_response_cache_collapsed_total",
				"Requests collapsed onto an identical in-flight computation (singleflight).").With(),
			entries: s.reg.Gauge("hybridperf_response_cache_entries",
				"Responses currently held in the cache.").With(),
		}
		ctr.entries.Set(0)
		s.respCache = newResponseCache(cfg.ResponseCache, cfg.ResponseCacheTTL, ctr)
		// Several syntactic variants (tuple order, defaulted fields) can
		// name one semantic entry, so the memo is sized a few times larger
		// than the cache it fronts.
		s.batchMemo = newBodyMemo(4 * cfg.ResponseCache)
	}
	if cfg.ModelStore != nil {
		s.mStoreLoads = s.reg.Counter("hybridperf_model_store_loads_total",
			"Characterisation snapshots loaded from the model store and adopted into the cache.").With()
		s.mStoreLoadErrs = s.reg.Counter("hybridperf_model_store_load_errors_total",
			"Model-store snapshots skipped at load: corrupt, truncated, stale-versioned or unresolvable.").With()
		s.mStoreWrites = s.reg.Counter("hybridperf_model_store_writes_total",
			"Characterisation snapshots written to the model store.").With()
		s.loadModelStore()
	}
	// Scrape-time families: latency quantiles interpolated from the route
	// histograms, then the engine-level counters.
	s.reg.OnScrape(func(w io.Writer) {
		const name = "hybridperf_http_request_duration_quantile_seconds"
		first := true
		s.mDur.Each(func(values []string, h *Histogram) {
			if first {
				fmt.Fprintf(w, "# HELP %s Request latency quantiles interpolated from the histogram, by route.\n# TYPE %s gauge\n", name, name)
				first = false
			}
			for _, q := range []float64{0.5, 0.95, 0.99} {
				fmt.Fprintf(w, "%s{route=\"%s\",quantile=\"%s\"} %s\n",
					name, escapeLabel(values[0]), formatFloat(q), formatFloat(h.Quantile(q)))
			}
		})
		fmt.Fprintf(w, "# HELP hybridperf_uptime_seconds Seconds since the daemon started.\n"+
			"# TYPE hybridperf_uptime_seconds gauge\nhybridperf_uptime_seconds %s\n",
			formatFloat(time.Since(s.start).Seconds()))
		series := make([]EngineSeries, 0, len(engines))
		for _, e := range exec.Engines() {
			series = append(series, EngineSeries{Engine: e, Snap: engines[e].Snapshot()})
		}
		WriteEngineText(w, series...)
	})
	return s
}

// Warm characterises one (system, program) pair ahead of traffic, so a
// deployment can flip /readyz only after its hot models are cached. The
// warm-up runs the exact path traffic takes: the server's default engine
// feeds that mode's shared counters, and the campaign holds an admission
// slot — waiting for one rather than shedding, since warm-up has no
// client to 429 — so a daemon warming while already serving cannot
// oversubscribe the campaign budget it advertises.
func (s *Server) Warm(system, program string) error {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	_, err := s.model(context.Background(), modelKey{system: system, program: program}, s.defEngine, true)
	return err
}

// SetReady flips the /readyz probe.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Registry exposes the server's metric registry (tests, extra collectors).
func (s *Server) Registry() *Registry { return s.reg }

// Engine exposes the shared engine counter set fed by simulations on the
// server's default engine mode (see EngineFor for a specific mode).
func (s *Server) Engine() *metrics.Engine { return s.engines[s.defEngine] }

// EngineFor exposes the shared counter set for one engine mode, or nil
// for an unknown mode.
func (s *Server) EngineFor(mode string) *metrics.Engine { return s.engines[mode] }

// DefaultEngine reports the engine mode used by requests that omit one.
func (s *Server) DefaultEngine() string { return s.defEngine }

// Spans exposes the span flight recorder.
func (s *Server) Spans() *Spans { return s.spans }

// Handler returns the full route table wrapped in the telemetry
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/predict", s.instrument("/v1/predict", s.handlePredict))
	mux.HandleFunc("POST /v1/batch", s.instrument("/v1/batch", s.handleBatch))
	mux.HandleFunc("POST /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	mux.HandleFunc("POST /v1/advise", s.instrument("/v1/advise", s.handleAdvise))
	mux.HandleFunc("GET /v1/systems", s.instrument("/v1/systems", s.handleSystems))
	mux.HandleFunc("GET /metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/trace", s.instrument("/debug/trace", s.handleDebugTrace))
	mux.HandleFunc("GET /debug/trace/{traceid}", s.instrument("/debug/trace/{traceid}", s.handleTraceByID))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		if s.ring != nil {
			fmt.Fprintf(w, "ready shard=%s peers=%d\n", s.self, len(s.ring.Peers()))
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// httpError is the structured JSON error envelope every 4xx/5xx carries.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error":  fmt.Sprintf(format, args...),
		"status": status,
	})
}

// errCharAborted marks a cache entry whose characterisation panicked
// inside its sync.Once: the Once is burnt (done, but no model and no
// error recorded), so waiters report a retryable failure instead of
// dereferencing a nil model.
var errCharAborted = errors.New("characterisation aborted before completing; retry")

// errSaturated reports a characterisation campaign shed because every
// admission slot was taken. Handlers map it to 429 + Retry-After.
var errSaturated = errors.New("admission slots saturated")

// model returns the cached model for (system, program), characterising it
// on first use with the server's collectors attached: every simulation
// feeds the engine-mode's shared counters and the span recorder, and the
// campaign logs one line with its engine-event delta. ctx cancels an
// in-flight characterisation mid-simulation (client disconnect, request
// timeout).
//
// engine selects the simulation engine a cold characterisation runs on.
// Both engines are bit-for-bit identical, so the cache stays keyed by
// (system, program) alone — the engine changes which counters accrue,
// never the model. Concurrent cold requests for one key collapse into a
// single campaign on the leader's engine.
//
// Admission: unless the caller is already admitted (Warm runs before
// traffic; sweep handlers hold a slot for the whole request), the
// campaign leader claims an admission slot inside the once — so the
// semaphore counts actual campaigns, and concurrent cold requests for
// one key still collapse to a single characterisation instead of
// shedding each other. A saturated semaphore fails the campaign with
// errSaturated, the entry is evicted, and the next request retries.
//
// Cache hygiene: coordinates are validated before the cache is touched,
// so unknown system/program names never occupy map entries (a stream of
// garbage keys cannot grow s.models without bound), and an entry whose
// campaign failed, was cancelled or panicked is evicted before returning,
// so the next request for that key re-characterises instead of being
// poisoned for the process lifetime. Concurrent waiters on a failing
// campaign all observe its error; the first request after eviction
// retries fresh.
func (s *Server) model(ctx context.Context, key modelKey, engine string, admitted bool) (*modelEntry, error) {
	prof, err := machine.ByName(key.system)
	if err != nil {
		return nil, err
	}
	spec, err := workload.ByName(key.program)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	e, ok := s.models[key]
	if !ok {
		e = &modelEntry{}
		s.models[key] = e
	}
	s.mu.Unlock()

	// Runs on every exit — including a panic unwinding out of once.Do —
	// and evicts the entry unless the campaign completed successfully.
	// The pointer comparison keeps the eviction idempotent: a newer
	// retry entry under the same key is never clobbered.
	defer func() {
		if !e.ready.Load() {
			s.mu.Lock()
			if s.models[key] == e {
				delete(s.models, key)
			}
			s.mu.Unlock()
		}
	}()

	e.once.Do(func() {
		if !admitted {
			release, ok := s.acquire()
			if !ok {
				e.err = fmt.Errorf("characterize %s/%s: %w", key.system, key.program, errSaturated)
				return
			}
			defer release()
		}
		if s.charTestHook != nil {
			if err := s.charTestHook(ctx, key); err != nil {
				e.err = fmt.Errorf("characterize %s/%s: %w", key.system, key.program, err)
				return
			}
		}
		eng := s.engines[engine]
		rt := RequestTraceFrom(ctx)
		// Only a sampled request asks the campaign to deliver its per-rank
		// phase timeline: the hook forces the engine to record events, so
		// leaving it nil keeps unsampled campaigns on the exact cold path.
		opts := characterize.Options{
			Seed:          s.cfg.Seed,
			Workers:       s.cfg.Workers,
			Engine:        engine,
			Ctx:           ctx,
			SharedMetrics: eng,
			Observe:       s.spans.Observer("exec"),
		}
		if rt != nil {
			opts.PhaseTrace = rt.AttachPhases
		}
		start := time.Now()
		pre := eng.Snapshot()
		sum, err := characterize.Run(prof, spec, opts)
		if err != nil {
			e.err = fmt.Errorf("characterize %s/%s: %w", key.system, key.program, err)
			return
		}
		m, err := core.New(sum.Inputs, nil)
		if err != nil {
			e.err = fmt.Errorf("model %s/%s: %w", key.system, key.program, err)
			return
		}
		end := time.Now()
		s.spans.Observe("model", fmt.Sprintf("characterize %s/%s", key.system, key.program),
			start, end, nil)
		delta := eng.Snapshot().Sub(pre)
		if rt != nil {
			rt.AddSpan("model", fmt.Sprintf("characterize %s/%s", key.system, key.program), start, end)
		}
		annotate(ctx, slog.Uint64("engine_events", delta.Events))
		s.mChar.With(key.system, key.program).Inc()
		s.mModels.With().Inc()
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "characterized",
			slog.String("system", key.system),
			slog.String("program", key.program),
			slog.String("engine", engine),
			slog.Duration("duration", end.Sub(start)),
			slog.Uint64("engine_events", delta.Events),
			slog.Uint64("mpi_messages", delta.Messages))
		// Persist before publishing: if the process dies between here and
		// ready, the next boot warm-loads the snapshot instead of losing
		// the campaign.
		s.snapshotModel(key, sum)
		e.prof, e.spec, e.model = prof, spec, m
		e.ready.Store(true)
	})
	if e.err != nil {
		return nil, e.err
	}
	if !e.ready.Load() {
		return nil, fmt.Errorf("characterize %s/%s: %w", key.system, key.program, errCharAborted)
	}
	return e, nil
}

// acquire claims one admission slot, returning an idempotent release.
// ok is false when the semaphore is saturated; the caller sheds the
// request with reject.
func (s *Server) acquire() (release func(), ok bool) {
	select {
	case s.sem <- struct{}{}:
		var once sync.Once
		return func() { once.Do(func() { <-s.sem }) }, true
	default:
		return nil, false
	}
}

// reject sheds a request at the admission boundary: 429 with a
// Retry-After hint, counted per route.
func (s *Server) reject(w http.ResponseWriter, route string) {
	s.mRejected.With(route, "saturated").Inc()
	w.Header().Set("Retry-After", "1")
	httpError(w, http.StatusTooManyRequests,
		"saturated: %d characterisation/sweep campaigns already in flight; retry later", cap(s.sem))
}

// interrupted maps a cancelled or timed-out model/sweep error to a 503
// with Retry-After (the work was shed, not wrong; a retry may succeed)
// and reports whether it handled the error.
func interrupted(w http.ResponseWriter, err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, errCharAborted) || errors.Is(err, errFlightAborted) {
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "request interrupted: %v", err)
		return true
	}
	return false
}

// configJSON is the wire form of a machine.Config.
type configJSON struct {
	Nodes   int     `json:"nodes"`
	Cores   int     `json:"cores"`
	FreqGHz float64 `json:"freq_ghz"`
}

// predictionJSON is the wire form of a core.Prediction.
type predictionJSON struct {
	Config  configJSON `json:"config"`
	TimeS   float64    `json:"time_s"`
	EnergyJ float64    `json:"energy_j"`
	PowerW  float64    `json:"power_w"`
	UCR     float64    `json:"ucr"`
}

func toPredictionJSON(p core.Prediction) predictionJSON {
	power := 0.0
	if p.T > 0 {
		power = p.E / p.T
	}
	return predictionJSON{
		Config:  configJSON{Nodes: p.Cfg.Nodes, Cores: p.Cfg.Cores, FreqGHz: p.Cfg.GHz()},
		TimeS:   p.T,
		EnergyJ: p.E,
		PowerW:  power,
		UCR:     p.UCR,
	}
}

// decodeJSON reads a bounded JSON body into v. Malformed bodies fail
// loudly and precisely: an oversized body is 413 (not a misleading
// "invalid JSON" 400), an unknown field is rejected instead of silently
// defaulting a typo'd knob, and trailing data after the first JSON value
// is an error rather than ignored.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	return decodeJSONMax(w, r, v, 1<<20)
}

// decodeJSONMax is decodeJSON with a per-route body cap (/v1/batch
// accepts larger bodies than the point endpoints).
func decodeJSONMax(w http.ResponseWriter, r *http.Request, v any, limit int64) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		httpError(w, http.StatusBadRequest,
			"invalid JSON body: trailing data after the request object")
		return false
	}
	return true
}

// readBodyMax reads the whole request body under a size cap, for
// handlers that need the raw bytes (the batch body memo) before
// decoding. The over-limit response matches decodeJSONMax's.
func readBodyMax(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return nil, false
		}
		httpError(w, http.StatusBadRequest, "reading request body: %v", err)
		return nil, false
	}
	return body, true
}

// decodeJSONBytes is decodeJSONMax over an already-read body, with the
// same strictness (unknown fields and trailing data rejected) and the
// same error shapes.
func decodeJSONBytes(w http.ResponseWriter, body []byte, v any) bool {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON body: %v", err)
		return false
	}
	if err := dec.Decode(&struct{}{}); err != io.EOF {
		httpError(w, http.StatusBadRequest,
			"invalid JSON body: trailing data after the request object")
		return false
	}
	return true
}

// resolve validates the model coordinates shared by predict and sweep and
// returns the cached (characterising if needed) model entry plus the
// class iteration count. admitted marks callers already holding an
// admission slot (sweep), so a cold characterisation doesn't claim a
// second one. Unknown names and malformed classes are the caller's fault
// (400); a shed campaign is 429 + Retry-After; a cancelled, timed-out or
// aborted campaign is retryable (503 + Retry-After); a failed
// characterisation of valid coordinates is ours (500).
func (s *Server) resolve(w http.ResponseWriter, r *http.Request, system, program, class, engine string, admitted bool) (*modelEntry, workload.Class, int, bool) {
	if _, err := machine.ByName(system); err != nil {
		httpError(w, http.StatusBadRequest, "unknown system %q", system)
		return nil, "", 0, false
	}
	spec, err := workload.ByName(program)
	if err != nil {
		httpError(w, http.StatusBadRequest, "unknown program %q", program)
		return nil, "", 0, false
	}
	if class == "" {
		class = string(workload.ClassA)
	}
	S, err := spec.Iterations(workload.Class(class))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad class %q: %v", class, err)
		return nil, "", 0, false
	}
	annotate(r.Context(),
		slog.String("system", system),
		slog.String("program", program),
		slog.String("class", class),
		slog.String("engine", engine))
	e, err := s.model(r.Context(), modelKey{system: system, program: program}, engine, admitted)
	if err != nil {
		if errors.Is(err, errSaturated) {
			s.reject(w, r.URL.Path)
			return nil, "", 0, false
		}
		if interrupted(w, err) {
			return nil, "", 0, false
		}
		httpError(w, http.StatusInternalServerError, "characterisation failed: %v", err)
		return nil, "", 0, false
	}
	return e, workload.Class(class), S, true
}

// engineMode resolves a request's optional engine field: empty takes the
// server default, unknown names are the caller's fault (400, structured).
func (s *Server) engineMode(w http.ResponseWriter, engine string) (string, bool) {
	if engine == "" {
		return s.defEngine, true
	}
	if err := exec.ValidateEngine(engine); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return "", false
	}
	return engine, true
}

// predictRequest is the /v1/predict body.
type predictRequest struct {
	System  string  `json:"system"`
	Program string  `json:"program"`
	Class   string  `json:"class"`
	Nodes   int     `json:"nodes"`
	Cores   int     `json:"cores"`
	FreqGHz float64 `json:"freq_ghz"`
	Engine  string  `json:"engine"` // "" = server default
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	rt := RequestTraceFrom(r.Context())
	var tDecode time.Time
	if rt != nil {
		tDecode = time.Now()
	}
	body, ok := readBodyMax(w, r, 1<<20)
	if !ok {
		return
	}
	var req predictRequest
	if !decodeJSONBytes(w, body, &req) {
		return
	}
	if rt != nil {
		rt.AddSpan("handler", "decode", tDecode, time.Now())
	}
	engine, ok := s.engineMode(w, req.Engine)
	if !ok {
		return
	}
	s.mByEngine.With("/v1/predict", engine).Inc()
	if s.forwardIfRemote(w, r, body, req.System, req.Program) {
		return
	}
	// Predicts on a warm model are pure arithmetic and stay unthrottled;
	// only a predict that must first run a characterisation campaign
	// competes for an admission slot (claimed by the campaign leader
	// inside model, so concurrent cold predicts for one key don't shed
	// each other).
	e, class, S, ok := s.resolve(w, r, req.System, req.Program, req.Class, engine, false)
	if !ok {
		return
	}
	cfg := machine.Config{Nodes: req.Nodes, Cores: req.Cores, Freq: req.FreqGHz * 1e9}
	if req.FreqGHz == 0 {
		cfg.Freq = e.prof.FMax()
	}
	if err := e.prof.ValidateModelConfig(cfg); err != nil {
		httpError(w, http.StatusBadRequest, "invalid configuration: %v", err)
		return
	}
	annotate(r.Context(), slog.String("config", cfg.String()))
	t0 := time.Now()
	pred, err := e.model.Predict(cfg, S)
	if err != nil {
		httpError(w, http.StatusBadRequest, "prediction rejected: %v", err)
		return
	}
	tPred := time.Now()
	s.spans.Observe("model", fmt.Sprintf("predict %s/%s %v", req.System, req.Program, cfg),
		t0, tPred, map[string]any{"id": requestID(r.Context())})
	if rt != nil {
		rt.AddSpan("model", fmt.Sprintf("predict %s/%s", req.System, req.Program), t0, tPred)
	}
	pj := toPredictionJSON(pred)
	s.applyAttribution(w, r, "/v1/predict", engine, makeAttribution(1, pj.TimeS, pj.EnergyJ))
	endRender := rt.Span("handler", "render")
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		System  string `json:"system"`
		Program string `json:"program"`
		Class   string `json:"class"`
		predictionJSON
	}{req.System, req.Program, string(class), pj})
	endRender()
}

// sweepRequest is the /v1/sweep body.
type sweepRequest struct {
	System    string  `json:"system"`
	Program   string  `json:"program"`
	Class     string  `json:"class"`
	MaxNodes  int     `json:"max_nodes"` // 0 = testbed size
	Pow2      bool    `json:"pow2"`
	Workers   int     `json:"workers"` // 0 = server default
	DeadlineS float64 `json:"deadline_s"`
	BudgetJ   float64 `json:"budget_j"`
	Engine    string  `json:"engine"` // "" = server default
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	rt := RequestTraceFrom(r.Context())
	var tDecode time.Time
	if rt != nil {
		tDecode = time.Now()
	}
	body, ok := readBodyMax(w, r, 1<<20)
	if !ok {
		return
	}
	var req sweepRequest
	if !decodeJSONBytes(w, body, &req) {
		return
	}
	if rt != nil {
		rt.AddSpan("handler", "decode", tDecode, time.Now())
	}
	engine, ok := s.engineMode(w, req.Engine)
	if !ok {
		return
	}
	s.mByEngine.With("/v1/sweep", engine).Inc()
	if s.forwardIfRemote(w, r, body, req.System, req.Program) {
		return
	}
	// Coordinates are validated — and defaults resolved — before the
	// response cache is consulted, so the cache key is canonical (an
	// explicit max_nodes equal to the testbed size hits the same entry as
	// an omitted one) and garbage requests never reach the cache.
	prof, err := machine.ByName(req.System)
	if err != nil {
		httpError(w, http.StatusBadRequest, "unknown system %q", req.System)
		return
	}
	spec, err := workload.ByName(req.Program)
	if err != nil {
		httpError(w, http.StatusBadRequest, "unknown program %q", req.Program)
		return
	}
	class := req.Class
	if class == "" {
		class = string(workload.ClassA)
	}
	S, err := spec.Iterations(workload.Class(class))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad class %q: %v", class, err)
		return
	}
	maxNodes := req.MaxNodes
	if maxNodes == 0 {
		maxNodes = prof.MaxNodes
	}
	if maxNodes < 1 || maxNodes > maxSweepNodes {
		httpError(w, http.StatusBadRequest, "max_nodes %d out of range [1,%d]", req.MaxNodes, maxSweepNodes)
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	if workers > 4*runtime.GOMAXPROCS(0) {
		workers = 4 * runtime.GOMAXPROCS(0)
	}
	annotate(r.Context(),
		slog.String("system", req.System),
		slog.String("program", req.Program),
		slog.String("class", class),
		slog.String("engine", engine),
		slog.Int("workers", workers))

	key := sweepCacheKey(req.System, req.Program, class, maxNodes, req.Pow2, req.DeadlineS, req.BudgetJ)
	s.respondCached(w, r, "/v1/sweep", engine, key, func() (*cachedResponse, error) {
		// Sweeps always count against the campaign budget: even on a warm
		// model a full-space evaluation is the heavy path. The flight
		// leader's slot covers the whole computation, including a cold
		// characterisation (model is told the request is already
		// admitted); collapsed followers and cache hits never claim one.
		release, ok := s.acquire()
		if !ok {
			return nil, fmt.Errorf("sweep: %w", errSaturated)
		}
		defer release()
		e, err := s.model(r.Context(), modelKey{system: req.System, program: req.Program}, engine, true)
		if err != nil {
			return nil, err
		}
		var nodes []int
		if req.Pow2 {
			nodes = pareto.PowersOfTwo(maxNodes)
		} else {
			nodes = pareto.Range(1, maxNodes)
		}
		cfgs := pareto.Space(nodes, e.prof.CoresPerNode, e.prof.Frequencies)
		t0 := time.Now()
		points, err := pareto.EvaluateParallel(r.Context(), e.model, cfgs, S, workers)
		if err != nil {
			return nil, fmt.Errorf("sweep failed: %w", err)
		}
		front := pareto.Frontier(points)
		tEval := time.Now()
		s.spans.Observe("model", fmt.Sprintf("sweep %s/%s (%d cfgs)", req.System, req.Program, len(cfgs)),
			t0, tEval, map[string]any{"id": requestID(r.Context())})
		if rt != nil {
			rt.AddSpan("model", fmt.Sprintf("evaluate %s/%s (%d cfgs)", req.System, req.Program, len(cfgs)), t0, tEval)
		}
		endRender := rt.Span("handler", "render")
		resp := buildSweepResponse(req.System, req.Program, class, len(cfgs), front, points, req.DeadlineS, req.BudgetJ)
		endRender()
		return resp, nil
	})
}

// sweepSummary is the header of a sweep answer: everything except the
// frontier list itself. It doubles as the NDJSON summary line, so the
// streamed and document forms carry identical fields by construction.
type sweepSummary struct {
	System   string          `json:"system"`
	Program  string          `json:"program"`
	Class    string          `json:"class"`
	Configs  int             `json:"configs"`
	Points   int             `json:"frontier_points"`
	Deadline *predictionJSON `json:"min_energy_within_deadline,omitempty"`
	Budget   *predictionJSON `json:"min_time_within_budget,omitempty"`
}

// buildSweepResponse renders both wire shapes of a sweep answer — the
// canonical JSON document (summary fields + frontier array) and the
// NDJSON lines (one frontier point per line, then the summary) — by
// marshalling each frontier point once and splicing the fragments into
// both shapes (see spliceResponse).
func buildSweepResponse(system, program, class string, configs int, front, points []pareto.Point, deadlineS, budgetJ float64) *cachedResponse {
	sum := sweepSummary{System: system, Program: program, Class: class, Configs: configs, Points: len(front)}
	if deadlineS > 0 {
		if p, ok := pareto.MinEnergyWithinDeadline(points, deadlineS); ok {
			pj := toPredictionJSON(p.Pred)
			sum.Deadline = &pj
		}
	}
	if budgetJ > 0 {
		if p, ok := pareto.MinTimeWithinBudget(points, budgetJ); ok {
			pj := toPredictionJSON(p.Pred)
			sum.Budget = &pj
		}
	}
	frontier := make([]predictionJSON, len(front))
	var simS, energyJ float64
	for i, p := range front {
		frontier[i] = toPredictionJSON(p.Pred)
		simS += frontier[i].TimeS
		energyJ += frontier[i].EnergyJ
	}
	resp := spliceResponse(mustJSON(sum), "frontier", "point", marshalEach(frontier))
	// Attribution covers what the body carries: the frontier points, in
	// canonical order, so header sums equal a client's sum over the body.
	resp.attr = makeAttribution(len(frontier), simS, energyJ)
	return resp
}

// handleSystems serves the static capability document. It is rendered
// once per process and carries a strong ETag (content hash), so pollers
// — loadgen enumerates the config space from it before every batch run —
// revalidate with If-None-Match and get a body-less 304.
func (s *Server) handleSystems(w http.ResponseWriter, r *http.Request) {
	s.systemsOnce.Do(func() {
		s.systemsBody = append(mustJSON(systemsDocument(s.defEngine)), '\n')
		sum := sha256.Sum256(s.systemsBody)
		s.systemsETag = `"` + hex.EncodeToString(sum[:8]) + `"`
	})
	w.Header().Set("ETag", s.systemsETag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, s.systemsETag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(s.systemsBody)
}

// etagMatches implements If-None-Match for a single strong ETag: "*"
// matches anything, otherwise each comma-separated candidate is compared
// after stripping an optional W/ weak prefix (weak comparison is fine for
// If-None-Match).
func etagMatches(header, etag string) bool {
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" {
			return true
		}
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// systemsDocument builds the /v1/systems payload.
func systemsDocument(defaultEngine string) any {
	type systemJSON struct {
		Name         string    `json:"name"`
		ISA          string    `json:"isa"`
		MaxNodes     int       `json:"max_nodes"`
		CoresPerNode int       `json:"cores_per_node"`
		FreqsGHz     []float64 `json:"frequencies_ghz"`
		Topology     string    `json:"topology"`
	}
	profiles := machine.Profiles()
	names := make([]string, 0, len(profiles))
	for n := range profiles {
		names = append(names, n)
	}
	sort.Strings(names)
	var systems []systemJSON
	for _, n := range names {
		p := profiles[n]
		freqs := make([]float64, len(p.Frequencies))
		for i, f := range p.Frequencies {
			freqs[i] = f / 1e9
		}
		topo := p.Topology
		if topo == "" {
			topo = machine.TopologyShared
		}
		systems = append(systems, systemJSON{
			Name: n, ISA: p.ISA, MaxNodes: p.MaxNodes, CoresPerNode: p.CoresPerNode,
			FreqsGHz: freqs, Topology: string(topo),
		})
	}
	var programs []string
	for _, spec := range workload.Extended() {
		programs = append(programs, spec.Name)
	}
	return struct {
		Systems       []systemJSON `json:"systems"`
		Programs      []string     `json:"programs"`
		Classes       []string     `json:"classes"`
		Engines       []string     `json:"engines"`
		DefaultEngine string       `json:"default_engine"`
	}{systems, programs, classNames(), exec.Engines(), defaultEngine}
}

func classNames() []string {
	var out []string
	for _, c := range workload.Classes() {
		out = append(out, string(c))
	}
	return out
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

// handleDebugTrace records spans for the requested window (default 1s,
// capped at 30s) and returns them as Chrome-trace JSON: the on-demand
// "what is the server doing right now" probe.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	dur := time.Second
	if q := r.URL.Query().Get("duration"); q != "" {
		d, err := time.ParseDuration(q)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad duration %q", q)
			return
		}
		dur = d
	}
	if dur > 30*time.Second {
		dur = 30 * time.Second
	}
	t0 := time.Now()
	select {
	case <-time.After(dur):
	case <-r.Context().Done():
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.spans.WriteChrome(w, t0); err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelError, "trace export failed", slog.Any("err", err))
	}
}
