package telemetry

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// newBenchServer builds a server with the xeon/SP model pre-characterised
// and the given response-cache size. The compute-path benchmarks pass 0
// (cache disabled — every iteration evaluates); the warm-path benchmark
// passes a real size so iterations exercise the body-memo + cache-hit
// fast path.
func newBenchServer(b *testing.B, cacheSize int) *httptest.Server {
	b.Helper()
	s := NewServer(Config{
		Workers:       2,
		Seed:          42,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		ResponseCache: cacheSize,
	})
	if err := s.Warm("xeon", "SP"); err != nil {
		b.Fatal(err)
	}
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(ts.Close)
	return ts
}

func benchPost(b *testing.B, client *http.Client, url string, body []byte) {
	b.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("status %d", resp.StatusCode)
	}
}

// benchTuples enumerates n xeon/SP coordinates row-major over the
// (nodes, cores, freq) grid — the same order cmd/loadgen generates.
func benchTuples(n int) []byte {
	var sb strings.Builder
	sb.WriteString(`{"class":"A","tuples":[`)
	count := 0
	for nodes := 1; nodes <= 8 && count < n; nodes++ {
		for cores := 1; cores <= 8 && count < n; cores++ {
			for _, f := range []float64{1.2, 1.5, 1.8} {
				if count == n {
					break
				}
				if count > 0 {
					sb.WriteString(",")
				}
				fmt.Fprintf(&sb, `{"system":"xeon","program":"SP","nodes":%d,"cores":%d,"freq_ghz":%v}`,
					nodes, cores, f)
				count++
			}
		}
	}
	sb.WriteString(`]}`)
	return []byte(sb.String())
}

// BenchmarkServeBatch192 measures one warm-model /v1/batch round trip
// carrying xeon's full 192-configuration grid — the vectorised serving
// path (ns/op is per request; divide by 192 for per-prediction cost).
func BenchmarkServeBatch192(b *testing.B) {
	ts := newBenchServer(b, 0)
	client := &http.Client{}
	body := benchTuples(192)
	benchPost(b, client, ts.URL+"/v1/batch", body) // warm HTTP path
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, client, ts.URL+"/v1/batch", body)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/192, "ns/prediction")
}

// BenchmarkServeBatch192Warm measures the same 192-tuple round trip
// against a server with the response cache enabled: after the priming
// round every iteration is an exact-byte repeat, served through the body
// memo + response-cache fast path without decoding the request.
func BenchmarkServeBatch192Warm(b *testing.B) {
	ts := newBenchServer(b, 128)
	client := &http.Client{}
	body := benchTuples(192)
	benchPost(b, client, ts.URL+"/v1/batch", body) // prime cache + memo
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, client, ts.URL+"/v1/batch", body)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/192, "ns/prediction")
}

// BenchmarkServePredict measures one warm-model /v1/predict round trip —
// the single-tuple baseline the batch path is compared against.
func BenchmarkServePredict(b *testing.B) {
	ts := newBenchServer(b, 0)
	client := &http.Client{}
	body := []byte(`{"system":"xeon","program":"SP","class":"A","nodes":4,"cores":8,"freq_ghz":1.8}`)
	benchPost(b, client, ts.URL+"/v1/predict", body)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, client, ts.URL+"/v1/predict", body)
	}
}
