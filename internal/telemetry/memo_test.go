package telemetry

import (
	"fmt"
	"testing"
)

// TestMemoEvictsSingleEntry pins the capacity behaviour: inserting one
// body past capacity evicts exactly one resident entry, not the whole
// memo. With a working set of capacity+1, exactly capacity bodies must
// still hit afterwards — the old wholesale clear left only the newest
// body resident (1 hit), so this fails against that behaviour no matter
// which entry the map's iteration order sacrifices.
func TestMemoEvictsSingleEntry(t *testing.T) {
	const capacity = 4
	m := newBodyMemo(capacity)
	bodies := make([][]byte, capacity+1)
	for i := range bodies {
		bodies[i] = fmt.Appendf(nil, `{"body":%d}`, i)
		m.put(bodies[i], memoEntry{key: fmt.Sprintf("key-%d", i)})
	}
	hits := 0
	for i, b := range bodies {
		e, ok := m.get(b)
		if !ok {
			continue
		}
		hits++
		if want := fmt.Sprintf("key-%d", i); e.key != want {
			t.Errorf("body %d resolved to key %q, want %q", i, e.key, want)
		}
	}
	if hits != capacity {
		t.Errorf("%d of %d bodies hit after one overflow, want %d (single eviction)",
			hits, capacity+1, capacity)
	}
	if n := len(m.entries); n != capacity {
		t.Errorf("memo holds %d entries, want capacity %d", n, capacity)
	}
}

// TestMemoRefreshDoesNotEvict: re-putting a resident body at capacity
// must replace in place, not sacrifice a neighbour.
func TestMemoRefreshDoesNotEvict(t *testing.T) {
	const capacity = 3
	m := newBodyMemo(capacity)
	bodies := make([][]byte, capacity)
	for i := range bodies {
		bodies[i] = fmt.Appendf(nil, `{"body":%d}`, i)
		m.put(bodies[i], memoEntry{key: fmt.Sprintf("key-%d", i)})
	}
	m.put(bodies[0], memoEntry{key: "key-0-refreshed"})
	for i, b := range bodies {
		e, ok := m.get(b)
		if !ok {
			t.Errorf("body %d missing after an in-place refresh", i)
			continue
		}
		if i == 0 && e.key != "key-0-refreshed" {
			t.Errorf("refreshed body resolved to %q, want the new entry", e.key)
		}
	}
}

// TestMemoOversizedNotStored: bodies past the size bound are never
// remembered.
func TestMemoOversizedNotStored(t *testing.T) {
	m := newBodyMemo(4)
	huge := make([]byte, maxMemoBodyBytes+1)
	m.put(huge, memoEntry{key: "huge"})
	if _, ok := m.get(huge); ok {
		t.Error("oversized body was memoised")
	}
}
