package telemetry

// W3C-style trace context: one trace id minted at the edge (gateway or
// first daemon), a fresh span id per hop, and a sampled flag deciding
// whether the hop records a request-scoped span tree. The wire form is
// the traceparent header (version 00 only):
//
//	00-<32 hex trace id>-<16 hex span id>-<2 hex flags>
//
// X-Request-Id derives from the trace context ("r-<trace>.<span>"), so
// grepping any replica's access log for the trace id finds every hop of
// a request — the per-hop span id keeps the ids themselves distinct.

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync/atomic"
)

// TraceparentHeader is the propagation header name (http.Header
// canonicalises the W3C's lowercase "traceparent" to this form; lookups
// are case-insensitive either way).
const TraceparentHeader = "Traceparent"

// TraceContext identifies one hop of one distributed request.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	Sampled bool
}

// idPrefix is 8 random bytes drawn once per process; ids are the XOR of
// the prefix with a monotonic counter, so they are unique within a
// process by construction and collide across processes only if two
// 64-bit random prefixes align — without paying a crypto/rand read per
// request.
var (
	idPrefix  [8]byte
	idCounter atomic.Uint64
)

func init() {
	if _, err := crand.Read(idPrefix[:]); err != nil {
		// An unreadable entropy source leaves ids process-locally unique
		// (the counter still advances); tracing degrades, serving doesn't.
		copy(idPrefix[:], "hybridpf")
	}
	var seed [8]byte
	crand.Read(seed[:])
	idCounter.Store(binary.BigEndian.Uint64(seed[:]))
}

func nextID8() (b [8]byte) {
	binary.BigEndian.PutUint64(b[:], idCounter.Add(1))
	for i := range b {
		b[i] ^= idPrefix[i]
	}
	return b
}

// NewTrace mints a fresh trace context — a new trace id and root span id.
func NewTrace(sampled bool) TraceContext {
	tc := TraceContext{Sampled: sampled}
	hi, lo := nextID8(), nextID8()
	copy(tc.TraceID[:8], hi[:])
	copy(tc.TraceID[8:], lo[:])
	tc.SpanID = nextID8()
	// The all-zero trace id and span id are invalid on the wire; the XOR
	// construction can (astronomically rarely) produce them.
	tc.TraceID[15] |= ensureNonZero(tc.TraceID[:])
	tc.SpanID[7] |= ensureNonZero(tc.SpanID[:])
	return tc
}

func ensureNonZero(b []byte) byte {
	for _, v := range b {
		if v != 0 {
			return 0
		}
	}
	return 1
}

// Child returns this trace with a fresh span id: the context one hop (a
// cluster forward, a gateway fan-out leg) propagates downstream. The
// trace id and the sampling decision ride along unchanged.
func (tc TraceContext) Child() TraceContext {
	tc.SpanID = nextID8()
	tc.SpanID[7] |= ensureNonZero(tc.SpanID[:])
	return tc
}

// Traceparent renders the wire form.
func (tc TraceContext) Traceparent() string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], tc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], tc.SpanID[:])
	b[52], b[53], b[54] = '-', '0', '0'
	if tc.Sampled {
		b[54] = '1'
	}
	return string(b[:])
}

// TraceIDString renders the 32-hex trace id — the value logs carry and
// /debug/trace/{traceid} is keyed by.
func (tc TraceContext) TraceIDString() string {
	var b [32]byte
	hex.Encode(b[:], tc.TraceID[:])
	return string(b[:])
}

// RequestID derives the per-hop X-Request-Id: the full trace id (so one
// grep correlates every replica's log line of a request) plus this hop's
// span id (so each hop's id stays distinct).
func (tc TraceContext) RequestID() string {
	var b [51]byte
	b[0], b[1] = 'r', '-'
	hex.Encode(b[2:34], tc.TraceID[:])
	b[34] = '.'
	hex.Encode(b[35:51], tc.SpanID[:])
	return string(b[:])
}

// Wire renders the traceparent and the derived request id backed by one
// string — the middleware sets both on every response, and a single
// allocation halves the hot path's minting cost.
func (tc TraceContext) Wire() (traceparent, requestID string) {
	var b [106]byte
	b[0], b[1], b[2] = '0', '0', '-'
	hex.Encode(b[3:35], tc.TraceID[:])
	b[35] = '-'
	hex.Encode(b[36:52], tc.SpanID[:])
	b[52], b[53], b[54] = '-', '0', '0'
	if tc.Sampled {
		b[54] = '1'
	}
	b[55], b[56] = 'r', '-'
	copy(b[57:89], b[3:35])
	b[89] = '.'
	copy(b[90:106], b[36:52])
	s := string(b[:])
	return s[:55], s[55:]
}

// ParseTraceparent decodes an incoming traceparent header. Only the
// version-00 fixed form is accepted; anything else (including the
// invalid all-zero ids) reports false and the receiver mints a fresh
// context instead.
func ParseTraceparent(s string) (TraceContext, bool) {
	var tc TraceContext
	if len(s) != 55 || s[0] != '0' || s[1] != '0' || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return tc, false
	}
	if _, err := hex.Decode(tc.TraceID[:], []byte(s[3:35])); err != nil {
		return tc, false
	}
	if _, err := hex.Decode(tc.SpanID[:], []byte(s[36:52])); err != nil {
		return tc, false
	}
	var flags [1]byte
	if _, err := hex.Decode(flags[:], []byte(s[53:55])); err != nil {
		return tc, false
	}
	if ensureNonZero(tc.TraceID[:]) != 0 || ensureNonZero(tc.SpanID[:]) != 0 {
		return tc, false
	}
	tc.Sampled = flags[0]&1 != 0
	return tc, true
}

type traceCtxKey struct{}

// WithTraceContext attaches the hop's trace context to a request context.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom returns the hop's trace context, if one is attached.
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok
}
