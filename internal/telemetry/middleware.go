package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"
)

// statusWriter captures the response status and body size for the access
// log and the request metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += int64(n)
	return n, err
}

// Flush forwards to the wrapped writer so NDJSON streaming handlers can
// push partial responses through the middleware.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// annotations carries the model coordinates a handler attaches to its
// request so the access-log line can report them (program, system, class,
// config) without the middleware knowing any route's schema. It doubles
// as the request's identity carrier — id, trace context, cost
// attribution — so the hot path pays for one context value instead of
// three (each context.WithValue is an allocation, plus one boxing the
// value; the cache-hit path logs all of this on every request).
type annotations struct {
	id string       // set once by instrument, immutable after
	tc TraceContext // this hop's trace context

	mu    sync.Mutex
	attrs []slog.Attr
	attr  attribution
}

type annotationsKey struct{}

// annotate appends structured attributes to the request's access-log line.
// It is a no-op for contexts without an annotation carrier (e.g. direct
// handler tests).
func annotate(ctx context.Context, attrs ...slog.Attr) {
	a, _ := ctx.Value(annotationsKey{}).(*annotations)
	if a == nil {
		return
	}
	a.mu.Lock()
	a.attrs = append(a.attrs, attrs...)
	a.mu.Unlock()
}

// requestID returns the id assigned to the request by instrument, "" if
// none.
func requestID(ctx context.Context) string {
	a, _ := ctx.Value(annotationsKey{}).(*annotations)
	if a == nil {
		return ""
	}
	return a.id
}

// traceContextFor returns the hop's trace context: from the carrier for
// requests that passed instrument, falling back to an explicitly
// attached one (WithTraceContext) for everything else.
func traceContextFor(ctx context.Context) (TraceContext, bool) {
	if a, ok := ctx.Value(annotationsKey{}).(*annotations); ok {
		return a.tc, true
	}
	return TraceContextFrom(ctx)
}

// instrument wraps a handler with the full observability stack: the
// trace context (parsed from an incoming traceparent or minted here,
// with X-Request-Id derived from it), the in-flight gauge, per-route
// request counting and latency observation, a recorded span, panic
// recovery (500 + stack log instead of a dead connection), the optional
// per-request deadline, cancellation accounting, and one structured
// access-log line carrying whatever coordinates the handler annotated.
//
// Tracing: an incoming traceparent wins — its trace id and sampled flag
// propagate, this hop just mints its own span id — so the edge that
// minted the trace decides sampling for the whole chain. Requests
// without one mint a fresh context, sampled per Config.TraceSample.
// Sampled requests carry a RequestTrace in their context; handlers
// record child spans into it and the completed payload lands in the
// trace store, pullable via GET /debug/trace/{traceid}.
//
// The /metrics route is exempt from the in-flight gauge: a scrape would
// otherwise always observe itself as one in-flight request, so the gauge
// could never read 0 from outside. /debug/trace is exempt from the
// request deadline — it blocks for its recording window by design.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	trackInflight := route != "/metrics"
	applyTimeout := s.cfg.RequestTimeout > 0 && route != "/debug/trace"
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		tc, fromWire := ParseTraceparent(r.Header.Get(TraceparentHeader))
		if fromWire {
			tc = tc.Child()
		} else {
			tc = NewTrace(s.sampleTrace())
		}
		tp, id := tc.Wire()
		w.Header().Set("X-Request-Id", id)
		w.Header().Set(TraceparentHeader, tp)
		// A forwarding hop overwrites this with the origin replica's value,
		// so the client always sees the shard whose cache did the work.
		if s.self != "" {
			w.Header().Set(shardHeader, s.self)
		}

		ann := &annotations{id: id, tc: tc}
		ctx := context.WithValue(r.Context(), annotationsKey{}, ann)
		var rt *RequestTrace
		if tc.Sampled {
			rt = NewRequestTrace(tc)
			ctx = WithRequestTrace(ctx, rt)
		}
		if applyTimeout {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
		}
		r = r.WithContext(ctx)

		sw := &statusWriter{ResponseWriter: w}
		if trackInflight {
			s.mInflight.With().Inc()
		}
		defer func() {
			if trackInflight {
				s.mInflight.With().Dec()
			}
			// A context that ended before the handler returned means the
			// request was cut short: deadline expiry or client disconnect.
			if err := ctx.Err(); err != nil {
				reason := "disconnect"
				if err == context.DeadlineExceeded {
					reason = "timeout"
				}
				s.mCancelled.With(route, reason).Inc()
			}
			if rec := recover(); rec != nil {
				s.mPanics.With(route).Inc()
				s.log.LogAttrs(ctx, slog.LevelError, "panic",
					slog.String("id", id),
					slog.String("route", route),
					slog.Any("panic", rec),
					slog.String("stack", string(debug.Stack())))
				if sw.status == 0 {
					sw.Header().Set("Content-Type", "application/json")
					sw.WriteHeader(http.StatusInternalServerError)
					fmt.Fprintln(sw, `{"error":"internal server error","status":500}`)
				}
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			end := time.Now()
			dur := end.Sub(start)
			s.mReq.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
			s.mDur.With(route).Observe(dur.Seconds())
			s.spans.Observe("http", r.Method+" "+route, start, end, map[string]any{
				"id": id, "status": sw.status,
			})
			if rt != nil {
				// The root span closes last, so every child nests inside it
				// in the stitched view; then the payload becomes pullable.
				rt.AddSpan("http", r.Method+" "+route, start, end)
				s.traces.Put(rt.Payload(s.traceSource()))
			}
			ann.mu.Lock()
			attrs := make([]slog.Attr, 0, 10+len(ann.attrs))
			attrs = append(attrs,
				slog.String("id", id),
				// The request id embeds the trace id (r-<trace>.<span>);
				// slicing it avoids re-rendering the hex per request.
				slog.String("trace", id[2:34]),
				slog.String("route", route),
				slog.String("method", r.Method),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", dur))
			if ann.attr.predsStr != "" {
				attrs = append(attrs,
					slog.String("predictions", ann.attr.predsStr),
					slog.String("sim_s", ann.attr.simStr),
					slog.String("energy_j", ann.attr.energyStr))
			}
			attrs = append(attrs, ann.attrs...)
			ann.mu.Unlock()
			level := slog.LevelInfo
			if sw.status >= 500 {
				level = slog.LevelError
			}
			s.log.LogAttrs(ctx, level, "request", attrs...)
		}()
		h(sw, r)
	}
}
