package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"hybridperf/internal/exec"
)

// TestPredictEngineField: a per-request engine selects the simulation
// engine for the cold characterisation and is attributed on the request
// counter; an unknown engine is a structured 400 naming the valid names.
func TestPredictEngineField(t *testing.T) {
	s, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/predict",
		`{"system":"xeon","program":"SP","class":"S","nodes":2,"cores":2,"freq_ghz":1.8,"engine":"sequential"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sequential predict status %d: %s", resp.StatusCode, raw)
	}
	if snap := s.EngineFor(exec.EngineSequential).Snapshot(); snap.Events == 0 {
		t.Error("sequential engine counters untouched after a sequential-engine characterisation")
	}
	if snap := s.EngineFor(exec.EngineSequential).Snapshot(); snap.Handoffs != 0 {
		t.Errorf("sequential engine reported %d goroutine handoffs", snap.Handoffs)
	}

	resp, raw = postJSON(t, ts.URL+"/v1/predict",
		`{"system":"xeon","program":"SP","class":"S","nodes":2,"cores":2,"freq_ghz":1.8,"engine":"warp-drive"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine status %d, want 400: %s", resp.StatusCode, raw)
	}
	msg, status := errorEnvelope(t, resp, raw)
	if status != http.StatusBadRequest || !strings.Contains(msg, "warp-drive") ||
		!strings.Contains(msg, exec.EngineSequential) {
		t.Errorf("error envelope (%d, %q) does not name the bad and valid engines", status, msg)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, samples := parseExposition(t, string(text))
	if got := samples[`hybridperf_requests_by_engine_total{route="/v1/predict",engine="sequential"}`]; got != "1" {
		t.Errorf("sequential request counter = %q, want 1 (the rejected request must not count)", got)
	}
	if got := samples[`hybridperf_engine_events_total{engine="sequential"}`]; got == "" || got == "0" {
		t.Errorf("labelled sequential engine events = %q, want non-zero", got)
	}
}

// TestSweepEngineField mirrors the predict contract on /v1/sweep.
func TestSweepEngineField(t *testing.T) {
	_, ts := newTestServer(t)
	resp, raw := postJSON(t, ts.URL+"/v1/sweep",
		`{"system":"arm","program":"CP","class":"S","pow2":true,"engine":"sequential"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sequential sweep status %d: %s", resp.StatusCode, raw)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/sweep",
		`{"system":"arm","program":"CP","class":"S","engine":"threads"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown engine status %d, want 400: %s", resp.StatusCode, raw)
	}
	if msg, _ := errorEnvelope(t, resp, raw); !strings.Contains(msg, "threads") {
		t.Errorf("error %q does not name the offending engine", msg)
	}
}

// TestConfigDefaultEngine: a server configured with a sequential default
// runs engine-less requests on it and reports it on /v1/systems.
func TestConfigDefaultEngine(t *testing.T) {
	s := NewServer(Config{
		Workers:       2,
		Seed:          42,
		Logger:        slog.New(slog.NewTextHandler(io.Discard, nil)),
		DefaultEngine: exec.EngineSequential,
	})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if s.DefaultEngine() != exec.EngineSequential {
		t.Fatalf("DefaultEngine() = %q, want %q", s.DefaultEngine(), exec.EngineSequential)
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict",
		`{"system":"xeon","program":"LU","class":"S","nodes":1,"cores":2,"freq_ghz":1.8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, raw)
	}
	if snap := s.Engine().Snapshot(); snap.Events == 0 || snap.Handoffs != 0 {
		t.Errorf("default-engine counters = %+v, want sequential activity (events > 0, no handoffs)", snap)
	}

	sresp, err := http.Get(ts.URL + "/v1/systems")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	body, err := io.ReadAll(sresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"default_engine":"sequential"`,
		fmt.Sprintf(`"engines":["%s","%s"]`, exec.EngineGoroutine, exec.EngineSequential),
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/v1/systems response missing %s: %s", want, body)
		}
	}
}

// TestNewServerRejectsUnknownDefaultEngine: a malformed Config.DefaultEngine
// is a programming error and must fail construction loudly.
func TestNewServerRejectsUnknownDefaultEngine(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer accepted an unknown DefaultEngine")
		}
	}()
	NewServer(Config{DefaultEngine: "warp-drive",
		Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
}
