package telemetry

import (
	"io"
	"sync"
	"time"

	"hybridperf/internal/trace"
)

// Spans is a bounded ring buffer of recent wall-clock spans — the serving
// layer's always-on flight recorder. Recording is cheap (one mutexed
// append), the buffer holds the last capacity spans, and an on-demand
// export renders any recent window as Chrome-trace JSON via
// trace.WriteChromeSpans. A nil *Spans ignores all calls, so callers need
// no conditionals.
type Spans struct {
	mu      sync.Mutex
	buf     []spanRec
	next    int
	full    bool
	dropped uint64 // spans overwritten since start
}

// spanRec is one recorded span in absolute wall time.
type spanRec struct {
	name, cat  string
	start, end time.Time
	args       map[string]any
}

// NewSpans creates a recorder holding the most recent capacity spans
// (<= 0 means a default of 4096).
func NewSpans(capacity int) *Spans {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Spans{buf: make([]spanRec, 0, capacity)}
}

// Observe records one completed span. Spans with end before start are
// ignored (a misbehaving clock must not corrupt the export).
func (s *Spans) Observe(cat, name string, start, end time.Time, args map[string]any) {
	if s == nil || end.Before(start) {
		return
	}
	rec := spanRec{name: name, cat: cat, start: start, end: end, args: args}
	s.mu.Lock()
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, rec)
	} else {
		s.buf[s.next] = rec
		s.next = (s.next + 1) % cap(s.buf)
		s.full = true
		s.dropped++
	}
	s.mu.Unlock()
}

// Observer adapts the recorder to the exec/characterize Observe hook
// shape, tagging every span with the given category.
func (s *Spans) Observer(cat string) func(label string, start, end time.Time) {
	if s == nil {
		return nil
	}
	return func(label string, start, end time.Time) {
		s.Observe(cat, label, start, end, nil)
	}
}

// Snapshot returns the recorded spans that end at or after since, as
// trace.Spans with times in seconds relative to since (spans that began
// earlier get a negative start — the viewer handles it, and clamping
// would misreport durations).
func (s *Spans) Snapshot(since time.Time) []trace.Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	recs := make([]spanRec, 0, len(s.buf))
	if s.full {
		recs = append(recs, s.buf[s.next:]...)
		recs = append(recs, s.buf[:s.next]...)
	} else {
		recs = append(recs, s.buf...)
	}
	s.mu.Unlock()
	var out []trace.Span
	for _, r := range recs {
		if r.end.Before(since) {
			continue
		}
		out = append(out, trace.Span{
			Name:  r.name,
			Cat:   r.cat,
			Start: r.start.Sub(since).Seconds(),
			End:   r.end.Sub(since).Seconds(),
			Args:  r.args,
		})
	}
	return out
}

// Dropped reports how many spans the ring has overwritten.
func (s *Spans) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// WriteChrome exports the spans ending at or after since as Chrome-trace
// JSON (chrome://tracing, Perfetto).
func (s *Spans) WriteChrome(w io.Writer, since time.Time) error {
	return trace.WriteChromeSpans(w, s.Snapshot(since))
}
