package telemetry

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func newTestCache(capacity int, ttl time.Duration) *responseCache {
	reg := NewRegistry()
	ctr := cacheCounters{
		hits:      reg.Counter("hits_total", "").With(),
		misses:    reg.Counter("misses_total", "").With(),
		evictions: reg.Counter("evictions_total", "").With(),
		expired:   reg.Counter("expired_total", "").With(),
		collapsed: reg.Counter("collapsed_total", "").With(),
		entries:   reg.Gauge("entries", "").With(),
	}
	return newResponseCache(capacity, ttl, ctr)
}

func resp(s string) *cachedResponse {
	return &cachedResponse{body: []byte(s), lines: [][]byte{[]byte(s)}}
}

func mustDo(t *testing.T, c *responseCache, key, val string) (*cachedResponse, cacheStatus) {
	t.Helper()
	r, status, err := c.do(context.Background(), key, func() (*cachedResponse, error) {
		return resp(val), nil
	})
	if err != nil {
		t.Fatalf("do(%q): %v", key, err)
	}
	return r, status
}

func TestCacheHitAndCounters(t *testing.T) {
	c := newTestCache(4, 0)
	r1, st := mustDo(t, c, "k", "v")
	if st != cacheMiss {
		t.Fatalf("first request status %q, want miss", st)
	}
	r2, st := mustDo(t, c, "k", "DIFFERENT")
	if st != cacheHit {
		t.Fatalf("second request status %q, want hit", st)
	}
	if !bytes.Equal(r1.body, r2.body) {
		t.Error("hit served a different body than the miss stored")
	}
	if h, m := c.ctr.hits.Value(), c.ctr.misses.Value(); h != 1 || m != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", h, m)
	}
	if n := c.ctr.entries.Value(); n != 1 {
		t.Errorf("entries gauge = %v, want 1", n)
	}
}

// TestCacheLRUEviction fills past capacity and checks the least recently
// used entry goes first — with a touch in between promoting an old entry.
func TestCacheLRUEviction(t *testing.T) {
	c := newTestCache(2, 0)
	mustDo(t, c, "a", "1")
	mustDo(t, c, "b", "2")
	mustDo(t, c, "a", "x") // touch a: now b is LRU
	mustDo(t, c, "c", "3") // evicts b
	if _, st := mustDo(t, c, "a", "recompute"); st != cacheHit {
		t.Error("promoted entry a was evicted")
	}
	if _, st := mustDo(t, c, "b", "recompute"); st != cacheMiss {
		t.Error("LRU entry b survived past capacity")
	}
	if n := c.ctr.evictions.Value(); n < 1 {
		t.Errorf("evictions = %d, want >= 1", n)
	}
	if n := c.ctr.expired.Value(); n != 0 {
		t.Errorf("expired = %d, want 0 (LRU pressure is not an expiry)", n)
	}
	if n := c.ctr.entries.Value(); n != 2 {
		t.Errorf("entries gauge = %v, want capacity 2", n)
	}
}

// TestCacheTTLExpiry advances the injected clock past the TTL and expects
// a recompute counted on the expired series — and only there: a TTL death
// must not inflate the evictions counter, which is reserved for capacity
// pressure.
func TestCacheTTLExpiry(t *testing.T) {
	c := newTestCache(4, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	mustDo(t, c, "k", "v1")
	now = now.Add(30 * time.Second)
	if _, st := mustDo(t, c, "k", "v2"); st != cacheHit {
		t.Error("entry expired before its TTL")
	}
	now = now.Add(31 * time.Second)
	r, st := mustDo(t, c, "k", "v3")
	if st != cacheMiss {
		t.Errorf("expired entry served as %q, want miss", st)
	}
	if string(r.body) != "v3" {
		t.Errorf("recompute served %q, want the fresh value", r.body)
	}
	if n := c.ctr.expired.Value(); n != 1 {
		t.Errorf("expired = %d, want 1 (the TTL expiry)", n)
	}
	if n := c.ctr.evictions.Value(); n != 0 {
		t.Errorf("evictions = %d, want 0 (expiry is not capacity pressure)", n)
	}
}

// TestCacheSingleflightCollapse gates the leader's compute open while N
// followers pile onto the same key: exactly one compute runs, everyone
// gets its result, and the counters read misses=1, collapsed=N.
func TestCacheSingleflightCollapse(t *testing.T) {
	c := newTestCache(4, 0)
	const followers = 8
	computeStarted := make(chan struct{})
	computeRelease := make(chan struct{})
	computes := 0

	leaderDone := make(chan *cachedResponse, 1)
	go func() {
		r, _, _ := c.do(context.Background(), "k", func() (*cachedResponse, error) {
			computes++
			close(computeStarted)
			<-computeRelease
			return resp("answer"), nil
		})
		leaderDone <- r
	}()
	<-computeStarted

	var wg sync.WaitGroup
	results := make([]*cachedResponse, followers)
	statuses := make([]cacheStatus, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], statuses[i], _ = c.do(context.Background(), "k", func() (*cachedResponse, error) {
				t.Error("follower ran its own compute")
				return resp("wrong"), nil
			})
		}(i)
	}
	// Wait until every follower is attached to the flight, then release.
	for {
		c.mu.Lock()
		n := c.ctr.collapsed.Value()
		c.mu.Unlock()
		if n == followers {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(computeRelease)
	wg.Wait()
	leader := <-leaderDone

	if computes != 1 {
		t.Fatalf("%d computes ran, want 1", computes)
	}
	for i := range results {
		if statuses[i] != cacheCollapsed {
			t.Errorf("follower %d status %q, want collapsed", i, statuses[i])
		}
		if !bytes.Equal(results[i].body, leader.body) {
			t.Errorf("follower %d got a different body", i)
		}
	}
	if h, m, col := c.ctr.hits.Value(), c.ctr.misses.Value(), c.ctr.collapsed.Value(); h != 0 || m != 1 || col != followers {
		t.Errorf("hits=%d misses=%d collapsed=%d, want 0/1/%d", h, m, col, followers)
	}
	// The flight's answer is now cached.
	if _, st := mustDo(t, c, "k", "recompute"); st != cacheHit {
		t.Error("collapsed flight did not fill the cache")
	}
}

// TestCacheErrorsNotCached: a failed compute is shared with its waiters
// but never stored — the next request retries.
func TestCacheErrorsNotCached(t *testing.T) {
	c := newTestCache(4, 0)
	boom := errors.New("boom")
	_, st, err := c.do(context.Background(), "k", func() (*cachedResponse, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) || st != cacheMiss {
		t.Fatalf("failed compute: status %q err %v", st, err)
	}
	if _, st := mustDo(t, c, "k", "retry"); st != cacheMiss {
		t.Errorf("retry after error status %q, want miss (errors must not be cached)", st)
	}
	if n := c.ctr.entries.Value(); n != 1 {
		t.Errorf("entries gauge = %v, want 1 (only the successful retry)", n)
	}
}

// TestCacheWaiterContextCancelled: a follower whose own context dies
// returns promptly with ctx's error; the leader still completes and fills
// the cache for everyone after.
func TestCacheWaiterContextCancelled(t *testing.T) {
	c := newTestCache(4, 0)
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.do(context.Background(), "k", func() (*cachedResponse, error) {
			close(started)
			<-release
			return resp("v"), nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, st, err := c.do(ctx, "k", nil)
	if !errors.Is(err, context.Canceled) || st != cacheCollapsed {
		t.Fatalf("cancelled waiter: status %q err %v", st, err)
	}
	close(release)
	// The leader was undisturbed: its answer lands in the cache.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if r, st := mustDo(t, c, "k", "recompute"); st == cacheHit && string(r.body) == "v" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leader's answer never reached the cache")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCachePanickedLeaderReleasesWaiters: a leader panicking mid-compute
// must resolve the flight with a retryable error instead of leaving
// waiters hung, and the panic still propagates to the caller.
func TestCachePanickedLeaderReleasesWaiters(t *testing.T) {
	c := newTestCache(4, 0)
	started := make(chan struct{})
	proceed := make(chan struct{})
	go func() {
		defer func() { recover() }() // stand in for the HTTP middleware
		c.do(context.Background(), "k", func() (*cachedResponse, error) {
			close(started)
			<-proceed
			panic("compute exploded")
		})
	}()
	<-started
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.do(context.Background(), "k", nil)
		waiterErr <- err
	}()
	// Attach the waiter, then let the leader blow up.
	for c.ctr.collapsed.Value() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(proceed)
	select {
	case err := <-waiterErr:
		if !errors.Is(err, errFlightAborted) {
			t.Fatalf("waiter error = %v, want errFlightAborted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter hung on the panicked leader's flight")
	}
	// The flight is gone: the next request computes fresh.
	if _, st := mustDo(t, c, "k", "fresh"); st != cacheMiss {
		t.Errorf("post-panic request status %q, want miss", st)
	}
}

// TestCacheOversizedNotStored: giant responses are served but not
// retained.
func TestCacheOversizedNotStored(t *testing.T) {
	c := newTestCache(4, 0)
	huge := &cachedResponse{body: make([]byte, maxCacheEntryBytes+1)}
	r, st, err := c.do(context.Background(), "k", func() (*cachedResponse, error) {
		return huge, nil
	})
	if err != nil || st != cacheMiss || len(r.body) != len(huge.body) {
		t.Fatalf("oversized compute: status %q err %v len %d", st, err, len(r.body))
	}
	if _, st := mustDo(t, c, "k", "small"); st != cacheMiss {
		t.Error("oversized response was retained")
	}
	if n := c.ctr.entries.Value(); n != 1 {
		t.Errorf("entries gauge = %v, want 1", n)
	}
}
