package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"strconv"
	"strings"

	"hybridperf/internal/machine"
)

// Request canonicalisation maps every JSON body that asks for the same
// work to one cache key, so the response cache and its singleflight
// collapse see through syntactic variation: reordered JSON keys (erased
// by decoding), explicitly-spelled defaults (class "" vs "A", freq_ghz 0
// vs f_max, max_nodes 0 vs the testbed size), duplicate and reordered
// batch tuples. Knobs that change only how the answer is computed — never
// what it is — are excluded: workers (wall-clock only) and engine (both
// engines are bit-identical by construction), so a sequential-engine
// request happily hits a goroutine-engine entry.
//
// The unit separator (0x1f) joins fields; it cannot appear in the
// validated system/program/class names the keys carry.

// canonFloat renders a float64 with the shortest round-trippable form, so
// two requests naming the same value canonicalise identically.
func canonFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// sweepCacheKey canonicalises a /v1/sweep request. Callers pass resolved
// values: class defaulted, maxNodes resolved against the profile.
func sweepCacheKey(system, program, class string, maxNodes int, pow2 bool, deadlineS, budgetJ float64) string {
	return strings.Join([]string{
		"sweep", system, program, class,
		strconv.Itoa(maxNodes), strconv.FormatBool(pow2),
		canonFloat(deadlineS), canonFloat(budgetJ),
	}, "\x1f")
}

// adviseCacheKey canonicalises a /v1/advise request. Callers pass
// resolved values: class defaulted, shape validated against the profile,
// policies canonicalised (suite order, deduplicated) and the makespan
// tolerance resolved to its fraction. Engine and workers are excluded
// for the same reason they are everywhere else: the advice is
// bit-identical across engines and worker counts.
func adviseCacheKey(system, program, class string, nodes, cores int, policies []string, maxSlowdown float64) string {
	return strings.Join([]string{
		"advise", system, program, class,
		strconv.Itoa(nodes), strconv.Itoa(cores),
		strings.Join(policies, ","), canonFloat(maxSlowdown),
	}, "\x1f")
}

// canonTuple is one batch tuple after validation and default resolution:
// names verified, frequency resolved to Hz (freq_ghz 0 → the profile's
// f_max).
type canonTuple struct {
	system, program string
	cfg             machine.Config
}

func (t canonTuple) less(u canonTuple) bool {
	if t.system != u.system {
		return t.system < u.system
	}
	if t.program != u.program {
		return t.program < u.program
	}
	if t.cfg.Nodes != u.cfg.Nodes {
		return t.cfg.Nodes < u.cfg.Nodes
	}
	if t.cfg.Cores != u.cfg.Cores {
		return t.cfg.Cores < u.cfg.Cores
	}
	return t.cfg.Freq < u.cfg.Freq
}

// canonicalizeTuples sorts tuples by (system, program, nodes, cores,
// freq) and drops duplicates, in place. The returned slice is the
// canonical evaluation order: /v1/batch responds in exactly this order,
// which is what makes byte-level response caching sound for bodies that
// list the same tuples shuffled or repeated.
func canonicalizeTuples(tuples []canonTuple) []canonTuple {
	sort.Slice(tuples, func(i, j int) bool { return tuples[i].less(tuples[j]) })
	out := tuples[:0]
	for i, t := range tuples {
		if i > 0 && t == tuples[i-1] {
			continue
		}
		out = append(out, t)
	}
	return out
}

// batchCacheKey canonicalises a /v1/batch request from its canonical
// tuple list (already sorted and deduplicated). Batch bodies can carry
// tens of thousands of tuples, so the key is the SHA-256 of the canonical
// serialisation rather than the serialisation itself — map keys stay
// small and comparisons O(1).
func batchCacheKey(class string, tuples []canonTuple) string {
	h := sha256.New()
	h.Write([]byte("batch\x1f" + class))
	var b []byte
	for _, t := range tuples {
		b = b[:0]
		b = append(b, 0x1f)
		b = append(b, t.system...)
		b = append(b, 0x1f)
		b = append(b, t.program...)
		b = append(b, 0x1f)
		b = strconv.AppendInt(b, int64(t.cfg.Nodes), 10)
		b = append(b, 0x1f)
		b = strconv.AppendInt(b, int64(t.cfg.Cores), 10)
		b = append(b, 0x1f)
		b = strconv.AppendFloat(b, t.cfg.Freq, 'g', -1, 64)
		h.Write(b)
	}
	return "batch\x1f" + hex.EncodeToString(h.Sum(nil))
}
