package telemetry

import (
	"strings"
	"testing"
)

// TestTraceparentRoundTrip: a minted context survives the wire form —
// render, parse, compare — with the sampled flag intact either way.
func TestTraceparentRoundTrip(t *testing.T) {
	for _, sampled := range []bool{true, false} {
		tc := NewTrace(sampled)
		wire := tc.Traceparent()
		if len(wire) != 55 || !strings.HasPrefix(wire, "00-") {
			t.Fatalf("malformed traceparent %q", wire)
		}
		wantFlags := "00"
		if sampled {
			wantFlags = "01"
		}
		if got := wire[53:]; got != wantFlags {
			t.Errorf("sampled=%v rendered flags %q, want %q", sampled, got, wantFlags)
		}
		back, ok := ParseTraceparent(wire)
		if !ok {
			t.Fatalf("own wire form rejected: %q", wire)
		}
		if back != tc {
			t.Errorf("round trip changed the context:\n sent %+v\n got  %+v", tc, back)
		}
	}
}

// TestChildKeepsTraceNewSpan: a downstream hop shares the trace id and
// the sampling decision but owns a fresh span id — so one grep finds
// every hop while each hop's request id stays distinct.
func TestChildKeepsTraceNewSpan(t *testing.T) {
	tc := NewTrace(true)
	child := tc.Child()
	if child.TraceID != tc.TraceID {
		t.Error("Child changed the trace id")
	}
	if child.SpanID == tc.SpanID {
		t.Error("Child reused the parent's span id")
	}
	if !child.Sampled {
		t.Error("Child dropped the sampled flag")
	}
	if child.TraceIDString() != tc.TraceIDString() {
		t.Error("TraceIDString differs between parent and child")
	}
	if child.RequestID() == tc.RequestID() {
		t.Error("parent and child share a request id")
	}
}

// TestRequestIDShape: "r-<32 hex trace>.<16 hex span>" — the trace id is
// embedded whole, so the access-log id correlates with /debug/trace keys.
func TestRequestIDShape(t *testing.T) {
	tc := NewTrace(false)
	id := tc.RequestID()
	if len(id) != 51 || !strings.HasPrefix(id, "r-") || id[34] != '.' {
		t.Fatalf("request id shape %q", id)
	}
	if got := id[2:34]; got != tc.TraceIDString() {
		t.Errorf("request id carries trace %q, want %q", got, tc.TraceIDString())
	}
}

// TestParseTraceparentRejects: anything but the version-00 fixed form —
// wrong length, wrong version, bad separators, non-hex, the invalid
// all-zero ids — reports false so the receiver mints a fresh context.
func TestParseTraceparentRejects(t *testing.T) {
	valid := NewTrace(true).Traceparent()
	cases := map[string]string{
		"empty":          "",
		"truncated":      valid[:54],
		"overlong":       valid + "0",
		"version 01":     "01" + valid[2:],
		"version ff":     "ff" + valid[2:],
		"bad separator":  valid[:35] + "_" + valid[36:],
		"non-hex trace":  valid[:3] + "zz" + valid[5:],
		"non-hex span":   valid[:36] + "zz" + valid[38:],
		"non-hex flags":  valid[:53] + "zz",
		"all-zero trace": "00-00000000000000000000000000000000-" + valid[36:],
		"all-zero span":  valid[:36] + "0000000000000000-01",
	}
	for name, wire := range cases {
		if _, ok := ParseTraceparent(wire); ok {
			t.Errorf("%s accepted: %q", name, wire)
		}
	}
}

// TestParseTraceparentFlags: only bit 0 of the flags byte means sampled.
func TestParseTraceparentFlags(t *testing.T) {
	base := NewTrace(false).Traceparent()[:53]
	for flags, want := range map[string]bool{"00": false, "01": true, "ff": true, "fe": false} {
		tc, ok := ParseTraceparent(base + flags)
		if !ok {
			t.Fatalf("flags %q rejected", flags)
		}
		if tc.Sampled != want {
			t.Errorf("flags %q parsed sampled=%v, want %v", flags, tc.Sampled, want)
		}
	}
}

// TestNewTraceUnique: two mints never collide — the per-process XOR
// counter construction guarantees it.
func TestNewTraceUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTrace(false).TraceIDString()
		if seen[id] {
			t.Fatalf("trace id %q repeated", id)
		}
		seen[id] = true
	}
}
