package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

type batchResponse struct {
	Class   string `json:"class"`
	Count   int    `json:"count"`
	Groups  int    `json:"groups"`
	Results []struct {
		System  string `json:"system"`
		Program string `json:"program"`
		Config  struct {
			Nodes   int     `json:"nodes"`
			Cores   int     `json:"cores"`
			FreqGHz float64 `json:"freq_ghz"`
		} `json:"config"`
		TimeS   float64 `json:"time_s"`
		EnergyJ float64 `json:"energy_j"`
		PowerW  float64 `json:"power_w"`
		UCR     float64 `json:"ucr"`
	} `json:"results"`
}

// TestBatchMatchesPredict: every prediction served through /v1/batch —
// vectorised, grouped, pooled buffers — is bit-identical to the same tuple
// served alone through /v1/predict; duplicates collapse and results come
// back in canonical order with a defaulted frequency resolved to f_max.
func TestBatchMatchesPredict(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"class":"A","tuples":[
		{"system":"xeon","program":"SP","nodes":4,"cores":8,"freq_ghz":1.8},
		{"system":"arm","program":"CP","nodes":2,"cores":4,"freq_ghz":1.4},
		{"system":"xeon","program":"SP","nodes":1,"cores":2},
		{"system":"xeon","program":"SP","nodes":4,"cores":8,"freq_ghz":1.8}
	]}`
	resp, raw := postJSON(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, raw)
	}
	var got batchResponse
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	// 4 tuples, one duplicate -> 3 unique across 2 (system, program) groups,
	// sorted arm/CP before xeon/SP, then by (nodes, cores, freq).
	if got.Count != 3 || got.Groups != 2 || len(got.Results) != 3 {
		t.Fatalf("count=%d groups=%d results=%d, want 3/2/3", got.Count, got.Groups, len(got.Results))
	}
	order := []string{"arm/CP/2/4", "xeon/SP/1/2", "xeon/SP/4/8"}
	for i, r := range got.Results {
		key := fmt.Sprintf("%s/%s/%d/%d", r.System, r.Program, r.Config.Nodes, r.Config.Cores)
		if key != order[i] {
			t.Errorf("result %d = %s, want canonical order %s", i, key, order[i])
		}
	}
	for _, r := range got.Results {
		pb := fmt.Sprintf(`{"system":%q,"program":%q,"class":"A","nodes":%d,"cores":%d,"freq_ghz":%v}`,
			r.System, r.Program, r.Config.Nodes, r.Config.Cores, r.Config.FreqGHz)
		presp, praw := postJSON(t, ts.URL+"/v1/predict", pb)
		if presp.StatusCode != http.StatusOK {
			t.Fatalf("predict status %d: %s", presp.StatusCode, praw)
		}
		var want predictResponse
		if err := json.Unmarshal(praw, &want); err != nil {
			t.Fatal(err)
		}
		if r.TimeS != want.TimeS || r.EnergyJ != want.EnergyJ || r.PowerW != want.PowerW || r.UCR != want.UCR {
			t.Errorf("batch result %s/%s %+v diverges from /v1/predict %+v",
				r.System, r.Program, r, want)
		}
	}
	// The defaulted-frequency tuple resolved to xeon's f_max.
	if f := got.Results[1].Config.FreqGHz; f <= 0 {
		t.Errorf("defaulted freq_ghz rendered as %v, want f_max", f)
	}
}

func TestBatchErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)
	many := `{"system":"xeon","program":"SP","nodes":1,"cores":1,"freq_ghz":1.8},`
	cases := []struct {
		name, body string
		wantStatus int
		wantSubstr string
	}{
		{"no tuples", `{"class":"A","tuples":[]}`, 400, "no tuples"},
		{"missing tuples", `{"class":"A"}`, 400, "no tuples"},
		{"unknown system", `{"tuples":[{"system":"xeon","program":"SP","nodes":1,"cores":1},{"system":"cray","program":"SP","nodes":1,"cores":1}]}`, 400, "tuple 1: unknown system"},
		{"unknown program", `{"tuples":[{"system":"xeon","program":"NOPE","nodes":1,"cores":1}]}`, 400, "tuple 0: unknown program"},
		{"bad class", `{"class":"Z","tuples":[{"system":"xeon","program":"SP","nodes":1,"cores":1}]}`, 400, "class"},
		{"invalid config", `{"tuples":[{"system":"xeon","program":"SP","nodes":1,"cores":1},{"system":"xeon","program":"SP","nodes":0,"cores":1}]}`, 400, "tuple 1: invalid configuration"},
		{"unknown field", `{"tuplez":[]}`, 400, "tuplez"},
		{"over the tuple cap", `{"tuples":[` + strings.Repeat(many, maxBatchTuples) + many[:len(many)-1] + `]}`, 400, "limit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL+"/v1/batch", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %.300s", resp.StatusCode, tc.wantStatus, raw)
			}
			msg, _ := errorEnvelope(t, resp, raw)
			if !strings.Contains(msg, tc.wantSubstr) {
				t.Errorf("error %q does not mention %q", msg, tc.wantSubstr)
			}
		})
	}
}

// readStream POSTs body with streaming requested (via the Accept header)
// and returns the NDJSON lines plus the X-Response-Cache header.
//
// Headers are asserted from resp.Header the moment Do returns — before a
// single body byte is read. net/http silently drops any header the
// handler sets after the first flush, so a header visible here was
// provably written before the stream began; one set too late would be
// absent (or demoted to a trailer, pinned empty below).
func readStream(t *testing.T, url, body string) ([]string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "application/x-ndjson")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q, want application/x-ndjson", ct)
	}
	cacheHdr := resp.Header.Get("X-Response-Cache")
	if cacheHdr == "" {
		t.Error("X-Response-Cache missing from the pre-flush headers of a streamed response")
	}
	if resp.Header.Get("X-Request-Id") == "" {
		t.Error("X-Request-Id missing from the pre-flush headers of a streamed response")
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// The body has been fully drained: any header the handler wrote after
	// the first flush would surface here as a trailer instead of being
	// delivered. An empty trailer set proves nothing arrived late.
	if len(resp.Trailer) != 0 {
		t.Errorf("streamed response carried %d trailer(s) %v — headers were written after the first flush",
			len(resp.Trailer), resp.Trailer)
	}
	return lines, cacheHdr
}

// TestStreamedMatchesDocument is the streamed/non-streamed identity
// contract for both cacheable endpoints: the NDJSON lines carry exactly
// the document's results (same JSON fragments, same order) plus one
// trailing summary whose fields match the document header.
func TestStreamedMatchesDocument(t *testing.T) {
	for _, tc := range []struct {
		route, body, lineKey, docList string
	}{
		{"/v1/batch", `{"class":"A","tuples":[
			{"system":"arm","program":"CP","nodes":2,"cores":4,"freq_ghz":1.4},
			{"system":"arm","program":"CP","nodes":1,"cores":2,"freq_ghz":1.4}
		]}`, "result", "results"},
		{"/v1/sweep", `{"system":"arm","program":"CP","class":"S","pow2":true}`, "point", "frontier"},
	} {
		t.Run(tc.route, func(t *testing.T) {
			// Cache-less server: identity must hold by construction, not via
			// the cache serving both shapes from one entry.
			_, ts := newLifecycleServer(t, Config{})
			resp, raw := postJSON(t, ts.URL+tc.route, tc.body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("document status %d: %s", resp.StatusCode, raw)
			}
			var doc map[string]json.RawMessage
			if err := json.Unmarshal(raw, &doc); err != nil {
				t.Fatal(err)
			}
			var docItems []json.RawMessage
			if err := json.Unmarshal(doc[tc.docList], &docItems); err != nil {
				t.Fatal(err)
			}

			lines, cacheHdr := readStream(t, ts.URL+tc.route, tc.body)
			if cacheHdr != string(cacheBypass) {
				t.Errorf("X-Response-Cache = %q on a cache-less server, want bypass", cacheHdr)
			}
			if len(lines) != len(docItems)+1 {
				t.Fatalf("%d NDJSON lines for %d document items (+1 summary)", len(lines), len(docItems))
			}
			for i, item := range docItems {
				var line struct {
					Type string          `json:"type"`
					Data json.RawMessage `json:"-"`
				}
				var full map[string]json.RawMessage
				if err := json.Unmarshal([]byte(lines[i]), &full); err != nil {
					t.Fatalf("line %d: %v", i, err)
				}
				json.Unmarshal(full["type"], &line.Type)
				if line.Type != tc.lineKey {
					t.Fatalf("line %d type %q, want %q", i, line.Type, tc.lineKey)
				}
				if string(full[tc.lineKey]) != string(item) {
					t.Errorf("line %d payload differs from document item:\n%s\n%s",
						i, full[tc.lineKey], item)
				}
			}
			// Trailing summary: type tag plus every non-list document field.
			var sum map[string]json.RawMessage
			if err := json.Unmarshal([]byte(lines[len(lines)-1]), &sum); err != nil {
				t.Fatal(err)
			}
			var sumType string
			json.Unmarshal(sum["type"], &sumType)
			if sumType != "summary" {
				t.Fatalf("last line type %q, want summary", sumType)
			}
			for k, v := range doc {
				if k == tc.docList {
					continue
				}
				if string(sum[k]) != string(v) {
					t.Errorf("summary field %s = %s, document says %s", k, sum[k], v)
				}
			}
		})
	}
}

// TestResponseCacheByteIdentity: a cache hit serves the exact bytes the
// miss computed, for both wire shapes, with X-Response-Cache flipping
// miss -> hit — and the streamed form of a cached answer equals the
// streamed form of the fresh one.
func TestResponseCacheByteIdentity(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"class":"A","tuples":[
		{"system":"xeon","program":"SP","nodes":2,"cores":4,"freq_ghz":1.8},
		{"system":"xeon","program":"SP","nodes":1,"cores":1,"freq_ghz":1.8}
	]}`
	resp1, raw1 := postJSON(t, ts.URL+"/v1/batch", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("fresh batch status %d: %s", resp1.StatusCode, raw1)
	}
	if h := resp1.Header.Get("X-Response-Cache"); h != string(cacheMiss) {
		t.Errorf("fresh X-Response-Cache = %q, want miss", h)
	}
	// Same work spelled differently: tuples reordered, one duplicated,
	// class defaulted instead of explicit.
	variant := `{"tuples":[
		{"system":"xeon","program":"SP","nodes":1,"cores":1,"freq_ghz":1.8},
		{"system":"xeon","program":"SP","nodes":2,"cores":4,"freq_ghz":1.8},
		{"system":"xeon","program":"SP","nodes":1,"cores":1,"freq_ghz":1.8}
	]}`
	resp2, raw2 := postJSON(t, ts.URL+"/v1/batch", variant)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("variant batch status %d: %s", resp2.StatusCode, raw2)
	}
	if h := resp2.Header.Get("X-Response-Cache"); h != string(cacheHit) {
		t.Errorf("variant X-Response-Cache = %q, want hit (canonicalisation failed)", h)
	}
	if string(raw1) != string(raw2) {
		t.Errorf("cached response differs from fresh:\n%s\n%s", raw1, raw2)
	}
	streamed, cacheHdr := readStream(t, ts.URL+"/v1/batch", variant)
	if cacheHdr != string(cacheHit) {
		t.Errorf("streamed variant X-Response-Cache = %q, want hit", cacheHdr)
	}
	if got := strings.Join(streamed, "\n") + "\n"; len(got) == 0 {
		t.Fatal("empty cached stream")
	}

	// Sweep: explicit defaults hit the entry the bare request filled.
	sw1 := `{"system":"arm","program":"CP","class":"S","pow2":true}`
	sw2 := `{"system":"arm","program":"CP","class":"S","pow2":true,"max_nodes":8,"workers":1}`
	r1, braw1 := postJSON(t, ts.URL+"/v1/sweep", sw1)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("sweep status %d: %s", r1.StatusCode, braw1)
	}
	r2, braw2 := postJSON(t, ts.URL+"/v1/sweep", sw2)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("sweep variant status %d: %s", r2.StatusCode, braw2)
	}
	if h := r2.Header.Get("X-Response-Cache"); h != string(cacheHit) {
		t.Errorf("sweep with spelled-out defaults X-Response-Cache = %q, want hit "+
			"(max_nodes=testbed size and workers must canonicalise away)", h)
	}
	if string(braw1) != string(braw2) {
		t.Error("cached sweep differs from fresh")
	}
}

// TestBatchSingleflightEndToEnd fires N identical cold batch requests at
// once: the model characterises exactly once, the cache records one miss,
// and hits + collapsed account for the other N-1 — nobody computes twice.
func TestBatchSingleflightEndToEnd(t *testing.T) {
	const n = 6
	s, ts := newTestServer(t)
	body := `{"class":"S","tuples":[{"system":"arm","program":"LB","nodes":2,"cores":4,"freq_ghz":1.4}]}`
	var wg sync.WaitGroup
	bodies := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, raw := postJSON(t, ts.URL+"/v1/batch", body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d status %d: %s", i, resp.StatusCode, raw)
				return
			}
			bodies[i] = string(raw)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if bodies[i] != bodies[0] {
			t.Errorf("request %d body differs", i)
		}
	}
	if chars := s.mChar.With("arm", "LB").Value(); chars != 1 {
		t.Errorf("characterisations = %d, want 1", chars)
	}
	c := s.respCache.ctr
	if m := c.misses.Value(); m != 1 {
		t.Errorf("cache misses = %d, want 1", m)
	}
	if h, col := c.hits.Value(), c.collapsed.Value(); h+col != n-1 {
		t.Errorf("hits (%d) + collapsed (%d) = %d, want %d", h, col, h+col, n-1)
	}
}

// TestBatchBodyMemoFastPath: an exact-byte repeat of a batch body is
// served through the body memo — counted as a cache hit and
// byte-identical to the original answer — and a memoised body whose
// cached answer has since been evicted falls back to the full
// decode-and-compute path instead of failing or serving stale bytes.
func TestBatchBodyMemoFastPath(t *testing.T) {
	s, ts := newTestServer(t)
	body := `{"class":"A","tuples":[{"system":"xeon","program":"SP","nodes":3,"cores":2,"freq_ghz":1.5}]}`
	resp1, raw1 := postJSON(t, ts.URL+"/v1/batch", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first batch status %d: %s", resp1.StatusCode, raw1)
	}
	if _, ok := s.batchMemo.get([]byte(body)); !ok {
		t.Fatal("validated body was not memoised")
	}
	hits0 := s.respCache.ctr.hits.Value()
	resp2, raw2 := postJSON(t, ts.URL+"/v1/batch", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("repeat batch status %d: %s", resp2.StatusCode, raw2)
	}
	if h := resp2.Header.Get("X-Response-Cache"); h != string(cacheHit) {
		t.Errorf("repeat X-Response-Cache = %q, want hit", h)
	}
	if string(raw2) != string(raw1) {
		t.Errorf("memo-served response differs from fresh:\n%s\n%s", raw1, raw2)
	}
	if got := s.respCache.ctr.hits.Value(); got != hits0+1 {
		t.Errorf("cache hits = %d, want %d (memo path must count as a hit)", got, hits0+1)
	}

	// Drop the cached answer out from under the memo: the next repeat
	// must fall through to the full path and recompute.
	s.respCache.mu.Lock()
	for s.respCache.lru.Len() > 0 {
		s.respCache.removeLocked(s.respCache.lru.Back())
	}
	s.respCache.mu.Unlock()
	resp3, raw3 := postJSON(t, ts.URL+"/v1/batch", body)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("post-eviction batch status %d: %s", resp3.StatusCode, raw3)
	}
	if h := resp3.Header.Get("X-Response-Cache"); h != string(cacheMiss) {
		t.Errorf("post-eviction X-Response-Cache = %q, want miss (memo must not serve an evicted entry)", h)
	}
	if string(raw3) != string(raw1) {
		t.Error("recomputed response differs from the original")
	}
}
