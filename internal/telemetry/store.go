package telemetry

import (
	"context"
	"fmt"
	"log/slog"

	"hybridperf/internal/characterize"
	"hybridperf/internal/core"
	"hybridperf/internal/machine"
	"hybridperf/internal/modelstore"
	"hybridperf/internal/workload"
)

// loadModelStore warm-boots the model cache from Config.ModelStore: every
// snapshot whose key matches this server's campaign parameters (seed and
// the default baseline class) is rebuilt into a ready cache entry, so the
// first request for that (system, program) answers from arithmetic
// instead of re-running the characterisation campaign. The warm path is
// bit-identical to the cold one because the snapshot payload is the exact
// core.Inputs a campaign would produce and core.New is deterministic.
//
// Nothing here is fatal. A snapshot the store flags as corrupt or stale,
// or one naming a system/program this binary no longer knows, or inputs
// core.New rejects — each is skipped and counted on
// hybridperf_model_store_load_errors_total; the daemon boots cold for
// those keys and re-characterises on demand (overwriting the bad file on
// the next successful campaign).
//
// Runs from NewServer only, before any request can race the cache map.
func (s *Server) loadModelStore() {
	entries, stats, bad, err := s.cfg.ModelStore.Load()
	if err != nil {
		s.mStoreLoadErrs.Inc()
		s.log.LogAttrs(context.Background(), slog.LevelError, "model store scan failed",
			slog.String("dir", s.cfg.ModelStore.Dir()), slog.Any("err", err))
		return
	}
	for _, b := range bad {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "model store snapshot skipped",
			slog.String("file", b.Path),
			slog.Bool("stale", b.Stale),
			slog.String("reason", b.Reason))
	}
	s.mStoreLoadErrs.Add(uint64(stats.Corrupt + stats.Stale))

	adopted := 0
	for _, ent := range entries {
		if ent.Key.Seed != s.cfg.Seed || ent.Key.BaselineClass != string(defaultBaselineClass()) {
			// A valid snapshot from a differently-parameterised daemon
			// (another seed sharing the store directory). Not an error:
			// leave it for its owner, characterise our own on demand.
			continue
		}
		key := modelKey{system: ent.Key.System, program: ent.Key.Program}
		if err := s.adoptSnapshot(key, ent.Inputs); err != nil {
			s.mStoreLoadErrs.Inc()
			s.log.LogAttrs(context.Background(), slog.LevelWarn, "model store snapshot unusable",
				slog.String("system", key.system),
				slog.String("program", key.program),
				slog.Any("err", err))
			continue
		}
		adopted++
	}
	if stats.Loaded > 0 || stats.Corrupt > 0 || stats.Stale > 0 {
		s.log.LogAttrs(context.Background(), slog.LevelInfo, "model store loaded",
			slog.String("dir", s.cfg.ModelStore.Dir()),
			slog.Int("adopted", adopted),
			slog.Int("snapshots", stats.Loaded),
			slog.Int("corrupt", stats.Corrupt),
			slog.Int("stale", stats.Stale))
	}
}

// adoptSnapshot turns one loaded snapshot into a ready model-cache entry.
// The entry's sync.Once is burnt so a later Server.model call treats it
// exactly like a completed campaign and never re-characterises.
func (s *Server) adoptSnapshot(key modelKey, in core.Inputs) error {
	prof, err := machine.ByName(key.system)
	if err != nil {
		return err
	}
	spec, err := workload.ByName(key.program)
	if err != nil {
		return err
	}
	// Mislabel check the store itself cannot do: the snapshot key is a
	// catalogue lookup name, the inputs record the canonical profile the
	// campaign actually characterised. A mismatch means a hand-assembled
	// or mangled file — reject rather than serve another system's model.
	if in.System != prof.Name || in.Program != spec.Name {
		return fmt.Errorf("snapshot inputs characterise %s/%s but key %s/%s resolves to %s/%s",
			in.System, in.Program, key.system, key.program, prof.Name, spec.Name)
	}
	m, err := core.New(in, nil)
	if err != nil {
		return err
	}
	e := &modelEntry{prof: prof, spec: spec, model: m}
	e.once.Do(func() {})
	e.ready.Store(true)
	s.mu.Lock()
	s.models[key] = e
	s.mu.Unlock()
	s.mModels.With().Inc()
	s.mStoreLoads.Inc()
	return nil
}

// snapshotModel persists one freshly characterised summary; called from
// the campaign critical section after core.New succeeded. A write failure
// is logged and otherwise ignored — persistence is an optimisation for
// the next boot, never a correctness dependency of this one.
func (s *Server) snapshotModel(key modelKey, sum *characterize.Summary) {
	if s.cfg.ModelStore == nil {
		return
	}
	skey := modelstore.Key{
		System:        key.system,
		Program:       key.program,
		BaselineClass: string(sum.BaselineClass),
		BaselineIters: sum.Inputs.BaselineIters,
		Seed:          s.cfg.Seed,
	}
	if err := s.cfg.ModelStore.Put(skey, sum.Inputs); err != nil {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "model store write failed",
			slog.String("system", key.system),
			slog.String("program", key.program),
			slog.Any("err", err))
		return
	}
	s.mStoreWrites.Inc()
}

// defaultBaselineClass is the baseline class the server's campaigns run
// (characterize.Options defaulting): snapshots are only adopted when they
// characterised the same baseline input the cold path would.
func defaultBaselineClass() workload.Class { return workload.ClassS }
