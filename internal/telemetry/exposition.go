// Package telemetry gives the model engine an externally observable
// serving surface: a Prometheus text-format exposition of service- and
// engine-level metrics, structured request logging, lightweight wall-clock
// spans exported as Chrome-trace JSON, and the HTTP daemon (hybridperfd)
// that ties them to the prediction API. Everything here rides the
// nil-guarded observation hooks the engine already exposes — the
// simulation hot path is untouched and results stay bit-for-bit identical
// with every collector attached.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"hybridperf/internal/metrics"
)

// Counter is a monotonically increasing service-level counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// FloatCounter is a monotonically increasing counter carrying a float
// total (simulated seconds, predicted joules) — lock-free via
// compare-and-swap on the float's bit pattern, so it can sit on the
// serving path next to the integer counters.
type FloatCounter struct{ bits atomic.Uint64 }

// Add accumulates v (must be >= 0 to keep the series monotonic; the
// attribution sums it carries are non-negative by construction).
func (c *FloatCounter) Add(v float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a service-level gauge (in-flight requests, cached models).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bound float histogram (request latencies). Bounds
// are upper bucket edges in ascending order; an implicit +Inf bucket
// absorbs the tail. Unlike the engine's lock-free pow2 histograms this
// one sits on the request path, not the simulation hot path, so a mutex
// is fine and buys an exact sum.
type Histogram struct {
	bounds []float64
	mu     sync.Mutex
	counts []uint64 // per-bucket (non-cumulative), len(bounds)+1
	sum    float64
	total  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.mu.Lock()
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// snapshot copies counts/sum/total under the lock.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	counts := append([]uint64(nil), h.counts...)
	return counts, h.sum, h.total
}

// Quantile interpolates the q-quantile from the bucket counts: linear
// inside the bucket holding the target rank, with the first bucket
// anchored at 0 and the +Inf bucket clamped to the largest finite bound.
// Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	counts, _, total := h.snapshot()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	cum := 0.0
	for i, n := range counts {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			if i == len(h.bounds) { // +Inf bucket: clamp to the last edge
				return h.bounds[len(h.bounds)-1]
			}
			hi := h.bounds[i]
			return lo + (target-cum)/float64(n)*(hi-lo)
		}
		cum = next
	}
	return h.bounds[len(h.bounds)-1]
}

// DefBuckets are the default request-latency bounds [s], a classical
// half-decade ladder from 0.5 ms to 10 s.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// metricKind tags the exposition TYPE of a family.
type metricKind string

const (
	kindCounter      metricKind = "counter"
	kindFloatCounter metricKind = "floatcounter" // renders as TYPE counter
	kindGauge        metricKind = "gauge"
	kindHistogram    metricKind = "histogram"
)

// typeText maps a kind to its exposition TYPE token (float counters are
// an implementation detail, not a Prometheus type).
func (k metricKind) typeText() string {
	if k == kindFloatCounter {
		return string(kindCounter)
	}
	return string(k)
}

// family is one named metric with its labelled series.
type family struct {
	name   string
	help   string
	kind   metricKind
	labels []string
	bounds []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // label-values key -> *Counter | *Gauge | *Histogram
}

// seriesKey joins label values into a map key (0x1f never appears in the
// short enum-like label values this registry carries).
func seriesKey(values []string) string { return strings.Join(values, "\x1f") }

// get returns the series for the given label values, creating it on first
// use.
func (f *family) get(values []string) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := seriesKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.series[key]; ok {
		return m
	}
	var m any
	switch f.kind {
	case kindCounter:
		m = &Counter{}
	case kindFloatCounter:
		m = &FloatCounter{}
	case kindGauge:
		m = &Gauge{}
	case kindHistogram:
		m = &Histogram{bounds: f.bounds, counts: make([]uint64, len(f.bounds)+1)}
	}
	f.series[key] = m
	return m
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter { return v.f.get(values).(*Counter) }

// FloatCounterVec is a float counter family keyed by label values.
type FloatCounterVec struct{ f *family }

// With returns the float counter for the given label values.
func (v *FloatCounterVec) With(values ...string) *FloatCounter {
	return v.f.get(values).(*FloatCounter)
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge { return v.f.get(values).(*Gauge) }

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram { return v.f.get(values).(*Histogram) }

// Each calls fn for every live series, in sorted label order — used by
// scrape-time derived families (latency quantiles).
func (v *HistogramVec) Each(fn func(labelValues []string, h *Histogram)) {
	v.f.mu.Lock()
	keys := make([]string, 0, len(v.f.series))
	for k := range v.f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snap := make([]any, len(keys))
	for i, k := range keys {
		snap[i] = v.f.series[k]
	}
	v.f.mu.Unlock()
	for i, k := range keys {
		fn(strings.Split(k, "\x1f"), snap[i].(*Histogram))
	}
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format (version 0.0.4). Families render in registration
// order, series within a family in sorted label order, so scrapes are
// deterministic and diffable.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
	scrapers []func(io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

func (r *Registry) register(name, help string, kind metricKind, bounds []float64, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic("telemetry: duplicate metric family " + name)
	}
	f := &family{name: name, help: help, kind: kind, labels: labels, bounds: bounds, series: map[string]any{}}
	r.families = append(r.families, f)
	r.byName[name] = f
	return f
}

// Counter registers a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, nil, labels)}
}

// FloatCounter registers a counter family carrying float totals
// (exposed as TYPE counter).
func (r *Registry) FloatCounter(name, help string, labels ...string) *FloatCounterVec {
	return &FloatCounterVec{r.register(name, help, kindFloatCounter, nil, labels)}
}

// Gauge registers a gauge family. With no labels, the single series is
// addressed as vec.With().
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, nil, labels)}
}

// Histogram registers a histogram family with the given upper bucket
// bounds (ascending; +Inf implicit).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, bounds, labels)}
}

// OnScrape appends a collector invoked at the end of every WriteText —
// the hook for series derived at scrape time (engine snapshot, latency
// quantiles).
func (r *Registry) OnScrape(fn func(io.Writer)) {
	r.mu.Lock()
	r.scrapers = append(r.scrapers, fn)
	r.mu.Unlock()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// renderLabels formats {k="v",...}; extra appends a pre-formatted pair
// (the histogram "le"). Empty label sets render as "".
func renderLabels(names, values []string, extra string) string {
	if len(names) == 0 && extra == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, n, escapeLabel(values[i]))
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value: integers without exponent, +Inf as
// the exposition token.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders every family and then the scrape-time collectors.
func (r *Registry) WriteText(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	scrapers := make([]func(io.Writer), len(r.scrapers))
	copy(scrapers, r.scrapers)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snap := make([]any, len(keys))
		for i, k := range keys {
			snap[i] = f.series[k]
		}
		f.mu.Unlock()
		if len(keys) == 0 {
			continue
		}
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind.typeText())
		for i, k := range keys {
			var values []string
			if k != "" || len(f.labels) > 0 {
				values = strings.Split(k, "\x1f")
			}
			switch m := snap[i].(type) {
			case *Counter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(f.labels, values, ""), m.Value())
			case *FloatCounter:
				fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, values, ""), formatFloat(m.Value()))
			case *Gauge:
				fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(f.labels, values, ""), m.Value())
			case *Histogram:
				counts, sum, total := m.snapshot()
				cum := uint64(0)
				for bi, bound := range f.bounds {
					cum += counts[bi]
					le := fmt.Sprintf(`le="%s"`, formatFloat(bound))
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, values, le), cum)
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(f.labels, values, `le="+Inf"`), total)
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(f.labels, values, ""), formatFloat(sum))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(f.labels, values, ""), total)
			}
		}
	}
	for _, fn := range scrapers {
		fn(w)
	}
}

// EngineSeries is one labelled engine-counter snapshot for WriteEngineText:
// the counters accumulated by simulations on one engine mode. An empty
// Engine renders unlabelled series (the single-engine form).
type EngineSeries struct {
	Engine string
	Snap   metrics.EngineSnapshot
}

// WriteEngineText renders engine counter snapshots as Prometheus series
// under the hybridperf_engine_* namespace: the simulator-level counters
// accumulated across every run the daemon has executed, one sample per
// series with an engine="..." label (HELP/TYPE emitted once per family).
// The MPI message-size histogram converts the engine's power-of-two
// buckets to cumulative le edges; its _sum is estimated from bucket
// midpoints (the engine tracks counts per size class, not exact byte
// totals) and the HELP string says so.
func WriteEngineText(w io.Writer, series ...EngineSeries) {
	lbl := func(s EngineSeries, extra string) string {
		switch {
		case s.Engine == "" && extra == "":
			return ""
		case s.Engine == "":
			return "{" + extra + "}"
		case extra == "":
			return fmt.Sprintf("{engine=\"%s\"}", escapeLabel(s.Engine))
		}
		return fmt.Sprintf("{engine=\"%s\",%s}", escapeLabel(s.Engine), extra)
	}
	counter := func(name, help string, v func(metrics.EngineSnapshot) uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, s := range series {
			fmt.Fprintf(w, "%s%s %d\n", name, lbl(s, ""), v(s.Snap))
		}
	}
	counter("hybridperf_engine_events_total", "Events dispatched by the DES kernel.",
		func(s metrics.EngineSnapshot) uint64 { return s.Events })
	counter("hybridperf_engine_handoffs_total", "Direct process-to-process handoff dispatches.",
		func(s metrics.EngineSnapshot) uint64 { return s.Handoffs })
	counter("hybridperf_engine_self_dispatches_total", "Park fast-path dispatches (next event was the parker's own).",
		func(s metrics.EngineSnapshot) uint64 { return s.SelfDispatches })
	counter("hybridperf_engine_scheduler_dispatches_total", "Dispatches performed by the Run caller.",
		func(s metrics.EngineSnapshot) uint64 { return s.SchedulerDispatches })
	counter("hybridperf_engine_lookaheads_total", "Advance fast-path clock moves that bypassed the event queue.",
		func(s metrics.EngineSnapshot) uint64 { return s.Lookaheads })
	counter("hybridperf_engine_pool_hits_total", "Tasks served by a parked pooled runner.",
		func(s metrics.EngineSnapshot) uint64 { return s.PoolHits })
	counter("hybridperf_engine_pool_spawns_total", "Tasks that had to spawn a fresh runner.",
		func(s metrics.EngineSnapshot) uint64 { return s.PoolSpawns })
	counter("hybridperf_engine_omp_regions_total", "Simulated OpenMP parallel regions executed.",
		func(s metrics.EngineSnapshot) uint64 { return s.Regions })
	counter("hybridperf_engine_mpi_messages_total", "Simulated MPI messages posted.",
		func(s metrics.EngineSnapshot) uint64 { return s.Messages })
	fmt.Fprintf(w, "# HELP hybridperf_engine_heap_high_water Deepest future-event heap observed.\n"+
		"# TYPE hybridperf_engine_heap_high_water gauge\n")
	for _, s := range series {
		fmt.Fprintf(w, "hybridperf_engine_heap_high_water%s %d\n", lbl(s, ""), s.Snap.HeapHighWater)
	}

	const name = "hybridperf_engine_mpi_msg_bytes"
	fmt.Fprintf(w, "# HELP %s Simulated MPI message sizes in bytes (sum estimated from bucket midpoints).\n# TYPE %s histogram\n", name, name)
	for _, s := range series {
		var cum, total uint64
		sum := 0.0
		for i := 0; i < metrics.HistBuckets; i++ {
			n := s.Snap.MsgBytes[i]
			cum += n
			total += n
			lo, hi := uint64(0), uint64(2)
			if i > 0 {
				lo = uint64(1) << uint(i)
				hi = lo * 2
			}
			sum += float64(n) * (float64(lo) + float64(hi)) / 2
			if i < metrics.HistBuckets-1 {
				fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl(s, fmt.Sprintf("le=\"%d\"", hi)), cum)
			}
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, lbl(s, `le="+Inf"`), total)
		fmt.Fprintf(w, "%s_sum%s %s\n", name, lbl(s, ""), formatFloat(sum))
		fmt.Fprintf(w, "%s_count%s %d\n", name, lbl(s, ""), total)
	}
}
