package telemetry

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"
)

// errFlightAborted marks a singleflight computation whose leader panicked
// before producing a result; waiters report it as retryable (503).
var errFlightAborted = errors.New("collapsed request aborted before completing; retry")

// maxCacheEntryBytes bounds one cached response body: a pathological
// batch answer (megabytes of results) is still computed and served — and
// still collapses concurrent identical requests — but is not retained, so
// a handful of giant sweeps cannot squeeze every ordinary entry out of a
// size-bounded cache.
const maxCacheEntryBytes = 4 << 20

// cachedResponse is one fully rendered answer, stored in both wire
// shapes: the canonical JSON document and the NDJSON line sequence the
// streaming path writes. Both are rendered from the same structs at
// compute time, which is what makes the streamed and non-streamed forms
// of one request semantically identical by construction — and a cache hit
// byte-identical to the compute that filled it.
type cachedResponse struct {
	body  []byte   // full JSON document, trailing newline included
	lines [][]byte // NDJSON lines (no newlines): data lines, then one summary line

	// attr is the response's cost attribution, computed (and its header
	// strings formatted) once at build time so cache hits replay it
	// without touching the body.
	attr attribution
}

func (c *cachedResponse) size() int {
	n := len(c.body)
	for _, l := range c.lines {
		n += len(l)
	}
	return n
}

// cacheCounters are the exported hybridperf_response_cache_* series the
// cache maintains. Evictions and expiries are separate series: an
// eviction means the cache is too small for the working set (capacity
// pressure, actionable by resizing), an expiry means an entry aged past
// its TTL (normal decay, actionable only by retuning the TTL). Folding
// both into one counter made LRU pressure invisible on a TTL-heavy
// workload.
type cacheCounters struct {
	hits, misses, evictions, expired, collapsed *Counter
	entries                                     *Gauge
}

// responseCache is an LRU + TTL response cache with singleflight
// collapse: concurrent requests for one canonical key compute the answer
// once — the first becomes the leader, the rest wait on its flight — and
// later requests are served from the stored entry until it ages out or is
// evicted. Errors are never cached: a failed flight is forgotten so the
// next request retries.
type responseCache struct {
	capacity int
	ttl      time.Duration // 0 = entries never expire
	ctr      cacheCounters
	now      func() time.Time // test seam

	mu      sync.Mutex
	entries map[string]*list.Element // key -> element holding *cacheEntry
	lru     *list.List               // front = most recently used
	flights map[string]*flight
}

type cacheEntry struct {
	key     string
	resp    *cachedResponse
	expires time.Time // zero = never
}

// flight is one in-progress computation; done closes once val/err are
// set.
type flight struct {
	done chan struct{}
	resp *cachedResponse
	err  error
}

func newResponseCache(capacity int, ttl time.Duration, ctr cacheCounters) *responseCache {
	return &responseCache{
		capacity: capacity,
		ttl:      ttl,
		ctr:      ctr,
		now:      time.Now,
		entries:  map[string]*list.Element{},
		lru:      list.New(),
		flights:  map[string]*flight{},
	}
}

// cacheStatus reports how a request was satisfied, surfaced as the
// X-Response-Cache header and the access-log "cache" attribute.
type cacheStatus string

const (
	cacheHit       cacheStatus = "hit"       // served from a stored entry
	cacheMiss      cacheStatus = "miss"      // this request computed (and stored) the answer
	cacheCollapsed cacheStatus = "collapsed" // waited on an identical in-flight computation
	cacheBypass    cacheStatus = "bypass"    // cache disabled
)

// lookup returns the fresh entry for key, promoting it, or nil. The
// caller holds c.mu. An expired entry is removed and counted on the
// expired series — not as an eviction, which is reserved for capacity
// pressure.
func (c *responseCache) lookup(key string) *cachedResponse {
	el, ok := c.entries[key]
	if !ok {
		return nil
	}
	e := el.Value.(*cacheEntry)
	if !e.expires.IsZero() && c.now().After(e.expires) {
		c.dropLocked(el)
		c.ctr.expired.Inc()
		return nil
	}
	c.lru.MoveToFront(el)
	return e.resp
}

// dropLocked unlinks one entry without attributing a cause; callers
// count the drop on the series matching why (evictions or expired).
func (c *responseCache) dropLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	c.lru.Remove(el)
	delete(c.entries, e.key)
	c.ctr.entries.Dec()
}

func (c *responseCache) removeLocked(el *list.Element) {
	c.dropLocked(el)
	c.ctr.evictions.Inc()
}

// store inserts a computed response, evicting from the LRU tail to stay
// within capacity. Oversized responses are not retained.
func (c *responseCache) store(key string, resp *cachedResponse) {
	if resp.size() > maxCacheEntryBytes {
		return
	}
	e := &cacheEntry{key: key, resp: resp}
	if c.ttl > 0 {
		e.expires = c.now().Add(c.ttl)
	}
	if el, ok := c.entries[key]; ok {
		// A racing non-collapsed recompute (entry expired between two
		// flights) refreshed the same key: replace in place.
		el.Value = e
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(e)
	c.ctr.entries.Inc()
	for c.lru.Len() > c.capacity {
		c.removeLocked(c.lru.Back())
	}
}

// peek returns the stored response for key without joining or creating
// a flight — the body-memo fast path uses it to serve exact repeats; a
// miss here is not counted (the caller falls through to do, which counts
// the authoritative miss).
func (c *responseCache) peek(key string) (*cachedResponse, bool) {
	c.mu.Lock()
	resp := c.lookup(key)
	c.mu.Unlock()
	if resp == nil {
		return nil, false
	}
	c.ctr.hits.Inc()
	return resp, true
}

// do returns the cached response for key, computing it via compute on a
// miss. Concurrent callers with one key collapse onto a single compute:
// exactly one caller (the leader) runs compute — and with it the
// admission claim, model characterisation and evaluation inside — while
// the rest wait for the leader's result. A waiting caller whose own ctx
// ends returns ctx's error without disturbing the flight; the leader
// keeps computing for everyone else and still fills the cache. A leader
// whose compute fails shares the error with the waiters already attached,
// then removes the flight so the next request starts fresh — errors are
// never cached.
func (c *responseCache) do(ctx context.Context, key string, compute func() (*cachedResponse, error)) (*cachedResponse, cacheStatus, error) {
	c.mu.Lock()
	if resp := c.lookup(key); resp != nil {
		c.mu.Unlock()
		c.ctr.hits.Inc()
		return resp, cacheHit, nil
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.ctr.collapsed.Inc()
		select {
		case <-f.done:
			return f.resp, cacheCollapsed, f.err
		case <-ctx.Done():
			return nil, cacheCollapsed, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	c.ctr.misses.Inc()

	// The flight is resolved on every exit — including a panic unwinding
	// out of compute toward the middleware's recover — so waiters never
	// hang on a flight whose leader died: they observe errFlightAborted
	// and retry.
	completed := false
	defer func() {
		if !completed {
			f.resp, f.err = nil, errFlightAborted
		}
		c.mu.Lock()
		if f.err == nil {
			c.store(key, f.resp)
		}
		delete(c.flights, key)
		c.mu.Unlock()
		close(f.done)
	}()
	f.resp, f.err = compute()
	completed = true
	return f.resp, cacheMiss, f.err
}
