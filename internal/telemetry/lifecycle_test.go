package telemetry

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newLifecycleServer is newTestServer with the admission and timeout
// knobs exposed.
func newLifecycleServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	s := NewServer(cfg)
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

const lbPredictBody = `{"system":"arm","program":"LB","class":"S","nodes":2,"cores":4,"freq_ghz":1.4}`

// TestFailedCharacterisationRetried pins the cache-poisoning fix: a
// campaign that fails must not burn its cache slot — the failing request
// reports the error, and the next request for the same key
// re-characterises and succeeds.
func TestFailedCharacterisationRetried(t *testing.T) {
	s, ts := newLifecycleServer(t, Config{})
	var calls atomic.Int32
	s.charTestHook = func(ctx context.Context, key modelKey) error {
		if calls.Add(1) == 1 {
			return errors.New("transient infrastructure failure")
		}
		return nil
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict", lbPredictBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failing campaign status %d, want 500: %s", resp.StatusCode, raw)
	}
	msg, _ := errorEnvelope(t, resp, raw)
	if !strings.Contains(msg, "transient infrastructure failure") {
		t.Errorf("error %q does not carry the campaign failure", msg)
	}
	// The poisoned-cache symptom was exactly this: the retry hitting the
	// same dead entry forever.
	resp, raw = postJSON(t, ts.URL+"/v1/predict", lbPredictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after failed campaign status %d, want 200: %s", resp.StatusCode, raw)
	}
	if n := s.mChar.With("arm", "LB").Value(); n != 1 {
		t.Errorf("characterisations = %d, want exactly 1 (the successful retry)", n)
	}
}

// TestPanickedCharacterisationRetried: a panic inside the campaign burns
// the sync.Once with neither model nor error recorded — before the fix
// that served nil-model 500s for the process lifetime. Now the entry is
// evicted on the way out and the next request recovers.
func TestPanickedCharacterisationRetried(t *testing.T) {
	s, ts := newLifecycleServer(t, Config{})
	var calls atomic.Int32
	s.charTestHook = func(ctx context.Context, key modelKey) error {
		if calls.Add(1) == 1 {
			panic("characterisation exploded")
		}
		return nil
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict", lbPredictBody)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking campaign status %d, want 500: %s", resp.StatusCode, raw)
	}
	if n := s.mPanics.With("/v1/predict").Value(); n != 1 {
		t.Errorf("panic counter = %d, want 1", n)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/predict", lbPredictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after panicked campaign status %d, want 200: %s", resp.StatusCode, raw)
	}
}

// TestUnknownNamesLeaveNoCacheEntries: garbage coordinates must never
// occupy model-cache slots.
func TestUnknownNamesLeaveNoCacheEntries(t *testing.T) {
	s, ts := newLifecycleServer(t, Config{})
	for _, body := range []string{
		`{"system":"cray","program":"SP"}`,
		`{"system":"xeon","program":"NOPE"}`,
	} {
		resp, raw := postJSON(t, ts.URL+"/v1/predict", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400: %s", resp.StatusCode, raw)
		}
	}
	s.mu.Lock()
	n := len(s.models)
	s.mu.Unlock()
	if n != 0 {
		t.Fatalf("%d cache entries after unknown-name requests, want 0", n)
	}
}

// TestDecodeJSONRejections covers the request-body hygiene added to
// decodeJSON: oversized bodies are 413 (not a misleading 400), unknown
// fields and trailing data are rejected.
func TestDecodeJSONRejections(t *testing.T) {
	_, ts := newLifecycleServer(t, Config{})
	huge := `{"system":"` + strings.Repeat("a", 2<<20) + `"}`
	cases := []struct {
		name, body string
		wantStatus int
		wantSubstr string
	}{
		{"oversized body", huge, http.StatusRequestEntityTooLarge, "exceeds"},
		{"unknown field", `{"system":"xeon","program":"SP","bogus":1}`, 400, "bogus"},
		{"trailing data", `{"system":"xeon","program":"SP"}{"more":true}`, 400, "trailing data"},
		{"two values", `{"system":"xeon","program":"SP"} 17`, 400, "trailing data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, raw := postJSON(t, ts.URL+"/v1/predict", tc.body)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d: %.200s", resp.StatusCode, tc.wantStatus, raw)
			}
			msg, status := errorEnvelope(t, resp, raw)
			if status != tc.wantStatus {
				t.Errorf("envelope status %d, want %d", status, tc.wantStatus)
			}
			if !strings.Contains(msg, tc.wantSubstr) {
				t.Errorf("error %q does not mention %q", msg, tc.wantSubstr)
			}
		})
	}
}

// TestAdmissionControlSheds saturates the single admission slot with a
// blocked campaign and expects concurrent heavy requests to get 429 +
// Retry-After immediately, with the rejected counter moving; releasing
// the slot lets traffic through again.
func TestAdmissionControlSheds(t *testing.T) {
	s, ts := newLifecycleServer(t, Config{MaxCampaigns: 1})
	holding := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int32
	s.charTestHook = func(ctx context.Context, key modelKey) error {
		if calls.Add(1) == 1 {
			close(holding)
			<-release
		}
		return nil
	}
	// Request A: cold predict, campaign leader claims the only slot and
	// blocks in the hook.
	aDone := make(chan struct{})
	go func() {
		defer close(aDone)
		resp, raw := postJSON(t, ts.URL+"/v1/predict", lbPredictBody)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("holder request status %d: %s", resp.StatusCode, raw)
		}
	}()
	<-holding

	// Request B: a cold predict for a different key cannot get a slot.
	resp, raw := postJSON(t, ts.URL+"/v1/predict",
		`{"system":"xeon","program":"SP","class":"S","nodes":1,"cores":1,"freq_ghz":1.8}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated predict status %d, want 429: %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	}
	// A sweep is shed at its own handler-level gate.
	resp, raw = postJSON(t, ts.URL+"/v1/sweep", `{"system":"xeon","program":"SP","class":"S"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated sweep status %d, want 429: %s", resp.StatusCode, raw)
	}
	if n := s.mRejected.With("/v1/predict", "saturated").Value(); n != 1 {
		t.Errorf("predict rejected counter = %d, want 1", n)
	}
	if n := s.mRejected.With("/v1/sweep", "saturated").Value(); n != 1 {
		t.Errorf("sweep rejected counter = %d, want 1", n)
	}

	close(release)
	<-aDone
	// Slot free again: the previously shed predict now goes through.
	resp, raw = postJSON(t, ts.URL+"/v1/predict",
		`{"system":"xeon","program":"SP","class":"S","nodes":1,"cores":1,"freq_ghz":1.8}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release predict status %d: %s", resp.StatusCode, raw)
	}
}

// TestRequestTimeoutInterrupts: with -request-timeout set, a campaign
// outliving the deadline is cancelled and the request fails 503 with
// Retry-After; the cancellation counter records the timeout and the
// next request (fresh deadline) succeeds.
func TestRequestTimeoutInterrupts(t *testing.T) {
	s, ts := newLifecycleServer(t, Config{RequestTimeout: 50 * time.Millisecond})
	var calls atomic.Int32
	s.charTestHook = func(ctx context.Context, key modelKey) error {
		if calls.Add(1) == 1 {
			<-ctx.Done() // outlive the request deadline
			return ctx.Err()
		}
		return nil
	}
	resp, raw := postJSON(t, ts.URL+"/v1/predict", lbPredictBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out campaign status %d, want 503: %s", resp.StatusCode, raw)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 response missing Retry-After")
	}
	msg, _ := errorEnvelope(t, resp, raw)
	if !strings.Contains(msg, "interrupted") {
		t.Errorf("error %q does not say the request was interrupted", msg)
	}
	if n := s.mCancelled.With("/v1/predict", "timeout").Value(); n != 1 {
		t.Errorf("timeout cancellation counter = %d, want 1", n)
	}
	// The interrupted entry was evicted, so a fresh request (with a fresh
	// deadline) re-characterises instead of hitting a poisoned slot. The
	// retry itself would re-run the full campaign against the same short
	// deadline — timing-sensitive under -race — so assert the eviction
	// directly; retry-succeeds is pinned by the failure and disconnect
	// tests above, which run without a server-wide deadline.
	s.mu.Lock()
	_, cached := s.models[modelKey{system: "arm", program: "LB"}]
	s.mu.Unlock()
	if cached {
		t.Error("timed-out campaign left its cache entry behind")
	}
}

// TestClientDisconnectMidSweep: a client vanishing mid-campaign must
// cancel the in-flight work — the handler returns promptly, every
// simulation goroutine is reaped, the cache slot is evicted, and the
// cancellation counter records the disconnect.
func TestClientDisconnectMidSweep(t *testing.T) {
	s, ts := newLifecycleServer(t, Config{})
	started := make(chan struct{})
	var calls atomic.Int32
	s.charTestHook = func(ctx context.Context, key modelKey) error {
		if calls.Add(1) == 1 {
			close(started)
			<-ctx.Done() // hold the campaign until the client is gone
		}
		return nil // proceed: the campaign must die on the dead context itself
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep",
		strings.NewReader(`{"system":"arm","program":"LB","class":"S"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	<-started
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("request succeeded despite the disconnect")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("disconnected sweep did not return within 5s")
	}

	// Every kernel/process goroutine must be reaped once the handler
	// unwinds; allow the runtime a moment to settle.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+2 {
		t.Errorf("goroutines did not settle after disconnect: %d before, %d after", before, n)
	}
	waitCancelled := time.Now().Add(5 * time.Second)
	for s.mCancelled.With("/v1/sweep", "disconnect").Value() == 0 && time.Now().Before(waitCancelled) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := s.mCancelled.With("/v1/sweep", "disconnect").Value(); n != 1 {
		t.Errorf("disconnect cancellation counter = %d, want 1", n)
	}

	// The cancelled campaign left no poisoned entry: the same key now
	// characterises from scratch and serves.
	resp, raw := postJSON(t, ts.URL+"/v1/predict", lbPredictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict after disconnect status %d, want 200: %s", resp.StatusCode, raw)
	}
	if n := s.mChar.With("arm", "LB").Value(); n != 1 {
		t.Errorf("characterisations = %d, want 1 (the cancelled campaign must not count)", n)
	}
}

// TestInFlightGaugeReadsZero: the /metrics route is exempt from in-flight
// tracking, so an idle server's scrape must report exactly 0 — the CI
// serve-smoke invariant.
func TestInFlightGaugeReadsZero(t *testing.T) {
	_, ts := newLifecycleServer(t, Config{})
	resp, raw := postJSON(t, ts.URL+"/v1/predict", lbPredictBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, raw)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	_, samples := parseExposition(t, string(text))
	if got := samples["hybridperf_http_requests_in_flight"]; got != "0" {
		t.Errorf("in-flight gauge = %q during its own scrape, want 0", got)
	}
}
