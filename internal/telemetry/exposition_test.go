package telemetry

import (
	"strings"
	"testing"

	"hybridperf/internal/metrics"
)

// parseExposition is a minimal parser for the Prometheus text format used
// by the golden tests: it returns the declared TYPE per family and the
// value of every sample line keyed by "name{labels}".
func parseExposition(t *testing.T, text string) (types map[string]string, samples map[string]string) {
	t.Helper()
	types = map[string]string{}
	samples = map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if prev, dup := types[fields[2]]; dup && prev != fields[3] {
				t.Fatalf("family %s declared as both %s and %s", fields[2], prev, fields[3])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		samples[line[:i]] = line[i+1:]
	}
	return types, samples
}

// familyOf strips the histogram sample suffixes and label set from a
// sample key, yielding the family name its TYPE line must declare.
func familyOf(key string) string {
	name := key
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		name = strings.TrimSuffix(name, suf)
	}
	return name
}

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	req := r.Counter("test_requests_total", "Requests.", "route", "code")
	inflight := r.Gauge("test_in_flight", "In flight.")
	dur := r.Histogram("test_duration_seconds", "Latency.", []float64{0.1, 1, 10}, "route")

	req.With("/a", "200").Add(3)
	req.With("/b", "500").Inc()
	inflight.With().Set(2)
	dur.With("/a").Observe(0.05)
	dur.With("/a").Observe(0.5)
	dur.With("/a").Observe(99) // +Inf bucket

	var b strings.Builder
	r.WriteText(&b)
	text := b.String()
	types, samples := parseExposition(t, text)

	wantTypes := map[string]string{
		"test_requests_total":   "counter",
		"test_in_flight":        "gauge",
		"test_duration_seconds": "histogram",
	}
	for name, kind := range wantTypes {
		if types[name] != kind {
			t.Errorf("TYPE %s = %q, want %q", name, types[name], kind)
		}
	}
	wantSamples := map[string]string{
		`test_requests_total{route="/a",code="200"}`: "3",
		`test_requests_total{route="/b",code="500"}`: "1",
		`test_in_flight`: "2",
		`test_duration_seconds_bucket{route="/a",le="0.1"}`:  "1",
		`test_duration_seconds_bucket{route="/a",le="1"}`:    "2",
		`test_duration_seconds_bucket{route="/a",le="10"}`:   "2",
		`test_duration_seconds_bucket{route="/a",le="+Inf"}`: "3",
		`test_duration_seconds_count{route="/a"}`:            "3",
	}
	for key, want := range wantSamples {
		if samples[key] != want {
			t.Errorf("sample %s = %q, want %q\nfull exposition:\n%s", key, samples[key], want, text)
		}
	}
	// Every sample's family must have a TYPE declaration.
	for key := range samples {
		if _, ok := types[familyOf(key)]; !ok {
			t.Errorf("sample %s has no TYPE declaration", key)
		}
	}

	// Scrapes are deterministic: two renders are byte-identical.
	var b2 strings.Builder
	r.WriteText(&b2)
	if b2.String() != text {
		t.Error("two scrapes of an unchanged registry differ")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_esc_total", "Escaping.", "v")
	c.With("a\"b\\c\nd").Inc()
	var b strings.Builder
	r.WriteText(&b)
	want := `test_esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped sample %s missing from:\n%s", want, b.String())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "First.")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate family registration")
		}
	}()
	r.Gauge("dup_total", "Second.")
}

func TestHistogramQuantile(t *testing.T) {
	h := &Histogram{bounds: []float64{1, 2, 4}, counts: make([]uint64, 4)}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %g, want 0", got)
	}
	// 100 observations uniform in (1,2]: p50 interpolates to the bucket
	// midpoint 1.5, p100 to the upper edge 2.
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	if got := h.Quantile(0.5); got != 1.5 {
		t.Errorf("p50 = %g, want 1.5", got)
	}
	if got := h.Quantile(1); got != 2 {
		t.Errorf("p100 = %g, want 2", got)
	}
	// An observation beyond the last bound lands in +Inf and quantiles
	// clamp to the largest finite edge instead of inventing a value.
	h.Observe(1e9)
	if got := h.Quantile(1); got != 4 {
		t.Errorf("p100 with +Inf tail = %g, want clamp to 4", got)
	}
	// Quantiles never decrease in q.
	prev := 0.0
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantile not monotone: q=%g gives %g < %g", q, v, prev)
		}
		prev = v
	}
}

func TestWriteEngineText(t *testing.T) {
	var s metrics.EngineSnapshot
	s.Events = 100
	s.Messages = 7
	s.HeapHighWater = 8
	s.MsgBytes[0] = 3 // [0,2)
	s.MsgBytes[3] = 4 // [8,16)

	var b strings.Builder
	WriteEngineText(&b, EngineSeries{Snap: s})
	types, samples := parseExposition(t, b.String())

	if types["hybridperf_engine_events_total"] != "counter" {
		t.Errorf("engine events TYPE = %q", types["hybridperf_engine_events_total"])
	}
	if types["hybridperf_engine_heap_high_water"] != "gauge" {
		t.Errorf("heap high water TYPE = %q", types["hybridperf_engine_heap_high_water"])
	}
	if types["hybridperf_engine_mpi_msg_bytes"] != "histogram" {
		t.Errorf("msg bytes TYPE = %q", types["hybridperf_engine_mpi_msg_bytes"])
	}
	if samples["hybridperf_engine_events_total"] != "100" {
		t.Errorf("events = %q, want 100", samples["hybridperf_engine_events_total"])
	}
	// Buckets are cumulative: le="2" sees the 3 small messages, le="16"
	// and +Inf see all 7.
	if got := samples[`hybridperf_engine_mpi_msg_bytes_bucket{le="2"}`]; got != "3" {
		t.Errorf(`bucket le=2 = %q, want 3`, got)
	}
	if got := samples[`hybridperf_engine_mpi_msg_bytes_bucket{le="16"}`]; got != "7" {
		t.Errorf(`bucket le=16 = %q, want 7`, got)
	}
	if got := samples[`hybridperf_engine_mpi_msg_bytes_bucket{le="+Inf"}`]; got != "7" {
		t.Errorf(`bucket le=+Inf = %q, want 7`, got)
	}
	if got := samples["hybridperf_engine_mpi_msg_bytes_count"]; got != "7" {
		t.Errorf("count = %q, want 7", got)
	}
}

// TestWriteEngineTextLabelled renders two engine modes in one call: each
// family declares HELP/TYPE exactly once and carries one labelled sample
// per mode.
func TestWriteEngineTextLabelled(t *testing.T) {
	var g, q metrics.EngineSnapshot
	g.Events, g.Handoffs = 100, 40
	q.Events, q.SchedulerDispatches = 250, 250
	q.MsgBytes[3] = 4

	var b strings.Builder
	WriteEngineText(&b, EngineSeries{Engine: "goroutine", Snap: g}, EngineSeries{Engine: "sequential", Snap: q})
	out := b.String()
	types, samples := parseExposition(t, out)

	if types["hybridperf_engine_events_total"] != "counter" {
		t.Errorf("engine events TYPE = %q", types["hybridperf_engine_events_total"])
	}
	if n := strings.Count(out, "# TYPE hybridperf_engine_events_total"); n != 1 {
		t.Errorf("TYPE declared %d times, want once per family", n)
	}
	if got := samples[`hybridperf_engine_events_total{engine="goroutine"}`]; got != "100" {
		t.Errorf(`goroutine events = %q, want 100`, got)
	}
	if got := samples[`hybridperf_engine_events_total{engine="sequential"}`]; got != "250" {
		t.Errorf(`sequential events = %q, want 250`, got)
	}
	if got := samples[`hybridperf_engine_handoffs_total{engine="sequential"}`]; got != "0" {
		t.Errorf(`sequential handoffs = %q, want 0`, got)
	}
	if got := samples[`hybridperf_engine_mpi_msg_bytes_bucket{engine="sequential",le="16"}`]; got != "4" {
		t.Errorf(`sequential bucket le=16 = %q, want 4`, got)
	}
	if got := samples[`hybridperf_engine_mpi_msg_bytes_count{engine="goroutine"}`]; got != "0" {
		t.Errorf(`goroutine msg count = %q, want 0`, got)
	}
}
