package telemetry

import (
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"hybridperf/internal/machine"
	"hybridperf/internal/pareto"
	"hybridperf/internal/workload"
)

// maxBatchTuples bounds one /v1/batch request; the body size cap
// (maxBatchBodyBytes) limits the wire form, this limits the work.
const maxBatchTuples = 65536

// maxBatchBodyBytes is the /v1/batch body cap — larger than the 1 MiB
// default because a full dense grid is tens of thousands of tuples.
const maxBatchBodyBytes = 8 << 20

// cfgSlicePool and ptsSlicePool recycle the two per-batch scratch slices
// (the canonical configuration list and its evaluation output) across
// requests, so a steady stream of large batches doesn't allocate two
// multi-thousand-element slices per request.
var (
	cfgSlicePool = sync.Pool{New: func() any { return new([]machine.Config) }}
	ptsSlicePool = sync.Pool{New: func() any { return new([]pareto.Point) }}
)

// batchTuple is one (system, program, n, c, f) coordinate of a /v1/batch
// request. freq_ghz 0 resolves to the system's f_max, exactly as
// /v1/predict defaults it.
type batchTuple struct {
	System  string  `json:"system"`
	Program string  `json:"program"`
	Nodes   int     `json:"nodes"`
	Cores   int     `json:"cores"`
	FreqGHz float64 `json:"freq_ghz"`
}

// batchRequest is the /v1/batch body: many tuples, one class, vectorised
// through the sweep engine. Workers and engine tune how the answer is
// computed, never what it is, so they are excluded from the response
// cache key.
type batchRequest struct {
	Class   string       `json:"class"`
	Engine  string       `json:"engine"`  // "" = server default
	Workers int          `json:"workers"` // 0 = server default
	Tuples  []batchTuple `json:"tuples"`
}

// batchResultJSON is one prediction of a batch answer, tagged with its
// model coordinates (a batch may span several (system, program) groups).
type batchResultJSON struct {
	System  string `json:"system"`
	Program string `json:"program"`
	predictionJSON
}

// handleBatch serves POST /v1/batch: validate and canonicalise the tuple
// list (sorted, deduplicated — the response lists results in exactly that
// canonical order), then evaluate it vectorised: tuples grouped by
// (system, program) so each group resolves its model once and runs
// through pareto.EvaluateParallelInto as one contiguous sub-slice of a
// pooled configuration buffer. The whole request holds one admission slot
// (claimed by the cache-flight leader), and identical concurrent requests
// collapse to a single evaluation.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt := RequestTraceFrom(r.Context())
	var tDecode time.Time
	if rt != nil {
		tDecode = time.Now()
	}
	body, ok := readBodyMax(w, r, maxBatchBodyBytes)
	if !ok {
		return
	}

	// Fast path: an exact-byte repeat of a previously validated body maps
	// straight to its canonical cache key, skipping JSON decode,
	// validation and canonicalisation — the dominant costs of serving a
	// cache hit. Only an already-stored answer is served here; a first
	// sighting, an expired entry or an evicted one falls through to the
	// full path below.
	if s.batchMemo != nil {
		if m, ok := s.batchMemo.get(body); ok {
			if resp, hit := s.respCache.peek(m.key); hit {
				s.mByEngine.With("/v1/batch", m.engine).Inc()
				annotate(r.Context(),
					slog.String("class", m.class),
					slog.String("engine", m.engine),
					slog.Int("tuples", m.tuples),
					slog.Int("unique", m.unique))
				if rt != nil {
					rt.AddSpan("handler", "cache-lookup", tDecode, time.Now())
				}
				s.writeCached(w, r, "/v1/batch", m.engine, resp, cacheHit)
				return
			}
		}
	}

	var req batchRequest
	if !decodeJSONBytes(w, body, &req) {
		return
	}
	if rt != nil {
		rt.AddSpan("handler", "decode", tDecode, time.Now())
	}
	engine, ok := s.engineMode(w, req.Engine)
	if !ok {
		return
	}
	s.mByEngine.With("/v1/batch", engine).Inc()
	if len(req.Tuples) == 0 {
		httpError(w, http.StatusBadRequest, "batch carries no tuples")
		return
	}
	if len(req.Tuples) > maxBatchTuples {
		httpError(w, http.StatusBadRequest, "batch carries %d tuples, limit %d", len(req.Tuples), maxBatchTuples)
		return
	}
	class := req.Class
	if class == "" {
		class = string(workload.ClassA)
	}

	// Validate every tuple in request order (errors name the offending
	// index), resolving names and the freq_ghz=0 default; iteration
	// counts are resolved per program up front so a bad class fails
	// before any evaluation.
	profs := map[string]*machine.Profile{}
	iters := map[string]int{}
	canon := make([]canonTuple, len(req.Tuples))
	for i, t := range req.Tuples {
		prof, ok := profs[t.System]
		if !ok {
			var err error
			if prof, err = machine.ByName(t.System); err != nil {
				httpError(w, http.StatusBadRequest, "tuple %d: unknown system %q", i, t.System)
				return
			}
			profs[t.System] = prof
		}
		if _, ok := iters[t.Program]; !ok {
			spec, err := workload.ByName(t.Program)
			if err != nil {
				httpError(w, http.StatusBadRequest, "tuple %d: unknown program %q", i, t.Program)
				return
			}
			S, err := spec.Iterations(workload.Class(class))
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad class %q: %v", class, err)
				return
			}
			iters[t.Program] = S
		}
		cfg := machine.Config{Nodes: t.Nodes, Cores: t.Cores, Freq: t.FreqGHz * 1e9}
		if t.FreqGHz == 0 {
			cfg.Freq = prof.FMax()
		}
		if err := prof.ValidateModelConfig(cfg); err != nil {
			httpError(w, http.StatusBadRequest, "tuple %d: invalid configuration: %v", i, err)
			return
		}
		canon[i] = canonTuple{system: t.System, program: t.Program, cfg: cfg}
	}
	canon = canonicalizeTuples(canon)

	// A batch whose every tuple is owned by one remote replica forwards
	// whole (before the memo stores this body, so forwarded bodies never
	// enter the local fast path); mixed-ownership batches are served
	// locally — splitting them across owners is the gateway's job.
	if owner, ok := s.batchRemoteOwner(r, canon); ok && s.forward(w, r, body, owner) {
		return
	}

	workers := req.Workers
	if workers <= 0 {
		workers = s.cfg.Workers
	}
	if workers > 4*runtime.GOMAXPROCS(0) {
		workers = 4 * runtime.GOMAXPROCS(0)
	}
	annotate(r.Context(),
		slog.String("class", class),
		slog.String("engine", engine),
		slog.Int("tuples", len(req.Tuples)),
		slog.Int("unique", len(canon)))

	key := batchCacheKey(class, canon)
	if s.batchMemo != nil {
		s.batchMemo.put(body, memoEntry{
			key:    key,
			engine: engine,
			class:  class,
			tuples: len(req.Tuples),
			unique: len(canon),
		})
	}
	s.respondCached(w, r, "/v1/batch", engine, key, func() (*cachedResponse, error) {
		release, ok := s.acquire()
		if !ok {
			return nil, fmt.Errorf("batch: %w", errSaturated)
		}
		defer release()
		t0 := time.Now()
		results, groups, err := s.evaluateBatch(r, canon, iters, engine, workers)
		if err != nil {
			return nil, err
		}
		tEval := time.Now()
		s.spans.Observe("model", fmt.Sprintf("batch %d tuples (%d groups)", len(canon), groups),
			t0, tEval, map[string]any{"id": requestID(r.Context())})
		if rt != nil {
			rt.AddSpan("model", fmt.Sprintf("evaluate batch (%d tuples, %d groups)", len(canon), groups), t0, tEval)
		}
		endRender := rt.Span("handler", "render")
		resp := buildBatchResponse(class, groups, results)
		endRender()
		return resp, nil
	})
}

// evaluateBatch runs the canonical tuple list through the model layer:
// one model resolution per (system, program) group, one vectorised
// EvaluateParallelInto per group over the shared pooled buffers. The
// caller already holds an admission slot, so cold characterisations
// triggered here don't claim a second one.
func (s *Server) evaluateBatch(r *http.Request, canon []canonTuple, iters map[string]int, engine string, workers int) ([]batchResultJSON, int, error) {
	cfgsPtr := cfgSlicePool.Get().(*[]machine.Config)
	ptsPtr := ptsSlicePool.Get().(*[]pareto.Point)
	defer cfgSlicePool.Put(cfgsPtr)
	defer ptsSlicePool.Put(ptsPtr)
	cfgs := (*cfgsPtr)[:0]
	for _, t := range canon {
		cfgs = append(cfgs, t.cfg)
	}
	*cfgsPtr = cfgs // retain any growth for the next request
	if cap(*ptsPtr) < len(canon) {
		*ptsPtr = make([]pareto.Point, len(canon))
	}
	pts := (*ptsPtr)[:len(canon)]

	groups := 0
	results := make([]batchResultJSON, len(canon))
	for lo := 0; lo < len(canon); {
		hi := lo + 1
		for hi < len(canon) && canon[hi].system == canon[lo].system && canon[hi].program == canon[lo].program {
			hi++
		}
		groups++
		e, err := s.model(r.Context(), modelKey{system: canon[lo].system, program: canon[lo].program}, engine, true)
		if err != nil {
			return nil, 0, err
		}
		if err := pareto.EvaluateParallelInto(r.Context(), e.model, cfgs[lo:hi],
			iters[canon[lo].program], workers, pts[lo:hi]); err != nil {
			return nil, 0, fmt.Errorf("batch %s/%s: %w", canon[lo].system, canon[lo].program, err)
		}
		for i := lo; i < hi; i++ {
			results[i] = batchResultJSON{
				System:         canon[i].system,
				Program:        canon[i].program,
				predictionJSON: toPredictionJSON(pts[i].Pred),
			}
		}
		lo = hi
	}
	return results, groups, nil
}

// buildBatchResponse renders both wire shapes of a batch answer from one
// result list: the canonical JSON document and the NDJSON lines (one
// result per line, then a summary). Each result is marshalled exactly
// once and the fragment is spliced into both shapes — JSON encoding (and
// its float formatting) dominates the warm-batch profile, so rendering
// the results twice would nearly double the per-tuple serving cost.
func buildBatchResponse(class string, groups int, results []batchResultJSON) *cachedResponse {
	sum := mustJSON(struct {
		Class  string `json:"class"`
		Count  int    `json:"count"`
		Groups int    `json:"groups"`
	}{class, len(results), groups})
	resp := spliceResponse(sum, "results", "result", marshalEach(results))
	var simS, energyJ float64
	for i := range results {
		simS += results[i].TimeS
		energyJ += results[i].EnergyJ
	}
	// Attribution sums the results in canonical order, so a client summing
	// the body it received reproduces the header values float-exactly.
	resp.attr = makeAttribution(len(results), simS, energyJ)
	return resp
}

// marshalEach renders one JSON fragment per element.
func marshalEach[T any](items []T) [][]byte {
	frags := make([][]byte, len(items))
	for i := range items {
		frags[i] = mustJSON(items[i])
	}
	return frags
}

// spliceResponse assembles both wire shapes from a marshalled summary
// object and per-item fragments: the document is the summary with an
// appended `"<listKey>":[...]` array, each NDJSON line wraps one fragment
// as `{"type":"<itemKey>","<itemKey>":...}`, and the trailing summary line
// re-tags the same summary bytes. Splicing — rather than re-marshalling —
// is what makes the streamed and document forms byte-identical per item.
func spliceResponse(sum []byte, listKey, itemKey string, frags [][]byte) *cachedResponse {
	n := 0
	for _, f := range frags {
		n += len(f) + 1
	}
	body := make([]byte, 0, len(sum)+len(listKey)+n+16)
	body = append(body, sum[:len(sum)-1]...) // summary object sans closing brace
	body = append(body, `,"`...)
	body = append(body, listKey...)
	body = append(body, `":[`...)
	for i, f := range frags {
		if i > 0 {
			body = append(body, ',')
		}
		body = append(body, f...)
	}
	body = append(body, ']', '}', '\n')

	lines := make([][]byte, 0, len(frags)+1)
	for _, f := range frags {
		line := make([]byte, 0, len(itemKey)*2+len(f)+16)
		line = append(line, `{"type":"`...)
		line = append(line, itemKey...)
		line = append(line, `","`...)
		line = append(line, itemKey...)
		line = append(line, `":`...)
		line = append(line, f...)
		line = append(line, '}')
		lines = append(lines, line)
	}
	sumLine := make([]byte, 0, len(sum)+20)
	sumLine = append(sumLine, `{"type":"summary",`...)
	sumLine = append(sumLine, sum[1:]...) // summary fields sans opening brace
	lines = append(lines, sumLine)
	return &cachedResponse{body: body, lines: lines}
}
