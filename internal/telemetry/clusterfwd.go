package telemetry

// Cluster request forwarding: when a static peer list is configured, each
// (system, program) model key has exactly one owning replica on the
// consistent-hash ring, and the model-serving handlers forward requests
// for keys another replica owns — so each model is characterised (and its
// response cache warmed) on one replica instead of on whichever replica
// the load balancer happened to pick. Ownership is advisory, not a
// correctness boundary: campaigns are deterministic for a fixed seed, so
// any replica can serve any key bit-identically, and a forward that fails
// at the transport falls back to serving locally rather than failing the
// request.

import (
	"bytes"
	"fmt"
	"io"
	"log/slog"
	"net/http"

	"hybridperf/internal/cluster"
	"hybridperf/internal/machine"
	"hybridperf/internal/workload"
)

// forwardedHeader marks a request that already made one replica-to-replica
// hop. The receiving replica always serves such a request locally — loop
// prevention when peer lists disagree mid-redeploy, and the escape hatch
// operators (and the CI smoke test) use to probe a specific replica's own
// cache.
const forwardedHeader = "X-Hybridperf-Forwarded"

// shardHeader names the replica whose model cache answered the request.
// Set on every response of a clustered replica; a forwarding hop copies
// the origin's value through, so clients always see the replica that did
// the work, not the one that proxied it.
const shardHeader = "X-Hybridperf-Shard"

// forwardRequestHeaders is the allowlist of client request headers a
// replica-to-replica forward copies through. Forwards are deliberate
// re-requests, not transparent proxies: only headers that change what
// the owner computes (Content-Type, Accept → body shape) or how the hop
// is observed (the trace context) propagate; cookies, auth material and
// conditional-request headers stop at the first replica. The traceparent
// is set from this hop's own trace context — a fresh child span id under
// the originating trace id — not copied from the client's raw header.
var forwardRequestHeaders = []string{"Content-Type", "Accept"}

// SetCluster makes this server one replica of a statically configured
// cluster: self must be one of peers (the replica's own advertised URL),
// and every peer must agree on the peer list for ownership to be
// consistent. Call once, after NewServer and before serving — it
// registers the cluster metric families and is not safe to race with
// requests.
func (s *Server) SetCluster(self string, peers []string) error {
	ring, err := cluster.New(peers, 0)
	if err != nil {
		return err
	}
	if !ring.Contains(self) {
		return fmt.Errorf("telemetry: -self %q is not in the peer list %v", self, peers)
	}
	s.ring = ring
	s.self = self
	// No client timeout: a forwarded cold predict legitimately waits out
	// the owner's characterisation campaign. The request context (and the
	// server's RequestTimeout, which the forwarded request inherits via
	// that context) bounds the hop instead.
	s.fwdClient = &http.Client{}
	s.mForwards = s.reg.Counter("hybridperf_cluster_forwards_total",
		"Requests forwarded to the replica owning their model key, by peer.", "peer")
	s.mForwardErrs = s.reg.Counter("hybridperf_cluster_forward_errors_total",
		"Forwarding attempts that failed at the transport and fell back to local serving, by peer.", "peer")
	return nil
}

// remoteOwner reports the peer to forward this request to: the ring owner
// of key, when clustered, when the request has not already been forwarded
// once, and when the owner is not this replica.
func (s *Server) remoteOwner(r *http.Request, key string) (string, bool) {
	if s.ring == nil || r.Header.Get(forwardedHeader) != "" {
		return "", false
	}
	owner := s.ring.Owner(key)
	if owner == s.self {
		return "", false
	}
	return owner, true
}

// forwardIfRemote forwards a single-key request (predict, sweep) when a
// remote replica owns its (system, program) model, and reports whether it
// wrote the response. Unknown names are never forwarded — the local
// handler produces the 400, identical on every replica.
func (s *Server) forwardIfRemote(w http.ResponseWriter, r *http.Request, body []byte, system, program string) bool {
	if s.ring == nil {
		return false
	}
	if _, err := machine.ByName(system); err != nil {
		return false
	}
	if _, err := workload.ByName(program); err != nil {
		return false
	}
	owner, ok := s.remoteOwner(r, cluster.ModelKey(system, program))
	if !ok {
		return false
	}
	return s.forward(w, r, body, owner)
}

// forward proxies the request body to owner at the same path and copies
// the response through, preserving streaming (each read chunk is flushed,
// so an NDJSON consumer sees lines as the owner emits them). Returns
// false — caller serves locally — only when the hop failed before any
// response byte: once the upstream status is written the fallback would
// corrupt the response, so later copy errors just end the body the way
// any broken connection would.
func (s *Server) forward(w http.ResponseWriter, r *http.Request, body []byte, owner string) bool {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, owner+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		s.mForwardErrs.With(owner).Inc()
		return false
	}
	for _, k := range forwardRequestHeaders {
		if v := r.Header.Get(k); v != "" {
			req.Header.Set(k, v)
		}
	}
	if tc, ok := traceContextFor(r.Context()); ok {
		req.Header.Set(TraceparentHeader, tc.Child().Traceparent())
	}
	req.Header.Set(forwardedHeader, s.self)
	resp, err := s.fwdClient.Do(req)
	if err != nil {
		s.mForwardErrs.With(owner).Inc()
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "forward failed; serving locally",
			slog.String("peer", owner),
			slog.String("route", r.URL.Path),
			slog.Any("err", err))
		return false
	}
	defer resp.Body.Close()
	s.mForwards.With(owner).Inc()
	annotate(r.Context(), slog.String("forwarded_to", owner))
	hdr := w.Header()
	for k, vv := range resp.Header {
		// Keep this hop's own identity headers: the local request id and
		// traceparent (same trace id, this hop's span id) already point at
		// this replica's log line; the owner's values would overwrite the
		// correlation without adding one.
		if k == "X-Request-Id" || k == TraceparentHeader {
			continue
		}
		hdr.Del(k)
		for _, v := range vv {
			hdr.Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	return true
}

// flushCopy streams src to w, flushing after every chunk so a proxied
// NDJSON response keeps its incremental delivery.
func flushCopy(w http.ResponseWriter, src io.Reader) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// batchRemoteOwner reports the single remote replica owning every tuple of
// a canonicalised batch, if there is one. Mixed-ownership batches return
// false and are served locally: splitting them is the gateway's job, and
// a replica re-fanning a batch would double the hop count for no win.
func (s *Server) batchRemoteOwner(r *http.Request, canon []canonTuple) (string, bool) {
	if s.ring == nil || len(canon) == 0 {
		return "", false
	}
	owner := s.ring.Owner(cluster.ModelKey(canon[0].system, canon[0].program))
	for _, t := range canon[1:] {
		if s.ring.Owner(cluster.ModelKey(t.system, t.program)) != owner {
			return "", false
		}
	}
	return s.remoteOwner(r, cluster.ModelKey(canon[0].system, canon[0].program))
}
