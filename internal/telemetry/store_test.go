package telemetry

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"hybridperf/internal/modelstore"
)

// newStoreServer builds a ready server persisting models into dir.
func newStoreServer(t *testing.T, dir string, seed int64) (*Server, *httptest.Server) {
	t.Helper()
	st, err := modelstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(Config{
		Workers:    2,
		Seed:       seed,
		ModelStore: st,
		Logger:     slog.New(slog.NewTextHandler(io.Discard, nil)),
	})
	s.SetReady(true)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// snapshotFiles lists the snapshot payloads the store wrote into dir.
func snapshotFiles(t *testing.T, dir string) []string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	return names
}

// TestWarmBootServesIdenticalPredictions is the cold-start amnesia fix
// end to end: a daemon characterises a model and persists the snapshot; a
// second daemon booted on the same store directory serves its very first
// prediction for that key byte-identical to the first daemon's — without
// running a single characterisation campaign.
func TestWarmBootServesIdenticalPredictions(t *testing.T) {
	dir := t.TempDir()
	body := `{"system":"xeon","program":"SP","class":"A","nodes":4,"cores":8,"freq_ghz":1.8}`

	sA, tsA := newStoreServer(t, dir, 42)
	respA, rawA := postJSON(t, tsA.URL+"/v1/predict", body)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("cold predict status %d: %s", respA.StatusCode, rawA)
	}
	if n := sA.mChar.With("xeon", "SP").Value(); n != 1 {
		t.Fatalf("cold daemon ran %d campaigns, want 1", n)
	}
	if n := sA.mStoreWrites.Value(); n != 1 {
		t.Errorf("hybridperf_model_store_writes_total = %d, want 1", n)
	}
	if files := snapshotFiles(t, dir); len(files) != 1 {
		t.Fatalf("store dir holds %d snapshots, want 1: %v", len(files), files)
	}
	tsA.Close()

	sB, tsB := newStoreServer(t, dir, 42)
	if n := sB.mStoreLoads.Value(); n != 1 {
		t.Fatalf("hybridperf_model_store_loads_total = %d on the warm boot, want 1", n)
	}
	respB, rawB := postJSON(t, tsB.URL+"/v1/predict", body)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("warm predict status %d: %s", respB.StatusCode, rawB)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Errorf("warm-booted prediction differs from the cold one:\ncold: %s\nwarm: %s", rawA, rawB)
	}
	// The warm daemon never characterised: the campaign counter stays flat.
	if n := sB.mChar.With("xeon", "SP").Value(); n != 0 {
		t.Errorf("warm daemon ran %d campaigns, want 0 (snapshot should have been adopted)", n)
	}
	if n := sB.mStoreLoadErrs.Value(); n != 0 {
		t.Errorf("hybridperf_model_store_load_errors_total = %d on a clean store, want 0", n)
	}
}

// TestWarmBootSkipsTruncatedSnapshot: a snapshot torn mid-write (crash,
// full disk, manual copy) must not take the daemon down or poison the
// model cache — it is skipped and counted, and the key re-characterises
// on demand to the exact same answer.
func TestWarmBootSkipsTruncatedSnapshot(t *testing.T) {
	dir := t.TempDir()
	body := `{"system":"arm","program":"CP","class":"A","nodes":2,"cores":4,"freq_ghz":1.4}`

	_, tsA := newStoreServer(t, dir, 42)
	respA, rawA := postJSON(t, tsA.URL+"/v1/predict", body)
	if respA.StatusCode != http.StatusOK {
		t.Fatalf("cold predict status %d: %s", respA.StatusCode, rawA)
	}
	tsA.Close()

	files := snapshotFiles(t, dir)
	if len(files) != 1 {
		t.Fatalf("store dir holds %d snapshots, want 1", len(files))
	}
	full, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(files[0], full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	sB, tsB := newStoreServer(t, dir, 42)
	if n := sB.mStoreLoadErrs.Value(); n != 1 {
		t.Errorf("hybridperf_model_store_load_errors_total = %d, want 1 (the truncated snapshot)", n)
	}
	if n := sB.mStoreLoads.Value(); n != 0 {
		t.Errorf("hybridperf_model_store_loads_total = %d, want 0", n)
	}
	respB, rawB := postJSON(t, tsB.URL+"/v1/predict", body)
	if respB.StatusCode != http.StatusOK {
		t.Fatalf("predict after skipped snapshot: status %d: %s", respB.StatusCode, rawB)
	}
	if !bytes.Equal(rawA, rawB) {
		t.Errorf("re-characterised prediction differs from the original:\nwas: %s\nnow: %s", rawA, rawB)
	}
	if n := sB.mChar.With("arm", "CP").Value(); n != 1 {
		t.Errorf("daemon ran %d campaigns after the skipped snapshot, want 1 (cold path)", n)
	}
	// The fresh campaign overwrote the torn file with a good snapshot.
	if n := sB.mStoreWrites.Value(); n != 1 {
		t.Errorf("hybridperf_model_store_writes_total = %d, want 1 (repair write)", n)
	}
}

// TestWarmBootIgnoresOtherSeed: a snapshot from a differently-seeded
// daemon sharing the store directory is left alone — adopting it would
// break the seed-determinism contract — and is not an error.
func TestWarmBootIgnoresOtherSeed(t *testing.T) {
	dir := t.TempDir()
	body := `{"system":"xeon","program":"LB","class":"A","nodes":2,"cores":8,"freq_ghz":1.5}`

	_, tsA := newStoreServer(t, dir, 42)
	if resp, raw := postJSON(t, tsA.URL+"/v1/predict", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d: %s", resp.StatusCode, raw)
	}
	tsA.Close()

	sB, tsB := newStoreServer(t, dir, 7)
	if n := sB.mStoreLoads.Value(); n != 0 {
		t.Errorf("seed-7 daemon adopted %d seed-42 snapshots, want 0", n)
	}
	if n := sB.mStoreLoadErrs.Value(); n != 0 {
		t.Errorf("foreign-seed snapshot counted as a load error: %d, want 0", n)
	}
	if resp, raw := postJSON(t, tsB.URL+"/v1/predict", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed-7 predict status %d: %s", resp.StatusCode, raw)
	}
	if n := sB.mChar.With("xeon", "LB").Value(); n != 1 {
		t.Errorf("seed-7 daemon ran %d campaigns, want 1 (its own cold path)", n)
	}
}
