// Package exec assembles and runs one simulated execution of a hybrid
// program on a cluster configuration, playing the role of the paper's
// "direct measurement": it reports wall-clock time (the `time` command),
// energy (the WattsUp meter, including its calibrated noise), hardware
// counters and the mpiP communication profile.
package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"hybridperf/internal/counters"
	"hybridperf/internal/des"
	"hybridperf/internal/dvfs"
	"hybridperf/internal/machine"
	"hybridperf/internal/metrics"
	"hybridperf/internal/mpi"
	"hybridperf/internal/node"
	"hybridperf/internal/omp"
	"hybridperf/internal/rng"
	"hybridperf/internal/simnet"
	"hybridperf/internal/trace"
	"hybridperf/internal/workload"
)

// Request describes one measurement run.
type Request struct {
	Prof  *machine.Profile
	Spec  *workload.Spec
	Class workload.Class
	Cfg   machine.Config
	Seed  int64

	// Engine selects the DES process engine: EngineGoroutine (the
	// reference: one goroutine per simulated process) or EngineSequential
	// (continuation machines on one scheduler loop — no goroutines, no
	// channel handoffs, typically >2x faster). Empty resolves via
	// $HYBRIDPERF_ENGINE, then to the goroutine engine. Both engines
	// produce bit-for-bit identical results.
	Engine string

	// Ctx, when non-nil, cancels the run cooperatively: the simulation
	// kernel polls the context every few thousand dispatch steps, so a
	// cancelled context stops the run mid-simulation with an error
	// wrapping ctx.Err() (errors.Is works) and the deferred Shutdown
	// reaps every pooled goroutine. A nil Ctx runs to completion. An
	// uncancelled context never perturbs results: runs stay bit-identical
	// with or without one attached.
	Ctx context.Context

	// NoJitter disables OS-noise perturbation (micro-benchmark mode).
	NoJitter bool
	// NoMeterNoise reports exact integrated energy instead of a metered
	// reading.
	NoMeterNoise bool
	// Governor, when non-nil, constructs a per-rank runtime DVFS governor
	// that retunes node frequency at iteration boundaries. Cfg.Freq is
	// the starting level.
	Governor func(rank int) dvfs.Governor
	// Trace records per-rank phase timelines into Result.Trace: every
	// compute burst, memory stall and network wait of each rank's master
	// thread, suitable for Gantt rendering, Chrome-trace export and the
	// measured-UCR derivation.
	Trace bool
	// Metrics attaches engine instrumentation to the run's kernel and
	// fills Result.Metrics with counter snapshots and per-rank phase-time
	// totals. Off by default; the counters never feed back into the
	// simulation, so results are bit-identical either way.
	Metrics bool
	// SharedMetrics, when non-nil, attaches this engine — typically one
	// process-lifetime counter set owned by a serving layer — to the run's
	// kernel instead of a fresh one, accumulating counters across runs
	// (all fields are atomic, so concurrent sweep runs may share it).
	// Result.Metrics then reports the end-minus-start snapshot delta; with
	// concurrent runs on one engine the delta includes overlapping work,
	// so treat per-run deltas as approximate and the shared engine itself
	// as the authoritative cumulative view. Takes precedence over Metrics.
	SharedMetrics *metrics.Engine
	// Observe, when non-nil, is called once after a successful run with a
	// label naming the program and configuration and the wall-clock
	// interval the engine spent producing it — the hook span recorders
	// attach to. Purely observational: the wall clock never feeds into
	// the simulation, so results stay bit-identical.
	Observe func(label string, start, end time.Time)

	// PhaseSink, when non-nil, receives the run's per-rank phase timeline
	// after a successful run, labelled with the program and configuration —
	// even when Trace is false (the recorder is attached either way, but
	// Result.Trace and MeasuredUCR stay gated on Trace, so existing callers
	// see identical results). Distributed tracing uses this to attach one
	// designated run's timeline to a sampled request without changing what
	// the run returns. Purely observational: recording never feeds back
	// into the simulation, so results are bit-identical with or without it.
	PhaseSink func(label string, events []trace.Event)

	// runSpec, when non-nil, replaces req.Spec.Run as the per-rank entry
	// point — a test seam for injecting per-rank failures, which the
	// built-in specs cannot produce after upfront validation. The seam is
	// a goroutine-style body and cannot be compiled to a continuation, so
	// requests carrying it always run on the goroutine engine (an explicit
	// Engine: EngineSequential is rejected).
	runSpec func(p *des.Proc, env *workload.Env) error
}

// Result is the measurement outcome of one run.
type Result struct {
	Program string
	Class   workload.Class
	Cfg     machine.Config

	Time           float64              // makespan [s]
	Energy         node.EnergyBreakdown // exact integrated cluster energy [J]
	MeasuredEnergy float64              // metered cluster energy [J], noise applied
	PerNode        []node.EnergyBreakdown

	Trace []trace.Event // phase timeline (when requested)
	// MeasuredUCR is the Useful Computation Ratio derived from the
	// recorded timeline (mean over ranks of master-thread compute time
	// over the timeline span) — the measured counterpart of the model's
	// predicted UCR. Zero unless Request.Trace was set.
	MeasuredUCR float64
	// Metrics holds engine counter snapshots and per-rank phase times
	// when Request.Metrics was set.
	Metrics *metrics.RunMetrics

	Totals      counters.Totals   // cluster-wide counter aggregation
	Utilization float64           // mean CPU utilisation U
	Comm        mpi.Profile       // mpiP-style communication profile
	MemWait     des.ResourceStats // node 0 memory controller statistics
	Engine      EngineStats       // DES kernel cost of producing the run
}

// EngineStats reports what the simulation engine spent producing a
// measurement: the engine mode, dispatched events and logical processes
// created. With the persistent worker pools, Procs stays near
// nodes x cores instead of growing with the event count. Procs counts
// goroutines only on the goroutine engine; on the sequential engine the
// same set of processes exists as continuation records and no goroutines
// are created — consumers must key any goroutine-specific interpretation
// on Engine.
type EngineStats struct {
	Engine string // engine mode that produced the run ("goroutine" or "sequential")
	Events uint64 // events dispatched by the kernel
	Procs  int    // logical simulated processes (ranks, workers, couriers)
}

// rankNames caches process labels for the usual world sizes so sweeps
// don't re-format them per run.
var rankNames = func() (names [64]string) {
	for i := range names {
		names[i] = fmt.Sprintf("rank%d", i)
	}
	return
}()

func rankName(i int) string {
	if i < len(rankNames) {
		return rankNames[i]
	}
	return fmt.Sprintf("rank%d", i)
}

// Run executes one simulation and returns its measurements.
func Run(req Request) (*Result, error) {
	var wall time.Time
	if req.Observe != nil {
		wall = time.Now()
	}
	if err := req.Prof.Validate(); err != nil {
		return nil, err
	}
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	if err := req.Prof.ValidateConfig(req.Cfg); err != nil {
		return nil, err
	}
	if _, err := req.Spec.Iterations(req.Class); err != nil {
		return nil, err
	}
	if req.Ctx != nil {
		if err := req.Ctx.Err(); err != nil {
			return nil, fmt.Errorf("exec: %s on %v: %w", req.Spec.Name, req.Cfg, err)
		}
	}

	engine, err := resolveEngine(req.Engine)
	if err != nil {
		return nil, err
	}
	if req.runSpec != nil {
		if req.Engine == EngineSequential {
			return nil, fmt.Errorf("exec: the runSpec test seam requires the goroutine engine")
		}
		engine = EngineGoroutine
	}

	root := rng.New(req.Seed)
	var k *des.Kernel
	if engine == EngineSequential {
		k = des.NewSequentialKernel()
	} else {
		k = des.NewKernel()
	}
	k.SetContext(req.Ctx)
	// Reap pooled worker/courier goroutines once results are read.
	defer k.Shutdown()
	sw := simnet.New(k, req.Prof, req.Cfg.Nodes)

	nodes := make([]*node.Node, req.Cfg.Nodes)
	for i := range nodes {
		var jitter *rng.Stream
		if !req.NoJitter {
			jitter = root.SplitInt("node", i)
		}
		nodes[i] = node.New(k, req.Prof, i, req.Cfg.Cores, req.Cfg.Freq, jitter)
	}
	world := mpi.NewWorld(k, sw, nodes)

	var rec *trace.Recorder
	if req.Trace || req.PhaseSink != nil {
		rec = trace.NewRecorder(0)
		for _, nd := range nodes {
			nd.SetTrace(rec)
		}
	}
	var mx *metrics.Engine
	var pre metrics.EngineSnapshot
	if req.SharedMetrics != nil {
		mx = req.SharedMetrics
		pre = mx.Snapshot()
		k.SetMetrics(mx)
	} else if req.Metrics {
		mx = metrics.NewEngine()
		k.SetMetrics(mx)
	}

	runSpec := req.Spec.Run
	if req.runSpec != nil {
		runSpec = req.runSpec
	}
	// Rank failures are collected, not first-error-wins: a multi-rank
	// failure is reported in full, one error per failing rank in rank
	// completion order, aggregated with errors.Join below. Appends are
	// safe without locking — the kernel runs exactly one process at a
	// time and synchronises handoffs through channels.
	var rankErrs []error
	for i := 0; i < req.Cfg.Nodes; i++ {
		env := &workload.Env{
			Rank:  world.Rank(i),
			Team:  omp.NewTeam(k, nodes[i]),
			Class: req.Class,
		}
		if req.Governor != nil {
			env.Governor = req.Governor(i)
		}
		if engine == EngineSequential {
			m, err := req.Spec.Machine(env)
			if err != nil {
				return nil, err
			}
			k.SpawnSeq(rankName(i), m)
			continue
		}
		k.Spawn(rankName(i), func(p *des.Proc) {
			if err := runSpec(p, env); err != nil {
				rankErrs = append(rankErrs, fmt.Errorf("%s: %w", p.Name(), err))
			}
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		return nil, fmt.Errorf("exec: %s on %v: %w", req.Spec.Name, req.Cfg, err)
	}
	if err := errors.Join(rankErrs...); err != nil {
		return nil, err
	}

	res := &Result{
		Program: req.Spec.Name,
		Class:   req.Class,
		Cfg:     req.Cfg,
		Time:    k.Now(),
		Comm:    world.Profile(),
		MemWait: nodes[0].MemStats(),
		Engine:  EngineStats{Engine: engine, Events: k.Events(), Procs: k.Procs()},
	}
	if req.Trace {
		res.Trace = rec.Events()
		res.MeasuredUCR = trace.UCR(res.Trace)
	}
	if req.PhaseSink != nil {
		req.PhaseSink(fmt.Sprintf("%s %v", req.Spec.Name, req.Cfg), rec.Events())
	}
	if mx != nil {
		// For a shared engine, report this run's contribution as the
		// end-minus-start delta (pre is zero for a fresh engine).
		res.Metrics = &metrics.RunMetrics{Engine: mx.Snapshot().Sub(pre)}
	}
	meterNoise := root.Split("meter")
	for _, nd := range nodes {
		e := nd.Energy()
		res.PerNode = append(res.PerNode, e)
		res.Energy.Add(e)
		res.Totals.Add(nd.Totals(res.Time))
		if res.Metrics != nil {
			ph := metrics.RankPhases{Rank: nd.ID}
			for _, c := range nd.Ctrs {
				ph.Compute += c.WorkTime + c.BStallTime
				ph.MemStall += c.MemStallTime
				ph.NetWait += c.NetWaitTime
			}
			res.Metrics.Ranks = append(res.Metrics.Ranks, ph)
		}
	}
	res.Utilization = res.Totals.Utilization()
	res.MeasuredEnergy = res.Energy.Total()
	if !req.NoMeterNoise {
		// The meter's power reading per node is offset by a slowly-varying
		// error with stddev MeterNoiseW (paper Sec. IV.C), integrating to
		// an energy offset proportional to the run time.
		for range nodes {
			res.MeasuredEnergy += meterNoise.Normal(0, req.Prof.MeterNoiseW) * res.Time
		}
		if res.MeasuredEnergy < 0 {
			res.MeasuredEnergy = 0
		}
	}
	if req.Observe != nil {
		label := fmt.Sprintf("run %s %v", req.Spec.Name, req.Cfg)
		if engine != EngineGoroutine {
			// Keep span labels honest about which engine produced the run;
			// the default engine stays unannotated for label stability.
			label += " engine=" + engine
		}
		req.Observe(label, wall, time.Now())
	}
	return res, nil
}

// runSafe is Run with panics converted to errors, so one faulty request
// cannot kill a sweep worker goroutine (taking the whole process down and
// leaving the other requests unexplained).
func runSafe(req Request) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("exec: run panicked: %v", r)
		}
	}()
	return Run(req)
}

// Sweep runs the requests concurrently on up to `workers` goroutines
// (each simulation has its own kernel, so runs are independent) and
// returns results in request order. Every request is attempted; a failing
// sweep reports all failures, one per failing request index, aggregated
// with errors.Join in request order. A request that panics (bad
// configuration reaching an engine invariant) is reported as that
// request's error rather than crashing the process. The work channel is
// buffered to the full request count so the producer never blocks: even
// if a worker died, the remaining workers drain the queue and Sweep
// terminates.
//
// Cancellation rides the per-request contexts: when the requests carry a
// cancelled (or later-cancelled) Ctx, in-flight simulations stop
// mid-run, queued ones fail their upfront context check, and the joined
// error reports the cancellation per request (errors.Is finds
// context.Canceled / DeadlineExceeded through the join).
func Sweep(reqs []Request, workers int) ([]*Result, error) {
	if workers < 1 {
		workers = 1
	}
	results := make([]*Result, len(reqs))
	errs := make([]error, len(reqs))
	idx := make(chan int, len(reqs))
	for i := range reqs {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i], errs[i] = runSafe(reqs[i])
			}
		}()
	}
	wg.Wait()
	var failed []error
	for i, err := range errs {
		if err != nil {
			failed = append(failed, fmt.Errorf("exec: sweep request %d: %w", i, err))
		}
	}
	if len(failed) > 0 {
		return nil, errors.Join(failed...)
	}
	return results, nil
}

// SweepMetrics aggregates the engine counter snapshots of a sweep's
// instrumented results (requests with Metrics set). It returns the summed
// snapshot and how many results carried metrics.
func SweepMetrics(results []*Result) (metrics.EngineSnapshot, int) {
	var agg metrics.EngineSnapshot
	n := 0
	for _, r := range results {
		if r != nil && r.Metrics != nil {
			agg.Add(r.Metrics.Engine)
			n++
		}
	}
	return agg, n
}
