package exec

import (
	"context"
	"errors"
	"strings"
	"testing"

	"hybridperf/internal/des"
	"hybridperf/internal/machine"
	"hybridperf/internal/workload"
)

func TestValidateEngine(t *testing.T) {
	for _, ok := range []string{"", EngineGoroutine, EngineSequential} {
		if err := ValidateEngine(ok); err != nil {
			t.Errorf("ValidateEngine(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"parallel", "Goroutine", "sequential "} {
		if err := ValidateEngine(bad); err == nil {
			t.Errorf("ValidateEngine(%q) accepted an unknown engine", bad)
		}
	}
}

func TestDefaultEngineFromEnvironment(t *testing.T) {
	t.Setenv(EngineEnv, "")
	if got := DefaultEngine(); got != EngineGoroutine {
		t.Fatalf("DefaultEngine() = %q with no env, want %q", got, EngineGoroutine)
	}
	t.Setenv(EngineEnv, EngineSequential)
	if got := DefaultEngine(); got != EngineSequential {
		t.Fatalf("DefaultEngine() = %q, want %q", got, EngineSequential)
	}
	// DefaultEngine itself falls back on garbage; Run surfaces the error.
	t.Setenv(EngineEnv, "warp-drive")
	if got := DefaultEngine(); got != EngineGoroutine {
		t.Fatalf("DefaultEngine() = %q with malformed env, want fallback %q", got, EngineGoroutine)
	}
	req := xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.8e9})
	if _, err := Run(req); err == nil || !strings.Contains(err.Error(), "HYBRIDPERF_ENGINE") {
		t.Fatalf("Run() = %v under malformed $%s, want a naming error", err, EngineEnv)
	}
}

func TestRunRejectsUnknownEngine(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.8e9})
	req.Engine = "warp-drive"
	if _, err := Run(req); err == nil || !strings.Contains(err.Error(), "warp-drive") {
		t.Fatalf("Run() = %v, want unknown-engine error", err)
	}
}

// TestResultReportsEngine: the engine that actually ran is stamped on the
// result — explicitly requested or resolved from the environment.
func TestResultReportsEngine(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 2, Cores: 2, Freq: 1.8e9})
	for _, engine := range Engines() {
		r := req
		r.Engine = engine
		res, err := Run(r)
		if err != nil {
			t.Fatal(err)
		}
		if res.Engine.Engine != engine {
			t.Fatalf("Result.Engine.Engine = %q, want %q", res.Engine.Engine, engine)
		}
		if res.Engine.Events == 0 || res.Engine.Procs == 0 {
			t.Fatalf("%s engine reported empty stats: %+v", engine, res.Engine)
		}
	}
	t.Setenv(EngineEnv, EngineSequential)
	res, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.Engine != EngineSequential {
		t.Fatalf("env default not honoured: ran %q, want %q", res.Engine.Engine, EngineSequential)
	}
}

// TestSequentialRunPreCancelledContext: the upfront cancellation check
// holds on the sequential engine too.
func TestSequentialRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := xeonReq(machine.Config{Nodes: 2, Cores: 2, Freq: 1.8e9})
	req.Ctx = ctx
	req.Engine = EngineSequential
	if _, err := Run(req); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
}

// TestRunSpecSeamRequiresGoroutine: the runSpec test seam is a goroutine
// body, so explicitly pairing it with the sequential engine is an error
// (an empty Engine silently keeps the seam on the goroutine engine).
func TestRunSpecSeamRequiresGoroutine(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.8e9})
	req.runSpec = func(p *des.Proc, env *workload.Env) error {
		p.Advance(1e-6)
		return nil
	}
	req.Engine = EngineSequential
	if _, err := Run(req); err == nil || !strings.Contains(err.Error(), "goroutine engine") {
		t.Fatalf("Run() = %v, want runSpec/engine mismatch error", err)
	}
	t.Setenv(EngineEnv, EngineSequential) // env default must not break the seam
	req.Engine = ""
	res, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.Engine != EngineGoroutine {
		t.Fatalf("seam ran on %q, want forced %q", res.Engine.Engine, EngineGoroutine)
	}
}
