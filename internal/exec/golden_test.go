package exec

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"hybridperf/internal/dvfs"
	"hybridperf/internal/machine"
	"hybridperf/internal/metrics"
	"hybridperf/internal/workload"
)

// The golden determinism contract: for a fixed seed and configuration,
// Run must report bit-for-bit identical Time, Energy, MeasuredEnergy and
// communication profile across engine refactors. The values below were
// recorded from the pre-PR-2 engine (fresh-goroutine parallel regions,
// container/heap event queue) and must survive every rewrite of the
// simulation hot path. Regenerate deliberately with:
//
//	GOLDEN_GEN=1 go test -run TestGoldenDeterminism ./internal/exec -v
//
// and only commit new values when a semantic change is intended.

type goldenValues struct {
	Time     string // hex float64 (strconv 'x' format)
	Energy   string
	Measured string
	Msgs     int
	Bytes    string
	Wait     string
}

func hexf(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func xeonCrossbar() *machine.Profile {
	p := machine.XeonE5()
	p.Topology = machine.TopologyCrossbar
	return p
}

func imbalancedSpec() *workload.Spec {
	s := workload.Synthetic("imb", 8e8, 0.5, 4, 2, 100e3)
	s.Imbalance = 1.0
	return s
}

func slackGov(rank int) dvfs.Governor {
	g, err := dvfs.NewInterNodeSlack([]float64{1.2e9, 1.5e9, 1.8e9}, 0, 0)
	if err != nil {
		panic(err)
	}
	return g
}

// goldenCases covers every communication pattern and engine path: halo
// exchange, barrier + sync overhead, allreduce, alltoall, single-node,
// crossbar ports, and runtime DVFS retuning with rank imbalance.
func goldenCases() map[string]Request {
	return map[string]Request{
		"xeon-sp-halo": {Prof: machine.XeonE5(), Spec: workload.SP(), Class: workload.ClassTest,
			Cfg: machine.Config{Nodes: 4, Cores: 4, Freq: 1.8e9}, Seed: 42},
		"xeon-lb-barrier": {Prof: machine.XeonE5(), Spec: workload.LB(), Class: workload.ClassTest,
			Cfg: machine.Config{Nodes: 4, Cores: 2, Freq: 1.8e9}, Seed: 11},
		"arm-cp-allreduce": {Prof: machine.ARMCortexA9(), Spec: workload.CP(), Class: workload.ClassTest,
			Cfg: machine.Config{Nodes: 4, Cores: 4, Freq: 1.4e9}, Seed: 7},
		"xeon-ft-alltoall": {Prof: machine.XeonE5(), Spec: workload.FT(), Class: workload.ClassTest,
			Cfg: machine.Config{Nodes: 4, Cores: 4, Freq: 1.8e9}, Seed: 9},
		"xeon-lu-singlenode": {Prof: machine.XeonE5(), Spec: workload.LU(), Class: workload.ClassTest,
			Cfg: machine.Config{Nodes: 1, Cores: 8, Freq: 1.8e9}, Seed: 3},
		"xeon-sp-crossbar": {Prof: xeonCrossbar(), Spec: workload.SP(), Class: workload.ClassTest,
			Cfg: machine.Config{Nodes: 4, Cores: 4, Freq: 1.8e9}, Seed: 5},
		"xeon-imb-governor": {Prof: machine.XeonE5(), Spec: imbalancedSpec(), Class: workload.ClassTest,
			Cfg: machine.Config{Nodes: 4, Cores: 4, Freq: 1.8e9}, Seed: 13, Governor: slackGov},
	}
}

// golden holds the recorded pre-refactor outputs (see comment above).
var golden = map[string]goldenValues{
	"xeon-sp-halo":       {Time: "0x1.45f9cd256814p+00", Energy: "0x1.dfa1f4783c9eap+08", Measured: "0x1.e043377961bd2p+08", Msgs: 64, Bytes: "0x1.e0ea70fb4c181p+23", Wait: "0x0p+00"},
	"xeon-lb-barrier":    {Time: "0x1.e03a203b5eed3p+00", Energy: "0x1.331afe3f1f6f8p+09", Measured: "0x1.34352d4fb281dp+09", Msgs: 128, Bytes: "0x1.829417e307eaep+24", Wait: "0x1.1007fb630d964p-06"},
	"arm-cp-allreduce":   {Time: "0x1.b8906cf1dff25p+06", Energy: "0x1.243b25e3ffa67p+11", Measured: "0x1.1fa992c503468p+11", Msgs: 32, Bytes: "0x1.e848p+26", Wait: "0x1.e8e562323af8bp+02"},
	"xeon-ft-alltoall":   {Time: "0x1.003a06286ad58p+01", Energy: "0x1.69649756ca00cp+09", Measured: "0x1.6765254dc2c9ep+09", Msgs: 48, Bytes: "0x1.6e36p+25", Wait: "0x1.2234f3af9e165p-02"},
	"xeon-lu-singlenode": {Time: "0x1.073ff862ae62ep+01", Energy: "0x1.e13d6650a1ec8p+07", Measured: "0x1.e8e7ab0ace952p+07", Msgs: 0, Bytes: "0x0p+00", Wait: "0x0p+00"},
	"xeon-sp-crossbar":   {Time: "0x1.441690755f7d7p+00", Energy: "0x1.dcc4ea07970b8p+08", Measured: "0x1.d888e32e87003p+08", Msgs: 64, Bytes: "0x1.e0ea70fb4c181p+23", Wait: "0x0p+00"},
	"xeon-imb-governor":  {Time: "0x1.140ca4a234c81p-03", Energy: "0x1.78e28e2ec38bcp+05", Measured: "0x1.7e6fa49a8f0a3p+05", Msgs: 16, Bytes: "0x1.e0ea70fb4c182p+19", Wait: "0x1.e44b27deb0b8dp-07"},
}

func TestGoldenDeterminism(t *testing.T) {
	gen := os.Getenv("GOLDEN_GEN") != ""
	for name, req := range goldenCases() {
		name, req := name, req
		t.Run(name, func(t *testing.T) {
			res, err := Run(req)
			if err != nil {
				t.Fatal(err)
			}
			got := goldenValues{
				Time:     hexf(res.Time),
				Energy:   hexf(res.Energy.Total()),
				Measured: hexf(res.MeasuredEnergy),
				Msgs:     res.Comm.TotalMsgs,
				Bytes:    hexf(res.Comm.TotalBytes),
				Wait:     hexf(res.Comm.MeanWaitTime),
			}
			// Same-process rerun must be bit-for-bit identical regardless
			// of golden bookkeeping.
			res2, err := Run(req)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Time != res.Time || res2.Energy.Total() != res.Energy.Total() ||
				res2.MeasuredEnergy != res.MeasuredEnergy || res2.Comm != res.Comm {
				t.Fatalf("rerun of %s diverged: %+v vs %+v", name, res2, res)
			}
			// Instrumentation must observe without perturbing: the same
			// request with tracing and metrics on reproduces every value
			// bit for bit.
			inst := req
			inst.Trace = true
			inst.Metrics = true
			res3, err := Run(inst)
			if err != nil {
				t.Fatal(err)
			}
			if res3.Time != res.Time || res3.Energy != res.Energy ||
				res3.MeasuredEnergy != res.MeasuredEnergy || res3.Comm != res.Comm {
				t.Fatalf("instrumentation perturbed %s: %+v vs %+v", name, res3, res)
			}
			if len(res3.Trace) == 0 || res3.Metrics == nil {
				t.Fatalf("instrumented run recorded nothing")
			}
			// The serving layer's collectors — a shared process-lifetime
			// engine plus a wall-clock span observer — must be equally
			// invisible: same request, byte-identical outputs.
			shared := req
			shared.SharedMetrics = metrics.NewEngine()
			spans := 0
			shared.Observe = func(label string, start, end time.Time) {
				if label == "" || end.Before(start) {
					t.Errorf("malformed span %q [%v,%v]", label, start, end)
				}
				spans++
			}
			res4, err := Run(shared)
			if err != nil {
				t.Fatal(err)
			}
			if res4.Time != res.Time || res4.Energy != res.Energy ||
				res4.MeasuredEnergy != res.MeasuredEnergy || res4.Comm != res.Comm {
				t.Fatalf("server collectors perturbed %s: %+v vs %+v", name, res4, res)
			}
			if spans != 1 {
				t.Fatalf("Observe fired %d times, want 1", spans)
			}
			if res4.Metrics == nil || res4.Metrics.Engine.Events == 0 {
				t.Fatalf("shared engine recorded nothing")
			}
			if got, want := res4.Metrics.Engine, shared.SharedMetrics.Snapshot(); got != want {
				t.Fatalf("single-run shared-engine delta should equal the engine total:\n got  %+v\n want %+v", got, want)
			}
			// A live (cancellable, never cancelled) request context arms the
			// kernel's cancellation poll; the poll must never perturb the
			// simulation — byte-identical outputs with a context attached.
			ctx, cancel := context.WithCancel(context.Background())
			withCtx := req
			withCtx.Ctx = ctx
			res5, err := Run(withCtx)
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			if res5.Time != res.Time || res5.Energy != res.Energy ||
				res5.MeasuredEnergy != res.MeasuredEnergy || res5.Comm != res.Comm {
				t.Fatalf("request context perturbed %s: %+v vs %+v", name, res5, res)
			}
			// The sequential engine must reproduce the goroutine engine
			// bit for bit: times, energies, communication profile, trace
			// and the physically meaningful engine counters. Both engines
			// are requested explicitly so this holds whatever default
			// $HYBRIDPERF_ENGINE selects.
			gor := inst
			gor.Engine = EngineGoroutine
			resG, err := Run(gor)
			if err != nil {
				t.Fatal(err)
			}
			seq := inst
			seq.Engine = EngineSequential
			resS, err := Run(seq)
			if err != nil {
				t.Fatal(err)
			}
			if resS.Time != resG.Time || resS.Energy != resG.Energy ||
				resS.MeasuredEnergy != resG.MeasuredEnergy || resS.Comm != resG.Comm ||
				resS.MeasuredUCR != resG.MeasuredUCR || resS.Totals != resG.Totals ||
				resS.MemWait != resG.MemWait {
				t.Fatalf("sequential engine diverged on %s:\n got  %+v\n want %+v", name, resS, resG)
			}
			if resS.Time != res.Time {
				t.Fatalf("explicit-engine run diverged from the implicit default on %s", name)
			}
			if resG.Engine.Engine != EngineGoroutine || resS.Engine.Engine != EngineSequential {
				t.Fatalf("engine stats misreport the mode: %q / %q", resG.Engine.Engine, resS.Engine.Engine)
			}
			if resS.Engine.Events != resG.Engine.Events || resS.Engine.Procs != resG.Engine.Procs {
				t.Fatalf("engine stats diverged on %s:\n got  %+v\n want %+v", name, resS.Engine, resG.Engine)
			}
			if len(resS.Trace) != len(resG.Trace) {
				t.Fatalf("trace lengths diverged on %s: %d vs %d", name, len(resS.Trace), len(resG.Trace))
			}
			for i := range resG.Trace {
				if resS.Trace[i] != resG.Trace[i] {
					t.Fatalf("trace event %d diverged on %s:\n got  %+v\n want %+v",
						i, name, resS.Trace[i], resG.Trace[i])
				}
			}
			// Dispatch classification legitimately differs (one scheduler
			// loop performs no channel handoffs); everything that measures
			// the simulation rather than the scheduler must not.
			mg, ms := resG.Metrics.Engine, resS.Metrics.Engine
			if ms.Events != mg.Events || ms.Lookaheads != mg.Lookaheads ||
				ms.Regions != mg.Regions || ms.Messages != mg.Messages ||
				ms.PoolHits != mg.PoolHits || ms.PoolSpawns != mg.PoolSpawns ||
				ms.HeapHighWater != mg.HeapHighWater || ms.MsgBytes != mg.MsgBytes ||
				ms.SelfDispatches != mg.SelfDispatches {
				t.Fatalf("engine counters diverged on %s:\n got  %+v\n want %+v", name, ms, mg)
			}
			if ms.Handoffs != 0 {
				t.Fatalf("sequential engine reported %d goroutine handoffs", ms.Handoffs)
			}
			if ms.Handoffs+ms.SelfDispatches+ms.SchedulerDispatches != ms.Events {
				t.Fatalf("sequential dispatch counters do not sum to events: %+v", ms)
			}
			if gen {
				fmt.Printf("\t%q: {Time: %q, Energy: %q, Measured: %q, Msgs: %d, Bytes: %q, Wait: %q},\n",
					name, got.Time, got.Energy, got.Measured, got.Msgs, got.Bytes, got.Wait)
				return
			}
			want, ok := golden[name]
			if !ok {
				t.Fatalf("no golden values for %s (run with GOLDEN_GEN=1 to record)", name)
			}
			if got != want {
				t.Errorf("golden mismatch for %s:\n got  %+v\n want %+v", name, got, want)
			}
		})
	}
}

// TestGoldenSweepParallel drives every golden configuration through
// exec.Sweep with several workers and asserts byte-identical results to a
// serial sweep — the determinism contract must survive scheduling onto
// arbitrary OS threads (CI runs this under -race).
func TestGoldenSweepParallel(t *testing.T) {
	cases := goldenCases()
	var names []string
	var reqs []Request
	for name, req := range cases {
		names = append(names, name)
		reqs = append(reqs, req)
	}
	serial, err := Sweep(reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(reqs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		s, p := serial[i], parallel[i]
		if p.Time != s.Time || p.Energy != s.Energy ||
			p.MeasuredEnergy != s.MeasuredEnergy || p.Comm != s.Comm {
			t.Errorf("%s diverged across worker counts:\n serial   %+v\n parallel %+v",
				names[i], s, p)
		}
		if want, ok := golden[names[i]]; ok {
			if hexf(p.Time) != want.Time || hexf(p.Energy.Total()) != want.Energy {
				t.Errorf("%s parallel sweep drifted from golden values", names[i])
			}
		}
	}
}
