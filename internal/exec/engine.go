package exec

import (
	"fmt"
	"os"
)

// Engine names selectable per Request (see Request.Engine). Both engines
// produce bit-for-bit identical results for identical requests; the golden
// determinism and cross-engine differential tests enforce this.
const (
	// EngineGoroutine is the reference engine: one goroutine per simulated
	// process with direct channel handoff between them.
	EngineGoroutine = "goroutine"
	// EngineSequential is the goroutine-free engine: process bodies run as
	// continuation machines dispatched by one scheduler loop, eliminating
	// the per-event handoff — the faster choice for production campaigns.
	EngineSequential = "sequential"
)

// EngineEnv is the environment variable consulted when Request.Engine is
// empty: set HYBRIDPERF_ENGINE=sequential to flip the process-wide default
// (CI uses this to run the full test suite on the sequential engine).
const EngineEnv = "HYBRIDPERF_ENGINE"

// Engines lists the selectable engine names.
func Engines() []string { return []string{EngineGoroutine, EngineSequential} }

// ValidateEngine checks an engine name; empty is valid and selects the
// default (see DefaultEngine).
func ValidateEngine(name string) error {
	switch name {
	case "", EngineGoroutine, EngineSequential:
		return nil
	}
	return fmt.Errorf("exec: unknown engine %q (want %q or %q)", name, EngineGoroutine, EngineSequential)
}

// resolveEngine maps a Request.Engine value to a concrete engine name:
// explicit names are validated, empty falls back to $HYBRIDPERF_ENGINE and
// then to the goroutine engine. A malformed environment value is an error
// rather than a silent fallback.
func resolveEngine(name string) (string, error) {
	if name != "" {
		if err := ValidateEngine(name); err != nil {
			return "", err
		}
		return name, nil
	}
	env := os.Getenv(EngineEnv)
	switch env {
	case "":
		return EngineGoroutine, nil
	case EngineGoroutine, EngineSequential:
		return env, nil
	}
	return "", fmt.Errorf("exec: invalid $%s=%q (want %q or %q)", EngineEnv, env, EngineGoroutine, EngineSequential)
}

// DefaultEngine reports the engine an empty Request.Engine resolves to.
// A malformed $HYBRIDPERF_ENGINE reports the goroutine engine here; Run
// itself surfaces the error.
func DefaultEngine() string {
	e, err := resolveEngine("")
	if err != nil {
		return EngineGoroutine
	}
	return e
}
