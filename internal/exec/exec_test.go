package exec

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"hybridperf/internal/dvfs"
	"hybridperf/internal/machine"
	"hybridperf/internal/trace"
	"hybridperf/internal/workload"
)

func xeonReq(cfg machine.Config) Request {
	return Request{
		Prof:  machine.XeonE5(),
		Spec:  workload.SP(),
		Class: workload.ClassTest,
		Cfg:   cfg,
		Seed:  11,
	}
}

func TestRunDeterministic(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 2, Cores: 4, Freq: 1.8e9})
	a, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.MeasuredEnergy != b.MeasuredEnergy {
		t.Fatalf("same seed differs: T %g vs %g, E %g vs %g", a.Time, b.Time, a.MeasuredEnergy, b.MeasuredEnergy)
	}
	if a.Totals != b.Totals {
		t.Fatal("counters differ across identical runs")
	}
}

func TestRunSeedVariation(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 1, Cores: 2, Freq: 1.8e9})
	a, _ := Run(req)
	req.Seed = 12
	b, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time == b.Time {
		t.Fatal("different seeds gave bit-identical times (jitter inactive?)")
	}
	// But within OS-noise range of each other.
	if math.Abs(a.Time-b.Time)/a.Time > 0.10 {
		t.Fatalf("run-to-run variation %g vs %g exceeds 10%%", a.Time, b.Time)
	}
}

func TestRunNoJitterExactlyRepeatable(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.2e9})
	req.NoJitter = true
	req.NoMeterNoise = true
	a, _ := Run(req)
	req.Seed = 999 // seed must not matter without noise sources
	b, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.MeasuredEnergy != b.MeasuredEnergy {
		t.Fatal("noise-free runs depend on seed")
	}
	if a.MeasuredEnergy != a.Energy.Total() {
		t.Fatal("NoMeterNoise reading differs from integrated energy")
	}
}

func TestScalingDirections(t *testing.T) {
	base, err := Run(xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.2e9}))
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.8e9}))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Time >= base.Time {
		t.Fatalf("higher frequency not faster: %g vs %g", fast.Time, base.Time)
	}
	wide, err := Run(xeonReq(machine.Config{Nodes: 1, Cores: 8, Freq: 1.2e9}))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Time >= base.Time/3 {
		t.Fatalf("8 cores speedup too low: %g vs %g", wide.Time, base.Time)
	}
	multi, err := Run(xeonReq(machine.Config{Nodes: 4, Cores: 1, Freq: 1.2e9}))
	if err != nil {
		t.Fatal(err)
	}
	if multi.Time >= base.Time/2 {
		t.Fatalf("4 nodes speedup too low: %g vs %g", multi.Time, base.Time)
	}
}

func TestEnergyBreakdownConsistent(t *testing.T) {
	res, err := Run(xeonReq(machine.Config{Nodes: 2, Cores: 2, Freq: 1.5e9}))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, e := range res.PerNode {
		sum += e.Total()
	}
	if math.Abs(sum-res.Energy.Total())/sum > 1e-9 {
		t.Fatalf("per-node energies %g != cluster total %g", sum, res.Energy.Total())
	}
	if res.Energy.Idle <= 0 || res.Energy.CPU <= 0 {
		t.Fatalf("missing energy components: %+v", res.Energy)
	}
	if len(res.PerNode) != 2 {
		t.Fatalf("PerNode has %d entries", len(res.PerNode))
	}
}

func TestCountersScaleWithClass(t *testing.T) {
	reqS := xeonReq(machine.Config{Nodes: 1, Cores: 2, Freq: 1.8e9})
	reqS.Class = workload.ClassS
	reqS.NoJitter = true
	s, err := Run(reqS)
	if err != nil {
		t.Fatal(err)
	}
	reqA := reqS
	reqA.Class = workload.ClassA
	a, err := Run(reqA)
	if err != nil {
		t.Fatal(err)
	}
	itS, _ := workload.SP().Iterations(workload.ClassS)
	itA, _ := workload.SP().Iterations(workload.ClassA)
	wantRatio := float64(itA) / float64(itS)
	gotRatio := a.Totals.WorkCycles / s.Totals.WorkCycles
	if math.Abs(gotRatio-wantRatio)/wantRatio > 0.01 {
		t.Fatalf("work cycles scaled %gx, want %gx (the model's S/Ss assumption)", gotRatio, wantRatio)
	}
}

func TestMeterNoiseBounded(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 1, Cores: 4, Freq: 1.8e9})
	res, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	exact := res.Energy.Total()
	// Noise is ~N(0, 2W) x T per node; 6 sigma bound.
	bound := 6 * machine.XeonE5().MeterNoiseW * res.Time
	if math.Abs(res.MeasuredEnergy-exact) > bound {
		t.Fatalf("metered %g vs exact %g differs beyond noise bound %g", res.MeasuredEnergy, exact, bound)
	}
	if res.MeasuredEnergy == exact {
		t.Fatal("meter noise had no effect")
	}
}

func TestUtilizationRange(t *testing.T) {
	res, err := Run(xeonReq(machine.Config{Nodes: 2, Cores: 4, Freq: 1.8e9}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Utilization <= 0 || res.Utilization > 1 {
		t.Fatalf("utilization = %g", res.Utilization)
	}
}

func TestRunRejectsInvalidRequests(t *testing.T) {
	bad := []Request{
		{Prof: machine.XeonE5(), Spec: workload.SP(), Class: workload.ClassTest,
			Cfg: machine.Config{Nodes: 99, Cores: 1, Freq: 1.2e9}}, // too many nodes
		{Prof: machine.XeonE5(), Spec: workload.SP(), Class: workload.ClassTest,
			Cfg: machine.Config{Nodes: 1, Cores: 1, Freq: 1.0e9}}, // bad DVFS level
		{Prof: machine.XeonE5(), Spec: workload.SP(), Class: workload.Class("nope"),
			Cfg: machine.Config{Nodes: 1, Cores: 1, Freq: 1.2e9}}, // bad class
	}
	for i, req := range bad {
		if _, err := Run(req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

func TestSweepPreservesOrder(t *testing.T) {
	var reqs []Request
	var freqs []float64
	for _, f := range machine.XeonE5().Frequencies {
		reqs = append(reqs, xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: f}))
		freqs = append(freqs, f)
	}
	results, err := Sweep(reqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Cfg.Freq != freqs[i] {
			t.Fatalf("result %d is for %g Hz, want %g", i, res.Cfg.Freq, freqs[i])
		}
	}
	// Higher frequency strictly faster on this compute-bound class.
	if !(results[0].Time > results[1].Time && results[1].Time > results[2].Time) {
		t.Fatalf("times %g %g %g not decreasing with frequency",
			results[0].Time, results[1].Time, results[2].Time)
	}
}

func TestSweepMatchesSequentialRuns(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 2, Cores: 2, Freq: 1.5e9})
	solo, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	results, err := Sweep([]Request{req, req, req}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Time != solo.Time || res.MeasuredEnergy != solo.MeasuredEnergy {
			t.Fatal("concurrent sweep perturbed simulation results")
		}
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	good := xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.2e9})
	bad := xeonReq(machine.Config{Nodes: 0, Cores: 1, Freq: 1.2e9})
	if _, err := Sweep([]Request{good, bad}, 2); err == nil {
		t.Fatal("sweep swallowed an error")
	}
}

func TestSweepReportsEveryFailure(t *testing.T) {
	good := xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.2e9})
	badNodes := xeonReq(machine.Config{Nodes: 0, Cores: 1, Freq: 1.2e9})
	badFreq := xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.0e9})
	_, err := Sweep([]Request{badNodes, good, badFreq}, 2)
	if err == nil {
		t.Fatal("sweep swallowed both errors")
	}
	msg := err.Error()
	for _, want := range []string{"request 0", "request 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregate error omits %q: %v", want, err)
		}
	}
	if strings.Contains(msg, "request 1") {
		t.Errorf("aggregate error blames the good request: %v", err)
	}
}

// TestSweepRecoversPanics: a request that panics inside Run (here a nil
// profile dereference) must surface as that request's error — not kill the
// worker goroutine, crash the process, or deadlock the producer.
func TestSweepRecoversPanics(t *testing.T) {
	good := xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.2e9})
	panicky := good
	panicky.Prof = nil
	// More panicking requests than workers: with a dead worker and an
	// unbuffered queue this would deadlock; it must terminate and blame
	// exactly the panicking indexes.
	_, err := Sweep([]Request{panicky, good, panicky, panicky, good}, 2)
	if err == nil {
		t.Fatal("sweep swallowed the panics")
	}
	msg := err.Error()
	if !strings.Contains(msg, "panicked") {
		t.Fatalf("error does not mention the panic: %v", err)
	}
	for _, want := range []string{"request 0", "request 2", "request 3"} {
		if !strings.Contains(msg, want) {
			t.Errorf("aggregate error omits %q: %v", want, err)
		}
	}
	for _, bad := range []string{"request 1", "request 4"} {
		if strings.Contains(msg, bad) {
			t.Errorf("aggregate error blames good %s: %v", bad, err)
		}
	}
	// Every request panicking, one worker: still terminates.
	if _, err := Sweep([]Request{panicky, panicky, panicky}, 1); err == nil {
		t.Fatal("all-panic sweep swallowed the failures")
	}
}

func TestRunMetricsPopulated(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 2, Cores: 2, Freq: 1.8e9})
	req.Metrics = true
	res, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics == nil {
		t.Fatal("Metrics request returned no metrics")
	}
	eng := res.Metrics.Engine
	if eng.Events != res.Engine.Events {
		t.Fatalf("metrics events %d != engine stats %d", eng.Events, res.Engine.Events)
	}
	if got := eng.Handoffs + eng.SelfDispatches + eng.SchedulerDispatches; got != eng.Events {
		t.Fatalf("dispatch classes sum to %d, want %d", got, eng.Events)
	}
	if eng.Regions == 0 || eng.Messages == 0 || eng.HeapHighWater == 0 {
		t.Fatalf("runtime counters empty: %+v", eng)
	}
	if uint64(res.Comm.TotalMsgs) != eng.Messages {
		t.Fatalf("metrics saw %d messages, comm profile %d", eng.Messages, res.Comm.TotalMsgs)
	}
	if len(res.Metrics.Ranks) != 2 {
		t.Fatalf("%d rank phase records, want 2", len(res.Metrics.Ranks))
	}
	for _, ph := range res.Metrics.Ranks {
		if ph.Compute <= 0 || ph.MemStall <= 0 {
			t.Fatalf("rank %d phases empty: %+v", ph.Rank, ph)
		}
	}
	// Plain runs carry none.
	req.Metrics = false
	plain, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != nil {
		t.Fatal("uninstrumented run carries metrics")
	}
}

// Property: instrumentation observes without perturbing — metrics-on and
// metrics-off runs of the same request report bit-identical time/energy.
func TestMetricsDoNotPerturb(t *testing.T) {
	f := func(seed, n, c uint8) bool {
		req := xeonReq(machine.Config{
			Nodes: int(n%4) + 1, Cores: int(c%4) + 1, Freq: 1.8e9,
		})
		req.Seed = int64(seed)
		plain, err1 := Run(req)
		req.Metrics = true
		req.Trace = true
		inst, err2 := Run(req)
		if err1 != nil || err2 != nil {
			return false
		}
		return plain.Time == inst.Time &&
			plain.Energy == inst.Energy &&
			plain.MeasuredEnergy == inst.MeasuredEnergy &&
			plain.Totals == inst.Totals
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestSweepMetricsAggregates(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 2, Cores: 2, Freq: 1.5e9})
	req.Metrics = true
	plain := req
	plain.Metrics = false
	results, err := Sweep([]Request{req, plain, req}, 2)
	if err != nil {
		t.Fatal(err)
	}
	agg, n := SweepMetrics(results)
	if n != 2 {
		t.Fatalf("%d instrumented results, want 2", n)
	}
	want := results[0].Metrics.Engine.Events + results[2].Metrics.Engine.Events
	if agg.Events != want {
		t.Fatalf("aggregate events %d, want %d", agg.Events, want)
	}
}

func TestCommProfilePresence(t *testing.T) {
	single, err := Run(xeonReq(machine.Config{Nodes: 1, Cores: 2, Freq: 1.8e9}))
	if err != nil {
		t.Fatal(err)
	}
	if single.Comm.TotalMsgs != 0 {
		t.Fatal("single-node run has MPI traffic")
	}
	multi, err := Run(xeonReq(machine.Config{Nodes: 4, Cores: 2, Freq: 1.8e9}))
	if err != nil {
		t.Fatal(err)
	}
	if multi.Comm.TotalMsgs == 0 {
		t.Fatal("multi-node run has no MPI traffic")
	}
	if multi.Comm.SwitchStats.Served != int64(multi.Comm.TotalMsgs) {
		t.Fatalf("switch served %d, mpi sent %d", multi.Comm.SwitchStats.Served, multi.Comm.TotalMsgs)
	}
}

func TestARMProfileRuns(t *testing.T) {
	res, err := Run(Request{
		Prof:  machine.ARMCortexA9(),
		Spec:  workload.LB(),
		Class: workload.ClassTest,
		Cfg:   machine.Config{Nodes: 2, Cores: 4, Freq: 1.4e9},
		Seed:  3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// LB on ARM is memory-bound: stall cycles should rival work cycles.
	if res.Totals.MemStallCycles < res.Totals.WorkCycles {
		t.Fatalf("ARM LB not memory-bound: m=%g w=%g", res.Totals.MemStallCycles, res.Totals.WorkCycles)
	}
}

func TestGovernorSavesEnergyOnCommBoundRun(t *testing.T) {
	// CP on the ARM cluster at 8 nodes is dominated by its allreduce:
	// plenty of inter-node slack for the DVFS governor to reclaim. The
	// governed run must use measurably less energy at a bounded slowdown.
	prof := machine.ARMCortexA9()
	base := Request{
		Prof:  prof,
		Spec:  workload.CP(),
		Class: workload.ClassTest,
		Cfg:   machine.Config{Nodes: 8, Cores: 4, Freq: prof.FMax()},
		Seed:  77,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	governed := base
	governed.Governor = func(rank int) dvfs.Governor {
		g, err := dvfs.NewInterNodeSlack(prof.Frequencies, 0.25, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	saved, err := Run(governed)
	if err != nil {
		t.Fatal(err)
	}
	if saved.Energy.CPU >= plain.Energy.CPU {
		t.Fatalf("governor did not cut CPU energy: %g vs %g", saved.Energy.CPU, plain.Energy.CPU)
	}
	if saved.Time > plain.Time*1.30 {
		t.Fatalf("governor slowed the run beyond 30%%: %g vs %g", saved.Time, plain.Time)
	}
	t.Logf("DVFS on ARM CP (8,4): T %.0f -> %.0f s (%+.1f%%), E %.2f -> %.2f kJ (%+.1f%%)",
		plain.Time, saved.Time, (saved.Time/plain.Time-1)*100,
		plain.Energy.Total()/1e3, saved.Energy.Total()/1e3,
		(saved.Energy.Total()/plain.Energy.Total()-1)*100)
}

func TestGovernorHarmlessOnComputeBoundRun(t *testing.T) {
	// A single-node run has no network slack; the governor must leave the
	// execution essentially untouched.
	prof := machine.XeonE5()
	base := Request{
		Prof:  prof,
		Spec:  workload.LU(),
		Class: workload.ClassTest,
		Cfg:   machine.Config{Nodes: 1, Cores: 4, Freq: prof.FMax()},
		Seed:  5,
	}
	plain, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	governed := base
	governed.Governor = func(rank int) dvfs.Governor {
		g, err := dvfs.NewInterNodeSlack(prof.Frequencies, 0.25, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	gov, err := Run(governed)
	if err != nil {
		t.Fatal(err)
	}
	if gov.Time != plain.Time {
		t.Fatalf("governor perturbed a slack-free run: %g vs %g", gov.Time, plain.Time)
	}
}

func TestTraceRecordsPhases(t *testing.T) {
	req := xeonReq(machine.Config{Nodes: 2, Cores: 2, Freq: 1.8e9})
	req.Trace = true
	res, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace events recorded")
	}
	iters, _ := workload.SP().Iterations(workload.ClassTest)
	// The engine records each master-thread burst: per rank per iteration,
	// at least one compute and one memory-stall event, at most the burst
	// cap (8) of each plus one network wait (zero-length phases drop).
	minWant := 2 * iters * 2
	maxWant := 2 * iters * (8 + 8 + 1)
	if len(res.Trace) < minWant || len(res.Trace) > maxWant {
		t.Fatalf("%d trace events, want in [%d, %d]", len(res.Trace), minWant, maxWant)
	}
	sum := trace.Summary(res.Trace)
	for rank := 0; rank < 2; rank++ {
		if sum[rank][trace.Compute] <= 0 {
			t.Fatalf("rank %d has no compute time", rank)
		}
		if sum[rank][trace.MemStall] <= 0 {
			t.Fatalf("rank %d has no memory-stall time", rank)
		}
		// Master-thread phases are sequential, so they cannot exceed the
		// makespan.
		total := sum[rank][trace.Compute] + sum[rank][trace.MemStall] + sum[rank][trace.Network]
		if total > res.Time*1.0001 {
			t.Fatalf("rank %d phases (%g) exceed the run time (%g)", rank, total, res.Time)
		}
	}
	// The reported measured UCR is exactly the trace-derived one and lies
	// in (0, 1] like any time fraction.
	if res.MeasuredUCR != trace.UCR(res.Trace) {
		t.Fatalf("MeasuredUCR %g != trace.UCR %g", res.MeasuredUCR, trace.UCR(res.Trace))
	}
	if res.MeasuredUCR <= 0 || res.MeasuredUCR > 1 {
		t.Fatalf("MeasuredUCR = %g, want in (0,1]", res.MeasuredUCR)
	}
	// Untraced runs carry no events.
	req.Trace = false
	plain, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced run recorded events")
	}
	if plain.Time != res.Time {
		t.Fatal("tracing perturbed the simulation")
	}
}
