package exec

import (
	"testing"

	"hybridperf/internal/trace"
)

// TestPhaseSinkInvisible: attaching a PhaseSink (the distributed-tracing
// hook that hands a sampled request the engine's per-rank phase
// timeline) must not perturb the simulation — every golden case
// reproduces bit for bit with the sink attached — while the sink
// receives a non-empty labelled timeline and Result.Trace stays empty
// unless Trace was requested on its own.
func TestPhaseSinkInvisible(t *testing.T) {
	for name, req := range goldenCases() {
		name, req := name, req
		t.Run(name, func(t *testing.T) {
			base, err := Run(req)
			if err != nil {
				t.Fatal(err)
			}
			var label string
			var events []trace.Event
			sunk := req
			sunk.PhaseSink = func(l string, evs []trace.Event) { label, events = l, evs }
			res, err := Run(sunk)
			if err != nil {
				t.Fatal(err)
			}
			if res.Time != base.Time || res.Energy != base.Energy ||
				res.MeasuredEnergy != base.MeasuredEnergy || res.Comm != base.Comm {
				t.Fatalf("PhaseSink perturbed %s:\n got  %+v\n want %+v", name, res, base)
			}
			if label == "" || len(events) == 0 {
				t.Fatalf("sink received label %q with %d events, want a labelled non-empty timeline", label, len(events))
			}
			// The sink forces the recorder on, but the result-side trace
			// stays gated on req.Trace: sampling a request must not change
			// what an API caller gets back.
			if len(res.Trace) != 0 {
				t.Errorf("PhaseSink without Trace populated Result.Trace (%d events)", len(res.Trace))
			}
			// With Trace also set, the sink and the result see the same
			// timeline.
			both := sunk
			both.Trace = true
			res2, err := Run(both)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Time != base.Time {
				t.Fatalf("PhaseSink+Trace perturbed %s", name)
			}
			if len(res2.Trace) != len(events) {
				t.Errorf("sink saw %d events, Result.Trace has %d", len(events), len(res2.Trace))
			}
			for i := range res2.Trace {
				if res2.Trace[i] != events[i] {
					t.Fatalf("event %d differs between sink and Result.Trace", i)
				}
			}
		})
	}
}
