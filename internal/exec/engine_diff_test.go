package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"hybridperf/internal/machine"
	"hybridperf/internal/workload"
)

// TestEngineDifferential is the cross-engine property test: randomized
// (profile, program, nodes, cores, frequency, seed) configurations must
// produce byte-identical results on the goroutine and sequential engines —
// times, energies, communication profile, per-node totals, traces and the
// shared engine counters. The generator is seeded, so failures reproduce;
// CI's race leg runs this too, putting the goroutine side under -race.
func TestEngineDifferential(t *testing.T) {
	profs := []*machine.Profile{machine.XeonE5(), machine.ARMCortexA9(), xeonCrossbar()}
	specs := append(workload.Extended(), imbalancedSpec())
	rnd := rand.New(rand.NewSource(20260808))
	cases := 24
	if testing.Short() {
		cases = 6
	}
	for i := 0; i < cases; i++ {
		prof := profs[rnd.Intn(len(profs))]
		spec := specs[rnd.Intn(len(specs))]
		n := 1 + rnd.Intn(4)
		c := 1 + rnd.Intn(prof.CoresPerNode)
		if c > 4 {
			c = 4
		}
		f := prof.Frequencies[rnd.Intn(len(prof.Frequencies))]
		req := Request{
			Prof:  prof,
			Spec:  spec,
			Class: workload.ClassTest,
			Cfg:   machine.Config{Nodes: n, Cores: c, Freq: f},
			Seed:  rnd.Int63(),
			Trace: true, Metrics: true,
		}
		name := fmt.Sprintf("%02d-%s-%s-%dx%d-%.1fGHz", i, prof.Name, spec.Name, n, c, f/1e9)
		t.Run(name, func(t *testing.T) {
			gor := req
			gor.Engine = EngineGoroutine
			resG, err := Run(gor)
			if err != nil {
				t.Fatal(err)
			}
			seq := req
			seq.Engine = EngineSequential
			resS, err := Run(seq)
			if err != nil {
				t.Fatal(err)
			}
			if resS.Time != resG.Time {
				t.Errorf("Time diverged: %x vs %x", resS.Time, resG.Time)
			}
			if resS.Energy != resG.Energy {
				t.Errorf("Energy diverged: %+v vs %+v", resS.Energy, resG.Energy)
			}
			if resS.MeasuredEnergy != resG.MeasuredEnergy || resS.MeasuredUCR != resG.MeasuredUCR {
				t.Errorf("measured energy diverged: (%x,%x) vs (%x,%x)",
					resS.MeasuredEnergy, resS.MeasuredUCR, resG.MeasuredEnergy, resG.MeasuredUCR)
			}
			if resS.Comm != resG.Comm {
				t.Errorf("communication profile diverged:\n got  %+v\n want %+v", resS.Comm, resG.Comm)
			}
			if resS.Totals != resG.Totals || resS.MemWait != resG.MemWait {
				t.Errorf("counter totals diverged:\n got  %+v mem %x\n want %+v mem %x",
					resS.Totals, resS.MemWait, resG.Totals, resG.MemWait)
			}
			if resS.Engine.Events != resG.Engine.Events || resS.Engine.Procs != resG.Engine.Procs {
				t.Errorf("engine stats diverged: %+v vs %+v", resS.Engine, resG.Engine)
			}
			if len(resS.Trace) != len(resG.Trace) {
				t.Fatalf("trace lengths diverged: %d vs %d", len(resS.Trace), len(resG.Trace))
			}
			for j := range resG.Trace {
				if resS.Trace[j] != resG.Trace[j] {
					t.Fatalf("trace event %d diverged:\n got  %+v\n want %+v",
						j, resS.Trace[j], resG.Trace[j])
				}
			}
			mg, ms := resG.Metrics.Engine, resS.Metrics.Engine
			if ms.Events != mg.Events || ms.Lookaheads != mg.Lookaheads ||
				ms.Regions != mg.Regions || ms.Messages != mg.Messages ||
				ms.PoolHits != mg.PoolHits || ms.PoolSpawns != mg.PoolSpawns ||
				ms.HeapHighWater != mg.HeapHighWater || ms.MsgBytes != mg.MsgBytes ||
				ms.SelfDispatches != mg.SelfDispatches {
				t.Errorf("engine counters diverged:\n got  %+v\n want %+v", ms, mg)
			}
		})
	}
}
