package exec

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"hybridperf/internal/des"
	"hybridperf/internal/machine"
	"hybridperf/internal/workload"
)

// TestRunPreCancelledContext: a request whose context is already dead
// fails before the kernel is even built.
func TestRunPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := xeonReq(machine.Config{Nodes: 2, Cores: 2, Freq: 1.8e9})
	req.Ctx = ctx
	_, err := Run(req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
}

// TestRunCancelledMidSimulation cancels from inside the simulation via
// the runSpec seam: rank 0 cancels after a few steps and then keeps
// computing, so the kernel's cooperative poll has to stop the run.
func TestRunCancelledMidSimulation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := xeonReq(machine.Config{Nodes: 2, Cores: 2, Freq: 1.8e9})
	req.Ctx = ctx
	steps := 0
	req.runSpec = func(p *des.Proc, env *workload.Env) error {
		for i := 0; i < 100000; i++ {
			if env.Rank.ID() == 0 && i == 5 {
				cancel()
			}
			p.Advance(1e-6)
			if env.Rank.ID() == 0 {
				steps++
			}
		}
		return nil
	}
	_, err := Run(req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if steps >= 100000 {
		t.Fatal("rank 0 completed every step despite cancelling at step 5")
	}
}

// TestRunUncancelledContextIdentical: a live but never-cancelled context
// must leave the measurement bit-identical to a context-free run.
func TestRunUncancelledContextIdentical(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := xeonReq(machine.Config{Nodes: 2, Cores: 4, Freq: 1.8e9})
	bare, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	req.Ctx = ctx
	withCtx, err := Run(req)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Time != withCtx.Time || bare.MeasuredEnergy != withCtx.MeasuredEnergy {
		t.Fatalf("context-bearing run diverged: T %g vs %g, E %g vs %g",
			withCtx.Time, bare.Time, withCtx.MeasuredEnergy, bare.MeasuredEnergy)
	}
	if bare.Totals != withCtx.Totals {
		t.Fatal("counters differ with a context attached")
	}
	if bare.Engine.Events != withCtx.Engine.Events {
		t.Fatalf("event counts differ: %d vs %d", withCtx.Engine.Events, bare.Engine.Events)
	}
}

// TestRunAggregatesRankErrors: every failing rank must appear in the
// returned error, not just the first one observed.
func TestRunAggregatesRankErrors(t *testing.T) {
	sentinel := errors.New("rank blew up")
	req := xeonReq(machine.Config{Nodes: 4, Cores: 1, Freq: 1.8e9})
	req.runSpec = func(p *des.Proc, env *workload.Env) error {
		p.Advance(1e-6)
		if env.Rank.ID()%2 == 1 {
			return fmt.Errorf("rank %d: %w", env.Rank.ID(), sentinel)
		}
		return nil
	}
	_, err := Run(req)
	if err == nil {
		t.Fatal("Run swallowed rank failures")
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is lost the cause through the join: %v", err)
	}
	for _, want := range []string{"rank 1", "rank 3"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("aggregated error %q is missing %q", err, want)
		}
	}
	if strings.Contains(err.Error(), "rank 0") || strings.Contains(err.Error(), "rank 2") {
		t.Fatalf("aggregated error %q names a healthy rank", err)
	}
}

// TestSweepCancelledRequests: cancelling the shared context fails the
// whole sweep — queued requests stop at their upfront check.
func TestSweepCancelledRequests(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var reqs []Request
	for i := 0; i < 6; i++ {
		r := xeonReq(machine.Config{Nodes: 1, Cores: 1, Freq: 1.8e9})
		r.Seed = int64(i)
		r.Ctx = ctx
		reqs = append(reqs, r)
	}
	_, err := Sweep(reqs, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sweep() = %v, want context.Canceled", err)
	}
}
