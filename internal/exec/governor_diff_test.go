package exec

import (
	"testing"

	"hybridperf/internal/dvfs"
	"hybridperf/internal/machine"
)

// governorFactories builds one per-rank governor factory per policy for a
// run starting at cfg.Freq on prof's level grid. The phase-predictive
// governor starts unseeded here — pure online learning — so the test also
// exercises the ObservePhases hook in both engines.
func governorFactories(t *testing.T, prof *machine.Profile, cfg machine.Config) map[string]func(int) dvfs.Governor {
	t.Helper()
	var levels []float64
	for _, f := range prof.Frequencies {
		if f <= cfg.Freq {
			levels = append(levels, f)
		}
	}
	return map[string]func(int) dvfs.Governor{
		dvfs.PolicyFixed: func(int) dvfs.Governor { return dvfs.Fixed(cfg.Freq) },
		dvfs.PolicySlack: func(int) dvfs.Governor {
			g, err := dvfs.NewInterNodeSlack(levels, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		dvfs.PolicyPhase: func(int) dvfs.Governor {
			g, err := dvfs.NewPhasePredictive(levels, 0, dvfs.PhaseSample{}, 0.05)
			if err != nil {
				t.Fatal(err)
			}
			return g
		},
		// The schedule recorder must be transparent: wrapping the slack
		// governor keeps the run on the same trajectory as "slack" above.
		"slack-recorded": func(int) dvfs.Governor {
			g, err := dvfs.NewInterNodeSlack(levels, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			return &dvfs.ScheduleRecorder{G: g}
		},
	}
}

// TestGovernorEngineDifferential mirrors TestEngineDifferential for the
// governed paths: every governor policy, on every pinned golden
// configuration, must be bit-for-bit identical between the goroutine and
// sequential engines — times, energies, communication profile, counter
// totals and traces.
func TestGovernorEngineDifferential(t *testing.T) {
	for name, req := range goldenCases() {
		for policy, factory := range governorFactories(t, req.Prof, req.Cfg) {
			req := req
			req.Governor = factory
			req.Trace = true
			req.Metrics = true
			t.Run(name+"/"+policy, func(t *testing.T) {
				gor := req
				gor.Engine = EngineGoroutine
				resG, err := Run(gor)
				if err != nil {
					t.Fatal(err)
				}
				seq := req
				seq.Engine = EngineSequential
				resS, err := Run(seq)
				if err != nil {
					t.Fatal(err)
				}
				if resS.Time != resG.Time {
					t.Errorf("Time diverged: %x vs %x", resS.Time, resG.Time)
				}
				if resS.Energy != resG.Energy {
					t.Errorf("Energy diverged: %+v vs %+v", resS.Energy, resG.Energy)
				}
				if resS.MeasuredEnergy != resG.MeasuredEnergy || resS.MeasuredUCR != resG.MeasuredUCR {
					t.Errorf("measured energy diverged: (%x,%x) vs (%x,%x)",
						resS.MeasuredEnergy, resS.MeasuredUCR, resG.MeasuredEnergy, resG.MeasuredUCR)
				}
				if resS.Comm != resG.Comm {
					t.Errorf("communication profile diverged:\n got  %+v\n want %+v", resS.Comm, resG.Comm)
				}
				if resS.Totals != resG.Totals || resS.MemWait != resG.MemWait {
					t.Errorf("counter totals diverged:\n got  %+v mem %x\n want %+v mem %x",
						resS.Totals, resS.MemWait, resG.Totals, resG.MemWait)
				}
				if len(resS.Trace) != len(resG.Trace) {
					t.Fatalf("trace lengths diverged: %d vs %d", len(resS.Trace), len(resG.Trace))
				}
				for j := range resG.Trace {
					if resS.Trace[j] != resG.Trace[j] {
						t.Fatalf("trace event %d diverged:\n got  %+v\n want %+v",
							j, resS.Trace[j], resG.Trace[j])
					}
				}
				mg, ms := resG.Metrics.Engine, resS.Metrics.Engine
				if ms.Events != mg.Events || ms.Lookaheads != mg.Lookaheads ||
					ms.Regions != mg.Regions || ms.Messages != mg.Messages ||
					ms.HeapHighWater != mg.HeapHighWater || ms.MsgBytes != mg.MsgBytes {
					t.Errorf("engine counters diverged:\n got  %+v\n want %+v", ms, mg)
				}
				// A Fixed governor at the starting frequency is the static
				// oracle: bit-identical to the ungoverned run.
				if policy == dvfs.PolicyFixed {
					plain := req
					plain.Governor = nil
					plain.Engine = EngineGoroutine
					resP, err := Run(plain)
					if err != nil {
						t.Fatal(err)
					}
					if resG.Time != resP.Time || resG.Energy != resP.Energy ||
						resG.MeasuredEnergy != resP.MeasuredEnergy || resG.Comm != resP.Comm {
						t.Errorf("fixed governor perturbed the ungoverned run:\n got  %+v\n want %+v",
							resG, resP)
					}
				}
			})
		}
	}
}
