package exec

import (
	"testing"

	"hybridperf/internal/machine"
	"hybridperf/internal/workload"
)

// BenchmarkRun measures one validation-size direct measurement (SP at the
// characterisation class on the largest validation configuration) — the
// unit of work every experiment artifact and sweep repeats thousands of
// times. ns/op and allocs/op for this fixture are the headline numbers
// recorded in BENCH_2.json.
func BenchmarkRun(b *testing.B) {
	req := Request{
		Prof:  machine.XeonE5(),
		Spec:  workload.SP(),
		Class: workload.ClassS,
		Cfg:   machine.Config{Nodes: 8, Cores: 8, Freq: 1.8e9},
		Seed:  1,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep measures a small validation sweep (one point per node
// count) through the concurrent sweep engine with 8 workers.
func BenchmarkSweep(b *testing.B) {
	var reqs []Request
	for _, nodes := range []int{1, 2, 4, 8} {
		reqs = append(reqs, Request{
			Prof:  machine.XeonE5(),
			Spec:  workload.SP(),
			Class: workload.ClassS,
			Cfg:   machine.Config{Nodes: nodes, Cores: 8, Freq: 1.8e9},
			Seed:  int64(nodes),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(reqs, 8); err != nil {
			b.Fatal(err)
		}
	}
}
