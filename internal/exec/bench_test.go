package exec

import (
	"testing"

	"hybridperf/internal/dvfs"
	"hybridperf/internal/machine"
	"hybridperf/internal/workload"
)

// BenchmarkRun measures one validation-size direct measurement (SP at the
// characterisation class on the largest validation configuration) — the
// unit of work every experiment artifact and sweep repeats thousands of
// times. ns/op and allocs/op for this fixture are the headline numbers
// recorded in BENCH_3.json, per engine.
func BenchmarkRun(b *testing.B) { benchmarkRun(b, EngineGoroutine) }

// BenchmarkRunSequential is BenchmarkRun on the goroutine-free sequential
// engine: identical results, no channel handoff per event.
func BenchmarkRunSequential(b *testing.B) { benchmarkRun(b, EngineSequential) }

func benchmarkRun(b *testing.B, engine string) {
	req := Request{
		Prof:   machine.XeonE5(),
		Spec:   workload.SP(),
		Class:  workload.ClassS,
		Cfg:    machine.Config{Nodes: 8, Cores: 8, Freq: 1.8e9},
		Seed:   1,
		Engine: engine,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunGoverned is the BenchmarkRun fixture under the
// phase-predictive DVFS governor with rank 0's schedule recorded — the
// per-iteration unit of work behind every /v1/advise policy evaluation.
// The gap to BenchmarkRun is the all-in price of the governed path:
// the ObservePhases counter-delta hook, the EWMA frequency decision and
// the transition recording. Gated in CI against BENCH_5.json.
func BenchmarkRunGoverned(b *testing.B) {
	prof := machine.XeonE5()
	cfg := machine.Config{Nodes: 8, Cores: 8, Freq: 1.8e9}
	var levels []float64
	for _, f := range prof.Frequencies {
		if f <= cfg.Freq {
			levels = append(levels, f)
		}
	}
	req := Request{
		Prof:   prof,
		Spec:   workload.SP(),
		Class:  workload.ClassS,
		Cfg:    cfg,
		Seed:   1,
		Engine: EngineSequential,
		Governor: func(rank int) dvfs.Governor {
			g, err := dvfs.NewPhasePredictive(levels, 0, dvfs.PhaseSample{}, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			if rank == 0 {
				return &dvfs.ScheduleRecorder{G: g}
			}
			return g
		},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweep measures a small validation sweep (one point per node
// count) through the concurrent sweep engine with 8 workers.
func BenchmarkSweep(b *testing.B) { benchmarkSweep(b, EngineGoroutine) }

// BenchmarkSweepSequential runs the same sweep with each point simulated
// on the sequential engine (the sweep workers stay concurrent).
func BenchmarkSweepSequential(b *testing.B) { benchmarkSweep(b, EngineSequential) }

func benchmarkSweep(b *testing.B, engine string) {
	var reqs []Request
	for _, nodes := range []int{1, 2, 4, 8} {
		reqs = append(reqs, Request{
			Prof:   machine.XeonE5(),
			Spec:   workload.SP(),
			Class:  workload.ClassS,
			Cfg:    machine.Config{Nodes: nodes, Cores: 8, Freq: 1.8e9},
			Seed:   int64(nodes),
			Engine: engine,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Sweep(reqs, 8); err != nil {
			b.Fatal(err)
		}
	}
}
