package simnet

import (
	"fmt"

	"hybridperf/internal/des"
)

// This file is the sequential-engine form of Transfer for both network
// models: the same acquisition order, advances and statistics as the
// goroutine forms, decomposed into a resumable op, so transfers are
// bit-for-bit identical on either engine.

// TransferOp is the continuation state of one in-flight Transfer.
type TransferOp struct {
	pc       int8
	src, dst int
	bytes    float64
	service  float64
	enq      float64
	start    float64
	wait     float64
}

// Set arms the op for one transfer from node src to node dst.
func (op *TransferOp) Set(src, dst int, bytes float64) {
	op.src, op.dst, op.bytes = src, dst, bytes
}

// TransferStep implements Network: the single shared server, acquired,
// held for the service time and released — Switch.Transfer in steps.
func (s *Switch) TransferStep(op *TransferOp, p *des.Proc) bool {
	switch op.pc {
	case 0:
		op.service = s.prof.MsgServiceTime(op.bytes)
		op.enq = p.Now()
		op.pc = 1
		if !s.res.AcquireArm(p) {
			return false
		}
		fallthrough
	case 1:
		s.res.AcquireDone(op.enq)
		op.pc = 2
		if !p.AdvanceArm(op.service) {
			return false
		}
		fallthrough
	case 2:
		s.res.ServeDone(op.service)
		op.pc = 0
		return true
	}
	panic("simnet: bad TransferOp state")
}

// TransferStep implements Network: egress then ingress port acquisition,
// cut-through service, reverse release — Crossbar.Transfer in steps.
func (x *Crossbar) TransferStep(op *TransferOp, p *des.Proc) bool {
	switch op.pc {
	case 0:
		if op.src < 0 || op.src >= len(x.egress) || op.dst < 0 || op.dst >= len(x.ingress) {
			panic(fmt.Sprintf("simnet: crossbar transfer %d->%d outside %d ports", op.src, op.dst, len(x.egress)))
		}
		op.service = x.prof.MsgServiceTime(op.bytes)
		op.start = p.Now()
		op.enq = p.Now()
		op.pc = 1
		if !x.egress[op.src].AcquireArm(p) {
			return false
		}
		fallthrough
	case 1:
		x.egress[op.src].AcquireDone(op.enq)
		op.enq = p.Now()
		op.pc = 2
		if !x.ingress[op.dst].AcquireArm(p) {
			return false
		}
		fallthrough
	case 2:
		x.ingress[op.dst].AcquireDone(op.enq)
		op.wait = p.Now() - op.start
		op.pc = 3
		if !p.AdvanceArm(op.service) {
			return false
		}
		fallthrough
	case 3:
		x.ingress[op.dst].Release()
		x.egress[op.src].Release()
		x.served++
		x.totalWait += op.wait
		x.totalSvc += op.service
		op.pc = 0
		return true
	}
	panic("simnet: bad TransferOp state")
}
