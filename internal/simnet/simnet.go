// Package simnet simulates the cluster interconnect. Two models are
// provided:
//
//   - Switch: a single FCFS server shared by all traffic — the star-
//     topology/shared-medium M/G/1 abstraction the paper's Eq. (5)
//     assumes, and the default for the paper's validation clusters.
//   - Crossbar: per-node ingress and egress ports with a non-blocking
//     backplane — transfers between disjoint port pairs proceed in
//     parallel, contention arises from incast (shared destination) and
//     send serialisation (shared source), as in a modern Ethernet switch.
//
// In both, the per-message service time is a fixed protocol overhead plus
// wire time at a size-dependent effective bandwidth (the saturating curve
// NetPIPE measures in Figure 3).
package simnet

import (
	"fmt"

	"hybridperf/internal/des"
	"hybridperf/internal/machine"
)

// Network is the interconnect abstraction the MPI runtime sends through.
type Network interface {
	// Transfer moves one message from node src to node dst on behalf of
	// process p, blocking p for queueing plus service; it returns the
	// queueing delay and the service time.
	Transfer(p *des.Proc, src, dst int, bytes float64) (wait, service float64)
	// TransferStep is Transfer in continuation form for the sequential
	// engine: op must have been armed with TransferOp.Set. False means the
	// transfer blocked (the calling Machine must yield and re-enter), true
	// means it completed with the op re-armed for the next Set.
	TransferStep(op *TransferOp, p *des.Proc) bool
	// ServiceTime exposes the uncontended service time for a message size.
	ServiceTime(bytes float64) float64
	// Stats aggregates the network's queueing statistics.
	Stats() des.ResourceStats
}

// New creates the interconnect matching the profile's topology for a
// cluster of n nodes.
func New(k *des.Kernel, prof *machine.Profile, n int) Network {
	if prof.Topology == machine.TopologyCrossbar {
		return NewCrossbar(k, prof, n)
	}
	return NewSwitch(k, prof)
}

// Switch is the shared-medium cluster switch (single FCFS server).
type Switch struct {
	prof *machine.Profile
	res  *des.Resource
}

// NewSwitch creates the shared switch for a cluster described by prof.
func NewSwitch(k *des.Kernel, prof *machine.Profile) *Switch {
	return &Switch{prof: prof, res: des.NewResource(k, "switch")}
}

// Transfer implements Network: every message serialises at the one server.
func (s *Switch) Transfer(p *des.Proc, _, _ int, bytes float64) (wait, service float64) {
	service = s.prof.MsgServiceTime(bytes)
	wait = s.res.Serve(p, service)
	return wait, service
}

// ServiceTime implements Network.
func (s *Switch) ServiceTime(bytes float64) float64 { return s.prof.MsgServiceTime(bytes) }

// Stats implements Network.
func (s *Switch) Stats() des.ResourceStats { return s.res.Stats() }

// Crossbar is a non-blocking switch with per-node ingress/egress ports.
// A transfer holds the source's egress port and the destination's ingress
// port for its cut-through service time (circuit model): disjoint pairs
// run concurrently, incast serialises at the destination and a sender's
// own messages serialise at its egress. Ports are always acquired egress
// first, so a port holder never waits on anything held by a waiter and
// the acquisition order is deadlock-free.
type Crossbar struct {
	prof    *machine.Profile
	egress  []*des.Resource
	ingress []*des.Resource

	served    int64
	totalWait float64
	totalSvc  float64
}

// NewCrossbar creates the crossbar interconnect for n nodes.
func NewCrossbar(k *des.Kernel, prof *machine.Profile, n int) *Crossbar {
	x := &Crossbar{prof: prof}
	for i := 0; i < n; i++ {
		x.egress = append(x.egress, des.NewResource(k, fmt.Sprintf("egress[%d]", i)))
		x.ingress = append(x.ingress, des.NewResource(k, fmt.Sprintf("ingress[%d]", i)))
	}
	return x
}

// Transfer implements Network.
func (x *Crossbar) Transfer(p *des.Proc, src, dst int, bytes float64) (wait, service float64) {
	if src < 0 || src >= len(x.egress) || dst < 0 || dst >= len(x.ingress) {
		panic(fmt.Sprintf("simnet: crossbar transfer %d->%d outside %d ports", src, dst, len(x.egress)))
	}
	service = x.prof.MsgServiceTime(bytes)
	start := p.Now()
	x.egress[src].Acquire(p)
	x.ingress[dst].Acquire(p)
	wait = p.Now() - start
	p.Advance(service)
	x.ingress[dst].Release()
	x.egress[src].Release()
	x.served++
	x.totalWait += wait
	x.totalSvc += service
	return wait, service
}

// ServiceTime implements Network.
func (x *Crossbar) ServiceTime(bytes float64) float64 { return x.prof.MsgServiceTime(bytes) }

// Stats implements Network: served/wait/service aggregate over all
// transfers; Utilization reports the mean ingress-port utilisation (the
// contention-relevant stage).
func (x *Crossbar) Stats() des.ResourceStats {
	s := des.ResourceStats{
		Served:       x.served,
		TotalWait:    x.totalWait,
		TotalService: x.totalSvc,
	}
	if x.served > 0 {
		s.MeanWait = x.totalWait / float64(x.served)
		s.MeanService = x.totalSvc / float64(x.served)
	}
	var u float64
	for _, r := range x.ingress {
		u += r.Stats().Utilization
	}
	if len(x.ingress) > 0 {
		s.Utilization = u / float64(len(x.ingress))
	}
	return s
}
