package simnet

import (
	"math"
	"testing"

	"hybridperf/internal/des"
	"hybridperf/internal/machine"
)

func TestTransferServiceMatchesProfile(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	sw := NewSwitch(k, prof)
	var wait, service float64
	k.Spawn("m", func(p *des.Proc) {
		wait, service = sw.Transfer(p, 0, 1, 1<<20)
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if wait != 0 {
		t.Fatalf("uncontended wait = %g", wait)
	}
	want := prof.MsgServiceTime(1 << 20)
	if math.Abs(service-want) > 1e-12 {
		t.Fatalf("service = %g, want %g", service, want)
	}
	if math.Abs(k.Now()-want) > 1e-12 {
		t.Fatalf("elapsed = %g, want %g", k.Now(), want)
	}
	if got := sw.ServiceTime(1 << 20); got != want {
		t.Fatalf("ServiceTime = %g, want %g", got, want)
	}
}

func TestSwitchContention(t *testing.T) {
	prof := machine.ARMCortexA9()
	k := des.NewKernel()
	sw := NewSwitch(k, prof)
	const n = 4
	waits := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("m", func(p *des.Proc) {
			waits[i], _ = sw.Transfer(p, i, 0, 1<<20)
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	svc := prof.MsgServiceTime(1 << 20)
	for i, w := range waits {
		want := float64(i) * svc
		if math.Abs(w-want) > 1e-9 {
			t.Fatalf("message %d wait = %g, want %g (FCFS serialization)", i, w, want)
		}
	}
	s := sw.Stats()
	if s.Served != n {
		t.Fatalf("served = %d", s.Served)
	}
	if math.Abs(s.Utilization-1) > 1e-9 {
		t.Fatalf("switch utilization = %g, want 1 under saturation", s.Utilization)
	}
}

func TestSmallVsLargeMessageEfficiency(t *testing.T) {
	// Per-byte cost should be much higher for tiny messages (overhead-
	// dominated), matching the Figure 3 throughput curve.
	prof := machine.ARMCortexA9()
	k := des.NewKernel()
	sw := NewSwitch(k, prof)
	perByteSmall := sw.ServiceTime(64) / 64
	perByteLarge := sw.ServiceTime(4<<20) / (4 << 20)
	if perByteSmall < perByteLarge*10 {
		t.Fatalf("small-message per-byte cost %g not dominated by overhead (large %g)", perByteSmall, perByteLarge)
	}
	_ = k
}

func TestCrossbarDisjointPairsParallel(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	x := NewCrossbar(k, prof, 4)
	done := make([]float64, 2)
	k.Spawn("a", func(p *des.Proc) {
		x.Transfer(p, 0, 1, 1<<20)
		done[0] = p.Now()
	})
	k.Spawn("b", func(p *des.Proc) {
		x.Transfer(p, 2, 3, 1<<20)
		done[1] = p.Now()
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	svc := prof.MsgServiceTime(1 << 20)
	for i, d := range done {
		if math.Abs(d-svc) > 1e-12 {
			t.Fatalf("transfer %d finished at %g, want %g (parallel pairs)", i, d, svc)
		}
	}
}

func TestCrossbarIncastSerializes(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	const n = 5
	x := NewCrossbar(k, prof, n)
	var last float64
	for i := 1; i < n; i++ {
		i := i
		k.Spawn("s", func(p *des.Proc) {
			x.Transfer(p, i, 0, 1<<20)
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	svc := prof.MsgServiceTime(1 << 20)
	want := float64(n-1) * svc
	if math.Abs(last-want)/want > 1e-9 {
		t.Fatalf("incast completed at %g, want %g (destination port serialises)", last, want)
	}
}

func TestCrossbarSenderSerializes(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	x := NewCrossbar(k, prof, 4)
	var last float64
	for i := 1; i < 4; i++ {
		i := i
		k.Spawn("m", func(p *des.Proc) {
			x.Transfer(p, 0, i, 1<<20) // one source, distinct destinations
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	svc := prof.MsgServiceTime(1 << 20)
	if math.Abs(last-3*svc)/(3*svc) > 1e-9 {
		t.Fatalf("one-to-many completed at %g, want %g (egress serialises)", last, 3*svc)
	}
}

func TestCrossbarStats(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	x := NewCrossbar(k, prof, 2)
	k.Spawn("m", func(p *des.Proc) {
		x.Transfer(p, 0, 1, 1<<20)
		x.Transfer(p, 0, 1, 1<<20)
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	s := x.Stats()
	if s.Served != 2 {
		t.Fatalf("served %d", s.Served)
	}
	if s.MeanWait != 0 {
		t.Fatalf("sequential transfers from one proc should not wait: %g", s.MeanWait)
	}
	if got := x.ServiceTime(1 << 20); got != prof.MsgServiceTime(1<<20) {
		t.Fatalf("ServiceTime = %g", got)
	}
}

func TestCrossbarInvalidPortPanics(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	x := NewCrossbar(k, prof, 2)
	k.Spawn("m", func(p *des.Proc) { x.Transfer(p, 0, 7, 8) })
	if err := k.Run(math.Inf(1)); err == nil {
		t.Fatal("out-of-range port accepted")
	}
}

func TestNewSelectsTopology(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	if _, ok := New(k, prof, 4).(*Switch); !ok {
		t.Fatal("default topology should be the shared switch")
	}
	prof.Topology = machine.TopologyCrossbar
	if _, ok := New(k, prof, 4).(*Crossbar); !ok {
		t.Fatal("crossbar topology not honoured")
	}
}
