// Package mpip distils a run's raw MPI accounting into the communication
// characteristics the paper extracts with the mpiP profiler (Sec. III.E.1):
// the number of messages per process (η), the volume per message (ν) and
// the fraction of runtime blocked in MPI.
package mpip

import (
	"fmt"

	"hybridperf/internal/mpi"
)

// Report is the per-program communication profile.
type Report struct {
	Ranks              int
	Iters              int
	MsgsPerRank        float64 // η over the whole run
	MsgsPerRankPerIter float64 // η per iteration
	BytesPerMsg        float64 // ν [B]
	TotalBytes         float64 // cluster-wide volume [B]
	MPITimeFrac        float64 // mean fraction of runtime blocked in MPI
}

// FromRun builds a report from a run's MPI profile, its iteration count
// and wall-clock time.
func FromRun(p mpi.Profile, iters int, runtime float64) (Report, error) {
	if iters < 1 {
		return Report{}, fmt.Errorf("mpip: iters must be >= 1")
	}
	r := Report{
		Ranks:       p.Ranks,
		Iters:       iters,
		MsgsPerRank: p.MsgsPerRank,
		BytesPerMsg: p.BytesPerMsg,
		TotalBytes:  p.TotalBytes,
	}
	r.MsgsPerRankPerIter = p.MsgsPerRank / float64(iters)
	if runtime > 0 {
		r.MPITimeFrac = p.MeanWaitTime / runtime
	}
	return r, nil
}

// String renders the report in mpiP's concise summary style.
func (r Report) String() string {
	return fmt.Sprintf("mpiP: ranks=%d msgs/rank=%.0f (%.2f/iter) bytes/msg=%.0f total=%.3g MB mpi-time=%.1f%%",
		r.Ranks, r.MsgsPerRank, r.MsgsPerRankPerIter, r.BytesPerMsg, r.TotalBytes/1e6, r.MPITimeFrac*100)
}
