package mpip

import (
	"math"
	"strings"
	"testing"

	"hybridperf/internal/mpi"
)

func TestFromRun(t *testing.T) {
	p := mpi.Profile{
		Ranks:        4,
		TotalMsgs:    800,
		TotalBytes:   8e6,
		MsgsPerRank:  200,
		BytesPerMsg:  1e4,
		MeanWaitTime: 5,
	}
	r, err := FromRun(p, 50, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.MsgsPerRankPerIter != 4 {
		t.Errorf("eta/iter = %g, want 4", r.MsgsPerRankPerIter)
	}
	if math.Abs(r.MPITimeFrac-0.05) > 1e-12 {
		t.Errorf("MPI time fraction = %g, want 0.05", r.MPITimeFrac)
	}
	if r.BytesPerMsg != 1e4 {
		t.Errorf("nu = %g", r.BytesPerMsg)
	}
	s := r.String()
	for _, want := range []string{"ranks=4", "msgs/rank=200", "bytes/msg=10000"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestFromRunValidation(t *testing.T) {
	if _, err := FromRun(mpi.Profile{}, 0, 1); err == nil {
		t.Fatal("zero iterations accepted")
	}
	// Zero runtime: fraction stays 0 rather than dividing by zero.
	r, err := FromRun(mpi.Profile{Ranks: 1}, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.MPITimeFrac != 0 {
		t.Fatalf("MPITimeFrac = %g with zero runtime", r.MPITimeFrac)
	}
}
