package workload

import (
	"math"

	"hybridperf/internal/des"
	"hybridperf/internal/dvfs"
	"hybridperf/internal/mpi"
	"hybridperf/internal/node"
	"hybridperf/internal/omp"
)

// This file compiles a Spec into the continuation form the sequential
// engine runs: runM is Spec.Run as an explicit state machine, bodyM the
// parallel-region body. Every derivation and every simulation call happens
// in the same order at the same virtual time as the goroutine form, so
// programs are bit-for-bit identical on either engine.

// runM states: the phases of one iteration of the hybrid loop.
const (
	rsRegion int8 = iota // open the parallel region
	rsBody               // master's share of the region body
	rsJoin               // armed wait for worker stragglers
	rsAllreduce
	rsAlltoall
	rsHalo
	rsBarrier
)

// bodyM states: the burst loop inside a region.
const (
	bsCompute int8 = iota
	bsMem
	bsExtra
)

// runM is one rank's program as a des.Machine.
type runM struct {
	spec *Spec
	env  *Env

	// Per-run structure, derived once (identically to Run).
	iters        int
	n            int
	nd           *node.Node
	bursts       int
	overlapBurst int
	segWork      float64
	segBytes     float64
	extraWork    float64

	started      bool
	it           int
	pc           int8
	haloExpected int
	iterStart    float64
	lastNetWait  float64
	lastCompute  float64
	lastMemStall float64

	body   bodyM // the master thread's region body (tid 0)
	mkBody func(tid int) omp.SeqBody
	th     *omp.Thread

	ar  mpi.AllreduceOp
	a2a mpi.AlltoallOp
	wc  mpi.WaitCountOp
	bar mpi.AllreduceOp
}

// bodyM is the parallel-region body in continuation form, shared by the
// master (driven from runM) and the workers (driven by the omp pool). It
// self-resets on completion for the next region.
type bodyM struct {
	r    *runM
	b    int
	pc   int8
	comp node.ComputeOp
	mem  node.MemOp
}

// Machine compiles the program into a des.Machine for env's rank on the
// sequential engine — the continuation counterpart of Run. Errors are
// structural (unknown class) and detected before simulation starts.
func (s *Spec) Machine(env *Env) (des.Machine, error) {
	iters, err := s.Iterations(env.Class)
	if err != nil {
		return nil, err
	}
	nd := env.Team.Node()
	prof := nd.Profile()
	n := env.Rank.World().Size()
	c := env.Team.Size()

	perCoreWork := s.WorkPerIter / float64(n*c)
	if s.Imbalance > 0 && n > 1 {
		perCoreWork *= 1 + s.Imbalance*float64(env.Rank.ID())/float64(n-1)
	}
	traffic := perCoreWork * s.MemBytesPerWork * prof.MemTrafficFactor
	bursts := 1
	if traffic > 0 {
		bursts = int(math.Ceil(traffic / prof.MemBurstBytes))
		max := s.MaxBurstsPerIter
		if max <= 0 {
			max = 8
		}
		if bursts > max {
			bursts = max
		}
	}
	segWork := perCoreWork / float64(bursts)
	segBytes := traffic / float64(bursts)
	overlapBurst := int(s.OverlapPoint * float64(bursts))
	if overlapBurst >= bursts {
		overlapBurst = bursts - 1
	}
	extraWork := 0.0
	if s.SyncOverheadFrac > 0 && n > 1 {
		extraWork = s.SyncOverheadFrac * perCoreWork * math.Log2(float64(n)) * math.Log2(float64(n*c))
	}

	m := &runM{
		spec: s, env: env,
		iters: iters, n: n, nd: nd,
		bursts: bursts, overlapBurst: overlapBurst,
		segWork: segWork, segBytes: segBytes, extraWork: extraWork,
		ar:  mpi.AllreduceOp{Bytes: s.CollectiveBytes},
		a2a: mpi.AlltoallOp{Bytes: s.AlltoallVolume / float64(n)},
		bar: mpi.AllreduceOp{Bytes: 8},
	}
	m.body.r = m
	m.mkBody = func(tid int) omp.SeqBody { return &bodyM{r: m} }
	return m, nil
}

// Step implements des.Machine: the hybrid loop of Listing 1, one phase
// transition per resumption.
func (m *runM) Step(p *des.Proc) bool {
	if !m.started {
		m.started = true
		m.iterStart = p.Now()
	}
	for m.it < m.iters {
		switch m.pc {
		case rsRegion:
			m.th = m.env.Team.RegionBegin(p, m.mkBody)
			m.pc = rsBody
			fallthrough
		case rsBody:
			if !m.body.Step(m.th) {
				return false
			}
			m.pc = rsJoin
			if !m.env.Team.RegionJoinArm(p) {
				return false
			}
			fallthrough
		case rsJoin:
			m.pc = rsAllreduce
			fallthrough
		case rsAllreduce:
			if m.n > 1 && m.spec.CollectiveBytes > 0 {
				if !m.env.Rank.AllreduceStep(&m.ar, p) {
					return false
				}
			}
			m.pc = rsAlltoall
			fallthrough
		case rsAlltoall:
			if m.n > 1 && m.spec.AlltoallVolume > 0 {
				if !m.env.Rank.AlltoallStep(&m.a2a, p) {
					return false
				}
			}
			if m.n > 1 && m.spec.HaloMsgs > 0 {
				m.haloExpected += m.spec.HaloMsgs
				m.wc = mpi.WaitCountOp{Tag: mpi.TagHalo, Target: m.haloExpected}
			}
			m.pc = rsHalo
			fallthrough
		case rsHalo:
			if m.n > 1 && m.spec.HaloMsgs > 0 {
				if !m.env.Rank.WaitCountStep(&m.wc, p) {
					return false
				}
			}
			m.pc = rsBarrier
			fallthrough
		case rsBarrier:
			if m.n > 1 && m.spec.BarrierPerIter {
				if !m.env.Rank.AllreduceStep(&m.bar, p) {
					return false
				}
			}
			if g := m.env.Governor; g != nil {
				dur := p.Now() - m.iterStart
				netWait := m.nd.Ctrs[0].NetWaitTime
				if pa, ok := g.(dvfs.PhaseAware); ok {
					compute := m.nd.Ctrs[0].WorkTime + m.nd.Ctrs[0].BStallTime
					memStall := m.nd.Ctrs[0].MemStallTime
					pa.ObservePhases(m.it, dvfs.PhaseSample{
						Compute:  compute - m.lastCompute,
						MemStall: memStall - m.lastMemStall,
						NetWait:  netWait - m.lastNetWait,
					})
					m.lastCompute, m.lastMemStall = compute, memStall
				}
				frac := 0.0
				if dur > 0 {
					frac = (netWait - m.lastNetWait) / dur
				}
				if nf := g.AfterIteration(m.it, dur, frac, m.nd.Freq()); nf != m.nd.Freq() {
					m.nd.SetFreq(nf)
				}
				m.lastNetWait = netWait
				m.iterStart = p.Now()
			}
			m.it++
			m.pc = rsRegion
		}
	}
	return true
}

// Step implements omp.SeqBody: the burst loop of one region on one thread.
func (m *bodyM) Step(th *omp.Thread) bool {
	r := m.r
	for m.b < r.bursts {
		switch m.pc {
		case bsCompute:
			m.comp.Set(r.segWork, r.spec.BFrac)
			if !th.ComputeStep(&m.comp) {
				return false
			}
			if th.ID == 0 && r.n > 1 && m.b == r.overlapBurst {
				r.spec.postHalo(r.env.Rank, r.n)
			}
			m.mem.Set(r.segBytes)
			m.pc = bsMem
			fallthrough
		case bsMem:
			if !th.MemStep(&m.mem) {
				return false
			}
			m.b++
			m.pc = bsCompute
		}
	}
	if r.extraWork > 0 {
		if m.pc != bsExtra {
			m.comp.Set(r.extraWork, r.spec.BFrac)
			m.pc = bsExtra
		}
		if !th.ComputeStep(&m.comp) {
			return false
		}
	}
	m.b = 0
	m.pc = bsCompute
	return true
}
