// Package workload defines the hybrid parallel programs of the paper's
// evaluation as parameterised synthetic equivalents: the NPB multi-zone
// solvers LU, SP and BT, Quantum Espresso's Car-Parrinello (CP) and the
// OpenLB lattice-Boltzmann code (LB). Each program is S iterations of an
// OpenMP compute phase (work interleaved with DRAM bursts) followed by an
// MPI communication phase (halo exchange and/or allreduce), the structure
// of Listing 1 in the paper.
//
// The parameters — work per iteration, pipeline-stall fraction, memory
// traffic per work unit, message counts/volumes and their scaling with the
// node count — are the knobs through which each benchmark's published
// character (compute-bound CP, bandwidth-bound LB, halo-dominated solvers)
// is expressed. CP and LB additionally carry a synchronisation overhead
// that grows with the process count and is invisible to baseline
// (single-node) characterisation, reproducing the paper's reported model
// underestimation for those codes at high parallelism (Sec. IV.C).
package workload

import (
	"fmt"
	"math"
	"sort"

	"hybridperf/internal/des"
	"hybridperf/internal/dvfs"
	"hybridperf/internal/mpi"
	"hybridperf/internal/omp"
)

// Class selects the program input size. The analytical model assumes
// resource demands scale linearly with input size (paper Sec. III.C), so
// classes scale the iteration count S while per-iteration structure is
// fixed — the regime Figure 7 validates.
type Class string

const (
	ClassTest Class = "T" // tiny, for unit tests
	ClassS    Class = "S" // baseline characterisation size (Ps)
	ClassA    Class = "A" // validation size (P)
	ClassC    Class = "C" // scale-out size, 4x class A (Figure 7)
)

// Classes lists the input classes from smallest to largest.
func Classes() []Class { return []Class{ClassTest, ClassS, ClassA, ClassC} }

// classIterMultiplier maps a class to its iteration-count multiplier
// relative to the baseline class S.
func classIterMultiplier(c Class) (float64, error) {
	switch c {
	case ClassTest:
		return 0.1, nil
	case ClassS:
		return 1, nil
	case ClassA:
		return 4, nil
	case ClassC:
		return 16, nil
	}
	return 0, fmt.Errorf("workload: unknown class %q", c)
}

// Spec is the parametric description of one hybrid program.
type Spec struct {
	Name   string // short code: LU, SP, BT, CP, LB
	Suite  string // provenance, for Table 2 rendering
	Domain string
	Lang   string // the paper stresses language independence

	// Computation phase.
	WorkPerIter     float64 // abstract work units per iteration, whole domain
	BFrac           float64 // program share of non-memory pipeline stalls
	MemBytesPerWork float64 // DRAM traffic per work unit before cache factor
	BaseIters       int     // iterations S at class S

	// Communication phase (per rank, per iteration).
	HaloMsgs    int     // point-to-point halo messages
	HaloBytesN2 float64 // halo message volume at n=2 [B]
	HaloExp     float64 // halo volume scaling: bytes(n) = N2*(2/n)^exp

	CollectiveBytes float64 // allreduce volume per round [B]; 0 = none
	BarrierPerIter  bool    // explicit global barrier each iteration

	// AlltoallVolume is the per-rank volume of a personalised all-to-all
	// exchange per iteration [B] (0 = none): each rank sends 1/n of it to
	// every peer, the transpose step of spectral codes like NPB FT.
	AlltoallVolume float64

	// Model-invisible synchronisation overhead: extra work per core per
	// iteration = SyncOverheadFrac * perCoreWork * log2(n) * log2(n*c),
	// growing with both the process and thread counts. Zero for the
	// solvers, positive for CP and LB. Single-node baseline runs see none
	// of it, which is exactly why the model cannot.
	SyncOverheadFrac float64

	// Imbalance skews per-rank work: rank r executes
	// (1 + Imbalance*r/(n-1)) times the mean per-core work, so low ranks
	// finish early and idle at synchronisation points. Zero for the paper
	// benchmarks (balanced SPMD); positive values create the inter-node
	// slack that runtime DVFS governors reclaim (internal/dvfs).
	Imbalance float64

	// OverlapPoint is the fraction of an iteration's compute after which
	// the master posts its non-blocking halo sends, enabling the
	// computation/communication overlap the model's Eq. (6) credits.
	OverlapPoint float64

	// MaxBurstsPerIter bounds memory-access granularity per core per
	// iteration (simulation cost knob; queueing-invariant, see node docs).
	MaxBurstsPerIter int
}

// Validate checks spec consistency.
func (s *Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: empty name")
	case s.WorkPerIter <= 0:
		return fmt.Errorf("workload %s: WorkPerIter must be positive", s.Name)
	case s.BFrac < 0:
		return fmt.Errorf("workload %s: negative BFrac", s.Name)
	case s.MemBytesPerWork < 0:
		return fmt.Errorf("workload %s: negative MemBytesPerWork", s.Name)
	case s.BaseIters < 1:
		return fmt.Errorf("workload %s: BaseIters must be >= 1", s.Name)
	case s.HaloMsgs < 0 || s.HaloBytesN2 < 0 || s.CollectiveBytes < 0 || s.AlltoallVolume < 0:
		return fmt.Errorf("workload %s: negative communication parameter", s.Name)
	case s.OverlapPoint < 0 || s.OverlapPoint > 1:
		return fmt.Errorf("workload %s: OverlapPoint must be in [0,1]", s.Name)
	case s.Imbalance < 0:
		return fmt.Errorf("workload %s: negative Imbalance", s.Name)
	}
	return nil
}

// Iterations returns S for the given class.
func (s *Spec) Iterations(c Class) (int, error) {
	m, err := classIterMultiplier(c)
	if err != nil {
		return 0, err
	}
	it := int(math.Round(float64(s.BaseIters) * m))
	if it < 2 {
		it = 2
	}
	return it, nil
}

// HaloBytes returns the per-message halo volume for an n-node run: the
// per-node domain share shrinks with n, so the exchanged surface does too.
func (s *Spec) HaloBytes(n int) float64 {
	if n < 2 || s.HaloMsgs == 0 {
		return 0
	}
	return s.HaloBytesN2 * math.Pow(2/float64(n), s.HaloExp)
}

// MsgClass describes one class of messages a rank sends per iteration.
// Sync marks globally synchronised collective rounds (allreduce, barrier),
// whose switch drain lands on the critical path in full.
type MsgClass struct {
	Count int     // messages per rank per iteration
	Bytes float64 // volume per message [B]
	Sync  bool    // collective round (blocks all ranks)
}

// MsgClasses returns the per-iteration, per-rank message mix for an n-node
// run — the communication characteristics the model infers from l(=n)
// (paper Sec. III.E.1). Empty for single-node runs.
func (s *Spec) MsgClasses(n int) []MsgClass {
	if n < 2 {
		return nil
	}
	var out []MsgClass
	if s.HaloMsgs > 0 {
		out = append(out, MsgClass{Count: s.HaloMsgs, Bytes: s.HaloBytes(n)})
	}
	rounds := mpi.ReduceRounds(n)
	if s.CollectiveBytes > 0 {
		out = append(out, MsgClass{Count: rounds, Bytes: s.CollectiveBytes, Sync: true})
	}
	if s.AlltoallVolume > 0 {
		out = append(out, MsgClass{Count: n - 1, Bytes: s.AlltoallVolume / float64(n), Sync: true})
	}
	if s.BarrierPerIter {
		out = append(out, MsgClass{Count: rounds, Bytes: 8, Sync: true})
	}
	return out
}

// MsgsPerIter returns η per rank per iteration at n nodes.
func (s *Spec) MsgsPerIter(n int) int {
	total := 0
	for _, mc := range s.MsgClasses(n) {
		total += mc.Count
	}
	return total
}

// MeanMsgBytes returns ν, the mean message volume at n nodes.
func (s *Spec) MeanMsgBytes(n int) float64 {
	var msgs int
	var bytes float64
	for _, mc := range s.MsgClasses(n) {
		msgs += mc.Count
		bytes += float64(mc.Count) * mc.Bytes
	}
	if msgs == 0 {
		return 0
	}
	return bytes / float64(msgs)
}

// Env is the per-rank execution environment a program runs in.
type Env struct {
	Rank  *mpi.Rank
	Team  *omp.Team
	Class Class

	// Phase timelines are recorded at the engine level — attach a
	// trace.Recorder to the node (Node.SetTrace) and every compute burst,
	// memory stall and network wait of the rank's master thread is
	// captured, finer-grained than program-level regions and identical for
	// every program.

	// Governor, when set, is consulted at every iteration boundary with
	// the rank's network-wait fraction and may retune the node's DVFS
	// level — the runtime slack-reclamation technique of the paper's
	// related work (see internal/dvfs). Note that under a varying
	// frequency the end-of-run cycle counters are approximate (times are
	// converted at the final frequency); time and energy stay exact.
	Governor dvfs.Governor
}

// Run executes the program for env's rank: the hybrid loop of Listing 1.
// It must be called from the rank's master process p. Errors are
// structural (unknown class) and detected before simulation starts.
func (s *Spec) Run(p *des.Proc, env *Env) error {
	iters, err := s.Iterations(env.Class)
	if err != nil {
		return err
	}
	nd := env.Team.Node()
	prof := nd.Profile()
	n := env.Rank.World().Size()
	c := env.Team.Size()

	perCoreWork := s.WorkPerIter / float64(n*c)
	if s.Imbalance > 0 && n > 1 {
		perCoreWork *= 1 + s.Imbalance*float64(env.Rank.ID())/float64(n-1)
	}
	traffic := perCoreWork * s.MemBytesPerWork * prof.MemTrafficFactor
	bursts := 1
	if traffic > 0 {
		bursts = int(math.Ceil(traffic / prof.MemBurstBytes))
		max := s.MaxBurstsPerIter
		if max <= 0 {
			max = 8
		}
		if bursts > max {
			bursts = max
		}
	}
	segWork := perCoreWork / float64(bursts)
	segBytes := traffic / float64(bursts)
	overlapBurst := int(s.OverlapPoint * float64(bursts))
	if overlapBurst >= bursts {
		overlapBurst = bursts - 1
	}
	extraWork := 0.0
	if s.SyncOverheadFrac > 0 && n > 1 {
		extraWork = s.SyncOverheadFrac * perCoreWork * math.Log2(float64(n)) * math.Log2(float64(n*c))
	}

	haloExpected := 0
	iterStart := p.Now()
	lastNetWait := 0.0
	lastCompute, lastMemStall := 0.0, 0.0
	for it := 0; it < iters; it++ {
		env.Team.Parallel(p, func(th *omp.Thread) {
			for b := 0; b < bursts; b++ {
				th.Compute(segWork, s.BFrac)
				if th.ID == 0 && n > 1 && b == overlapBurst {
					s.postHalo(env.Rank, n)
				}
				th.MemAccess(segBytes)
			}
			if extraWork > 0 {
				th.Compute(extraWork, s.BFrac)
			}
		})
		if n > 1 {
			if s.CollectiveBytes > 0 {
				env.Rank.Allreduce(p, s.CollectiveBytes)
			}
			if s.AlltoallVolume > 0 {
				env.Rank.Alltoall(p, s.AlltoallVolume/float64(n))
			}
			if s.HaloMsgs > 0 {
				haloExpected += s.HaloMsgs
				env.Rank.WaitCount(p, mpi.TagHalo, haloExpected)
			}
			if s.BarrierPerIter {
				env.Rank.Barrier(p)
			}
		}
		if env.Governor != nil {
			dur := p.Now() - iterStart
			netWait := nd.Ctrs[0].NetWaitTime
			if pa, ok := env.Governor.(dvfs.PhaseAware); ok {
				compute := nd.Ctrs[0].WorkTime + nd.Ctrs[0].BStallTime
				memStall := nd.Ctrs[0].MemStallTime
				pa.ObservePhases(it, dvfs.PhaseSample{
					Compute:  compute - lastCompute,
					MemStall: memStall - lastMemStall,
					NetWait:  netWait - lastNetWait,
				})
				lastCompute, lastMemStall = compute, memStall
			}
			frac := 0.0
			if dur > 0 {
				frac = (netWait - lastNetWait) / dur
			}
			if nf := env.Governor.AfterIteration(it, dur, frac, nd.Freq()); nf != nd.Freq() {
				nd.SetFreq(nf)
			}
			lastNetWait = netWait
			iterStart = p.Now()
		}
	}
	return nil
}

// postHalo sends the rank's halo messages for one iteration: neighbours at
// offsets +1, -1, +2, -2, ... modulo the world size, so every rank also
// receives exactly HaloMsgs messages per iteration.
func (s *Spec) postHalo(r *mpi.Rank, n int) {
	bytes := s.HaloBytes(n)
	for m := 0; m < s.HaloMsgs; m++ {
		offset := m/2 + 1
		if m%2 == 1 {
			offset = -offset
		}
		dst := ((r.ID()+offset)%n + n) % n
		r.Isend(dst, bytes, mpi.TagHalo)
	}
}

// The five benchmark programs of the paper's evaluation (Table 2).
func LU() *Spec {
	return &Spec{
		Name: "LU", Suite: "NPB3.3-MZ", Domain: "3D Navier-Stokes Equation Solver", Lang: "Fortran",
		WorkPerIter: 6e9, BFrac: 0.09, MemBytesPerWork: 0.45, BaseIters: 40,
		HaloMsgs: 2, HaloBytesN2: 300e3, HaloExp: 0.7,
		OverlapPoint: 0.7,
	}
}

func SP() *Spec {
	return &Spec{
		Name: "SP", Suite: "NPB3.3-MZ", Domain: "3D Navier-Stokes Equation Solver", Lang: "Fortran",
		WorkPerIter: 7e9, BFrac: 0.11, MemBytesPerWork: 0.80, BaseIters: 40,
		HaloMsgs: 4, HaloBytesN2: 400e3, HaloExp: 0.7,
		OverlapPoint: 0.7,
	}
}

func BT() *Spec {
	return &Spec{
		Name: "BT", Suite: "NPB3.3-MZ", Domain: "3D Navier-Stokes Equation Solver", Lang: "Fortran",
		WorkPerIter: 8e9, BFrac: 0.10, MemBytesPerWork: 0.45, BaseIters: 40,
		HaloMsgs: 3, HaloBytesN2: 500e3, HaloExp: 0.7,
		OverlapPoint: 0.7,
	}
}

func CP() *Spec {
	return &Spec{
		Name: "CP", Suite: "Quantum Espresso (v5.1)", Domain: "Electronic-structure Calculations", Lang: "Fortran",
		WorkPerIter: 20e9, BFrac: 0.13, MemBytesPerWork: 0.65, BaseIters: 40,
		CollectiveBytes:  4e6,
		SyncOverheadFrac: 0.006,
		OverlapPoint:     0.7,
	}
}

func LB() *Spec {
	return &Spec{
		Name: "LB", Suite: "OpenLB (olb-0.8r0)", Domain: "Computational Fluid Dynamics", Lang: "C++",
		WorkPerIter: 5e9, BFrac: 0.08, MemBytesPerWork: 0.95, BaseIters: 40,
		HaloMsgs: 6, HaloBytesN2: 400e3, HaloExp: 0.6,
		BarrierPerIter:   true,
		SyncOverheadFrac: 0.008,
		OverlapPoint:     0.7,
	}
}

// FT is a sixth, extension program beyond the paper's five: a 3D-FFT
// spectral solver in the style of NPB FT, whose per-iteration transpose is
// a personalised all-to-all — the communication pattern the paper's suite
// does not cover. It demonstrates that the approach generalises to
// alltoall-dominated codes (and exercises mpi.Alltoall end to end).
func FT() *Spec {
	return &Spec{
		Name: "FT", Suite: "NPB3.3 (extension)", Domain: "3D Fast Fourier Transform", Lang: "Fortran",
		WorkPerIter: 10e9, BFrac: 0.12, MemBytesPerWork: 0.50, BaseIters: 40,
		AlltoallVolume: 4e6,
		OverlapPoint:   0.7,
	}
}

// Programs returns the five benchmark specs in the paper's Table 2 order.
func Programs() []*Spec { return []*Spec{LU(), SP(), BT(), CP(), LB()} }

// Extended returns the paper's five programs plus the FT extension.
func Extended() []*Spec { return append(Programs(), FT()) }

// ByName returns one of the built-in programs.
func ByName(name string) (*Spec, error) {
	for _, s := range Extended() {
		if s.Name == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range Extended() {
		names = append(names, s.Name)
	}
	sort.Strings(names)
	return nil, fmt.Errorf("workload: unknown program %q (want one of %v)", name, names)
}

// Synthetic builds a custom program spec for experimentation; callers must
// Validate it before use.
func Synthetic(name string, workPerIter, memBytesPerWork float64, baseIters, haloMsgs int, haloBytes float64) *Spec {
	return &Spec{
		Name: name, Suite: "synthetic", Domain: "synthetic", Lang: "Go",
		WorkPerIter: workPerIter, BFrac: 0.1, MemBytesPerWork: memBytesPerWork,
		BaseIters: baseIters, HaloMsgs: haloMsgs, HaloBytesN2: haloBytes, HaloExp: 0.7,
		OverlapPoint: 0.7,
	}
}
