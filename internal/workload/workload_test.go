package workload

import (
	"math"
	"testing"
	"testing/quick"

	"hybridperf/internal/core"
	"hybridperf/internal/des"
	"hybridperf/internal/machine"
	"hybridperf/internal/mpi"
	"hybridperf/internal/node"
	"hybridperf/internal/omp"
	"hybridperf/internal/simnet"
)

func TestBuiltinProgramsValid(t *testing.T) {
	progs := Programs()
	if len(progs) != 5 {
		t.Fatalf("got %d programs, want the paper's 5", len(progs))
	}
	want := []string{"LU", "SP", "BT", "CP", "LB"}
	for i, s := range progs {
		if s.Name != want[i] {
			t.Errorf("program %d = %s, want %s (Table 2 order)", i, s.Name, want[i])
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s invalid: %v", s.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"LU", "SP", "BT", "CP", "LB"} {
		s, err := ByName(name)
		if err != nil || s.Name != name {
			t.Errorf("ByName(%s) = %v, %v", name, s, err)
		}
	}
	if s, err := ByName("FT"); err != nil || s.AlltoallVolume == 0 {
		t.Errorf("ByName(FT) = %v, %v (extension program should resolve)", s, err)
	}
	if _, err := ByName("MG"); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestLanguageDiversity(t *testing.T) {
	// The paper stresses language independence: four Fortran codes and
	// one C++ code.
	cpp := 0
	for _, s := range Programs() {
		if s.Lang == "C++" {
			cpp++
		}
	}
	if cpp != 1 {
		t.Fatalf("%d C++ programs, want exactly 1 (LB)", cpp)
	}
}

func TestIterationsScaleByClass(t *testing.T) {
	s := LU()
	itS, _ := s.Iterations(ClassS)
	itA, _ := s.Iterations(ClassA)
	itC, _ := s.Iterations(ClassC)
	if itA != 4*itS {
		t.Errorf("class A = %d, want 4x class S (%d)", itA, itS)
	}
	if itC != 16*itS {
		t.Errorf("class C = %d, want 16x class S (%d)", itC, itS)
	}
	if _, err := s.Iterations(Class("Z")); err == nil {
		t.Error("unknown class accepted")
	}
	itT, _ := s.Iterations(ClassTest)
	if itT < 2 || itT >= itS {
		t.Errorf("test class iterations = %d", itT)
	}
}

func TestHaloBytesShrinkWithNodes(t *testing.T) {
	s := SP()
	prev := math.Inf(1)
	for _, n := range []int{2, 4, 8, 16, 64} {
		hb := s.HaloBytes(n)
		if hb >= prev {
			t.Fatalf("halo bytes not decreasing at n=%d: %g >= %g", n, hb, prev)
		}
		prev = hb
	}
	if s.HaloBytes(1) != 0 {
		t.Error("single-node halo should be 0")
	}
	if got := s.HaloBytes(2); got != s.HaloBytesN2 {
		t.Errorf("HaloBytes(2) = %g, want the calibration volume %g", got, s.HaloBytesN2)
	}
}

func TestMsgClassesComposition(t *testing.T) {
	// LB has halo + barrier; CP has collective only; LU halo only.
	lb := LB()
	classes := lb.MsgClasses(8)
	if len(classes) != 2 {
		t.Fatalf("LB at n=8 has %d message classes, want 2 (halo + barrier)", len(classes))
	}
	if classes[0].Count != lb.HaloMsgs {
		t.Errorf("halo count %d", classes[0].Count)
	}
	if classes[1].Count != mpi.ReduceRounds(8) || classes[1].Bytes != 8 {
		t.Errorf("barrier class %+v", classes[1])
	}
	cp := CP()
	ccl := cp.MsgClasses(8)
	if len(ccl) != 1 || ccl[0].Count != mpi.ReduceRounds(8) || ccl[0].Bytes != cp.CollectiveBytes {
		t.Errorf("CP classes %+v", ccl)
	}
	if MsgsAt := LU().MsgsPerIter(1); MsgsAt != 0 {
		t.Errorf("single-node MsgsPerIter = %d", MsgsAt)
	}
}

func TestMeanMsgBytesWeighted(t *testing.T) {
	s := &Spec{
		Name: "X", WorkPerIter: 1, BaseIters: 2,
		HaloMsgs: 2, HaloBytesN2: 1000, HaloExp: 0,
		CollectiveBytes: 4000, OverlapPoint: 0.5,
	}
	// At n=2: 2 halo msgs of 1000 B + 1 reduce round of 4000 B.
	want := (2*1000.0 + 1*4000.0) / 3
	if got := s.MeanMsgBytes(2); math.Abs(got-want) > 1e-9 {
		t.Fatalf("MeanMsgBytes = %g, want %g", got, want)
	}
	if got := s.MeanMsgBytes(1); got != 0 {
		t.Fatalf("single-node nu = %g", got)
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	mutations := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.WorkPerIter = 0 },
		func(s *Spec) { s.BFrac = -1 },
		func(s *Spec) { s.MemBytesPerWork = -1 },
		func(s *Spec) { s.BaseIters = 0 },
		func(s *Spec) { s.HaloMsgs = -1 },
		func(s *Spec) { s.OverlapPoint = 1.5 },
	}
	for i, mutate := range mutations {
		s := SP()
		mutate(s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestSynthetic(t *testing.T) {
	s := Synthetic("syn", 1e9, 0.5, 10, 2, 1e5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Name != "syn" || s.BaseIters != 10 {
		t.Fatalf("synthetic spec %+v", s)
	}
}

// runProgram executes a spec on a tiny simulated cluster and returns the
// world for inspection.
func runProgram(t *testing.T, s *Spec, n, c int) (*mpi.World, []*node.Node, float64) {
	t.Helper()
	prof := machine.XeonE5()
	k := des.NewKernel()
	sw := simnet.NewSwitch(k, prof)
	var nodes []*node.Node
	for i := 0; i < n; i++ {
		nodes = append(nodes, node.New(k, prof, i, c, prof.FMax(), nil))
	}
	world := mpi.NewWorld(k, sw, nodes)
	for i := 0; i < n; i++ {
		env := &Env{Rank: world.Rank(i), Team: omp.NewTeam(k, nodes[i]), Class: ClassTest}
		k.Spawn("rank", func(p *des.Proc) {
			if err := s.Run(p, env); err != nil {
				t.Error(err)
			}
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	return world, nodes, k.Now()
}

func TestRunMessageCountsMatchLaw(t *testing.T) {
	for _, tc := range []struct {
		spec *Spec
		n    int
	}{
		{LU(), 2}, {SP(), 4}, {BT(), 3}, {CP(), 4}, {LB(), 4},
	} {
		world, _, _ := runProgram(t, tc.spec, tc.n, 2)
		iters, _ := tc.spec.Iterations(ClassTest)
		wantPerRank := float64(tc.spec.MsgsPerIter(tc.n) * iters)
		prof := world.Profile()
		if math.Abs(prof.MsgsPerRank-wantPerRank) > 1e-9 {
			t.Errorf("%s n=%d: eta = %g msgs/rank, law predicts %g",
				tc.spec.Name, tc.n, prof.MsgsPerRank, wantPerRank)
		}
		wantNu := tc.spec.MeanMsgBytes(tc.n)
		if math.Abs(prof.BytesPerMsg-wantNu)/wantNu > 1e-9 {
			t.Errorf("%s n=%d: nu = %g, law predicts %g", tc.spec.Name, tc.n, prof.BytesPerMsg, wantNu)
		}
	}
}

func TestRunSingleNodeNoMessages(t *testing.T) {
	world, _, _ := runProgram(t, SP(), 1, 4)
	if world.Profile().TotalMsgs != 0 {
		t.Fatal("single-node run sent MPI messages")
	}
}

func TestRunWorkConservation(t *testing.T) {
	// Total work cycles are independent of the partitioning (jitter off).
	work := func(n, c int) float64 {
		_, nodes, elapsed := runProgram(t, LU(), n, c)
		var w float64
		for _, nd := range nodes {
			w += nd.Totals(elapsed).WorkCycles
		}
		return w
	}
	w11, w24 := work(1, 1), work(2, 4)
	if math.Abs(w11-w24)/w11 > 1e-9 {
		t.Fatalf("work cycles differ across partitionings: %g vs %g", w11, w24)
	}
}

func TestRunSyncOverheadGrowsWork(t *testing.T) {
	// LB's model-invisible sync overhead adds instructions at n>1.
	perCoreWork := func(s *Spec, n int) float64 {
		_, nodes, elapsed := runProgram(t, s, n, 2)
		var w float64
		for _, nd := range nodes {
			w += nd.Totals(elapsed).WorkCycles
		}
		return w
	}
	base, scaled := perCoreWork(LB(), 1), perCoreWork(LB(), 4)
	if scaled <= base*1.01 {
		t.Fatalf("LB work at n=4 (%g) should exceed n=1 (%g) by sync overhead", scaled, base)
	}
	// The solvers have none.
	lu1, lu4 := perCoreWork(LU(), 1), perCoreWork(LU(), 4)
	if math.Abs(lu1-lu4)/lu1 > 1e-9 {
		t.Fatalf("LU work should be conserved: %g vs %g", lu1, lu4)
	}
}

func TestRunMoreCoresFaster(t *testing.T) {
	_, _, t1 := runProgram(t, BT(), 1, 1)
	_, _, t8 := runProgram(t, BT(), 1, 8)
	if t8 >= t1 {
		t.Fatalf("8 cores (%g s) not faster than 1 (%g s)", t8, t1)
	}
	if t1/t8 < 3 {
		t.Fatalf("8-core speedup only %.1fx", t1/t8)
	}
}

func TestRunUnknownClassFails(t *testing.T) {
	prof := machine.XeonE5()
	k := des.NewKernel()
	sw := simnet.NewSwitch(k, prof)
	nd := node.New(k, prof, 0, 1, prof.FMax(), nil)
	world := mpi.NewWorld(k, sw, []*node.Node{nd})
	var gotErr error
	env := &Env{Rank: world.Rank(0), Team: omp.NewTeam(k, nd), Class: Class("bogus")}
	k.Spawn("rank", func(p *des.Proc) { gotErr = SP().Run(p, env) })
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if gotErr == nil {
		t.Fatal("unknown class accepted by Run")
	}
}

// Property: halo volume scaling law is monotone non-increasing in n for
// any exponent in [0, 1.5].
func TestHaloLawMonotoneProperty(t *testing.T) {
	f := func(expRaw, aRaw, bRaw uint8) bool {
		s := SP()
		s.HaloExp = float64(expRaw) / 255 * 1.5
		na := int(aRaw)%63 + 2
		nb := int(bRaw)%63 + 2
		if na > nb {
			na, nb = nb, na
		}
		return s.HaloBytes(na) >= s.HaloBytes(nb)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLawMatchesCoreHybridComm pins the workload decomposition law to the
// model-side core.HybridComm so the simulator and the analytical model can
// never drift apart silently.
func TestLawMatchesCoreHybridComm(t *testing.T) {
	for _, s := range Extended() {
		hc := core.HybridComm{
			HaloMsgs:        s.HaloMsgs,
			HaloBytes:       s.HaloBytesN2,
			HaloExp:         s.HaloExp,
			CollectiveBytes: s.CollectiveBytes,
			Barrier:         s.BarrierPerIter,
			AlltoallVolume:  s.AlltoallVolume,
		}
		for n := 1; n <= 64; n++ {
			want := s.MsgClasses(n)
			got := hc.Classes(n)
			if len(got) != len(want) {
				t.Fatalf("%s n=%d: %d classes vs %d", s.Name, n, len(got), len(want))
			}
			for i := range want {
				if got[i].Count != want[i].Count || got[i].Sync != want[i].Sync ||
					math.Abs(got[i].Bytes-want[i].Bytes) > 1e-9 {
					t.Fatalf("%s n=%d class %d: core %+v vs workload %+v",
						s.Name, n, i, got[i], want[i])
				}
			}
		}
	}
}

func TestExtendedAddsFT(t *testing.T) {
	ext := Extended()
	if len(ext) != 6 || ext[5].Name != "FT" {
		t.Fatalf("Extended() = %d programs, want the paper's 5 plus FT", len(ext))
	}
	if err := FT().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFTAlltoallCounts(t *testing.T) {
	ft := FT()
	for _, n := range []int{2, 4, 8} {
		classes := ft.MsgClasses(n)
		if len(classes) != 1 {
			t.Fatalf("FT n=%d: %d classes", n, len(classes))
		}
		if classes[0].Count != n-1 || !classes[0].Sync {
			t.Fatalf("FT n=%d class %+v, want n-1 sync messages", n, classes[0])
		}
		if got := classes[0].Bytes; math.Abs(got-ft.AlltoallVolume/float64(n)) > 1e-9 {
			t.Fatalf("FT n=%d message bytes %g", n, got)
		}
		// The simulated run must send exactly that.
		world, _, _ := runProgram(t, ft, n, 1)
		iters, _ := ft.Iterations(ClassTest)
		want := float64((n - 1) * iters)
		if got := world.Profile().MsgsPerRank; math.Abs(got-want) > 1e-9 {
			t.Fatalf("FT n=%d: eta = %g, want %g", n, got, want)
		}
	}
}
