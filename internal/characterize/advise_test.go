package characterize

import (
	"math"
	"reflect"
	"testing"

	"hybridperf/internal/core"
	"hybridperf/internal/dvfs"
	"hybridperf/internal/machine"
	"hybridperf/internal/workload"
)

func adviseFixture(t *testing.T) (*core.Model, *machine.Profile, *workload.Spec) {
	t.Helper()
	prof := machine.XeonE5()
	spec := workload.SP()
	sum, err := Run(prof, spec, Options{Seed: 42, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(sum.Inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m, prof, spec
}

func TestAdvise(t *testing.T) {
	m, prof, spec := adviseFixture(t)
	opt := AdviseOptions{Class: workload.ClassS, Nodes: 2, Cores: 4, Seed: 42, Workers: 2}
	adv, err := Advise(m, prof, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(adv.Policies); got != len(dvfs.Policies()) {
		t.Fatalf("got %d policy outcomes, want %d", got, len(dvfs.Policies()))
	}
	if adv.Static.Cfg.Nodes != 2 || adv.Static.Cfg.Cores != 4 {
		t.Fatalf("static point moved off the requested shape: %v", adv.Static.Cfg)
	}
	if !prof.HasFrequency(adv.Static.Cfg.Freq) {
		t.Fatalf("static frequency %g is not a DVFS level", adv.Static.Cfg.Freq)
	}
	if !(adv.BaselineTimeS > 0) || !(adv.BaselineEnergyJ > 0) {
		t.Fatalf("degenerate baseline: T=%g E=%g", adv.BaselineTimeS, adv.BaselineEnergyJ)
	}
	if !dvfs.ValidPolicy(adv.Recommended) {
		t.Fatalf("recommended %q is not a policy", adv.Recommended)
	}
	for i, out := range adv.Policies {
		if out.Policy != dvfs.Policies()[i] {
			t.Errorf("policy order: got %q at %d", out.Policy, i)
		}
		if math.IsNaN(out.TimeDelta) || math.IsNaN(out.EnergyDelta) {
			t.Errorf("%s: NaN deltas", out.Policy)
		}
		if len(out.Schedule) == 0 {
			t.Errorf("%s: empty frequency schedule", out.Policy)
		} else if first := out.Schedule[0]; first.Iter != 0 || first.Freq != adv.Static.Cfg.Freq {
			t.Errorf("%s: schedule opens with %v, want {0, %g}", out.Policy, first, adv.Static.Cfg.Freq)
		}
		// The fixed policy is the static oracle: bit-identical to the
		// ungoverned baseline by construction.
		if out.Policy == dvfs.PolicyFixed {
			if out.TimeDelta != 0 || out.EnergyDelta != 0 {
				t.Errorf("fixed policy deltas not exactly zero: dT=%g dE=%g", out.TimeDelta, out.EnergyDelta)
			}
			if len(out.Schedule) != 1 {
				t.Errorf("fixed policy changed frequency: %v", out.Schedule)
			}
		}
	}
	if adv.Runs != 1+len(adv.Policies) {
		t.Errorf("attribution runs = %d, want %d", adv.Runs, 1+len(adv.Policies))
	}

	// Deterministic and engine-independent: the whole advice, schedules
	// included, must reproduce bit-for-bit on either engine.
	again, err := Advise(m, prof, spec, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(adv, again) {
		t.Error("advice is not deterministic across repeated evaluations")
	}
	seqOpt := opt
	seqOpt.Engine = "sequential"
	seq, err := Advise(m, prof, spec, seqOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(adv, seq) {
		t.Error("advice differs between goroutine and sequential engines")
	}
}

func TestAdviseValidation(t *testing.T) {
	m, prof, spec := adviseFixture(t)
	if _, err := Advise(m, prof, spec, AdviseOptions{Class: workload.ClassS, Nodes: 99, Cores: 4, Seed: 1}); err == nil {
		t.Error("over-sized node count accepted")
	}
	if _, err := Advise(m, prof, spec, AdviseOptions{Class: workload.ClassS, Nodes: 2, Cores: 4, Seed: 1, Policies: []string{"turbo"}}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Advise(m, prof, spec, AdviseOptions{Class: workload.ClassS, Nodes: 2, Cores: 4, Seed: 1, MaxSlowdown: 2}); err == nil {
		t.Error("out-of-range MaxSlowdown accepted")
	}
	if _, err := Advise(m, prof, spec, AdviseOptions{Class: "Z", Nodes: 2, Cores: 4, Seed: 1}); err == nil {
		t.Error("unknown class accepted")
	}
}
