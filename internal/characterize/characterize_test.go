package characterize

import (
	"math"
	"testing"

	"hybridperf/internal/core"
	"hybridperf/internal/exec"
	"hybridperf/internal/machine"
	"hybridperf/internal/stats"
	"hybridperf/internal/workload"
)

func runChar(t *testing.T, prof *machine.Profile, spec *workload.Spec) *Summary {
	t.Helper()
	sum, err := Run(prof, spec, Options{Seed: 42, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestBaselineCoversAllPoints(t *testing.T) {
	prof := machine.XeonE5()
	sum := runChar(t, prof, workload.LU())
	want := prof.CoresPerNode * len(prof.Frequencies)
	if len(sum.Baseline) != want {
		t.Fatalf("baseline has %d points, want %d", len(sum.Baseline), want)
	}
	for cf, bp := range sum.Baseline {
		if bp.W <= 0 {
			t.Fatalf("no work cycles at %v", cf)
		}
		if bp.M <= 0 {
			t.Fatalf("no memory stalls at %v", cf)
		}
		if bp.U <= 0 || bp.U > 1 {
			t.Fatalf("utilization %g at %v", bp.U, cf)
		}
	}
}

func TestBaselineStallsGrowWithFrequency(t *testing.T) {
	// Memory service time is frequency-independent, so stall cycles
	// (time x f) must grow with f at fixed c — the behaviour the paper's
	// ms(c,f) measurements capture.
	prof := machine.XeonE5()
	sum := runChar(t, prof, workload.SP())
	c := prof.CoresPerNode
	low := sum.Baseline[machine.CF{Cores: c, Freq: prof.FMin()}]
	high := sum.Baseline[machine.CF{Cores: c, Freq: prof.FMax()}]
	if high.M <= low.M {
		t.Fatalf("stall cycles at fmax (%g) should exceed fmin (%g)", high.M, low.M)
	}
}

func TestBaselineStallsGrowWithCores(t *testing.T) {
	prof := machine.XeonE5()
	sum := runChar(t, prof, workload.SP())
	f := prof.FMax()
	one := sum.Baseline[machine.CF{Cores: 1, Freq: f}]
	all := sum.Baseline[machine.CF{Cores: prof.CoresPerNode, Freq: f}]
	if all.M <= one.M {
		t.Fatalf("contention missing: ms(%d cores)=%g <= ms(1 core)=%g",
			prof.CoresPerNode, all.M, one.M)
	}
}

func TestCommCalibrationNearOne(t *testing.T) {
	spec := workload.SP()
	sum := runChar(t, machine.XeonE5(), spec)
	hc, ok := sum.Inputs.Comm.(core.HybridComm)
	if !ok {
		t.Fatalf("comm model is %T", sum.Inputs.Comm)
	}
	cal := hc.HaloBytes / spec.HaloBytesN2
	if math.Abs(cal-1) > 0.01 {
		t.Fatalf("mpiP calibration = %g, want ~1 (structural volumes)", cal)
	}
	if sum.MpiP.Ranks != 2 {
		t.Fatalf("mpiP profiled %d ranks, want 2", sum.MpiP.Ranks)
	}
}

func TestCommModelMatchesSpecLaw(t *testing.T) {
	spec := workload.LB()
	sum := runChar(t, machine.ARMCortexA9(), spec)
	for _, n := range []int{2, 4, 8} {
		classes := sum.Inputs.Comm.Classes(n)
		want := spec.MsgClasses(n)
		if len(classes) != len(want) {
			t.Fatalf("n=%d: %d classes, want %d", n, len(classes), len(want))
		}
		for i := range want {
			if classes[i].Count != want[i].Count {
				t.Fatalf("n=%d class %d count %d, want %d", n, i, classes[i].Count, want[i].Count)
			}
			if classes[i].Sync != want[i].Sync {
				t.Fatalf("n=%d class %d sync %v, want %v", n, i, classes[i].Sync, want[i].Sync)
			}
			if math.Abs(classes[i].Bytes-want[i].Bytes)/want[i].Bytes > 0.02 {
				t.Fatalf("n=%d class %d bytes %g, want ~%g", n, i, classes[i].Bytes, want[i].Bytes)
			}
		}
	}
}

func TestNoCommProgramGetsNilComm(t *testing.T) {
	spec := workload.Synthetic("nocomm", 1e9, 0.3, 10, 0, 0)
	sum := runChar(t, machine.XeonE5(), spec)
	if sum.Inputs.Comm != nil {
		t.Fatal("communication-free program got a comm model")
	}
	if sum.MpiP.Ranks != 0 {
		t.Fatal("mpiP ran for a communication-free program")
	}
}

func TestInputsBuildValidModel(t *testing.T) {
	sum := runChar(t, machine.ARMCortexA9(), workload.CP())
	m, err := core.New(sum.Inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Predict(machine.Config{Nodes: 4, Cores: 4, Freq: 1.4e9}, 160)
	if err != nil {
		t.Fatal(err)
	}
	if p.T <= 0 || p.E <= 0 {
		t.Fatalf("degenerate prediction %+v", p)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, err := Run(machine.XeonE5(), workload.SP(), Options{BaselineClass: workload.Class("zz")}); err == nil {
		t.Fatal("bad baseline class accepted")
	}
	bad := machine.XeonE5()
	bad.CoresPerNode = 0
	if _, err := Run(bad, workload.SP(), Options{}); err == nil {
		t.Fatal("invalid profile accepted")
	}
	spec := workload.SP()
	spec.WorkPerIter = 0
	if _, err := Run(machine.XeonE5(), spec, Options{}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

// TestEndToEndValidationUnder15Percent is the repository's Table 2 claim
// in miniature: model error against direct simulation stays within the
// paper's 15% bound on a sample of configurations, for one program per
// system.
func TestEndToEndValidationUnder15Percent(t *testing.T) {
	cases := []struct {
		prof *machine.Profile
		spec *workload.Spec
	}{
		{machine.XeonE5(), workload.SP()},
		{machine.ARMCortexA9(), workload.LB()},
	}
	for _, tc := range cases {
		sum := runChar(t, tc.prof, tc.spec)
		m, err := core.New(sum.Inputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		S, _ := tc.spec.Iterations(workload.ClassA)
		cfgs := []machine.Config{
			{Nodes: 1, Cores: 1, Freq: tc.prof.FMin()},
			{Nodes: 1, Cores: tc.prof.CoresPerNode, Freq: tc.prof.FMax()},
			{Nodes: 2, Cores: 2, Freq: tc.prof.FMax()},
			{Nodes: 4, Cores: tc.prof.CoresPerNode, Freq: tc.prof.FMax()},
			{Nodes: 8, Cores: tc.prof.CoresPerNode, Freq: tc.prof.FMin()},
		}
		var predT, measT, predE, measE []float64
		for i, cfg := range cfgs {
			pred, err := m.Predict(cfg, S)
			if err != nil {
				t.Fatal(err)
			}
			meas, err := exec.Run(exec.Request{
				Prof: tc.prof, Spec: tc.spec, Class: workload.ClassA, Cfg: cfg, Seed: 500 + int64(i),
			})
			if err != nil {
				t.Fatal(err)
			}
			predT = append(predT, pred.T)
			measT = append(measT, meas.Time)
			predE = append(predE, pred.E)
			measE = append(measE, meas.MeasuredEnergy)
		}
		te := stats.SummarizeErrors(predT, measT)
		ee := stats.SummarizeErrors(predE, measE)
		t.Logf("%s/%s: time err %.1f%% (max %.1f%%), energy err %.1f%% (max %.1f%%)",
			tc.prof.Name, tc.spec.Name, te.Mean, te.Max, ee.Mean, ee.Max)
		if te.Mean > 15 {
			t.Errorf("%s/%s mean time error %.1f%% exceeds the paper's 15%%", tc.prof.Name, tc.spec.Name, te.Mean)
		}
		if ee.Mean > 15 {
			t.Errorf("%s/%s mean energy error %.1f%% exceeds the paper's 15%%", tc.prof.Name, tc.spec.Name, ee.Mean)
		}
	}
}

// TestFTExtensionValidates pushes the alltoall-dominated FT extension
// program through the full pipeline: its validation error must sit in the
// same band as the paper's five programs, demonstrating the approach
// generalises to a communication pattern outside the paper's suite.
func TestFTExtensionValidates(t *testing.T) {
	prof := machine.XeonE5()
	spec := workload.FT()
	sum := runChar(t, prof, spec)
	m, err := core.New(sum.Inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	S, _ := spec.Iterations(workload.ClassA)
	cfgs := []machine.Config{
		{Nodes: 1, Cores: 8, Freq: 1.8e9},
		{Nodes: 2, Cores: 8, Freq: 1.8e9},
		{Nodes: 4, Cores: 4, Freq: 1.5e9},
		{Nodes: 8, Cores: 8, Freq: 1.8e9},
	}
	var predT, measT []float64
	for i, cfg := range cfgs {
		pred, err := m.Predict(cfg, S)
		if err != nil {
			t.Fatal(err)
		}
		meas, err := exec.Run(exec.Request{
			Prof: prof, Spec: spec, Class: workload.ClassA, Cfg: cfg, Seed: 900 + int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
		predT = append(predT, pred.T)
		measT = append(measT, meas.Time)
	}
	es := stats.SummarizeErrors(predT, measT)
	t.Logf("FT/Xeon time error: mean %.1f%%, max %.1f%%", es.Mean, es.Max)
	if es.Mean > 15 {
		t.Errorf("FT mean time error %.1f%% outside the paper's band", es.Mean)
	}
}

// TestCrossbarTopologyValidates characterises and validates on a crossbar
// cluster: the model's per-port contention treatment (portShare = 1) must
// track the crossbar simulator within the usual band, including for the
// collective-heavy CP.
func TestCrossbarTopologyValidates(t *testing.T) {
	for _, spec := range []*workload.Spec{workload.SP(), workload.CP()} {
		prof := machine.XeonE5()
		prof.Topology = machine.TopologyCrossbar
		sum, err := Run(prof, spec, Options{Seed: 42, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if sum.Inputs.NetTopology != machine.TopologyCrossbar {
			t.Fatal("topology not propagated into model inputs")
		}
		m, err := core.New(sum.Inputs, nil)
		if err != nil {
			t.Fatal(err)
		}
		S, _ := spec.Iterations(workload.ClassA)
		cfgs := []machine.Config{
			{Nodes: 2, Cores: 8, Freq: 1.8e9},
			{Nodes: 4, Cores: 8, Freq: 1.8e9},
			{Nodes: 8, Cores: 8, Freq: 1.8e9},
			{Nodes: 8, Cores: 2, Freq: 1.2e9},
		}
		var predT, measT []float64
		for i, cfg := range cfgs {
			pred, err := m.Predict(cfg, S)
			if err != nil {
				t.Fatal(err)
			}
			meas, err := exec.Run(exec.Request{
				Prof: prof, Spec: spec, Class: workload.ClassA, Cfg: cfg, Seed: 1300 + int64(i),
			})
			if err != nil {
				t.Fatal(err)
			}
			predT = append(predT, pred.T)
			measT = append(measT, meas.Time)
		}
		es := stats.SummarizeErrors(predT, measT)
		t.Logf("%s/crossbar time error: mean %.1f%%, max %.1f%%", spec.Name, es.Mean, es.Max)
		if es.Mean > 15 {
			t.Errorf("%s crossbar mean time error %.1f%% outside the band", spec.Name, es.Mean)
		}
	}
}
