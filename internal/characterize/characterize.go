// Package characterize orchestrates the measurement campaign of Figure 2's
// left column: baseline executions of the small input on a single node
// across every (c, f) point (hardware counters), an mpiP profiling run for
// the communication characteristics, NetPIPE network characterisation and
// the power micro-benchmarks — producing the analytical model's inputs.
package characterize

import (
	"context"
	"fmt"
	"time"

	"hybridperf/internal/core"
	"hybridperf/internal/exec"
	"hybridperf/internal/machine"
	"hybridperf/internal/metrics"
	"hybridperf/internal/mpip"
	"hybridperf/internal/netpipe"
	"hybridperf/internal/powerbench"
	"hybridperf/internal/trace"
	"hybridperf/internal/workload"
)

// Options control the characterisation campaign.
type Options struct {
	Seed          int64
	Workers       int            // parallel simulation workers (default 4)
	BaselineClass workload.Class // default ClassS, the paper's small input Ps
	ProfileNodes  int            // nodes for the mpiP run (default 2)
	// Engine selects the simulation engine for every run of the campaign
	// (see exec.Request.Engine). Both engines are bit-for-bit identical,
	// so the characterised model does not depend on this choice; empty
	// resolves through exec's default.
	Engine string
	// Ctx, when non-nil, cancels the campaign cooperatively: it is
	// checked between stages and threaded into every simulation request,
	// so a cancelled context stops in-flight simulations mid-run and the
	// campaign returns an error wrapping ctx.Err(). Nil runs to
	// completion. An uncancelled context never perturbs results.
	Ctx context.Context
	// Metrics instruments every simulation of the campaign and fills the
	// Summary's aggregate engine counters. Off by default (the counters
	// never alter results, only observe them).
	Metrics bool
	// SharedMetrics, when non-nil, accumulates every simulation's engine
	// counters into this shared engine (see exec.Request.SharedMetrics) —
	// the serving layer's process-lifetime counter set. The Summary's own
	// aggregate still requires Metrics, since per-run deltas on a shared
	// engine overlap under concurrency.
	SharedMetrics *metrics.Engine
	// Observe, when non-nil, receives a wall-clock span for every
	// simulation of the campaign plus one for each campaign stage
	// ("baseline sweep", "mpiP run") — the hook external span recorders
	// attach to. Purely observational.
	Observe func(label string, start, end time.Time)
	// PhaseTrace, when non-nil, receives the per-rank phase timeline of
	// the campaign's designated profiling run — the mpiP run when the
	// program communicates, the first baseline execution otherwise —
	// labelled with the program and configuration (see
	// exec.Request.PhaseSink). Distributed tracing attaches this timeline
	// to the sampled request that triggered the campaign. Purely
	// observational: results are bit-identical with or without it.
	PhaseTrace func(label string, events []trace.Event)
}

func (o *Options) fill() {
	if o.Workers < 1 {
		o.Workers = 4
	}
	if o.BaselineClass == "" {
		o.BaselineClass = workload.ClassS
	}
	if o.ProfileNodes < 2 {
		o.ProfileNodes = 2
	}
}

// Summary keeps the raw characterisation artefacts alongside the model
// inputs, for reporting (Figure 3, power tables) and diagnostics.
type Summary struct {
	Inputs   core.Inputs
	NetPipe  []netpipe.Point
	Power    *powerbench.Result
	MpiP     mpip.Report
	Baseline map[machine.CF]core.BaselinePoint

	// BaselineClass is the workload class the baseline sweep actually ran
	// (Options.BaselineClass after defaulting). Snapshot stores key on it:
	// two campaigns agree bit-for-bit only if they characterised the same
	// baseline input.
	BaselineClass workload.Class

	// Metrics is the summed engine-counter snapshot over MetricsRuns
	// instrumented simulations (only with Options.Metrics).
	Metrics     metrics.EngineSnapshot
	MetricsRuns int
}

// commFromSpec builds the model's communication law from the program's
// decomposition structure, with message volumes calibrated by the mpiP
// measurement (measured mean volume over the structurally expected one at
// the profiled node count) — the paper's "communication characteristics
// inferred from l and τ" with mpiP providing the volumes.
func commFromSpec(spec *workload.Spec, cal float64) core.HybridComm {
	return core.HybridComm{
		HaloMsgs:        spec.HaloMsgs,
		HaloBytes:       spec.HaloBytesN2 * cal,
		HaloExp:         spec.HaloExp,
		CollectiveBytes: spec.CollectiveBytes * cal,
		Barrier:         spec.BarrierPerIter,
		AlltoallVolume:  spec.AlltoallVolume * cal,
	}
}

// Run performs the full characterisation of one program on one system and
// returns the model inputs.
func Run(prof *machine.Profile, spec *workload.Spec, opts Options) (*Summary, error) {
	opts.fill()
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := exec.ValidateEngine(opts.Engine); err != nil {
		return nil, err
	}
	baseIters, err := spec.Iterations(opts.BaselineClass)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("characterize: cancelled: %w", err)
	}

	// 1. Network characterisation (NetPIPE, Figure 3).
	points, netModel, err := netpipe.Characterize(prof)
	if err != nil {
		return nil, fmt.Errorf("characterize: network: %w", err)
	}

	// 2. Power characterisation.
	power, err := powerbench.Characterize(prof, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("characterize: power: %w", err)
	}

	// 3. Baseline executions: single node, all (c,f), small input. Every
	// request carries the campaign context, so one cancellation stops
	// each in-flight simulation mid-run and fails the queued remainder
	// at their upfront check.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("characterize: cancelled before baseline sweep: %w", err)
	}
	var reqs []exec.Request
	var keys []machine.CF
	for c := 1; c <= prof.CoresPerNode; c++ {
		for _, f := range prof.Frequencies {
			keys = append(keys, machine.CF{Cores: c, Freq: f})
			reqs = append(reqs, exec.Request{
				Prof:          prof,
				Spec:          spec,
				Class:         opts.BaselineClass,
				Cfg:           machine.Config{Nodes: 1, Cores: c, Freq: f},
				Seed:          opts.Seed + int64(len(reqs)),
				Engine:        opts.Engine,
				Ctx:           opts.Ctx,
				Metrics:       opts.Metrics,
				SharedMetrics: opts.SharedMetrics,
				Observe:       opts.Observe,
			})
		}
	}
	// A program that never communicates skips the mpiP run below, so its
	// designated phase-trace run is the first baseline execution instead.
	if opts.PhaseTrace != nil && spec.MsgsPerIter(opts.ProfileNodes) == 0 && len(reqs) > 0 {
		reqs[0].PhaseSink = opts.PhaseTrace
	}
	sweepStart := time.Now()
	results, err := exec.Sweep(reqs, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("characterize: baseline: %w", err)
	}
	if opts.Observe != nil {
		opts.Observe(fmt.Sprintf("baseline sweep %s/%s (%d cfgs)", prof.Name, spec.Name, len(reqs)),
			sweepStart, time.Now())
	}
	// Summary aggregation only for the per-run (non-shared) engines: with
	// a shared engine, concurrent per-run deltas overlap and double-count.
	var agg metrics.EngineSnapshot
	aggRuns := 0
	if opts.Metrics && opts.SharedMetrics == nil {
		agg, aggRuns = exec.SweepMetrics(results)
	}
	baseline := make(map[machine.CF]core.BaselinePoint, len(results))
	for i, res := range results {
		baseline[keys[i]] = core.BaselinePoint{
			W: res.Totals.WorkCycles,
			B: res.Totals.BStallCycles,
			M: res.Totals.MemStallCycles,
			U: res.Utilization,
		}
	}

	// 4. Communication profiling (mpiP) on a small multi-node run.
	comm := core.CommModel(nil)
	var report mpip.Report
	if spec.MsgsPerIter(opts.ProfileNodes) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("characterize: cancelled before mpiP run: %w", err)
		}
		n := opts.ProfileNodes
		if n > prof.MaxNodes {
			n = prof.MaxNodes
		}
		res, err := exec.Run(exec.Request{
			Prof:          prof,
			Spec:          spec,
			Class:         opts.BaselineClass,
			Cfg:           machine.Config{Nodes: n, Cores: 1, Freq: prof.FMax()},
			Seed:          opts.Seed + 7919,
			Engine:        opts.Engine,
			Ctx:           opts.Ctx,
			Metrics:       opts.Metrics,
			SharedMetrics: opts.SharedMetrics,
			Observe:       opts.Observe,
			PhaseSink:     opts.PhaseTrace,
		})
		if err != nil {
			return nil, fmt.Errorf("characterize: mpiP run: %w", err)
		}
		if opts.Metrics && opts.SharedMetrics == nil && res.Metrics != nil {
			agg.Add(res.Metrics.Engine)
			aggRuns++
		}
		report, err = mpip.FromRun(res.Comm, baseIters, res.Time)
		if err != nil {
			return nil, err
		}
		cal := 1.0
		if expected := spec.MeanMsgBytes(n); expected > 0 && report.BytesPerMsg > 0 {
			cal = report.BytesPerMsg / expected
		}
		comm = commFromSpec(spec, cal)
	}

	in := core.Inputs{
		System:        prof.Name,
		Program:       spec.Name,
		NetTopology:   prof.Topology,
		BaselineIters: baseIters,
		Baseline:      baseline,
		Comm:          comm,
		Net:           netModel,
		Power:         power.Model,
	}
	return &Summary{
		Inputs:        in,
		NetPipe:       points,
		Power:         power,
		MpiP:          report,
		Baseline:      baseline,
		BaselineClass: opts.BaselineClass,
		Metrics:       agg,
		MetricsRuns:   aggRuns,
	}, nil
}
