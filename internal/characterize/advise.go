package characterize

// Governed-run evaluation: the online DVFS advisory path. For a given
// (system, program, n, c) the static Pareto point fixes the frequency
// offline; the advisor then replays the DES once per governor policy from
// that point and reports each policy's energy/makespan delta against the
// ungoverned static run — quantifying how much residual slack a runtime
// governor reclaims on top of the paper's static choice (ROADMAP open
// item 2; related work Sec. II.A).

import (
	"context"
	"fmt"
	"math"
	"time"

	"hybridperf/internal/core"
	"hybridperf/internal/dvfs"
	"hybridperf/internal/exec"
	"hybridperf/internal/machine"
	"hybridperf/internal/metrics"
	"hybridperf/internal/pareto"
	"hybridperf/internal/trace"
	"hybridperf/internal/workload"
)

// AdviseOptions control one advisory evaluation.
type AdviseOptions struct {
	// Class is the production input class to advise for (default ClassA,
	// the serving default).
	Class workload.Class
	// Nodes and Cores pin the static configuration axes; the advisor
	// chooses the frequency (the static Pareto point minimises EDP over
	// the profile's DVFS levels at this shape).
	Nodes, Cores int
	// Policies names the governor policies to evaluate (dvfs.Policies
	// when empty). Unknown names are an error.
	Policies []string
	// MaxSlowdown is the makespan tolerance: the phase-predictive
	// governor's slowdown budget, and the recommendation cut-off — a
	// policy whose makespan delta exceeds it is never recommended.
	// Defaults to 0.05.
	MaxSlowdown float64
	Seed        int64
	Workers     int // parallel policy runs (default 4)
	// Engine, Ctx, SharedMetrics and Observe thread through to every
	// simulation exactly as in Options.
	Engine        string
	Ctx           context.Context
	SharedMetrics *metrics.Engine
	Observe       func(label string, start, end time.Time)
}

func (o *AdviseOptions) fill() {
	if o.Class == "" {
		o.Class = workload.ClassA
	}
	if len(o.Policies) == 0 {
		o.Policies = dvfs.Policies()
	}
	if o.MaxSlowdown == 0 {
		o.MaxSlowdown = 0.05
	}
	if o.Workers < 1 {
		o.Workers = 4
	}
}

// PolicyOutcome is one policy's governed run against the static baseline.
type PolicyOutcome struct {
	Policy      string
	TimeS       float64 // governed makespan [s]
	EnergyJ     float64 // governed exact cluster energy [J]
	TimeDelta   float64 // fractional makespan delta vs the baseline run
	EnergyDelta float64 // fractional energy delta vs the baseline run
	// Schedule is rank 0's recorded frequency schedule: the per-phase
	// levels the governor actually chose, opening with the static
	// frequency at iteration 0.
	Schedule []dvfs.Transition
}

// Advice is the advisory evaluation result.
type Advice struct {
	// Static is the static Pareto point (model prediction) the governed
	// runs start from: minimum EDP over the profile's DVFS levels at the
	// requested (n, c).
	Static pareto.Point
	// BaselineTimeS/BaselineEnergyJ measure the ungoverned DES run at the
	// static point — the denominator of every delta. Energy is the exact
	// integrated cluster energy (no meter noise), so deltas are
	// deterministic.
	BaselineTimeS   float64
	BaselineEnergyJ float64
	Policies        []PolicyOutcome
	// Recommended is the policy with the lowest governed energy among
	// those within the MaxSlowdown makespan tolerance; "fixed" (the
	// static oracle) when no policy beats it.
	Recommended string

	// Attribution: simulations performed (baseline + one per policy) and
	// their summed simulated seconds and exact energy.
	Runs       int
	SimSeconds float64
	SimEnergyJ float64
}

// levelsUpTo returns the profile's DVFS levels capped at the static
// frequency — governors reclaim slack below the chosen point, they do not
// overclock past it.
func levelsUpTo(prof *machine.Profile, fmax float64) []float64 {
	var levels []float64
	for _, f := range prof.Frequencies {
		if f <= fmax {
			levels = append(levels, f)
		}
	}
	return levels
}

// governorFor builds the per-rank governor factory for one policy, with a
// ScheduleRecorder wrapped around rank 0's governor. The returned record
// function yields rank 0's schedule after the run.
func governorFor(policy string, prof *machine.Profile, cfg machine.Config, prior map[int]dvfs.PhaseSample, priorIters int, maxSlowdown float64) (func(int) dvfs.Governor, func() []dvfs.Transition, error) {
	levels := levelsUpTo(prof, cfg.Freq)
	rec := &dvfs.ScheduleRecorder{}
	build := func(rank int) (dvfs.Governor, error) {
		switch policy {
		case dvfs.PolicyFixed:
			return dvfs.Fixed(cfg.Freq), nil
		case dvfs.PolicySlack:
			return dvfs.NewInterNodeSlack(levels, 0, 0)
		case dvfs.PolicyPhase:
			sample, at := dvfs.PhaseSample{}, 0.0
			if s, ok := prior[rank]; ok && priorIters > 0 {
				sample = dvfs.PhaseSample{
					Compute:  s.Compute / float64(priorIters),
					MemStall: s.MemStall / float64(priorIters),
					NetWait:  s.NetWait / float64(priorIters),
				}
				at = cfg.Freq
			}
			return dvfs.NewPhasePredictive(levels, at, sample, maxSlowdown)
		default:
			return nil, fmt.Errorf("characterize: unknown policy %q", policy)
		}
	}
	// Validate eagerly for rank 0 so construction errors surface before
	// the run instead of panicking inside it.
	g0, err := build(0)
	if err != nil {
		return nil, nil, err
	}
	rec.G = g0
	factory := func(rank int) dvfs.Governor {
		if rank == 0 {
			return rec
		}
		g, err := build(rank)
		if err != nil {
			// Unreachable: rank 0 validated the same construction.
			panic(err)
		}
		return g
	}
	return factory, rec.Schedule, nil
}

// Advise evaluates the governor policy suite for one (system, program,
// n, c): it picks the static Pareto point over the frequency axis, runs
// the ungoverned DES once at that point (recording the per-rank phase
// trace that seeds the phase-predictive governor), then replays the run
// once per policy and reports the deltas. Everything is deterministic for
// a fixed seed, on either engine.
func Advise(m *core.Model, prof *machine.Profile, spec *workload.Spec, opt AdviseOptions) (*Advice, error) {
	opt.fill()
	S, err := spec.Iterations(opt.Class)
	if err != nil {
		return nil, err
	}
	if err := exec.ValidateEngine(opt.Engine); err != nil {
		return nil, err
	}
	for _, p := range opt.Policies {
		if !dvfs.ValidPolicy(p) {
			return nil, fmt.Errorf("characterize: unknown policy %q (have %v)", p, dvfs.Policies())
		}
	}
	if !(opt.MaxSlowdown > 0 && opt.MaxSlowdown < 1) {
		return nil, fmt.Errorf("characterize: max slowdown %g must be in (0,1)", opt.MaxSlowdown)
	}
	if err := prof.ValidateConfig(machine.Config{Nodes: opt.Nodes, Cores: opt.Cores, Freq: prof.FMax()}); err != nil {
		return nil, err
	}

	// 1. Static Pareto point: minimum EDP over the DVFS levels at (n, c).
	cfgs := make([]machine.Config, 0, len(prof.Frequencies))
	for _, f := range prof.Frequencies {
		cfgs = append(cfgs, machine.Config{Nodes: opt.Nodes, Cores: opt.Cores, Freq: f})
	}
	points, err := pareto.Evaluate(m, cfgs, S)
	if err != nil {
		return nil, fmt.Errorf("characterize: static sweep: %w", err)
	}
	static, ok := pareto.MinEDP(points)
	if !ok {
		return nil, fmt.Errorf("characterize: no feasible static point at n=%d c=%d", opt.Nodes, opt.Cores)
	}

	// 2. Ungoverned baseline run at the static point, with the per-rank
	// phase trace recorded through PhaseSink (observation only: the
	// baseline is bit-identical to the same run without the sink).
	base := exec.Request{
		Prof:          prof,
		Spec:          spec,
		Class:         opt.Class,
		Cfg:           static.Cfg,
		Seed:          opt.Seed,
		Engine:        opt.Engine,
		Ctx:           opt.Ctx,
		SharedMetrics: opt.SharedMetrics,
		Observe:       opt.Observe,
	}
	prior := map[int]dvfs.PhaseSample{}
	base.PhaseSink = func(_ string, events []trace.Event) {
		for rank, kinds := range trace.Summary(events) {
			prior[rank] = dvfs.PhaseSample{
				Compute:  kinds[trace.Compute],
				MemStall: kinds[trace.MemStall],
				NetWait:  kinds[trace.Network],
			}
		}
	}
	baseRes, err := exec.Run(base)
	if err != nil {
		return nil, fmt.Errorf("characterize: baseline run: %w", err)
	}
	baseT, baseE := baseRes.Time, baseRes.Energy.Total()
	if !(baseT > 0) || !(baseE > 0) {
		return nil, fmt.Errorf("characterize: degenerate baseline run (T=%g s, E=%g J)", baseT, baseE)
	}

	// 3. One governed run per policy, same seed and configuration as the
	// baseline — the governor is the only difference.
	reqs := make([]exec.Request, 0, len(opt.Policies))
	schedules := make([]func() []dvfs.Transition, 0, len(opt.Policies))
	for _, policy := range opt.Policies {
		factory, schedule, err := governorFor(policy, prof, static.Cfg, prior, S, opt.MaxSlowdown)
		if err != nil {
			return nil, err
		}
		req := base
		req.PhaseSink = nil
		req.Governor = factory
		reqs = append(reqs, req)
		schedules = append(schedules, schedule)
	}
	results, err := exec.Sweep(reqs, opt.Workers)
	if err != nil {
		return nil, fmt.Errorf("characterize: governed runs: %w", err)
	}

	adv := &Advice{
		Static:          static,
		BaselineTimeS:   baseT,
		BaselineEnergyJ: baseE,
		Recommended:     dvfs.PolicyFixed,
		Runs:            1 + len(results),
		SimSeconds:      baseT,
		SimEnergyJ:      baseE,
	}
	bestE := math.Inf(1)
	for i, res := range results {
		out := PolicyOutcome{
			Policy:      opt.Policies[i],
			TimeS:       res.Time,
			EnergyJ:     res.Energy.Total(),
			TimeDelta:   res.Time/baseT - 1,
			EnergyDelta: res.Energy.Total()/baseE - 1,
			Schedule:    schedules[i](),
		}
		adv.Policies = append(adv.Policies, out)
		adv.SimSeconds += res.Time
		adv.SimEnergyJ += out.EnergyJ
		if out.TimeDelta <= opt.MaxSlowdown && out.EnergyJ < bestE && out.EnergyJ < baseE {
			bestE = out.EnergyJ
			adv.Recommended = out.Policy
		}
	}
	return adv, nil
}
