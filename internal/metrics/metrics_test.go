package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestHighWater(t *testing.T) {
	var h HighWater
	for _, v := range []uint64{3, 9, 2, 9, 5} {
		h.Observe(v)
	}
	if got := h.Load(); got != 9 {
		t.Fatalf("high water = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
		{1 << 40, HistBuckets - 1}, // overflow absorbs into the last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Fatalf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(300)
	s := h.Snapshot()
	if s[0] != 2 || s[8] != 1 {
		t.Fatalf("snapshot %v", s)
	}
	str := HistString(s)
	if !strings.Contains(str, "[0,2):2") || !strings.Contains(str, "[256,512):1") {
		t.Fatalf("HistString = %q", str)
	}
	if HistString([HistBuckets]uint64{}) != "(empty)" {
		t.Fatal("empty histogram rendering")
	}
}

func TestEngineSnapshotAdd(t *testing.T) {
	a := EngineSnapshot{Events: 10, Handoffs: 4, HeapHighWater: 7, Messages: 2}
	b := EngineSnapshot{Events: 5, Handoffs: 1, HeapHighWater: 3, Messages: 8}
	b.MsgBytes[2] = 8
	a.Add(b)
	if a.Events != 15 || a.Handoffs != 5 || a.Messages != 10 {
		t.Fatalf("sums wrong: %+v", a)
	}
	if a.HeapHighWater != 7 {
		t.Fatalf("high water should take the max, got %d", a.HeapHighWater)
	}
	if a.MsgBytes[2] != 8 {
		t.Fatalf("histogram buckets must sum: %v", a.MsgBytes)
	}
}

func TestEngineSnapshotString(t *testing.T) {
	var e Engine
	e.Events.Add(3)
	e.Messages.Inc()
	e.MsgBytes.Observe(100)
	s := e.Snapshot().String()
	for _, want := range []string{"3 dispatched", "1 messages", "[64,128):1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("snapshot string lacks %q:\n%s", want, s)
		}
	}
}

// An Engine must tolerate concurrent writers: one shared Engine can be
// attached to the kernels of a parallel sweep.
func TestEngineConcurrentWriters(t *testing.T) {
	e := NewEngine()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				e.Events.Inc()
				e.HeapHighWater.Observe(uint64(w*perWorker + i))
				e.MsgBytes.Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	s := e.Snapshot()
	if s.Events != workers*perWorker {
		t.Fatalf("events = %d, want %d", s.Events, workers*perWorker)
	}
	if s.HeapHighWater != workers*perWorker-1 {
		t.Fatalf("high water = %d", s.HeapHighWater)
	}
	var total uint64
	for _, n := range s.MsgBytes {
		total += n
	}
	if total != workers*perWorker {
		t.Fatalf("histogram total = %d", total)
	}
}
