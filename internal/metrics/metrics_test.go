package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
}

func TestHighWater(t *testing.T) {
	var h HighWater
	for _, v := range []uint64{3, 9, 2, 9, 5} {
		h.Observe(v)
	}
	if got := h.Load(); got != 9 {
		t.Fatalf("high water = %d, want 9", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    uint64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
		{1 << 40, HistBuckets - 1}, // overflow absorbs into the last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Fatalf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(300)
	s := h.Snapshot()
	if s[0] != 2 || s[8] != 1 {
		t.Fatalf("snapshot %v", s)
	}
	str := HistString(s)
	if !strings.Contains(str, "[0,2):2") || !strings.Contains(str, "[256,512):1") {
		t.Fatalf("HistString = %q", str)
	}
	if HistString([HistBuckets]uint64{}) != "(empty)" {
		t.Fatal("empty histogram rendering")
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	// 100 observations of 1 → every quantile lives in bucket 0 = [0,2).
	for i := 0; i < 100; i++ {
		h.Observe(1)
	}
	s := h.Snapshot()
	if q := Quantile(s, 0.5); q <= 0 || q >= 2 {
		t.Fatalf("p50 of all-ones = %g, want inside [0,2)", q)
	}
	if Quantile([HistBuckets]uint64{}, 0.5) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}

	// Uniform mass over [256,512) and [512,1024): the median sits at the
	// bucket boundary, p25/p75 at the bucket midpoints.
	var u [HistBuckets]uint64
	u[8], u[9] = 100, 100
	if q := Quantile(u, 0.5); q != 512 {
		t.Fatalf("p50 = %g, want 512 (boundary exact)", q)
	}
	if q := Quantile(u, 0.25); q != 384 {
		t.Fatalf("p25 = %g, want 384 (mid of [256,512))", q)
	}
	if q := Quantile(u, 1.0); q != 1024 {
		t.Fatalf("p100 = %g, want 1024 (top of [512,1024))", q)
	}
	// Quantiles are monotone in q, and out-of-range q clamps.
	prev := 0.0
	for _, q := range []float64{-1, 0, 0.1, 0.5, 0.9, 0.99, 1, 2} {
		v := Quantile(u, q)
		if v < prev {
			t.Fatalf("Quantile not monotone at q=%g: %g < %g", q, v, prev)
		}
		prev = v
	}
	// Overflow bucket stays finite.
	var o [HistBuckets]uint64
	o[HistBuckets-1] = 5
	if q := Quantile(o, 0.99); math.IsInf(q, 0) || q <= 0 {
		t.Fatalf("overflow-bucket quantile = %g, want finite positive", q)
	}
}

func TestEngineSnapshotSub(t *testing.T) {
	a := EngineSnapshot{Events: 100, Handoffs: 40, HeapHighWater: 9, Messages: 12}
	a.MsgBytes[3] = 7
	b := EngineSnapshot{Events: 30, Handoffs: 50, HeapHighWater: 4, Messages: 2}
	b.MsgBytes[3] = 2
	d := a.Sub(b)
	if d.Events != 70 || d.Messages != 10 || d.MsgBytes[3] != 5 {
		t.Fatalf("delta wrong: %+v", d)
	}
	if d.Handoffs != 0 {
		t.Fatalf("crossed counters must saturate at 0, got %d", d.Handoffs)
	}
	if d.HeapHighWater != 9 {
		t.Fatalf("high water keeps the current value, got %d", d.HeapHighWater)
	}
}

func TestEngineSnapshotAdd(t *testing.T) {
	a := EngineSnapshot{Events: 10, Handoffs: 4, HeapHighWater: 7, Messages: 2}
	b := EngineSnapshot{Events: 5, Handoffs: 1, HeapHighWater: 3, Messages: 8}
	b.MsgBytes[2] = 8
	a.Add(b)
	if a.Events != 15 || a.Handoffs != 5 || a.Messages != 10 {
		t.Fatalf("sums wrong: %+v", a)
	}
	if a.HeapHighWater != 7 {
		t.Fatalf("high water should take the max, got %d", a.HeapHighWater)
	}
	if a.MsgBytes[2] != 8 {
		t.Fatalf("histogram buckets must sum: %v", a.MsgBytes)
	}
}

func TestEngineSnapshotString(t *testing.T) {
	var e Engine
	e.Events.Add(3)
	e.Messages.Inc()
	e.MsgBytes.Observe(100)
	s := e.Snapshot().String()
	for _, want := range []string{"3 dispatched", "1 messages", "[64,128):1", "p50=", "p95=", "p99="} {
		if !strings.Contains(s, want) {
			t.Fatalf("snapshot string lacks %q:\n%s", want, s)
		}
	}
}

// An Engine must tolerate concurrent writers: one shared Engine can be
// attached to the kernels of a parallel sweep.
func TestEngineConcurrentWriters(t *testing.T) {
	e := NewEngine()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				e.Events.Inc()
				e.HeapHighWater.Observe(uint64(w*perWorker + i))
				e.MsgBytes.Observe(uint64(i))
			}
		}(w)
	}
	wg.Wait()
	s := e.Snapshot()
	if s.Events != workers*perWorker {
		t.Fatalf("events = %d, want %d", s.Events, workers*perWorker)
	}
	if s.HeapHighWater != workers*perWorker-1 {
		t.Fatalf("high water = %d", s.HeapHighWater)
	}
	var total uint64
	for _, n := range s.MsgBytes {
		total += n
	}
	if total != workers*perWorker {
		t.Fatalf("histogram total = %d", total)
	}
}
