// Package metrics provides the simulator's observability primitives:
// lock-free atomic counters, high-water gauges and power-of-two histograms
// cheap enough to live on the DES hot path, plus the aggregate views the
// run/sweep drivers report. Instrumentation is off by default — a kernel
// with no Engine attached pays one nil check per hook — and never feeds
// back into the simulation, so metrics-on and metrics-off runs are
// bit-for-bit identical.
package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use. Atomic operations make one Engine shareable across the
// kernels of a concurrent sweep.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// HighWater tracks the maximum value ever observed. The zero value is
// ready to use.
type HighWater struct{ v atomic.Uint64 }

// Observe raises the high-water mark to v if v exceeds it.
func (h *HighWater) Observe(v uint64) {
	for {
		cur := h.v.Load()
		if v <= cur || h.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark.
func (h *HighWater) Load() uint64 { return h.v.Load() }

// HistBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with floor(log2(v)) == i (bucket 0 takes 0 and 1),
// and the last bucket absorbs everything at or above 2^(HistBuckets-1).
const HistBuckets = 28

// Histogram is a fixed power-of-two-bucketed histogram of uint64
// observations. The zero value is ready to use.
type Histogram struct{ buckets [HistBuckets]atomic.Uint64 }

// bucketOf maps an observation to its bucket index.
func bucketOf(v uint64) int {
	if v < 2 {
		return 0
	}
	b := bits.Len64(v) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) { h.buckets[bucketOf(v)].Add(1) }

// Snapshot returns the bucket counts.
func (h *Histogram) Snapshot() (out [HistBuckets]uint64) {
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// HistString renders the non-empty buckets of a histogram snapshot as
// "[lo,hi):count" pairs, e.g. "[256,512):12 [512,1024):3".
func HistString(buckets [HistBuckets]uint64) string {
	var parts []string
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = 1 << uint(i)
		}
		if i == HistBuckets-1 {
			parts = append(parts, fmt.Sprintf("[%d,inf):%d", lo, n))
		} else {
			parts = append(parts, fmt.Sprintf("[%d,%d):%d", lo, uint64(1)<<uint(i+1), n))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}

// Engine is the live counter set a DES kernel (and the simulated runtimes
// on top of it) writes while instrumentation is on. One Engine may be
// shared by several kernels — every field is atomic.
type Engine struct {
	// Kernel dispatch accounting. Events = Handoffs + SelfDispatches +
	// SchedulerDispatches: every dispatched event is classified by who
	// performed the dispatch (a parking/exiting process handing control
	// straight to the next process, the process itself via the park fast
	// path, or the Run caller). Lookahead advances bypass the event queue
	// entirely and are counted separately.
	Events              Counter   // events dispatched by the kernel
	Handoffs            Counter   // direct process-to-process handoffs
	SelfDispatches      Counter   // park fast path: next event was the parker's own
	SchedulerDispatches Counter   // dispatches performed by the Run caller
	Lookaheads          Counter   // Advance fast path: clock moved, no event
	HeapHighWater       HighWater // deepest future-event heap observed

	// Pooled task runners (Kernel.Go).
	PoolHits   Counter // tasks served by a parked pooled runner
	PoolSpawns Counter // tasks that had to spawn a fresh runner

	// Simulated runtimes.
	Regions  Counter   // OpenMP parallel regions executed
	Messages Counter   // MPI messages posted
	MsgBytes Histogram // MPI message sizes [B]
}

// NewEngine returns an empty engine counter set.
func NewEngine() *Engine { return &Engine{} }

// Snapshot captures the current counter values.
func (e *Engine) Snapshot() EngineSnapshot {
	return EngineSnapshot{
		Events:              e.Events.Load(),
		Handoffs:            e.Handoffs.Load(),
		SelfDispatches:      e.SelfDispatches.Load(),
		SchedulerDispatches: e.SchedulerDispatches.Load(),
		Lookaheads:          e.Lookaheads.Load(),
		HeapHighWater:       e.HeapHighWater.Load(),
		PoolHits:            e.PoolHits.Load(),
		PoolSpawns:          e.PoolSpawns.Load(),
		Regions:             e.Regions.Load(),
		Messages:            e.Messages.Load(),
		MsgBytes:            e.MsgBytes.Snapshot(),
	}
}

// EngineSnapshot is a plain-value copy of an Engine's counters, suitable
// for aggregation across the runs of a sweep.
type EngineSnapshot struct {
	Events              uint64
	Handoffs            uint64
	SelfDispatches      uint64
	SchedulerDispatches uint64
	Lookaheads          uint64
	HeapHighWater       uint64
	PoolHits            uint64
	PoolSpawns          uint64
	Regions             uint64
	Messages            uint64
	MsgBytes            [HistBuckets]uint64
}

// Add accumulates another snapshot: counters sum, high-water marks take
// the maximum.
func (s *EngineSnapshot) Add(o EngineSnapshot) {
	s.Events += o.Events
	s.Handoffs += o.Handoffs
	s.SelfDispatches += o.SelfDispatches
	s.SchedulerDispatches += o.SchedulerDispatches
	s.Lookaheads += o.Lookaheads
	if o.HeapHighWater > s.HeapHighWater {
		s.HeapHighWater = o.HeapHighWater
	}
	s.PoolHits += o.PoolHits
	s.PoolSpawns += o.PoolSpawns
	s.Regions += o.Regions
	s.Messages += o.Messages
	for i := range s.MsgBytes {
		s.MsgBytes[i] += o.MsgBytes[i]
	}
}

// String renders a compact multi-line human summary.
func (s EngineSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events       %d dispatched (%d handoff, %d self, %d scheduler) + %d lookahead advances\n",
		s.Events, s.Handoffs, s.SelfDispatches, s.SchedulerDispatches, s.Lookaheads)
	fmt.Fprintf(&b, "event heap   %d deep at high water\n", s.HeapHighWater)
	fmt.Fprintf(&b, "task pool    %d reuse hits, %d spawns\n", s.PoolHits, s.PoolSpawns)
	fmt.Fprintf(&b, "omp          %d parallel regions\n", s.Regions)
	fmt.Fprintf(&b, "mpi          %d messages, size histogram %s\n", s.Messages, HistString(s.MsgBytes))
	return b.String()
}

// RankPhases is one rank's virtual-time split across the phases the
// paper's time model separates: useful computation (work plus non-memory
// pipeline stalls — the model's T_CPU numerator), memory stalls, and
// network waits. Times are summed over the rank's cores, in seconds.
type RankPhases struct {
	Rank     int
	Compute  float64 // work + non-memory pipeline stalls [s]
	MemStall float64 // stalled on the memory controller [s]
	NetWait  float64 // blocked on communication [s]
}

// RunMetrics is the observability record of one measurement run.
type RunMetrics struct {
	Engine EngineSnapshot
	Ranks  []RankPhases // per-rank phase time split, rank order
}
