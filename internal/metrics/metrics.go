// Package metrics provides the simulator's observability primitives:
// lock-free atomic counters, high-water gauges and power-of-two histograms
// cheap enough to live on the DES hot path, plus the aggregate views the
// run/sweep drivers report. Instrumentation is off by default — a kernel
// with no Engine attached pays one nil check per hook — and never feeds
// back into the simulation, so metrics-on and metrics-off runs are
// bit-for-bit identical.
package metrics

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use. Atomic operations make one Engine shareable across the
// kernels of a concurrent sweep.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// HighWater tracks the maximum value ever observed. The zero value is
// ready to use.
type HighWater struct{ v atomic.Uint64 }

// Observe raises the high-water mark to v if v exceeds it.
func (h *HighWater) Observe(v uint64) {
	for {
		cur := h.v.Load()
		if v <= cur || h.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Load returns the high-water mark.
func (h *HighWater) Load() uint64 { return h.v.Load() }

// HistBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with floor(log2(v)) == i (bucket 0 takes 0 and 1),
// and the last bucket absorbs everything at or above 2^(HistBuckets-1).
const HistBuckets = 28

// Histogram is a fixed power-of-two-bucketed histogram of uint64
// observations. The zero value is ready to use.
type Histogram struct{ buckets [HistBuckets]atomic.Uint64 }

// bucketOf maps an observation to its bucket index.
func bucketOf(v uint64) int {
	if v < 2 {
		return 0
	}
	b := bits.Len64(v) - 1
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) { h.buckets[bucketOf(v)].Add(1) }

// Snapshot returns the bucket counts.
func (h *Histogram) Snapshot() (out [HistBuckets]uint64) {
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// HistString renders the non-empty buckets of a histogram snapshot as
// "[lo,hi):count" pairs, e.g. "[256,512):12 [512,1024):3".
func HistString(buckets [HistBuckets]uint64) string {
	var parts []string
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		lo := uint64(0)
		if i > 0 {
			lo = 1 << uint(i)
		}
		if i == HistBuckets-1 {
			parts = append(parts, fmt.Sprintf("[%d,inf):%d", lo, n))
		} else {
			parts = append(parts, fmt.Sprintf("[%d,%d):%d", lo, uint64(1)<<uint(i+1), n))
		}
	}
	if len(parts) == 0 {
		return "(empty)"
	}
	return strings.Join(parts, " ")
}

// bucketBounds returns the [lo, hi) value range of bucket i (hi is
// +Inf-like for the overflow bucket, reported as lo*2 so interpolation
// stays finite).
func bucketBounds(i int) (lo, hi float64) {
	if i == 0 {
		return 0, 2
	}
	lo = float64(uint64(1) << uint(i))
	if i == HistBuckets-1 {
		return lo, lo * 2
	}
	return lo, float64(uint64(1) << uint(i+1))
}

// Quantile estimates the q-quantile (q in [0,1]) of a histogram snapshot
// by linear interpolation inside the power-of-two bucket holding the
// target rank. The estimate is exact at bucket boundaries and within a
// factor of two elsewhere — good enough for the p50/p95/p99 summaries the
// CLI and the Prometheus exposition report. Returns 0 for an empty
// histogram; observations in the overflow bucket interpolate inside
// [2^(HistBuckets-1), 2^HistBuckets).
func Quantile(buckets [HistBuckets]uint64, q float64) float64 {
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	var total uint64
	for _, n := range buckets {
		total += n
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	cum := 0.0
	for i, n := range buckets {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo, hi := bucketBounds(i)
			frac := (target - cum) / float64(n)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	_, hi := bucketBounds(HistBuckets - 1)
	return hi
}

// Engine is the live counter set a DES kernel (and the simulated runtimes
// on top of it) writes while instrumentation is on. One Engine may be
// shared by several kernels — every field is atomic.
type Engine struct {
	// Kernel dispatch accounting. Events = Handoffs + SelfDispatches +
	// SchedulerDispatches: every dispatched event is classified by who
	// performed the dispatch (a parking/exiting process handing control
	// straight to the next process, the process itself via the park fast
	// path, or the Run caller). Lookahead advances bypass the event queue
	// entirely and are counted separately.
	Events              Counter   // events dispatched by the kernel
	Handoffs            Counter   // direct process-to-process handoffs
	SelfDispatches      Counter   // park fast path: next event was the parker's own
	SchedulerDispatches Counter   // dispatches performed by the Run caller
	Lookaheads          Counter   // Advance fast path: clock moved, no event
	HeapHighWater       HighWater // deepest future-event heap observed

	// Pooled task runners (Kernel.Go).
	PoolHits   Counter // tasks served by a parked pooled runner
	PoolSpawns Counter // tasks that had to spawn a fresh runner

	// Simulated runtimes.
	Regions  Counter   // OpenMP parallel regions executed
	Messages Counter   // MPI messages posted
	MsgBytes Histogram // MPI message sizes [B]
}

// NewEngine returns an empty engine counter set.
func NewEngine() *Engine { return &Engine{} }

// Snapshot captures the current counter values.
func (e *Engine) Snapshot() EngineSnapshot {
	return EngineSnapshot{
		Events:              e.Events.Load(),
		Handoffs:            e.Handoffs.Load(),
		SelfDispatches:      e.SelfDispatches.Load(),
		SchedulerDispatches: e.SchedulerDispatches.Load(),
		Lookaheads:          e.Lookaheads.Load(),
		HeapHighWater:       e.HeapHighWater.Load(),
		PoolHits:            e.PoolHits.Load(),
		PoolSpawns:          e.PoolSpawns.Load(),
		Regions:             e.Regions.Load(),
		Messages:            e.Messages.Load(),
		MsgBytes:            e.MsgBytes.Snapshot(),
	}
}

// EngineSnapshot is a plain-value copy of an Engine's counters, suitable
// for aggregation across the runs of a sweep.
type EngineSnapshot struct {
	Events              uint64
	Handoffs            uint64
	SelfDispatches      uint64
	SchedulerDispatches uint64
	Lookaheads          uint64
	HeapHighWater       uint64
	PoolHits            uint64
	PoolSpawns          uint64
	Regions             uint64
	Messages            uint64
	MsgBytes            [HistBuckets]uint64
}

// Add accumulates another snapshot: counters sum, high-water marks take
// the maximum.
func (s *EngineSnapshot) Add(o EngineSnapshot) {
	s.Events += o.Events
	s.Handoffs += o.Handoffs
	s.SelfDispatches += o.SelfDispatches
	s.SchedulerDispatches += o.SchedulerDispatches
	s.Lookaheads += o.Lookaheads
	if o.HeapHighWater > s.HeapHighWater {
		s.HeapHighWater = o.HeapHighWater
	}
	s.PoolHits += o.PoolHits
	s.PoolSpawns += o.PoolSpawns
	s.Regions += o.Regions
	s.Messages += o.Messages
	for i := range s.MsgBytes {
		s.MsgBytes[i] += o.MsgBytes[i]
	}
}

// Sub returns the change from an earlier snapshot prev to s: counters and
// histogram buckets subtract (saturating at zero, so a reset or crossed
// snapshots never yield wrapped-around garbage), while HeapHighWater keeps
// s's value — a running maximum has no meaningful difference. The service
// layer uses it to report per-request engine deltas against a shared,
// process-lifetime Engine.
func (s EngineSnapshot) Sub(prev EngineSnapshot) EngineSnapshot {
	sat := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	d := EngineSnapshot{
		Events:              sat(s.Events, prev.Events),
		Handoffs:            sat(s.Handoffs, prev.Handoffs),
		SelfDispatches:      sat(s.SelfDispatches, prev.SelfDispatches),
		SchedulerDispatches: sat(s.SchedulerDispatches, prev.SchedulerDispatches),
		Lookaheads:          sat(s.Lookaheads, prev.Lookaheads),
		HeapHighWater:       s.HeapHighWater,
		PoolHits:            sat(s.PoolHits, prev.PoolHits),
		PoolSpawns:          sat(s.PoolSpawns, prev.PoolSpawns),
		Regions:             sat(s.Regions, prev.Regions),
		Messages:            sat(s.Messages, prev.Messages),
	}
	for i := range s.MsgBytes {
		d.MsgBytes[i] = sat(s.MsgBytes[i], prev.MsgBytes[i])
	}
	return d
}

// String renders a compact multi-line human summary.
func (s EngineSnapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events       %d dispatched (%d handoff, %d self, %d scheduler) + %d lookahead advances\n",
		s.Events, s.Handoffs, s.SelfDispatches, s.SchedulerDispatches, s.Lookaheads)
	fmt.Fprintf(&b, "event heap   %d deep at high water\n", s.HeapHighWater)
	fmt.Fprintf(&b, "task pool    %d reuse hits, %d spawns\n", s.PoolHits, s.PoolSpawns)
	fmt.Fprintf(&b, "omp          %d parallel regions\n", s.Regions)
	fmt.Fprintf(&b, "mpi          %d messages, size p50=%.0fB p95=%.0fB p99=%.0fB, histogram %s\n",
		s.Messages,
		Quantile(s.MsgBytes, 0.50), Quantile(s.MsgBytes, 0.95), Quantile(s.MsgBytes, 0.99),
		HistString(s.MsgBytes))
	return b.String()
}

// RankPhases is one rank's virtual-time split across the phases the
// paper's time model separates: useful computation (work plus non-memory
// pipeline stalls — the model's T_CPU numerator), memory stalls, and
// network waits. Times are summed over the rank's cores, in seconds.
type RankPhases struct {
	Rank     int
	Compute  float64 // work + non-memory pipeline stalls [s]
	MemStall float64 // stalled on the memory controller [s]
	NetWait  float64 // blocked on communication [s]
}

// RunMetrics is the observability record of one measurement run.
type RunMetrics struct {
	Engine EngineSnapshot
	Ranks  []RankPhases // per-rank phase time split, rank order
}
