package queueing

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestMM1KnownValue(t *testing.T) {
	// M/M/1: W = rho*s/(1-rho). lambda=0.5, s=1 -> rho=0.5, W=1.
	got, err := MM1Wait(0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("MM1Wait = %g, want 1", got)
	}
}

func TestMD1HalvesMM1(t *testing.T) {
	mm1, err := MM1Wait(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	md1, err := MD1Wait(0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(md1*2-mm1) > 1e-12 {
		t.Fatalf("MD1 %g should be half of MM1 %g", md1, mm1)
	}
}

func TestMG1ZeroArrivals(t *testing.T) {
	got, err := MG1Wait(0, 1, 1)
	if err != nil || got != 0 {
		t.Fatalf("MG1Wait(0,...) = %g, %v", got, err)
	}
}

func TestMG1Unstable(t *testing.T) {
	_, err := MG1Wait(1.0, 1.0, 1.0)
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("rho=1 gave %v, want ErrUnstable", err)
	}
	_, err = MG1Wait(2.0, 1.0, 1.0)
	if !errors.Is(err, ErrUnstable) {
		t.Fatalf("rho=2 gave %v, want ErrUnstable", err)
	}
}

func TestMG1NegativeParams(t *testing.T) {
	for _, c := range [][3]float64{{-1, 1, 1}, {1, -1, 1}, {1, 1, -1}} {
		if _, err := MG1Wait(c[0], c[1], c[2]); err == nil {
			t.Fatalf("MG1Wait(%v) accepted negative parameter", c)
		}
	}
}

func TestUtilization(t *testing.T) {
	if got := Utilization(0.5, 2); got != 1 {
		t.Fatalf("Utilization = %g, want 1", got)
	}
}

// Property: waiting time increases with load (fixed service distribution).
func TestWaitMonotoneInLoad(t *testing.T) {
	f := func(a, b uint8) bool {
		la := float64(a%90+1) / 100 // rho in (0, 0.9]
		lb := float64(b%90+1) / 100
		if la > lb {
			la, lb = lb, la
		}
		wa, err1 := MD1Wait(la, 1)
		wb, err2 := MD1Wait(lb, 1)
		if err1 != nil || err2 != nil {
			return false
		}
		return wa <= wb+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: more variable service (larger second moment) waits longer.
func TestWaitMonotoneInVariance(t *testing.T) {
	f := func(v uint8) bool {
		s := 1.0
		m2lo := s * s
		m2hi := s * s * (1 + float64(v)/32)
		lo, err1 := MG1Wait(0.5, s, m2lo)
		hi, err2 := MG1Wait(0.5, s, m2hi)
		return err1 == nil && err2 == nil && lo <= hi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClampedMG1Wait(t *testing.T) {
	// Below the clamp it matches MG1Wait.
	w, rho := ClampedMG1Wait(0.5, 1, 1, 0.98)
	want, _ := MG1Wait(0.5, 1, 1)
	if math.Abs(w-want) > 1e-12 || math.Abs(rho-0.5) > 1e-12 {
		t.Fatalf("clamped (%g,%g) != plain %g", w, rho, want)
	}
	// Beyond it the load saturates at maxRho and the wait stays finite.
	w, rho = ClampedMG1Wait(5, 1, 1, 0.98)
	if rho != 0.98 {
		t.Fatalf("rho = %g, want clamp 0.98", rho)
	}
	if math.IsInf(w, 0) || math.IsNaN(w) || w <= 0 {
		t.Fatalf("clamped wait = %g", w)
	}
	// Degenerate inputs.
	if w, rho := ClampedMG1Wait(0, 1, 1, 0.98); w != 0 || rho != 0 {
		t.Fatal("zero arrivals should give zero wait")
	}
}

func TestClampedMG1WaitZeroServiceMean(t *testing.T) {
	// An instantaneous-but-variable server: rho = 0, but the P-K formula
	// still charges lambda*E[Y^2]/2. The old behaviour silently returned
	// (0, 0), hiding real queueing delay.
	w, rho := ClampedMG1Wait(4, 0, 0.5, 0.98)
	if rho != 0 {
		t.Fatalf("rho = %g, want 0", rho)
	}
	if want := 4 * 0.5 / 2.0; math.Abs(w-want) > 1e-12 {
		t.Fatalf("wait = %g, want %g", w, want)
	}
	// Degenerate all-zero service is genuinely waitless.
	if w, rho := ClampedMG1Wait(4, 0, 0, 0.98); w != 0 || rho != 0 {
		t.Fatalf("zero service/moment gave (%g,%g)", w, rho)
	}
}

func TestClampedMG1WaitBadMaxRho(t *testing.T) {
	// maxRho >= 1 would let the P-K denominator reach zero; it must be
	// pulled below 1 so the wait stays finite for any saturating load.
	for _, bad := range []float64{1, 1.5, math.Inf(1), 0, -0.3, math.NaN()} {
		w, rho := ClampedMG1Wait(10, 1, 1, bad)
		if math.IsInf(w, 0) || math.IsNaN(w) || w < 0 {
			t.Fatalf("maxRho=%g: wait = %g", bad, w)
		}
		if !(rho < 1) {
			t.Fatalf("maxRho=%g: clamped rho = %g, want < 1", bad, rho)
		}
	}
	// A valid sub-saturation cap is respected as given.
	if _, rho := ClampedMG1Wait(10, 1, 1, 0.5); rho != 0.5 {
		t.Fatalf("rho = %g, want 0.5", rho)
	}
}

func TestClampedMG1WaitNonFiniteInputs(t *testing.T) {
	cases := [][4]float64{
		{math.NaN(), 1, 1, 0.98},
		{math.Inf(1), 1, 1, 0.98},
		{1, math.NaN(), 1, 0.98},
		{1, math.Inf(1), 1, 0.98},
		{1, 1, math.NaN(), 0.98},
		{1, 1, math.Inf(1), 0.98},
		{-1, 1, 1, 0.98},
		{1, -1, 1, 0.98},
		{1, 1, -1, 0.98},
	}
	for _, c := range cases {
		if w, rho := ClampedMG1Wait(c[0], c[1], c[2], c[3]); w != 0 || rho != 0 {
			t.Fatalf("ClampedMG1Wait(%v) = (%g,%g), want (0,0)", c, w, rho)
		}
	}
}

// Property: the clamped wait is always finite and non-negative, whatever
// the load and cap — the totality guarantee Pareto sweeps rely on.
func TestClampedMG1WaitTotal(t *testing.T) {
	f := func(a, s, m, r uint8) bool {
		lambda := float64(a) / 8
		service := float64(s) / 64
		m2 := float64(m) / 32
		maxRho := float64(r) / 128 // spans [0, ~2): includes invalid caps
		w, rho := ClampedMG1Wait(lambda, service, m2, maxRho)
		return !math.IsNaN(w) && !math.IsInf(w, 0) && w >= 0 && rho >= 0 && rho < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFixedPointConverges(t *testing.T) {
	// x = 1 + x/2 has fixed point 2.
	x, ok := FixedPoint(func(x float64) float64 { return 1 + x/2 }, 0, 1e-12, 200)
	if !ok {
		t.Fatal("did not converge")
	}
	if math.Abs(x-2) > 1e-9 {
		t.Fatalf("fixed point = %g, want 2", x)
	}
}

func TestFixedPointDiverges(t *testing.T) {
	_, ok := FixedPoint(func(x float64) float64 { return 2*x + 1 }, 1, 1e-12, 50)
	if ok {
		t.Fatal("divergent map reported convergence")
	}
}

func TestFixedPointNonFinite(t *testing.T) {
	_, ok := FixedPoint(func(x float64) float64 { return math.NaN() }, 1, 1e-12, 50)
	if ok {
		t.Fatal("NaN map reported convergence")
	}
}
