// Package queueing provides the closed-form queueing results the paper's
// analytical model relies on: M/M/1, M/D/1 and M/G/1 (Pollaczek–Khinchine)
// waiting times, plus a fixed-point helper for models whose arrival rate
// depends on the predicted completion time.
//
// The paper's Eq. (5) writes the mean network waiting time as λ·ŷ²/(1−ρ)
// citing standard LAN star-topology analyses; we implement the textbook
// Pollaczek–Khinchine form W = λ·E[Y²]/(2(1−ρ)), which those analyses
// reduce to, with E[Y²] the second moment of the service time.
package queueing

import (
	"errors"
	"math"
)

// ErrUnstable reports an offered load at or beyond server capacity (ρ >= 1),
// for which no finite stationary waiting time exists.
var ErrUnstable = errors.New("queueing: utilization >= 1 (unstable queue)")

// MG1Wait returns the mean waiting time (time in queue, excluding service)
// of an M/G/1 queue with arrival rate lambda [1/s], mean service time
// meanService [s] and second moment of service time secondMoment [s²],
// using the Pollaczek–Khinchine formula.
func MG1Wait(lambda, meanService, secondMoment float64) (float64, error) {
	if lambda < 0 || meanService < 0 || secondMoment < 0 {
		return 0, errors.New("queueing: negative parameter")
	}
	if lambda == 0 {
		return 0, nil
	}
	rho := lambda * meanService
	if rho >= 1 {
		return 0, ErrUnstable
	}
	return lambda * secondMoment / (2 * (1 - rho)), nil
}

// MD1Wait returns the mean waiting time of an M/D/1 queue (deterministic
// service): the P-K formula with E[Y²] = s².
func MD1Wait(lambda, service float64) (float64, error) {
	return MG1Wait(lambda, service, service*service)
}

// MM1Wait returns the mean waiting time of an M/M/1 queue (exponential
// service): the P-K formula with E[Y²] = 2s².
func MM1Wait(lambda, meanService float64) (float64, error) {
	return MG1Wait(lambda, meanService, 2*meanService*meanService)
}

// Utilization returns ρ = λ·s, the offered load of a single-server queue.
func Utilization(lambda, meanService float64) float64 { return lambda * meanService }

// maxClampRho is the tightest utilisation cap ClampedMG1Wait accepts: a
// maxRho at or above 1 would defeat the clamp's purpose (the P-K
// denominator 1-ρ reaches zero) and is pulled back to this bound.
const maxClampRho = 1 - 1e-9

// ClampedMG1Wait behaves like MG1Wait but caps the utilisation at maxRho
// (e.g. 0.99) instead of failing, which is the pragmatic choice when a
// model sweep crosses into saturation: the predicted wait grows very large
// but stays finite, keeping Pareto sweeps total. It also returns the
// (possibly clamped) utilisation.
//
// Edge cases are defined so the result is always finite and non-negative:
// non-finite or negative inputs, and lambda == 0, yield (0, 0); a
// zero mean service time with a positive second moment is an
// instantaneous-but-variable server, for which ρ = 0 and the P-K formula
// still charges W = λ·E[Y²]/2; a maxRho at or above 1 (or non-positive,
// or NaN) is pulled into (0, 1) so the denominator can never reach zero.
func ClampedMG1Wait(lambda, meanService, secondMoment, maxRho float64) (wait, rho float64) {
	if !finiteNonNeg(lambda) || !finiteNonNeg(meanService) || !finiteNonNeg(secondMoment) {
		return 0, 0
	}
	if lambda == 0 {
		return 0, 0
	}
	if !(maxRho > 0) || maxRho > maxClampRho { // also catches NaN
		maxRho = maxClampRho
	}
	if meanService == 0 {
		return lambda * secondMoment / 2, 0
	}
	rho = lambda * meanService
	if rho > maxRho {
		// Rescale lambda to the clamped load so the formula stays finite.
		lambda = maxRho / meanService
		rho = maxRho
	}
	return lambda * secondMoment / (2 * (1 - rho)), rho
}

// finiteNonNeg reports whether x is a finite, non-negative number.
func finiteNonNeg(x float64) bool {
	return x >= 0 && !math.IsInf(x, 1)
}

// FixedPoint iterates x = f(x) from x0 until successive iterates differ by
// less than tol (relative), or maxIter is reached. It returns the final
// iterate and whether it converged. f must return finite values.
func FixedPoint(f func(float64) float64, x0, tol float64, maxIter int) (float64, bool) {
	x := x0
	for i := 0; i < maxIter; i++ {
		next := f(x)
		if math.IsNaN(next) || math.IsInf(next, 0) {
			return x, false
		}
		denom := math.Abs(x)
		if denom < 1e-12 {
			denom = 1e-12
		}
		if math.Abs(next-x)/denom < tol {
			return next, true
		}
		x = next
	}
	return x, false
}
