package core

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"hybridperf/internal/machine"
)

// ModelVersion names the prediction semantics of the current model
// implementation. Persisted characterisation snapshots record it
// (internal/modelstore) and are invalidated when it no longer matches,
// so a model change can never silently serve predictions computed from
// inputs that mean something else now. Bump it whenever a change makes
// previously characterised inputs produce different predictions —
// equation fixes, unit changes, new required input fields.
const ModelVersion = "eq1-7.fixpoint.v1"

// The JSON schema for persisted model inputs. Map keys (frequencies,
// (c,f) points) become explicit records so the format is stable and
// human-readable.

type baselineJSON struct {
	Cores int     `json:"cores"`
	Freq  float64 `json:"freqHz"`
	W     float64 `json:"workCycles"`
	B     float64 `json:"bStallCycles"`
	M     float64 `json:"memStallCycles"`
	U     float64 `json:"utilization"`
}

type powerLevelJSON struct {
	Freq   float64 `json:"freqHz"`
	PAct   float64 `json:"pActW"`
	PStall float64 `json:"pStallW"`
}

type inputsJSON struct {
	System        string           `json:"system"`
	Program       string           `json:"program"`
	NetTopology   string           `json:"netTopology,omitempty"`
	BaselineIters int              `json:"baselineIters"`
	Baseline      []baselineJSON   `json:"baseline"`
	Comm          *HybridComm      `json:"comm,omitempty"`
	Net           NetModel         `json:"net"`
	PowerLevels   []powerLevelJSON `json:"powerLevels"`
	PMem          float64          `json:"pMemW"`
	PNet          float64          `json:"pNetW"`
	PSysIdle      float64          `json:"pSysIdleW"`
}

// SaveInputs writes characterised model inputs as JSON. Only nil and
// HybridComm communication models are serialisable — the shapes the
// characterisation pipeline produces.
func SaveInputs(w io.Writer, in Inputs) error {
	out := inputsJSON{
		System:        in.System,
		Program:       in.Program,
		NetTopology:   string(in.NetTopology),
		BaselineIters: in.BaselineIters,
		Net:           in.Net,
		PMem:          in.Power.PMem,
		PNet:          in.Power.PNet,
		PSysIdle:      in.Power.PSysIdle,
	}
	switch c := in.Comm.(type) {
	case nil:
	case HybridComm:
		out.Comm = &c
	case *HybridComm:
		out.Comm = c
	default:
		return fmt.Errorf("core: cannot serialise communication model of type %T", in.Comm)
	}
	for cf, bp := range in.Baseline {
		out.Baseline = append(out.Baseline, baselineJSON{
			Cores: cf.Cores, Freq: cf.Freq, W: bp.W, B: bp.B, M: bp.M, U: bp.U,
		})
	}
	sort.Slice(out.Baseline, func(i, j int) bool {
		if out.Baseline[i].Cores != out.Baseline[j].Cores {
			return out.Baseline[i].Cores < out.Baseline[j].Cores
		}
		return out.Baseline[i].Freq < out.Baseline[j].Freq
	})
	for f, pact := range in.Power.PAct {
		out.PowerLevels = append(out.PowerLevels, powerLevelJSON{
			Freq: f, PAct: pact, PStall: in.Power.PStall[f],
		})
	}
	sort.Slice(out.PowerLevels, func(i, j int) bool { return out.PowerLevels[i].Freq < out.PowerLevels[j].Freq })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// LoadInputs reads model inputs previously written by SaveInputs.
func LoadInputs(r io.Reader) (Inputs, error) {
	var raw inputsJSON
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return Inputs{}, fmt.Errorf("core: decoding inputs: %w", err)
	}
	in := Inputs{
		System:        raw.System,
		Program:       raw.Program,
		NetTopology:   machine.Topology(raw.NetTopology),
		BaselineIters: raw.BaselineIters,
		Baseline:      make(map[machine.CF]BaselinePoint, len(raw.Baseline)),
		Net:           raw.Net,
		Power: PowerModel{
			PAct:     make(map[float64]float64, len(raw.PowerLevels)),
			PStall:   make(map[float64]float64, len(raw.PowerLevels)),
			PMem:     raw.PMem,
			PNet:     raw.PNet,
			PSysIdle: raw.PSysIdle,
		},
	}
	if raw.Comm != nil {
		in.Comm = *raw.Comm
	}
	for _, b := range raw.Baseline {
		in.Baseline[machine.CF{Cores: b.Cores, Freq: b.Freq}] = BaselinePoint{W: b.W, B: b.B, M: b.M, U: b.U}
	}
	for _, pl := range raw.PowerLevels {
		in.Power.PAct[pl.Freq] = pl.PAct
		in.Power.PStall[pl.Freq] = pl.PStall
	}
	return in, nil
}
