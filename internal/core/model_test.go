package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"hybridperf/internal/machine"
)

// synthInputs builds a small hand-checkable input set: one baseline point
// at (c=2, f=1 GHz), measured over Ss=10 iterations.
func synthInputs(comm CommModel) Inputs {
	return Inputs{
		System: "synth", Program: "X",
		BaselineIters: 10,
		Baseline: map[machine.CF]BaselinePoint{
			{Cores: 2, Freq: 1e9}: {W: 2e10, B: 2e9, M: 4e9, U: 0.9},
		},
		Comm: comm,
		Net:  NetModel{Overhead: 1e-4, Peak: 1e8},
		Power: PowerModel{
			PAct:     map[float64]float64{1e9: 5},
			PStall:   map[float64]float64{1e9: 3},
			PMem:     2,
			PNet:     1,
			PSysIdle: 10,
		},
	}
}

func mustModel(t *testing.T, in Inputs, opt *Options) *Model {
	t.Helper()
	m, err := New(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustWithOptions(t *testing.T, m *Model, opt Options) *Model {
	t.Helper()
	derived, err := m.WithOptions(opt)
	if err != nil {
		t.Fatal(err)
	}
	return derived
}

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %g, want %g (tol %g)", name, got, want, tol)
	}
}

func TestEq2to4TimeComponents(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	// S=20 doubles the baseline counters (Eq. 4): w=4e10, b=4e9, m=8e9.
	p, err := m.Predict(machine.Config{Nodes: 4, Cores: 2, Freq: 1e9}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 2-3: TCPU = (w+b)/(n c f) = 4.4e10/8e9.
	approx(t, "TCPU", p.TCPU, 5.5, 1e-12)
	// Eq. 7 (clarified): TMem = m/(n c f) = 8e9/8e9.
	approx(t, "TMem", p.TMem, 1.0, 1e-12)
	// No comm model: no network terms.
	if p.TwNet != 0 || p.TsNet != 0 {
		t.Fatalf("network terms %g/%g without a comm model", p.TwNet, p.TsNet)
	}
	approx(t, "T", p.T, 6.5, 1e-12)
	approx(t, "UCR", p.UCR, 5.5/6.5, 1e-12)
}

func TestEq8to12Energy(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	p, err := m.Predict(machine.Config{Nodes: 4, Cores: 2, Freq: 1e9}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Eq. 9: (Pact*TCPU + Pstall*TMem)*c*n = (5*5.5 + 3*1)*2*4.
	approx(t, "ECPU", p.ECPU, 244, 1e-9)
	// Eq. 10: Pmem*TMem*n = 2*1*4.
	approx(t, "EMem", p.EMem, 8, 1e-9)
	// Eq. 11: no communication -> 0.
	approx(t, "ENet", p.ENet, 0, 1e-12)
	// Eq. 12: Pidle*T*n = 10*6.5*4.
	approx(t, "EIdle", p.EIdle, 260, 1e-9)
	approx(t, "E", p.E, 244+8+260, 1e-9)
}

func TestEq6NonOverlappedService(t *testing.T) {
	comm := StaticComm{{Count: 2, Bytes: 1e6}}
	m := mustModel(t, synthInputs(comm), nil)
	p, err := m.Predict(machine.Config{Nodes: 4, Cores: 2, Freq: 1e9}, 20)
	if err != nil {
		t.Fatal(err)
	}
	// eta = 2 msgs/iter * 20 iters = 40; wire = 40*1e6/1e8 = 0.4 s;
	// idle gap = (1-U)*TCPU = 0.1*5.5 = 0.55 s; Eq. 6 takes the max.
	approx(t, "Eta", p.Eta, 40, 1e-12)
	approx(t, "Nu", p.Nu, 1e6, 1e-9)
	approx(t, "TsNet", p.TsNet, 0.55, 1e-12)
	if p.TwNet <= 0 {
		t.Fatal("queueing delay should be positive with 4 nodes sharing the switch")
	}
	if !p.Converged {
		t.Fatal("fixed point did not converge")
	}
	// Hand iteration gives TwNet ~= 0.06 s at rho ~= 0.23.
	if p.TwNet < 0.03 || p.TwNet > 0.12 {
		t.Fatalf("TwNet = %g, expected ~0.06", p.TwNet)
	}
	if p.NetRho < 0.15 || p.NetRho > 0.30 {
		t.Fatalf("NetRho = %g, expected ~0.23", p.NetRho)
	}
	approx(t, "T", p.T, p.TCPU+p.TwNet+p.TsNet+p.TMem, 1e-12)
	// Eq. 11 now bills the NIC: Pnet*(TwNet+TsNet)*n.
	approx(t, "ENet", p.ENet, 1*(p.TwNet+p.TsNet)*4, 1e-12)
}

func TestEq6WireDominates(t *testing.T) {
	// Larger volume: wire term exceeds the idle gap.
	comm := StaticComm{{Count: 2, Bytes: 4e6}}
	m := mustModel(t, synthInputs(comm), nil)
	p, err := m.Predict(machine.Config{Nodes: 2, Cores: 2, Freq: 1e9}, 20)
	if err != nil {
		t.Fatal(err)
	}
	wire := 40 * 4e6 / 1e8
	approx(t, "TsNet", p.TsNet, wire, 1e-12)
}

func TestSingleNodeSkipsNetwork(t *testing.T) {
	comm := StaticComm{{Count: 2, Bytes: 1e6}}
	m := mustModel(t, synthInputs(comm), nil)
	p, err := m.Predict(machine.Config{Nodes: 1, Cores: 2, Freq: 1e9}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if p.TwNet != 0 || p.TsNet != 0 || p.Eta != 0 {
		t.Fatalf("single-node prediction has network terms: %+v", p)
	}
}

func TestLinearScalingInS(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	cfg := machine.Config{Nodes: 1, Cores: 2, Freq: 1e9}
	p1, _ := m.Predict(cfg, 10)
	p4, err := m.Predict(cfg, 40)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "T ratio", p4.T/p1.T, 4, 1e-9)
	approx(t, "E ratio", p4.E/p1.E, 4, 1e-9)
	approx(t, "UCR invariant", p4.UCR, p1.UCR, 1e-12)
}

func TestMissingBaselineError(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	_, err := m.Predict(machine.Config{Nodes: 1, Cores: 3, Freq: 1e9}, 10)
	var miss *MissingBaselineError
	if !errors.As(err, &miss) {
		t.Fatalf("err = %v, want MissingBaselineError", err)
	}
	if miss.Point.Cores != 3 {
		t.Fatalf("error names %v", miss.Point)
	}
	if len(miss.Have) != 1 {
		t.Fatalf("Have lists %d points", len(miss.Have))
	}
	if miss.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestMissingPowerError(t *testing.T) {
	in := synthInputs(nil)
	in.Baseline[machine.CF{Cores: 2, Freq: 2e9}] = BaselinePoint{W: 1e10, B: 1e9, M: 1e9, U: 1}
	m := mustModel(t, in, nil)
	if _, err := m.Predict(machine.Config{Nodes: 1, Cores: 2, Freq: 2e9}, 10); err == nil {
		t.Fatal("missing power characterisation not reported")
	}
}

func TestPredictValidation(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	if _, err := m.Predict(machine.Config{Nodes: 1, Cores: 2, Freq: 1e9}, 0); err == nil {
		t.Error("S=0 accepted")
	}
	if _, err := m.Predict(machine.Config{Nodes: 0, Cores: 2, Freq: 1e9}, 10); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := m.Predict(machine.Config{Nodes: 1, Cores: 2, Freq: -1}, 10); err == nil {
		t.Error("negative frequency accepted")
	}
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Inputs){
		func(in *Inputs) { in.BaselineIters = 0 },
		func(in *Inputs) { in.Baseline = nil },
		func(in *Inputs) {
			in.Baseline = map[machine.CF]BaselinePoint{{Cores: 1, Freq: 1e9}: {W: -1}}
		},
		func(in *Inputs) { in.Net.Peak = 0 },
		func(in *Inputs) { in.Power.PAct = nil },
	}
	for i, mutate := range bad {
		in := synthInputs(nil)
		mutate(&in)
		if _, err := New(in, nil); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestWhatIfMemoryBandwidth(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	cfg := machine.Config{Nodes: 1, Cores: 2, Freq: 1e9}
	base, _ := m.Predict(cfg, 10)
	faster, err := mustWithOptions(t, m, Options{MemBandwidthScale: 2}).Predict(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Sec. V.B: doubling memory bandwidth halves stall cycles.
	approx(t, "TMem", faster.TMem, base.TMem/2, 1e-12)
	if faster.UCR <= base.UCR {
		t.Fatalf("UCR did not improve: %g vs %g", faster.UCR, base.UCR)
	}
	if faster.T >= base.T || faster.E >= base.E {
		t.Fatal("faster memory did not reduce time and energy")
	}
	if m.Options().MemBandwidthScale != 1 {
		t.Fatal("WithOptions mutated the base model")
	}
}

func TestWhatIfNetworkBandwidth(t *testing.T) {
	comm := StaticComm{{Count: 4, Bytes: 4e6}}
	m := mustModel(t, synthInputs(comm), nil)
	cfg := machine.Config{Nodes: 4, Cores: 2, Freq: 1e9}
	base, _ := m.Predict(cfg, 20)
	faster, err := mustWithOptions(t, m, Options{NetBandwidthScale: 4}).Predict(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if faster.TwNet+faster.TsNet >= base.TwNet+base.TsNet {
		t.Fatalf("faster network did not reduce comm time: %g vs %g",
			faster.TwNet+faster.TsNet, base.TwNet+base.TsNet)
	}
}

func TestSaturationSwitchesToClosedLoopBound(t *testing.T) {
	// An absurd message load saturates the switch. The open-loop M/G/1
	// form no longer applies: the model must fall back to the closed-loop
	// switch-capacity bound T = n*eta*y at rho = 1 and stay finite.
	comm := StaticComm{{Count: 5000, Bytes: 1e6}}
	m := mustModel(t, synthInputs(comm), nil)
	cfg := machine.Config{Nodes: 4, Cores: 2, Freq: 1e9}
	p, err := m.Predict(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(p.T, 0) || math.IsNaN(p.T) {
		t.Fatalf("saturated prediction T = %g", p.T)
	}
	if p.NetRho != 1 {
		t.Fatalf("NetRho = %g, want 1 (saturated)", p.NetRho)
	}
	// eta = 5000*20 msgs/rank, y = 1e-4 + 1e6/1e8 = 0.0101 s,
	// bound = 4 * 1e5 * 0.0101 s; base is negligible next to it.
	want := 4 * 5000 * 20 * 0.0101
	if math.Abs(p.T-want)/want > 0.02 {
		t.Fatalf("saturated T = %g, want ~switch capacity bound %g", p.T, want)
	}
}

func TestOptionsDefaults(t *testing.T) {
	m := mustModel(t, synthInputs(nil), &Options{})
	opt := m.Options()
	if opt.MemBandwidthScale != 1 || opt.NetBandwidthScale != 1 {
		t.Fatalf("default scales %+v", opt)
	}
	if opt.MaxNetUtilization != 0.98 {
		t.Fatalf("default clamp %g", opt.MaxNetUtilization)
	}
}

func TestPredictAll(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	cfgs := []machine.Config{
		{Nodes: 1, Cores: 2, Freq: 1e9},
		{Nodes: 2, Cores: 2, Freq: 1e9},
	}
	ps, err := m.PredictAll(cfgs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 2 {
		t.Fatalf("%d predictions", len(ps))
	}
	if ps[1].T >= ps[0].T {
		t.Fatal("two nodes not faster than one for a compute-bound program")
	}
	cfgs = append(cfgs, machine.Config{Nodes: 1, Cores: 7, Freq: 1e9})
	if _, err := m.PredictAll(cfgs, 10); err == nil {
		t.Fatal("PredictAll swallowed a missing-baseline error")
	}
}

func TestInputsAccessor(t *testing.T) {
	in := synthInputs(nil)
	m := mustModel(t, in, nil)
	if got := m.Inputs(); got.System != "synth" || got.BaselineIters != 10 {
		t.Fatalf("Inputs() = %+v", got)
	}
}

// Property: UCR in (0, 1], T > 0, E > 0, and the time breakdown sums to T
// for arbitrary node counts and iteration scalings.
func TestPredictionInvariantsProperty(t *testing.T) {
	comm := StaticComm{{Count: 3, Bytes: 5e5}}
	m := mustModel(t, synthInputs(comm), nil)
	f := func(nRaw uint8, sRaw uint16) bool {
		n := int(nRaw)%512 + 1
		S := int(sRaw)%1000 + 1
		p, err := m.Predict(machine.Config{Nodes: n, Cores: 2, Freq: 1e9}, S)
		if err != nil {
			return false
		}
		sum := p.TCPU + p.TwNet + p.TsNet + p.TMem
		return p.UCR > 0 && p.UCR <= 1 &&
			p.T > 0 && p.E > 0 &&
			math.Abs(sum-p.T) < 1e-9*p.T+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for a communication-free program, more nodes never slow it
// down and never raise per-prediction UCR above 1.
func TestNoCommMoreNodesFasterProperty(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	f := func(aRaw, bRaw uint8) bool {
		na, nb := int(aRaw)%64+1, int(bRaw)%64+1
		if na > nb {
			na, nb = nb, na
		}
		pa, err1 := m.Predict(machine.Config{Nodes: na, Cores: 2, Freq: 1e9}, 10)
		pb, err2 := m.Predict(machine.Config{Nodes: nb, Cores: 2, Freq: 1e9}, 10)
		if err1 != nil || err2 != nil {
			return false
		}
		return pb.T <= pa.T+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStaticCommClasses(t *testing.T) {
	sc := StaticComm{{Count: 1, Bytes: 10}}
	if got := sc.Classes(99); len(got) != 1 || got[0].Bytes != 10 {
		t.Fatalf("Classes = %+v", got)
	}
}
