// Package core implements the paper's primary contribution: the
// measurement-driven analytical model that predicts execution time
// (Eqs 1-7), energy (Eqs 8-12) and the Useful Computation Ratio
// (Eqs 13-14) of a hybrid MPI+OpenMP program for any cluster
// configuration (n, c, f), from baseline measurements taken on a single
// node plus network and power characterisation.
//
// Model structure (Eq. 1):
//
//		T = T_CPU + T_w,net + T_s,net + T_w,mem + T_s,mem
//
//	  - T_CPU: useful cycles (work w plus non-memory stalls b), split across
//	    the n*c cores at frequency f (Eqs 2-4).
//	  - T_w,mem + T_s,mem: memory stall cycles m at the measured (c,f) point,
//	    scaled to the target input size (Eq. 7). We charge m/(n*c*f): the
//	    baseline counter sums stalls over the node's c cores, the contention
//	    level is fixed by c, and per-core traffic shrinks as 1/n (see
//	    DESIGN.md, "Clarified model interpretations").
//	  - T_w,net: M/G/1 waiting at the switch (Eq. 5), using the
//	    Pollaczek-Khinchine mean wait with the message-size mix's service
//	    moments; the arrival rate λ = n*η/T is resolved by fixed-point
//	    iteration since it depends on the predicted T itself.
//	  - T_s,net: non-overlapped service time, Eq. 6:
//	    max((1-U)*T_CPU, η*ν/B).
package core

import (
	"fmt"
	"math"
	"sort"

	"hybridperf/internal/machine"
	"hybridperf/internal/queueing"
)

// BaselinePoint holds the counters of one baseline execution of the small
// input Ps on a single node at a (c,f) point: total work cycles ws, total
// non-memory stall cycles bs, total memory stall cycles ms (all summed
// over the c cores) and CPU utilisation Us.
type BaselinePoint struct {
	W float64 // ws: work cycles
	B float64 // bs: non-memory stall cycles
	M float64 // ms: memory-related stall cycles
	U float64 // Us: CPU utilisation in [0,1]
}

// MsgClass is one class of messages a rank sends per iteration (e.g. halo
// exchanges of one size, allreduce rounds of another).
//
// Sync marks globally synchronised rounds (allreduce, barrier): every rank
// posts simultaneously and blocks until the round completes, so each round
// puts a burst of n messages on the switch and its full drain time n*y
// lands on the critical path. Poisson-arrival queueing (Eq. 5) does not
// describe such bursts; the model charges sync classes their exact drain
// instead. Asynchronous classes (halo exchange overlapped with compute)
// keep the paper's Eq. 5/6 treatment.
type MsgClass struct {
	Count int     // messages per rank per iteration
	Bytes float64 // volume per message [B]
	Sync  bool    // globally synchronised round (collective)
}

// CommModel yields the per-rank, per-iteration message mix for an n-node
// execution — the communication characteristics η and ν that mpiP
// measures, extended over n by the program's decomposition structure
// ("inferred from l and τ", paper Sec. III.E.1).
type CommModel interface {
	Classes(n int) []MsgClass
}

// StaticComm is a CommModel with a fixed message mix per node count,
// useful for tests and for programs with n-independent communication.
type StaticComm []MsgClass

// Classes implements CommModel.
func (s StaticComm) Classes(int) []MsgClass { return s }

// NetModel is the network characterisation NetPIPE produces (Figure 3):
// per-message service time y(s) = Overhead + s/Peak, i.e. a fixed
// software/switch overhead plus wire time at the achievable bandwidth.
type NetModel struct {
	Overhead float64 // s, per message (includes size-saturation intercept)
	Peak     float64 // B/s, achievable peak throughput (~0.9 x link rate)
}

// ServiceTime returns the switch service time for one message of the
// given size.
func (nm NetModel) ServiceTime(bytes float64) float64 {
	return nm.Overhead + bytes/nm.Peak
}

// PowerModel carries the power characterisation (Sec. III.E.3): per-core
// active and stall power by DVFS level from micro-benchmarks, plus memory,
// NIC and system idle power.
type PowerModel struct {
	PAct     map[float64]float64 // f [Hz] -> W per active core
	PStall   map[float64]float64 // f [Hz] -> W per memory-stalled core
	PMem     float64             // W while the memory subsystem is servicing
	PNet     float64             // W while the NIC is active
	PSysIdle float64             // W per idle node (everything else)
}

// Inputs bundles everything the model consumes, all obtained from
// measurement (baseline executions, mpiP, NetPIPE, power benches).
type Inputs struct {
	System  string // profile name, documentation only
	Program string

	BaselineIters int // Ss: iterations of the baseline input Ps
	Baseline      map[machine.CF]BaselinePoint

	Comm  CommModel // nil for communication-free programs
	Net   NetModel
	Power PowerModel

	// NetTopology selects the contention model of the interconnect the
	// measurements came from: machine.TopologyShared (the paper's single
	// M/G/1 server; default) or machine.TopologyCrossbar (per-node ports,
	// contention only at shared endpoints). The choice scales the
	// arrival rate, the synchronised-round drains and the saturation
	// bound by the number of nodes sharing a server (n vs 1).
	NetTopology machine.Topology
}

// Options are the model's analysis knobs, including the what-if scalings
// of Sec. V.B (e.g. doubling memory bandwidth halves stall cycles).
type Options struct {
	MemBandwidthScale float64 // >1 = faster memory; scales m by 1/x (default 1)
	NetBandwidthScale float64 // >1 = faster network; scales Peak by x (default 1)
	MaxNetUtilization float64 // ρ clamp for saturated sweeps (default 0.98)
}

func (o *Options) fill() {
	if o.MemBandwidthScale <= 0 {
		o.MemBandwidthScale = 1
	}
	if o.NetBandwidthScale <= 0 {
		o.NetBandwidthScale = 1
	}
	if o.MaxNetUtilization <= 0 || o.MaxNetUtilization >= 1 {
		o.MaxNetUtilization = 0.98
	}
}

// Model predicts time-energy performance from measured inputs.
type Model struct {
	in  Inputs
	opt Options
}

// New validates the inputs and returns a ready model. opt may be nil for
// defaults.
func New(in Inputs, opt *Options) (*Model, error) {
	if in.BaselineIters < 1 {
		return nil, fmt.Errorf("core: BaselineIters must be >= 1")
	}
	if len(in.Baseline) == 0 {
		return nil, fmt.Errorf("core: no baseline points")
	}
	for cf, bp := range in.Baseline {
		if bp.W < 0 || bp.B < 0 || bp.M < 0 || bp.U < 0 || bp.U > 1.000001 {
			return nil, fmt.Errorf("core: invalid baseline point at %v: %+v", cf, bp)
		}
	}
	if in.Net.Peak <= 0 {
		return nil, fmt.Errorf("core: network peak bandwidth must be positive")
	}
	if in.Power.PAct == nil || in.Power.PStall == nil {
		return nil, fmt.Errorf("core: power model missing PAct/PStall tables")
	}
	var o Options
	if opt != nil {
		o = *opt
	}
	o.fill()
	return &Model{in: in, opt: o}, nil
}

// Inputs returns a copy of the model's inputs.
func (m *Model) Inputs() Inputs { return m.in }

// Options returns the model's effective options.
func (m *Model) Options() Options { return m.opt }

// WithOptions derives a model sharing the same inputs under different
// analysis options (the Sec. V.B what-if mechanism).
func (m *Model) WithOptions(opt Options) *Model {
	opt.fill()
	return &Model{in: m.in, opt: opt}
}

// MissingBaselineError reports a prediction request at a (c,f) point that
// was never characterised.
type MissingBaselineError struct {
	Point machine.CF
	Have  []machine.CF
}

func (e *MissingBaselineError) Error() string {
	return fmt.Sprintf("core: no baseline measurement at %v (have %d points)", e.Point, len(e.Have))
}

// Prediction is the model output for one configuration: the Eq. (1) time
// breakdown, the Eq. (8) energy breakdown (cluster totals), and the UCR.
type Prediction struct {
	Cfg machine.Config
	S   int // target iteration count

	// Time components [s]; T = TCPU + TwNet + TsNet + TMem.
	T     float64
	TCPU  float64 // Eq. 2: useful (overlapped) computation
	TwNet float64 // Eq. 5: network queueing delay
	TsNet float64 // Eq. 6: non-overlapped network service
	TMem  float64 // Eq. 7: memory waiting + service (Tw,mem + Ts,mem)

	// Energy components [J], cluster totals (per-node values x n).
	E     float64
	ECPU  float64 // Eq. 9
	EMem  float64 // Eq. 10
	ENet  float64 // Eq. 11
	EIdle float64 // Eq. 12

	UCR float64 // Eq. 13: TCPU / T

	// Communication diagnostics.
	Eta       float64 // η: messages per rank over the run
	Nu        float64 // ν: mean message volume [B]
	NetRho    float64 // switch utilisation at the fixed point
	Converged bool    // fixed-point iteration converged
}

// Predict evaluates the model at cfg for a target input of S iterations.
func (m *Model) Predict(cfg machine.Config, S int) (Prediction, error) {
	if S < 1 {
		return Prediction{}, fmt.Errorf("core: S must be >= 1")
	}
	if cfg.Nodes < 1 || cfg.Cores < 1 || cfg.Freq <= 0 {
		return Prediction{}, fmt.Errorf("core: invalid config %v", cfg)
	}
	cf := machine.CF{Cores: cfg.Cores, Freq: cfg.Freq}
	bp, ok := m.in.Baseline[cf]
	if !ok {
		var have []machine.CF
		for k := range m.in.Baseline {
			have = append(have, k)
		}
		sort.Slice(have, func(i, j int) bool {
			if have[i].Cores != have[j].Cores {
				return have[i].Cores < have[j].Cores
			}
			return have[i].Freq < have[j].Freq
		})
		return Prediction{}, &MissingBaselineError{Point: cf, Have: have}
	}

	scale := float64(S) / float64(m.in.BaselineIters)
	w := bp.W * scale
	b := bp.B * scale
	mem := bp.M * scale / m.opt.MemBandwidthScale

	ncf := float64(cfg.Nodes) * float64(cfg.Cores) * cfg.Freq
	p := Prediction{Cfg: cfg, S: S, Converged: true}
	p.TCPU = (w + b) / ncf // Eqs 2-4
	p.TMem = mem / ncf     // Eq. 7 (clarified scaling)

	if cfg.Nodes > 1 && m.in.Comm != nil {
		m.predictNetwork(&p, bp.U, S)
	}
	p.T = p.TCPU + p.TwNet + p.TsNet + p.TMem
	if p.T > 0 {
		p.UCR = p.TCPU / p.T // Eq. 13
	}

	pact, okA := m.in.Power.PAct[cfg.Freq]
	pstall, okS := m.in.Power.PStall[cfg.Freq]
	if !okA || !okS {
		return Prediction{}, fmt.Errorf("core: no power characterisation at %.2f GHz", cfg.GHz())
	}
	nodes := float64(cfg.Nodes)
	cores := float64(cfg.Cores)
	p.ECPU = (pact*p.TCPU + pstall*p.TMem) * cores * nodes // Eq. 9
	p.EMem = m.in.Power.PMem * p.TMem * nodes              // Eq. 10
	p.ENet = m.in.Power.PNet * (p.TwNet + p.TsNet) * nodes // Eq. 11
	p.EIdle = m.in.Power.PSysIdle * p.T * nodes            // Eq. 12
	p.E = p.ECPU + p.EMem + p.ENet + p.EIdle               // Eq. 8
	return p, nil
}

// predictNetwork fills the communication terms of p: the per-run message
// mix, Eq. 6's non-overlapped service and Eq. 5's queueing delay at the
// fixed point of λ(T).
func (m *Model) predictNetwork(p *Prediction, U float64, S int) {
	classes := m.in.Comm.Classes(p.Cfg.Nodes)
	if len(classes) == 0 {
		return
	}
	peak := m.in.Net.Peak * m.opt.NetBandwidthScale
	net := NetModel{Overhead: m.in.Net.Overhead, Peak: peak}

	n := float64(p.Cfg.Nodes)
	// portShare is how many nodes' traffic serialises at one server: all
	// n on the shared medium, only this node's on a crossbar port.
	portShare := n
	if m.in.NetTopology == machine.TopologyCrossbar {
		portShare = 1
	}
	var msgsPerIter, bytesPerIter float64 // all classes (η, ν diagnostics)
	var asyncMsgs, yMean, y2 float64      // async moments for Eq. 5
	var wirePerIter float64               // async wire time for Eq. 6
	var syncPerIter float64               // sync round drains per iteration
	var busyPerIter float64               // switch busy time per iteration
	for _, mc := range classes {
		cnt := float64(mc.Count)
		y := net.ServiceTime(mc.Bytes)
		msgsPerIter += cnt
		bytesPerIter += cnt * mc.Bytes
		busyPerIter += cnt * y * portShare
		if mc.Sync {
			// Each synchronised round bursts portShare messages onto the
			// contended server and blocks every rank until they drain:
			// portShare*y per round on the critical path, exactly.
			syncPerIter += cnt * y * portShare
			continue
		}
		asyncMsgs += cnt
		yMean += cnt * y
		y2 += cnt * y * y
		wirePerIter += cnt * mc.Bytes / peak
	}
	if msgsPerIter == 0 {
		return
	}
	S64 := float64(S)
	eta := msgsPerIter * S64 // η per rank over the run
	p.Eta = eta
	p.Nu = bytesPerIter / msgsPerIter

	// Eq. 6: asynchronous communication overlaps with the CPU idle gap
	// observed at baseline; the non-overlapped service is the larger of
	// the idle gap and the wire time. Synchronised rounds cannot overlap
	// — their drain is added in full.
	idleGap := (1 - U) * p.TCPU
	p.TsNet = math.Max(idleGap, wirePerIter*S64) + syncPerIter*S64

	base := p.TCPU + p.TMem + p.TsNet
	// The switch must be busy busyPerIter*S in total; a closed system
	// cannot finish sooner (self-throttling bound).
	satBound := busyPerIter * S64

	if asyncMsgs == 0 {
		// Only synchronised traffic: the drain is already exact.
		if satBound > base {
			p.TwNet = satBound - base
			p.NetRho = 1
		} else if base > 0 {
			p.NetRho = satBound / base
		}
		return
	}
	yMean /= asyncMsgs
	y2 /= asyncMsgs
	etaAsync := asyncMsgs * S64

	// Eq. 5 with λ = n*η/T resolved by fixed-point iteration: every rank
	// contributes its asynchronous messages to the shared switch.
	f := func(t float64) float64 {
		if t <= 0 {
			t = base
		}
		lambda := portShare * etaAsync / t
		waitPerMsg, _ := queueing.ClampedMG1Wait(lambda, yMean, y2, m.opt.MaxNetUtilization)
		return base + etaAsync*waitPerMsg
	}
	t, ok := queueing.FixedPoint(f, base, 1e-10, 200)
	p.Converged = ok
	lambda := portShare * etaAsync / t
	rawRho := queueing.Utilization(lambda, yMean)
	if rawRho > m.opt.MaxNetUtilization {
		// Saturated regime: the open-loop M/G/1 form no longer applies —
		// the run is bounded by the switch's total busy time and
		// λ = n*η/T settles at ρ = 1.
		total := math.Max(base, satBound)
		p.TwNet = total - base
		p.NetRho = 1
		return
	}
	waitPerMsg, rho := queueing.ClampedMG1Wait(lambda, yMean, y2, m.opt.MaxNetUtilization)
	p.TwNet = etaAsync * waitPerMsg
	if base+p.TwNet < satBound {
		p.TwNet = satBound - base
	}
	p.NetRho = rho
}

// PredictAll evaluates the model over a configuration list, skipping none:
// any per-configuration error aborts (they indicate missing inputs).
func (m *Model) PredictAll(cfgs []machine.Config, S int) ([]Prediction, error) {
	out := make([]Prediction, 0, len(cfgs))
	for _, cfg := range cfgs {
		p, err := m.Predict(cfg, S)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
