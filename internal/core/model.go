// Package core implements the paper's primary contribution: the
// measurement-driven analytical model that predicts execution time
// (Eqs 1-7), energy (Eqs 8-12) and the Useful Computation Ratio
// (Eqs 13-14) of a hybrid MPI+OpenMP program for any cluster
// configuration (n, c, f), from baseline measurements taken on a single
// node plus network and power characterisation.
//
// Model structure (Eq. 1):
//
//		T = T_CPU + T_w,net + T_s,net + T_w,mem + T_s,mem
//
//	  - T_CPU: useful cycles (work w plus non-memory stalls b), split across
//	    the n*c cores at frequency f (Eqs 2-4).
//	  - T_w,mem + T_s,mem: memory stall cycles m at the measured (c,f) point,
//	    scaled to the target input size (Eq. 7). We charge m/(n*c*f): the
//	    baseline counter sums stalls over the node's c cores, the contention
//	    level is fixed by c, and per-core traffic shrinks as 1/n (see
//	    DESIGN.md, "Clarified model interpretations").
//	  - T_w,net: M/G/1 waiting at the switch (Eq. 5), using the
//	    Pollaczek-Khinchine mean wait with the message-size mix's service
//	    moments; the arrival rate λ = n*η/T is resolved by fixed-point
//	    iteration since it depends on the predicted T itself.
//	  - T_s,net: non-overlapped service time, Eq. 6:
//	    max((1-U)*T_CPU, η*ν/B).
package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"hybridperf/internal/machine"
	"hybridperf/internal/queueing"
)

// BaselinePoint holds the counters of one baseline execution of the small
// input Ps on a single node at a (c,f) point: total work cycles ws, total
// non-memory stall cycles bs, total memory stall cycles ms (all summed
// over the c cores) and CPU utilisation Us.
type BaselinePoint struct {
	W float64 // ws: work cycles
	B float64 // bs: non-memory stall cycles
	M float64 // ms: memory-related stall cycles
	U float64 // Us: CPU utilisation in [0,1]
}

// MsgClass is one class of messages a rank sends per iteration (e.g. halo
// exchanges of one size, allreduce rounds of another).
//
// Sync marks globally synchronised rounds (allreduce, barrier): every rank
// posts simultaneously and blocks until the round completes, so each round
// puts a burst of n messages on the switch and its full drain time n*y
// lands on the critical path. Poisson-arrival queueing (Eq. 5) does not
// describe such bursts; the model charges sync classes their exact drain
// instead. Asynchronous classes (halo exchange overlapped with compute)
// keep the paper's Eq. 5/6 treatment.
type MsgClass struct {
	Count int     // messages per rank per iteration
	Bytes float64 // volume per message [B]
	Sync  bool    // globally synchronised round (collective)
}

// CommModel yields the per-rank, per-iteration message mix for an n-node
// execution — the communication characteristics η and ν that mpiP
// measures, extended over n by the program's decomposition structure
// ("inferred from l and τ", paper Sec. III.E.1).
//
// Classes must be a pure function of n: the model memoises the reduced
// communication moments per node count, so an implementation that varies
// its answer between calls would produce stale predictions.
type CommModel interface {
	Classes(n int) []MsgClass
}

// StaticComm is a CommModel with a fixed message mix per node count,
// useful for tests and for programs with n-independent communication.
type StaticComm []MsgClass

// Classes implements CommModel.
func (s StaticComm) Classes(int) []MsgClass { return s }

// NetModel is the network characterisation NetPIPE produces (Figure 3):
// per-message service time y(s) = Overhead + s/Peak, i.e. a fixed
// software/switch overhead plus wire time at the achievable bandwidth.
type NetModel struct {
	Overhead float64 // s, per message (includes size-saturation intercept)
	Peak     float64 // B/s, achievable peak throughput (~0.9 x link rate)
}

// ServiceTime returns the switch service time for one message of the
// given size.
func (nm NetModel) ServiceTime(bytes float64) float64 {
	return nm.Overhead + bytes/nm.Peak
}

// PowerModel carries the power characterisation (Sec. III.E.3): per-core
// active and stall power by DVFS level from micro-benchmarks, plus memory,
// NIC and system idle power.
type PowerModel struct {
	PAct     map[float64]float64 // f [Hz] -> W per active core
	PStall   map[float64]float64 // f [Hz] -> W per memory-stalled core
	PMem     float64             // W while the memory subsystem is servicing
	PNet     float64             // W while the NIC is active
	PSysIdle float64             // W per idle node (everything else)
}

// Inputs bundles everything the model consumes, all obtained from
// measurement (baseline executions, mpiP, NetPIPE, power benches).
type Inputs struct {
	System  string // profile name, documentation only
	Program string

	BaselineIters int // Ss: iterations of the baseline input Ps
	Baseline      map[machine.CF]BaselinePoint

	Comm  CommModel // nil for communication-free programs
	Net   NetModel
	Power PowerModel

	// NetTopology selects the contention model of the interconnect the
	// measurements came from: machine.TopologyShared (the paper's single
	// M/G/1 server; default) or machine.TopologyCrossbar (per-node ports,
	// contention only at shared endpoints). The choice scales the
	// arrival rate, the synchronised-round drains and the saturation
	// bound by the number of nodes sharing a server (n vs 1).
	NetTopology machine.Topology
}

// Options are the model's analysis knobs, including the what-if scalings
// of Sec. V.B (e.g. doubling memory bandwidth halves stall cycles).
type Options struct {
	MemBandwidthScale float64 // >1 = faster memory; scales m by 1/x (default 1)
	NetBandwidthScale float64 // >1 = faster network; scales Peak by x (default 1)
	MaxNetUtilization float64 // ρ clamp for saturated sweeps, in (0,1) (default 0.98)
}

// fill replaces unset (<= 0) knobs with their defaults. Out-of-range
// values above the defaults are not coerced — validate rejects them.
func (o *Options) fill() {
	if o.MemBandwidthScale <= 0 {
		o.MemBandwidthScale = 1
	}
	if o.NetBandwidthScale <= 0 {
		o.NetBandwidthScale = 1
	}
	if o.MaxNetUtilization <= 0 {
		o.MaxNetUtilization = 0.98
	}
}

// validate rejects filled options outside their mathematical domain: a
// utilisation clamp at or above 1 would make the M/G/1 waiting time
// (Eq. 5) divide by zero or go negative.
func (o Options) validate() error {
	if o.MaxNetUtilization >= 1 {
		return fmt.Errorf("core: MaxNetUtilization must be in (0,1), got %g", o.MaxNetUtilization)
	}
	return nil
}

// cfPoint is the per-(c,f) lookup entry: the baseline counters joined
// with the power characterisation at f, resolved once at model build so
// Predict does a single table access instead of three map lookups.
type cfPoint struct {
	freq     float64
	bp       BaselinePoint
	pAct     float64
	pStall   float64
	hasPower bool
}

// Model predicts time-energy performance from measured inputs.
//
// A Model is immutable after construction and safe for concurrent use:
// Predict may be called from many goroutines (the sweep engine in
// internal/pareto does exactly that). The per-node-count communication
// moments are memoised behind an atomically swapped slice; derived models
// (WithOptions) start with a fresh memo since NetBandwidthScale feeds the
// moments.
type Model struct {
	in  Inputs
	opt Options

	// byCores is the baseline ⋈ power table, indexed by core count; the
	// few DVFS levels per count are scanned by exact frequency match.
	// Float-keyed map lookups dominated sweep profiles; this dense form
	// reduces the per-Predict lookup to an index and a short scan.
	byCores [][]cfPoint
	haveCFs []machine.CF // sorted baseline points, for error reports

	// moments memoises reduceClasses by node count: a copy-on-write slice
	// (index n) swapped via CAS, so the sweep's hot path is one atomic
	// load and an index instead of a map operation.
	moments atomic.Pointer[[]momentSlot]
}

// momentSlot distinguishes "not yet computed" from a computed nil (the
// program exchanges no messages at that node count).
type momentSlot struct {
	computed bool
	cm       *commMoments
}

// New validates the inputs and returns a ready model. opt may be nil for
// defaults. The baseline and power tables are snapshot at construction;
// later mutation of the input maps does not affect the model.
func New(in Inputs, opt *Options) (*Model, error) {
	if in.BaselineIters < 1 {
		return nil, fmt.Errorf("core: BaselineIters must be >= 1")
	}
	if len(in.Baseline) == 0 {
		return nil, fmt.Errorf("core: no baseline points")
	}
	for cf, bp := range in.Baseline {
		if bp.W < 0 || bp.B < 0 || bp.M < 0 || bp.U < 0 || bp.U > 1.000001 {
			return nil, fmt.Errorf("core: invalid baseline point at %v: %+v", cf, bp)
		}
	}
	if in.Net.Peak <= 0 {
		return nil, fmt.Errorf("core: network peak bandwidth must be positive")
	}
	if in.Power.PAct == nil || in.Power.PStall == nil {
		return nil, fmt.Errorf("core: power model missing PAct/PStall tables")
	}
	var o Options
	if opt != nil {
		o = *opt
	}
	o.fill()
	if err := o.validate(); err != nil {
		return nil, err
	}
	return build(in, o), nil
}

// build assembles a model from validated inputs and filled options,
// precomputing the per-(c,f) lookup table and the sorted baseline key
// list. The moments memo starts empty.
func build(in Inputs, opt Options) *Model {
	m := &Model{in: in, opt: opt}
	maxCores := 0
	for cf := range in.Baseline {
		if cf.Cores > maxCores {
			maxCores = cf.Cores
		}
	}
	m.byCores = make([][]cfPoint, maxCores+1)
	m.haveCFs = make([]machine.CF, 0, len(in.Baseline))
	for cf, bp := range in.Baseline {
		pact, okA := in.Power.PAct[cf.Freq]
		pstall, okS := in.Power.PStall[cf.Freq]
		m.byCores[cf.Cores] = append(m.byCores[cf.Cores], cfPoint{
			freq: cf.Freq, bp: bp, pAct: pact, pStall: pstall, hasPower: okA && okS,
		})
		m.haveCFs = append(m.haveCFs, cf)
	}
	for _, pts := range m.byCores {
		sort.Slice(pts, func(i, j int) bool { return pts[i].freq < pts[j].freq })
	}
	sort.Slice(m.haveCFs, func(i, j int) bool {
		if m.haveCFs[i].Cores != m.haveCFs[j].Cores {
			return m.haveCFs[i].Cores < m.haveCFs[j].Cores
		}
		return m.haveCFs[i].Freq < m.haveCFs[j].Freq
	})
	return m
}

// lookup resolves the (cores, freq) table entry, nil when the point was
// never characterised.
func (m *Model) lookup(cores int, freq float64) *cfPoint {
	if cores >= len(m.byCores) {
		return nil
	}
	pts := m.byCores[cores]
	for i := range pts {
		if pts[i].freq == freq {
			return &pts[i]
		}
	}
	return nil
}

// Inputs returns a copy of the model's inputs.
func (m *Model) Inputs() Inputs { return m.in }

// Options returns the model's effective options.
func (m *Model) Options() Options { return m.opt }

// WithOptions derives a model sharing the same inputs under different
// analysis options (the Sec. V.B what-if mechanism). It rejects options
// outside their domain (e.g. MaxNetUtilization >= 1). The derived model
// has its own communication-moment memo, since NetBandwidthScale changes
// the per-message service times the moments are built from.
func (m *Model) WithOptions(opt Options) (*Model, error) {
	opt.fill()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	return build(m.in, opt), nil
}

// MissingBaselineError reports a prediction request at a (c,f) point that
// was never characterised.
type MissingBaselineError struct {
	Point machine.CF
	Have  []machine.CF
}

func (e *MissingBaselineError) Error() string {
	return fmt.Sprintf("core: no baseline measurement at %v (have %d points)", e.Point, len(e.Have))
}

// Prediction is the model output for one configuration: the Eq. (1) time
// breakdown, the Eq. (8) energy breakdown (cluster totals), and the UCR.
type Prediction struct {
	Cfg machine.Config
	S   int // target iteration count

	// Time components [s]; T = TCPU + TwNet + TsNet + TMem.
	T     float64
	TCPU  float64 // Eq. 2: useful (overlapped) computation
	TwNet float64 // Eq. 5: network queueing delay
	TsNet float64 // Eq. 6: non-overlapped network service
	TMem  float64 // Eq. 7: memory waiting + service (Tw,mem + Ts,mem)

	// Energy components [J], cluster totals (per-node values x n).
	E     float64
	ECPU  float64 // Eq. 9
	EMem  float64 // Eq. 10
	ENet  float64 // Eq. 11
	EIdle float64 // Eq. 12

	UCR float64 // Eq. 13: TCPU / T

	// Communication diagnostics.
	Eta       float64 // η: messages per rank over the run
	Nu        float64 // ν: mean message volume [B]
	NetRho    float64 // switch utilisation at the fixed point
	Converged bool    // fixed-point iteration converged
}

// Predict evaluates the model at cfg for a target input of S iterations.
func (m *Model) Predict(cfg machine.Config, S int) (Prediction, error) {
	var p Prediction
	if err := m.PredictInto(&p, cfg, S); err != nil {
		return Prediction{}, err
	}
	return p, nil
}

// PredictInto evaluates the model at cfg directly into *dst, which is
// fully overwritten (zeroed on error). It is the allocation- and
// copy-free core of the sweep engine: internal/pareto writes each result
// straight into its output slice instead of moving ~200-byte Prediction
// values through return-value copies.
func (m *Model) PredictInto(dst *Prediction, cfg machine.Config, S int) error {
	*dst = Prediction{}
	if S < 1 {
		return fmt.Errorf("core: S must be >= 1")
	}
	if cfg.Nodes < 1 || cfg.Cores < 1 || cfg.Freq <= 0 {
		return fmt.Errorf("core: invalid config %v", cfg)
	}
	pt := m.lookup(cfg.Cores, cfg.Freq)
	if pt == nil {
		return &MissingBaselineError{Point: machine.CF{Cores: cfg.Cores, Freq: cfg.Freq}, Have: m.haveCFs}
	}

	scale := float64(S) / float64(m.in.BaselineIters)
	w := pt.bp.W * scale
	b := pt.bp.B * scale
	mem := pt.bp.M * scale / m.opt.MemBandwidthScale

	ncf := float64(cfg.Nodes) * float64(cfg.Cores) * cfg.Freq
	dst.Cfg = cfg
	dst.S = S
	dst.Converged = true
	dst.TCPU = (w + b) / ncf // Eqs 2-4
	dst.TMem = mem / ncf     // Eq. 7 (clarified scaling)

	if cfg.Nodes > 1 && m.in.Comm != nil {
		m.predictNetwork(dst, pt.bp.U, S)
	}
	dst.T = dst.TCPU + dst.TwNet + dst.TsNet + dst.TMem
	if dst.T > 0 {
		dst.UCR = dst.TCPU / dst.T // Eq. 13
	}

	if !pt.hasPower {
		*dst = Prediction{}
		return fmt.Errorf("core: no power characterisation at %.2f GHz", cfg.GHz())
	}
	nodes := float64(cfg.Nodes)
	cores := float64(cfg.Cores)
	dst.ECPU = (pt.pAct*dst.TCPU + pt.pStall*dst.TMem) * cores * nodes // Eq. 9
	dst.EMem = m.in.Power.PMem * dst.TMem * nodes                      // Eq. 10
	dst.ENet = m.in.Power.PNet * (dst.TwNet + dst.TsNet) * nodes       // Eq. 11
	dst.EIdle = m.in.Power.PSysIdle * dst.T * nodes                    // Eq. 12
	dst.E = dst.ECPU + dst.EMem + dst.ENet + dst.EIdle                 // Eq. 8
	return nil
}

// commMoments is the per-node-count reduction of the message-class list:
// everything predictNetwork needs that depends only on n (and the model's
// fixed network options), computed once per n and memoised. Sweeping a
// configuration space re-uses one reduction across every (c, f) at the
// same node count — the amortisation that makes full-space exploration
// allocation-light.
type commMoments struct {
	msgs      float64 // messages per rank per iteration, all classes
	nu        float64 // ν: mean message volume [B]
	async     float64 // asynchronous messages per rank per iteration
	yMean     float64 // mean async service time [s]
	y2        float64 // second moment of async service time [s²]
	wire      float64 // async wire time per rank per iteration [s]
	syncDrain float64 // synchronised-round drain per iteration [s], incl. port share
	busy      float64 // switch busy time per iteration [s], incl. port share
	portShare float64 // nodes whose traffic serialises at one server
}

// momentsFor returns the memoised communication moments at n, computing
// and caching them on first use. A nil return means the program exchanges
// no messages at n. Concurrent racers compute identical values (Classes
// is a pure function of n), so the CAS loop only protects the slice
// structure, never the contents.
func (m *Model) momentsFor(n int) *commMoments {
	if s := m.moments.Load(); s != nil && n < len(*s) && (*s)[n].computed {
		return (*s)[n].cm
	}
	cm := m.reduceClasses(n)
	for {
		old := m.moments.Load()
		var cur []momentSlot
		if old != nil {
			cur = *old
		}
		if n < len(cur) && cur[n].computed {
			return cur[n].cm
		}
		size := len(cur)
		if n >= size {
			size = n + 1
		}
		next := make([]momentSlot, size)
		copy(next, cur)
		next[n] = momentSlot{computed: true, cm: cm}
		if m.moments.CompareAndSwap(old, &next) {
			return cm
		}
	}
}

// reduceClasses folds the message-class list at n into its moments. The
// accumulation order matches the original per-Predict loop bit for bit.
func (m *Model) reduceClasses(n int) *commMoments {
	classes := m.in.Comm.Classes(n)
	if len(classes) == 0 {
		return nil
	}
	peak := m.in.Net.Peak * m.opt.NetBandwidthScale
	net := NetModel{Overhead: m.in.Net.Overhead, Peak: peak}

	// portShare is how many nodes' traffic serialises at one server: all
	// n on the shared medium, only this node's on a crossbar port.
	portShare := float64(n)
	if m.in.NetTopology == machine.TopologyCrossbar {
		portShare = 1
	}
	var msgsPerIter, bytesPerIter float64 // all classes (η, ν diagnostics)
	var asyncMsgs, yMean, y2 float64      // async moments for Eq. 5
	var wirePerIter float64               // async wire time for Eq. 6
	var syncPerIter float64               // sync round drains per iteration
	var busyPerIter float64               // switch busy time per iteration
	for _, mc := range classes {
		cnt := float64(mc.Count)
		y := net.ServiceTime(mc.Bytes)
		msgsPerIter += cnt
		bytesPerIter += cnt * mc.Bytes
		busyPerIter += cnt * y * portShare
		if mc.Sync {
			// Each synchronised round bursts portShare messages onto the
			// contended server and blocks every rank until they drain:
			// portShare*y per round on the critical path, exactly.
			syncPerIter += cnt * y * portShare
			continue
		}
		asyncMsgs += cnt
		yMean += cnt * y
		y2 += cnt * y * y
		wirePerIter += cnt * mc.Bytes / peak
	}
	if msgsPerIter == 0 {
		return nil
	}
	cm := &commMoments{
		msgs:      msgsPerIter,
		nu:        bytesPerIter / msgsPerIter,
		async:     asyncMsgs,
		wire:      wirePerIter,
		syncDrain: syncPerIter,
		busy:      busyPerIter,
		portShare: portShare,
	}
	if asyncMsgs > 0 {
		cm.yMean = yMean / asyncMsgs
		cm.y2 = y2 / asyncMsgs
	}
	return cm
}

// predictNetwork fills the communication terms of p: the per-run message
// mix, Eq. 6's non-overlapped service and Eq. 5's queueing delay at the
// fixed point of λ(T).
func (m *Model) predictNetwork(p *Prediction, U float64, S int) {
	cm := m.momentsFor(p.Cfg.Nodes)
	if cm == nil {
		return
	}
	S64 := float64(S)
	p.Eta = cm.msgs * S64 // η per rank over the run
	p.Nu = cm.nu

	// Eq. 6: asynchronous communication overlaps with the CPU idle gap
	// observed at baseline; the non-overlapped service is the larger of
	// the idle gap and the wire time. Synchronised rounds cannot overlap
	// — their drain is added in full.
	idleGap := (1 - U) * p.TCPU
	p.TsNet = math.Max(idleGap, cm.wire*S64) + cm.syncDrain*S64

	base := p.TCPU + p.TMem + p.TsNet
	// The switch must be busy busyPerIter*S in total; a closed system
	// cannot finish sooner (self-throttling bound).
	satBound := cm.busy * S64

	if cm.async == 0 {
		// Only synchronised traffic: the drain is already exact.
		if satBound > base {
			p.TwNet = satBound - base
			p.NetRho = 1
		} else if base > 0 {
			p.NetRho = satBound / base
		}
		return
	}
	etaAsync := cm.async * S64
	lambdaNum := cm.portShare * etaAsync // λ(T) = lambdaNum / T

	// Eq. 5 with λ = n*η/T: every rank contributes its asynchronous
	// messages to the shared switch. Substituting the P-K wait
	// W(λ) = λ·E[Y²]/(2(1−λ·E[Y])) into T = base + η_a·W(λ(T)) gives
	//
	//	(T − base)(T − a) = η_a·Λ·E[Y²]/2 =: C,  a = Λ·E[Y],
	//
	// a quadratic whose larger root is the fixed point — solved in closed
	// form instead of iterating, which is what makes a full-space sweep
	// cheap. The closed form is the attracting fixed point only where
	// |f'(T*)| = C/(T*−a)² < 1; outside that region (deep saturation) the
	// legacy clamped iteration reproduces the historical trajectory, whose
	// end state the ρ-clamp below routes to the capacity bound.
	aBusy := lambdaNum * cm.yMean
	C := etaAsync * lambdaNum * cm.y2 / 2
	var t float64
	if C == 0 {
		t = base // zero service variance: no queueing delay
	} else {
		d := base - aBusy
		t = ((base + aBusy) + math.Sqrt(d*d+4*C)) / 2
		if deriv := C / ((t - aBusy) * (t - aBusy)); deriv >= 1 {
			var ok bool
			t, ok = queueing.FixedPoint(m.legacyWaitMap(base, etaAsync, lambdaNum, cm), base, 1e-10, 200)
			p.Converged = ok
		}
	}
	lambda := lambdaNum / t
	rawRho := queueing.Utilization(lambda, cm.yMean)
	if rawRho > m.opt.MaxNetUtilization {
		// Saturated regime: the open-loop M/G/1 form no longer applies —
		// the run is bounded by the switch's total busy time and
		// λ = n*η/T settles at ρ = 1.
		total := math.Max(base, satBound)
		p.TwNet = total - base
		p.NetRho = 1
		return
	}
	waitPerMsg, rho := queueing.ClampedMG1Wait(lambda, cm.yMean, cm.y2, m.opt.MaxNetUtilization)
	p.TwNet = etaAsync * waitPerMsg
	if base+p.TwNet < satBound {
		p.TwNet = satBound - base
	}
	p.NetRho = rho
}

// legacyWaitMap is the pre-closed-form fixed-point map T ↦ base + η_a·W,
// kept for the divergent-oscillation regime near and beyond saturation.
func (m *Model) legacyWaitMap(base, etaAsync, lambdaNum float64, cm *commMoments) func(float64) float64 {
	return func(t float64) float64 {
		if t <= 0 {
			t = base
		}
		waitPerMsg, _ := queueing.ClampedMG1Wait(lambdaNum/t, cm.yMean, cm.y2, m.opt.MaxNetUtilization)
		return base + etaAsync*waitPerMsg
	}
}

// PredictAll evaluates the model over a configuration list, skipping none:
// any per-configuration error aborts (they indicate missing inputs).
func (m *Model) PredictAll(cfgs []machine.Config, S int) ([]Prediction, error) {
	out := make([]Prediction, 0, len(cfgs))
	for _, cfg := range cfgs {
		p, err := m.Predict(cfg, S)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
