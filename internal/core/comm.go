package core

import "math"

// reduceRounds is the number of rounds (messages per rank) of a
// dissemination-style collective over n ranks: ceil(log2 n). It mirrors
// the simulated MPI runtime's allreduce; a cross-package test pins the
// two together.
func reduceRounds(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}

// HybridComm is the communication model of a hybrid program in the shape
// the paper's characterisation produces: per-iteration halo exchanges
// whose volume shrinks with the node count (domain decomposition), plus
// optional synchronised collectives. It is a plain value, so characterised
// inputs can be saved and reloaded (see persist.go).
//
// Halo volume law: bytes(n) = HaloBytes * (2/n)^HaloExp, with HaloBytes
// the volume measured by the mpiP profiling run at two nodes.
type HybridComm struct {
	HaloMsgs  int     `json:"haloMsgs"`  // point-to-point messages per iteration
	HaloBytes float64 `json:"haloBytes"` // per-message volume at n=2 [B]
	HaloExp   float64 `json:"haloExp"`   // decomposition scaling exponent

	CollectiveBytes float64 `json:"collectiveBytes"` // allreduce volume per round [B]; 0 = none
	Barrier         bool    `json:"barrier"`         // explicit barrier each iteration
	AlltoallVolume  float64 `json:"alltoallVolume"`  // per-rank all-to-all volume per iteration [B]
}

// Classes implements CommModel.
func (hc HybridComm) Classes(n int) []MsgClass {
	if n < 2 {
		return nil
	}
	var out []MsgClass
	if hc.HaloMsgs > 0 {
		bytes := hc.HaloBytes * math.Pow(2/float64(n), hc.HaloExp)
		out = append(out, MsgClass{Count: hc.HaloMsgs, Bytes: bytes})
	}
	rounds := reduceRounds(n)
	if hc.CollectiveBytes > 0 {
		out = append(out, MsgClass{Count: rounds, Bytes: hc.CollectiveBytes, Sync: true})
	}
	if hc.Barrier {
		out = append(out, MsgClass{Count: rounds, Bytes: 8, Sync: true})
	}
	if hc.AlltoallVolume > 0 {
		out = append(out, MsgClass{Count: n - 1, Bytes: hc.AlltoallVolume / float64(n), Sync: true})
	}
	return out
}
