package core

import (
	"math"
	"testing"

	"hybridperf/internal/machine"
)

func TestSensitivityDirections(t *testing.T) {
	comm := StaticComm{{Count: 3, Bytes: 2e6}}
	m := mustModel(t, synthInputs(comm), nil)
	cfg := machine.Config{Nodes: 4, Cores: 2, Freq: 1e9}
	sens, err := m.Sensitivities(cfg, 20, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sens) != len(SensitivityInputs()) {
		t.Fatalf("%d sensitivities, want %d", len(sens), len(SensitivityInputs()))
	}
	byName := map[string]Sensitivity{}
	for _, s := range sens {
		byName[s.Input] = s
	}
	// More work cycles -> slower and costlier.
	if s := byName["work-cycles"]; s.DTPct <= 0 || s.DEPct <= 0 {
		t.Errorf("work-cycles: %+v", s)
	}
	// More memory stalls -> slower and costlier.
	if s := byName["mem-stall-cycles"]; s.DTPct <= 0 || s.DEPct <= 0 {
		t.Errorf("mem-stall-cycles: %+v", s)
	}
	// Faster network -> not slower.
	if s := byName["net-bandwidth"]; s.DTPct > 1e-9 {
		t.Errorf("net-bandwidth: %+v", s)
	}
	// Bigger messages -> not faster.
	if s := byName["msg-volume"]; s.DTPct < -1e-9 {
		t.Errorf("msg-volume: %+v", s)
	}
	// Higher idle power -> same time, more energy.
	if s := byName["power-idle"]; math.Abs(s.DTPct) > 1e-9 || s.DEPct <= 0 {
		t.Errorf("power-idle: %+v", s)
	}
	// Higher core power -> same time, more energy.
	if s := byName["power-core"]; math.Abs(s.DTPct) > 1e-9 || s.DEPct <= 0 {
		t.Errorf("power-core: %+v", s)
	}
}

func TestSensitivitySorted(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	sens, err := m.Sensitivities(machine.Config{Nodes: 1, Cores: 2, Freq: 1e9}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(sens); i++ {
		wi := math.Abs(sens[i-1].DTPct) + math.Abs(sens[i-1].DEPct)
		wj := math.Abs(sens[i].DTPct) + math.Abs(sens[i].DEPct)
		if wj > wi+1e-12 {
			t.Fatalf("sensitivities not sorted: %v", sens)
		}
	}
}

func TestSensitivityMatchesWhatIf(t *testing.T) {
	// Scaling mem-stall-cycles by 0.5 must equal the Sec. V.B what-if of
	// doubling memory bandwidth.
	m := mustModel(t, synthInputs(nil), nil)
	cfg := machine.Config{Nodes: 1, Cores: 2, Freq: 1e9}
	pm, err := m.perturbed("mem-stall-cycles", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := pm.Predict(cfg, 10)
	b, err := mustWithOptions(t, m, Options{MemBandwidthScale: 2}).Predict(cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.T-b.T) > 1e-12 || math.Abs(a.E-b.E) > 1e-9 {
		t.Fatalf("perturbation and what-if disagree: %+v vs %+v", a, b)
	}
}

func TestSensitivityDoesNotMutateModel(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	cfg := machine.Config{Nodes: 1, Cores: 2, Freq: 1e9}
	before, _ := m.Predict(cfg, 10)
	if _, err := m.Sensitivities(cfg, 10, 3); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Predict(cfg, 10)
	if before != after {
		t.Fatal("Sensitivities mutated the model")
	}
}

func TestSensitivityValidation(t *testing.T) {
	m := mustModel(t, synthInputs(nil), nil)
	cfg := machine.Config{Nodes: 1, Cores: 2, Freq: 1e9}
	if _, err := m.Sensitivities(cfg, 10, 0); err == nil {
		t.Error("zero factor accepted")
	}
	if _, err := m.perturbed("bogus", 2); err == nil {
		t.Error("unknown input accepted")
	}
}
