package core

import (
	"math"
	"testing"

	"hybridperf/internal/machine"
)

func TestCCRRelatesToUCR(t *testing.T) {
	// CCR = UCR / (1 - UCR) for the same breakdown, since
	// T = TCPU + other. Verify on a real prediction.
	comm := StaticComm{{Count: 2, Bytes: 1e6}}
	m := mustModel(t, synthInputs(comm), nil)
	p, err := m.Predict(machine.Config{Nodes: 4, Cores: 2, Freq: 1e9}, 20)
	if err != nil {
		t.Fatal(err)
	}
	want := p.UCR / (1 - p.UCR)
	if got := p.CCR(); math.Abs(got-want)/want > 1e-9 {
		t.Fatalf("CCR = %g, want UCR/(1-UCR) = %g", got, want)
	}
}

func TestCCRUnnormalised(t *testing.T) {
	// The paper's point: CCR has no upper bound — a communication-free
	// prediction yields +Inf, while UCR stays in (0, 1].
	p := Prediction{TCPU: 5, T: 5, UCR: 1}
	if !math.IsInf(p.CCR(), 1) {
		t.Fatalf("communication-free CCR = %g, want +Inf", p.CCR())
	}
	if p.UCR <= 0 || p.UCR > 1 {
		t.Fatal("UCR left its normalised range")
	}
}

func TestCCRMonotoneWithUCRAcrossConfigs(t *testing.T) {
	// For fixed total time decomposition, higher UCR means higher CCR —
	// they rank configurations identically; only the scale differs.
	comm := StaticComm{{Count: 3, Bytes: 2e6}}
	m := mustModel(t, synthInputs(comm), nil)
	var prevUCR, prevCCR float64
	first := true
	for _, n := range []int{16, 8, 4, 2} {
		p, err := m.Predict(machine.Config{Nodes: n, Cores: 2, Freq: 1e9}, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !first {
			if (p.UCR > prevUCR) != (p.CCR() > prevCCR) {
				t.Fatalf("UCR and CCR rank n=%d differently", n)
			}
		}
		prevUCR, prevCCR = p.UCR, p.CCR()
		first = false
	}
}

func TestEDPAndED2P(t *testing.T) {
	p := Prediction{T: 3, E: 10}
	if p.EDP() != 30 {
		t.Fatalf("EDP = %g", p.EDP())
	}
	if p.ED2P() != 90 {
		t.Fatalf("ED2P = %g", p.ED2P())
	}
}
