package core

import (
	"fmt"
	"sort"

	"hybridperf/internal/machine"
)

// Sensitivity quantifies how strongly a prediction depends on each
// measured input: the relative change of T and E when one input is scaled
// by a factor, all else fixed. System designers use it the way the paper
// uses UCR in Sec. V.B — to find which resource to invest in — and model
// users use it to see which measurement errors matter.
type Sensitivity struct {
	Input  string  // which input was perturbed
	Factor float64 // applied scale
	DTPct  float64 // resulting relative change of T [%]
	DEPct  float64 // resulting relative change of E [%]
}

// sensitivityInputs enumerates the perturbable inputs.
var sensitivityInputs = []string{
	"work-cycles",      // ws, bs: more/less computation per iteration
	"mem-stall-cycles", // ms: memory pressure (1/x = memory bandwidth scaling)
	"net-bandwidth",    // B: interconnect speed
	"msg-volume",       // ν: communication volume
	"power-idle",       // Psys,idle
	"power-core",       // Pcore,act and Pcore,stall
}

// SensitivityInputs lists the input names Sensitivities perturbs.
func SensitivityInputs() []string {
	return append([]string(nil), sensitivityInputs...)
}

// scaledComm wraps a CommModel with a volume scale.
type scaledComm struct {
	inner CommModel
	scale float64
}

// Classes implements CommModel.
func (sc scaledComm) Classes(n int) []MsgClass {
	src := sc.inner.Classes(n)
	out := make([]MsgClass, len(src))
	for i, mc := range src {
		mc.Bytes *= sc.scale
		out[i] = mc
	}
	return out
}

// perturbed builds a model with one input scaled by factor.
func (m *Model) perturbed(input string, factor float64) (*Model, error) {
	in := m.in
	switch input {
	case "work-cycles":
		in.Baseline = scaleBaseline(m.in.Baseline, func(bp *BaselinePoint) {
			bp.W *= factor
			bp.B *= factor
		})
	case "mem-stall-cycles":
		in.Baseline = scaleBaseline(m.in.Baseline, func(bp *BaselinePoint) {
			bp.M *= factor
		})
	case "net-bandwidth":
		opt := m.opt
		opt.NetBandwidthScale *= factor
		return build(in, opt), nil
	case "msg-volume":
		if in.Comm != nil {
			in.Comm = scaledComm{inner: m.in.Comm, scale: factor}
		}
	case "power-idle":
		in.Power.PSysIdle *= factor
	case "power-core":
		in.Power = scalePower(m.in.Power, factor)
	default:
		return nil, fmt.Errorf("core: unknown sensitivity input %q (want one of %v)", input, sensitivityInputs)
	}
	return build(in, m.opt), nil
}

func scaleBaseline(src map[machine.CF]BaselinePoint, f func(*BaselinePoint)) map[machine.CF]BaselinePoint {
	out := make(map[machine.CF]BaselinePoint, len(src))
	for k, bp := range src {
		f(&bp)
		out[k] = bp
	}
	return out
}

func scalePower(src PowerModel, factor float64) PowerModel {
	out := src
	out.PAct = make(map[float64]float64, len(src.PAct))
	out.PStall = make(map[float64]float64, len(src.PStall))
	for f, w := range src.PAct {
		out.PAct[f] = w * factor
	}
	for f, w := range src.PStall {
		out.PStall[f] = w * factor
	}
	return out
}

// Sensitivities evaluates the prediction's response to scaling each input
// by the given factor (e.g. 1.1 for +10%), sorted by descending |ΔT|+|ΔE|.
func (m *Model) Sensitivities(cfg machine.Config, S int, factor float64) ([]Sensitivity, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("core: sensitivity factor must be positive")
	}
	base, err := m.Predict(cfg, S)
	if err != nil {
		return nil, err
	}
	var out []Sensitivity
	for _, input := range sensitivityInputs {
		pm, err := m.perturbed(input, factor)
		if err != nil {
			return nil, err
		}
		p, err := pm.Predict(cfg, S)
		if err != nil {
			return nil, err
		}
		out = append(out, Sensitivity{
			Input:  input,
			Factor: factor,
			DTPct:  (p.T/base.T - 1) * 100,
			DEPct:  (p.E/base.E - 1) * 100,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		wi := abs(out[i].DTPct) + abs(out[i].DEPct)
		wj := abs(out[j].DTPct) + abs(out[j].DEPct)
		return wi > wj
	})
	return out, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
