package core

import (
	"strings"
	"sync"
	"testing"

	"hybridperf/internal/machine"
)

// TestMomentsMemoisedPredictionsStable checks that warming the per-n
// moment cache does not change predictions: a fresh model and a model
// that has already predicted the same configurations agree bit for bit.
func TestMomentsMemoisedPredictionsStable(t *testing.T) {
	comm := StaticComm{{Count: 3, Bytes: 2e6}, {Count: 40, Bytes: 8e3}}
	warm := mustModel(t, synthInputs(comm), nil)
	cfgs := []machine.Config{
		{Nodes: 2, Cores: 2, Freq: 1e9},
		{Nodes: 4, Cores: 2, Freq: 1e9},
		{Nodes: 8, Cores: 2, Freq: 1e9},
	}
	// First pass fills the memo, second pass reads it.
	first := make([]Prediction, len(cfgs))
	for i, cfg := range cfgs {
		p, err := warm.Predict(cfg, 20)
		if err != nil {
			t.Fatal(err)
		}
		first[i] = p
	}
	for i, cfg := range cfgs {
		p, err := warm.Predict(cfg, 20)
		if err != nil {
			t.Fatal(err)
		}
		if p != first[i] {
			t.Fatalf("warm predict differs at %v: %+v vs %+v", cfg, p, first[i])
		}
		cold := mustModel(t, synthInputs(comm), nil)
		cp, err := cold.Predict(cfg, 20)
		if err != nil {
			t.Fatal(err)
		}
		if cp != first[i] {
			t.Fatalf("cold model differs at %v: %+v vs %+v", cfg, cp, first[i])
		}
	}
}

// TestWithOptionsInvalidatesMoments verifies the cache invalidation rule:
// NetBandwidthScale feeds the per-n moments, so a derived model must not
// reuse the parent's memo. The derived model has to agree with a model
// built from scratch with the same options, even after the parent's memo
// was warmed at the same node counts.
func TestWithOptionsInvalidatesMoments(t *testing.T) {
	comm := StaticComm{{Count: 3, Bytes: 2e6}}
	base := mustModel(t, synthInputs(comm), nil)
	cfg := machine.Config{Nodes: 4, Cores: 2, Freq: 1e9}
	pBase, err := base.Predict(cfg, 20) // warm the memo at n=4
	if err != nil {
		t.Fatal(err)
	}
	derived := mustWithOptions(t, base, Options{NetBandwidthScale: 4})
	pDerived, err := derived.Predict(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pDerived.TwNet+pDerived.TsNet >= pBase.TwNet+pBase.TsNet {
		t.Fatalf("4x network bandwidth did not cut network time: %+v vs %+v", pDerived, pBase)
	}
	opt := Options{NetBandwidthScale: 4}
	fresh, err := New(synthInputs(comm), &opt)
	if err != nil {
		t.Fatal(err)
	}
	pFresh, err := fresh.Predict(cfg, 20)
	if err != nil {
		t.Fatal(err)
	}
	if pDerived != pFresh {
		t.Fatalf("derived model reused stale moments: %+v vs fresh %+v", pDerived, pFresh)
	}
}

// TestMaxNetUtilizationValidation: values in [1, inf) used to be silently
// coerced to the 0.98 default; they must now be rejected by both New and
// WithOptions.
func TestMaxNetUtilizationValidation(t *testing.T) {
	for _, bad := range []float64{1, 1.5, 100} {
		opt := Options{MaxNetUtilization: bad}
		if _, err := New(synthInputs(nil), &opt); err == nil {
			t.Errorf("New accepted MaxNetUtilization = %g", bad)
		} else if !strings.Contains(err.Error(), "MaxNetUtilization") {
			t.Errorf("MaxNetUtilization = %g: unhelpful error %v", bad, err)
		}
	}
	m := mustModel(t, synthInputs(nil), nil)
	if _, err := m.WithOptions(Options{MaxNetUtilization: 1}); err == nil {
		t.Error("WithOptions accepted MaxNetUtilization = 1")
	}
	// The open interval (0, 1) stays valid, and <= 0 still means default.
	opt := Options{MaxNetUtilization: 0.5}
	if _, err := New(synthInputs(nil), &opt); err != nil {
		t.Errorf("MaxNetUtilization = 0.5 rejected: %v", err)
	}
	if _, err := m.WithOptions(Options{}); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

// TestConcurrentPredictRace hammers one model from many goroutines across
// overlapping node counts so `go test -race` exercises the moment memo's
// concurrent fill path. All results must match a serial evaluation.
func TestConcurrentPredictRace(t *testing.T) {
	comm := StaticComm{{Count: 5, Bytes: 1e6}}
	m := mustModel(t, synthInputs(comm), nil)
	var cfgs []machine.Config
	for n := 1; n <= 16; n++ {
		cfgs = append(cfgs, machine.Config{Nodes: n, Cores: 2, Freq: 1e9})
	}
	want := make([]Prediction, len(cfgs))
	serial := mustModel(t, synthInputs(comm), nil)
	for i, cfg := range cfgs {
		p, err := serial.Predict(cfg, 20)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for i, cfg := range cfgs {
					p, err := m.Predict(cfg, 20)
					if err != nil {
						errs[g] = err
						return
					}
					if p != want[i] {
						t.Errorf("goroutine %d: %v differs from serial", g, cfg)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}
