package core

import "math"

// CCR returns the Computation-to-Communication Ratio of the prediction:
// useful computation time over everything else (memory and network
// contention, communication service). The paper (Sec. V.B) contrasts CCR
// with UCR: CCR is widely used but unnormalised — it is unbounded for
// communication-free executions — which makes comparisons across
// configurations awkward; UCR = TCPU/T is its normalised replacement with
// range (0, 1]. CCR returns +Inf when the prediction has no
// non-computation time at all.
func (p Prediction) CCR() float64 {
	other := p.TwNet + p.TsNet + p.TMem
	if other <= 0 {
		return math.Inf(1)
	}
	return p.TCPU / other
}

// EDP returns the prediction's energy-delay product E*T [J*s], a standard
// single-figure merit for time-energy trade-offs. Minimising EDP picks one
// point on the Pareto frontier without requiring an explicit deadline or
// budget.
func (p Prediction) EDP() float64 { return p.E * p.T }

// ED2P returns the energy-delay-squared product E*T² [J*s²], which weighs
// performance more heavily than EDP.
func (p Prediction) ED2P() float64 { return p.E * p.T * p.T }
