package core

import (
	"bytes"
	"strings"
	"testing"

	"hybridperf/internal/machine"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	in := synthInputs(HybridComm{
		HaloMsgs: 4, HaloBytes: 4e5, HaloExp: 0.7,
		CollectiveBytes: 2e6, Barrier: true, AlltoallVolume: 1e6,
	})
	in.NetTopology = machine.TopologyCrossbar
	var buf bytes.Buffer
	if err := SaveInputs(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInputs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.System != in.System || got.Program != in.Program || got.BaselineIters != in.BaselineIters {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	if got.NetTopology != machine.TopologyCrossbar {
		t.Fatalf("topology lost: %q", got.NetTopology)
	}
	if len(got.Baseline) != len(in.Baseline) {
		t.Fatalf("baseline size %d, want %d", len(got.Baseline), len(in.Baseline))
	}
	for cf, bp := range in.Baseline {
		if got.Baseline[cf] != bp {
			t.Fatalf("baseline point %v = %+v, want %+v", cf, got.Baseline[cf], bp)
		}
	}
	if got.Net != in.Net {
		t.Fatalf("net %+v, want %+v", got.Net, in.Net)
	}
	hc, ok := got.Comm.(HybridComm)
	if !ok {
		t.Fatalf("loaded comm is %T", got.Comm)
	}
	if hc != in.Comm.(HybridComm) {
		t.Fatalf("comm %+v, want %+v", hc, in.Comm)
	}
	if got.Power.PMem != in.Power.PMem || got.Power.PSysIdle != in.Power.PSysIdle {
		t.Fatal("power scalars lost")
	}
	for f, w := range in.Power.PAct {
		if got.Power.PAct[f] != w || got.Power.PStall[f] != in.Power.PStall[f] {
			t.Fatalf("power level %g lost", f)
		}
	}
}

func TestSaveLoadPredictionsIdentical(t *testing.T) {
	in := synthInputs(HybridComm{HaloMsgs: 2, HaloBytes: 1e6, HaloExp: 0.5})
	m1 := mustModel(t, in, nil)
	var buf bytes.Buffer
	if err := SaveInputs(&buf, in); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadInputs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2 := mustModel(t, loaded, nil)
	for _, n := range []int{1, 2, 8} {
		cfg := machine.Config{Nodes: n, Cores: 2, Freq: 1e9}
		a, err1 := m1.Predict(cfg, 30)
		b, err2 := m2.Predict(cfg, 30)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("n=%d: predictions diverge after round trip:\n%+v\n%+v", n, a, b)
		}
	}
}

func TestSaveNilComm(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveInputs(&buf, synthInputs(nil)); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInputs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Comm != nil {
		t.Fatalf("nil comm round-tripped to %T", got.Comm)
	}
	if strings.Contains(buf.String(), `"comm"`) {
		t.Fatal("nil comm serialised as a field")
	}
}

func TestSavePointerComm(t *testing.T) {
	hc := &HybridComm{HaloMsgs: 1, HaloBytes: 10, HaloExp: 0}
	var buf bytes.Buffer
	if err := SaveInputs(&buf, synthInputs(hc)); err != nil {
		t.Fatal(err)
	}
	got, err := LoadInputs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Comm.(HybridComm) != *hc {
		t.Fatal("pointer comm lost")
	}
}

func TestSaveRejectsOpaqueComm(t *testing.T) {
	var buf bytes.Buffer
	err := SaveInputs(&buf, synthInputs(StaticComm{{Count: 1, Bytes: 1}}))
	if err == nil {
		t.Fatal("opaque comm model serialised")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := LoadInputs(strings.NewReader("{not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestHybridCommClasses(t *testing.T) {
	hc := HybridComm{HaloMsgs: 2, HaloBytes: 1000, HaloExp: 1, CollectiveBytes: 5000, Barrier: true}
	if hc.Classes(1) != nil {
		t.Fatal("single node should have no classes")
	}
	cl := hc.Classes(4)
	if len(cl) != 3 {
		t.Fatalf("%d classes, want halo+collective+barrier", len(cl))
	}
	// Halo at n=4 with exp 1: 1000*(2/4) = 500.
	if cl[0].Bytes != 500 || cl[0].Sync {
		t.Fatalf("halo class %+v", cl[0])
	}
	// ceil(log2 4) = 2 rounds.
	if cl[1].Count != 2 || !cl[1].Sync || cl[1].Bytes != 5000 {
		t.Fatalf("collective class %+v", cl[1])
	}
	if cl[2].Bytes != 8 || !cl[2].Sync {
		t.Fatalf("barrier class %+v", cl[2])
	}
}

func TestReduceRoundsMatchesDefinition(t *testing.T) {
	for n, want := range map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 8: 3, 20: 5, 256: 8} {
		if got := reduceRounds(n); got != want {
			t.Errorf("reduceRounds(%d) = %d, want %d", n, got, want)
		}
	}
}
