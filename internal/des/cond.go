package des

// Cond is a condition variable for simulated processes: a process waits
// until another process broadcasts, then re-checks its predicate. Because
// only one simulated process runs at a time there is no lock to associate.
type Cond struct {
	waiters []*Proc
}

// Wait halts the calling process until the next Broadcast.
// Callers should loop: for !pred() { cond.Wait(p) }.
func (c *Cond) Wait(p *Proc) {
	c.WaitArm(p)
	p.park()
}

// WaitArm is the sequential form of Wait: it enqueues p as a waiter and
// halts it without suspending. The calling Machine must yield (return
// false) immediately after arming and re-check its predicate on re-entry,
// since Broadcast wakes every waiter.
func (c *Cond) WaitArm(p *Proc) {
	c.waiters = append(c.waiters, p)
	p.HaltArm()
}

// Broadcast wakes every waiting process at the current virtual time, in
// FIFO order. Processes woken here run after the caller next yields.
func (c *Cond) Broadcast() {
	ws := c.waiters
	// Reuse the backing array: woken processes cannot re-Wait until the
	// caller yields, which is after this loop completes.
	c.waiters = c.waiters[:0]
	for _, p := range ws {
		p.Wake()
	}
}

// Waiting reports the number of processes blocked on the condition.
func (c *Cond) Waiting() int { return len(c.waiters) }

// Barrier synchronises a fixed-size party of simulated processes: each
// arrival blocks until all n have arrived, then all proceed. Reusable for
// successive rounds (like a pthreads/OpenMP barrier).
type Barrier struct {
	n       int
	arrived int
	cond    Cond
}

// NewBarrier creates a barrier for a party of n processes (n >= 1).
func NewBarrier(n int) *Barrier { return &Barrier{n: n} }

// Await blocks the calling process until n processes have arrived.
// It returns true for the last arrival (the one that released the party).
func (b *Barrier) Await(p *Proc) bool {
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.cond.Broadcast()
		return true
	}
	b.cond.Wait(p)
	return false
}

// Party returns the barrier's party size.
func (b *Barrier) Party() int { return b.n }
