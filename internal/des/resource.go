package des

// Resource models a single-server FCFS queueing station (a memory
// controller, a network switch port, a NIC). Processes call Serve to queue
// for the server, occupy it for a service duration, and release it. The
// resource keeps the aggregate statistics queueing theory predicts (waiting
// time, utilisation) so simulations can be checked against closed forms.
type Resource struct {
	k     *Kernel
	name  string
	busy  bool
	queue []*Proc // FCFS waiters, head is next to be granted

	// Statistics.
	served       int64
	totalWait    float64
	totalService float64
	busySince    float64
	busyTime     float64
	lastReset    float64
}

// NewResource creates an idle single-server FCFS resource.
func NewResource(k *Kernel, name string) *Resource {
	return &Resource{k: k, name: name}
}

// Name returns the resource label.
func (r *Resource) Name() string { return r.name }

// Serve queues the calling process for the server, holds the server for
// service seconds, releases it, and returns the time spent waiting in the
// queue (excluding service).
func (r *Resource) Serve(p *Proc, service float64) (wait float64) {
	wait = r.Acquire(p)
	p.Advance(service)
	r.ServeDone(service)
	return wait
}

// Acquire queues the calling process and returns once it holds the server,
// reporting the queueing delay. The caller must eventually call Release.
func (r *Resource) Acquire(p *Proc) (wait float64) {
	enq := r.k.now
	if !r.AcquireArm(p) {
		p.park() // woken by Release when granted
	}
	return r.AcquireDone(enq)
}

// AcquireArm begins a sequential acquire: it either grants the idle server
// immediately (true) or enqueues p and halts it (false) — the calling
// Machine must then yield; Release wakes it holding the server. Either way
// the caller completes the acquire with AcquireDone once it runs holding
// the server.
func (r *Resource) AcquireArm(p *Proc) bool {
	if r.busy {
		r.queue = append(r.queue, p)
		p.HaltArm()
		return false
	}
	r.busy = true
	r.busySince = r.k.now
	return true
}

// AcquireDone records the queueing statistics of an acquire begun at
// virtual time enq and returns the queueing delay.
func (r *Resource) AcquireDone(enq float64) (wait float64) {
	wait = r.k.now - enq
	r.served++
	r.totalWait += wait
	return wait
}

// ServeDone accounts the service time of a completed hold and releases the
// server — the tail of Serve, split out for sequential Machines that
// advance through the service themselves.
func (r *Resource) ServeDone(service float64) {
	r.totalService += service
	r.Release()
}

// Release frees the server and grants it to the next waiter, if any.
func (r *Resource) Release() {
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		// Server stays busy: hand-off is immediate.
		next.Wake()
		return
	}
	r.busy = false
	r.busyTime += r.k.now - r.busySince
}

// QueueLen reports the number of processes waiting (not counting the one
// in service).
func (r *Resource) QueueLen() int { return len(r.queue) }

// Busy reports whether the server is occupied.
func (r *Resource) Busy() bool { return r.busy }

// Stats is a snapshot of a resource's aggregate behaviour.
type ResourceStats struct {
	Served       int64   // completed service requests
	MeanWait     float64 // mean queueing delay per request [s]
	MeanService  float64 // mean service time per request [s]
	Utilization  float64 // fraction of elapsed time the server was busy
	TotalWait    float64 // summed queueing delay [s]
	TotalService float64 // summed service time [s]
}

// Stats returns the resource statistics accumulated since the last Reset
// (or creation), using the current kernel time as the observation horizon.
func (r *Resource) Stats() ResourceStats {
	elapsed := r.k.now - r.lastReset
	busy := r.busyTime
	if r.busy {
		busy += r.k.now - r.busySince
	}
	s := ResourceStats{
		Served:       r.served,
		TotalWait:    r.totalWait,
		TotalService: r.totalService,
	}
	if r.served > 0 {
		s.MeanWait = r.totalWait / float64(r.served)
		s.MeanService = r.totalService / float64(r.served)
	}
	if elapsed > 0 {
		s.Utilization = busy / elapsed
	}
	return s
}

// Reset zeroes the statistics; queue state is untouched.
func (r *Resource) Reset() {
	r.served = 0
	r.totalWait = 0
	r.totalService = 0
	r.busyTime = 0
	r.lastReset = r.k.now
	if r.busy {
		r.busySince = r.k.now
	}
}
