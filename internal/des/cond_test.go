package des

import (
	"math"
	"testing"
)

func TestCondBroadcastWakesAll(t *testing.T) {
	k := NewKernel()
	var c Cond
	woken := 0
	for i := 0; i < 4; i++ {
		k.Spawn("waiter", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	k.Spawn("caster", func(p *Proc) {
		p.Advance(1)
		if c.Waiting() != 4 {
			t.Errorf("Waiting() = %d, want 4", c.Waiting())
		}
		c.Broadcast()
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
	if c.Waiting() != 0 {
		t.Fatalf("Waiting() after broadcast = %d", c.Waiting())
	}
}

func TestCondPredicateLoop(t *testing.T) {
	k := NewKernel()
	var c Cond
	value := 0
	var got int
	k.Spawn("consumer", func(p *Proc) {
		for value < 3 {
			c.Wait(p)
		}
		got = value
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Advance(1)
			value = i
			c.Broadcast()
		}
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Fatalf("consumer saw %d, want 3", got)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(3)
	var release []float64
	lastCount := 0
	for i := 0; i < 3; i++ {
		d := float64(i) * 2 // arrive at 0, 2, 4
		k.Spawn("party", func(p *Proc) {
			p.Advance(d)
			if b.Await(p) {
				lastCount++
			}
			release = append(release, p.Now())
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if lastCount != 1 {
		t.Fatalf("last-arrival count = %d, want 1", lastCount)
	}
	for _, r := range release {
		if r != 4 {
			t.Fatalf("release times %v, want all 4", release)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(2)
	if b.Party() != 2 {
		t.Fatalf("Party() = %d", b.Party())
	}
	rounds := make([][]float64, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn("party", func(p *Proc) {
			for round := 0; round < 3; round++ {
				p.Advance(float64(i + 1)) // different paces
				b.Await(p)
				rounds[i] = append(rounds[i], p.Now())
			}
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if rounds[0][r] != rounds[1][r] {
			t.Fatalf("round %d released at %g vs %g", r, rounds[0][r], rounds[1][r])
		}
	}
	// Slower party (pace 2) dictates: releases at 2, 4, 6.
	for r, want := range []float64{2, 4, 6} {
		if rounds[0][r] != want {
			t.Fatalf("round %d at %g, want %g", r, rounds[0][r], want)
		}
	}
}
