package des

import (
	"math"
	"math/rand"
	"testing"

	"hybridperf/internal/queueing"
)

func TestResourceSerializes(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv")
	var finish []float64
	for i := 0; i < 3; i++ {
		k.Spawn("c", func(p *Proc) {
			r.Serve(p, 2)
			finish = append(finish, p.Now())
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 4, 6}
	for i := range want {
		if finish[i] != want[i] {
			t.Fatalf("finish = %v, want %v", finish, want)
		}
	}
}

func TestResourceFCFSOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv")
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		k.Spawn("c", func(p *Proc) {
			p.Advance(float64(i) * 0.1) // arrive in index order
			r.Serve(p, 1)
			order = append(order, i)
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("service order %v is not FCFS", order)
		}
	}
}

func TestResourceWaitAccounting(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv")
	waits := make([]float64, 3)
	for i := 0; i < 3; i++ {
		i := i
		k.Spawn("c", func(p *Proc) {
			waits[i] = r.Serve(p, 4)
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	for i, want := range []float64{0, 4, 8} {
		if waits[i] != want {
			t.Fatalf("waits = %v, want [0 4 8]", waits)
		}
	}
	s := r.Stats()
	if s.Served != 3 {
		t.Fatalf("Served = %d, want 3", s.Served)
	}
	if s.MeanWait != 4 {
		t.Fatalf("MeanWait = %g, want 4", s.MeanWait)
	}
	if s.MeanService != 4 {
		t.Fatalf("MeanService = %g, want 4", s.MeanService)
	}
	if s.Utilization != 1 { // server busy from 0 to 12, elapsed 12
		t.Fatalf("Utilization = %g, want 1", s.Utilization)
	}
}

func TestResourceUtilizationWithIdle(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv")
	k.Spawn("c", func(p *Proc) {
		r.Serve(p, 1)
		p.Advance(3) // idle gap
		r.Serve(p, 1)
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if u := r.Stats().Utilization; math.Abs(u-0.4) > 1e-12 {
		t.Fatalf("Utilization = %g, want 0.4", u)
	}
}

func TestResourceReset(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv")
	k.Spawn("c", func(p *Proc) {
		r.Serve(p, 1)
		r.Reset()
		r.Serve(p, 2)
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Served != 1 || s.TotalService != 2 {
		t.Fatalf("after reset: %+v, want 1 request of service 2", s)
	}
	if math.Abs(s.Utilization-1) > 1e-12 {
		t.Fatalf("post-reset utilization = %g, want 1", s.Utilization)
	}
}

func TestAcquireReleaseHandoff(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "srv")
	var got []float64
	k.Spawn("holder", func(p *Proc) {
		r.Acquire(p)
		p.Advance(5)
		r.Release()
	})
	k.Spawn("waiter", func(p *Proc) {
		p.Advance(1)
		w := r.Acquire(p)
		got = append(got, w, p.Now())
		r.Release()
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 || got[1] != 5 {
		t.Fatalf("waiter wait=%g granted at %g, want 4 at 5", got[0], got[1])
	}
	if r.Busy() {
		t.Fatal("resource still busy after all releases")
	}
	if r.QueueLen() != 0 {
		t.Fatal("queue not drained")
	}
}

// TestMM1AgainstTheory drives the resource with Poisson arrivals and
// exponential service and compares the simulated mean wait with the M/M/1
// closed form — the cross-validation between the simulator and the
// queueing package the analytical model builds on.
func TestMM1AgainstTheory(t *testing.T) {
	const (
		lambda  = 0.7
		service = 1.0
		n       = 30000
	)
	k := NewKernel()
	r := NewResource(k, "srv")
	rng := rand.New(rand.NewSource(99))
	arrivals := make([]float64, n)
	tArr := 0.0
	for i := range arrivals {
		tArr += rng.ExpFloat64() / lambda
		arrivals[i] = tArr
	}
	services := make([]float64, n)
	for i := range services {
		services[i] = rng.ExpFloat64() * service
	}
	for i := 0; i < n; i++ {
		i := i
		k.Spawn("job", func(p *Proc) {
			p.Advance(arrivals[i])
			r.Serve(p, services[i])
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	want, err := queueing.MM1Wait(lambda, service)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Stats().MeanWait
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("simulated M/M/1 wait %.3f vs theory %.3f (>10%% off)", got, want)
	}
}

// TestMD1AgainstTheory repeats the comparison with deterministic service,
// where the P-K formula predicts half the M/M/1 wait.
func TestMD1AgainstTheory(t *testing.T) {
	const (
		lambda  = 0.6
		service = 1.0
		n       = 30000
	)
	k := NewKernel()
	r := NewResource(k, "srv")
	rng := rand.New(rand.NewSource(5))
	tArr := 0.0
	for i := 0; i < n; i++ {
		tArr += rng.ExpFloat64() / lambda
		at := tArr
		k.Spawn("job", func(p *Proc) {
			p.Advance(at)
			r.Serve(p, service)
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	want, err := queueing.MD1Wait(lambda, service)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Stats().MeanWait
	if math.Abs(got-want)/want > 0.10 {
		t.Fatalf("simulated M/D/1 wait %.3f vs theory %.3f (>10%% off)", got, want)
	}
}
