package des

import "fmt"

// This file is the sequential process engine: the goroutine-free
// counterpart of the spawn/park machinery in des.go. Processes are
// explicit continuations (Machines) dispatched by one scheduler loop on
// the Run caller's goroutine, eliminating the per-event channel handoff.
//
// Determinism is preserved by construction rather than by parallel
// reimplementation: the sequential engine reuses the same schedule,
// dispatchNext, queue structures and fast-path conditions as the goroutine
// engine, so sequence-number consumption and dispatch order are identical.
// Blocking decomposes into the Arm primitives (AdvanceArm, HaltArm,
// Cond.WaitArm, Resource.AcquireArm) that the goroutine primitives are
// themselves built on — the only difference is who suspends: a goroutine
// parks, a Machine returns false to the scheduler loop.

// Machine is the continuation form of a simulated process: Step resumes
// the process and runs it until it either blocks on virtual time (false)
// or completes (true). All state that must survive a block lives in the
// Machine; the kernel calls Step again at each dispatch of the process.
// A Machine that armed a block (an Arm primitive returned false or was
// invoked) must return false without further simulation calls.
type Machine interface {
	Step(p *Proc) bool
}

// NewSequentialKernel returns an empty kernel running the sequential
// engine: processes must be Machines spawned with SpawnSeq,
// SpawnDaemonSeq or GoSeq, and the goroutine-style blocking primitives
// panic. Results are bit-for-bit identical to NewKernel for equivalent
// process bodies.
func NewSequentialKernel() *Kernel {
	return &Kernel{seqMode: true}
}

// Sequential reports whether the kernel runs the sequential engine.
func (k *Kernel) Sequential() bool { return k.seqMode }

// SpawnSeq registers m as a new simulated process that becomes runnable at
// the current virtual time — the sequential counterpart of Spawn.
func (k *Kernel) SpawnSeq(name string, m Machine) *Proc {
	return k.spawnSeq(name, false, m)
}

// SpawnDaemonSeq is SpawnSeq for service processes excluded from
// liveness/deadlock accounting — the sequential counterpart of
// SpawnDaemon.
func (k *Kernel) SpawnDaemonSeq(name string, m Machine) *Proc {
	return k.spawnSeq(name, true, m)
}

func (k *Kernel) spawnSeq(name string, daemon bool, m Machine) *Proc {
	if !k.seqMode {
		panic("des: SpawnSeq on a goroutine kernel (use Spawn)")
	}
	p := &Proc{k: k, name: name, daemon: daemon, body: m}
	k.procs = append(k.procs, p)
	if !daemon {
		k.live++
	}
	k.schedule(p, k.now)
	return p
}

// GoSeq runs m as a short-lived simulated process drawn from the kernel's
// pooled runners — the sequential counterpart of Go, with identical pool
// reuse (LIFO), busy accounting and metrics, so both engines consume the
// same sequence numbers per task. m must be ready for its first Step and
// self-reset on completion if it is ever reused.
func (k *Kernel) GoSeq(name string, m Machine) {
	if !k.seqMode {
		panic("des: GoSeq on a goroutine kernel (use Go)")
	}
	k.busyGo++
	if k.mx != nil {
		if len(k.pool) > 0 {
			k.mx.PoolHits.Inc()
		} else {
			k.mx.PoolSpawns.Inc()
		}
	}
	if n := len(k.pool); n > 0 {
		p := k.pool[n-1]
		k.pool = k.pool[:n-1]
		p.name = name
		p.seqTask = m
		p.Wake()
		return
	}
	p := k.spawnSeq(name, true, nil)
	p.pooled = true
	p.seqTask = m
}

// runSeq is the sequential engine's Run: one scheduler loop dispatching
// continuations until the queue drains, the horizon is reached, or a
// failure is recorded. Dispatch classification mirrors the goroutine
// engine where the notion transfers: a dispatch that resumes the process
// that just yielded is a self-dispatch (the same condition under which the
// goroutine engine's park returns without a handoff); every other dispatch
// is a scheduler dispatch. Handoffs never occur — there is no second
// goroutine to hand control to.
func (k *Kernel) runSeq(until float64) error {
	k.horizon = until
	if k.ctx != nil && k.failure == nil {
		if err := k.ctx.Err(); err != nil {
			k.failure = fmt.Errorf("des: run cancelled: %w", err)
		}
	}
	var prev *Proc
	for {
		next := k.dispatchNext()
		if next == nil {
			break
		}
		if k.mx != nil {
			if next == prev {
				k.mx.SelfDispatches.Inc()
			} else {
				k.mx.SchedulerDispatches.Inc()
			}
		}
		k.stepSeq(next)
		prev = next
	}
	return k.finish()
}

// stepSeq resumes one continuation for a single dispatch. Pooled runners
// mirror the goroutine task-runner loop: a completed task returns the
// runner to the pool and halts it for reuse. A panicking Step is recorded
// as the run failure with the process retired, exactly as the goroutine
// wrapper does.
func (k *Kernel) stepSeq(p *Proc) {
	defer func() {
		if r := recover(); r != nil {
			if k.failure == nil {
				k.failure = fmt.Errorf("des: process %q panicked: %v", p.name, r)
			}
			p.done = true
			if !p.daemon {
				k.live--
			}
		}
	}()
	if p.pooled {
		if p.seqTask.Step(p) {
			p.seqTask = nil
			k.busyGo--
			k.pool = append(k.pool, p)
			p.HaltArm()
		}
		return
	}
	if p.body.Step(p) {
		p.done = true
		if !p.daemon {
			k.live--
		}
	}
}
