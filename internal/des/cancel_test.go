package des

import (
	"context"
	"errors"
	"math"
	"testing"
)

// TestRunPreCancelledContext: a context cancelled before Run stops the
// run at the upfront check — no process body ever executes, and the
// error unwraps to context.Canceled.
func TestRunPreCancelledContext(t *testing.T) {
	k := NewKernel()
	ran := false
	k.Spawn("p", func(p *Proc) { ran = true })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k.SetContext(ctx)
	err := k.Run(math.Inf(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("process body ran under a pre-cancelled context")
	}
	if k.Err() == nil {
		t.Fatal("kernel did not record the cancellation")
	}
}

// TestCancelStopsEventDispatch cancels mid-run from inside the
// simulation: two processes ping-pong through the event queue (so every
// step is a real dispatch), one of them cancels partway, and the run
// must stop within one poll interval instead of draining the remaining
// work.
func TestCancelStopsEventDispatch(t *testing.T) {
	const total = 100 * ctxPollInterval
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	k := NewKernel()
	k.SetContext(ctx)
	steps := 0
	k.Spawn("a", func(p *Proc) {
		for i := 0; i < total; i++ {
			if i == 10 {
				cancel()
			}
			p.Advance(1)
			steps++
		}
	})
	k.Spawn("b", func(p *Proc) {
		for i := 0; i < total; i++ {
			p.Advance(1)
		}
	})
	err := k.Run(math.Inf(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if steps >= total {
		t.Fatalf("process completed all %d steps despite cancellation", total)
	}
	// The poll runs every ctxPollInterval steps, so the overshoot past
	// the cancel point is bounded.
	if steps > 10+2*ctxPollInterval {
		t.Fatalf("run continued for %d steps after cancelling at step 10", steps)
	}
}

// TestCancelStopsLookaheadFastPath pins the single-process case: a lone
// compute loop advances through the lookahead fast path and dispatches
// almost no events, so the poll must ride Advance itself for the
// cancellation to land.
func TestCancelStopsLookaheadFastPath(t *testing.T) {
	const total = 100 * ctxPollInterval
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	k := NewKernel()
	k.SetContext(ctx)
	steps := 0
	k.Spawn("solo", func(p *Proc) {
		for i := 0; i < total; i++ {
			if i == 10 {
				cancel()
			}
			p.Advance(1)
			steps++
		}
	})
	err := k.Run(math.Inf(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if steps > 10+2*ctxPollInterval {
		t.Fatalf("fast path ran %d steps after cancelling at step 10", steps)
	}
}

// TestUncancelledContextBitIdentical is the determinism half of the
// contract: attaching a live (cancellable, never cancelled) context must
// not perturb the simulation in any observable way.
func TestUncancelledContextBitIdentical(t *testing.T) {
	run := func(ctx context.Context) (float64, uint64) {
		k := NewKernel()
		if ctx != nil {
			k.SetContext(ctx)
		}
		for i := 0; i < 4; i++ {
			i := i
			k.Spawn("p", func(p *Proc) {
				for s := 0; s < 3000; s++ {
					p.Advance(float64(1 + (i+s)%7))
				}
			})
		}
		if err := k.Run(math.Inf(1)); err != nil {
			t.Fatal(err)
		}
		return k.Now(), k.Events()
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	bareT, bareE := run(nil)
	ctxT, ctxE := run(ctx)
	if bareT != ctxT || bareE != ctxE {
		t.Fatalf("context-bearing run diverged: (t=%g, events=%d) vs (t=%g, events=%d)",
			ctxT, ctxE, bareT, bareE)
	}
}

// TestSetContextBackgroundDisablesPolling: contexts that can never be
// cancelled (nil Done channel) must not arm the poll at all.
func TestSetContextBackgroundDisablesPolling(t *testing.T) {
	k := NewKernel()
	k.SetContext(context.Background())
	if k.ctx != nil {
		t.Fatal("Background context armed the cancellation poll")
	}
	k.SetContext(nil)
	if k.ctx != nil {
		t.Fatal("nil context armed the cancellation poll")
	}
}

// TestCancelledRunReapsGoroutines: after a cancelled run plus Shutdown,
// every process goroutine (including parked pool daemons) must be done.
func TestCancelledRunReapsGoroutines(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	k := NewKernel()
	k.SetContext(ctx)
	k.Spawn("worker", func(p *Proc) {
		for i := 0; ; i++ {
			if i == 5 {
				cancel()
			}
			k.Go("task", func(tp *Proc, _ any) { tp.Advance(1) }, nil)
			p.Advance(2)
		}
	})
	if err := k.Run(math.Inf(1)); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	k.Shutdown()
	for _, p := range k.procs {
		if !p.done {
			t.Fatalf("process %q still live after cancelled run + Shutdown", p.name)
		}
	}
}
