package des

import (
	"math"
	"testing"
)

// BenchmarkAdvance measures the per-event cost of a lone process stepping
// virtual time — the kernel's best case (empty queue ahead).
func BenchmarkAdvance(b *testing.B) {
	k := NewKernel()
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(math.Inf(1)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkHaltWake measures the immediate-dispatch path: two processes
// handing control back and forth at the same virtual instant, the pattern
// of condition broadcasts, barrier releases and resource hand-offs.
func BenchmarkHaltWake(b *testing.B) {
	k := NewKernel()
	var ping, pong *Proc
	k.Spawn("ping", func(p *Proc) {
		ping = p
		p.Halt() // until pong is registered
		for i := 0; i < b.N; i++ {
			pong.Wake()
			p.Halt()
		}
		pong.Wake()
	})
	k.Spawn("pong", func(p *Proc) {
		pong = p
		ping.Wake()
		p.Halt()
		for i := 0; i < b.N; i++ {
			ping.Wake()
			p.Halt()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(math.Inf(1)); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkManyProcs measures heap-bound throughput: 256 concurrent
// processes with staggered delays keep the event queue deep, so every
// Advance pays the full priority-queue cost.
func BenchmarkManyProcs(b *testing.B) {
	const procs = 256
	k := NewKernel()
	perProc := b.N/procs + 1
	for i := 0; i < procs; i++ {
		d := 1 + float64(i)/procs // distinct periods keep the heap busy
		k.Spawn("p", func(p *Proc) {
			for j := 0; j < perProc; j++ {
				p.Advance(d)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := k.Run(math.Inf(1)); err != nil {
		b.Fatal(err)
	}
}
