package des

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// stepper adapts a closure (holding its state in captured variables) to a
// Machine, the way a hand-written continuation would.
type stepper struct{ f func(p *Proc) bool }

func (s *stepper) Step(p *Proc) bool { return s.f(p) }

func TestSeqAdvanceOrdersEvents(t *testing.T) {
	k := NewSequentialKernel()
	var order []string
	bPC := 0
	k.SpawnSeq("b", &stepper{func(p *Proc) bool {
		switch bPC {
		case 0:
			bPC = 1
			if !p.AdvanceArm(2) {
				return false
			}
			fallthrough
		default:
			order = append(order, "b@2")
			return true
		}
	}})
	aPC := 0
	k.SpawnSeq("a", &stepper{func(p *Proc) bool {
		switch aPC {
		case 0:
			aPC = 1
			if !p.AdvanceArm(1) {
				return false
			}
			fallthrough
		case 1:
			order = append(order, "a@1")
			aPC = 2
			if !p.AdvanceArm(3) {
				return false
			}
			fallthrough
		default:
			order = append(order, "a@4")
			return true
		}
	}})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@1", "b@2", "a@4"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 4 {
		t.Fatalf("Now() = %g, want 4", k.Now())
	}
}

func TestSeqTieBreakBySpawnOrder(t *testing.T) {
	k := NewSequentialKernel()
	var order []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		pc := 0
		k.SpawnSeq(name, &stepper{func(p *Proc) bool {
			switch pc {
			case 0:
				pc = 1
				if !p.AdvanceArm(1) { // all wake at t=1
					return false
				}
				fallthrough
			default:
				order = append(order, name)
				return true
			}
		}})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"p0", "p1", "p2"} {
		if order[i] != name {
			t.Fatalf("tie-break order %v, want spawn order", order)
		}
	}
}

// TestSeqHaltAndWake: HaltArm parks a machine off the queue until another
// machine wakes it, and the sleeper resumes at the waker's virtual time.
func TestSeqHaltAndWake(t *testing.T) {
	k := NewSequentialKernel()
	wokeAt := -1.0
	slept := false
	sleeper := k.SpawnSeq("sleeper", &stepper{func(p *Proc) bool {
		if !slept {
			slept = true
			p.HaltArm()
			return false
		}
		wokeAt = p.Now()
		return true
	}})
	wPC := 0
	k.SpawnSeq("waker", &stepper{func(p *Proc) bool {
		switch wPC {
		case 0:
			wPC = 1
			if !p.AdvanceArm(5) {
				return false
			}
			fallthrough
		default:
			sleeper.Wake()
			return true
		}
	}})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if wokeAt != 5 {
		t.Fatalf("sleeper woke at t=%g, want 5", wokeAt)
	}
}

// TestSeqCondWaitArm: WaitArm queues a machine on a condition until a
// broadcast, the continuation form of the Cond.Wait/Broadcast pair.
func TestSeqCondWaitArm(t *testing.T) {
	k := NewSequentialKernel()
	var c Cond
	ready := false
	var observed []float64
	for i := 0; i < 3; i++ {
		k.SpawnSeq("waiter", &stepper{func(p *Proc) bool {
			for !ready { // the usual predicate loop, re-armed per resumption
				c.WaitArm(p)
				return false
			}
			observed = append(observed, p.Now())
			return true
		}})
	}
	sPC := 0
	k.SpawnSeq("signaller", &stepper{func(p *Proc) bool {
		switch sPC {
		case 0:
			sPC = 1
			if !p.AdvanceArm(2) {
				return false
			}
			fallthrough
		default:
			ready = true
			c.Broadcast()
			return true
		}
	}})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if len(observed) != 3 {
		t.Fatalf("%d waiters woke, want 3", len(observed))
	}
	for _, at := range observed {
		if at != 2 {
			t.Fatalf("waiter woke at t=%g, want 2", at)
		}
	}
}

// TestSeqGoReusesPooledRunner mirrors TestGoReusesPooledRunner: strictly
// sequential GoSeq tasks must share one pooled runner process.
func TestSeqGoReusesPooledRunner(t *testing.T) {
	k := NewSequentialKernel()
	const tasks = 100
	ran := 0
	newTask := func() Machine {
		pc := 0
		return &stepper{func(p *Proc) bool {
			switch pc {
			case 0:
				pc = 1
				if !p.AdvanceArm(1) {
					return false
				}
				fallthrough
			default:
				ran++
				return true
			}
		}}
	}
	i, dPC := 0, 0
	k.SpawnSeq("driver", &stepper{func(p *Proc) bool {
		for i < tasks {
			switch dPC {
			case 0:
				k.GoSeq("task", newTask())
				dPC = 1
				if !p.AdvanceArm(2) { // task finishes before the next is issued
					return false
				}
				fallthrough
			default:
				i++
				dPC = 0
			}
		}
		return true
	}})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if ran != tasks {
		t.Fatalf("ran %d tasks, want %d", ran, tasks)
	}
	if got := k.Procs(); got != 2 { // driver + one pooled runner
		t.Fatalf("spawned %d processes, want 2 (pool not reused)", got)
	}
}

func TestSeqDeadlockDetection(t *testing.T) {
	k := NewSequentialKernel()
	for _, name := range []string{"stuck1", "stuck2"} {
		k.SpawnSeq(name, &stepper{func(p *Proc) bool {
			p.HaltArm()
			return false
		}})
	}
	err := k.Run(math.Inf(1))
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run() = %v, want *DeadlockError", err)
	}
	if len(de.Procs) != 2 {
		t.Fatalf("deadlocked procs = %v, want 2", de.Procs)
	}
	if !strings.Contains(de.Error(), "stuck1") {
		t.Fatalf("error %q does not name the stuck process", de.Error())
	}
}

func TestSeqPanicBecomesRunFailure(t *testing.T) {
	k := NewSequentialKernel()
	bPC := 0
	k.SpawnSeq("boom", &stepper{func(p *Proc) bool {
		switch bPC {
		case 0:
			bPC = 1
			if !p.AdvanceArm(1) {
				return false
			}
			fallthrough
		default:
			panic("kaboom")
		}
	}})
	i := 0
	k.SpawnSeq("bystander", &stepper{func(p *Proc) bool {
		for i < 100 {
			i++
			if !p.AdvanceArm(1) {
				return false
			}
		}
		return true
	}})
	err := k.Run(math.Inf(1))
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Run() = %v, want propagated panic", err)
	}
	if k.Err() == nil {
		t.Fatal("kernel did not record the failure")
	}
}

func TestSeqRunUntilHorizonAndResume(t *testing.T) {
	k := NewSequentialKernel()
	steps := 0
	k.SpawnSeq("ticker", &stepper{func(p *Proc) bool {
		for steps < 10 {
			if !p.AdvanceArm(1) {
				return false
			}
			steps++
		}
		return true
	}})
	if err := k.Run(3.5); err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("steps at horizon = %d, want 3", steps)
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if steps != 10 {
		t.Fatalf("steps after resume = %d, want 10", steps)
	}
}

// TestSeqPreCancelledContext: the upfront cancellation check holds on the
// sequential engine — no machine ever steps.
func TestSeqPreCancelledContext(t *testing.T) {
	k := NewSequentialKernel()
	ran := false
	k.SpawnSeq("p", &stepper{func(p *Proc) bool { ran = true; return true }})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k.SetContext(ctx)
	err := k.Run(math.Inf(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("machine stepped under a pre-cancelled context")
	}
}

// TestSeqCancelStopsDispatch cancels mid-run: two machines ping-pong
// through the event queue and the scheduler loop must stop within one
// poll interval of the cancellation.
func TestSeqCancelStopsDispatch(t *testing.T) {
	const total = 100 * ctxPollInterval
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	k := NewSequentialKernel()
	k.SetContext(ctx)
	steps := 0
	k.SpawnSeq("a", &stepper{func(p *Proc) bool {
		for steps < total {
			if steps == 10 {
				cancel()
			}
			steps++
			if !p.AdvanceArm(1) {
				return false
			}
		}
		return true
	}})
	i := 0
	k.SpawnSeq("b", &stepper{func(p *Proc) bool {
		for i < total {
			i++
			if !p.AdvanceArm(1) {
				return false
			}
		}
		return true
	}})
	err := k.Run(math.Inf(1))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run() = %v, want context.Canceled", err)
	}
	if steps >= total {
		t.Fatalf("machine completed all %d steps despite cancellation", total)
	}
	if steps > 10+2*ctxPollInterval {
		t.Fatalf("run continued for %d steps after cancelling at step 10", steps)
	}
}

// TestSeqEngineGuards: the two engines reject each other's spawn and
// blocking primitives loudly rather than corrupting the schedule.
func TestSeqEngineGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	seq := NewSequentialKernel()
	mustPanic("Spawn on sequential kernel", func() { seq.Spawn("p", func(p *Proc) {}) })
	mustPanic("Go on sequential kernel", func() { seq.Go("t", func(p *Proc, _ any) {}, nil) })
	gor := NewKernel()
	mustPanic("SpawnSeq on goroutine kernel", func() { gor.SpawnSeq("p", &stepper{func(p *Proc) bool { return true }}) })
	mustPanic("GoSeq on goroutine kernel", func() { gor.GoSeq("t", &stepper{func(p *Proc) bool { return true }}) })
}

// TestSeqGoroutineBlockingFailsLoudly: a Machine that calls a
// goroutine-style blocking primitive (here Advance forced onto its slow
// path) must turn into a recorded run failure naming the Arm rule, not a
// silent hang.
func TestSeqGoroutineBlockingFailsLoudly(t *testing.T) {
	k := NewSequentialKernel()
	k.SpawnSeq("old-style", &stepper{func(p *Proc) bool {
		p.Advance(20) // beyond the horizon: cannot take the lookahead fast path
		return true
	}})
	err := k.Run(10)
	if err == nil || !strings.Contains(err.Error(), "Arm primitives") {
		t.Fatalf("Run() = %v, want a failure naming the Arm primitives", err)
	}
}
