package des

import (
	"errors"
	"math"
	"runtime"
	"testing"
	"time"
)

// TestStaleWakeSkipped schedules a process twice (as a racing double wake
// would) and checks that only the latest schedule dispatches: the stale
// event is popped and skipped, the process runs exactly once.
func TestStaleWakeSkipped(t *testing.T) {
	k := NewKernel()
	runs := 0
	var p *Proc
	p = k.Spawn("sleeper", func(p *Proc) {
		runs++
		p.Halt()
	})
	// Superseding schedule: the Spawn event is still pending, so this
	// invalidates it and only the new event may dispatch.
	k.schedule(p, k.now)
	if err := k.Run(1); err == nil {
		t.Fatal("expected deadlock from the final Halt")
	}
	if runs != 1 {
		t.Fatalf("process ran %d times, want exactly 1 (stale wake not skipped)", runs)
	}
	if got := k.Events(); got != 1 {
		t.Fatalf("dispatched %d events, want 1 (stale event must not count)", got)
	}
}

// TestGoReusesPooledRunner issues many sequential tasks through Kernel.Go
// and checks they all run on one persistent runner goroutine instead of
// spawning per task.
func TestGoReusesPooledRunner(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	const tasks = 100
	ran := 0
	k.Spawn("driver", func(p *Proc) {
		for i := 0; i < tasks; i++ {
			k.Go("task", func(tp *Proc, _ any) {
				tp.Advance(1)
				ran++
			}, nil)
			p.Advance(2) // task finishes before the next is issued
		}
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if ran != tasks {
		t.Fatalf("ran %d tasks, want %d", ran, tasks)
	}
	if got := k.Procs(); got != 2 { // driver + one pooled runner
		t.Fatalf("spawned %d process goroutines, want 2 (pool not reused)", got)
	}
}

// TestGoOverlappingTasksGrowPool checks the complementary property: tasks
// in flight at the same time each need a runner, and the pool retains them
// for later reuse.
func TestGoOverlappingTasksGrowPool(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	k.Spawn("driver", func(p *Proc) {
		for round := 0; round < 5; round++ {
			for i := 0; i < 4; i++ {
				k.Go("task", func(tp *Proc, _ any) { tp.Advance(1) }, nil)
			}
			p.Advance(2) // all four finish before the next round
		}
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if got := k.Procs(); got != 5 { // driver + the 4 concurrent runners
		t.Fatalf("spawned %d process goroutines, want 5", got)
	}
}

// TestDeadlockExcludesParkedDaemons checks the liveness rule: a run whose
// only remaining processes are parked daemons completes, while a halted
// non-daemon still deadlocks and the report names only the non-daemon.
func TestDeadlockExcludesParkedDaemons(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	k.SpawnDaemon("worker-daemon", func(p *Proc) {
		for {
			p.Halt()
		}
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatalf("parked daemon must not hold the run open: %v", err)
	}

	k.Spawn("stuck", func(p *Proc) { p.Halt() })
	err := k.Run(math.Inf(1))
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(dl.Procs) != 1 || dl.Procs[0] != "stuck" {
		t.Fatalf("deadlock names %v, want [stuck] (daemon must be excluded)", dl.Procs)
	}
}

// TestDeadlockIncludesBusyPooledRunner checks that a pooled runner halted
// mid-task counts as deadlocked work: it holds an unfinished task even
// though its goroutine is a daemon.
func TestDeadlockIncludesBusyPooledRunner(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	k.Spawn("driver", func(p *Proc) {
		k.Go("courier", func(tp *Proc, _ any) { tp.Halt() }, nil)
		p.Advance(1)
	})
	err := k.Run(math.Inf(1))
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("got %v, want DeadlockError", err)
	}
	if len(dl.Procs) != 1 || dl.Procs[0] != "courier" {
		t.Fatalf("deadlock names %v, want [courier]", dl.Procs)
	}
}

// TestShutdownReapsParkedWorkers checks that Shutdown unwinds the
// goroutines of parked pooled runners and daemons after a completed run.
func TestShutdownReapsParkedWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	k := NewKernel()
	k.SpawnDaemon("daemon", func(p *Proc) {
		for {
			p.Halt()
		}
	})
	k.Spawn("driver", func(p *Proc) {
		for i := 0; i < 8; i++ {
			k.Go("task", func(tp *Proc, _ any) { tp.Advance(1) }, nil)
		}
		p.Advance(5)
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	k.Shutdown() // idempotent
	for wait := 0; runtime.NumGoroutine() > before && wait < 100; wait++ {
		time.Sleep(time.Millisecond) // exiting goroutines unwind asynchronously
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines alive after Shutdown, want <= %d", got, before)
	}
}

// TestShutdownAfterHorizonRun checks that Shutdown also reaps processes
// that still hold pending events from a horizon-bounded run.
func TestShutdownAfterHorizonRun(t *testing.T) {
	before := runtime.NumGoroutine()
	k := NewKernel()
	k.Spawn("ticker", func(p *Proc) {
		for {
			p.Advance(1)
		}
	})
	if err := k.Run(3); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	for wait := 0; runtime.NumGoroutine() > before && wait < 100; wait++ {
		time.Sleep(time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines alive after Shutdown, want <= %d", got, before)
	}
}
