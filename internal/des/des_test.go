package des

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

func TestAdvanceOrdersEvents(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("b", func(p *Proc) {
		p.Advance(2)
		order = append(order, "b@2")
	})
	k.Spawn("a", func(p *Proc) {
		p.Advance(1)
		order = append(order, "a@1")
		p.Advance(3)
		order = append(order, "a@4")
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	want := []string{"a@1", "b@2", "a@4"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if k.Now() != 4 {
		t.Fatalf("Now() = %g, want 4", k.Now())
	}
}

func TestTieBreakBySpawnOrder(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, name := range []string{"p0", "p1", "p2"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			p.Advance(1) // all wake at t=1
			order = append(order, name)
		})
	}
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"p0", "p1", "p2"} {
		if order[i] != name {
			t.Fatalf("tie-break order %v, want spawn order", order)
		}
	}
}

func TestNegativeAndNaNAdvance(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		p.Advance(-5)
		if p.Now() != 0 {
			t.Errorf("negative advance moved clock to %g", p.Now())
		}
		p.Advance(math.NaN())
		if p.Now() != 0 {
			t.Errorf("NaN advance moved clock to %g", p.Now())
		}
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
}

func TestHaltAndWake(t *testing.T) {
	k := NewKernel()
	var woken float64
	var target *Proc
	k.Spawn("sleeper", func(p *Proc) {
		target = p
		p.Halt()
		woken = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Advance(5)
		target.Wake()
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if woken != 5 {
		t.Fatalf("sleeper woke at %g, want 5", woken)
	}
}

func TestWakeNonHaltedPanics(t *testing.T) {
	k := NewKernel()
	var first *Proc
	k.Spawn("a", func(p *Proc) {
		first = p
		p.Advance(1)
	})
	k.Spawn("b", func(p *Proc) {
		first.Wake() // first has a pending wake event, not halted
	})
	// The panic unwinds process "b"; Run reports it as a failure.
	err := k.Run(math.Inf(1))
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("Run() = %v, want panic failure", err)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck1", func(p *Proc) { p.Halt() })
	k.Spawn("stuck2", func(p *Proc) { p.Halt() })
	err := k.Run(math.Inf(1))
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run() = %v, want *DeadlockError", err)
	}
	if len(de.Procs) != 2 {
		t.Fatalf("deadlocked procs = %v, want 2", de.Procs)
	}
	if !strings.Contains(de.Error(), "stuck1") {
		t.Fatalf("error %q does not name the stuck process", de.Error())
	}
}

func TestPanicPropagation(t *testing.T) {
	k := NewKernel()
	k.Spawn("boom", func(p *Proc) {
		p.Advance(1)
		panic("kaboom")
	})
	k.Spawn("bystander", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Advance(1)
		}
	})
	err := k.Run(math.Inf(1))
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("Run() = %v, want propagated panic", err)
	}
	if k.Err() == nil {
		t.Fatal("kernel did not record the failure")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	k := NewKernel()
	steps := 0
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(1)
			steps++
		}
	})
	if err := k.Run(3.5); err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Fatalf("steps at horizon = %d, want 3", steps)
	}
	// Resuming continues from where the run stopped.
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if steps != 10 {
		t.Fatalf("steps after resume = %d, want 10", steps)
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	trace := func(seed int64) []string {
		k := NewKernel()
		rng := rand.New(rand.NewSource(seed))
		var out []string
		for i := 0; i < 5; i++ {
			name := string(rune('a' + i))
			delays := make([]float64, 20)
			for j := range delays {
				delays[j] = rng.Float64()
			}
			k.Spawn(name, func(p *Proc) {
				for _, d := range delays {
					p.Advance(d)
					out = append(out, name)
				}
			})
		}
		if err := k.Run(math.Inf(1)); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := trace(42), trace(42)
	if strings.Join(a, "") != strings.Join(b, "") {
		t.Fatal("identical seeds produced different interleavings")
	}
	c := trace(43)
	if strings.Join(a, "") == strings.Join(c, "") {
		t.Fatal("different seeds produced identical interleavings (suspicious)")
	}
}

// TestVirtualTimeMatchesSortedDelays checks, property-style, that for any
// set of one-shot processes the completion order equals the sorted delays.
func TestVirtualTimeMatchesSortedDelays(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(20)
		delays := make([]float64, n)
		for i := range delays {
			delays[i] = rng.Float64() * 100
		}
		k := NewKernel()
		var done []float64
		for i := 0; i < n; i++ {
			d := delays[i]
			k.Spawn("p", func(p *Proc) {
				p.Advance(d)
				done = append(done, p.Now())
			})
		}
		if err := k.Run(math.Inf(1)); err != nil {
			t.Fatal(err)
		}
		if !sort.Float64sAreSorted(done) {
			t.Fatalf("trial %d: completion times not sorted: %v", trial, done)
		}
		want := append([]float64(nil), delays...)
		sort.Float64s(want)
		for i := range want {
			if done[i] != want[i] {
				t.Fatalf("trial %d: completions %v != sorted delays %v", trial, done, want)
			}
		}
	}
}

func TestSpawnDuringRun(t *testing.T) {
	k := NewKernel()
	var childTime float64
	k.Spawn("parent", func(p *Proc) {
		p.Advance(2)
		k.Spawn("child", func(c *Proc) {
			c.Advance(3)
			childTime = c.Now()
		})
		p.Advance(10)
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	if childTime != 5 {
		t.Fatalf("child finished at %g, want 5", childTime)
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel()
	k.Spawn("named", func(p *Proc) {
		if p.Name() != "named" {
			t.Errorf("Name() = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel() mismatch")
		}
	})
	if err := k.Run(math.Inf(1)); err != nil {
		t.Fatal(err)
	}
}
