// Package des implements a deterministic discrete-event simulation kernel
// with goroutine-backed logical processes.
//
// The kernel advances a virtual clock over a priority queue of events.
// Simulated processes are ordinary Go functions running in their own
// goroutines; they interact with virtual time exclusively through their
// *Proc handle (Advance, Halt, resource and condition primitives). At any
// instant exactly one process executes, so process code needs no locking and
// every run with the same inputs is bit-for-bit reproducible: ties in event
// time are broken by a monotone sequence number.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// errAborted is the panic value injected into processes when the kernel
// aborts a run (another process failed, or the caller stopped the kernel).
// It is recovered by the process wrapper; user code never observes it.
type abortSignal struct{}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now    float64
	events eventHeap
	seq    uint64

	yield   chan struct{} // signalled by the running process when it parks
	live    int           // processes spawned and not yet finished
	blocked int           // processes halted with no pending wake event
	procs   []*Proc

	failure error // first process panic, if any
	aborted bool
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now reports the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Err reports the first process failure observed during Run, or nil.
func (k *Kernel) Err() error { return k.failure }

type event struct {
	t   float64
	seq uint64
	p   *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Proc is the handle through which a simulated process interacts with
// virtual time. A Proc is only valid inside the function passed to Spawn
// and must not be shared across simulated processes.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan struct{}
	wakeSeq uint64 // sequence of the pending wake event; 0 when halted
	halted  bool
	done    bool
}

// Name returns the label the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() float64 { return p.k.now }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Spawn registers fn as a new simulated process that becomes runnable at
// the current virtual time. fn runs in its own goroutine but only while the
// kernel has scheduled it, so fn may freely touch state shared with other
// simulated processes.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan struct{})}
	k.procs = append(k.procs, p)
	k.live++
	k.schedule(p, k.now)
	go func() {
		<-p.resume // wait for first dispatch
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); !ok && k.failure == nil {
					k.failure = fmt.Errorf("des: process %q panicked: %v", name, r)
				}
			}
			p.done = true
			k.live--
			k.yield <- struct{}{}
		}()
		fn(p)
	}()
	return p
}

// schedule enqueues a wake event for p at time t.
func (k *Kernel) schedule(p *Proc, t float64) {
	k.seq++
	p.wakeSeq = k.seq
	heap.Push(&k.events, event{t: t, seq: k.seq, p: p})
}

// park transfers control from the running process back to the kernel and
// blocks until the kernel dispatches this process again.
func (p *Proc) park() {
	p.k.yield <- struct{}{}
	<-p.resume
	if p.k.aborted {
		panic(abortSignal{})
	}
}

// Advance suspends the process for dt seconds of virtual time.
// Negative or NaN durations are treated as zero (the process yields and is
// rescheduled at the current instant, after already-pending events).
func (p *Proc) Advance(dt float64) {
	if dt < 0 || math.IsNaN(dt) {
		dt = 0
	}
	p.k.schedule(p, p.k.now+dt)
	p.park()
}

// Halt blocks the process indefinitely until another process calls Wake.
func (p *Proc) Halt() {
	p.halted = true
	p.wakeSeq = 0
	p.k.blocked++
	p.park()
}

// Wake makes a halted process runnable at the current virtual time.
// Waking a process that is not halted panics: it would corrupt the
// scheduler invariant that each process has at most one pending wake.
func (p *Proc) Wake() {
	if !p.halted {
		panic(fmt.Sprintf("des: Wake on non-halted process %q", p.name))
	}
	p.halted = false
	p.k.blocked--
	p.k.schedule(p, p.k.now)
}

// DeadlockError reports a run that stopped because every live process was
// halted with no pending events.
type DeadlockError struct {
	Time  float64
	Procs []string // names of halted processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("des: deadlock at t=%g: %d process(es) halted: %v", e.Time, len(e.Procs), e.Procs)
}

// Run executes events until the event queue is empty, a process fails, or
// the virtual clock would exceed until (use math.Inf(1) for no horizon).
// It returns the first process failure, a *DeadlockError if live processes
// remain halted with nothing scheduled, or nil.
func (k *Kernel) Run(until float64) error {
	for k.events.Len() > 0 {
		ev := heap.Pop(&k.events).(event)
		if ev.p.done || ev.seq != ev.p.wakeSeq {
			continue // stale wake (process was rescheduled or finished)
		}
		if ev.t > until {
			// Push back so a later Run can continue from here.
			heap.Push(&k.events, ev)
			return nil
		}
		if ev.t > k.now {
			k.now = ev.t
		}
		ev.p.wakeSeq = 0
		ev.p.resume <- struct{}{}
		<-k.yield
		if k.failure != nil {
			k.abort()
			return k.failure
		}
	}
	if k.live > 0 {
		var names []string
		for _, p := range k.procs {
			if !p.done && p.halted {
				names = append(names, p.name)
			}
		}
		sort.Strings(names)
		err := &DeadlockError{Time: k.now, Procs: names}
		k.abort()
		return err
	}
	return nil
}

// abort unblocks every live process with an abort signal so their
// goroutines exit; the kernel becomes unusable afterwards.
func (k *Kernel) abort() {
	if k.aborted {
		return
	}
	k.aborted = true
	for _, p := range k.procs {
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-k.yield
	}
}
