// Package des implements a deterministic discrete-event simulation kernel
// with two interchangeable process engines.
//
// The kernel advances a virtual clock over a priority queue of events. In
// the reference goroutine engine (NewKernel), simulated processes are
// ordinary Go functions running in their own goroutines; they interact with
// virtual time exclusively through their *Proc handle (Advance, Halt,
// resource and condition primitives). In the sequential engine
// (NewSequentialKernel, see seq.go), process bodies are explicit
// continuations (Machine values) dispatched by one scheduler loop on the
// caller's goroutine — no channel handoff, no goroutine parking. Both
// engines share the queues, the sequence-number discipline and the fast
// paths below, so a run is bit-for-bit identical on either. At any
// instant exactly one process executes, so process code needs no locking and
// every run with the same inputs is bit-for-bit reproducible: ties in event
// time are broken by a monotone sequence number.
//
// The event queue is split for speed along the two access patterns the
// simulator generates:
//
//   - future events (Advance with dt > 0) go through a typed 4-ary min-heap
//     with inlined sift operations — no interface boxing, no per-event
//     allocation;
//   - immediate events (Wake, Spawn, Advance(0)) go through a FIFO ring:
//     they are scheduled at the current instant with monotonically
//     increasing sequence numbers, so FIFO order *is* (time, seq) order and
//     they never touch the heap.
//
// Dispatch takes the lexicographic minimum of the two queue heads. Control
// transfers directly from the parking process to the next one dispatched —
// one goroutine handoff per event instead of a round-trip through a
// scheduler goroutine — and two fast paths eliminate the handoff entirely:
//
//   - Advance lookahead: when no pending event precedes the advancing
//     process's wake, the clock just moves forward — no event, no handoff;
//   - self-dispatch: when the next event dispatched belongs to the parking
//     process itself, park returns immediately.
package des

import (
	"context"
	"fmt"
	"math"
	"sort"

	"hybridperf/internal/metrics"
)

// ctxPollInterval is how many dispatch-loop steps (dispatched events plus
// lookahead advances) pass between two polls of an attached context. It
// trades cancellation latency against hot-path cost: polling ctx.Err()
// takes a mutex, so checking every step would be measurable, while one
// check per 1024 steps is noise yet still bounds the cancellation delay
// of a run to microseconds of real time.
const ctxPollInterval = 1024

// abortSignal is the panic value injected into processes when the kernel
// aborts a run (another process failed, the caller stopped the kernel, or
// Shutdown reaps pooled workers). It is recovered by the process wrapper;
// user code never observes it.
type abortSignal struct{}

// Kernel is a discrete-event simulation engine. The zero value is not
// usable; create kernels with NewKernel.
type Kernel struct {
	now float64
	seq uint64

	heap    []event // future events: 4-ary min-heap on (t, seq)
	imm     []event // immediate events: FIFO ring, already (t, seq)-sorted
	immH    int     // imm head index
	horizon float64 // the active Run's until bound (limits the fast path)

	main       chan struct{} // resume channel of the Run caller
	live       int           // non-daemon processes spawned and not yet finished
	busyGo     int           // pooled task runners currently executing a task
	procs      []*Proc
	pool       []*Proc // parked pooled task runners (LIFO)
	dispatched uint64

	failure error // first process panic, if any
	aborted bool
	seqMode bool // sequential engine: Machine continuations, no goroutines

	// ctx, when non-nil, cancels the run cooperatively: the dispatch loop
	// polls ctx.Err() every ctxPollInterval steps and records a
	// cancellation as the run failure, unwinding through the ordinary
	// abort path. Polling never touches the event queues or sequence
	// numbers, so an uncancelled run is bit-identical with or without a
	// context attached.
	ctx       context.Context
	ctxBudget int

	// mx, when non-nil, receives observability counters. Hot-path hooks
	// cost one nil check when off; the counters never feed back into
	// scheduling, so instrumented runs stay bit-for-bit identical.
	mx *metrics.Engine
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{main: make(chan struct{})}
}

// Now reports the current virtual time in seconds.
func (k *Kernel) Now() float64 { return k.now }

// Err reports the first process failure observed during Run, or nil.
func (k *Kernel) Err() error { return k.failure }

// Events reports the number of events dispatched so far (lookahead
// fast-path advances are not events; they bypass the queue entirely).
func (k *Kernel) Events() uint64 { return k.dispatched }

// Procs reports the number of logical processes ever spawned, including
// daemons and pooled task runners — goroutines on the goroutine engine,
// continuation records on the sequential engine (both engines create the
// same set). With persistent worker pools this stays near the process
// count of the simulated system instead of growing with the event count.
func (k *Kernel) Procs() int { return len(k.procs) }

// SetContext attaches a cancellation context to the kernel (nil, or a
// context that can never be cancelled, detaches). A cancelled context
// stops the run mid-simulation: Run returns an error wrapping ctx.Err()
// and every process goroutine — pooled daemons included — is reaped by
// the abort, so Shutdown afterwards is a no-op but remains safe to call.
func (k *Kernel) SetContext(ctx context.Context) {
	if ctx == nil || ctx.Done() == nil {
		k.ctx = nil
		return
	}
	k.ctx = ctx
	k.ctxBudget = ctxPollInterval
}

// pollCtx checks the attached context at most once per ctxPollInterval
// calls and records a cancellation as the run failure. It reports whether
// the run is being cancelled.
func (k *Kernel) pollCtx() bool {
	if k.ctx == nil {
		return false
	}
	k.ctxBudget--
	if k.ctxBudget > 0 {
		return false
	}
	k.ctxBudget = ctxPollInterval
	if err := k.ctx.Err(); err != nil {
		if k.failure == nil {
			k.failure = fmt.Errorf("des: run cancelled after %d events at t=%g: %w", k.dispatched, k.now, err)
		}
		return true
	}
	return false
}

// SetMetrics attaches an observability counter set to the kernel (nil
// detaches). Several kernels may share one Engine: its counters are
// atomic, so concurrent sweep workers can aggregate into a single set.
func (k *Kernel) SetMetrics(m *metrics.Engine) { k.mx = m }

// Metrics returns the attached counter set, or nil when instrumentation
// is off. Simulated runtimes built on the kernel (omp, mpi) use it to
// publish their own counters without extra plumbing.
func (k *Kernel) Metrics() *metrics.Engine { return k.mx }

type event struct {
	t   float64
	seq uint64
	p   *Proc
}

// heapPush inserts e into the 4-ary min-heap (sift-up, inlined compare).
func (k *Kernel) heapPush(e event) {
	if k.mx != nil {
		k.mx.HeapHighWater.Observe(uint64(len(k.heap) + 1))
	}
	h := append(k.heap, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		if h[parent].t < h[i].t || (h[parent].t == h[i].t && h[parent].seq < h[i].seq) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	k.heap = h
}

// heapPop removes and returns the minimum event. Callers check emptiness.
func (k *Kernel) heapPop() event {
	h := k.heap
	top := h[0]
	last := len(h) - 1
	e := h[last]
	h = h[:last]
	k.heap = h
	if last > 0 {
		// Sift the former tail down from the root across 4 children:
		// find the smallest child below e's key, promote it, descend.
		i := 0
		for {
			min := -1
			minT, minSeq := e.t, e.seq
			c0 := i<<2 + 1
			cEnd := c0 + 4
			if cEnd > last {
				cEnd = last
			}
			for c := c0; c < cEnd; c++ {
				if h[c].t < minT || (h[c].t == minT && h[c].seq < minSeq) {
					min, minT, minSeq = c, h[c].t, h[c].seq
				}
			}
			if min < 0 {
				break
			}
			h[i] = h[min]
			i = min
		}
		h[i] = e
	}
	return top
}

// Proc is the handle through which a simulated process interacts with
// virtual time. A Proc is only valid inside the function passed to Spawn
// and must not be shared across simulated processes.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan struct{}
	wakeSeq uint64 // sequence of the pending wake event; 0 when halted
	halted  bool
	done    bool
	daemon  bool // excluded from liveness/deadlock accounting

	// Pooled task runner state (see Kernel.Go).
	task    func(*Proc, any)
	taskCtx any

	// Sequential-engine state (see seq.go). body is the process's
	// continuation; pooled runners carry their current task in seqTask.
	body    Machine
	seqTask Machine
	pooled  bool
}

// Name returns the label the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() float64 { return p.k.now }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Spawn registers fn as a new simulated process that becomes runnable at
// the current virtual time. fn runs in its own goroutine but only while the
// kernel has scheduled it, so fn may freely touch state shared with other
// simulated processes.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	return k.spawn(name, false, fn)
}

// SpawnDaemon is Spawn for service processes that outlive the workload they
// serve: persistent worker-pool threads, pooled couriers. Daemons do not
// count toward liveness, so a run whose only remaining processes are parked
// daemons completes instead of reporting a deadlock; their goroutines are
// reaped by Shutdown (or any abort).
func (k *Kernel) SpawnDaemon(name string, fn func(*Proc)) *Proc {
	return k.spawn(name, true, fn)
}

func (k *Kernel) spawn(name string, daemon bool, fn func(*Proc)) *Proc {
	if k.seqMode {
		panic("des: goroutine Spawn on a sequential kernel (use SpawnSeq)")
	}
	p := &Proc{k: k, name: name, daemon: daemon, resume: make(chan struct{})}
	k.procs = append(k.procs, p)
	if !daemon {
		k.live++
	}
	k.schedule(p, k.now)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abortSignal); !ok && k.failure == nil {
					k.failure = fmt.Errorf("des: process %q panicked: %v", p.name, r)
				}
			}
			p.done = true
			if !p.daemon {
				k.live--
			}
			k.handoff()
		}()
		<-p.resume // wait for first dispatch
		if k.aborted {
			panic(abortSignal{})
		}
		fn(p)
	}()
	return p
}

// handoff transfers control from an exiting process to the next dispatched
// process, or back to the Run caller when nothing is runnable (queue empty,
// horizon reached, failure recorded, or the kernel is aborting).
func (k *Kernel) handoff() {
	if !k.aborted && k.failure == nil {
		if next := k.dispatchNext(); next != nil {
			if k.mx != nil {
				k.mx.Handoffs.Inc()
			}
			next.resume <- struct{}{}
			return
		}
	}
	k.main <- struct{}{}
}

// Go runs fn(p, ctx) as a short-lived simulated process drawn from the
// kernel's pooled runners: the first calls spawn fresh daemon goroutines,
// later calls reuse parked ones, so steady-state task dispatch allocates
// nothing and creates no goroutines. fn must not retain p past its return.
// The ctx value lets callers pass a reused task struct through a plain
// function, avoiding a closure allocation per task.
func (k *Kernel) Go(name string, fn func(*Proc, any), ctx any) {
	if k.seqMode {
		panic("des: goroutine Go on a sequential kernel (use GoSeq)")
	}
	k.busyGo++
	if k.mx != nil {
		if len(k.pool) > 0 {
			k.mx.PoolHits.Inc()
		} else {
			k.mx.PoolSpawns.Inc()
		}
	}
	if n := len(k.pool); n > 0 {
		p := k.pool[n-1]
		k.pool = k.pool[:n-1]
		p.name = name
		p.task, p.taskCtx = fn, ctx
		p.Wake()
		return
	}
	p := k.spawn(name, true, func(p *Proc) {
		for {
			p.task(p, p.taskCtx)
			p.task, p.taskCtx = nil, nil
			p.k.busyGo--
			p.k.pool = append(p.k.pool, p)
			p.Halt()
		}
	})
	p.task, p.taskCtx = fn, ctx
}

// schedule enqueues a wake event for p at time t. Immediate events
// (t == now — Spawn, Wake, zero Advance) go to the FIFO ring: the clock
// never moves backwards and sequence numbers are monotone, so appending
// preserves (t, seq) order without a heap round-trip.
func (k *Kernel) schedule(p *Proc, t float64) {
	k.seq++
	p.wakeSeq = k.seq
	if t <= k.now {
		if k.immH == len(k.imm) {
			k.imm = k.imm[:0]
			k.immH = 0
		}
		k.imm = append(k.imm, event{t: t, seq: k.seq, p: p})
		return
	}
	k.heapPush(event{t: t, seq: k.seq, p: p})
}

// park suspends the running process: it dispatches the next pending event
// itself and hands control directly to that process (or back to the Run
// caller when nothing is runnable), then blocks until re-dispatched. When
// the next event belongs to this very process, park returns immediately —
// no goroutine switch at all.
func (p *Proc) park() {
	k := p.k
	if k.seqMode {
		panic(fmt.Sprintf("des: goroutine-style blocking by %q on a sequential kernel (Machines must use the Arm primitives and yield)", p.name))
	}
	next := k.dispatchNext()
	if next == p {
		if k.mx != nil {
			k.mx.SelfDispatches.Inc()
		}
		return
	}
	if next != nil {
		if k.mx != nil {
			k.mx.Handoffs.Inc()
		}
		next.resume <- struct{}{}
	} else {
		k.main <- struct{}{}
	}
	<-p.resume
	if k.aborted {
		panic(abortSignal{})
	}
}

// Advance suspends the process for dt seconds of virtual time.
// Negative or NaN durations are treated as zero (the process yields and is
// rescheduled at the current instant, after already-pending events).
//
// Fast path: when no pending event precedes this process's wake — the FIFO
// is drained and the heap is empty or strictly later — the kernel would
// dispatch this same process next, so Advance just moves the clock and
// returns without parking. Sequence numbers are consumed per *scheduled*
// event only; skipping the round-trip preserves the relative order of all
// surviving events, so runs remain bit-for-bit identical.
func (p *Proc) Advance(dt float64) {
	if !p.AdvanceArm(dt) {
		p.park()
	}
}

// AdvanceArm is the non-suspending form of Advance shared by both engines:
// it either consumes dt synchronously via the lookahead fast path (true —
// the clock has already moved, keep executing) or schedules the process's
// wake at now+dt and reports false. On a false return a goroutine process
// parks (Advance does this); a sequential Machine must return false up to
// the scheduler loop and re-enter at its next Step.
func (p *Proc) AdvanceArm(dt float64) bool {
	if dt < 0 || math.IsNaN(dt) {
		dt = 0
	}
	k := p.k
	if k.immH == len(k.imm) && !k.aborted {
		t := k.now + dt
		// The cancellation poll rides the fast path too: a single-process
		// compute loop dispatches almost no events, so counting only
		// dispatches would let it outrun a cancelled context. A cancelled
		// run falls through to the scheduled path, which unwinds via the
		// abort path.
		if t <= k.horizon && (len(k.heap) == 0 || k.heap[0].t > t) && !k.pollCtx() {
			k.now = t
			if k.mx != nil {
				k.mx.Lookaheads.Inc()
			}
			return true
		}
	}
	k.schedule(p, k.now+dt)
	return false
}

// Halt blocks the process indefinitely until another process calls Wake.
func (p *Proc) Halt() {
	p.HaltArm()
	p.park()
}

// HaltArm marks the process halted without suspending it: the sequential
// form of Halt. The calling Machine must yield (return false) immediately
// after arming; the process becomes runnable again when another process
// calls Wake.
func (p *Proc) HaltArm() {
	p.halted = true
	p.wakeSeq = 0
}

// Wake makes a halted process runnable at the current virtual time.
// Waking a process that is not halted panics: it would corrupt the
// scheduler invariant that each process has at most one pending wake.
func (p *Proc) Wake() {
	if !p.halted {
		panic(fmt.Sprintf("des: Wake on non-halted process %q", p.name))
	}
	p.halted = false
	p.k.schedule(p, p.k.now)
}

// DeadlockError reports a run that stopped because every live process was
// halted with no pending events.
type DeadlockError struct {
	Time  float64
	Procs []string // names of halted processes
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("des: deadlock at t=%g: %d process(es) halted: %v", e.Time, len(e.Procs), e.Procs)
}

// next returns the (time, seq)-minimum pending event without removing it.
func (k *Kernel) next() (event, bool) {
	immOK := k.immH < len(k.imm)
	heapOK := len(k.heap) > 0
	switch {
	case immOK && heapOK:
		ie, he := k.imm[k.immH], k.heap[0]
		if he.t < ie.t || (he.t == ie.t && he.seq < ie.seq) {
			return he, true
		}
		return ie, true
	case immOK:
		return k.imm[k.immH], true
	case heapOK:
		return k.heap[0], true
	}
	return event{}, false
}

// pop removes the event peek'd by next (the global minimum).
func (k *Kernel) pop(e event) {
	if k.immH < len(k.imm) && k.imm[k.immH].seq == e.seq {
		k.immH++
		return
	}
	k.heapPop()
}

// dispatchNext pops stale wakes, then dispatches the (time, seq)-minimum
// pending event: the clock moves to its time and its process is returned,
// ready to be resumed. It returns nil when the queue is drained or the head
// event lies beyond the run horizon (left queued for a later Run). The
// imm/heap head comparison and the pop are fused so each dispatch touches
// the queues exactly once.
func (k *Kernel) dispatchNext() *Proc {
	// A recorded failure (process panic or context cancellation) stops
	// dispatch: control unwinds to Run, which aborts every live process.
	if k.failure != nil || k.pollCtx() {
		return nil
	}
	for {
		var ev event
		fromImm := false
		immOK := k.immH < len(k.imm)
		switch {
		case immOK && len(k.heap) > 0:
			ie, he := k.imm[k.immH], k.heap[0]
			if he.t < ie.t || (he.t == ie.t && he.seq < ie.seq) {
				ev = he
			} else {
				ev, fromImm = ie, true
			}
		case immOK:
			ev, fromImm = k.imm[k.immH], true
		case len(k.heap) > 0:
			ev = k.heap[0]
		default:
			return nil
		}
		if ev.p.done || ev.seq != ev.p.wakeSeq {
			// Stale wake (process was rescheduled or finished).
			if fromImm {
				k.immH++
			} else {
				k.heapPop()
			}
			continue
		}
		if ev.t > k.horizon {
			return nil
		}
		if fromImm {
			k.immH++
		} else {
			k.heapPop()
		}
		if ev.t > k.now {
			k.now = ev.t
		}
		ev.p.wakeSeq = 0
		k.dispatched++
		if k.mx != nil {
			k.mx.Events.Inc()
		}
		return ev.p
	}
}

// Run executes events until the event queue is empty, a process fails, or
// the virtual clock would exceed until (use math.Inf(1) for no horizon).
// It returns the first process failure, a *DeadlockError if live processes
// remain halted with nothing scheduled, or nil. Parked daemon processes do
// not hold a run open: when only daemons remain the run is complete (reap
// them with Shutdown), but pooled runners still executing a task count as
// deadlocked work.
//
// Run hands control to the first dispatched process and receives it back
// only when nothing is runnable; in between, control passes from process to
// process without returning here.
func (k *Kernel) Run(until float64) error {
	if k.seqMode {
		return k.runSeq(until)
	}
	k.horizon = until
	if k.ctx != nil && k.failure == nil {
		if err := k.ctx.Err(); err != nil {
			k.failure = fmt.Errorf("des: run cancelled: %w", err)
		}
	}
	if next := k.dispatchNext(); next != nil {
		if k.mx != nil {
			k.mx.SchedulerDispatches.Inc()
		}
		next.resume <- struct{}{}
		<-k.main
	}
	return k.finish()
}

// finish classifies the run's terminal state once dispatch has stopped:
// recorded failure, horizon-limited (queue intact), completion, or
// deadlock. Shared by both engines.
func (k *Kernel) finish() error {
	if k.failure != nil {
		k.abort()
		return k.failure
	}
	if _, ok := k.next(); ok {
		// Head event beyond the horizon: stop with the queue intact.
		return nil
	}
	if k.live > 0 || k.busyGo > 0 {
		var names []string
		for _, p := range k.procs {
			if p.done || !p.halted {
				continue
			}
			if !p.daemon || p.task != nil || p.seqTask != nil {
				names = append(names, p.name)
			}
		}
		sort.Strings(names)
		err := &DeadlockError{Time: k.now, Procs: names}
		k.abort()
		return err
	}
	return nil
}

// Shutdown reaps every remaining process goroutine — parked worker-pool
// daemons included — and renders the kernel unusable. Call it once the
// run's results have been read; it is idempotent and safe after failed
// runs (which abort on their own).
func (k *Kernel) Shutdown() { k.abort() }

// abort unblocks every live process with an abort signal so their
// goroutines exit; the kernel becomes unusable afterwards. On the
// sequential engine there are no goroutines to reap: marking the kernel
// aborted is all teardown requires.
func (k *Kernel) abort() {
	if k.aborted {
		return
	}
	k.aborted = true
	if k.seqMode {
		return
	}
	for _, p := range k.procs {
		if p.done {
			continue
		}
		p.resume <- struct{}{}
		<-k.main
	}
}
