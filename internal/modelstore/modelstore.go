// Package modelstore persists characterisation summaries across process
// restarts: the paper's idiom is "characterize once, then predict
// cheaply", and without a store the expensive part — the DES
// characterisation campaign — dies with the process. A Store is a
// directory of versioned, checksummed JSON snapshots of core.Inputs,
// written atomically (temp file + rename) after each successful campaign
// and loaded at boot, so cold-start is paid once per cluster rather than
// once per process.
//
// Robustness contract: Load never refuses to boot. A truncated,
// corrupted, tampered or stale snapshot is skipped and counted, never
// fatal — the worst case is re-running the campaign the snapshot would
// have saved. Writes are atomic on POSIX rename semantics, so concurrent
// writers (several shards sharing one store directory) and crashes
// mid-write can leave at most a stray temp file, never a half-written
// snapshot under a live name.
package modelstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"hybridperf/internal/core"
)

// formatVersion is the snapshot envelope schema version. Snapshots with a
// different format are stale, not corrupt: an older binary reading a
// newer store skips them cleanly.
const formatVersion = 1

// Key identifies one characterisation campaign's result. Two campaigns
// with equal keys (and equal core.ModelVersion) produce bit-identical
// inputs, which is what makes serving from a snapshot byte-identical to
// re-characterising.
type Key struct {
	System        string `json:"system"`
	Program       string `json:"program"`
	BaselineClass string `json:"baselineClass"`
	BaselineIters int    `json:"baselineIters"`
	Seed          int64  `json:"seed"`
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s class=%s iters=%d seed=%d",
		k.System, k.Program, k.BaselineClass, k.BaselineIters, k.Seed)
}

// snapshotJSON is the on-disk envelope: the key fields, the versions that
// gate loading, an integrity checksum and the inputs themselves in the
// core persistence schema.
type snapshotJSON struct {
	Format        int             `json:"format"`
	ModelVersion  string          `json:"modelVersion"`
	System        string          `json:"system"`
	Program       string          `json:"program"`
	BaselineClass string          `json:"baselineClass"`
	BaselineIters int             `json:"baselineIters"`
	Seed          int64           `json:"seed"`
	Checksum      string          `json:"checksum"` // sha256 hex of the compacted inputs value
	Inputs        json.RawMessage `json:"inputs"`
}

// Store is a directory of snapshots.
type Store struct {
	dir string
}

// Open creates the store directory if needed and returns the store.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("modelstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("modelstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// filename derives the snapshot's file name from its key: a readable
// system/program prefix plus a hash that separates keys differing only in
// class, iteration count, seed or model version — so a changed model
// writes a new file instead of clobbering a snapshot an older binary may
// still want.
func (s *Store) filename(key Key) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("%d\x1f%s\x1f%s\x1f%s\x1f%s\x1f%d\x1f%d",
		formatVersion, core.ModelVersion, key.System, key.Program,
		key.BaselineClass, key.BaselineIters, key.Seed)))
	return fmt.Sprintf("%s__%s__%s.json",
		sanitize(key.System), sanitize(key.Program), hex.EncodeToString(h[:6]))
}

// sanitize keeps file names portable: anything outside [A-Za-z0-9._-]
// becomes '_'. Uniqueness comes from the key hash, not the prefix.
func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// checksum is the integrity hash of a snapshot's inputs: sha256 over the
// whitespace-compacted JSON value, so the hash is independent of
// indentation choices between writer versions.
func checksum(inputs []byte) (string, error) {
	var compact bytes.Buffer
	if err := json.Compact(&compact, inputs); err != nil {
		return "", err
	}
	sum := sha256.Sum256(compact.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// Put writes one snapshot atomically: marshal to a temp file in the store
// directory, fsync, then rename over the final name. A crash at any point
// leaves either the old snapshot or the new one, never a torn file.
func (s *Store) Put(key Key, in core.Inputs) error {
	if key.System == "" || key.Program == "" {
		return fmt.Errorf("modelstore: key missing system/program")
	}
	var inputs bytes.Buffer
	if err := core.SaveInputs(&inputs, in); err != nil {
		return fmt.Errorf("modelstore: serialising inputs for %s: %w", key, err)
	}
	sum, err := checksum(inputs.Bytes())
	if err != nil {
		return fmt.Errorf("modelstore: checksumming inputs for %s: %w", key, err)
	}
	snap := snapshotJSON{
		Format:        formatVersion,
		ModelVersion:  core.ModelVersion,
		System:        key.System,
		Program:       key.Program,
		BaselineClass: key.BaselineClass,
		BaselineIters: key.BaselineIters,
		Seed:          key.Seed,
		Checksum:      sum,
		Inputs:        json.RawMessage(bytes.TrimSpace(inputs.Bytes())),
	}
	payload, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("modelstore: marshalling snapshot for %s: %w", key, err)
	}
	payload = append(payload, '\n')

	tmp, err := os.CreateTemp(s.dir, ".tmp-snapshot-*")
	if err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(payload); err != nil {
		tmp.Close()
		return fmt.Errorf("modelstore: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("modelstore: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("modelstore: closing %s: %w", tmpName, err)
	}
	if err := os.Chmod(tmpName, 0o644); err != nil {
		return fmt.Errorf("modelstore: %w", err)
	}
	final := filepath.Join(s.dir, s.filename(key))
	if err := os.Rename(tmpName, final); err != nil {
		return fmt.Errorf("modelstore: publishing %s: %w", final, err)
	}
	return nil
}

// Entry is one successfully loaded snapshot.
type Entry struct {
	Key    Key
	Inputs core.Inputs
	Path   string
}

// LoadStats counts what a Load pass saw. Corrupt entries are unreadable
// or fail their integrity checks; Stale entries are well-formed but
// written under a different schema or model version.
type LoadStats struct {
	Loaded  int
	Corrupt int
	Stale   int
}

// BadEntry records one snapshot Load skipped, for logging.
type BadEntry struct {
	Path   string
	Stale  bool // well-formed but version-mismatched; false = corrupt
	Reason string
}

// Load reads every snapshot in the store. Bad entries — truncated files,
// checksum mismatches, schema or model-version drift — are skipped and
// counted, never fatal: a store that has rotted in place costs at most
// the campaigns it would have saved. The returned error covers only an
// unreadable store directory. Entries come back sorted by path so boot
// logs are deterministic.
func (s *Store) Load() ([]Entry, LoadStats, []BadEntry, error) {
	names, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return nil, LoadStats{}, nil, fmt.Errorf("modelstore: scanning %s: %w", s.dir, err)
	}
	sort.Strings(names)
	var (
		entries []Entry
		stats   LoadStats
		bad     []BadEntry
	)
	for _, path := range names {
		entry, stale, err := loadOne(path)
		if err != nil {
			if stale {
				stats.Stale++
			} else {
				stats.Corrupt++
			}
			bad = append(bad, BadEntry{Path: path, Stale: stale, Reason: err.Error()})
			continue
		}
		stats.Loaded++
		entries = append(entries, entry)
	}
	return entries, stats, bad, nil
}

// loadOne reads and verifies a single snapshot. stale marks version
// mismatches (skip quietly: a different binary owns that file); any other
// failure is corruption.
func loadOne(path string) (Entry, bool, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Entry{}, false, fmt.Errorf("reading: %w", err)
	}
	var snap snapshotJSON
	if err := json.Unmarshal(raw, &snap); err != nil {
		return Entry{}, false, fmt.Errorf("decoding envelope: %w", err)
	}
	if snap.Format != formatVersion {
		return Entry{}, true, fmt.Errorf("format %d, want %d", snap.Format, formatVersion)
	}
	if snap.ModelVersion != core.ModelVersion {
		return Entry{}, true, fmt.Errorf("model version %q, current %q", snap.ModelVersion, core.ModelVersion)
	}
	if len(snap.Inputs) == 0 {
		return Entry{}, false, fmt.Errorf("empty inputs")
	}
	sum, err := checksum(snap.Inputs)
	if err != nil {
		return Entry{}, false, fmt.Errorf("checksumming inputs: %w", err)
	}
	if sum != snap.Checksum {
		return Entry{}, false, fmt.Errorf("checksum mismatch: stored %s, computed %s", snap.Checksum, sum)
	}
	in, err := core.LoadInputs(bytes.NewReader(snap.Inputs))
	if err != nil {
		return Entry{}, false, fmt.Errorf("decoding inputs: %w", err)
	}
	// No name cross-check here: the envelope's System/Program are the
	// caller's catalogue lookup keys ("xeon"), while the inputs carry the
	// canonical profile names a campaign recorded ("xeon-e5-2603"). Only
	// the adopter holds the catalogue that maps one to the other, so
	// mislabel detection is its job (see telemetry.Server.adoptSnapshot).
	return Entry{
		Key: Key{
			System:        snap.System,
			Program:       snap.Program,
			BaselineClass: snap.BaselineClass,
			BaselineIters: snap.BaselineIters,
			Seed:          snap.Seed,
		},
		Inputs: in,
		Path:   path,
	}, false, nil
}
