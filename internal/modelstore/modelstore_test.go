package modelstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"hybridperf/internal/core"
	"hybridperf/internal/machine"
)

func testInputs(system, program string) core.Inputs {
	return core.Inputs{
		System:        system,
		Program:       program,
		NetTopology:   machine.TopologyShared,
		BaselineIters: 64,
		Baseline: map[machine.CF]core.BaselinePoint{
			{Cores: 1, Freq: 2.0e9}: {W: 1e9, B: 2e8, M: 3e8, U: 0.9},
			{Cores: 2, Freq: 2.0e9}: {W: 1.1e9, B: 2.5e8, M: 3.5e8, U: 0.85},
			{Cores: 2, Freq: 2.4e9}: {W: 1.1e9, B: 2.6e8, M: 3.7e8, U: 0.84},
		},
		Comm: core.HybridComm{HaloMsgs: 4, HaloBytes: 65536, HaloExp: 0.5},
		Net:  core.NetModel{Overhead: 28e-6, Peak: 115e6},
		Power: core.PowerModel{
			PAct:     map[float64]float64{2.0e9: 12.5, 2.4e9: 16.25},
			PStall:   map[float64]float64{2.0e9: 8.5, 2.4e9: 10.75},
			PMem:     9,
			PNet:     4,
			PSysIdle: 55,
		},
	}
}

func testKey(system, program string) Key {
	return Key{System: system, Program: program, BaselineClass: "S", BaselineIters: 64, Seed: 42}
}

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutLoadRoundTrip(t *testing.T) {
	s := openStore(t)
	key := testKey("xeon", "SP")
	in := testInputs("xeon", "SP")
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	entries, stats, bad, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("bad entries on a clean store: %+v", bad)
	}
	if stats != (LoadStats{Loaded: 1}) {
		t.Fatalf("stats = %+v, want 1 loaded", stats)
	}
	if entries[0].Key != key {
		t.Fatalf("key round trip: got %+v, want %+v", entries[0].Key, key)
	}
	if !reflect.DeepEqual(entries[0].Inputs, in) {
		t.Fatalf("inputs did not round trip:\ngot  %+v\nwant %+v", entries[0].Inputs, in)
	}
}

// TestPutOverwritesSameKey: a re-characterisation of the same key
// replaces the snapshot instead of accumulating files.
func TestPutOverwritesSameKey(t *testing.T) {
	s := openStore(t)
	key := testKey("xeon", "SP")
	in := testInputs("xeon", "SP")
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	in.BaselineIters = 64 // unchanged key, tweak a payload value
	in.Net.Overhead = 30e-6
	if err := s.Put(key, in); err != nil {
		t.Fatal(err)
	}
	entries, stats, _, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 1 || len(entries) != 1 {
		t.Fatalf("stats = %+v (entries %d), want exactly one snapshot", stats, len(entries))
	}
	if entries[0].Inputs.Net.Overhead != 30e-6 {
		t.Fatalf("overwrite served the stale payload: %+v", entries[0].Inputs.Net)
	}
}

// TestDistinctKeysDistinctFiles: keys differing only in seed (or class)
// coexist — one store can serve daemons with different seeds.
func TestDistinctKeysDistinctFiles(t *testing.T) {
	s := openStore(t)
	in := testInputs("xeon", "SP")
	k1 := testKey("xeon", "SP")
	k2 := k1
	k2.Seed = 7
	if err := s.Put(k1, in); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k2, in); err != nil {
		t.Fatal(err)
	}
	_, stats, _, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 2 {
		t.Fatalf("stats = %+v, want 2 loaded", stats)
	}
}

// TestCorruptionTolerance: truncated, garbage, tampered and
// version-mismatched snapshots are skipped and counted; the good ones
// still load. This is the crash-safety contract — a store must never
// refuse to boot a daemon.
func TestCorruptionTolerance(t *testing.T) {
	s := openStore(t)
	if err := s.Put(testKey("xeon", "SP"), testInputs("xeon", "SP")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(testKey("arm", "CP"), testInputs("arm", "CP")); err != nil {
		t.Fatal(err)
	}

	// A snapshot truncated mid-write (simulating a crash on a filesystem
	// without atomic rename durability).
	good, err := os.ReadFile(filepath.Join(s.Dir(), s.filename(testKey("xeon", "SP"))))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "truncated.json"), good[:len(good)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	// Plain garbage.
	if err := os.WriteFile(filepath.Join(s.Dir(), "garbage.json"), []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A well-formed envelope whose inputs were tampered with after the
	// checksum was computed.
	tampered := string(good)
	tampered = strings.Replace(tampered, `"baselineIters": 64`, `"baselineIters": 65`, 2)
	if tampered == string(good) {
		t.Fatal("tamper replacement did not apply")
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "tampered.json"), []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	// A snapshot from a different model version: stale, not corrupt.
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(good, &snap); err != nil {
		t.Fatal(err)
	}
	snap["modelVersion"] = json.RawMessage(`"some-older-model"`)
	staleRaw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.Dir(), "stale.json"), staleRaw, 0o644); err != nil {
		t.Fatal(err)
	}

	entries, stats, bad, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Loaded != 2 {
		t.Errorf("loaded = %d, want the 2 intact snapshots", stats.Loaded)
	}
	if stats.Corrupt != 3 {
		t.Errorf("corrupt = %d, want 3 (truncated, garbage, tampered); bad: %+v", stats.Corrupt, bad)
	}
	if stats.Stale != 1 {
		t.Errorf("stale = %d, want 1; bad: %+v", stats.Stale, bad)
	}
	if len(entries) != 2 {
		t.Errorf("entries = %d, want 2", len(entries))
	}
	for _, e := range entries {
		if e.Inputs.BaselineIters != 64 {
			t.Errorf("loaded entry %s carries tampered payload", e.Key)
		}
	}
}

// TestNoTempFilesLeftBehind: Put cleans its temp file on success, so a
// long-lived store doesn't accumulate junk that a Load scan would then
// have to consider.
func TestNoTempFilesLeftBehind(t *testing.T) {
	s := openStore(t)
	if err := s.Put(testKey("xeon", "SP"), testInputs("xeon", "SP")); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(s.Dir(), ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temp files left behind: %v", matches)
	}
}

// TestFilenameSanitization: hostile system/program names cannot escape
// the store directory or collide after sanitisation (the key hash keeps
// them distinct).
func TestFilenameSanitization(t *testing.T) {
	s := openStore(t)
	k1 := Key{System: "../evil", Program: "a/b", BaselineClass: "S", BaselineIters: 1, Seed: 1}
	k2 := Key{System: ".._evil", Program: "a_b", BaselineClass: "S", BaselineIters: 1, Seed: 1}
	f1, f2 := s.filename(k1), s.filename(k2)
	if strings.ContainsAny(f1, "/\\") {
		t.Errorf("filename %q contains a path separator", f1)
	}
	if f1 == f2 {
		t.Errorf("sanitised collision: %q", f1)
	}
}
