// Package pareto explores the configuration space of a hybrid program and
// extracts the time-energy Pareto-optimal configurations of Sec. V.A:
// points that consume minimum energy for a given execution-time deadline,
// or execute in minimum time for a given energy budget.
package pareto

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"hybridperf/internal/core"
	"hybridperf/internal/machine"
)

// cancelStride is how many configurations a sweep shard evaluates between
// two context polls: predictions cost tens of nanoseconds, so polling
// every point would dominate, while every 256 points bounds the
// cancellation latency to microseconds.
const cancelStride = 256

// Point pairs a configuration with its model prediction.
type Point struct {
	Cfg  machine.Config
	Pred core.Prediction
}

// PowersOfTwo returns [1, 2, 4, ..., max] (max rounded down to a power of
// two), the node counts of the paper's Figure 8 sweep.
func PowersOfTwo(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Range returns [lo, lo+1, ..., hi], the node counts of Figure 9's sweep.
func Range(lo, hi int) []int {
	if hi < lo {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for n := lo; n <= hi; n++ {
		out = append(out, n)
	}
	return out
}

// Space enumerates the full configuration cross product.
func Space(nodes []int, maxCores int, freqs []float64) []machine.Config {
	var out []machine.Config
	for _, n := range nodes {
		for c := 1; c <= maxCores; c++ {
			for _, f := range freqs {
				out = append(out, machine.Config{Nodes: n, Cores: c, Freq: f})
			}
		}
	}
	return out
}

// Evaluate predicts every configuration in the space for a target input of
// S iterations. Predictions are written in place (PredictInto), so the
// only allocation is the output slice itself.
func Evaluate(m *core.Model, cfgs []machine.Config, S int) ([]Point, error) {
	pts := make([]Point, len(cfgs))
	for i, cfg := range cfgs {
		pts[i].Cfg = cfg
		if err := m.PredictInto(&pts[i].Pred, cfg, S); err != nil {
			return nil, fmt.Errorf("pareto: %v: %w", cfg, err)
		}
	}
	return pts, nil
}

// EvaluateParallel is the sweep engine behind every full-space query: it
// predicts the configurations on up to `workers` goroutines (workers < 1
// means GOMAXPROCS) and returns points in cfgs order. The model memoises
// its per-node-count communication moments, so concurrent workers share
// one reduction per n instead of re-deriving it per configuration.
//
// The sweep is cancellable: every shard polls ctx every cancelStride
// configurations (and once up front), so a cancelled context stops the
// evaluation within microseconds with an error wrapping ctx.Err(). A nil
// ctx means context.Background(). Cancellation never perturbs completed
// points — the poll only aborts, it does not reorder writes — so an
// uncancelled sweep is bit-identical with any context attached.
//
// The space is sharded into contiguous chunks, one per worker; each shard
// stops at its first failing configuration, and the shard errors are
// aggregated with errors.Join in configuration order (the first error in
// the joined list is the earliest failing index, matching exec.Sweep).
// On GOMAXPROCS=1 the shards run inline on the calling goroutine —
// prediction is pure CPU work, so extra goroutines would only add
// scheduling overhead — with the shard structure, error semantics and
// output unchanged. For every worker count the returned slice is
// bit-identical to serial Evaluate: results are written by index with the
// same per-point code.
func EvaluateParallel(ctx context.Context, m *core.Model, cfgs []machine.Config, S, workers int) ([]Point, error) {
	pts := make([]Point, len(cfgs))
	if err := EvaluateParallelInto(ctx, m, cfgs, S, workers, pts); err != nil {
		return nil, err
	}
	return pts, nil
}

// EvaluateParallelInto is EvaluateParallel writing into a caller-provided
// points slice (len(pts) must equal len(cfgs)), so batch-serving callers
// can recycle the output buffer across requests via sync.Pool instead of
// allocating one slice per evaluation. Every element of pts is
// overwritten; semantics, sharding and error aggregation are identical to
// EvaluateParallel.
func EvaluateParallelInto(ctx context.Context, m *core.Model, cfgs []machine.Config, S, workers int, pts []Point) error {
	if len(pts) != len(cfgs) {
		return fmt.Errorf("pareto: points buffer holds %d entries for %d configurations", len(pts), len(cfgs))
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers < 1 {
		workers = 1
	}
	shardErrs := make([]error, workers)
	chunk := (len(cfgs) + workers - 1) / workers
	runShard := func(w int) {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		for i := lo; i < hi; i++ {
			if (i-lo)%cancelStride == 0 {
				if err := ctx.Err(); err != nil {
					shardErrs[w] = fmt.Errorf("pareto: sweep cancelled at configuration %d: %w", i, err)
					return
				}
			}
			pts[i].Cfg = cfgs[i]
			if err := m.PredictInto(&pts[i].Pred, cfgs[i], S); err != nil {
				shardErrs[w] = fmt.Errorf("pareto: %v: %w", cfgs[i], err)
				return
			}
		}
	}
	if workers == 1 {
		runShard(0)
		return shardErrs[0]
	}
	if runtime.GOMAXPROCS(0) > 1 {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				runShard(w)
			}(w)
		}
		wg.Wait()
	} else {
		for w := 0; w < workers; w++ {
			runShard(w)
		}
	}
	return errors.Join(shardErrs...)
}

// Dominates reports whether a is at least as good as b on both objectives
// and strictly better on at least one (minimising time and energy).
func Dominates(a, b core.Prediction) bool {
	if a.T > b.T || a.E > b.E {
		return false
	}
	return a.T < b.T || a.E < b.E
}

// Frontier returns the Pareto-optimal subset of points, sorted by
// increasing execution time (and thus decreasing energy). Duplicate
// objective values keep a single representative. Points with a NaN
// objective are dropped up front: NaN comparisons are always false, so a
// single poisoned prediction would otherwise corrupt the sort order and
// with it the whole frontier.
func Frontier(points []Point) []Point {
	sorted := make([]Point, 0, len(points))
	for _, p := range points {
		if math.IsNaN(p.Pred.T) || math.IsNaN(p.Pred.E) {
			continue
		}
		sorted = append(sorted, p)
	}
	if len(sorted) == 0 {
		return nil
	}
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Pred.T != sorted[j].Pred.T {
			return sorted[i].Pred.T < sorted[j].Pred.T
		}
		return sorted[i].Pred.E < sorted[j].Pred.E
	})
	var front []Point
	bestE := 0.0
	for _, p := range sorted {
		if len(front) == 0 || p.Pred.E < bestE {
			front = append(front, p)
			bestE = p.Pred.E
		}
	}
	return front
}

// MinEnergyWithinDeadline returns the point meeting the execution-time
// deadline with minimum energy — the paper's primary query. ok is false
// when no configuration meets the deadline.
func MinEnergyWithinDeadline(points []Point, deadline float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if p.Pred.T > deadline {
			continue
		}
		if !found || p.Pred.E < best.Pred.E ||
			(p.Pred.E == best.Pred.E && p.Pred.T < best.Pred.T) {
			best = p
			found = true
		}
	}
	return best, found
}

// MinTimeWithinBudget returns the fastest point whose energy fits the
// budget — the dual query. ok is false when no configuration fits.
func MinTimeWithinBudget(points []Point, budget float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if p.Pred.E > budget {
			continue
		}
		if !found || p.Pred.T < best.Pred.T ||
			(p.Pred.T == best.Pred.T && p.Pred.E < best.Pred.E) {
			best = p
			found = true
		}
	}
	return best, found
}

// MinEDP returns the point minimising the energy-delay product E*T — a
// deadline-free way to pick a single operating point off the frontier.
// ok is false for an empty point set.
func MinEDP(points []Point) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if !found || p.Pred.EDP() < best.Pred.EDP() {
			best = p
			found = true
		}
	}
	return best, found
}

// MinED2P returns the point minimising E*T², weighing performance more
// heavily than MinEDP.
func MinED2P(points []Point) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if !found || p.Pred.ED2P() < best.Pred.ED2P() {
			best = p
			found = true
		}
	}
	return best, found
}

// OnFrontier reports whether cfg appears in the frontier point list.
func OnFrontier(front []Point, cfg machine.Config) bool {
	for _, p := range front {
		if p.Cfg == cfg {
			return true
		}
	}
	return false
}
