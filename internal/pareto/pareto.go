// Package pareto explores the configuration space of a hybrid program and
// extracts the time-energy Pareto-optimal configurations of Sec. V.A:
// points that consume minimum energy for a given execution-time deadline,
// or execute in minimum time for a given energy budget.
package pareto

import (
	"fmt"
	"sort"

	"hybridperf/internal/core"
	"hybridperf/internal/machine"
)

// Point pairs a configuration with its model prediction.
type Point struct {
	Cfg  machine.Config
	Pred core.Prediction
}

// PowersOfTwo returns [1, 2, 4, ..., max] (max rounded down to a power of
// two), the node counts of the paper's Figure 8 sweep.
func PowersOfTwo(max int) []int {
	var out []int
	for n := 1; n <= max; n *= 2 {
		out = append(out, n)
	}
	return out
}

// Range returns [lo, lo+1, ..., hi], the node counts of Figure 9's sweep.
func Range(lo, hi int) []int {
	if hi < lo {
		return nil
	}
	out := make([]int, 0, hi-lo+1)
	for n := lo; n <= hi; n++ {
		out = append(out, n)
	}
	return out
}

// Space enumerates the full configuration cross product.
func Space(nodes []int, maxCores int, freqs []float64) []machine.Config {
	var out []machine.Config
	for _, n := range nodes {
		for c := 1; c <= maxCores; c++ {
			for _, f := range freqs {
				out = append(out, machine.Config{Nodes: n, Cores: c, Freq: f})
			}
		}
	}
	return out
}

// Evaluate predicts every configuration in the space for a target input of
// S iterations.
func Evaluate(m *core.Model, cfgs []machine.Config, S int) ([]Point, error) {
	pts := make([]Point, 0, len(cfgs))
	for _, cfg := range cfgs {
		pred, err := m.Predict(cfg, S)
		if err != nil {
			return nil, fmt.Errorf("pareto: %v: %w", cfg, err)
		}
		pts = append(pts, Point{Cfg: cfg, Pred: pred})
	}
	return pts, nil
}

// Dominates reports whether a is at least as good as b on both objectives
// and strictly better on at least one (minimising time and energy).
func Dominates(a, b core.Prediction) bool {
	if a.T > b.T || a.E > b.E {
		return false
	}
	return a.T < b.T || a.E < b.E
}

// Frontier returns the Pareto-optimal subset of points, sorted by
// increasing execution time (and thus decreasing energy). Duplicate
// objective values keep a single representative.
func Frontier(points []Point) []Point {
	if len(points) == 0 {
		return nil
	}
	sorted := append([]Point(nil), points...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Pred.T != sorted[j].Pred.T {
			return sorted[i].Pred.T < sorted[j].Pred.T
		}
		return sorted[i].Pred.E < sorted[j].Pred.E
	})
	var front []Point
	bestE := 0.0
	for _, p := range sorted {
		if len(front) == 0 || p.Pred.E < bestE {
			front = append(front, p)
			bestE = p.Pred.E
		}
	}
	return front
}

// MinEnergyWithinDeadline returns the point meeting the execution-time
// deadline with minimum energy — the paper's primary query. ok is false
// when no configuration meets the deadline.
func MinEnergyWithinDeadline(points []Point, deadline float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if p.Pred.T > deadline {
			continue
		}
		if !found || p.Pred.E < best.Pred.E ||
			(p.Pred.E == best.Pred.E && p.Pred.T < best.Pred.T) {
			best = p
			found = true
		}
	}
	return best, found
}

// MinTimeWithinBudget returns the fastest point whose energy fits the
// budget — the dual query. ok is false when no configuration fits.
func MinTimeWithinBudget(points []Point, budget float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if p.Pred.E > budget {
			continue
		}
		if !found || p.Pred.T < best.Pred.T ||
			(p.Pred.T == best.Pred.T && p.Pred.E < best.Pred.E) {
			best = p
			found = true
		}
	}
	return best, found
}

// MinEDP returns the point minimising the energy-delay product E*T — a
// deadline-free way to pick a single operating point off the frontier.
// ok is false for an empty point set.
func MinEDP(points []Point) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if !found || p.Pred.EDP() < best.Pred.EDP() {
			best = p
			found = true
		}
	}
	return best, found
}

// MinED2P returns the point minimising E*T², weighing performance more
// heavily than MinEDP.
func MinED2P(points []Point) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if !found || p.Pred.ED2P() < best.Pred.ED2P() {
			best = p
			found = true
		}
	}
	return best, found
}

// OnFrontier reports whether cfg appears in the frontier point list.
func OnFrontier(front []Point, cfg machine.Config) bool {
	for _, p := range front {
		if p.Cfg == cfg {
			return true
		}
	}
	return false
}
