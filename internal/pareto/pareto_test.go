package pareto

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"hybridperf/internal/core"
	"hybridperf/internal/machine"
)

func mkPoints(te [][2]float64) []Point {
	pts := make([]Point, len(te))
	for i, v := range te {
		pts[i] = Point{
			Cfg:  machine.Config{Nodes: i + 1, Cores: 1, Freq: 1e9},
			Pred: core.Prediction{T: v[0], E: v[1]},
		}
	}
	return pts
}

func TestFrontierBasic(t *testing.T) {
	pts := mkPoints([][2]float64{
		{10, 5},  // frontier (slowest, cheapest)
		{5, 8},   // frontier
		{5, 9},   // dominated (same T, more E)
		{2, 20},  // frontier (fastest)
		{6, 30},  // dominated
		{12, 50}, // dominated (slower and costlier than {10,5})
	})
	front := Frontier(pts)
	if len(front) != 3 {
		t.Fatalf("frontier size %d, want 3: %+v", len(front), front)
	}
	// Sorted by increasing T, strictly decreasing E.
	for i := 1; i < len(front); i++ {
		if front[i].Pred.T <= front[i-1].Pred.T {
			t.Fatal("frontier not sorted by time")
		}
		if front[i].Pred.E >= front[i-1].Pred.E {
			t.Fatal("frontier energies not strictly decreasing")
		}
	}
}

func TestFrontierEmpty(t *testing.T) {
	if Frontier(nil) != nil {
		t.Fatal("empty frontier should be nil")
	}
}

func TestFrontierSinglePoint(t *testing.T) {
	front := Frontier(mkPoints([][2]float64{{1, 1}}))
	if len(front) != 1 {
		t.Fatalf("singleton frontier size %d", len(front))
	}
}

func TestDominates(t *testing.T) {
	a := core.Prediction{T: 1, E: 1}
	b := core.Prediction{T: 2, E: 2}
	eqA := core.Prediction{T: 1, E: 1}
	if !Dominates(a, b) {
		t.Error("a should dominate b")
	}
	if Dominates(b, a) {
		t.Error("b should not dominate a")
	}
	if Dominates(a, eqA) {
		t.Error("equal points do not dominate each other")
	}
	mixed := core.Prediction{T: 0.5, E: 5}
	if Dominates(a, mixed) || Dominates(mixed, a) {
		t.Error("trade-off points must be incomparable")
	}
}

// TestFrontierMatchesBruteForce cross-checks the scan-line frontier
// against an O(n^2) dominance filter on random point clouds.
func TestFrontierMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(60)
		var te [][2]float64
		for i := 0; i < n; i++ {
			te = append(te, [2]float64{
				float64(1 + rng.Intn(30)),
				float64(1 + rng.Intn(30)),
			})
		}
		pts := mkPoints(te)
		front := Frontier(pts)

		inFront := func(p Point) bool {
			for _, q := range front {
				if q.Pred.T == p.Pred.T && q.Pred.E == p.Pred.E {
					return true
				}
			}
			return false
		}
		for _, p := range pts {
			dominated := false
			for _, q := range pts {
				if Dominates(q.Pred, p.Pred) {
					dominated = true
					break
				}
			}
			if dominated && inFront(p) {
				t.Fatalf("trial %d: dominated point (%g,%g) on frontier", trial, p.Pred.T, p.Pred.E)
			}
			if !dominated && !inFront(p) {
				t.Fatalf("trial %d: non-dominated point (%g,%g) missing (duplicates aside)", trial, p.Pred.T, p.Pred.E)
			}
		}
	}
}

func TestMinEnergyWithinDeadline(t *testing.T) {
	pts := mkPoints([][2]float64{{10, 5}, {5, 8}, {2, 20}})
	p, ok := MinEnergyWithinDeadline(pts, 6)
	if !ok || p.Pred.E != 8 {
		t.Fatalf("deadline 6 -> %+v, want E=8", p.Pred)
	}
	p, ok = MinEnergyWithinDeadline(pts, 100)
	if !ok || p.Pred.E != 5 {
		t.Fatalf("deadline 100 -> %+v, want E=5", p.Pred)
	}
	if _, ok := MinEnergyWithinDeadline(pts, 1); ok {
		t.Fatal("impossible deadline satisfied")
	}
	if _, ok := MinEnergyWithinDeadline(nil, 1); ok {
		t.Fatal("empty point set satisfied")
	}
}

func TestMinTimeWithinBudget(t *testing.T) {
	pts := mkPoints([][2]float64{{10, 5}, {5, 8}, {2, 20}})
	p, ok := MinTimeWithinBudget(pts, 10)
	if !ok || p.Pred.T != 5 {
		t.Fatalf("budget 10 -> %+v, want T=5", p.Pred)
	}
	p, ok = MinTimeWithinBudget(pts, 100)
	if !ok || p.Pred.T != 2 {
		t.Fatalf("budget 100 -> %+v, want T=2", p.Pred)
	}
	if _, ok := MinTimeWithinBudget(pts, 1); ok {
		t.Fatal("impossible budget satisfied")
	}
}

func TestQueriesConsistentWithFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var te [][2]float64
	for i := 0; i < 200; i++ {
		te = append(te, [2]float64{rng.Float64() * 100, rng.Float64() * 100})
	}
	pts := mkPoints(te)
	front := Frontier(pts)
	for _, deadline := range []float64{5, 20, 50, 99} {
		p, ok := MinEnergyWithinDeadline(pts, deadline)
		if !ok {
			continue
		}
		if !OnFrontier(front, p.Cfg) {
			t.Fatalf("deadline query answer %v not on frontier", p.Cfg)
		}
	}
}

func TestSpaceSizesMatchPaper(t *testing.T) {
	// Figure 8: n in powers of two up to 256, c in 1..8, f in 3 levels.
	xeon := machine.XeonE5()
	cfgs := Space(PowersOfTwo(256), xeon.CoresPerNode, xeon.Frequencies)
	if len(cfgs) != 216 {
		t.Fatalf("Xeon SP space = %d configurations, paper says 216", len(cfgs))
	}
	// Figure 9: n in 1..20, c in 1..4, f in 5 levels.
	arm := machine.ARMCortexA9()
	cfgs = Space(Range(1, 20), arm.CoresPerNode, arm.Frequencies)
	if len(cfgs) != 400 {
		t.Fatalf("ARM CP space = %d configurations, paper says 400", len(cfgs))
	}
}

func TestPowersOfTwo(t *testing.T) {
	got := PowersOfTwo(10)
	want := []int{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("PowersOfTwo(10) = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PowersOfTwo(10) = %v", got)
		}
	}
}

func TestRange(t *testing.T) {
	got := Range(3, 5)
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("Range(3,5) = %v", got)
	}
	if Range(5, 3) != nil {
		t.Fatal("inverted range should be nil")
	}
}

func TestEvaluate(t *testing.T) {
	in := core.Inputs{
		BaselineIters: 10,
		Baseline: map[machine.CF]core.BaselinePoint{
			{Cores: 1, Freq: 1e9}: {W: 1e10, B: 1e9, M: 1e9, U: 1},
		},
		Net: core.NetModel{Peak: 1e8},
		Power: core.PowerModel{
			PAct:     map[float64]float64{1e9: 5},
			PStall:   map[float64]float64{1e9: 3},
			PSysIdle: 10,
		},
	}
	m, err := core.New(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := Space([]int{1, 2}, 1, []float64{1e9})
	pts, err := Evaluate(m, cfgs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	// Missing baseline point aborts with context.
	cfgs = append(cfgs, machine.Config{Nodes: 1, Cores: 2, Freq: 1e9})
	if _, err := Evaluate(m, cfgs, 10); err == nil {
		t.Fatal("Evaluate swallowed an error")
	}
}

func TestFrontierDuplicateObjectives(t *testing.T) {
	// Four copies of the same (T,E) point plus one dominated point: the
	// frontier keeps exactly one representative of the duplicate group.
	pts := mkPoints([][2]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}, {6, 6}})
	front := Frontier(pts)
	if len(front) != 1 || front[0].Pred.T != 5 || front[0].Pred.E != 5 {
		t.Fatalf("duplicate-point frontier = %+v, want single (5,5)", front)
	}
}

func TestFrontierIgnoresNaN(t *testing.T) {
	nan := math.NaN()
	pts := mkPoints([][2]float64{
		{10, 5},
		{nan, 1}, // would sort anywhere: NaN comparisons are always false
		{5, 8},
		{1, nan},
		{2, 20},
		{nan, nan},
	})
	front := Frontier(pts)
	if len(front) != 3 {
		t.Fatalf("frontier size %d with NaN points present, want 3: %+v", len(front), front)
	}
	for i, p := range front {
		if math.IsNaN(p.Pred.T) || math.IsNaN(p.Pred.E) {
			t.Fatalf("NaN point %d survived onto the frontier: %+v", i, p.Pred)
		}
		if i > 0 && front[i].Pred.T <= front[i-1].Pred.T {
			t.Fatal("NaN points corrupted the frontier sort order")
		}
	}
	// All-NaN input degenerates to an empty frontier, not a crash.
	if f := Frontier(mkPoints([][2]float64{{nan, 1}, {2, nan}})); f != nil {
		t.Fatalf("all-NaN frontier = %+v, want nil", f)
	}
}

// commModel returns a model with real network traffic so EvaluateParallel
// exercises the memoised communication moments across node counts.
func commModel(t *testing.T) *core.Model {
	t.Helper()
	in := core.Inputs{
		BaselineIters: 10,
		Baseline: map[machine.CF]core.BaselinePoint{
			{Cores: 1, Freq: 1e9}: {W: 1e10, B: 1e9, M: 1e9, U: 0.9},
			{Cores: 2, Freq: 1e9}: {W: 1e10, B: 2e9, M: 1e9, U: 0.9},
			{Cores: 1, Freq: 2e9}: {W: 1e10, B: 1e9, M: 1e9, U: 0.9},
			{Cores: 2, Freq: 2e9}: {W: 1e10, B: 2e9, M: 1e9, U: 0.9},
		},
		Comm: core.StaticComm{{Count: 4, Bytes: 1e6}, {Count: 30, Bytes: 4e3}},
		Net:  core.NetModel{Overhead: 5e-5, Peak: 1e8},
		Power: core.PowerModel{
			PAct:     map[float64]float64{1e9: 5, 2e9: 9},
			PStall:   map[float64]float64{1e9: 3, 2e9: 4},
			PMem:     2,
			PNet:     1,
			PSysIdle: 10,
		},
	}
	m, err := core.New(in, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEvaluateParallelMatchesSerial is the sweep engine's core contract:
// for any worker count the parallel evaluation returns a point slice
// bit-identical to serial Evaluate, in cfgs order.
func TestEvaluateParallelMatchesSerial(t *testing.T) {
	m := commModel(t)
	cfgs := Space(Range(1, 12), 2, []float64{1e9, 2e9})
	want, err := Evaluate(m, cfgs, 25)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 2, 3, 7, 8, len(cfgs), len(cfgs) + 5} {
		got, err := EvaluateParallel(context.Background(), m, cfgs, 25, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: point %d differs: %+v vs %+v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestEvaluateParallelAggregatesErrors plants failing configurations in
// different shards and checks that every shard's failure is reported, with
// the earliest failing configuration first.
func TestEvaluateParallelAggregatesErrors(t *testing.T) {
	m := commModel(t)
	good := machine.Config{Nodes: 1, Cores: 1, Freq: 1e9}
	bad := machine.Config{Nodes: 1, Cores: 9, Freq: 1e9} // no baseline point
	cfgs := []machine.Config{good, bad, good, bad}
	_, err := EvaluateParallel(context.Background(), m, cfgs, 10, 2) // shards [0,1] and [2,3]
	if err == nil {
		t.Fatal("missing baseline swallowed")
	}
	msg := err.Error()
	if n := strings.Count(msg, "(1,9,1.0)"); n != 2 {
		t.Fatalf("error mentions the failing configuration %d times, want one per shard: %v", n, err)
	}
	// Single failing configuration: the joined error unwraps to it.
	_, err = EvaluateParallel(context.Background(), m, []machine.Config{good, good, good, bad}, 10, 2)
	var mbe *core.MissingBaselineError
	if !errors.As(err, &mbe) {
		t.Fatalf("error lost the MissingBaselineError cause: %v", err)
	}
	// Empty space stays a no-op.
	pts, err := EvaluateParallel(context.Background(), m, nil, 10, 4)
	if err != nil || len(pts) != 0 {
		t.Fatalf("empty space: %v, %v", pts, err)
	}
}

func TestMinEDP(t *testing.T) {
	pts := mkPoints([][2]float64{{10, 5}, {5, 8}, {2, 20}})
	// EDPs: 50, 40, 40 -> first of the tied minima by scan order is kept
	// only if strictly smaller; {5,8} (EDP 40) comes before {2,20}.
	p, ok := MinEDP(pts)
	if !ok || p.Pred.EDP() != 40 {
		t.Fatalf("MinEDP -> %+v", p.Pred)
	}
	if _, ok := MinEDP(nil); ok {
		t.Fatal("empty MinEDP succeeded")
	}
}

func TestMinED2P(t *testing.T) {
	pts := mkPoints([][2]float64{{10, 5}, {5, 8}, {2, 20}})
	// ED2Ps: 500, 200, 80 -> the fastest point wins.
	p, ok := MinED2P(pts)
	if !ok || p.Pred.T != 2 {
		t.Fatalf("MinED2P -> %+v", p.Pred)
	}
}

func TestEDPOptimaOnFrontier(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var te [][2]float64
	for i := 0; i < 300; i++ {
		te = append(te, [2]float64{rng.Float64()*99 + 1, rng.Float64()*99 + 1})
	}
	pts := mkPoints(te)
	front := Frontier(pts)
	for name, query := range map[string]func([]Point) (Point, bool){
		"EDP":  MinEDP,
		"ED2P": MinED2P,
	} {
		p, ok := query(pts)
		if !ok {
			t.Fatalf("%s query failed", name)
		}
		if !OnFrontier(front, p.Cfg) {
			t.Fatalf("%s optimum %v not on the Pareto frontier", name, p.Cfg)
		}
	}
}

// TestEvaluateParallelCancelled: a dead context fails the sweep promptly
// for any worker count, with an error unwrapping to context.Canceled.
func TestEvaluateParallelCancelled(t *testing.T) {
	m := commModel(t)
	cfgs := Space(Range(1, 12), 2, []float64{1e9, 2e9})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 2, 8} {
		_, err := EvaluateParallel(ctx, m, cfgs, 25, workers)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: EvaluateParallel() = %v, want context.Canceled", workers, err)
		}
	}
	// nil ctx means Background: never cancelled, identical to serial.
	got, err := EvaluateParallel(nil, m, cfgs, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(m, cfgs, 25)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nil-ctx point %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestEvaluateParallelInto pins the buffer-reuse contract behind the batch
// serving path: writing into a caller-provided slice is bit-identical to
// the allocating form, stale buffer contents are fully overwritten, and a
// mis-sized buffer is an error instead of a partial write.
func TestEvaluateParallelInto(t *testing.T) {
	m := commModel(t)
	cfgs := Space(Range(1, 6), 2, []float64{1e9, 2e9})
	want, err := EvaluateParallel(context.Background(), m, cfgs, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	// A dirty recycled buffer: every element poisoned, then reused twice.
	buf := make([]Point, len(cfgs))
	for round := 0; round < 2; round++ {
		for i := range buf {
			buf[i] = Point{Cfg: machine.Config{Nodes: -1}, Pred: core.Prediction{T: math.NaN()}}
		}
		if err := EvaluateParallelInto(context.Background(), m, cfgs, 25, 3, buf); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("round %d: point %d differs: %+v vs %+v", round, i, buf[i], want[i])
			}
		}
	}
	// Length mismatch fails up front, leaving the buffer untouched.
	short := make([]Point, len(cfgs)-1)
	if err := EvaluateParallelInto(context.Background(), m, cfgs, 25, 2, short); err == nil {
		t.Fatal("short buffer accepted")
	}
	if err := EvaluateParallelInto(context.Background(), m, nil, 25, 2, buf); err == nil {
		t.Fatal("oversized buffer for empty space accepted")
	}
}
