// Package cluster implements consistent-hash ownership of model keys
// across a static list of hybridperfd replicas. Each (system, program)
// pair — the unit of characterisation, and therefore the unit of model
// cache state worth pinning to one replica — hashes to an owner on a
// virtual-node ring, so adding or removing one replica remaps only the
// keys that replica owned instead of reshuffling the whole key space.
//
// The peer list is static configuration (-peers/-self): the model
// catalogue is small and bounded (systems × programs), campaigns are
// deterministic, and any replica can serve any key if it must — so
// membership churn degrades to extra campaigns, never wrong answers.
// That makes gossip overkill; a load balancer's health checks plus a
// redeploy with a new peer list cover the operational cases.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// DefaultReplicas is the virtual-node count per peer. 128 vnodes keeps
// the ownership split within a few percent of even for small clusters
// while the ring stays a few-KB sorted slice.
const DefaultReplicas = 128

// Ring is an immutable consistent-hash ring over a set of peers. Build
// once with New; every method is safe for concurrent use.
type Ring struct {
	peers  []string
	points []point // sorted by hash
}

type point struct {
	hash uint64
	peer int // index into peers
}

// New builds a ring over the given peers with `replicas` virtual nodes
// per peer (<= 0 means DefaultReplicas). Peers must be non-empty and
// unique — a duplicated peer would silently own a double share.
func New(peers []string, replicas int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(peers))
	owned := make([]string, 0, len(peers))
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer name")
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		owned = append(owned, p)
	}
	r := &Ring{peers: owned, points: make([]point, 0, len(owned)*replicas)}
	for i, p := range owned {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, point{hash: hash64(fmt.Sprintf("%s#%d", p, v)), peer: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
	return r, nil
}

// hash64 maps a string onto the ring: the first 8 bytes of its SHA-256,
// big-endian. Cryptographic quality is irrelevant here; what matters is
// that the placement is stable across processes, platforms and releases,
// which a hand-rolled or seed-dependent hash would not guarantee.
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Peers returns the ring's peer list in construction order.
func (r *Ring) Peers() []string { return r.peers }

// Contains reports whether peer is a member of the ring.
func (r *Ring) Contains(peer string) bool {
	for _, p := range r.peers {
		if p == peer {
			return true
		}
	}
	return false
}

// succ returns the index into points of the first virtual node at or
// after the key's hash, wrapping around the ring.
func (r *Ring) succ(key string) int {
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// Owner returns the peer that owns key.
func (r *Ring) Owner(key string) string {
	return r.peers[r.points[r.succ(key)].peer]
}

// Order returns every peer in ring-walk order starting from key's owner:
// the owner first, then each distinct peer as its first virtual node is
// encountered walking the ring. This is the fallback order — if the
// owner is down, the next peer in the walk is the stable second choice,
// the same from every client.
func (r *Ring) Order(key string) []string {
	out := make([]string, 0, len(r.peers))
	seen := make([]bool, len(r.peers))
	for i, n := r.succ(key), 0; n < len(r.points); i, n = (i+1)%len(r.points), n+1 {
		p := r.points[i].peer
		if !seen[p] {
			seen[p] = true
			out = append(out, r.peers[p])
			if len(out) == len(r.peers) {
				break
			}
		}
	}
	return out
}

// ModelKey is the ring key for a (system, program) model — the unit of
// characterisation cache state. The unit separator cannot appear in
// validated catalogue names, so distinct pairs never collide.
func ModelKey(system, program string) string { return system + "\x1f" + program }
