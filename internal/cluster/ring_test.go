package cluster

import (
	"fmt"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); err == nil {
		t.Error("empty peer list accepted")
	}
	if _, err := New([]string{"a", ""}, 0); err == nil {
		t.Error("empty peer name accepted")
	}
	if _, err := New([]string{"a", "b", "a"}, 0); err == nil {
		t.Error("duplicate peer accepted")
	}
}

// TestOwnershipStable: ownership is a pure function of (peers, key) —
// two independently built rings agree, which is what lets every replica
// and the gateway route without coordination.
func TestOwnershipStable(t *testing.T) {
	peers := []string{"http://a:8080", "http://b:8080", "http://c:8080"}
	r1, err := New(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New([]string{peers[0], peers[1], peers[2]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		key := ModelKey(fmt.Sprintf("sys%d", i), "SP")
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("rings disagree on %q", key)
		}
	}
}

// TestOwnershipSpread: with enough keys every peer owns a non-trivial
// share — the vnode count keeps the split usably even.
func TestOwnershipSpread(t *testing.T) {
	peers := []string{"a", "b", "c", "d"}
	r, err := New(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("key-%d", i))]++
	}
	for _, p := range peers {
		if counts[p] < keys/len(peers)/3 {
			t.Errorf("peer %s owns %d of %d keys — far below an even share", p, counts[p], keys)
		}
	}
}

// TestRemovalRemapsOnlyLostKeys: dropping one peer must not move keys
// between surviving peers — the whole point of consistent hashing.
func TestRemovalRemapsOnlyLostKeys(t *testing.T) {
	full, err := New([]string{"a", "b", "c", "d"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := New([]string{"a", "b", "c"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		before := full.Owner(key)
		after := reduced.Owner(key)
		if before != "d" && before != after {
			t.Fatalf("key %q moved %s -> %s though its owner survived", key, before, after)
		}
	}
}

// TestOrder: the walk starts at the owner, visits every peer exactly
// once, and is stable.
func TestOrder(t *testing.T) {
	peers := []string{"a", "b", "c"}
	r, err := New(peers, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := ModelKey("xeon", "SP")
	order := r.Order(key)
	if len(order) != len(peers) {
		t.Fatalf("order %v misses peers", order)
	}
	if order[0] != r.Owner(key) {
		t.Errorf("order starts at %s, owner is %s", order[0], r.Owner(key))
	}
	seen := map[string]bool{}
	for _, p := range order {
		if seen[p] {
			t.Fatalf("order %v repeats %s", order, p)
		}
		seen[p] = true
	}
	again := r.Order(key)
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("order is not stable: %v vs %v", order, again)
		}
	}
}

func TestContains(t *testing.T) {
	r, err := New([]string{"a", "b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Contains("a") || r.Contains("z") {
		t.Error("Contains misreports membership")
	}
}
