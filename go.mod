module hybridperf

go 1.22
