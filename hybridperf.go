// Package hybridperf determines time- and energy-efficient cluster
// configurations for hybrid (MPI+OpenMP) parallel programs, implementing
// the measurement-driven analytical modeling approach of Ramapantulu,
// Loghin and Teo, "An Approach for Energy Efficient Execution of Hybrid
// Parallel Programs" (IPDPS 2015).
//
// The workflow mirrors the paper's Figure 2:
//
//  1. Characterize a program on a system: baseline executions of a small
//     input on a single node over every (cores, frequency) point, an
//     mpiP-style communication profile, NetPIPE network characterisation
//     and power micro-benchmarks. Since this repository has no physical
//     cluster, "measurement" runs on a deterministic discrete-event
//     simulation of the paper's Xeon and ARM clusters (see DESIGN.md).
//  2. Predict execution time T, energy E and the Useful Computation Ratio
//     UCR = T_CPU/T for any configuration (n nodes, c cores, frequency f).
//  3. Explore the configuration space: Pareto-optimal configurations that
//     use minimum energy under an execution-time deadline, or minimum time
//     under an energy budget; what-if analyses for hardware co-design.
//
// Quickstart:
//
//	model, _ := hybridperf.Characterize(hybridperf.XeonE5(), hybridperf.SP(), nil)
//	pred, _ := model.Predict(hybridperf.Config{Nodes: 4, Cores: 8, Freq: 1.8e9}, hybridperf.ClassA)
//	fmt.Printf("T=%.1fs E=%.1fkJ UCR=%.2f\n", pred.T, pred.E/1e3, pred.UCR)
package hybridperf

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"hybridperf/internal/characterize"
	"hybridperf/internal/core"
	"hybridperf/internal/dvfs"
	"hybridperf/internal/exec"
	"hybridperf/internal/machine"
	"hybridperf/internal/pareto"
	"hybridperf/internal/workload"
)

// Core re-exports: a System describes a homogeneous cluster, a Program a
// hybrid parallel code, a Config one (n, c, f) execution configuration.
type (
	// System is a cluster hardware profile (see machine.Profile).
	System = machine.Profile
	// PowerCurve models per-core active power against frequency.
	PowerCurve = machine.PowerCurve
	// Config is an execution configuration: nodes, cores/node, frequency [Hz].
	Config = machine.Config
	// Program is a hybrid program description (see workload.Spec).
	Program = workload.Spec
	// Class selects a program input size.
	Class = workload.Class
	// Prediction is a model output: time/energy breakdowns and UCR.
	Prediction = core.Prediction
	// Point pairs a Config with its Prediction in space explorations.
	Point = pareto.Point
	// Measurement is a direct (simulated) measurement of one execution.
	Measurement = exec.Result
	// CharacterizeOptions tunes the measurement campaign.
	CharacterizeOptions = characterize.Options
	// Characterization is the raw measurement-campaign record behind a
	// model (baseline points, NetPIPE curve, power tables, mpiP report,
	// and — with CharacterizeOptions.Metrics — aggregate engine counters).
	Characterization = characterize.Summary
)

// Input classes (iteration-count scales relative to the baseline input).
const (
	ClassTest = workload.ClassTest
	ClassS    = workload.ClassS
	ClassA    = workload.ClassA
	ClassC    = workload.ClassC
)

// XeonE5 returns the Intel Xeon E5-2603 cluster profile (Table 3).
func XeonE5() *System { return machine.XeonE5() }

// ARMCortexA9 returns the ARM Cortex-A9 cluster profile (Table 3).
func ARMCortexA9() *System { return machine.ARMCortexA9() }

// SystemByName returns a built-in system ("xeon" or "arm").
func SystemByName(name string) (*System, error) { return machine.ByName(name) }

// The five benchmark programs of the paper's evaluation.
func LU() *Program { return workload.LU() }
func SP() *Program { return workload.SP() }
func BT() *Program { return workload.BT() }
func CP() *Program { return workload.CP() }
func LB() *Program { return workload.LB() }

// FT is the alltoall-dominated 3D-FFT extension program (beyond the
// paper's five), exercising the personalised all-to-all pattern.
func FT() *Program { return workload.FT() }

// Programs returns the five benchmarks in Table 2 order.
func Programs() []*Program { return workload.Programs() }

// ExtendedPrograms returns the paper's five benchmarks plus FT.
func ExtendedPrograms() []*Program { return workload.Extended() }

// ProgramByName returns a built-in program by its short code.
func ProgramByName(name string) (*Program, error) { return workload.ByName(name) }

// Synthetic builds a custom hybrid program spec: workPerIter abstract work
// units per iteration over the whole domain, memBytesPerWork bytes of DRAM
// traffic per work unit, baseIters class-S iterations, and a halo exchange
// of haloMsgs messages of haloBytes (at two nodes) per iteration. Adjust
// further fields on the returned spec and Validate before use.
func Synthetic(name string, workPerIter, memBytesPerWork float64, baseIters, haloMsgs int, haloBytes float64) *Program {
	return workload.Synthetic(name, workPerIter, memBytesPerWork, baseIters, haloMsgs, haloBytes)
}

// Model predicts the time-energy performance of one program on one system
// from its characterisation.
type Model struct {
	core    *core.Model
	sys     *System
	prog    *Program
	sum     *characterize.Summary // nil for NewModel-built models
	workers int                   // sweep parallelism; <= 0 means GOMAXPROCS
}

// Characterize measures a program on a system and builds its model.
// opts may be nil for defaults (seed 0, class-S baseline). The Workers
// option also sets the model's sweep parallelism (Explore, Validate,
// PredictAll); override it later with WithWorkers.
func Characterize(sys *System, prog *Program, opts *CharacterizeOptions) (*Model, error) {
	var o CharacterizeOptions
	if opts != nil {
		o = *opts
	}
	sum, err := characterize.Run(sys, prog, o)
	if err != nil {
		return nil, err
	}
	cm, err := core.New(sum.Inputs, nil)
	if err != nil {
		return nil, err
	}
	return &Model{core: cm, sys: sys, prog: prog, sum: sum, workers: o.Workers}, nil
}

// NewModel wraps pre-assembled model inputs (e.g. loaded from disk or
// built in tests) for the same program/system pair.
func NewModel(sys *System, prog *Program, in core.Inputs) (*Model, error) {
	cm, err := core.New(in, nil)
	if err != nil {
		return nil, err
	}
	return &Model{core: cm, sys: sys, prog: prog}, nil
}

// System returns the model's cluster profile.
func (m *Model) System() *System { return m.sys }

// Program returns the model's program.
func (m *Model) Program() *Program { return m.prog }

// Core exposes the underlying analytical model.
func (m *Model) Core() *core.Model { return m.core }

// Characterization returns the measurement campaign behind the model, or
// nil for models assembled from pre-built inputs (NewModel).
func (m *Model) Characterization() *Characterization { return m.sum }

// WithWorkers derives a model whose space sweeps (Explore, Validate,
// PredictAll and the queries built on them) use up to n goroutines.
// n <= 0 restores the default (GOMAXPROCS).
func (m *Model) WithWorkers(n int) *Model {
	return &Model{core: m.core, sys: m.sys, prog: m.prog, sum: m.sum, workers: n}
}

// sweepWorkers resolves the effective sweep parallelism.
func (m *Model) sweepWorkers() int {
	if m.workers > 0 {
		return m.workers
	}
	return runtime.GOMAXPROCS(0)
}

// iters resolves a class to its iteration count.
func (m *Model) iters(class Class) (int, error) { return m.prog.Iterations(class) }

// Predict evaluates the model for one configuration and input class.
func (m *Model) Predict(cfg Config, class Class) (Prediction, error) {
	S, err := m.iters(class)
	if err != nil {
		return Prediction{}, err
	}
	return m.core.Predict(cfg, S)
}

// Space enumerates configurations over the given node counts and the
// system's full core/frequency ranges.
func (m *Model) Space(nodes []int) []Config {
	return pareto.Space(nodes, m.sys.CoresPerNode, m.sys.Frequencies)
}

// Explore predicts every configuration and returns all points plus the
// time-energy Pareto frontier. The sweep runs on the model's worker pool
// (see WithWorkers); results are deterministic and in cfgs order
// regardless of the worker count.
func (m *Model) Explore(cfgs []Config, class Class) (points, frontier []Point, err error) {
	S, err := m.iters(class)
	if err != nil {
		return nil, nil, err
	}
	points, err = pareto.EvaluateParallel(context.Background(), m.core, cfgs, S, m.sweepWorkers())
	if err != nil {
		return nil, nil, err
	}
	return points, pareto.Frontier(points), nil
}

// PredictAll evaluates the model over a configuration list on the model's
// worker pool, returning predictions in cfgs order.
func (m *Model) PredictAll(cfgs []Config, class Class) ([]Prediction, error) {
	S, err := m.iters(class)
	if err != nil {
		return nil, err
	}
	points, err := pareto.EvaluateParallel(context.Background(), m.core, cfgs, S, m.sweepWorkers())
	if err != nil {
		return nil, err
	}
	preds := make([]Prediction, len(points))
	for i, p := range points {
		preds[i] = p.Pred
	}
	return preds, nil
}

// MinEnergyWithinDeadline returns the configuration meeting the deadline
// [s] with minimum energy — the paper's primary query.
func (m *Model) MinEnergyWithinDeadline(cfgs []Config, class Class, deadline float64) (Point, bool, error) {
	points, _, err := m.Explore(cfgs, class)
	if err != nil {
		return Point{}, false, err
	}
	p, ok := pareto.MinEnergyWithinDeadline(points, deadline)
	return p, ok, nil
}

// MinTimeWithinBudget returns the fastest configuration within the energy
// budget [J] — the dual query.
func (m *Model) MinTimeWithinBudget(cfgs []Config, class Class, budget float64) (Point, bool, error) {
	points, _, err := m.Explore(cfgs, class)
	if err != nil {
		return Point{}, false, err
	}
	p, ok := pareto.MinTimeWithinBudget(points, budget)
	return p, ok, nil
}

// WithMemoryBandwidthScale returns a what-if model whose node memory
// bandwidth is scaled by x (Sec. V.B: x=2 halves memory stall cycles).
func (m *Model) WithMemoryBandwidthScale(x float64) *Model {
	opt := m.core.Options()
	opt.MemBandwidthScale = x
	return m.withCoreOptions(opt)
}

// WithNetworkBandwidthScale returns a what-if model whose network peak
// bandwidth is scaled by x.
func (m *Model) WithNetworkBandwidthScale(x float64) *Model {
	opt := m.core.Options()
	opt.NetBandwidthScale = x
	return m.withCoreOptions(opt)
}

// withCoreOptions rebuilds the model around new core options. The scale
// setters only vary the bandwidth scalings of an already-validated option
// set, so a validation error here is a programming bug.
func (m *Model) withCoreOptions(opt core.Options) *Model {
	cm, err := m.core.WithOptions(opt)
	if err != nil {
		panic(fmt.Sprintf("hybridperf: invalid derived options: %v", err))
	}
	return &Model{core: cm, sys: m.sys, prog: m.prog, sum: m.sum, workers: m.workers}
}

// Simulate directly measures one execution on the simulated cluster: the
// ground truth the model is validated against.
func Simulate(sys *System, prog *Program, class Class, cfg Config, seed int64) (*Measurement, error) {
	return exec.Run(exec.Request{Prof: sys, Spec: prog, Class: class, Cfg: cfg, Seed: seed})
}

// SimulateWithDVFS measures one execution with the runtime inter-node
// slack governor active: nodes that idle at synchronisation points step
// their frequency down, the run-time DVFS technique of the paper's related
// work (Sec. II.A). cfg.Freq is the starting level. Use it to quantify the
// extra savings a governor layers on top of a model-chosen Pareto-optimal
// configuration.
func SimulateWithDVFS(sys *System, prog *Program, class Class, cfg Config, seed int64) (*Measurement, error) {
	return exec.Run(exec.Request{
		Prof: sys, Spec: prog, Class: class, Cfg: cfg, Seed: seed,
		Governor: func(int) dvfs.Governor {
			g, err := dvfs.NewInterNodeSlack(sys.Frequencies, 0, 0)
			if err != nil {
				panic(err) // profiles always carry at least one DVFS level
			}
			return g
		},
	})
}

// Validate compares model predictions against direct simulation over a
// configuration list, returning mean absolute percentage errors for time
// and energy — the per-program numbers of the paper's Table 2. The
// per-configuration predict+simulate pairs run on the model's worker pool
// (see WithWorkers); each pair derives its simulation seed from seed and
// the configuration index, so the result is independent of the worker
// count and identical to a serial evaluation.
func (m *Model) Validate(cfgs []Config, class Class, seed int64) (timeErrPct, energyErrPct float64, err error) {
	S, err := m.iters(class)
	if err != nil {
		return 0, 0, err
	}
	if len(cfgs) == 0 {
		return 0, 0, fmt.Errorf("hybridperf: Validate needs at least one configuration")
	}
	workers := m.sweepWorkers()
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	errT := make([]float64, len(cfgs))
	errE := make([]float64, len(cfgs))
	shardErrs := make([]error, workers)
	chunk := (len(cfgs) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cfgs) {
			hi = len(cfgs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				pred, err := m.core.Predict(cfgs[i], S)
				if err != nil {
					shardErrs[w] = err
					return
				}
				meas, err := Simulate(m.sys, m.prog, class, cfgs[i], seed+int64(i))
				if err != nil {
					shardErrs[w] = err
					return
				}
				errT[i] = relErr(pred.T, meas.Time)
				errE[i] = relErr(pred.E, meas.MeasuredEnergy)
			}
		}(w, lo, hi)
	}
	wg.Wait()
	if err := errors.Join(shardErrs...); err != nil {
		return 0, 0, err
	}
	var sumT, sumE float64
	for i := range cfgs {
		sumT += errT[i]
		sumE += errE[i]
	}
	n := float64(len(cfgs))
	return sumT / n, sumE / n, nil
}

func relErr(pred, meas float64) float64 {
	if meas == 0 {
		return 0
	}
	d := (pred - meas) / meas * 100
	if d < 0 {
		return -d
	}
	return d
}
