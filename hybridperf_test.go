package hybridperf

import (
	"math"
	"testing"
)

// charOpts keeps facade tests fast and deterministic.
var charOpts = &CharacterizeOptions{Seed: 99, Workers: 8}

func TestSystemAndProgramLookups(t *testing.T) {
	if XeonE5().Name != "xeon-e5-2603" || ARMCortexA9().Name != "arm-cortex-a9" {
		t.Fatal("built-in system names changed")
	}
	sys, err := SystemByName("arm")
	if err != nil || sys.Name != "arm-cortex-a9" {
		t.Fatalf("SystemByName(arm) = %v, %v", sys, err)
	}
	if _, err := SystemByName("sparc"); err == nil {
		t.Fatal("unknown system accepted")
	}
	if len(Programs()) != 5 {
		t.Fatal("want the paper's five programs")
	}
	p, err := ProgramByName("CP")
	if err != nil || p.Name != "CP" {
		t.Fatalf("ProgramByName(CP) = %v, %v", p, err)
	}
	if _, err := ProgramByName("MG"); err == nil {
		t.Fatal("unknown program accepted")
	}
	for _, prog := range []*Program{LU(), SP(), BT(), CP(), LB()} {
		if prog.Validate() != nil {
			t.Fatalf("%s invalid", prog.Name)
		}
	}
}

func TestCharacterizeAndPredict(t *testing.T) {
	model, err := Characterize(XeonE5(), LU(), charOpts)
	if err != nil {
		t.Fatal(err)
	}
	if model.System().Name != "xeon-e5-2603" || model.Program().Name != "LU" {
		t.Fatal("model accessors wrong")
	}
	pred, err := model.Predict(Config{Nodes: 4, Cores: 8, Freq: 1.8e9}, ClassA)
	if err != nil {
		t.Fatal(err)
	}
	if pred.T <= 0 || pred.E <= 0 || pred.UCR <= 0 || pred.UCR > 1 {
		t.Fatalf("degenerate prediction %+v", pred)
	}
	if _, err := model.Predict(Config{Nodes: 1, Cores: 1, Freq: 1.8e9}, Class("zz")); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestPredictMatchesSimulationWithin15Percent(t *testing.T) {
	model, err := Characterize(XeonE5(), BT(), charOpts)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{Nodes: 1, Cores: 8, Freq: 1.8e9},
		{Nodes: 2, Cores: 4, Freq: 1.5e9},
		{Nodes: 8, Cores: 8, Freq: 1.8e9},
	}
	terr, eerr, err := model.Validate(cfgs, ClassA, 321)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("BT/Xeon: mean time error %.1f%%, energy %.1f%%", terr, eerr)
	if terr > 15 || eerr > 15 {
		t.Fatalf("facade validation errors %.1f%%/%.1f%% exceed 15%%", terr, eerr)
	}
}

func TestExploreAndQueries(t *testing.T) {
	model, err := Characterize(ARMCortexA9(), CP(), charOpts)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := model.Space([]int{1, 2, 4, 8})
	if len(cfgs) != 4*4*5 {
		t.Fatalf("space size %d, want 80", len(cfgs))
	}
	points, frontier, err := model.Explore(cfgs, ClassA)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(cfgs) || len(frontier) == 0 || len(frontier) >= len(points) {
		t.Fatalf("explore: %d points, %d frontier", len(points), len(frontier))
	}

	loosest := frontier[len(frontier)-1]
	p, ok, err := model.MinEnergyWithinDeadline(cfgs, ClassA, loosest.Pred.T*1.01)
	if err != nil || !ok {
		t.Fatalf("deadline query failed: %v %v", ok, err)
	}
	if p.Pred.E > loosest.Pred.E*1.0001 {
		t.Fatalf("deadline answer E=%g worse than frontier end %g", p.Pred.E, loosest.Pred.E)
	}
	_, ok, err = model.MinEnergyWithinDeadline(cfgs, ClassA, frontier[0].Pred.T/100)
	if err != nil || ok {
		t.Fatal("impossible deadline satisfied")
	}

	tightest := frontier[0]
	p, ok, err = model.MinTimeWithinBudget(cfgs, ClassA, tightest.Pred.E*2)
	if err != nil || !ok {
		t.Fatalf("budget query failed: %v %v", ok, err)
	}
	if p.Pred.T > tightest.Pred.T*2 {
		t.Fatalf("budget answer T=%g far above frontier start %g", p.Pred.T, tightest.Pred.T)
	}
}

func TestWhatIfHelpers(t *testing.T) {
	model, err := Characterize(XeonE5(), SP(), charOpts)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Nodes: 1, Cores: 8, Freq: 1.8e9}
	base, err := model.Predict(cfg, ClassA)
	if err != nil {
		t.Fatal(err)
	}
	fasterMem, err := model.WithMemoryBandwidthScale(2).Predict(cfg, ClassA)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fasterMem.TMem-base.TMem/2)/base.TMem > 1e-9 {
		t.Fatalf("2x memory bandwidth: TMem %g, want %g", fasterMem.TMem, base.TMem/2)
	}
	if fasterMem.UCR <= base.UCR {
		t.Fatal("UCR did not improve with faster memory")
	}
	// The base model must be untouched.
	again, _ := model.Predict(cfg, ClassA)
	if again.TMem != base.TMem {
		t.Fatal("what-if helper mutated the base model")
	}

	cfg8 := Config{Nodes: 8, Cores: 8, Freq: 1.8e9}
	base8, _ := model.Predict(cfg8, ClassA)
	fasterNet, err := model.WithNetworkBandwidthScale(10).Predict(cfg8, ClassA)
	if err != nil {
		t.Fatal(err)
	}
	if fasterNet.TwNet+fasterNet.TsNet >= base8.TwNet+base8.TsNet {
		t.Fatal("faster network did not cut communication time")
	}
}

func TestSimulateDirect(t *testing.T) {
	res, err := Simulate(XeonE5(), SP(), ClassTest, Config{Nodes: 2, Cores: 2, Freq: 1.2e9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 || res.MeasuredEnergy <= 0 {
		t.Fatalf("degenerate measurement %+v", res)
	}
}

func TestNewModelFromInputs(t *testing.T) {
	m1, err := Characterize(XeonE5(), LU(), charOpts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewModel(XeonE5(), LU(), m1.Core().Inputs())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Nodes: 2, Cores: 4, Freq: 1.5e9}
	a, _ := m1.Predict(cfg, ClassA)
	b, err := m2.Predict(cfg, ClassA)
	if err != nil {
		t.Fatal(err)
	}
	if a.T != b.T || a.E != b.E {
		t.Fatal("rehydrated model disagrees with the original")
	}
}

// TestValidateDeterministicAcrossWorkers pins Validate's contract: the
// per-configuration simulation seeds derive from the base seed and the
// configuration index, so the reported errors are independent of the
// worker count.
func TestValidateDeterministicAcrossWorkers(t *testing.T) {
	model, err := Characterize(XeonE5(), SP(), charOpts)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []Config{
		{Nodes: 1, Cores: 4, Freq: 1.8e9},
		{Nodes: 2, Cores: 8, Freq: 1.5e9},
		{Nodes: 4, Cores: 2, Freq: 1.2e9},
		{Nodes: 8, Cores: 8, Freq: 1.8e9},
	}
	baseT, baseE, err := model.WithWorkers(1).Validate(cfgs, ClassA, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		terr, eerr, err := model.WithWorkers(workers).Validate(cfgs, ClassA, 7)
		if err != nil {
			t.Fatal(err)
		}
		if terr != baseT || eerr != baseE {
			t.Fatalf("workers=%d: errors %.6f%%/%.6f%% differ from serial %.6f%%/%.6f%%",
				workers, terr, eerr, baseT, baseE)
		}
	}
}

// TestPredictAllMatchesPredict checks the facade's batched sweep against
// one-at-a-time Predict calls.
func TestPredictAllMatchesPredict(t *testing.T) {
	model, err := Characterize(XeonE5(), SP(), charOpts)
	if err != nil {
		t.Fatal(err)
	}
	cfgs := model.Space([]int{1, 2, 4, 8})
	preds, err := model.PredictAll(cfgs, ClassA)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != len(cfgs) {
		t.Fatalf("%d predictions for %d configurations", len(preds), len(cfgs))
	}
	for _, i := range []int{0, len(cfgs) / 2, len(cfgs) - 1} {
		solo, err := model.Predict(cfgs[i], ClassA)
		if err != nil {
			t.Fatal(err)
		}
		if preds[i] != solo {
			t.Fatalf("PredictAll[%d] = %+v differs from Predict %+v", i, preds[i], solo)
		}
	}
}

func TestValidateRequiresConfigs(t *testing.T) {
	model, err := Characterize(XeonE5(), LU(), charOpts)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := model.Validate(nil, ClassA, 1); err == nil {
		t.Fatal("empty config list accepted")
	}
}

func TestSimulateWithDVFS(t *testing.T) {
	sys := ARMCortexA9()
	cfg := Config{Nodes: 4, Cores: 2, Freq: sys.FMax()}
	plain, err := Simulate(sys, CP(), ClassTest, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	governed, err := SimulateWithDVFS(sys, CP(), ClassTest, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	// The governor must act only through frequency: same program, same
	// message counts, possibly different time/energy.
	if governed.Comm.TotalMsgs != plain.Comm.TotalMsgs {
		t.Fatal("governor changed communication behaviour")
	}
	if governed.Time <= 0 || governed.MeasuredEnergy <= 0 {
		t.Fatal("degenerate governed run")
	}
}

func TestFTFacadeEndToEnd(t *testing.T) {
	model, err := Characterize(XeonE5(), FT(), charOpts)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := model.Predict(Config{Nodes: 4, Cores: 8, Freq: 1.8e9}, ClassA)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Eta == 0 {
		t.Fatal("FT prediction has no communication")
	}
	if len(ExtendedPrograms()) != 6 {
		t.Fatal("ExtendedPrograms should list 6 programs")
	}
}

func TestCrossbarSystemThroughFacade(t *testing.T) {
	sys := XeonE5()
	sys.Topology = "crossbar"
	model, err := Characterize(sys, SP(), charOpts)
	if err != nil {
		t.Fatal(err)
	}
	// On a crossbar, doubling nodes around the shared-medium saturation
	// point must keep speeding the run up.
	a, err := model.Predict(Config{Nodes: 8, Cores: 8, Freq: 1.8e9}, ClassA)
	if err != nil {
		t.Fatal(err)
	}
	// Crossbar predictions extrapolate beyond the testbed like the paper's.
	b, err := model.Predict(Config{Nodes: 64, Cores: 8, Freq: 1.8e9}, ClassA)
	if err != nil {
		t.Fatal(err)
	}
	if b.T >= a.T {
		t.Fatalf("crossbar scaling stalled: T(64)=%g >= T(8)=%g", b.T, a.T)
	}
}
