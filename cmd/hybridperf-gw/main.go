// Command hybridperf-gw fronts a sharded hybridperfd cluster: it routes
// POST /v1/predict and POST /v1/advise to the replica owning the model
// key (consistent hash over the same -peers list the replicas run with),
// splits POST /v1/batch into one sub-batch per owning shard, and
// partitions a POST /v1/sweep configuration space across every shard —
// merging the answers back in canonical order, byte-identical to a
// single daemon's response when all shards are up. When a shard is down
// the merged answer is partial and carries per-shard error annotations
// ("shard_errors"); only a request whose every sub-request failed
// returns 503. Shard backoff hints survive the relay: a 429/503 carries
// the shard's own Retry-After value when it sent one.
//
// The gateway is stateless: no models, no cache, no store. Run as many
// as you like behind a plain load balancer.
//
// Usage:
//
//	hybridperf-gw -addr :8079 -peers http://127.0.0.1:8081,http://127.0.0.1:8082
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hybridperf/internal/gateway"
)

func main() {
	var (
		addr     = flag.String("addr", ":8079", "listen address")
		peers    = flag.String("peers", "", "comma-separated shard base URLs, e.g. http://a:8080,http://b:8080 (required)")
		logFmt   = flag.String("log", "text", "request log format: text or json")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn or error")
		traceSmp = flag.Float64("trace-sample", 0, "fraction of traceparent-less requests the gateway samples for distributed tracing; stitched traces at /debug/trace/{traceid} (0 = off)")
	)
	flag.Parse()

	if *peers == "" {
		fmt.Fprintln(os.Stderr, "hybridperf-gw: -peers is required")
		os.Exit(2)
	}
	var list []string
	for _, p := range strings.Split(*peers, ",") {
		list = append(list, strings.TrimSpace(p))
	}

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "hybridperf-gw: bad -log-level %q\n", *logLevel)
		os.Exit(2)
	}
	opts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFmt {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, opts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, opts)
	default:
		fmt.Fprintf(os.Stderr, "hybridperf-gw: bad -log %q (want text or json)\n", *logFmt)
		os.Exit(2)
	}
	logger := slog.New(handler)

	gw, err := gateway.New(list, logger)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybridperf-gw: %v\n", err)
		os.Exit(2)
	}
	gw.SetTraceSample(*traceSmp)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("serving", "addr", *addr, "shards", len(list))

	select {
	case err := <-errc:
		logger.Error("listen failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("shutdown", "err", err)
		os.Exit(1)
	}
}
