// Command loadgen drives a running hybridperfd with a stream of
// prediction requests and reports throughput and latency percentiles —
// the manual soak-test harness and the CI smoke driver. By default it
// runs closed-loop (each worker issues its next request as soon as the
// previous one returns); -qps switches to open-loop pacing at a target
// aggregate rate.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -duration 5s -concurrency 4
//	loadgen -route /v1/sweep -body '{"system":"xeon","program":"SP","pow2":true}' -qps 50
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8080", "server base URL")
		route       = flag.String("route", "/v1/predict", "route to hit")
		body        = flag.String("body", `{"system":"xeon","program":"SP","class":"A","nodes":4,"cores":8,"freq_ghz":1.8}`, "JSON request body (POST); empty = GET")
		duration    = flag.Duration("duration", 5*time.Second, "how long to generate load")
		concurrency = flag.Int("concurrency", 4, "concurrent workers")
		qps         = flag.Float64("qps", 0, "target aggregate request rate (0 = closed loop)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		warm        = flag.Bool("warm", true, "issue one untimed request first (characterisation warm-up)")
	)
	flag.Parse()
	if *concurrency < 1 {
		log.Fatal("concurrency must be >= 1")
	}

	url := *baseURL + *route
	client := &http.Client{Timeout: *timeout}
	do := func() (int, error) {
		var (
			resp *http.Response
			err  error
		)
		if *body == "" {
			resp, err = client.Get(url)
		} else {
			resp, err = client.Post(url, "application/json", bytes.NewReader([]byte(*body)))
		}
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}

	// One untimed request warms the model cache so the report measures
	// steady-state serving, not the first characterisation campaign.
	if *warm {
		if code, err := do(); err != nil {
			log.Fatalf("warm-up request: %v", err)
		} else if code >= 400 {
			log.Fatalf("warm-up request returned HTTP %d", code)
		}
	}

	// Open-loop pacing: a buffered token channel fed at the target rate.
	// Closed loop: a nil channel, workers fire back-to-back.
	var tokens chan struct{}
	deadline := time.Now().Add(*duration)
	if *qps > 0 {
		tokens = make(chan struct{}, *concurrency)
		interval := time.Duration(float64(time.Second) / *qps)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for time.Now().Before(deadline) {
				<-t.C
				select {
				case tokens <- struct{}{}:
				default: // workers saturated: drop the token, note it below
				}
			}
			close(tokens)
		}()
	}

	type shard struct {
		lat                           []time.Duration
		ok, fail, rejected, cancelled int
		codes                         map[int]int
	}
	shards := make([]shard, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.codes = map[int]int{}
			for time.Now().Before(deadline) {
				if tokens != nil {
					if _, open := <-tokens; !open {
						return
					}
				}
				t0 := time.Now()
				code, err := do()
				sh.lat = append(sh.lat, time.Since(t0))
				sh.codes[code]++
				switch {
				// Admission-control sheds (429 saturated, 503 interrupted)
				// are the server working as designed under overload, not
				// failures — counted apart so a soak past the admission
				// limit still exits 0.
				case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
					sh.rejected++
				case err != nil && errors.Is(err, context.DeadlineExceeded):
					sh.cancelled++
				case err != nil || code >= 400:
					sh.fail++
				default:
					sh.ok++
				}
			}
		}(&shards[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lat []time.Duration
	ok, fail, rejected, cancelled := 0, 0, 0, 0
	codes := map[int]int{}
	for _, sh := range shards {
		lat = append(lat, sh.lat...)
		ok += sh.ok
		fail += sh.fail
		rejected += sh.rejected
		cancelled += sh.cancelled
		for c, n := range sh.codes {
			codes[c] += n
		}
	}
	if len(lat) == 0 {
		log.Fatal("no requests completed")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(q float64) time.Duration {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}

	fmt.Printf("target       %s %s\n", *baseURL, *route)
	fmt.Printf("duration     %.2fs  concurrency %d", elapsed.Seconds(), *concurrency)
	if *qps > 0 {
		fmt.Printf("  target qps %.0f", *qps)
	}
	fmt.Println()
	total := ok + fail + rejected + cancelled
	fmt.Printf("requests     %d ok, %d failed, %d rejected, %d timed out (%.1f req/s)\n",
		ok, fail, rejected, cancelled, float64(total)/elapsed.Seconds())
	fmt.Printf("latency      p50 %v  p90 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		lat[len(lat)-1].Round(time.Microsecond))
	var cs []int
	for c := range codes {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	fmt.Printf("status       ")
	for i, c := range cs {
		if i > 0 {
			fmt.Printf("  ")
		}
		name := fmt.Sprint(c)
		if c == 0 {
			name = "transport-error"
		}
		fmt.Printf("%s:%d", name, codes[c])
	}
	fmt.Println()
	// Real failures are fatal; so is a run where every request was shed
	// (a server rejecting 100% of traffic is not a passing soak).
	if fail > 0 || ok == 0 {
		os.Exit(1)
	}
}
