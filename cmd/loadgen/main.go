// Command loadgen drives a running hybridperfd with a stream of
// prediction requests and reports throughput and latency percentiles —
// the manual soak-test harness and the CI smoke driver. By default it
// runs closed-loop (each worker issues its next request as soon as the
// previous one returns); -qps switches to open-loop pacing at a target
// aggregate rate.
//
// -mode selects the request shape:
//
//   - single (default): POST -body to -route, one prediction per request.
//   - batch: enumerate the (nodes, cores, freq) grid of -system from
//     GET /v1/systems (once per -program entry), POST the first -tuples
//     coordinates to /v1/batch, and report per-prediction throughput
//     alongside request latency.
//   - stream: the batch body with ?stream=1 — each response is read as
//     NDJSON to completion and must end with a summary line.
//   - advise: POST {-system, -program, -class} to /v1/advise and require
//     a recommended governor policy in every answer — soaks the governed
//     DVFS simulation path (cold the first time, cached after).
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -duration 5s -concurrency 4
//	loadgen -route /v1/sweep -body '{"system":"xeon","program":"SP","pow2":true}' -qps 50
//	loadgen -mode batch -tuples 256 -duration 5s
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")
	var (
		baseURL     = flag.String("url", "http://127.0.0.1:8080", "server base URL")
		route       = flag.String("route", "/v1/predict", "route to hit (mode single)")
		body        = flag.String("body", `{"system":"xeon","program":"SP","class":"A","nodes":4,"cores":8,"freq_ghz":1.8}`, "JSON request body (POST); empty = GET (mode single)")
		mode        = flag.String("mode", "single", "request shape: single, batch, stream or advise")
		system      = flag.String("system", "xeon", "system whose configuration grid feeds batch/stream bodies (and the advise target)")
		program     = flag.String("program", "SP", "program(s) named in batch/stream tuples, comma-separated (each adds one full grid); advise uses the first")
		class       = flag.String("class", "A", "workload class for batch/stream/advise requests")
		tuples      = flag.Int("tuples", 256, "tuples per batch/stream request (capped at the combined grid size of -program)")
		duration    = flag.Duration("duration", 5*time.Second, "how long to generate load")
		concurrency = flag.Int("concurrency", 4, "concurrent workers")
		qps         = flag.Float64("qps", 0, "target aggregate request rate (0 = closed loop)")
		timeout     = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		warm        = flag.Bool("warm", true, "issue one untimed request first (characterisation warm-up)")
	)
	flag.Parse()
	if *concurrency < 1 {
		log.Fatal("concurrency must be >= 1")
	}

	client := &http.Client{Timeout: *timeout}

	// Resolve the request shape up front: every mode reduces to one URL,
	// one (reused) body, a predictions-per-request factor and a response
	// reader that validates the payload shape.
	var (
		url         string
		reqBody     []byte
		predsPerReq = 1
		readBody    = func(r io.Reader) error { _, err := io.Copy(io.Discard, r); return err }
	)
	switch *mode {
	case "single":
		url = *baseURL + *route
		reqBody = []byte(*body)
	case "batch", "stream":
		programs := strings.Split(*program, ",")
		ts, err := enumerateTuples(client, *baseURL, *system, programs, *tuples)
		if err != nil {
			log.Fatalf("enumerating tuples from /v1/systems: %v", err)
		}
		b, err := json.Marshal(map[string]any{"class": *class, "tuples": ts})
		if err != nil {
			log.Fatalf("marshalling batch body: %v", err)
		}
		reqBody = b
		predsPerReq = len(ts)
		url = *baseURL + "/v1/batch"
		if *mode == "stream" {
			url += "?stream=1"
			readBody = readNDJSON
		}
		log.Printf("mode %s: %d tuples/request against %s/%s class %s", *mode, len(ts), *system, *program, *class)
	case "advise":
		first := strings.TrimSpace(strings.Split(*program, ",")[0])
		b, err := json.Marshal(map[string]any{"system": *system, "program": first, "class": *class})
		if err != nil {
			log.Fatalf("marshalling advise body: %v", err)
		}
		reqBody = b
		url = *baseURL + "/v1/advise"
		readBody = readAdvice
		log.Printf("mode advise: %s/%s class %s", *system, first, *class)
	default:
		log.Fatalf("bad -mode %q (want single, batch, stream or advise)", *mode)
	}

	do := func() (int, error) {
		var (
			resp *http.Response
			err  error
		)
		if len(reqBody) == 0 {
			resp, err = client.Get(url)
		} else {
			resp, err = client.Post(url, "application/json", bytes.NewReader(reqBody))
		}
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		if resp.StatusCode >= 400 {
			io.Copy(io.Discard, resp.Body)
			logFailedRequest(resp)
			return resp.StatusCode, nil
		}
		if err := readBody(resp.Body); err != nil {
			return resp.StatusCode, err
		}
		return resp.StatusCode, nil
	}

	// One untimed request warms the model cache so the report measures
	// steady-state serving, not the first characterisation campaign.
	if *warm {
		if code, err := do(); err != nil {
			log.Fatalf("warm-up request: %v", err)
		} else if code >= 400 {
			log.Fatalf("warm-up request returned HTTP %d", code)
		}
	}

	// Open-loop pacing: a buffered token channel fed at the target rate.
	// Closed loop: a nil channel, workers fire back-to-back.
	var tokens chan struct{}
	deadline := time.Now().Add(*duration)
	if *qps > 0 {
		tokens = make(chan struct{}, *concurrency)
		interval := time.Duration(float64(time.Second) / *qps)
		if interval <= 0 {
			interval = time.Microsecond
		}
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for time.Now().Before(deadline) {
				<-t.C
				select {
				case tokens <- struct{}{}:
				default: // workers saturated: drop the token, note it below
				}
			}
			close(tokens)
		}()
	}

	type shard struct {
		lat                           []time.Duration
		ok, fail, rejected, cancelled int
		codes                         map[int]int
	}
	shards := make([]shard, *concurrency)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			sh.codes = map[int]int{}
			for time.Now().Before(deadline) {
				if tokens != nil {
					if _, open := <-tokens; !open {
						return
					}
				}
				t0 := time.Now()
				code, err := do()
				sh.lat = append(sh.lat, time.Since(t0))
				sh.codes[code]++
				switch {
				// Admission-control sheds (429 saturated, 503 interrupted)
				// are the server working as designed under overload, not
				// failures — counted apart so a soak past the admission
				// limit still exits 0.
				case code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable:
					sh.rejected++
				case err != nil && errors.Is(err, context.DeadlineExceeded):
					sh.cancelled++
				case err != nil || code >= 400:
					sh.fail++
				default:
					sh.ok++
				}
			}
		}(&shards[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lat []time.Duration
	ok, fail, rejected, cancelled := 0, 0, 0, 0
	codes := map[int]int{}
	for _, sh := range shards {
		lat = append(lat, sh.lat...)
		ok += sh.ok
		fail += sh.fail
		rejected += sh.rejected
		cancelled += sh.cancelled
		for c, n := range sh.codes {
			codes[c] += n
		}
	}
	if len(lat) == 0 {
		log.Fatal("no requests completed")
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(q float64) time.Duration {
		i := int(q * float64(len(lat)-1))
		return lat[i]
	}

	fmt.Printf("target       %s\n", url)
	fmt.Printf("duration     %.2fs  concurrency %d  mode %s", elapsed.Seconds(), *concurrency, *mode)
	if *qps > 0 {
		fmt.Printf("  target qps %.0f", *qps)
	}
	fmt.Println()
	total := ok + fail + rejected + cancelled
	fmt.Printf("requests     %d ok, %d failed, %d rejected, %d timed out (%.1f req/s)\n",
		ok, fail, rejected, cancelled, float64(total)/elapsed.Seconds())
	if predsPerReq > 1 {
		preds := float64(ok * predsPerReq)
		fmt.Printf("predictions  %.0f served (%.0f preds/s, p50 %v per prediction)\n",
			preds, preds/elapsed.Seconds(), (pct(0.50) / time.Duration(predsPerReq)).Round(time.Nanosecond))
	}
	fmt.Printf("latency      p50 %v  p90 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.90).Round(time.Microsecond),
		pct(0.95).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		lat[len(lat)-1].Round(time.Microsecond))
	var cs []int
	for c := range codes {
		cs = append(cs, c)
	}
	sort.Ints(cs)
	fmt.Printf("status       ")
	for i, c := range cs {
		if i > 0 {
			fmt.Printf("  ")
		}
		name := fmt.Sprint(c)
		if c == 0 {
			name = "transport-error"
		}
		fmt.Printf("%s:%d", name, codes[c])
	}
	fmt.Println()
	// Every request hard-failing (connection refused, 5xx on every try)
	// means the target is down or broken — say so unmistakably instead of
	// leaving a zero-throughput report to be misread as a slow server.
	if ok == 0 && rejected == 0 && cancelled == 0 {
		log.Printf("FAILED: all %d requests hard-failed (transport errors: %d, HTTP >= 400: %d) — is hybridperfd serving at %s?",
			total, codes[0], total-codes[0], *baseURL)
		os.Exit(1)
	}
	// Real failures are fatal; so is a run where every request was shed
	// (a server rejecting 100% of traffic is not a passing soak).
	if fail > 0 || ok == 0 {
		os.Exit(1)
	}
}

// logFailedRequest names a failed or shed request's request id and trace
// id (from the server-minted Traceparent), so one grep over any
// replica's access log — every line carries both — finds the exact
// handler invocation behind the status. Transport errors never reach
// here: with no response there are no ids to report.
func logFailedRequest(resp *http.Response) {
	traceID := "-"
	if parts := strings.Split(resp.Header.Get("Traceparent"), "-"); len(parts) == 4 {
		traceID = parts[1]
	}
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		id = "-"
	}
	log.Printf("request failed: HTTP %d  id=%s  trace=%s", resp.StatusCode, id, traceID)
}

// enumerateTuples builds a deterministic batch tuple list by walking the
// system's (nodes, cores, frequency) grid — as advertised by
// GET /v1/systems — in row-major order once per program and taking the
// first n coordinates of the concatenation. The same server always
// yields the same tuples, so every batch request in a run (and across
// runs) is identical.
func enumerateTuples(client *http.Client, baseURL, system string, programs []string, n int) ([]map[string]any, error) {
	resp, err := client.Get(baseURL + "/v1/systems")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/systems: HTTP %d", resp.StatusCode)
	}
	var doc struct {
		Systems []struct {
			Name         string    `json:"name"`
			MaxNodes     int       `json:"max_nodes"`
			CoresPerNode int       `json:"cores_per_node"`
			FreqsGHz     []float64 `json:"frequencies_ghz"`
		} `json:"systems"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return nil, err
	}
	for _, sys := range doc.Systems {
		if sys.Name != system {
			continue
		}
		var out []map[string]any
		for _, program := range programs {
			program = strings.TrimSpace(program)
			for nodes := 1; nodes <= sys.MaxNodes; nodes++ {
				for cores := 1; cores <= sys.CoresPerNode; cores++ {
					for _, f := range sys.FreqsGHz {
						if len(out) == n {
							return out, nil
						}
						out = append(out, map[string]any{
							"system": system, "program": program,
							"nodes": nodes, "cores": cores, "freq_ghz": f,
						})
					}
				}
			}
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("system %q advertises an empty configuration grid", system)
		}
		return out, nil
	}
	return nil, fmt.Errorf("system %q not in /v1/systems", system)
}

// readAdvice validates an advisory answer's shape: a response without a
// recommended policy is a malformed success, counted as a failure rather
// than inflating the ok column.
func readAdvice(r io.Reader) error {
	var doc struct {
		Recommended string `json:"recommended"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return fmt.Errorf("decoding advise response: %w", err)
	}
	if doc.Recommended == "" {
		return errors.New("advise response has no recommended policy")
	}
	return nil
}

// readNDJSON consumes a streamed batch response, requiring at least one
// line and a trailing summary line — a truncated stream is an error, not
// a success with fewer predictions.
func readNDJSON(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	var last string
	lines := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		last = sc.Text()
		lines++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if lines == 0 {
		return errors.New("empty NDJSON stream")
	}
	if !strings.Contains(last, `"type":"summary"`) {
		return errors.New("NDJSON stream truncated: no trailing summary line")
	}
	return nil
}
