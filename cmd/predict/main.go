// Command predict characterises a program and prints the analytical
// model's time-energy prediction for one configuration, with the full
// Eq. (1) and Eq. (8) breakdowns — or, with -grid, for the entire
// validation configuration grid.
//
// Usage:
//
//	predict -system xeon -program SP -class A -n 8 -c 8 -f 1.8
//	predict -system arm -program CP -class A -grid
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"hybridperf"
	"hybridperf/internal/core"
	"hybridperf/internal/textplot"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("predict: ")
	var (
		system  = flag.String("system", "xeon", "cluster profile: xeon or arm")
		program = flag.String("program", "SP", "program: LU, SP, BT, CP or LB")
		class   = flag.String("class", "A", "input class: T, S, A or C")
		n       = flag.Int("n", 4, "number of nodes")
		c       = flag.Int("c", 0, "cores per node (0 = all)")
		fGHz    = flag.Float64("f", 0, "core frequency [GHz]; 0 = fmax")
		grid    = flag.Bool("grid", false, "predict the whole n-{1,2,4,8} x c x f grid")
		seed    = flag.Int64("seed", 42, "characterisation seed")
		workers = flag.Int("workers", 0, "parallel characterisation/sweep workers (0 = NumCPU)")
		inputs  = flag.String("inputs", "", "load saved model inputs (from `characterize -o`) instead of re-characterising")
		sens    = flag.Bool("sensitivity", false, "also print input sensitivities (+10% per input)")
	)
	flag.Parse()

	sys, err := hybridperf.SystemByName(*system)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := hybridperf.ProgramByName(*program)
	if err != nil {
		log.Fatal(err)
	}
	var model *hybridperf.Model
	if *inputs != "" {
		f, err := os.Open(*inputs)
		if err != nil {
			log.Fatal(err)
		}
		in, err := core.LoadInputs(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		model, err = hybridperf.NewModel(sys, prog, in)
		if err != nil {
			log.Fatal(err)
		}
		model = model.WithWorkers(*workers)
	} else {
		model, err = hybridperf.Characterize(sys, prog, &hybridperf.CharacterizeOptions{Seed: *seed, Workers: *workers})
		if err != nil {
			log.Fatal(err)
		}
	}

	if *grid {
		var cfgs []hybridperf.Config
		for _, nn := range []int{1, 2, 4, 8} {
			for cc := 1; cc <= sys.CoresPerNode; cc++ {
				for _, f := range sys.Frequencies {
					cfgs = append(cfgs, hybridperf.Config{Nodes: nn, Cores: cc, Freq: f})
				}
			}
		}
		preds, err := model.PredictAll(cfgs, hybridperf.Class(*class))
		if err != nil {
			log.Fatal(err)
		}
		var rows [][]string
		for i, cfg := range cfgs {
			rows = append(rows, []string{
				cfg.String(),
				fmt.Sprintf("%.1f", preds[i].T),
				fmt.Sprintf("%.2f", preds[i].E/1e3),
				fmt.Sprintf("%.2f", preds[i].UCR),
			})
		}
		fmt.Fprintln(os.Stdout, textplot.Table([]string{"(n,c,f[GHz])", "T[s]", "E[kJ]", "UCR"}, rows))
		return
	}

	cores := *c
	if cores == 0 {
		cores = sys.CoresPerNode
	}
	f := *fGHz * 1e9
	if f == 0 {
		f = sys.FMax()
	}
	cfg := hybridperf.Config{Nodes: *n, Cores: cores, Freq: f}
	p, err := model.Predict(cfg, hybridperf.Class(*class))
	if err != nil {
		log.Fatal(err)
	}
	w := os.Stdout
	fmt.Fprintf(w, "%s on %s, class %s, config %v\n", prog.Name, sys.Name, *class, cfg)
	fmt.Fprintf(w, "T    = %.2f s   (TCPU %.2f + TwNet %.2f + TsNet %.2f + TMem %.2f)\n",
		p.T, p.TCPU, p.TwNet, p.TsNet, p.TMem)
	fmt.Fprintf(w, "E    = %.3f kJ (ECPU %.3f + EMem %.3f + ENet %.3f + EIdle %.3f)\n",
		p.E/1e3, p.ECPU/1e3, p.EMem/1e3, p.ENet/1e3, p.EIdle/1e3)
	fmt.Fprintf(w, "UCR  = %.3f\n", p.UCR)
	if p.Eta > 0 {
		fmt.Fprintf(w, "comm eta=%.0f msgs/rank, nu=%.0f B, switch rho=%.2f\n", p.Eta, p.Nu, p.NetRho)
	}

	if *sens {
		S, err := prog.Iterations(hybridperf.Class(*class))
		if err != nil {
			log.Fatal(err)
		}
		ss, err := model.Core().Sensitivities(cfg, S, 1.1)
		if err != nil {
			log.Fatal(err)
		}
		var rows [][]string
		for _, s := range ss {
			rows = append(rows, []string{
				s.Input,
				fmt.Sprintf("%+.2f%%", s.DTPct),
				fmt.Sprintf("%+.2f%%", s.DEPct),
			})
		}
		fmt.Fprintf(w, "\nsensitivity to a +10%% change of each input:\n")
		fmt.Fprintln(w, textplot.Table([]string{"input", "dT", "dE"}, rows))
	}
}
