// Command characterize runs the full measurement campaign for one program
// on one system — baseline executions across (c, f), the mpiP profile,
// NetPIPE and the power micro-benchmarks — and prints the analytical
// model's inputs (paper Sec. III.E).
//
// Usage:
//
//	characterize -system arm -program CP -seed 42
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"hybridperf/internal/characterize"
	"hybridperf/internal/core"
	"hybridperf/internal/machine"
	"hybridperf/internal/textplot"
	"hybridperf/internal/workload"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("characterize: ")
	var (
		system  = flag.String("system", "xeon", "cluster profile: xeon or arm")
		program = flag.String("program", "SP", "program: LU, SP, BT, CP or LB")
		seed    = flag.Int64("seed", 42, "measurement seed")
		workers = flag.Int("workers", 0, "parallel simulations (0 = default)")
		engine  = flag.String("engine", "", "simulation engine: goroutine or sequential (default $HYBRIDPERF_ENGINE, then goroutine; results are bit-identical)")
		outFile = flag.String("o", "", "write model inputs as JSON to this file")
		showMx  = flag.Bool("metrics", false, "print aggregate engine counters over the campaign's runs")
	)
	flag.Parse()

	prof, err := machine.ByName(*system)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := workload.ByName(*program)
	if err != nil {
		log.Fatal(err)
	}
	sum, err := characterize.Run(prof, spec, characterize.Options{Seed: *seed, Workers: *workers, Engine: *engine, Metrics: *showMx})
	if err != nil {
		log.Fatal(err)
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			log.Fatal(err)
		}
		if err := core.SaveInputs(f, sum.Inputs); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote model inputs to %s\n", *outFile)
	}

	w := os.Stdout
	fmt.Fprintf(w, "Characterisation of %s on %s (baseline: class S, %d iterations)\n\n",
		spec.Name, prof.Name, sum.Inputs.BaselineIters)

	// Baseline counter table, ordered by (c, f).
	keys := make([]machine.CF, 0, len(sum.Baseline))
	for k := range sum.Baseline {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Cores != keys[j].Cores {
			return keys[i].Cores < keys[j].Cores
		}
		return keys[i].Freq < keys[j].Freq
	})
	var rows [][]string
	for _, k := range keys {
		bp := sum.Baseline[k]
		rows = append(rows, []string{
			fmt.Sprintf("%d", k.Cores),
			fmt.Sprintf("%.1f", k.Freq/1e9),
			fmt.Sprintf("%.4g", bp.W),
			fmt.Sprintf("%.4g", bp.B),
			fmt.Sprintf("%.4g", bp.M),
			fmt.Sprintf("%.3f", bp.U),
		})
	}
	fmt.Fprintln(w, textplot.Table([]string{"c", "f[GHz]", "ws", "bs", "ms", "Us"}, rows))

	fmt.Fprintf(w, "network    y(s) = %.1f us + s / %.2f MB/s (NetPIPE fit over %d sizes)\n",
		sum.Inputs.Net.Overhead*1e6, sum.Inputs.Net.Peak/1e6, len(sum.NetPipe))
	if sum.MpiP.Ranks > 0 {
		fmt.Fprintf(w, "%s\n", sum.MpiP)
	}
	fmt.Fprintf(w, "power      Psys,idle=%.2f W  Pmem=%.2f W (JEDEC)  Pnet=%.2f W\n",
		sum.Inputs.Power.PSysIdle, sum.Inputs.Power.PMem, sum.Inputs.Power.PNet)
	freqs := append([]float64(nil), prof.Frequencies...)
	sort.Float64s(freqs)
	for _, f := range freqs {
		fmt.Fprintf(w, "  f=%.1f GHz: Pcore,act=%.3f W  Pcore,stall=%.3f W\n",
			f/1e9, sum.Inputs.Power.PAct[f], sum.Inputs.Power.PStall[f])
	}
	if *showMx {
		fmt.Fprintf(w, "\nengine metrics over %d characterisation runs\n%s", sum.MetricsRuns, sum.Metrics)
	}
}
