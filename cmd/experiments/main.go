// Command experiments regenerates the paper's tables and figures against
// the simulated clusters and prints them (or writes one file per artifact
// with -out).
//
// Usage:
//
//	experiments                 # everything, paper order
//	experiments -id fig8        # one artifact
//	experiments -fast           # reduced grids (quick look)
//	experiments -out results/   # write fig8.txt, table2.txt, ...
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hybridperf/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		id      = flag.String("id", "", "artifact id (fig3, fig5-11, table2, table3, whatif); empty = all")
		fast    = flag.Bool("fast", false, "reduced grids and input class")
		seed    = flag.Int64("seed", 0, "seed (0 = default)")
		workers = flag.Int("workers", 0, "parallel simulations (0 = NumCPU)")
		out     = flag.String("out", "", "directory to write one .txt per artifact")
		showMx  = flag.Bool("metrics", false, "report aggregate engine counters over every simulation run")
	)
	flag.Parse()

	r := experiments.NewRunner(experiments.Config{Seed: *seed, Workers: *workers, Fast: *fast, Metrics: *showMx})
	var arts []*experiments.Artifact
	if *id != "" {
		a, err := r.ByID(*id)
		if err != nil {
			log.Fatal(err)
		}
		arts = append(arts, a)
	} else {
		var err error
		arts, err = r.All()
		if err != nil {
			log.Fatal(err)
		}
	}

	for _, a := range arts {
		if *out != "" {
			if err := os.MkdirAll(*out, 0o755); err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*out, a.ID+".txt")
			if err := os.WriteFile(path, []byte(a.Title+"\n\n"+a.Text), 0o644); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote %s\n", path)
			continue
		}
		fmt.Printf("==== %s ====\n\n%s\n", a.Title, a.Text)
	}
	if *showMx {
		mx, runs := r.Metrics()
		fmt.Printf("==== engine metrics (%d simulations) ====\n\n%s\n", runs, mx)
	}
}
